package dscted

import (
	"repro/internal/comm"
	"repro/internal/renewable"
	"repro/internal/schedule"
)

// Extension re-exports: the paper's §7 future-work directions, implemented
// as documented heuristic extensions (see DESIGN.md).

type (
	// Envelope is a time-varying cumulative energy budget B(t) for the
	// renewable-energy extension.
	Envelope = renewable.Envelope
	// EnvelopePoint is one checkpoint of an Envelope.
	EnvelopePoint = renewable.Point
	// RenewableOptions tunes SolveRenewable.
	RenewableOptions = renewable.Options
	// RenewableSolution is an envelope-compliant plan.
	RenewableSolution = renewable.Solution
	// CommOptions tunes SolveWithCommEnergy.
	CommOptions = comm.Options
	// CommSolution is a communication-energy-aware plan.
	CommSolution = comm.Solution
)

// NewEnvelope builds a cumulative energy envelope from checkpoints.
func NewEnvelope(points []EnvelopePoint) (*Envelope, error) {
	return renewable.NewEnvelope(points)
}

// SolarEnvelope builds a day-like envelope: generation ramps sinusoidally
// between sunrise and sunset, accumulating totalJ Joules.
func SolarEnvelope(sunrise, sunset, totalJ float64, steps int) (*Envelope, error) {
	return renewable.Solar(sunrise, sunset, totalJ, steps)
}

// SolveRenewable plans the instance under a time-varying energy envelope
// (the instance's scalar Budget is ignored). The returned schedule is
// verified envelope-compliant.
func SolveRenewable(in *Instance, env *Envelope, opts RenewableOptions) (*RenewableSolution, error) {
	return renewable.Solve(in, env, opts)
}

// EnvelopeComplies checks a schedule's cumulative consumption against an
// envelope, with machines starting at startDelay; it returns the first
// violating time when non-compliant.
func EnvelopeComplies(in *Instance, s *Schedule, env *Envelope, startDelay float64) (bool, float64) {
	return renewable.Complies(in, s, env, startDelay, schedule.DefaultTol)
}

// SolveWithCommEnergy plans the instance charging perTaskJoules of
// dispatch (communication) energy for every scheduled task, keeping
// computation + communication within the instance budget.
func SolveWithCommEnergy(in *Instance, perTaskJoules float64, opts CommOptions) (*CommSolution, error) {
	return comm.Solve(in, perTaskJoules, opts)
}
