package dscted

import (
	"math"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	src := NewRand(42, "facade")
	inst, err := GenerateUniformFleet(src, DefaultConfig(20, 0.5, 0.4), 3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveApprox(inst, ApproxOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Schedule.Validate(inst, ValidateOptions{RequireIntegral: true}); err != nil {
		t.Fatal(err)
	}
	if sol.TotalAccuracy <= 0 || sol.TotalAccuracy > sol.FR.TotalAccuracy+1e-6 {
		t.Errorf("accuracy %g out of (0, UB=%g]", sol.TotalAccuracy, sol.FR.TotalAccuracy)
	}
	if g := Guarantee(inst); g <= 0 {
		t.Errorf("guarantee %g", g)
	}

	res, err := Simulate(inst, sol.Schedule, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missed) != 0 {
		t.Errorf("simulation missed: %v", res.Missed)
	}
}

func TestSolveFRAndExactChain(t *testing.T) {
	src := NewRand(7, "facade-exact")
	inst, err := GenerateUniformFleet(src, DefaultConfig(4, 0.8, 0.6), 2)
	if err != nil {
		t.Fatal(err)
	}
	fr, err := SolveFR(inst, FROptions{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := SolveExact(inst, 30*time.Second, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Optimal {
		t.Skipf("exact solve hit the limit after %d nodes", ex.Nodes)
	}
	if ex.TotalAccuracy > fr.TotalAccuracy+1e-5 {
		t.Errorf("exact %g exceeds fractional bound %g", ex.TotalAccuracy, fr.TotalAccuracy)
	}
	if ex.Schedule == nil {
		t.Fatal("optimal solve must return a schedule")
	}
	if err := ex.Schedule.Validate(inst, ValidateOptions{RequireIntegral: true}); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	src := NewRand(9, "facade-base")
	inst, err := GenerateUniformFleet(src, DefaultConfig(25, 0.8, 0.3), 2)
	if err != nil {
		t.Fatal(err)
	}
	nc := EDFNoCompression(inst)
	if err := nc.Validate(inst, ValidateOptions{RequireIntegral: true}); err != nil {
		t.Fatal(err)
	}
	l3, err := EDF3CompressionLevels(inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l3.Validate(inst, ValidateOptions{RequireIntegral: true}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyAndMachineHelpers(t *testing.T) {
	pwl, err := NewAccuracy(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if pwl.NumSegments() != 5 {
		t.Errorf("segments = %d", pwl.NumSegments())
	}
	m := NewMachine("demo", 2000, 80)
	if math.Abs(m.Efficiency()-80) > 1e-9 {
		t.Errorf("efficiency %g", m.Efficiency())
	}
	if len(GPUCatalog()) < 10 {
		t.Error("catalog too small")
	}
}
