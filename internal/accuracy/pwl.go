// Package accuracy models the accuracy functions of compressible inference
// tasks (paper §3.1). A task's accuracy a(f) is a concave, non-decreasing
// function of the number of floating-point operations f dedicated to it,
// with a(0) = a_min (a random guess) and a(f_max) = a_max. The paper's
// experiments use piecewise-linear (PWL) functions with 5 segments fitted
// to an exponential curve derived from Once-For-All slimmable networks
// (Fig 2); this package provides both the exponential model and the PWL
// machinery (evaluation, marginal gains/losses, inverses, fitting).
//
// Units: f is measured in GFLOPs throughout the module; slopes are accuracy
// per GFLOP.
package accuracy

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Segment is one linear piece of a PWL accuracy function: on [Start, End]
// the function is Slope*f + Intercept.
type Segment struct {
	Slope     float64
	Intercept float64
	Start     float64 // breakpoint p_k
	End       float64 // breakpoint p_{k+1}
}

// Width returns the segment length End - Start in GFLOPs.
func (s Segment) Width() float64 { return s.End - s.Start }

// PWL is a concave, non-decreasing piecewise-linear accuracy function.
// Construct it with NewPWL; the zero value is not usable.
type PWL struct {
	segs []Segment
	aMin float64
	aMax float64
}

// NewPWL builds a PWL function from breakpoints and the accuracy values at
// those breakpoints. It requires at least two points, breakpoints starting
// at 0, strictly increasing breakpoints, non-decreasing values and concavity
// (non-increasing chord slopes).
func NewPWL(breakpoints, values []float64) (*PWL, error) {
	if len(breakpoints) != len(values) {
		return nil, fmt.Errorf("accuracy: %d breakpoints but %d values", len(breakpoints), len(values))
	}
	if len(breakpoints) < 2 {
		return nil, errors.New("accuracy: need at least two points")
	}
	if breakpoints[0] != 0 {
		return nil, fmt.Errorf("accuracy: first breakpoint must be 0, got %g", breakpoints[0])
	}
	segs := make([]Segment, 0, len(breakpoints)-1)
	prevSlope := math.Inf(1)
	for k := 0; k+1 < len(breakpoints); k++ {
		p0, p1 := breakpoints[k], breakpoints[k+1]
		v0, v1 := values[k], values[k+1]
		if p1 <= p0 {
			return nil, fmt.Errorf("accuracy: breakpoints must strictly increase (p[%d]=%g, p[%d]=%g)", k, p0, k+1, p1)
		}
		if v1 < v0 {
			return nil, fmt.Errorf("accuracy: values must be non-decreasing (v[%d]=%g, v[%d]=%g)", k, v0, k+1, v1)
		}
		slope := (v1 - v0) / (p1 - p0)
		if slope > prevSlope*(1+1e-9)+1e-15 {
			return nil, fmt.Errorf("accuracy: not concave at breakpoint %d (slope %g after %g)", k, slope, prevSlope)
		}
		prevSlope = slope
		segs = append(segs, Segment{
			Slope:     slope,
			Intercept: v0 - slope*p0,
			Start:     p0,
			End:       p1,
		})
	}
	return &PWL{segs: segs, aMin: values[0], aMax: values[len(values)-1]}, nil
}

// MustPWL is NewPWL that panics on error; for package-internal literals and
// tests.
func MustPWL(breakpoints, values []float64) *PWL {
	p, err := NewPWL(breakpoints, values)
	if err != nil {
		panic(err)
	}
	return p
}

// AMin returns a(0), the accuracy with no processing.
func (p *PWL) AMin() float64 { return p.aMin }

// AMax returns a(FMax), the accuracy of the uncompressed model.
func (p *PWL) AMax() float64 { return p.aMax }

// FMax returns the work (GFLOPs) needed for full, uncompressed processing.
func (p *PWL) FMax() float64 { return p.segs[len(p.segs)-1].End }

// NumSegments returns the number of linear pieces.
func (p *PWL) NumSegments() int { return len(p.segs) }

// Segments returns a copy of the linear pieces in increasing-f order.
func (p *PWL) Segments() []Segment {
	return append([]Segment(nil), p.segs...)
}

// Segment returns the k-th linear piece (0-based).
func (p *PWL) Segment(k int) Segment { return p.segs[k] }

// FirstSlope returns the slope of the first segment — the paper's "task
// efficiency" θ of the task.
func (p *PWL) FirstSlope() float64 { return p.segs[0].Slope }

// LastSlope returns the slope of the final segment.
func (p *PWL) LastSlope() float64 { return p.segs[len(p.segs)-1].Slope }

// segIndex returns the index of the segment containing f, clamping f into
// [0, FMax].
func (p *PWL) segIndex(f float64) int {
	if f <= 0 {
		return 0
	}
	if f >= p.FMax() {
		return len(p.segs) - 1
	}
	// Binary search over segment ends.
	i := sort.Search(len(p.segs), func(k int) bool { return p.segs[k].End >= f })
	if i == len(p.segs) {
		i = len(p.segs) - 1
	}
	return i
}

// Eval returns the accuracy achieved with f GFLOPs of work. f is clamped
// into [0, FMax]: negative work scores AMin and work beyond FMax scores
// AMax (extra operations cannot improve a fully processed task).
func (p *PWL) Eval(f float64) float64 {
	if f <= 0 {
		return p.aMin
	}
	if f >= p.FMax() {
		return p.aMax
	}
	s := p.segs[p.segIndex(f)]
	return s.Slope*f + s.Intercept
}

// MarginalGain returns the right-hand derivative at f: the accuracy gained
// per additional GFLOP. At or beyond FMax the gain is 0; at a breakpoint it
// is the slope of the following segment.
func (p *PWL) MarginalGain(f float64) float64 {
	if f >= p.FMax() {
		return 0
	}
	if f <= 0 {
		return p.segs[0].Slope
	}
	i := p.segIndex(f)
	// If f sits exactly at the end of segment i, the right derivative is the
	// next segment's slope.
	//lint:ignore floatcmp the one-sided derivative convention keys on exact breakpoint identity, not proximity
	if f == p.segs[i].End && i+1 < len(p.segs) {
		return p.segs[i+1].Slope
	}
	return p.segs[i].Slope
}

// MarginalLoss returns the left-hand derivative at f: the accuracy lost per
// GFLOP removed. At or below 0 the loss is the first slope by convention.
func (p *PWL) MarginalLoss(f float64) float64 {
	if f <= 0 {
		return p.segs[0].Slope
	}
	if f >= p.FMax() {
		return p.segs[len(p.segs)-1].Slope
	}
	i := p.segIndex(f)
	// If f sits exactly at the start of segment i, the left derivative is the
	// previous segment's slope.
	//lint:ignore floatcmp the one-sided derivative convention keys on exact breakpoint identity, not proximity
	if f == p.segs[i].Start && i > 0 {
		return p.segs[i-1].Slope
	}
	return p.segs[i].Slope
}

// Inverse returns the minimum work f such that Eval(f) >= a. Accuracies at
// or below AMin map to 0; accuracies at or above AMax map to FMax. It
// returns an error only for a > AMax (unreachable accuracy).
func (p *PWL) Inverse(a float64) (float64, error) {
	if a <= p.aMin {
		return 0, nil
	}
	if a > p.aMax {
		return 0, fmt.Errorf("accuracy: %g exceeds reachable maximum %g", a, p.aMax)
	}
	for _, s := range p.segs {
		endVal := s.Slope*s.End + s.Intercept
		//lint:ignore floatcmp last-segment test compares a stored breakpoint with itself, exact by construction
		if a <= endVal || s.End == p.FMax() {
			if s.Slope == 0 {
				return s.Start, nil
			}
			f := (a - s.Intercept) / s.Slope
			if f < s.Start {
				f = s.Start
			}
			if f > s.End {
				f = s.End
			}
			return f, nil
		}
	}
	return p.FMax(), nil
}

// Validate re-checks the structural invariants (contiguity, concavity,
// monotonicity). It is used by property tests and by instance loaders.
func (p *PWL) Validate() error {
	if len(p.segs) == 0 {
		return errors.New("accuracy: empty PWL")
	}
	if p.segs[0].Start != 0 {
		return errors.New("accuracy: first segment must start at 0")
	}
	for k, s := range p.segs {
		if s.End <= s.Start {
			return fmt.Errorf("accuracy: segment %d empty", k)
		}
		if k > 0 {
			prev := p.segs[k-1]
			//lint:ignore floatcmp contiguity check: NewPWL shares breakpoint values between segments, so identity is exact
			if s.Start != prev.End {
				return fmt.Errorf("accuracy: gap between segments %d and %d", k-1, k)
			}
			if s.Slope > prev.Slope*(1+1e-9)+1e-15 {
				return fmt.Errorf("accuracy: slopes increase at segment %d", k)
			}
			// Continuity of values.
			vPrev := prev.Slope*prev.End + prev.Intercept
			vCur := s.Slope*s.Start + s.Intercept
			if math.Abs(vPrev-vCur) > 1e-9*math.Max(1, math.Abs(vPrev)) {
				return fmt.Errorf("accuracy: discontinuity at segment %d (%g vs %g)", k, vPrev, vCur)
			}
		}
		if s.Slope < 0 {
			return fmt.Errorf("accuracy: negative slope in segment %d", k)
		}
	}
	return nil
}

// Breakpoints returns the K+1 breakpoints including 0 and FMax.
func (p *PWL) Breakpoints() []float64 {
	out := make([]float64, 0, len(p.segs)+1)
	out = append(out, p.segs[0].Start)
	for _, s := range p.segs {
		out = append(out, s.End)
	}
	return out
}

// Values returns the accuracy at each breakpoint, aligned with Breakpoints.
func (p *PWL) Values() []float64 {
	out := make([]float64, 0, len(p.segs)+1)
	out = append(out, p.aMin)
	for _, s := range p.segs {
		out = append(out, s.Slope*s.End+s.Intercept)
	}
	return out
}
