package accuracy

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// FuzzPWL derives random breakpoint/value vectors from the fuzz input —
// usually well-formed (strictly increasing breakpoints, non-decreasing
// values, non-increasing chord slopes), occasionally perturbed into invalid
// shapes — and checks that whenever NewPWL accepts an input, the resulting
// function honours its structural invariants: Validate passes, Eval is
// monotone non-decreasing and midpoint-concave, and Inverse is a right
// inverse of Eval on [AMin, AMax].
func FuzzPWL(f *testing.F) {
	f.Add(int64(1), uint8(2), false)
	f.Add(int64(9), uint8(5), false)
	f.Add(int64(-3), uint8(1), true)
	f.Add(int64(1234), uint8(7), true)

	f.Fuzz(func(t *testing.T, seed int64, kRaw uint8, perturb bool) {
		s := rng.New(seed, "fuzz-pwl")
		segs := 1 + int(kRaw)%6

		breaks := make([]float64, segs+1)
		vals := make([]float64, segs+1)
		vals[0] = s.Uniform(0, 0.5)
		slope := s.Uniform(0, 1)
		for k := 1; k <= segs; k++ {
			width := s.Uniform(0.1, 10)
			breaks[k] = breaks[k-1] + width
			vals[k] = vals[k-1] + slope*width
			slope *= s.Float64() // non-increasing: concave by construction
		}
		if perturb {
			// Damage one coordinate; NewPWL must either reject the input or
			// still hand back a function satisfying every invariant below.
			i := 1 + s.Intn(segs)
			if s.Float64() < 0.5 {
				breaks[i] = breaks[i-1] - s.Uniform(0, 1)
			} else {
				vals[i] = vals[i-1] - s.Uniform(0.01, 1)
			}
		}

		p, err := NewPWL(breaks, vals)
		if err != nil {
			return // rejected inputs are fine; we only audit accepted ones
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted PWL fails Validate: %v", err)
		}
		if p.AMin() > p.AMax()+1e-12 {
			t.Fatalf("AMin %g above AMax %g", p.AMin(), p.AMax())
		}

		fmax := p.FMax()
		for i := 0; i < 32; i++ {
			// Monotonicity holds on the whole clamped domain.
			f1 := s.Uniform(-1, fmax+1)
			f2 := s.Uniform(-1, fmax+1)
			if f1 > f2 {
				f1, f2 = f2, f1
			}
			a1, a2 := p.Eval(f1), p.Eval(f2)
			if a1 > a2+1e-9 {
				t.Fatalf("Eval not monotone: Eval(%g)=%g > Eval(%g)=%g", f1, a1, f2, a2)
			}
			// Concavity only holds on [0, FMax]: the flat clamp below 0 meets
			// a positive first slope, so the extended function is not concave.
			c1 := s.Uniform(0, fmax)
			c2 := s.Uniform(0, fmax)
			if c1 > c2 {
				c1, c2 = c2, c1
			}
			mid := p.Eval((c1 + c2) / 2)
			if mid+1e-9 < (p.Eval(c1)+p.Eval(c2))/2 {
				t.Fatalf("not midpoint-concave on [%g, %g]: %g < %g", c1, c2, mid, (p.Eval(c1)+p.Eval(c2))/2)
			}
		}
		for i := 0; i < 16; i++ {
			a := s.Uniform(p.AMin(), p.AMax())
			fv, err := p.Inverse(a)
			if err != nil {
				t.Fatalf("Inverse(%g) in [AMin, AMax] failed: %v", a, err)
			}
			if fv < -1e-12 || fv > fmax+1e-9 {
				t.Fatalf("Inverse(%g) = %g outside [0, FMax=%g]", a, fv, fmax)
			}
			if got := p.Eval(fv); math.Abs(got-a) > 1e-6*(1+math.Abs(a)) && got < a {
				t.Fatalf("Eval(Inverse(%g)) = %g, below requested accuracy", a, got)
			}
		}
	})
}
