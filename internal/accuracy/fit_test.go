package accuracy

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestExponentialBasics(t *testing.T) {
	m := NewExponential(0.1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Eval(0); !numeric.AlmostEqual(got, DefaultAMin) {
		t.Errorf("Eval(0) = %g, want AMin", got)
	}
	if got := m.Eval(m.FMax()); math.Abs(got-DefaultAMax) > 1e-9 {
		t.Errorf("Eval(FMax) = %g, want AMax %g", got, DefaultAMax)
	}
	if got := m.Eval(10 * m.FMax()); !numeric.AlmostEqual(got, DefaultAMax) {
		t.Errorf("Eval beyond FMax = %g, want capped at AMax", got)
	}
	// Derivative at 0 equals Theta by construction.
	if got := m.Derivative(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Derivative(0) = %g, want Theta", got)
	}
	// Numerical derivative check at 0.
	h := 1e-7
	num := (m.Eval(h) - m.Eval(0)) / h
	if math.Abs(num-0.1) > 1e-4 {
		t.Errorf("numerical derivative at 0 = %g, want ~0.1", num)
	}
}

func TestExponentialThetaScalesFMax(t *testing.T) {
	lo, hi := NewExponential(0.1), NewExponential(1.0)
	// Ten times the efficiency needs one tenth of the work.
	if math.Abs(lo.FMax()/hi.FMax()-10) > 1e-9 {
		t.Errorf("FMax ratio = %g, want 10", lo.FMax()/hi.FMax())
	}
}

func TestExponentialInverseRoundTrip(t *testing.T) {
	m := NewExponential(0.7)
	for _, a := range []float64{0.05, 0.3, 0.5, 0.7, 0.81} {
		f := m.InverseEval(a)
		if got := m.Eval(f); math.Abs(got-a) > 1e-9 {
			t.Errorf("Eval(InverseEval(%g)) = %g", a, got)
		}
	}
	if m.InverseEval(0.0005) != 0 {
		t.Error("below AMin should map to 0")
	}
	if !numeric.AlmostEqual(m.InverseEval(0.9), m.FMax()) {
		t.Error("above AMax should map to FMax")
	}
}

func TestExponentialValidate(t *testing.T) {
	bad := []Exponential{
		{AMin: 0.5, AMax: 0.4, Theta: 1, Cut: 0.9},
		{AMin: 0, AMax: 0.8, Theta: 0, Cut: 0.9},
		{AMin: 0, AMax: 0.8, Theta: 1, Cut: 1},
		{AMin: -0.1, AMax: 0.8, Theta: 1, Cut: 0.9},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestFitChordEndpointsAndConcavity(t *testing.T) {
	for _, theta := range []float64{0.1, 0.5, 1.0, 4.9} {
		m := NewExponential(theta)
		p, err := FitChord(m, DefaultSegments)
		if err != nil {
			t.Fatalf("theta=%g: %v", theta, err)
		}
		if p.NumSegments() != DefaultSegments {
			t.Errorf("theta=%g: got %d segments", theta, p.NumSegments())
		}
		if !numeric.AlmostEqual(p.AMin(), m.AMin) || math.Abs(p.AMax()-m.AMax) > 1e-12 {
			t.Errorf("theta=%g: endpoints [%g,%g]", theta, p.AMin(), p.AMax())
		}
		if math.Abs(p.FMax()-m.FMax()) > 1e-9 {
			t.Errorf("theta=%g: FMax %g vs model %g", theta, p.FMax(), m.FMax())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("theta=%g: %v", theta, err)
		}
		// The PWL underestimates a concave curve between breakpoints and
		// matches it at breakpoints.
		for _, bp := range p.Breakpoints() {
			if math.Abs(p.Eval(bp)-m.Eval(bp)) > 1e-9 {
				t.Errorf("theta=%g: chord should interpolate at breakpoint %g", theta, bp)
			}
		}
		if e := MaxFitError(p, m, 500); e > 0.05 {
			t.Errorf("theta=%g: chord fit error %g too large", theta, e)
		}
	}
}

func TestFitChordFirstSlopeApproximatesTheta(t *testing.T) {
	// The first-segment slope of the fit is the paper's task efficiency; it
	// should track Theta closely (it is the average derivative over the
	// first segment, slightly below Theta).
	for _, theta := range []float64{0.1, 1.0, 4.9} {
		p, err := FitChord(NewExponential(theta), DefaultSegments)
		if err != nil {
			t.Fatal(err)
		}
		ratio := p.FirstSlope() / theta
		if ratio < 0.8 || ratio > 1.0 {
			t.Errorf("theta=%g: first slope %g (ratio %g) should be within [0.8, 1.0] of theta", theta, p.FirstSlope(), ratio)
		}
	}
}

func TestFitLeastSquaresBeatsOrMatchesChord(t *testing.T) {
	m := NewExponential(0.5)
	chord, err := FitChord(m, DefaultSegments)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := FitLeastSquares(m, DefaultSegments, 400)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Validate(); err != nil {
		t.Fatalf("least-squares fit invalid: %v", err)
	}
	// Compare mean squared error on a dense grid; LS should not be
	// dramatically worse than chord (it may fall back to chord).
	mse := func(p *PWL) float64 {
		var s float64
		const grid = 400
		for i := 0; i <= grid; i++ {
			f := m.FMax() * float64(i) / grid
			d := p.Eval(f) - m.Eval(f)
			s += d * d
		}
		return s / (grid + 1)
	}
	if mse(ls) > mse(chord)*1.5 {
		t.Errorf("least squares MSE %g much worse than chord %g", mse(ls), mse(chord))
	}
}

func TestFitErrorsOnBadArgs(t *testing.T) {
	m := NewExponential(1)
	if _, err := FitChord(m, 0); err == nil {
		t.Error("FitChord with 0 segments should fail")
	}
	if _, err := FitLeastSquares(m, 0, 100); err == nil {
		t.Error("FitLeastSquares with 0 segments should fail")
	}
	if _, err := FitLeastSquares(m, 5, 3); err == nil {
		t.Error("FitLeastSquares with too few samples should fail")
	}
	bad := Exponential{AMin: 0.5, AMax: 0.2, Theta: 1, Cut: 0.9}
	if _, err := FitChord(bad, 5); err == nil {
		t.Error("FitChord with invalid model should fail")
	}
}

func TestFitSingleSegment(t *testing.T) {
	m := NewExponential(1)
	p, err := FitLeastSquares(m, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSegments() != 1 {
		t.Errorf("got %d segments", p.NumSegments())
	}
}

func TestSolveSPD(t *testing.T) {
	// 2x2 system: [[2,1],[1,3]] x = [5, 10] -> x = [1, 3].
	x, err := solveSPD([][]float64{{2, 1}, {1, 3}}, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solveSPD = %v, want [1 3]", x)
	}
	if _, err := solveSPD([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular system should fail")
	}
}

func TestPresets(t *testing.T) {
	if len(Presets) < 3 {
		t.Fatal("too few presets")
	}
	for _, p := range Presets {
		if err := p.Model().Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		pwl, err := p.PWL()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !numeric.AlmostEqual(pwl.AMax(), p.AMax) {
			t.Errorf("%s: AMax %g != %g", p.Name, pwl.AMax(), p.AMax)
		}
		if err := pwl.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	// The paper's subject reaches full accuracy near its published GFLOPs.
	res, err := PresetByName("ofa-resnet50")
	if err != nil {
		t.Fatal(err)
	}
	fmax := res.Model().FMax()
	if fmax < 2 || fmax > 8 {
		t.Errorf("ofa-resnet50 FMax = %g GFLOPs, want a few GFLOPs", fmax)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestChordFitNeverOverestimates(t *testing.T) {
	// A chord interpolation of a concave function lies on or below it
	// everywhere; the scheduler's accuracy estimates are therefore
	// conservative with respect to the smooth model.
	for _, theta := range []float64{0.1, 0.9, 4.9} {
		m := NewExponential(theta)
		p, err := FitChord(m, DefaultSegments)
		if err != nil {
			t.Fatal(err)
		}
		const grid = 300
		for i := 0; i <= grid; i++ {
			f := m.FMax() * float64(i) / grid
			if p.Eval(f) > m.Eval(f)+1e-9 {
				t.Fatalf("theta=%g: chord overestimates at f=%g: %g > %g",
					theta, f, p.Eval(f), m.Eval(f))
			}
		}
	}
}
