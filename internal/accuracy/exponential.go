package accuracy

import (
	"fmt"
	"math"
)

// DefaultAMin is the accuracy of a random guess on ImageNet-1k
// (1/1000 classes), the paper's minimum task accuracy.
const DefaultAMin = 1.0 / 1000

// DefaultAMax is the top accuracy of the uncompressed ofa-resnet model on
// ImageNet-1k reported by the paper.
const DefaultAMax = 0.82

// DefaultCut is the fraction of the asymptotic accuracy gap that the
// uncompressed model realises: f_max is the work at which the exponential
// curve has closed DefaultCut of the gap toward its asymptote, and the
// curve value there is defined to be exactly AMax (see Exponential).
const DefaultCut = 0.98

// Exponential is the saturating accuracy model the paper fits its PWL
// functions to:
//
//	a(f) = asym − (asym − AMin) · exp(−c·f)
//
// parameterised so that (i) the derivative at f = 0 equals Theta (the
// paper's "task efficiency", the slope of the first PWL segment), and
// (ii) a(FMax()) = AMax exactly, with the asymptote sitting slightly above
// AMax (asym = AMin + (AMax−AMin)/Cut). Larger Theta means the task reaches
// high accuracy with less work.
type Exponential struct {
	AMin  float64 // accuracy at f = 0
	AMax  float64 // accuracy at f = FMax()
	Theta float64 // derivative at f = 0, accuracy per GFLOP
	Cut   float64 // fraction of the gap closed at FMax (0 < Cut < 1)
}

// NewExponential returns the model with the paper's default accuracy range
// and the given task efficiency θ.
func NewExponential(theta float64) Exponential {
	return Exponential{AMin: DefaultAMin, AMax: DefaultAMax, Theta: theta, Cut: DefaultCut}
}

// Validate checks the parameterisation.
func (e Exponential) Validate() error {
	if !(e.AMin >= 0 && e.AMax > e.AMin) {
		return fmt.Errorf("accuracy: need 0 <= AMin < AMax, got [%g, %g]", e.AMin, e.AMax)
	}
	if e.Theta <= 0 {
		return fmt.Errorf("accuracy: Theta must be positive, got %g", e.Theta)
	}
	if !(e.Cut > 0 && e.Cut < 1) {
		return fmt.Errorf("accuracy: Cut must lie in (0,1), got %g", e.Cut)
	}
	return nil
}

// asym returns the asymptotic accuracy (slightly above AMax).
func (e Exponential) asym() float64 { return e.AMin + (e.AMax-e.AMin)/e.Cut }

// rate returns the exponent coefficient c such that a'(0) = Theta.
func (e Exponential) rate() float64 { return e.Theta / (e.asym() - e.AMin) }

// Eval returns the model accuracy at f GFLOPs (clamped below at 0 work and
// capped at AMax so Eval(FMax) == AMax holds exactly despite rounding).
func (e Exponential) Eval(f float64) float64 {
	if f <= 0 {
		return e.AMin
	}
	a := e.asym() - (e.asym()-e.AMin)*math.Exp(-e.rate()*f)
	if a > e.AMax {
		return e.AMax
	}
	return a
}

// Derivative returns a'(f) of the unclamped curve.
func (e Exponential) Derivative(f float64) float64 {
	return e.Theta * math.Exp(-e.rate()*f)
}

// FMax returns the work at which the model reaches AMax:
// the point where exp(−c·f) = 1 − Cut.
func (e Exponential) FMax() float64 {
	return math.Log(1/(1-e.Cut)) / e.rate()
}

// InverseEval returns the work needed to reach accuracy a on the smooth
// curve (0 for a <= AMin, FMax for a >= AMax).
func (e Exponential) InverseEval(a float64) float64 {
	if a <= e.AMin {
		return 0
	}
	if a >= e.AMax {
		return e.FMax()
	}
	return -math.Log((e.asym()-a)/(e.asym()-e.AMin)) / e.rate()
}
