package accuracy

import "fmt"

// Preset describes a named slimmable-network family with its accuracy
// range and a representative task-efficiency scale. The values follow the
// published top-1 ImageNet-1k accuracies of the Once-For-All and AutoSlim
// model families the paper builds on (Cai et al. 2020, Yu & Huang 2019);
// Theta is calibrated so the uncompressed work FMax lands at the family's
// typical full-model GFLOPs.
type Preset struct {
	Name  string
	AMin  float64 // random guess over the class count
	AMax  float64 // uncompressed top-1 accuracy
	Theta float64 // accuracy per GFLOP at zero work
}

// Model returns the exponential accuracy model of the preset.
func (p Preset) Model() Exponential {
	return Exponential{AMin: p.AMin, AMax: p.AMax, Theta: p.Theta, Cut: DefaultCut}
}

// PWL returns the paper's 5-segment piecewise-linear fit of the preset.
func (p Preset) PWL() (*PWL, error) {
	return FitChord(p.Model(), DefaultSegments)
}

// Presets lists the built-in model families. "ofa-resnet50" is the paper's
// experimental subject (a_min = 1/1000, a_max = 0.82).
var Presets = []Preset{
	// ofa-resnet50: full model ≈ 4.1 GFLOPs at 0.82 top-1.
	{Name: "ofa-resnet50", AMin: 1.0 / 1000, AMax: 0.82, Theta: 0.80},
	// ofa-mobilenetv3: full model ≈ 0.6 GFLOPs at 0.767 top-1.
	{Name: "ofa-mobilenetv3", AMin: 1.0 / 1000, AMax: 0.767, Theta: 5.0},
	// autoslim-mnasnet: full model ≈ 0.53 GFLOPs at 0.765 top-1.
	{Name: "autoslim-mnasnet", AMin: 1.0 / 1000, AMax: 0.765, Theta: 5.6},
	// ofa-resnet50 on a 100-class task: higher floor, same family.
	{Name: "ofa-resnet50-100c", AMin: 1.0 / 100, AMax: 0.82, Theta: 0.80},
}

// PresetByName returns the named preset.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("accuracy: unknown preset %q", name)
}
