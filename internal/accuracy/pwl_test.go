package accuracy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// simplePWL: a(0)=0.1, a(10)=0.6, a(30)=0.8 — two segments, slopes 0.05, 0.01.
func simplePWL(t *testing.T) *PWL {
	t.Helper()
	p, err := NewPWL([]float64{0, 10, 30}, []float64{0.1, 0.6, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPWLValidation(t *testing.T) {
	cases := []struct {
		name   string
		breaks []float64
		vals   []float64
	}{
		{"mismatched lengths", []float64{0, 1}, []float64{0.1}},
		{"too few points", []float64{0}, []float64{0.1}},
		{"nonzero start", []float64{1, 2}, []float64{0.1, 0.2}},
		{"non-increasing breaks", []float64{0, 5, 5}, []float64{0.1, 0.2, 0.3}},
		{"decreasing values", []float64{0, 5, 10}, []float64{0.1, 0.3, 0.2}},
		{"convex (increasing slopes)", []float64{0, 10, 20}, []float64{0.0, 0.1, 0.5}},
	}
	for _, c := range cases {
		if _, err := NewPWL(c.breaks, c.vals); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestEval(t *testing.T) {
	p := simplePWL(t)
	cases := []struct{ f, want float64 }{
		{-5, 0.1}, {0, 0.1}, {5, 0.35}, {10, 0.6}, {20, 0.7}, {30, 0.8}, {100, 0.8},
	}
	for _, c := range cases {
		if got := p.Eval(c.f); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", c.f, got, c.want)
		}
	}
}

func TestMarginalGainLoss(t *testing.T) {
	p := simplePWL(t)
	if g := p.MarginalGain(5); !numeric.AlmostEqual(g, 0.05) {
		t.Errorf("gain mid-segment 1 = %g", g)
	}
	if g := p.MarginalGain(10); math.Abs(g-0.01) > 1e-12 {
		t.Errorf("gain at breakpoint = %g, want next slope 0.01", g)
	}
	if l := p.MarginalLoss(10); !numeric.AlmostEqual(l, 0.05) {
		t.Errorf("loss at breakpoint = %g, want prev slope 0.05", l)
	}
	if g := p.MarginalGain(30); g != 0 {
		t.Errorf("gain at FMax = %g, want 0", g)
	}
	if l := p.MarginalLoss(30); math.Abs(l-0.01) > 1e-12 {
		t.Errorf("loss at FMax = %g, want 0.01", l)
	}
	if g := p.MarginalGain(0); !numeric.AlmostEqual(g, 0.05) {
		t.Errorf("gain at 0 = %g", g)
	}
	if l := p.MarginalLoss(0); !numeric.AlmostEqual(l, 0.05) {
		t.Errorf("loss at 0 (convention) = %g", l)
	}
}

func TestInverse(t *testing.T) {
	p := simplePWL(t)
	cases := []struct{ a, want float64 }{
		{0.05, 0}, {0.1, 0}, {0.35, 5}, {0.6, 10}, {0.7, 20}, {0.8, 30},
	}
	for _, c := range cases {
		got, err := p.Inverse(c.a)
		if err != nil {
			t.Fatalf("Inverse(%g): %v", c.a, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Inverse(%g) = %g, want %g", c.a, got, c.want)
		}
	}
	if _, err := p.Inverse(0.9); err == nil {
		t.Error("Inverse above AMax should fail")
	}
}

func TestInverseEvalRoundTrip(t *testing.T) {
	p := simplePWL(t)
	f := func(raw float64) bool {
		a := 0.1 + math.Mod(math.Abs(raw), 0.7) // a in [0.1, 0.8)
		fval, err := p.Inverse(a)
		if err != nil {
			return false
		}
		return math.Abs(p.Eval(fval)-a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessors(t *testing.T) {
	p := simplePWL(t)
	if !numeric.AlmostEqual(p.AMin(), 0.1) || !numeric.AlmostEqual(p.AMax(), 0.8) ||
		!numeric.AlmostEqual(p.FMax(), 30) || p.NumSegments() != 2 {
		t.Errorf("accessors: AMin=%g AMax=%g FMax=%g K=%d", p.AMin(), p.AMax(), p.FMax(), p.NumSegments())
	}
	if !numeric.AlmostEqual(p.FirstSlope(), 0.05) || !numeric.AlmostEqual(p.LastSlope(), 0.01) {
		t.Errorf("slopes: first=%g last=%g", p.FirstSlope(), p.LastSlope())
	}
	bp := p.Breakpoints()
	if len(bp) != 3 || bp[0] != 0 || !numeric.AlmostEqual(bp[2], 30) {
		t.Errorf("Breakpoints = %v", bp)
	}
	vals := p.Values()
	if len(vals) != 3 || !numeric.AlmostEqual(vals[0], 0.1) || !numeric.AlmostEqual(vals[2], 0.8) {
		t.Errorf("Values = %v", vals)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	segs := p.Segments()
	if !numeric.AlmostEqual(segs[0].Width(), 10) || !numeric.AlmostEqual(segs[1].Width(), 20) {
		t.Errorf("segment widths: %g %g", segs[0].Width(), segs[1].Width())
	}
}

func TestEvalMonotoneAndConcaveProperty(t *testing.T) {
	p := simplePWL(t)
	f := func(r1, r2 float64) bool {
		f1 := math.Mod(math.Abs(r1), 30)
		f2 := math.Mod(math.Abs(r2), 30)
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		// Monotone non-decreasing.
		if p.Eval(f1) > p.Eval(f2)+1e-12 {
			return false
		}
		// Midpoint concavity: a((f1+f2)/2) >= (a(f1)+a(f2))/2.
		mid := (f1 + f2) / 2
		return p.Eval(mid)+1e-12 >= (p.Eval(f1)+p.Eval(f2))/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustPWLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPWL should panic on invalid input")
		}
	}()
	MustPWL([]float64{0}, []float64{0.5})
}

func TestSingleSegment(t *testing.T) {
	p := MustPWL([]float64{0, 4}, []float64{0.2, 0.6})
	if !numeric.AlmostEqual(p.Eval(2), 0.4) {
		t.Errorf("Eval(2) = %g", p.Eval(2))
	}
	if p.MarginalGain(4) != 0 {
		t.Error("gain at FMax should be 0")
	}
}
