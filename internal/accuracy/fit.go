package accuracy

import (
	"errors"
	"fmt"
	"math"
)

// DefaultSegments is the number of linear pieces the paper fits over the
// exponential accuracy curve.
const DefaultSegments = 5

// FitChord builds a K-segment concave PWL approximation of the exponential
// model by interpolating the curve at K+1 breakpoints (so the PWL passes
// through the curve and through both endpoints (0, AMin) and (FMax, AMax)).
// Breakpoints are placed at equal accuracy increments, which concentrates
// them where the curve bends; chord interpolation of a concave function is
// concave with non-increasing slopes by construction.
func FitChord(model Exponential, segments int) (*PWL, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if segments < 1 {
		return nil, fmt.Errorf("accuracy: need at least 1 segment, got %d", segments)
	}
	fmax := model.FMax()
	breaks := make([]float64, segments+1)
	vals := make([]float64, segments+1)
	breaks[0], vals[0] = 0, model.AMin
	for k := 1; k < segments; k++ {
		a := model.AMin + (model.AMax-model.AMin)*float64(k)/float64(segments)
		breaks[k] = model.InverseEval(a)
		vals[k] = a
	}
	breaks[segments], vals[segments] = fmax, model.AMax
	return NewPWL(breaks, vals)
}

// FitLeastSquares builds a K-segment PWL approximation of the exponential
// model by least-squares regression: breakpoints are fixed at the same
// equal-accuracy positions FitChord uses, endpoint values are pinned to
// (AMin, AMax), and the interior breakpoint values are chosen to minimise
// the squared error against samples of the curve. If the regression result
// violates concavity (possible on nearly-linear curves due to sampling), it
// falls back to the chord fit. This mirrors the paper's "linear regression
// with 5 segments over an exponential accuracy function".
func FitLeastSquares(model Exponential, segments, samples int) (*PWL, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if segments < 1 {
		return nil, fmt.Errorf("accuracy: need at least 1 segment, got %d", segments)
	}
	if samples < 2*segments {
		return nil, fmt.Errorf("accuracy: need at least %d samples for %d segments, got %d", 2*segments, segments, samples)
	}
	if segments == 1 {
		return FitChord(model, 1)
	}
	fmax := model.FMax()
	breaks := make([]float64, segments+1)
	breaks[0] = 0
	for k := 1; k < segments; k++ {
		a := model.AMin + (model.AMax-model.AMin)*float64(k)/float64(segments)
		breaks[k] = model.InverseEval(a)
	}
	breaks[segments] = fmax

	// Hat-function basis over interior breakpoints 1..segments-1; endpoint
	// contributions move to the right-hand side.
	nFree := segments - 1
	ata := make([][]float64, nFree)
	for i := range ata {
		ata[i] = make([]float64, nFree)
	}
	atb := make([]float64, nFree)
	for s := 0; s < samples; s++ {
		f := fmax * (float64(s) + 0.5) / float64(samples)
		y := model.Eval(f)
		// Locate the segment containing f and the two hat weights.
		k := 0
		for k+1 < segments && f > breaks[k+1] {
			k++
		}
		w1 := (breaks[k+1] - f) / (breaks[k+1] - breaks[k]) // weight of breakpoint k
		w2 := 1 - w1                                        // weight of breakpoint k+1
		// Map breakpoint index -> free-variable index (or pinned value).
		type term struct {
			idx int // -1 when pinned
			w   float64
			val float64 // pinned value when idx == -1
		}
		mk := func(bp int, w float64) term {
			switch bp {
			case 0:
				return term{idx: -1, w: w, val: model.AMin}
			case segments:
				return term{idx: -1, w: w, val: model.AMax}
			default:
				return term{idx: bp - 1, w: w}
			}
		}
		t1, t2 := mk(k, w1), mk(k+1, w2)
		rhs := y
		for _, t := range []term{t1, t2} {
			if t.idx == -1 {
				rhs -= t.w * t.val
			}
		}
		for _, ti := range []term{t1, t2} {
			if ti.idx == -1 {
				continue
			}
			atb[ti.idx] += ti.w * rhs
			for _, tj := range []term{t1, t2} {
				if tj.idx == -1 {
					continue
				}
				ata[ti.idx][tj.idx] += ti.w * tj.w
			}
		}
	}
	interior, err := solveSPD(ata, atb)
	if err != nil {
		return FitChord(model, segments)
	}
	vals := make([]float64, segments+1)
	vals[0], vals[segments] = model.AMin, model.AMax
	copy(vals[1:segments], interior)
	pwl, err := NewPWL(breaks, vals)
	if err != nil {
		// Concavity violated by regression noise; the chord fit is always valid.
		return FitChord(model, segments)
	}
	return pwl, nil
}

// solveSPD solves the small symmetric positive-definite system A·x = b by
// Gaussian elimination with partial pivoting. It returns an error for
// singular systems.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, errors.New("accuracy: singular normal equations")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// MaxFitError returns the maximum absolute deviation between the PWL and
// the model over a dense grid; used in tests and in the fig2 experiment.
func MaxFitError(pwl *PWL, model Exponential, grid int) float64 {
	fmax := model.FMax()
	var worst float64
	for i := 0; i <= grid; i++ {
		f := fmax * float64(i) / float64(grid)
		d := math.Abs(pwl.Eval(f) - model.Eval(f))
		if d > worst {
			worst = d
		}
	}
	return worst
}
