package lp

// Presolve/postsolve test suite. The differential half runs the layer
// against the plain cores over the shared corpora — presolve on and off
// must agree on status, objective and the full solution vector, the
// recovered duals must pass Certify against the ORIGINAL problem, and
// the restored Basis must warm-start children. The table-driven half
// pins each reduction (empty row, singleton row, fixed column, empty
// column, infeasibility by tightening) on hand-computed instances where
// the postsolved X and duals are known exactly.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// presolveXTol is the on/off agreement criterion. It is looser than the
// pricing differential's: bound tightening installs box edges that are
// numerically coincident with the rows they derive from, so the reduced
// problem's optimal vertex can split into a near-degenerate pair whose
// members differ by O(presolveTol) — either member is a legitimate
// answer within the cores' own feasibility tolerance.
const presolveXTol = 1e-6

// presolveDifferential runs one instance through the on/off agreement
// battery: tableau, revised, both dual entry points with certificates,
// and a warm-started child from the restored basis.
func presolveDifferential(t *testing.T, g *genLP, s *rng.Source) {
	t.Helper()
	off, err := Solve(g.p, Options{Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Solve(g.p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "tableau", off, on, presolveXTol)

	bon, bs, err := SolveBasis(g.p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "basis", off, bon, presolveXTol)

	don, err := SolveWithDuals(g.p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "duals", off, &don.Solution, presolveXTol)
	if don.Status == Optimal {
		if err := Certify(g.p, don.X, don.Duals, 1e-6); err != nil {
			t.Fatalf("tableau certificate after postsolve: %v", err)
		}
	}
	bdon, bbs, err := SolveBasisWithDuals(g.p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "basis-duals", off, &bdon.Solution, presolveXTol)
	if bdon.Status == Optimal {
		if err := Certify(g.p, bdon.X, bdon.Duals, 1e-6); err != nil {
			t.Fatalf("basis certificate after postsolve: %v", err)
		}
		if bbs == nil {
			t.Fatal("optimal presolved basis solve returned no basis")
		}
	}

	// The restored basis indexes the original rows, so it must warm-start
	// a bound-row child exactly like a direct solve's basis would.
	if off.Status != Optimal || bs == nil {
		return
	}
	v := s.Intn(g.p.NumVars())
	child := g.p.Clone()
	child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, math.Floor(off.X[v]))
	warm, _, err := SolveFrom(child, bs, Options{})
	if err != nil {
		t.Fatalf("warm from restored basis: %v", err)
	}
	cold, err := Solve(child, Options{Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "warm-restored", cold, warm, presolveXTol)
}

// TestDifferentialPresolve: presolve on vs off over the full 240-instance
// corpus, on both the rows-only family and the boxed family (whose fixed
// columns and singleton box rows are exactly the reductions' food).
func TestDifferentialPresolve(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			s := rng.NewReplicate(7, "lp-differential-presolve", i)
			t.Run("rows", func(t *testing.T) {
				presolveDifferential(t, corpusInstance(i), s)
			})
			t.Run("boxed", func(t *testing.T) {
				n := 1 + s.Intn(7)
				m := s.Intn(10)
				presolveDifferential(t, generateBoundedLP(s, n, m), s)
			})
		})
	}
}

// TestPresolveDegenerateStaircase: the collapsed-deadline staircase's
// length-1 prefix rows are singletons, so presolve bites hard on a
// massively degenerate instance — on/off must still agree on the known
// optimum and the recovered duals must certify.
func TestPresolveDegenerateStaircase(t *testing.T) {
	p := degenerateStaircaseLP(30, 3)
	want := 3.0
	on, err := Solve(p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	if on.Status != Optimal || math.Abs(on.Objective-want) > 1e-9 {
		t.Fatalf("presolved: status %v objective %g, want Optimal %g", on.Status, on.Objective, want)
	}
	ds, err := SolveWithDuals(p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal {
		t.Fatalf("duals: status %v", ds.Status)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Fatalf("degenerate certificate after postsolve: %v", err)
	}
}

// presolveCase is one hand-computed reduction scenario.
type presolveCase struct {
	name       string
	build      func() *Problem
	wantStatus Status
	// fallback marks shapes the layer hands back to the core unreduced.
	fallback bool
	// Reduced dimensions after presolveProblem (checked when not
	// fallback and the status is Optimal).
	wantRows, wantCols int
	wantX              []float64 // nil: skip
	wantObj            float64
	wantDuals          []float64 // nil: skip the dual recovery check
}

var presolveCases = []presolveCase{
	{
		// 0·x <= 2 is vacuous; x <= 3 becomes a bound; the then-empty
		// column rests at its best bound. Everything is decided without a
		// core solve, and the singleton row's dual is recovered from the
		// column's residual reduced cost.
		name: "empty-row-feasible",
		build: func() *Problem {
			p := NewProblem(1)
			p.SetObjCoef(0, 1)
			p.AddConstraint(nil, LE, 2)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 3)
			return p
		},
		wantStatus: Optimal,
		wantRows:   0, wantCols: 0,
		wantX: []float64{3}, wantObj: 3,
		wantDuals: []float64{0, 1},
	},
	{
		// 0·x >= 1 is an infeasibility certificate on its own.
		name: "empty-row-infeasible",
		build: func() *Problem {
			p := NewProblem(1)
			p.SetObjCoef(0, 1)
			p.AddConstraint(nil, GE, 1)
			return p
		},
		wantStatus: Infeasible,
	},
	{
		// The singleton row becomes the bound x0 <= 3; the two-column row
		// survives into the core. Optimum (3, 2): both rows bind, so both
		// duals are 1 — the eliminated row's recovered from the residual
		// reduced cost 2 − y1 of its column.
		name: "singleton-row-bound",
		build: func() *Problem {
			p := NewProblem(2)
			p.SetObjCoef(0, 2)
			p.SetObjCoef(1, 1)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 3)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 5)
			return p
		},
		wantStatus: Optimal,
		wantRows:   1, wantCols: 2,
		wantX: []float64{3, 2}, wantObj: 8,
		wantDuals: []float64{1, 1},
	},
	{
		// x0 = 7 pinned by an EQ singleton outside the box [0, 5].
		name: "singleton-eq-infeasible",
		build: func() *Problem {
			p := NewProblem(1)
			p.SetObjCoef(0, 1)
			p.SetBounds(0, 0, 5)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}}, EQ, 7)
			return p
		},
		wantStatus: Infeasible,
	},
	{
		// Two singletons squeeze the box empty beyond tolerance.
		name: "singleton-conflict-infeasible",
		build: func() *Problem {
			p := NewProblem(1)
			p.SetObjCoef(0, 1)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 1)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}}, GE, 2)
			return p
		},
		wantStatus: Infeasible,
	},
	{
		// x0 pinned at 2 substitutes into both rows; the leftovers become
		// a bound and an empty column at its preferred bound. Row 0 ends
		// slack (5 < 6) so its recovered dual stays 0; row 1 binds and
		// takes x1's residual reduced cost 1. x0's own residual is priced
		// by its zero-width box, not a row.
		name: "fixed-column",
		build: func() *Problem {
			p := NewProblem(2)
			p.SetObjCoef(0, 1)
			p.SetObjCoef(1, 1)
			p.SetBounds(0, 2, 2)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 6)
			p.AddConstraint([]Term{{Var: 1, Coef: 1}}, LE, 3)
			return p
		},
		wantStatus: Optimal,
		wantRows:   0, wantCols: 0,
		wantX: []float64{2, 3}, wantObj: 5,
		wantDuals: []float64{0, 1},
	},
	{
		// After the singleton row dissolves, both columns are empty: the
		// profitable one rests at its upper bound, the costly one at its
		// lower. The residuals are absorbed by the finite boxes, so every
		// dual is 0 and Certify balances through the bound multipliers.
		name: "empty-columns",
		build: func() *Problem {
			p := NewProblem(2)
			p.SetObjCoef(0, 2)
			p.SetObjCoef(1, -1)
			p.SetBounds(0, 0, 4)
			p.SetBounds(1, 1, 5)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 10)
			return p
		},
		wantStatus: Optimal,
		wantRows:   0, wantCols: 0,
		wantX: []float64{4, 1}, wantObj: 7,
		wantDuals: []float64{0},
	},
	{
		// x0 is profitable, row-free and unbounded above: presolve must
		// NOT decide it — the layer falls back and the core reports the
		// unbounded ray.
		name: "empty-column-unbounded",
		build: func() *Problem {
			p := NewProblem(2)
			p.SetObjCoef(0, 1)
			p.AddConstraint([]Term{{Var: 1, Coef: 1}}, LE, 1)
			return p
		},
		wantStatus: Unbounded,
		fallback:   true,
	},
	{
		// Activity bounds prove x0 + x1 >= 10 impossible under the boxes
		// (max activity 5) without any elimination firing first.
		name: "tighten-infeasible",
		build: func() *Problem {
			p := NewProblem(2)
			p.SetObjCoef(0, 1)
			p.SetBounds(0, 0, 2)
			p.SetBounds(1, 0, 3)
			p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, GE, 10)
			return p
		},
		wantStatus: Infeasible,
	},
}

func TestPresolveReductions(t *testing.T) {
	for _, tc := range presolveCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()

			// White-box: the reduction outcome itself.
			ps := presolveProblem(p, nil, false)
			if tc.fallback {
				if !ps.fallback {
					t.Fatal("expected presolve fallback")
				}
			} else if tc.wantStatus == Infeasible {
				if ps.status != Infeasible {
					t.Fatalf("presolve status %v, want Infeasible", ps.status)
				}
			} else {
				if ps.fallback || ps.status != Optimal {
					t.Fatalf("presolve status %v fallback %v, want clean Optimal", ps.status, ps.fallback)
				}
				rows, cols := 0, 0
				if ps.reduced != nil {
					rows, cols = ps.reduced.NumConstraints(), ps.reduced.NumVars()
				}
				if rows != tc.wantRows || cols != tc.wantCols {
					t.Fatalf("reduced to %dx%d, want %dx%d", rows, cols, tc.wantRows, tc.wantCols)
				}
			}

			// Black-box: the full solve and the off cross-check.
			on, err := Solve(p, Options{Presolve: PresolveOn})
			if err != nil {
				t.Fatal(err)
			}
			if on.Status != tc.wantStatus {
				t.Fatalf("status %v, want %v", on.Status, tc.wantStatus)
			}
			off, err := Solve(p, Options{Presolve: PresolveOff})
			if err != nil {
				t.Fatal(err)
			}
			assertAgreeXWithin(t, "on-vs-off", off, on, presolveXTol)
			if tc.wantX != nil {
				for v, want := range tc.wantX {
					if !numeric.Close(on.X[v], want, 1e-9) {
						t.Errorf("x[%d] = %.17g, want %g", v, on.X[v], want)
					}
				}
				if !numeric.Close(on.Objective, tc.wantObj, 1e-9) {
					t.Errorf("objective = %.17g, want %g", on.Objective, tc.wantObj)
				}
			}

			// Dual recovery against the hand-computed multipliers, through
			// both dual entry points, each certified on the original data.
			if tc.wantDuals == nil {
				return
			}
			for _, ep := range []struct {
				name  string
				solve func() (*DualSolution, error)
			}{
				{"tableau", func() (*DualSolution, error) {
					return SolveWithDuals(p, Options{Presolve: PresolveOn})
				}},
				{"basis", func() (*DualSolution, error) {
					ds, _, err := SolveBasisWithDuals(p, Options{Presolve: PresolveOn})
					return ds, err
				}},
			} {
				ds, err := ep.solve()
				if err != nil {
					t.Fatalf("%s: %v", ep.name, err)
				}
				if ds.Status != Optimal {
					t.Fatalf("%s: status %v", ep.name, ds.Status)
				}
				if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
					t.Fatalf("%s certificate: %v", ep.name, err)
				}
				for i, want := range tc.wantDuals {
					if !numeric.Close(ds.Duals[i], want, 1e-9) {
						t.Errorf("%s: y[%d] = %.17g, want %g", ep.name, i, ds.Duals[i], want)
					}
				}
			}
		})
	}
}

// TestPresolveScalingRoundTrip: a badly scaled instance must come out of
// presolve with power-of-two scales (exact unscaling), conditioned
// reduced coefficients, and answers identical to the unscaled solve.
func TestPresolveScalingRoundTrip(t *testing.T) {
	p := NewProblem(3)
	for v := 0; v < 3; v++ {
		p.SetObjCoef(v, 1)
		p.SetBounds(v, 0, 1)
	}
	p.AddConstraint([]Term{{Var: 0, Coef: 1e6}, {Var: 1, Coef: 4e6}}, LE, 4e6)
	p.AddConstraint([]Term{{Var: 1, Coef: 3e-5}, {Var: 2, Coef: 1e-5}}, LE, 6e-5)

	ps := presolveProblem(p, nil, false)
	if ps.fallback || ps.status != Optimal || ps.reduced == nil {
		t.Fatalf("presolve did not produce a reduced problem (status %v fallback %v)", ps.status, ps.fallback)
	}
	if ps.rowScale == nil || ps.colScale == nil {
		t.Fatal("badly scaled instance produced no scaling")
	}
	pow2 := func(s float64) bool {
		frac, _ := math.Frexp(s)
		//lint:ignore floatcmp power-of-two check: Frexp fraction is exactly 0.5 iff s is 2^k
		return frac == 0.5
	}
	for _, i := range ps.rows {
		if !pow2(ps.rowScale[i]) {
			t.Errorf("row scale %g is not a power of two", ps.rowScale[i])
		}
	}
	for _, j := range ps.cols {
		if !pow2(ps.colScale[j]) {
			t.Errorf("col scale %g is not a power of two", ps.colScale[j])
		}
	}
	// Geometric-mean equilibration must pull the 11-orders spread into a
	// narrow band around 1.
	for i := 0; i < ps.reduced.NumConstraints(); i++ {
		for _, tm := range ps.reduced.rowAt(i).terms {
			if a := math.Abs(tm.Coef); a < 1.0/16 || a > 16 {
				t.Errorf("reduced coefficient %g poorly conditioned", tm.Coef)
			}
		}
	}

	off, err := Solve(p, Options{Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Solve(p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "scaled", off, on, presolveXTol)
	ds, err := SolveWithDuals(p, Options{Presolve: PresolveOn})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal {
		t.Fatalf("duals: status %v", ds.Status)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Fatalf("scaled certificate: %v", err)
	}
}

// TestPow2Recip pins the scale rounding: g·pow2Recip(g) must land in
// [1/√2, √2), degenerate inputs map to 1.
func TestPow2Recip(t *testing.T) {
	for _, g := range []float64{1, 3, 0.7, 1e6, 1e-6, 2.5e-5, 7.3e8} {
		s := pow2Recip(g)
		//lint:ignore floatcmp power-of-two check: Frexp fraction is exactly 0.5 iff s is 2^k
		if frac, _ := math.Frexp(s); frac != 0.5 {
			t.Errorf("pow2Recip(%g) = %g is not a power of two", g, s)
		}
		if prod := g * s; prod < math.Sqrt2/2-1e-15 || prod >= math.Sqrt2+1e-15 {
			t.Errorf("pow2Recip(%g): product %g outside [1/sqrt2, sqrt2)", g, prod)
		}
	}
	for _, g := range []float64{0, -1, math.Inf(1), math.NaN()} {
		//lint:ignore floatcmp degenerate inputs return the exact literal 1
		if s := pow2Recip(g); s != 1 {
			t.Errorf("pow2Recip(%g) = %g, want 1", g, s)
		}
	}
}

// TestRootPresolveKeep: keep columns (branch-and-bound integers) survive
// every reduction unscaled — even a zero-width box, the shape a pinned
// binary takes — and the exported handle's maps and offset satisfy
// original objective = reduced objective + ObjOffset with keep values
// identical in both spaces.
func TestRootPresolveKeep(t *testing.T) {
	p := NewProblem(3)
	for v := 0; v < 3; v++ {
		p.SetObjCoef(v, 1)
	}
	p.SetBounds(0, 1, 1) // kept integer pinned by branching
	p.SetBounds(2, 2, 2) // free continuous column: eliminated
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 4)
	p.AddConstraint([]Term{{Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, LE, 5)

	ps := RootPresolve(p, []int{0}, Options{Presolve: PresolveOn})
	if ps == nil || ps.Status() != Optimal {
		t.Fatal("RootPresolve declined a reducible problem")
	}
	red := ps.Reduced()
	if red == nil {
		t.Fatal("no reduced problem")
	}
	if ps.Col(0) < 0 {
		t.Fatal("keep column eliminated")
	}
	if ps.Col(2) != -1 {
		t.Fatal("fixed continuous column survived")
	}
	if got := ps.ObjOffset(); !numeric.AlmostEqual(got, 2) {
		t.Fatalf("ObjOffset = %g, want 2 (eliminated x2)", got)
	}
	// Keep columns are never rescaled: the pinned box must read back
	// verbatim in the reduced space.
	lo, hi := red.Bounds(ps.Col(0))
	//lint:ignore floatcmp keep-column bounds are copied verbatim, never rescaled
	if lo != 1 || hi != 1 {
		t.Fatalf("keep column box [%g, %g] in reduced space, want [1, 1]", lo, hi)
	}

	sol, err := Solve(red, Options{Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("reduced status %v", sol.Status)
	}
	x := ps.PostsolveX(sol.X)
	var orig float64
	for v := 0; v < 3; v++ {
		orig += x[v]
	}
	if !numeric.Close(orig, sol.Objective+ps.ObjOffset(), 1e-9) {
		t.Fatalf("objective identity broken: original %g != reduced %g + offset %g",
			orig, sol.Objective, ps.ObjOffset())
	}
	//lint:ignore floatcmp pinned boxes postsolve to their exact bound values
	if x[0] != 1 || x[2] != 2 {
		t.Fatalf("postsolve x = %v, want x0=1 (keep) and x2=2 (fixed)", x)
	}
	// The keep column's value maps 1:1 between the spaces.
	//lint:ignore floatcmp postsolve copies keep-column values bit-for-bit
	if x[0] != sol.X[ps.Col(0)] {
		t.Fatalf("keep column value changed across postsolve: %g != %g", x[0], sol.X[ps.Col(0)])
	}
}
