package lp

// Sparse constraint-matrix representation. The DSCT-EA formulations are
// structurally sparse — a variable t_jr appears only in machine r's
// deadline-staircase rows and a handful of per-task rows, so nonzero
// density falls roughly as 1/m — while the revised core's dense matrix
// walks every (row, column) pair on each pricing and pivot-row pass. This
// file provides the shared ingredients both cores build from:
//
//   - dedupRows flattens a Problem into sorted, deduplicated index/value
//     rows (repeated Terms accumulate, as AddConstraint documents), the
//     single construction path for the tableau, the dense revised matrix
//     and the sparse index pair;
//   - csMatrix holds the oriented, equilibrated structural block in both
//     CSR (row-major: pricing and pivot-row passes walk row nonzeros) and
//     CSC (column-major: FTRAN and basis gathers walk column nonzeros).
//
// Logical columns (one per row, always coefficient +1 after orientation)
// and artificial columns (±e_i) are implicit everywhere and reconstructed
// on demand, so only structural nonzeros are stored.

import "sort"

// Auto-mode thresholds: the indexed passes win once the structural block
// is big enough that dense scans dominate a solve, and sparse enough that
// walking index lists beats streaming contiguous rows.
const (
	// sparseAutoRows is the minimum row count for SparseAuto to pick the
	// sparse representation.
	sparseAutoRows = 64
	// sparseAutoMaxDensity is the maximum structural density
	// nnz/(rows·cols) at which SparseAuto picks the sparse representation.
	sparseAutoMaxDensity = 0.25
)

// autoSparse decides the SparseAuto representation for a problem with m
// rows, n structural variables and nnz structural nonzeros.
func autoSparse(m, n, nnz int) bool {
	return m >= sparseAutoRows && float64(nnz) <= sparseAutoMaxDensity*float64(m)*float64(n)
}

// sparseRows is a Problem's constraint list in compressed row form, before
// any orientation or scaling: row i's structural nonzeros are
// (idx[k], val[k]) for k in [ptr[i], ptr[i+1]), with idx ascending within
// each row and repeated Terms accumulated. Terms that cancel to exactly
// zero are dropped.
type sparseRows struct {
	ptr   []int // m+1 offsets into idx/val
	idx   []int
	val   []float64
	sense []Sense
	rhs   []float64
}

// nnz returns the stored structural nonzero count.
func (sr *sparseRows) nnz() int { return len(sr.idx) }

// row returns the index and value slices of row i (read-only views).
func (sr *sparseRows) row(i int) ([]int, []float64) {
	return sr.idx[sr.ptr[i]:sr.ptr[i+1]], sr.val[sr.ptr[i]:sr.ptr[i+1]]
}

// dedupRows flattens p into fresh sparseRows storage; see
// dedupScratch.flatten for the reusable-form worker.
func dedupRows(p *Problem) *sparseRows {
	var ds dedupScratch
	return ds.flatten(p, &sparseRows{})
}

// dedupScratch is the scatter buffer of the row flattener, reusable across
// solves (a Workspace keeps one per core).
type dedupScratch struct {
	acc     []float64
	inRow   []bool
	touched []int
}

// flatten flattens p into sr, reusing sr's storage and the scratch.
// O(total terms + nnz log nnz-per-row) using a scatter buffer, so overlay
// problems (shared base rows plus a few appended bound rows) flatten
// without touching the base's Term storage.
func (ds *dedupScratch) flatten(p *Problem, sr *sparseRows) *sparseRows {
	m, n := p.NumConstraints(), p.nVars
	sr.ptr = grown(sr.ptr, m+1)
	sr.sense = grown(sr.sense, m)
	sr.rhs = grown(sr.rhs, m)
	total := 0
	for i := 0; i < m; i++ {
		total += len(p.rowAt(i).terms)
	}
	if cap(sr.idx) < total {
		sr.idx = make([]int, 0, total)
	} else {
		sr.idx = sr.idx[:0]
	}
	if cap(sr.val) < total {
		sr.val = make([]float64, 0, total)
	} else {
		sr.val = sr.val[:0]
	}

	ds.acc = grown(ds.acc, n)
	ds.inRow = grown(ds.inRow, n)
	acc, inRow := ds.acc, ds.inRow
	touched := ds.touched[:0]
	for i := 0; i < m; i++ {
		r := p.rowAt(i)
		for _, tm := range r.terms {
			if !inRow[tm.Var] {
				inRow[tm.Var] = true
				touched = append(touched, tm.Var)
			}
			acc[tm.Var] += tm.Coef
		}
		sort.Ints(touched)
		for _, v := range touched {
			if c := acc[v]; c != 0 {
				sr.idx = append(sr.idx, v)
				sr.val = append(sr.val, c)
			}
			acc[v] = 0
			inRow[v] = false
		}
		touched = touched[:0]
		sr.sense[i] = r.sense
		sr.rhs[i] = r.rhs
		sr.ptr[i+1] = len(sr.idx)
	}
	ds.touched = touched[:0] // keep any growth for the next flatten
	return sr
}

// csMatrix is the revised core's oriented (>= rows negated to <=) and
// row-equilibrated structural block, indexed both ways. The two views hold
// identical values; passes pick whichever walks only the nonzeros they
// need.
type csMatrix struct {
	m, n int
	// CSR: row i's nonzeros are (colIdx[k], rowVal[k]) for
	// k in [rowPtr[i], rowPtr[i+1]), colIdx ascending.
	rowPtr []int
	colIdx []int
	rowVal []float64
	// CSC: column j's nonzeros are (rowIdx[k], colVal[k]) for
	// k in [colPtr[j], colPtr[j+1]), rowIdx ascending.
	colPtr []int
	rowIdx []int
	colVal []float64
}

// newCSMatrix builds the index pair from already-oriented, already-scaled
// rows: cols/vals views per row as produced by the caller. The CSC side is
// a counting transpose of the CSR side, O(nnz + n + m).
func newCSMatrix(m, n int, rowPtr []int, colIdx []int, rowVal []float64) *csMatrix {
	sp := &csMatrix{}
	sp.build(m, n, rowPtr, colIdx, rowVal, make([]int, n))
	return sp
}

// build fills sp from already-oriented, already-scaled rows, reusing sp's
// CSC storage (the CSR side aliases the caller's slices). next is an
// n-length scratch slice owned by the caller; its contents are destroyed.
func (sp *csMatrix) build(m, n int, rowPtr []int, colIdx []int, rowVal []float64, next []int) {
	sp.m, sp.n = m, n
	sp.rowPtr, sp.colIdx, sp.rowVal = rowPtr, colIdx, rowVal
	sp.colPtr = grown(sp.colPtr, n+1)
	sp.rowIdx = grown(sp.rowIdx, len(colIdx))
	sp.colVal = grown(sp.colVal, len(colIdx))
	for _, j := range colIdx {
		sp.colPtr[j+1]++
	}
	for j := 0; j < n; j++ {
		sp.colPtr[j+1] += sp.colPtr[j]
	}
	copy(next, sp.colPtr[:n])
	for i := 0; i < m; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			j := colIdx[k]
			sp.rowIdx[next[j]] = i
			sp.colVal[next[j]] = rowVal[k]
			next[j]++
		}
	}
}

// at returns entry (r, col) of the structural block by binary search in
// column col (row indices are ascending). Used only by the cold paths
// (inverse inheritance of appended rows); hot passes walk whole rows or
// columns instead.
func (sp *csMatrix) at(r, col int) float64 {
	lo, hi := sp.colPtr[col], sp.colPtr[col+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if sp.rowIdx[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < sp.colPtr[col+1] && sp.rowIdx[lo] == r {
		return sp.colVal[lo]
	}
	return 0
}
