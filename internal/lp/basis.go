package lp

import "fmt"

// Column kinds of a basis entry, in the revised solver's canonical layout.
// Every row of a problem owns one logical column (the slack of a <= row,
// the negated-slack of a >= row, or the fixed-at-zero logical of an == row)
// and one phase-1 artificial column. Structural variables keep their
// problem indices.
const (
	basisStructural uint8 = iota
	basisLogical
	basisArtificial
)

// basisEntry identifies one basic column: a structural variable by index,
// or a row's logical/artificial column by row index. Row-indexed entries
// stay valid when further rows are appended to the problem, which is what
// makes a Basis transferable from a branch-and-bound parent to its
// children.
type basisEntry struct {
	kind uint8
	idx  int
}

// Basis is the basic column set of a solved linear program, one entry per
// constraint row, as produced by SolveBasis and SolveFrom — plus, for the
// bounded-variable method, the nonbasic-at-upper markers that complete the
// solution's description (a nonbasic structural column rests at its lower
// bound unless marked). It is an opaque warm-start token: pass it to
// SolveFrom on a problem whose leading rows are identical to the rows of
// the problem that produced it — typically the same problem with one
// variable's bounds tightened (row-free branch-and-bound children) and/or
// extra rows appended. A Basis is immutable once returned and safe to
// share across goroutines.
//
// Besides the column set, a Basis snapshots the basis representation at
// optimality, in whichever form the producing kernel maintained it
// (Options.Factor). The default LU kernel stores its frozen sparse L·U
// factors plus eta file (fac): a child warm start adopts them by a O(1)
// struct copy — the triangular factors are immutable and shared, and the
// first eta the child appends copies the clipped eta file out of the
// shared backing (copy-on-write), so sibling children never race. The
// legacy dense kernel stores the explicit inverse (binv, m² floats);
// because a child's basis matrix is block lower-triangular over its
// parent's (appended rows keep their logicals basic), SolveFrom extends
// that snapshot in O(m²) per appended row instead of refactorising in
// O(m³). Branch-and-bound children share their parent's Basis pointer, so
// live memory scales with the open frontier, not the tree. age counts the
// product-form updates the snapshot has absorbed since its last
// from-scratch factorisation; SolveFrom refuses dense snapshots whose age
// exceeds the refactorisation interval (and LU snapshots whose eta file
// has gone fill-heavy) and rebuilds instead, bounding inherited roundoff
// across generations.
type Basis struct {
	//lint:frozen a Basis is immutable once returned
	nVars int
	//lint:frozen the column set is shared by every child warm start
	entries []basisEntry
	// atUpper[v] marks nonbasic structural variable v as resting at its
	// upper bound (false: lower bound; always false for basic columns).
	// Only structural columns need the marker: logicals and artificials
	// rest at zero whenever nonbasic.
	//
	//lint:frozen the bound markers are shared by every child warm start
	atUpper []bool
	//lint:frozen the inverse snapshot is read-only; children copy before extending
	binv []float64 // NumRows()² snapshot of B⁻¹, row-major (nil: none)
	//lint:frozen frozen factors are adopted by struct copy; etas append copy-on-write
	fac *luFactor // frozen LU factors + eta file (nil: none)
	//lint:frozen a Basis is immutable once returned
	age int // updates absorbed since the last true factorisation
	// devex snapshots the devex reference weights at optimality — [0, n)
	// structural, then one weight per row's logical — when the producing
	// solve priced with them (nil otherwise). A warm-started child that
	// also prices with devex adopts the shared segments so its first
	// pivots rank columns by the parent's geometry; the weights reset to
	// unit on any refactorisation, the warm-start fallback included.
	//
	//lint:frozen the weight snapshot is shared by every child warm start
	devex []float64
}

// NumVars returns the structural variable count of the producing problem.
func (b *Basis) NumVars() int { return b.nVars }

// NumRows returns the constraint row count of the producing problem.
func (b *Basis) NumRows() int { return len(b.entries) }

// String summarises the basis composition for diagnostics.
func (b *Basis) String() string {
	var nStruct, nLogical, nArt int
	for _, e := range b.entries {
		switch e.kind {
		case basisStructural:
			nStruct++
		case basisLogical:
			nLogical++
		case basisArtificial:
			nArt++
		}
	}
	return fmt.Sprintf("lp.Basis{rows: %d, structural: %d, logical: %d, artificial: %d}",
		len(b.entries), nStruct, nLogical, nArt)
}

// AdaptRows returns a basis usable on a problem whose constraint rows were
// rearranged relative to the producing problem's: rowMap[i] names the new
// index of old row i, or -1 when that row was dropped. newRows is the
// target problem's row count; rows of the target not named by rowMap are
// treated as freshly appended and get their own logical column basic — the
// same starting state SolveFrom gives rows appended after the snapshot.
// rowMap must be injective over its non-negative entries.
//
// The identity map (every old row keeps its index and newRows equals
// NumRows) returns b itself, snapshot factors intact — the fast path for
// re-solves whose deltas were pure bound, objective or right-hand-side
// edits. Any real rearrangement returns a new Basis carrying only the
// column set and at-upper markers: the factorisation, inverse and pricing
// snapshots describe the old row order and are dropped, so the adopting
// solve refactorises once (lp.Solution.FactorRebuilt reports it).
//
// Adaptation is positional and cannot consult the problems involved, so a
// pathological map can produce a column set SolveFrom rejects (e.g. a
// dropped row's logical basic in a surviving position colliding with that
// position's own fresh logical). Callers treat a warm-start error as "not
// adoptable" and fall back to a cold solve, exactly as for any other
// rejected basis.
func (b *Basis) AdaptRows(rowMap []int, newRows int) *Basis {
	if len(rowMap) != len(b.entries) {
		panic(fmt.Sprintf("lp: AdaptRows map covers %d rows, basis has %d", len(rowMap), len(b.entries)))
	}
	identity := newRows == len(b.entries)
	for i, j := range rowMap {
		if j >= newRows {
			panic(fmt.Sprintf("lp: AdaptRows maps row %d to %d, target has %d rows", i, j, newRows))
		}
		if j != i {
			identity = false
		}
	}
	if identity {
		return b
	}
	entries := make([]basisEntry, newRows)
	for j := range entries {
		entries[j] = basisEntry{kind: basisLogical, idx: j}
	}
	for i, e := range b.entries {
		j := rowMap[i]
		if j < 0 {
			continue // the row is gone; its basic column is released
		}
		if e.kind != basisStructural {
			// Row-indexed entry: follow its row through the map. A logical
			// or artificial of a dropped row no longer exists as a column —
			// keep position j's default own-row logical instead.
			if ni := rowMap[e.idx]; ni >= 0 {
				entries[j] = basisEntry{kind: e.kind, idx: ni}
			}
			continue
		}
		entries[j] = e
	}
	return &Basis{nVars: b.nVars, entries: entries, atUpper: b.atUpper}
}

// column maps an entry to its column index in a problem with n structural
// variables and m rows (canonical layout: structural, then m logicals,
// then m artificials).
func (e basisEntry) column(n, m int) int {
	switch e.kind {
	case basisLogical:
		return n + e.idx
	case basisArtificial:
		return n + m + e.idx
	default:
		return e.idx
	}
}

// entryForColumn is the inverse of column.
func entryForColumn(col, n, m int) basisEntry {
	switch {
	case col < n:
		return basisEntry{kind: basisStructural, idx: col}
	case col < n+m:
		return basisEntry{kind: basisLogical, idx: col - n}
	default:
		return basisEntry{kind: basisArtificial, idx: col - n - m}
	}
}
