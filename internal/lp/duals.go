package lp

// Dual values and optimality certificates. The simplex tableau carries the
// dual solution implicitly: for an optimal basis, the reduced cost of the
// i-th logical (slack/surplus) column equals ± the dual multiplier of
// constraint i, and complementary slackness links primal activities to
// dual prices. SolveWithDuals exposes them, and Certify re-verifies a
// claimed optimum from first principles (feasibility + dual feasibility +
// matching objectives), which the test suite uses as an independent
// correctness oracle for the solver.

import (
	"fmt"
	"math"
)

// DualSolution augments a Solution with constraint duals and variable
// reduced costs.
type DualSolution struct {
	Solution
	// Duals[i] is the shadow price of constraint i: the rate of change of
	// the optimal objective per unit of slack added to the RHS. For a
	// maximisation with a·x <= b rows, duals are >= 0; for >= rows, <= 0.
	Duals []float64
	// ReducedCosts[v] is c_v − yᵀA_v for structural variable v; at an
	// optimum it is <= 0, and 0 for basic (positive) variables.
	ReducedCosts []float64
}

// SolveWithDuals solves p and extracts the dual values of the optimal
// basis. Only Optimal results carry duals.
func SolveWithDuals(p *Problem, opts Options) (*DualSolution, error) {
	t := newTableau(p, opts)
	if t.nArt > 0 {
		phase1 := make([]float64, t.width)
		for c := t.artBase; c < t.width; c++ {
			phase1[c] = -1
		}
		t.setObjective(phase1)
		status := t.iterate(true)
		if status != Optimal {
			return &DualSolution{Solution: Solution{Status: status, Iterations: t.iters}}, nil
		}
		if t.artificialResidual() > feasTol {
			return &DualSolution{Solution: Solution{Status: Infeasible, Iterations: t.iters}}, nil
		}
		t.driveOutArtificials()
	}
	phase2 := make([]float64, t.width)
	copy(phase2, p.obj)
	t.setObjective(phase2)
	status := t.iterate(false)

	ds := &DualSolution{Solution: Solution{Status: status, Iterations: t.iters}}
	if status != Optimal && status != IterLimit && status != TimeLimit {
		return ds, nil
	}
	ds.X = t.extract(p)
	for v, c := range p.obj {
		ds.Objective += c * ds.X[v]
	}
	if status != Optimal {
		return ds, nil
	}

	// Duals from the logical columns' reduced costs. Building the tableau
	// assigned one slack (LE, +1) or surplus (GE, −1) column per row in
	// row order, after RHS normalisation (which flips senses for negative
	// RHS and scales rows); undo both effects here.
	ds.Duals = make([]float64, p.NumConstraints())
	ds.ReducedCosts = make([]float64, p.nVars)
	logical := t.n
	for i := 0; i < p.NumConstraints(); i++ {
		scale := t.rowScale[i]
		flipped := t.rowFlipped[i]
		var y float64
		switch t.rowSense[i] { // sense after normalisation
		case LE:
			y = -t.objRow[logical] // slack column: d_slack = −y_i
			logical++
		case GE:
			y = t.objRow[logical] // surplus column (−1 coef): d = +y_i
			logical++
		case EQ:
			// Equality rows have no logical column; recover the dual from
			// any basic row... handled below via reduced-cost identity.
			y = math.NaN()
		}
		if flipped {
			y = -y
		}
		// The tableau rows were divided by `scale`, which multiplies the
		// dual by 1/scale relative to the original row; undo it.
		if scale != 0 {
			y /= scale
		}
		ds.Duals[i] = y
	}
	// Recover equality duals (and double-check the rest) by solving
	// yᵀA_B = c_B is unnecessary: instead use the identity
	// reduced(v) = c_v − Σ_i y_i·A[i][v] and the fact that the artificial
	// column of an EQ row is an identity column in the original matrix:
	// its reduced cost is 0 − y_i (artificials have zero cost in phase 2).
	art := t.artBase
	logical = t.n
	for i := 0; i < p.NumConstraints(); i++ {
		switch t.rowSense[i] {
		case LE, GE:
			logical++
		case EQ:
			y := -t.objRow[art]
			if t.rowFlipped[i] {
				y = -y
			}
			if s := t.rowScale[i]; s != 0 {
				y /= s
			}
			ds.Duals[i] = y
		}
		if t.rowSense[i] == GE || t.rowSense[i] == EQ {
			art++
		}
	}
	// Structural reduced costs straight from the objective row.
	copy(ds.ReducedCosts, t.objRow[:p.nVars])
	return ds, nil
}

// Certify checks an optimality certificate for an all-finite (x, y) pair:
// primal feasibility of x, sign-correct dual feasibility of y with
// non-positive structural reduced costs wherever x_v = 0 (complementary
// slackness in the other direction is implied by the matching objectives),
// and b·y == c·x within tol. It returns nil when the certificate proves
// optimality.
func Certify(p *Problem, x, y []float64, tol float64) error {
	if len(x) != p.nVars || len(y) != p.NumConstraints() {
		return fmt.Errorf("lp: certificate dimensions mismatch")
	}
	// Primal feasibility.
	for v, xv := range x {
		if xv < -tol {
			return fmt.Errorf("lp: x[%d] = %g negative", v, xv)
		}
	}
	for i := 0; i < p.NumConstraints(); i++ {
		r := p.rowAt(i)
		var lhs float64
		for _, tm := range r.terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol*scaleOf(r.rhs) {
				return fmt.Errorf("lp: row %d violated: %g > %g", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol*scaleOf(r.rhs) {
				return fmt.Errorf("lp: row %d violated: %g < %g", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol*scaleOf(r.rhs) {
				return fmt.Errorf("lp: row %d violated: %g != %g", i, lhs, r.rhs)
			}
		}
	}
	// Dual sign feasibility.
	for i := 0; i < p.NumConstraints(); i++ {
		r := p.rowAt(i)
		switch r.sense {
		case LE:
			if y[i] < -tol {
				return fmt.Errorf("lp: dual %d = %g negative for <= row", i, y[i])
			}
		case GE:
			if y[i] > tol {
				return fmt.Errorf("lp: dual %d = %g positive for >= row", i, y[i])
			}
		}
	}
	// Reduced costs: c_v − yᵀA_v <= 0 for all v (maximisation).
	colSum := make([]float64, p.nVars)
	colScale := make([]float64, p.nVars)
	for i := 0; i < p.NumConstraints(); i++ {
		r := p.rowAt(i)
		for _, tm := range r.terms {
			colSum[tm.Var] += y[i] * tm.Coef
			colScale[tm.Var] += math.Abs(y[i] * tm.Coef)
		}
	}
	for v := range colSum {
		red := p.obj[v] - colSum[v]
		if red > tol*math.Max(1, colScale[v]) {
			return fmt.Errorf("lp: reduced cost of x[%d] = %g positive", v, red)
		}
	}
	// Strong duality.
	var primal, dual float64
	for v, c := range p.obj {
		primal += c * x[v]
	}
	for i := 0; i < p.NumConstraints(); i++ {
		dual += y[i] * p.rowAt(i).rhs
	}
	if math.Abs(primal-dual) > tol*math.Max(1, math.Abs(primal)) {
		return fmt.Errorf("lp: duality gap %g (primal %g, dual %g)", primal-dual, primal, dual)
	}
	return nil
}

func scaleOf(x float64) float64 { return math.Max(1, math.Abs(x)) }
