package lp

// Dual values and optimality certificates. The simplex tableau carries the
// dual solution implicitly: in the canonical layout every row owns an
// artificial column whose stored coefficient is exactly +e_i, so at an
// optimal basis the artificial's reduced cost is 0 − y_i and the dual of
// constraint i falls straight out of the objective row (after undoing the
// row's equilibration scale and orientation sign). SolveWithDuals exposes
// the duals, and Certify re-verifies a claimed optimum from first
// principles (feasibility + dual feasibility + matching objectives), which
// the test suite uses as an independent correctness oracle for the solver.
// SolveBasisWithDuals extracts the same certificate from the revised
// core's basis kernel instead: one BTRAN against the LU factors (or the
// legacy dense inverse) prices the duals without a tableau.

import (
	"fmt"
	"math"
)

// DualSolution augments a Solution with constraint duals and variable
// reduced costs.
type DualSolution struct {
	Solution
	// Duals[i] is the shadow price of constraint i: the rate of change of
	// the optimal objective per unit of slack added to the RHS. For a
	// maximisation with a·x <= b rows, duals are >= 0; for >= rows, <= 0.
	Duals []float64
	// ReducedCosts[v] is c_v − yᵀA_v for structural variable v. At an
	// optimum of this maximisation it is <= 0 for a variable resting at
	// its lower bound, >= 0 for one at its (finite) upper bound —
	// complementary slackness against the bound's own multiplier — and 0
	// for basic variables strictly inside their box.
	ReducedCosts []float64
}

// SolveWithDuals solves p and extracts the dual values of the optimal
// basis. Only Optimal results carry duals. Under the presolve layer the
// reduced problem is solved and postsolve recovers the original duals:
// surviving rows unscale theirs, eliminated rows get zero except
// singleton rows, whose dual is reconstructed from the residual reduced
// cost of their column (presolve.go), so the result still passes Certify
// against the original problem.
func SolveWithDuals(p *Problem, opts Options) (*DualSolution, error) {
	if ps := presolveFor(p, opts, true); ps != nil {
		if ps.status == Infeasible {
			return &DualSolution{Solution: Solution{Status: Infeasible}}, nil
		}
		if ps.reduced == nil {
			return ps.directDualSolution(), nil
		}
		opts.Presolve = PresolveOff
		ds, err := solveTableauDuals(ps.reduced, opts)
		if err != nil {
			return nil, err
		}
		return ps.mapDualSolution(ds), nil
	}
	return solveTableauDuals(p, opts)
}

// solveTableauDuals is the presolve-free tableau solve-with-duals.
func solveTableauDuals(p *Problem, opts Options) (*DualSolution, error) {
	t := newTableau(p, opts)
	if t.nArt > 0 {
		phase1 := make([]float64, t.width)
		for c := t.artBase; c < t.width; c++ {
			phase1[c] = -1
		}
		t.setObjective(phase1)
		status := t.iterate()
		if status != Optimal {
			return &DualSolution{Solution: Solution{Status: status, Iterations: t.iters}}, nil
		}
		if t.artificialResidual() > feasTol {
			return &DualSolution{Solution: Solution{Status: Infeasible, Iterations: t.iters}}, nil
		}
		t.driveOutArtificials()
	}
	t.freezeArtificials()
	phase2 := make([]float64, t.width)
	copy(phase2, p.obj)
	t.setObjective(phase2)
	status := t.iterate()

	ds := &DualSolution{Solution: Solution{Status: status, Iterations: t.iters}}
	if status != Optimal && status != IterLimit && status != TimeLimit {
		return ds, nil
	}
	ds.X = t.extract(p)
	for v, c := range p.obj {
		ds.Objective += c * ds.X[v]
	}
	if status != Optimal {
		return ds, nil
	}

	// Duals from the artificial columns' reduced costs: the artificial of
	// row i is the identity column +e_i in the stored (oriented, scaled)
	// frame and has zero phase-2 cost, so d_art = 0 − y_i there. Mapping
	// back to the original row undoes the stored frame: the stored row is
	// rowNeg/rowScale times the original, so the original dual picks up
	// the same factor.
	ds.Duals = make([]float64, p.NumConstraints())
	ds.ReducedCosts = make([]float64, p.nVars)
	for i := 0; i < p.NumConstraints(); i++ {
		ds.Duals[i] = -t.objRow[t.artBase+i] * t.rowNeg[i] / t.rowScale[i]
	}
	// Structural reduced costs straight from the objective row (columns
	// are never rescaled, only rows, so no undo is needed).
	copy(ds.ReducedCosts, t.objRow[:p.nVars])
	return ds, nil
}

// SolveBasisWithDuals solves p with the revised simplex core — i.e. over
// the basis kernel Options.Factor selects, the sparse LU by default — and
// extracts the dual values of the optimal basis directly from the
// factorisation: one BTRAN of the phase-2 basic costs yields y = cᵦᵀB⁻¹
// in the stored (oriented, equilibrated) row frame, and undoing each
// row's scale and orientation sign maps it back to the caller's rows.
// Reduced costs come from the same pricing pass (columns are never
// rescaled, so no undo is needed). Like SolveBasis it also returns the
// optimal basis as a warm-start token. Only Optimal results carry duals.
// Presolve is handled exactly as in SolveWithDuals, with the basis
// restored to the original problem like SolveBasis does.
func SolveBasisWithDuals(p *Problem, opts Options) (*DualSolution, *Basis, error) {
	if ps := presolveFor(p, opts, true); ps != nil {
		if ps.status == Infeasible {
			return &DualSolution{Solution: Solution{Status: Infeasible}}, nil, nil
		}
		if ps.reduced == nil {
			return ps.directDualSolution(), ps.restoreBasis(nil), nil
		}
		opts.Presolve = PresolveOff
		ds, bs, err := solveBasisDuals(ps.reduced, opts)
		if err != nil {
			return nil, nil, err
		}
		return ps.mapDualSolution(ds), ps.restoreBasis(bs), nil
	}
	return solveBasisDuals(p, opts)
}

// solveBasisDuals is the presolve-free revised solve-with-duals.
func solveBasisDuals(p *Problem, opts Options) (*DualSolution, *Basis, error) {
	t, sol, bs, err := solveBasisRev(p, opts)
	if err != nil {
		return nil, nil, err
	}
	ds := &DualSolution{Solution: *sol}
	if sol.Status != Optimal {
		return ds, bs, nil
	}
	cost := make([]float64, t.width)
	copy(cost, p.obj)
	t.prices(cost)
	ds.Duals = make([]float64, t.m)
	for i := 0; i < t.m; i++ {
		ds.Duals[i] = t.y[i] * t.rowNeg[i] / t.rowScale[i]
	}
	ds.ReducedCosts = append([]float64(nil), t.d[:t.n]...)
	return ds, bs, nil
}

// Certify checks an optimality certificate for an all-finite (x, y) pair:
// primal feasibility of x (rows and variable boxes), sign-correct dual
// feasibility of y, sign-correct structural reduced costs against each
// variable's resting bound, and strong duality within tol. The dual
// objective of the boxed program is yᵀb plus the bound multipliers'
// contribution Σ_v [red_v]⁺·hi_v + [red_v]⁻·lo_v (a positive reduced cost
// must be priced by the upper bound's multiplier, a negative one by the
// lower bound's); with the default [0, +inf) boxes this reduces to the
// classic yᵀb and a positive reduced cost is outright infeasible. It
// returns nil when the certificate proves optimality.
func Certify(p *Problem, x, y []float64, tol float64) error {
	if len(x) != p.nVars || len(y) != p.NumConstraints() {
		return fmt.Errorf("lp: certificate dimensions mismatch")
	}
	// Primal feasibility: variable boxes...
	for v, xv := range x {
		lo, hi := p.boundsAt(v)
		if xv < lo-tol*scaleOf(lo) {
			return fmt.Errorf("lp: x[%d] = %g below lower bound %g", v, xv, lo)
		}
		if xv > hi+tol*scaleOf(hi) {
			return fmt.Errorf("lp: x[%d] = %g above upper bound %g", v, xv, hi)
		}
	}
	// ...and constraint rows.
	for i := 0; i < p.NumConstraints(); i++ {
		r := p.rowAt(i)
		var lhs float64
		for _, tm := range r.terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol*scaleOf(r.rhs) {
				return fmt.Errorf("lp: row %d violated: %g > %g", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol*scaleOf(r.rhs) {
				return fmt.Errorf("lp: row %d violated: %g < %g", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol*scaleOf(r.rhs) {
				return fmt.Errorf("lp: row %d violated: %g != %g", i, lhs, r.rhs)
			}
		}
	}
	// Dual sign feasibility.
	for i := 0; i < p.NumConstraints(); i++ {
		r := p.rowAt(i)
		switch r.sense {
		case LE:
			if y[i] < -tol {
				return fmt.Errorf("lp: dual %d = %g negative for <= row", i, y[i])
			}
		case GE:
			if y[i] > tol {
				return fmt.Errorf("lp: dual %d = %g positive for >= row", i, y[i])
			}
		}
	}
	// Reduced costs c_v − yᵀA_v: a positive residue is only admissible
	// when the upper bound is finite (its multiplier absorbs it); a
	// negative residue is always absorbable by the (finite) lower bound's
	// multiplier. Significant residues contribute to the dual objective
	// through the bound they are priced against.
	var boundDual float64
	colSum := make([]float64, p.nVars)
	colScale := make([]float64, p.nVars)
	for i := 0; i < p.NumConstraints(); i++ {
		r := p.rowAt(i)
		for _, tm := range r.terms {
			colSum[tm.Var] += y[i] * tm.Coef
			colScale[tm.Var] += math.Abs(y[i] * tm.Coef)
		}
	}
	for v := range colSum {
		red := p.obj[v] - colSum[v]
		lo, hi := p.boundsAt(v)
		switch {
		case red > tol*math.Max(1, colScale[v]):
			if math.IsInf(hi, 1) {
				return fmt.Errorf("lp: reduced cost of x[%d] = %g positive with no upper bound", v, red)
			}
			boundDual += red * hi
		case red < -tol*math.Max(1, colScale[v]):
			boundDual += red * lo
		}
	}
	// Strong duality.
	var primal, dual float64
	for v, c := range p.obj {
		primal += c * x[v]
	}
	for i := 0; i < p.NumConstraints(); i++ {
		dual += y[i] * p.rowAt(i).rhs
	}
	dual += boundDual
	if math.Abs(primal-dual) > tol*math.Max(1, math.Abs(primal)) {
		return fmt.Errorf("lp: duality gap %g (primal %g, dual %g)", primal-dual, primal, dual)
	}
	return nil
}

func scaleOf(x float64) float64 {
	if math.IsInf(x, 0) {
		return 1
	}
	return math.Max(1, math.Abs(x))
}
