package lp

import (
	"fmt"
	"math"
)

// SetBounds restricts variable v to the box [lo, hi]. hi may be +Inf for
// an unbounded-above variable; lo must be finite. lo == hi fixes the
// variable. It panics on NaN endpoints, non-finite lo, or hi < lo.
//
// Bounds are handled natively by all simplex cores (nonbasic variables
// rest at either bound; no rows are added), so a box constraint declared
// here keeps the basis dimension equal to the true row count. The default
// box for every variable is [0, +Inf).
//
//lint:freezer copies shared bound slices before the first write (copy-on-write)
func (p *Problem) SetBounds(v int, lo, hi float64) {
	p.checkVar(v)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: SetBounds(%d): NaN bound [%v, %v]", v, lo, hi))
	}
	if math.IsInf(lo, 0) {
		panic(fmt.Sprintf("lp: SetBounds(%d): lower bound must be finite, got %v", v, lo))
	}
	if hi < lo {
		panic(fmt.Sprintf("lp: SetBounds(%d): empty box [%v, %v]", v, lo, hi))
	}
	p.materializeBounds()
	p.lo[v] = lo
	p.hi[v] = hi
}

// Bounds returns the box [lo, hi] of variable v ([0, +Inf) by default).
func (p *Problem) Bounds(v int) (lo, hi float64) {
	p.checkVar(v)
	return p.boundsAt(v)
}

// boundsAt is Bounds without the range check, for solver hot paths.
func (p *Problem) boundsAt(v int) (lo, hi float64) {
	if p.lo == nil {
		return 0, math.Inf(1)
	}
	return p.lo[v], p.hi[v]
}

// materializeBounds gives p owned, writable bound slices: it allocates the
// default box when none exists and copies shared slices before the first
// write (the objShared copy-on-write pattern).
//
//lint:freezer the copy-on-write transition itself: replaces aliased slices with owned ones
func (p *Problem) materializeBounds() {
	switch {
	case p.lo == nil:
		p.lo = make([]float64, p.nVars)
		p.hi = make([]float64, p.nVars)
		inf := math.Inf(1)
		for v := range p.hi {
			p.hi[v] = inf
		}
		p.boundsShared = false
	case p.boundsShared:
		p.lo = append([]float64(nil), p.lo...)
		p.hi = append([]float64(nil), p.hi...)
		p.boundsShared = false
	}
}

// ExpandBounds returns a deep copy of p with every non-default variable
// bound rewritten as explicit constraint rows and the bounds reset to the
// default [0, +Inf) box: lo == hi becomes one EQ row, otherwise lo > 0
// becomes a GE row and finite hi an LE row. The result describes the same
// feasible set, so it is the row-encoded mirror used by differential tests
// and the rows-vs-bounds benchmarks.
//
// It panics when some lo < 0: the implicit x >= 0 of the row encoding
// cannot express a negative lower bound.
//
//lint:freezer rewrites the deep copy's boxes as rows before publication; p itself is untouched
func ExpandBounds(p *Problem) *Problem {
	c := p.Clone()
	if c.lo == nil {
		return c
	}
	lo, hi := c.lo, c.hi
	c.lo, c.hi = nil, nil
	for v := 0; v < c.nVars; v++ {
		if lo[v] < 0 {
			panic(fmt.Sprintf("lp: ExpandBounds: variable %d has negative lower bound %v, inexpressible as rows over x >= 0", v, lo[v]))
		}
		if hi[v] <= lo[v] {
			c.AddConstraint([]Term{{Var: v, Coef: 1}}, EQ, lo[v])
			continue
		}
		if lo[v] > 0 {
			c.AddConstraint([]Term{{Var: v, Coef: 1}}, GE, lo[v])
		}
		if !math.IsInf(hi[v], 1) {
			c.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, hi[v])
		}
	}
	return c
}
