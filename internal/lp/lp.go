// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c·x
//	subject to  a_i·x {<=, =, >=} b_i    for each constraint i
//	            lo <= x <= hi            (default lo = 0, hi = +inf)
//
// It is the module's substitute for the commercial LP/MIP toolchain the
// paper uses (cvx + MOSEK): the DSCT-EA-FR relaxation (paper §3.2) is
// solved with it directly, and the branch-and-bound solver in package mip
// uses it for node relaxations of the DSCT-EA MIP (paper §3).
//
// The implementation favours robustness over raw speed: rows are
// equilibrated before solving, Dantzig pricing falls back to Bland's rule
// after a run of degenerate pivots (anti-cycling), and artificials are
// pivoted out after phase 1. Problems are built through a small dense/
// sparse hybrid API.
package lp

import (
	"fmt"
	"time"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String names the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// Term is one non-zero coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. Create it with
// NewProblem, then set the objective and add constraints. Variables are
// indexed 0..NumVars-1 and bounded to [0, +inf) unless SetBounds installs
// another box.
//
// A Problem built by Overlay shares its objective, bounds and leading
// constraint rows with the problem it was derived from; see Overlay for
// the aliasing rules.
type Problem struct {
	nVars int
	//lint:frozen may alias the base problem's objective until SetObjCoef copies it
	obj []float64
	// objShared marks obj as aliasing another problem's objective slice
	// (set by Overlay); SetObjCoef copies before the first write so the
	// base problem is never mutated through an overlay.
	objShared bool
	// lo and hi are per-variable bounds; both nil means every variable is
	// at the default [0, +inf) box. boundsShared marks them as aliasing
	// another problem's slices (set by Overlay); SetBounds copies before
	// the first write, mirroring objShared.
	//
	//lint:frozen may alias the base problem's boxes until SetBounds copies them
	lo, hi       []float64
	boundsShared bool
	// base is an immutable row prefix shared with the problem this one
	// was derived from by Overlay (nil for ordinary problems). rows holds
	// the rows owned by this problem; the effective constraint list is
	// base followed by rows.
	//
	//lint:frozen row prefix is shared with every overlay of the same base
	base []row
	rows []row
}

// NewProblem returns an empty maximization problem over nVars non-negative
// variables. It panics for nVars <= 0.
func NewProblem(nVars int) *Problem {
	if nVars <= 0 {
		panic(fmt.Sprintf("lp: nVars must be positive, got %d", nVars))
	}
	return &Problem{nVars: nVars, obj: make([]float64, nVars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nVars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.base) + len(p.rows) }

// rowAt returns constraint row i (shared base prefix first, then owned
// rows). The returned row must be treated as read-only.
func (p *Problem) rowAt(i int) row {
	if i < len(p.base) {
		return p.base[i]
	}
	return p.rows[i-len(p.base)]
}

// Constraint returns row i's terms, sense and right-hand side. The terms
// slice aliases the problem's storage and must be treated as read-only.
// Like AddConstraint's input, terms may repeat a variable; readers must
// accumulate duplicates the way the solver cores do. It panics when i is
// out of range. Cut separators and other structure scanners use this to
// read rows without access to the package internals.
func (p *Problem) Constraint(i int) ([]Term, Sense, float64) {
	if i < 0 || i >= p.NumConstraints() {
		panic(fmt.Sprintf("lp: constraint %d out of range [0,%d)", i, p.NumConstraints()))
	}
	r := p.rowAt(i)
	return r.terms, r.sense, r.rhs
}

// SetObjCoef sets the objective coefficient of variable v.
//
//lint:freezer copies the shared objective before the first write (copy-on-write)
func (p *Problem) SetObjCoef(v int, c float64) {
	p.checkVar(v)
	if p.objShared {
		p.obj = append([]float64(nil), p.obj...)
		p.objShared = false
	}
	p.obj[v] = c
}

// ObjCoef returns the objective coefficient of variable v.
func (p *Problem) ObjCoef(v int) float64 {
	p.checkVar(v)
	return p.obj[v]
}

// AddConstraint appends the constraint Σ terms {sense} rhs and returns its
// row index. Terms may repeat a variable; coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), sense: sense, rhs: rhs})
	return p.NumConstraints() - 1
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.nVars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", v, p.nVars))
	}
}

// Clone returns an independent deep copy of the problem: the result shares
// no storage with p (overlay sharing is flattened away).
//
//lint:freezer initialises the copy's owned arrays before publication
func (p *Problem) Clone() *Problem {
	nr := p.NumConstraints()
	c := &Problem{
		nVars: p.nVars,
		obj:   append([]float64(nil), p.obj...),
		rows:  make([]row, nr),
	}
	if p.lo != nil {
		c.lo = append([]float64(nil), p.lo...)
		c.hi = append([]float64(nil), p.hi...)
	}
	for i := 0; i < nr; i++ {
		r := p.rowAt(i)
		c.rows[i] = row{terms: append([]Term(nil), r.terms...), sense: r.sense, rhs: r.rhs}
	}
	return c
}

// Overlay returns a lightweight extension of p: a problem that sees p's
// objective, bounds and constraint rows and accepts further AddConstraint
// and SetBounds calls without copying p. Creating an overlay is O(1)
// (O(rows) only when p is itself an overlay), and appending k rows costs
// O(k) — compare Clone, which deep-copies every coefficient. Branch-and-
// bound uses this to derive node problems from the immutable root LP in
// O(depth): bound tightenings go through SetBounds (which copies the two
// bound slices once per overlay, on first write) and any remaining cuts
// through AddConstraint.
//
// The overlay aliases p's data: p must not be modified while any overlay
// derived from it is alive. Overlays themselves are freely mutable —
// appended rows are owned, and SetObjCoef/SetBounds copy the aliased
// slices before the first write. Concurrent overlays of the same base are
// safe as long as the base stays untouched.
func (p *Problem) Overlay() *Problem {
	base := p.rows
	if p.base != nil {
		// p is itself an overlay; flatten the two-level prefix into one
		// shared slice of row headers (terms stay shared).
		base = make([]row, 0, p.NumConstraints())
		base = append(base, p.base...)
		base = append(base, p.rows...)
	}
	return &Problem{
		nVars: p.nVars,
		obj:   p.obj, objShared: true,
		lo: p.lo, hi: p.hi, boundsShared: p.lo != nil,
		base: base,
	}
}

// Status reports how a solve terminated.
type Status int

// Solver statuses.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
	// IterLimit means the pivot budget was exhausted.
	IterLimit
	// TimeLimit means the wall-clock deadline passed.
	TimeLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case TimeLimit:
		return "time-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// SparseMode selects the constraint-matrix representation used by the
// revised simplex core (SolveBasis / SolveFrom). The tableau core (Solve)
// is unaffected: it rewrites its matrix on every pivot, which a shared
// sparse index cannot survive.
type SparseMode int

// Sparse modes.
const (
	// SparseAuto picks the representation from the problem: sparse when
	// the structural block is large and sparse enough for indexed passes
	// to win (see sparseAutoRows / sparseAutoMaxDensity), dense otherwise.
	SparseAuto SparseMode = iota
	// SparseOn forces the CSC/CSR representation.
	SparseOn
	// SparseOff forces the dense row-major matrix.
	SparseOff
)

// String names the mode.
func (s SparseMode) String() string {
	switch s {
	case SparseAuto:
		return "auto"
	case SparseOn:
		return "sparse"
	case SparseOff:
		return "dense"
	default:
		return fmt.Sprintf("sparsemode(%d)", int(s))
	}
}

// FactorMode selects the basis kernel used by the revised simplex core
// (SolveBasis / SolveFrom): how B⁻¹ is represented, updated per pivot and
// rebuilt. The tableau core (Solve) is unaffected.
type FactorMode int

// Factor modes.
const (
	// FactorAuto uses the sparse LU kernel (equivalent to FactorLU): L·U
	// triangular factors with Markowitz ordering, eta-file pivot updates
	// and adaptive refactorisation.
	FactorAuto FactorMode = iota
	// FactorLU forces the sparse LU kernel.
	FactorLU
	// FactorBinv forces the legacy explicit dense B⁻¹: O(m²) product-form
	// updates and O(m³) Gauss–Jordan refactorisation every RefactorEvery
	// pivots. Kept selectable for A/B benchmarking against the LU kernel.
	FactorBinv
)

// String names the mode.
func (f FactorMode) String() string {
	switch f {
	case FactorAuto:
		return "auto"
	case FactorLU:
		return "lu"
	case FactorBinv:
		return "binv"
	default:
		return fmt.Sprintf("factormode(%d)", int(f))
	}
}

// PricingMode selects the entering-column pricing rule shared by all
// three simplex cores (the dense tableau and the dense/sparse revised
// core). Pricing only chooses the pivot order: every mode reaches the
// same optimum (the differential suite pins objective and X agreement),
// and every mode yields to Bland's rule after a degenerate run, so the
// anti-cycling guarantee is mode-independent.
type PricingMode int

// Pricing modes.
const (
	// PricingAuto picks the rule from the problem: partial pricing with
	// candidate lists once the priced column space reaches
	// pricingAutoCols (where the O(n) per-pivot scan dominates), Dantzig
	// below it. Small problems therefore pivot exactly as before.
	PricingAuto PricingMode = iota
	// PricingDantzig scans every column and enters the one with the
	// largest sign-aware reduced cost |d_j| — the classic textbook rule,
	// O(n) per pivot.
	PricingDantzig
	// PricingDevex scans every column but scores d_j²/w_j with devex
	// reference-framework weights (Forrest–Goldfarb): an approximation of
	// steepest-edge pricing that needs no extra solves beyond one pivot
	// row per pivot. Same O(n) scan, typically far fewer pivots on long
	// thin problems.
	PricingDevex
	// PricingPartial prices a bounded candidate list with devex scores
	// and refills it by scanning rotating sections of the column space —
	// per-pivot work proportional to the candidate list and section, not
	// to n. Optimality is still certified by a full wrap of the column
	// space finding no candidate.
	PricingPartial
)

// String names the mode.
func (p PricingMode) String() string {
	switch p {
	case PricingAuto:
		return "auto"
	case PricingDantzig:
		return "dantzig"
	case PricingDevex:
		return "devex"
	case PricingPartial:
		return "partial"
	default:
		return fmt.Sprintf("pricingmode(%d)", int(p))
	}
}

// PresolveMode selects whether solves run through the presolve/postsolve
// layer in presolve.go before the simplex cores see the problem.
type PresolveMode int

// Presolve modes.
const (
	// PresolveAuto presolves once the problem reaches presolveAutoRows
	// constraint rows — the scale where shrinking the basis pays for the
	// reduction pass — and leaves smaller problems untouched, so default
	// solves of small problems are bit-identical to PresolveOff.
	PresolveAuto PresolveMode = iota
	// PresolveOn forces the presolve/postsolve layer.
	PresolveOn
	// PresolveOff bypasses it.
	PresolveOff
)

// String names the mode.
func (p PresolveMode) String() string {
	switch p {
	case PresolveAuto:
		return "auto"
	case PresolveOn:
		return "presolve"
	case PresolveOff:
		return "nopresolve"
	default:
		return fmt.Sprintf("presolvemode(%d)", int(p))
	}
}

// Options tunes a solve. The zero value uses defaults.
type Options struct {
	// MaxIters caps simplex pivots across both phases
	// (default 100·(rows+cols)+1000, shared by all cores).
	MaxIters int
	// Deadline aborts the solve when passed (zero means none).
	Deadline time.Time
	// Tol is the pivot/feasibility tolerance (default 1e-9).
	Tol float64
	// Sparse selects the revised core's matrix representation
	// (default SparseAuto).
	Sparse SparseMode
	// Factor selects the revised core's basis kernel
	// (default FactorAuto, the sparse LU).
	Factor FactorMode
	// RefactorEvery caps the product-form updates the legacy dense B⁻¹
	// kernel (FactorBinv) absorbs before a from-scratch rebuild
	// (default 64). The LU kernel ignores it: its refactorisation is
	// adaptive, triggered by eta-file fill and a numerical-drift check.
	RefactorEvery int
	// Pricing selects the entering-column rule (default PricingAuto:
	// partial pricing on wide problems, Dantzig otherwise). All rules
	// reach the same optimum; only the pivot order differs.
	Pricing PricingMode
	// Presolve selects whether the solve runs through the
	// presolve/postsolve layer first (default PresolveAuto: on for large
	// problems only). SolveFrom ignores it: a warm-start basis snapshot
	// indexes the original problem, so warm solves always see the
	// unreduced rows.
	Presolve PresolveMode
}

// Solution is the result of a solve. X is populated for Optimal and, on a
// best-effort basis, for IterLimit/TimeLimit (the current basic solution,
// which may be primal-feasible but suboptimal).
type Solution struct {
	Status     Status
	Objective  float64
	X          []float64
	Iterations int

	// FactorRebuilt reports that a warm start (SolveFrom) could not adopt
	// the supplied basis snapshot's factorisation — missing, produced by
	// the other kernel, dimension-mismatched after appended rows, stale or
	// fill-heavy, or failing the B·xb ≈ q residual check — and the solve
	// refactorised the inherited column set from scratch instead. Always
	// false for cold solves.
	FactorRebuilt bool

	// DualFeasible reports that the solve ended on a dual-feasible basis,
	// making Objective a valid upper bound on the optimum even when the
	// solve was truncated. Warm starts (SolveFrom) set it when the solve
	// reached Optimal or when a pivot/deadline limit struck during the
	// dual-simplex repair phase — which preserves dual feasibility pivot by
	// pivot — so branch-and-bound strong-branching probes can run with a
	// tiny Options.MaxIters and still trust the truncated objective as a
	// bound. Limits hit in the primal clean-up phase, and every cold-solve
	// status other than Optimal, leave it false: those objectives bound
	// nothing.
	DualFeasible bool
}
