// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c·x
//	subject to  a_i·x {<=, =, >=} b_i    for each constraint i
//	            x >= 0
//
// It is the module's substitute for the commercial LP/MIP toolchain the
// paper uses (cvx + MOSEK): the DSCT-EA-FR relaxation (paper §3.2) is
// solved with it directly, and the branch-and-bound solver in package mip
// uses it for node relaxations of the DSCT-EA MIP (paper §3).
//
// The implementation favours robustness over raw speed: rows are
// equilibrated before solving, Dantzig pricing falls back to Bland's rule
// after a run of degenerate pivots (anti-cycling), and artificials are
// pivoted out after phase 1. Problems are built through a small dense/
// sparse hybrid API.
package lp

import (
	"fmt"
	"time"
)

// Sense is a constraint direction.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // a·x <= b
	GE              // a·x >= b
	EQ              // a·x == b
)

// String names the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// Term is one non-zero coefficient of a constraint row.
type Term struct {
	Var  int
	Coef float64
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// Problem is a linear program under construction. Create it with
// NewProblem, then set the objective and add constraints. Variables are
// indexed 0..NumVars-1 and implicitly bounded below by zero.
type Problem struct {
	nVars int
	obj   []float64
	rows  []row
}

// NewProblem returns an empty maximization problem over nVars non-negative
// variables. It panics for nVars <= 0.
func NewProblem(nVars int) *Problem {
	if nVars <= 0 {
		panic(fmt.Sprintf("lp: nVars must be positive, got %d", nVars))
	}
	return &Problem{nVars: nVars, obj: make([]float64, nVars)}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nVars }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// SetObjCoef sets the objective coefficient of variable v.
func (p *Problem) SetObjCoef(v int, c float64) {
	p.checkVar(v)
	p.obj[v] = c
}

// ObjCoef returns the objective coefficient of variable v.
func (p *Problem) ObjCoef(v int) float64 {
	p.checkVar(v)
	return p.obj[v]
}

// AddConstraint appends the constraint Σ terms {sense} rhs and returns its
// row index. Terms may repeat a variable; coefficients accumulate.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) int {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	p.rows = append(p.rows, row{terms: append([]Term(nil), terms...), sense: sense, rhs: rhs})
	return len(p.rows) - 1
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.nVars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", v, p.nVars))
	}
}

// Clone returns an independent copy of the problem (used by branch-and-
// bound to derive node problems).
func (p *Problem) Clone() *Problem {
	c := &Problem{
		nVars: p.nVars,
		obj:   append([]float64(nil), p.obj...),
		rows:  make([]row, len(p.rows)),
	}
	for i, r := range p.rows {
		c.rows[i] = row{terms: append([]Term(nil), r.terms...), sense: r.sense, rhs: r.rhs}
	}
	return c
}

// Status reports how a solve terminated.
type Status int

// Solver statuses.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
	// IterLimit means the pivot budget was exhausted.
	IterLimit
	// TimeLimit means the wall-clock deadline passed.
	TimeLimit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	case TimeLimit:
		return "time-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Options tunes a solve. The zero value uses defaults.
type Options struct {
	// MaxIters caps simplex pivots across both phases
	// (default 50·(rows+cols)).
	MaxIters int
	// Deadline aborts the solve when passed (zero means none).
	Deadline time.Time
	// Tol is the pivot/feasibility tolerance (default 1e-9).
	Tol float64
}

// Solution is the result of a solve. X is populated for Optimal and, on a
// best-effort basis, for IterLimit/TimeLimit (the current basic solution,
// which may be primal-feasible but suboptimal).
type Solution struct {
	Status     Status
	Objective  float64
	X          []float64
	Iterations int
}
