package lp

// Workspace: arena-style ownership of every scratch buffer a solve needs,
// so back-to-back solves run with zero steady-state allocations. The
// package-level entry points (Solve, SolveBasis, SolveFrom) build a fresh
// solver per call — correct, but a production loop that solves thousands
// of node LPs back-to-back pays the allocator and the garbage collector
// per solve, not per pivot. A Workspace hoists all of that state into one
// reusable object:
//
//   - the revised core's work arrays (duals, reduced costs, pivot rows,
//     FTRAN/BTRAN scratch) and its dense or CSR+CSC matrix storage;
//   - the LU elimination workspace, the factor arenas and the eta file
//     (noEscape mode), or a persistent holder for adopted frozen parent
//     factors (basis-publishing mode);
//   - pricing state: devex reference weights and partial-pricing candidate
//     lists;
//   - the presolve reducer's undo stack and working arrays;
//   - the row flattener, ratio-test, bound-flip and residual-check scratch;
//   - the output Solution and its X vector (noEscape mode).
//
// After the first solve of a given shape has grown the buffers, further
// Solve/SolveFrom calls allocate nothing (testing.AllocsPerRun pins 0 in
// alloc_ws_test.go). Buffers only ever grow, so a Workspace that has seen
// its largest instance is allocation-free for every smaller one.
//
// Aliasing contract. Solutions returned by Solve, SolveFrom and
// SolveTableau alias Workspace-owned buffers: they are valid until the
// next solve on the same Workspace (or Reset), and must be cloned (or
// consumed) before it. Reset relinquishes exactly those output buffers, so
// a caller that wants to retain the last Solution calls Reset and lets the
// next solve allocate fresh ones. SolveBasis/SolveBasisFrom publish a
// Basis and therefore return fully independent Solutions and snapshots
// (copy-out instead of aliasing) — that is the variant internal/mip uses,
// one Workspace per worker goroutine. Under an active presolve the
// returned Solution is also independent (postsolve reconstructs it), but
// callers should not rely on that: the aliasing rule is "valid until the
// next solve" for everything Solve/SolveFrom/SolveTableau return.
//
// A Workspace is NOT safe for concurrent use: one goroutine at a time.
// Concurrent batch solving wants one Workspace per worker — that is
// exactly what BatchSolve does.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// grown returns s resized to length n with every element zeroed, reusing
// the backing array when its capacity suffices — the Workspace-wide
// replacement for make([]T, n) in solver-construction paths.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// taken returns dst overwritten with a copy of src, reusing dst's
// capacity — the Workspace-wide replacement for append([]T(nil), src...).
func taken[T any](dst, src []T) []T {
	return append(dst[:0], src...)
}

// Workspace owns the solver state reused across solves. The zero value is
// not ready for use; NewWorkspace sets the ownership flags the cores key
// their buffer-reuse decisions on.
type Workspace struct {
	rev rev
	tab tableau
	rd  reducer
}

// NewWorkspace returns an empty Workspace. Buffers are grown lazily by the
// first solves; nothing is preallocated.
func NewWorkspace() *Workspace {
	ws := &Workspace{}
	ws.rev.owned = true
	return ws
}

// Reset relinquishes the output buffers the most recently returned
// Solution may alias (the Solution struct and its X vector, for each
// core). The retained Solution stays valid; the next solve allocates fresh
// output buffers and settles back into zero steady-state allocations. All
// other scratch is kept.
func (ws *Workspace) Reset() {
	ws.rev.solOut = nil
	ws.rev.xOut = nil
	ws.tab.solOut = nil
	ws.tab.xOut = nil
}

// Solve is the reusing equivalent of SolveBasis's Solution (the revised
// core, through the presolve layer when Options.Presolve selects it): the
// same statuses, objectives and X vectors bit-for-bit, with every scratch
// buffer taken from the Workspace. The returned Solution aliases
// Workspace-owned buffers — see the aliasing contract in the file comment.
// Under an active presolve the reducer state is reused but the reduced
// problem and the postsolved Solution still allocate (bounded per solve).
//
//lint:hotpath=bounded the workspace cold solve allocates only on warm-up growth and presolve postsolve; the AllocsPerRun pins hold the steady state at zero
func (ws *Workspace) Solve(p *Problem, opts Options) (*Solution, error) {
	if ps := ws.presolve(p, opts); ps != nil {
		if ps.status == Infeasible {
			return &Solution{Status: Infeasible}, nil
		}
		if ps.reduced == nil {
			return ps.directSolution(), nil
		}
		opts.Presolve = PresolveOff
		t := &ws.rev
		t.noEscape = true
		t.init(ps.reduced, opts)
		sol, _, err := t.solveCold(ps.reduced)
		if err != nil {
			return nil, err
		}
		return ps.mapSolution(sol), nil
	}
	t := &ws.rev
	t.noEscape = true
	t.init(p, opts)
	sol, _, err := t.solveCold(p)
	return sol, err
}

// SolveFrom is the reusing equivalent of SolveFrom's Solution: a warm
// start from a Basis produced by any SolveBasis/SolveFrom variant, with
// every scratch buffer — including a private deep copy of the parent's
// frozen LU factors, so eta appends never trigger copy-on-write growth —
// taken from the Workspace. No Basis is published; use SolveBasisFrom when
// the caller needs one. The returned Solution aliases Workspace-owned
// buffers. Like the package-level SolveFrom, it never presolves.
//
//lint:hotpath=bounded the workspace warm solve allocates only on warm-up growth; the AllocsPerRun pins hold the steady state at zero
func (ws *Workspace) SolveFrom(p *Problem, from *Basis, opts Options) (*Solution, error) {
	if err := checkBasisFit(p, from); err != nil {
		return nil, err
	}
	t := &ws.rev
	t.noEscape = true
	t.init(p, opts)
	sol, _, err := t.solveFrom(p, from)
	return sol, err
}

// SolveBasis is the reusing equivalent of SolveBasis: it publishes a Basis
// snapshot, so the Solution, its X vector and every snapshot field are
// allocated fresh (copy-out) — safe to retain indefinitely — while all
// internal scratch still comes from the Workspace. This is the cold-solve
// entry point internal/mip routes node solves through.
func (ws *Workspace) SolveBasis(p *Problem, opts Options) (*Solution, *Basis, error) {
	if ps := ws.presolve(p, opts); ps != nil {
		if ps.status == Infeasible {
			return &Solution{Status: Infeasible}, nil, nil
		}
		if ps.reduced == nil {
			return ps.directSolution(), ps.restoreBasis(nil), nil
		}
		opts.Presolve = PresolveOff
		t := &ws.rev
		t.noEscape = false
		t.init(ps.reduced, opts)
		sol, bs, err := t.solveCold(ps.reduced)
		if err != nil {
			return nil, nil, err
		}
		return ps.mapSolution(sol), ps.restoreBasis(bs), nil
	}
	t := &ws.rev
	t.noEscape = false
	t.init(p, opts)
	return t.solveCold(p)
}

// SolveBasisFrom is the reusing equivalent of SolveFrom: a warm start that
// publishes a fresh Basis snapshot (adopted parent factors are held by
// value and frozen copy-on-write, exactly like the package-level path).
// Solution and Basis are safe to retain. Never presolves.
func (ws *Workspace) SolveBasisFrom(p *Problem, from *Basis, opts Options) (*Solution, *Basis, error) {
	if err := checkBasisFit(p, from); err != nil {
		return nil, nil, err
	}
	t := &ws.rev
	t.noEscape = false
	t.init(p, opts)
	return t.solveFrom(p, from)
}

// SolveTableau is the reusing equivalent of Solve (the dense tableau
// core), through the presolve layer when selected. The returned Solution
// aliases Workspace-owned buffers. internal/mip routes its warm-start-free
// solves (rounding heuristics, DisableWarmStart) through this.
func (ws *Workspace) SolveTableau(p *Problem, opts Options) (*Solution, error) {
	if ps := ws.presolve(p, opts); ps != nil {
		if ps.status == Infeasible {
			return &Solution{Status: Infeasible}, nil
		}
		if ps.reduced == nil {
			return ps.directSolution(), nil
		}
		opts.Presolve = PresolveOff
		t := &ws.tab
		t.noEscape = true
		t.init(ps.reduced, opts)
		sol, err := t.solve(ps.reduced)
		if err != nil {
			return nil, err
		}
		return ps.mapSolution(sol), nil
	}
	t := &ws.tab
	t.noEscape = true
	t.init(p, opts)
	return t.solve(p)
}

// presolve runs the layer for a Workspace solve, reusing the Workspace's
// reducer (undo stack, compressed rows, working bounds) across calls. The
// returned presolved aliases the reducer's undo stack and must be consumed
// before the next solve on this Workspace — which every caller in this
// file does. Returns nil when the mode resolves to off or the layer falls
// back.
func (ws *Workspace) presolve(p *Problem, opts Options) *presolved {
	if !resolvePresolve(opts.Presolve, p.NumConstraints()) {
		return nil
	}
	ps := presolveInto(&ws.rd, p, nil, false)
	if ps.fallback {
		return nil
	}
	return ps
}

// clone returns an independent deep copy of a possibly Workspace-aliased
// Solution.
func (s *Solution) clone() *Solution {
	c := *s
	if s.X != nil {
		c.X = append([]float64(nil), s.X...)
	}
	return &c
}

// BatchSolve solves every problem in probs under one Options, sharding the
// corpus across workers goroutines that each own a private Workspace
// reused across their share — the batched many-instance harness the
// throughput benchmarks measure. workers <= 0 uses runtime.GOMAXPROCS(0).
//
// Results are positional: out[i] is the solution of probs[i] regardless of
// which worker solved it, and every Solution is an independent deep copy
// (safe to retain). Work is handed out by an atomic cursor, so the
// assignment of instances to workers is scheduling-dependent — but each
// instance's Solution is not: a Workspace solve is bit-identical to the
// fresh-allocation solve of the same instance, so BatchSolve output is
// deterministic at any worker count.
//
// On solver error the first failing instance (by index) is reported; out
// keeps the solutions of the instances that succeeded.
func BatchSolve(probs []*Problem, opts Options, workers int) ([]*Solution, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(probs) {
		workers = len(probs)
	}
	out := make([]*Solution, len(probs))
	errs := make([]error, len(probs))
	if workers <= 1 {
		ws := NewWorkspace()
		for i, p := range probs {
			sol, err := ws.Solve(p, opts)
			if err != nil {
				errs[i] = err
				continue
			}
			out[i] = sol.clone()
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := NewWorkspace()
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(probs) {
						return
					}
					sol, err := ws.Solve(probs[i], opts)
					if err != nil {
						errs[i] = err
						continue
					}
					out[i] = sol.clone()
				}
			}()
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("lp: batch instance %d: %w", i, err)
		}
	}
	return out, nil
}
