package lp

// Differential and unit coverage for the pricing rules. Pricing only
// orders pivots, so every rule must land on the same optimum: the
// differential suite pins dantzig vs devex vs partial agreement on
// status, objective AND the full solution vector across all three cores
// (tableau, dense revised, sparse revised), cold and warm-started. The
// degenerate pin keeps the devex rules honest about the anti-cycling
// contract — the sticky Bland fallback must still engage, and it must
// reset the reference framework. Unit tests check the recurrence, the
// overflow restart and the snapshot inheritance arithmetic by hand.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// pricingRules enumerates the non-default rules under differential test.
var pricingRules = []struct {
	name string
	mode PricingMode
}{
	{"devex", PricingDevex},
	{"partial", PricingPartial},
}

// pricingXTol is the agreement criterion for solves that pivot in
// different orders: the corpus optima are unique (generic random data),
// so every rule reaches the same vertex, but through different
// arithmetic — bit-level TestTol agreement is not meaningful.
const pricingXTol = 1e-8

// assertAgreeXTol fails unless the two solutions agree on status and,
// when optimal, on objective and the full solution vector within
// pricingXTol (scaled).
func assertAgreeXTol(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	assertAgreeXWithin(t, label, a, b, pricingXTol)
}

// assertAgreeXWithin is the underlying comparison at an explicit scaled
// tolerance; the presolve differential passes a looser one because the
// reductions perturb the instance by O(presolveTol) per record.
func assertAgreeXWithin(t *testing.T, label string, a, b *Solution, tol float64) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("%s: status %v != %v", label, a.Status, b.Status)
	}
	if a.Status != Optimal {
		return
	}
	if !numeric.Close(a.Objective, b.Objective, tol) {
		t.Fatalf("%s: objective %.17g != %.17g (diff %g)",
			label, a.Objective, b.Objective, a.Objective-b.Objective)
	}
	for v := range a.X {
		if !numeric.Close(a.X[v], b.X[v], tol) {
			t.Fatalf("%s: x[%d] %.17g != %.17g", label, v, a.X[v], b.X[v])
		}
	}
}

// TestDifferentialPricing: on every corpus instance the devex and partial
// rules must reproduce the dantzig optimum — status, objective and full X
// — on the tableau core and both revised representations, cold and
// warm-started into a bound-row child (the warm child inherits the devex
// weights through the Basis snapshot, so this also exercises
// inheritWeights end to end).
func TestDifferentialPricing(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			ref, err := Solve(g.p, Options{Pricing: PricingDantzig})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Status != Optimal {
				t.Fatalf("dantzig reference not optimal (%v); generator broken", ref.Status)
			}

			s := rng.NewReplicate(6, "lp-differential-pricing", i)
			v := s.Intn(g.p.NumVars())
			child := g.p.Clone()
			child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, math.Floor(ref.X[v]))
			refChild, err := Solve(child, Options{Pricing: PricingDantzig})
			if err != nil {
				t.Fatal(err)
			}

			for _, rule := range pricingRules {
				tab, err := Solve(g.p, Options{Pricing: rule.mode})
				if err != nil {
					t.Fatalf("%s tableau: %v", rule.name, err)
				}
				dense, dbs, err := SolveBasis(g.p, Options{Pricing: rule.mode, Sparse: SparseOff})
				if err != nil {
					t.Fatalf("%s dense: %v", rule.name, err)
				}
				sparse, sbs, err := SolveBasis(g.p, Options{Pricing: rule.mode, Sparse: SparseOn})
				if err != nil {
					t.Fatalf("%s sparse: %v", rule.name, err)
				}
				assertAgreeXTol(t, rule.name+"/tableau", ref, tab)
				assertAgreeXTol(t, rule.name+"/dense", ref, dense)
				assertAgreeXTol(t, rule.name+"/sparse", ref, sparse)

				// The optimal basis must carry the reference weights so
				// branch-and-bound children inherit them.
				if dbs.devex == nil || sbs.devex == nil {
					t.Fatalf("%s: optimal basis carries no devex weights", rule.name)
				}

				wd, _, err := SolveFrom(child, dbs, Options{Pricing: rule.mode, Sparse: SparseOff})
				if err != nil {
					t.Fatalf("%s warm dense: %v", rule.name, err)
				}
				ws, _, err := SolveFrom(child, sbs, Options{Pricing: rule.mode, Sparse: SparseOn})
				if err != nil {
					t.Fatalf("%s warm sparse: %v", rule.name, err)
				}
				assertAgreeXTol(t, rule.name+"/warm-dense", refChild, wd)
				assertAgreeXTol(t, rule.name+"/warm-sparse", refChild, ws)
			}

			// The dantzig rule keeps no weights; its snapshots must stay nil
			// so warm starts pay nothing for the feature.
			_, bs0, err := SolveBasis(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if bs0 != nil && bs0.devex != nil {
				t.Fatal("dantzig basis snapshot carries devex weights")
			}
		})
	}
}

// TestDegenerateStaircaseDevexFallback: the anti-cycling contract is
// rule-independent. On the collapsed-deadline staircase the devex and
// partial rules must still run into the degenerate-run limit, flip to
// Bland's rule (which resets the reference framework), and terminate at
// the known optimum — deterministically, on both basis kernels.
func TestDegenerateStaircaseDevexFallback(t *testing.T) {
	p := degenerateStaircaseLP(30, 3)
	want := 3.0
	for _, rule := range pricingRules {
		for _, fm := range []FactorMode{FactorLU, FactorBinv} {
			tt, sol, _, err := solveBasisRev(p, Options{Factor: fm, Pricing: rule.mode})
			if err != nil {
				t.Fatalf("%s factor=%v: %v", rule.name, fm, err)
			}
			if sol.Status != Optimal {
				t.Fatalf("%s factor=%v: status %v", rule.name, fm, sol.Status)
			}
			if math.Abs(sol.Objective-want) > 1e-9 {
				t.Fatalf("%s factor=%v: objective %g, want %g", rule.name, fm, sol.Objective, want)
			}
			if !tt.blandMode {
				t.Errorf("%s factor=%v: Bland fallback never engaged — devex dodged the degeneracy pin", rule.name, fm)
				continue
			}
			// The fallback restarts the reference framework and Bland-mode
			// pivots skip the weight update, so the weights must sit at 1.
			for j, w := range tt.pp.devex {
				//lint:ignore floatcmp resetWeights assigns the exact literal 1
				if w != 1 {
					t.Fatalf("%s factor=%v: weight[%d] = %g after Bland fallback, want 1", rule.name, fm, j, w)
				}
			}
		}
	}
}

// TestResolvePricing pins the auto rule's size switch.
func TestResolvePricing(t *testing.T) {
	if got := resolvePricing(PricingAuto, pricingAutoCols-1); got != PricingDantzig {
		t.Errorf("auto below threshold: %v, want dantzig", got)
	}
	if got := resolvePricing(PricingAuto, pricingAutoCols); got != PricingPartial {
		t.Errorf("auto at threshold: %v, want partial", got)
	}
	for _, mode := range []PricingMode{PricingDantzig, PricingDevex, PricingPartial} {
		if got := resolvePricing(mode, 1); got != mode {
			t.Errorf("explicit %v resolved to %v", mode, got)
		}
	}
}

// TestDevexRecurrence hand-checks one reference-framework update:
// w_j ← max(w_j, (α_j/α_q)²·w_q), entering re-seeds at 1, leaver takes
// max(w_q/α_q², 1), zero pivot-row entries untouched.
func TestDevexRecurrence(t *testing.T) {
	var pp pricer
	pp.init(PricingDevex, 4)
	copy(pp.devex, []float64{1, 2, 3, 1})
	alpha := []float64{0.5, -2, 0, 1}
	pp.devexUpdateFull(alpha, 1, 3, 0) // pc=3 (w_q=1, α_q=1), leave=0

	// ref = w_q/α_q² = 1. w_1 = max(2, 4·1) = 4; w_2 keeps 3 (α=0);
	// w_3 re-seeds 1; w_0 = max(ref, 1) = 1 as the leaver.
	want := []float64{1, 4, 3, 1}
	for j, w := range want {
		if !numeric.AlmostEqual(pp.devex[j], w) {
			t.Errorf("w[%d] = %g, want %g", j, pp.devex[j], w)
		}
	}
}

// TestDevexOverflowRestarts: an update past devexWeightCap restarts the
// framework at unit weights instead of carrying a blown-up reference.
func TestDevexOverflowRestarts(t *testing.T) {
	var pp pricer
	pp.init(PricingDevex, 2)
	alpha := []float64{1e6, 1}
	pp.devexUpdateFull(alpha, 1e-3, 1, -1) // w_0 would become 1e18 > cap
	for j, w := range pp.devex {
		//lint:ignore floatcmp the overflow restart assigns the exact literal 1
		if w != 1 {
			t.Errorf("w[%d] = %g after overflow, want restart at 1", j, w)
		}
	}
	//lint:ignore floatcmp the overflow restart assigns the exact literal 1
	if pp.wmax != 1 {
		t.Errorf("wmax = %g after overflow, want 1", pp.wmax)
	}
}

// TestInheritWeights checks the snapshot adoption map: structural weights
// index-for-index, logicals row-for-row over the shared prefix, appended
// rows' logicals at 1, wmax recomputed.
func TestInheritWeights(t *testing.T) {
	var pp pricer
	pp.init(PricingDevex, 7) // 3 structural + 4 logicals
	parent := []float64{2, 3, 4, 5, 6}
	pp.inheritWeights(parent, 3) // parent had 2 rows
	want := []float64{2, 3, 4, 5, 6, 1, 1}
	for j, w := range want {
		//lint:ignore floatcmp inheritWeights copies parent weights bit-for-bit
		if pp.devex[j] != w {
			t.Errorf("w[%d] = %g, want %g", j, pp.devex[j], w)
		}
	}
	//lint:ignore floatcmp wmax recomputed as an exact copied maximum
	if pp.wmax != 6 {
		t.Errorf("wmax = %g, want 6", pp.wmax)
	}
}

// TestAllocsPricingKernels pins the per-pivot devex kernels to zero
// steady-state allocations — they run once per basis change per node
// across the whole branch-and-bound tree.
func TestAllocsPricingKernels(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	var pp pricer
	pp.init(PricingDevex, 256)
	s := rng.New(23, "lp-alloc-pricing")
	alpha := make([]float64, 256)
	for j := range alpha {
		alpha[j] = s.Uniform(-2, 2)
	}
	if got := testing.AllocsPerRun(100, func() {
		pp.devexUpdateFull(alpha, 1.5, 3, 7)
	}); got != 0 {
		t.Errorf("devexUpdateFull allocates %.0f per run, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		pp.resetWeights()
	}); got != 0 {
		t.Errorf("resetWeights allocates %.0f per run, want 0", got)
	}
}

// TestAllocsPartialPrice pins the whole partial-pricing pass — candidate
// re-price plus a full refill wrap at optimality — to zero allocations on
// a solved revised core. The candidate list's capacity is preallocated,
// so steady-state refills must never grow it.
func TestAllocsPartialPrice(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	s := rng.NewReplicate(24, "lp-alloc-partial", 0)
	g := generateStaircaseLP(s, 30, 3)
	tt, sol, _, err := solveBasisRev(g.p, Options{Pricing: PricingPartial})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	cost := make([]float64, tt.width)
	copy(cost, g.p.obj)
	if got := testing.AllocsPerRun(100, func() {
		if pc := tt.partialPrice(cost); pc != -1 {
			t.Fatalf("partialPrice found entering column %d at optimum", pc)
		}
	}); got != 0 {
		t.Errorf("partialPrice allocates %.0f per run at steady state, want 0", got)
	}
}
