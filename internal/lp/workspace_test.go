package lp

// Workspace differential suite: a solve on a reused Workspace must be
// BIT-IDENTICAL — status, objective, iteration count and every solution
// component compared with ==, not a tolerance — to the fresh-allocation
// solve of the same instance, across the whole 240-instance corpus, on
// the cold path, the warm SolveFrom path, the grandchild inheritance
// chain and the batch harness. The workspace rewires where buffers come
// from, never what arithmetic runs on them, so exact equality is the
// honest criterion; any drift means a stale buffer leaked state between
// solves. The companion TestAllocsWorkspace* pins hold the zero
// steady-state allocation claim the whole PR is named after.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/rng"
)

// assertIdentical fails unless the workspace solution b is bit-identical
// to the fresh-allocation reference a.
func assertIdentical(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("%s: status %v != %v", label, a.Status, b.Status)
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d != %d", label, a.Iterations, b.Iterations)
	}
	//lint:ignore floatcmp bit-identical reuse is the contract under test
	if a.Objective != b.Objective {
		t.Fatalf("%s: objective %.17g != %.17g", label, a.Objective, b.Objective)
	}
	if len(a.X) != len(b.X) {
		t.Fatalf("%s: len(X) %d != %d", label, len(a.X), len(b.X))
	}
	for v := range a.X {
		//lint:ignore floatcmp bit-identical reuse is the contract under test
		if a.X[v] != b.X[v] {
			t.Fatalf("%s: x[%d] %.17g != %.17g", label, v, a.X[v], b.X[v])
		}
	}
}

// workspaceDiffOptions are the Options combinations the cold differential
// sweeps: every pricing rule and both matrix representations, plus the
// presolve layer, so each corpus instance exercises the reused buffers of
// every kernel.
var workspaceDiffOptions = []struct {
	name string
	opts Options
}{
	{"default", Options{}},
	{"sparse", Options{Sparse: SparseOn}},
	{"devex", Options{Pricing: PricingDevex}},
	{"partial-sparse", Options{Pricing: PricingPartial, Sparse: SparseOn}},
	{"binv", Options{Factor: FactorBinv}},
	{"presolve", Options{Presolve: PresolveOn}},
}

// TestWorkspaceDifferentialCold: one Workspace per Options combination is
// reused across all 240 corpus instances in sequence — shapes grow and
// shrink between solves, the harshest re-init pattern — and every solve
// must be bit-identical to a fresh SolveBasis/Solve of the same instance.
func TestWorkspaceDifferentialCold(t *testing.T) {
	for _, tc := range workspaceDiffOptions {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ws := NewWorkspace()
			for i := 0; i < corpusSize; i++ {
				label := tc.name + "/" + strconv.Itoa(i)
				g := corpusInstance(i)
				fresh, _, err := SolveBasis(g.p, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ws.Solve(g.p, tc.opts)
				if err != nil {
					t.Fatalf("%s: ws.Solve: %v", label, err)
				}
				assertIdentical(t, label+"/solve", fresh, got)

				freshTab, err := Solve(g.p, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				gotTab, err := ws.SolveTableau(g.p, tc.opts)
				if err != nil {
					t.Fatalf("%s: ws.SolveTableau: %v", label, err)
				}
				assertIdentical(t, label+"/tableau", freshTab, gotTab)
			}
		})
	}
}

// TestWorkspaceDifferentialWarm: the warm-start chain on a reused
// Workspace — parent basis into a bound-tightened child, child basis into
// a grandchild, both the no-basis SolveFrom and the basis-publishing
// SolveBasisFrom — must be bit-identical to the package-level SolveFrom
// chain, dense and sparse.
func TestWorkspaceDifferentialWarm(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"dense", Options{Sparse: SparseOff}},
		{"sparse", Options{Sparse: SparseOn}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			ws := NewWorkspace()
			for i := 0; i < corpusSize; i++ {
				label := mode.name + "/" + strconv.Itoa(i)
				g := corpusInstance(i)
				parent, bs, err := SolveBasis(g.p, mode.opts)
				if err != nil {
					t.Fatal(err)
				}
				if parent.Status != Optimal {
					continue
				}
				s := rng.NewReplicate(6, "lp-workspace-warm", i)
				v := s.Intn(g.p.NumVars())
				child := g.p.Overlay()
				lo, hi := child.Bounds(v)
				child.SetBounds(v, lo, math.Max(lo, math.Min(hi, math.Floor(parent.X[v]))))

				fresh, fbs, err := SolveFrom(child, bs, mode.opts)
				if err != nil {
					t.Fatalf("%s: SolveFrom: %v", label, err)
				}
				got, err := ws.SolveFrom(child, bs, mode.opts)
				if err != nil {
					t.Fatalf("%s: ws.SolveFrom: %v", label, err)
				}
				assertIdentical(t, label+"/child", fresh, got)

				gotB, gbs, err := ws.SolveBasisFrom(child, bs, mode.opts)
				if err != nil {
					t.Fatalf("%s: ws.SolveBasisFrom: %v", label, err)
				}
				assertIdentical(t, label+"/child-basis", fresh, gotB)
				if (fbs == nil) != (gbs == nil) {
					t.Fatalf("%s: basis presence %v != %v", label, fbs == nil, gbs == nil)
				}
				if gbs == nil {
					continue
				}

				// Grandchild: warm-start from the workspace-published child
				// basis and from the fresh child basis; both chains must land
				// on the same vertex bit-for-bit. The workspace basis must
				// stay valid across the further solves on the same workspace
				// (it is a copy-out, never aliased).
				v2 := s.Intn(g.p.NumVars())
				grand := child.Overlay()
				lo2, hi2 := grand.Bounds(v2)
				grand.SetBounds(v2, lo2, math.Max(lo2, math.Min(hi2, math.Floor(fresh.X[v2]))))
				fresh2, _, err := SolveFrom(grand, fbs, mode.opts)
				if err != nil {
					t.Fatalf("%s: grandchild SolveFrom: %v", label, err)
				}
				got2, err := ws.SolveFrom(grand, gbs, mode.opts)
				if err != nil {
					t.Fatalf("%s: grandchild ws.SolveFrom: %v", label, err)
				}
				assertIdentical(t, label+"/grandchild", fresh2, got2)
			}
		})
	}
}

// TestWorkspaceDifferentialBatch: BatchSolve output must be bit-identical
// to a fresh per-instance solve loop at every worker count — positional,
// independent of which worker solved what.
func TestWorkspaceDifferentialBatch(t *testing.T) {
	probs := make([]*Problem, corpusSize)
	for i := range probs {
		probs[i] = corpusInstance(i).p
	}
	fresh := make([]*Solution, len(probs))
	for i, p := range probs {
		sol, _, err := SolveBasis(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = sol
	}
	for _, workers := range []int{1, 4} {
		got, err := BatchSolve(probs, Options{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range probs {
			assertIdentical(t, "workers="+strconv.Itoa(workers)+"/"+strconv.Itoa(i), fresh[i], got[i])
		}
	}
}

// TestWorkspaceAliasingAndReset pins the documented output-aliasing
// contract: the Solution returned by ws.Solve is overwritten by the next
// solve on the same workspace, and Reset relinquishes it so a retained
// Solution survives further solves.
func TestWorkspaceAliasingAndReset(t *testing.T) {
	a, b := corpusInstance(1), corpusInstance(2)
	ws := NewWorkspace()
	ref, err := ws.Solve(a.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.clone()
	if _, err := ws.Solve(b.p, Options{}); err != nil {
		t.Fatal(err)
	}
	// Same pointer, now holding instance b's result: the documented hazard.
	fresh, _, err := SolveBasis(b.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "overwritten", fresh, ref)

	// Reset, retain, solve again: the retained Solution must be untouched.
	kept, err := ws.Solve(a.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ws.Reset()
	if _, err := ws.Solve(b.p, Options{}); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "retained-after-reset", want, kept)
}

// allocPinCases are the representative instances the AllocsPerRun pins
// run on: a dense revised solve, a CSC-backed sparse solve and a boxed
// (bounded-variable) instance, per the acceptance criteria.
func allocPinCases() []struct {
	name string
	p    *Problem
	opts Options
} {
	sDense := rng.New(31, "lp-workspace-alloc-dense")
	dense := generateStaircaseLP(sDense, 30, 3)
	sSparse := rng.New(32, "lp-workspace-alloc-sparse")
	sparse := generateStaircaseLP(sSparse, 80, 4)
	sBox := rng.New(33, "lp-workspace-alloc-boxed")
	boxed := generateBoundedLP(sBox, 6, 8)
	return []struct {
		name string
		p    *Problem
		opts Options
	}{
		{"dense", dense.p, Options{Sparse: SparseOff}},
		{"sparse", sparse.p, Options{Sparse: SparseOn}},
		{"boxed", boxed.p, Options{}},
	}
}

// TestAllocsWorkspaceSolve pins Workspace.Solve at ZERO allocations per
// solve once warmed up, on dense, sparse and boxed instances.
func TestAllocsWorkspaceSolve(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	for _, tc := range allocPinCases() {
		ws := NewWorkspace()
		for warm := 0; warm < 3; warm++ {
			if _, err := ws.Solve(tc.p, tc.opts); err != nil {
				t.Fatal(err)
			}
		}
		if got := testing.AllocsPerRun(50, func() {
			if _, err := ws.Solve(tc.p, tc.opts); err != nil {
				t.Fatal(err)
			}
		}); got != 0 {
			t.Errorf("%s: Workspace.Solve allocates %.0f per run at steady state, want 0", tc.name, got)
		}
	}
}

// TestAllocsWorkspaceSolveFrom pins Workspace.SolveFrom at ZERO
// allocations per warm re-solve once warmed up — the exact per-node cost
// of a branch-and-bound worker at steady state — on dense, sparse and
// boxed instances.
func TestAllocsWorkspaceSolveFrom(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	for _, tc := range allocPinCases() {
		sol, bs, err := SolveBasis(tc.p, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("%s: status %v", tc.name, sol.Status)
		}
		s := rng.New(34, "lp-workspace-alloc-child")
		v := s.Intn(tc.p.NumVars())
		child := tc.p.Overlay()
		lo, hi := child.Bounds(v)
		child.SetBounds(v, lo, math.Max(lo, math.Min(hi, sol.X[v]/2)))

		ws := NewWorkspace()
		for warm := 0; warm < 3; warm++ {
			if _, err := ws.SolveFrom(child, bs, tc.opts); err != nil {
				t.Fatal(err)
			}
		}
		if got := testing.AllocsPerRun(50, func() {
			if _, err := ws.SolveFrom(child, bs, tc.opts); err != nil {
				t.Fatal(err)
			}
		}); got != 0 {
			t.Errorf("%s: Workspace.SolveFrom allocates %.0f per run at steady state, want 0", tc.name, got)
		}
	}
}
