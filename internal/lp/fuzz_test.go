package lp

import (
	"testing"

	"repro/internal/rng"
)

// FuzzSimplex drives the dense tableau solver over the shared random-LP
// generator (see gen_test.go): instances are feasible and bounded by
// construction, so the solver must report Optimal, return a primal
// feasible point, and achieve an objective no worse than c·x*. Each input
// additionally derives a randomly boxed instance (finite bounds, positive
// lower bounds, fixed variables) and cross-checks the bounded-variable
// method against the same problem with its bounds expanded to explicit
// rows via ExpandBounds. Two extra fuzzed bytes pick an Options.Pricing
// rule and an Options.Presolve mode; the variant solve is cross-checked
// against the baseline dantzig/no-presolve path, and the presolved dual
// path must certify against the original problem.
func FuzzSimplex(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(0), uint8(0))
	f.Add(int64(42), uint8(1), uint8(1), uint8(2), uint8(1))
	f.Add(int64(-7), uint8(6), uint8(8), uint8(3), uint8(1))
	f.Add(int64(1<<40), uint8(2), uint8(0), uint8(1), uint8(2))

	f.Fuzz(func(t *testing.T, seed int64, nvRaw, ncRaw, prRaw, psRaw uint8) {
		s := rng.New(seed, "fuzz-simplex")
		n := 1 + int(nvRaw)%6
		m := int(ncRaw) % 9
		g := generateFeasibleLP(s, n, m)

		sol, err := Solve(g.p, Options{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if sol.Status != Optimal {
			t.Fatalf("status = %v, want Optimal (LP is feasible and bounded by construction)", sol.Status)
		}
		if len(sol.X) != n {
			t.Fatalf("solution has %d vars, want %d", len(sol.X), n)
		}
		for v, x := range sol.X {
			if x < -1e-7 {
				t.Errorf("x[%d] = %g violates non-negativity", v, x)
			}
		}
		for i, r := range g.rows {
			lhs := 0.0
			scale := 1.0
			for v, c := range r.coefs {
				lhs += c * sol.X[v]
				if a := c * sol.X[v]; a > scale {
					scale = a
				} else if -a > scale {
					scale = -a
				}
			}
			if lhs > r.rhs+1e-6*scale+1e-6 {
				t.Errorf("row %d infeasible: %g > %g", i, lhs, r.rhs)
			}
		}
		// x* is feasible, so the optimum must score at least c·x*.
		want := g.feasibleValue()
		tol := 1e-6 * (1 + abs(want))
		if sol.Objective < want-tol {
			t.Errorf("objective %g below feasible point's value %g", sol.Objective, want)
		}

		// The revised core with the sparse matrix forced on must reproduce
		// the tableau result — this keeps the fuzzer exercising the CSC/CSR
		// hot loops, not just the dense paths.
		sparse, _, err := SolveBasis(g.p, Options{Sparse: SparseOn})
		if err != nil {
			t.Fatalf("SolveBasis(SparseOn): %v", err)
		}
		if sparse.Status != Optimal {
			t.Fatalf("sparse status = %v, want Optimal", sparse.Status)
		}
		if d := sparse.Objective - sol.Objective; abs(d) > 1e-6*(1+abs(sol.Objective)) {
			t.Errorf("sparse objective %g != tableau objective %g (diff %g)",
				sparse.Objective, sol.Objective, d)
		}

		// Kernel cross-check: the revised core above ran the default sparse
		// LU basis kernel; the legacy dense-B⁻¹ kernel must land on the same
		// vertex (identical pivot rule over identical matrices), so the full
		// solution vector must agree, not just the objective.
		binv, _, err := SolveBasis(g.p, Options{Sparse: SparseOn, Factor: FactorBinv})
		if err != nil {
			t.Fatalf("SolveBasis(FactorBinv): %v", err)
		}
		if binv.Status != sparse.Status {
			t.Fatalf("binv status = %v, lu status = %v", binv.Status, sparse.Status)
		}
		for v := range binv.X {
			if d := binv.X[v] - sparse.X[v]; abs(d) > 1e-9 {
				t.Errorf("kernels disagree at x[%d]: binv %g != lu %g", v, binv.X[v], sparse.X[v])
			}
		}

		// Fuzzed pricing rule and presolve mode: whatever the bytes pick,
		// the variant must land on the baseline optimum, on the tableau
		// core and the revised core alike.
		pricing := []PricingMode{PricingAuto, PricingDantzig, PricingDevex, PricingPartial}[int(prRaw)%4]
		presolve := []PresolveMode{PresolveAuto, PresolveOn, PresolveOff}[int(psRaw)%3]
		vopts := Options{Pricing: pricing, Presolve: presolve}
		vsol, err := Solve(g.p, vopts)
		if err != nil {
			t.Fatalf("Solve(%v, %v): %v", pricing, presolve, err)
		}
		if vsol.Status != Optimal {
			t.Fatalf("variant status = %v (pricing %v, presolve %v), want Optimal", vsol.Status, pricing, presolve)
		}
		if d := vsol.Objective - sol.Objective; abs(d) > 1e-6*(1+abs(sol.Objective)) {
			t.Errorf("variant objective %g != baseline %g (pricing %v, presolve %v)",
				vsol.Objective, sol.Objective, pricing, presolve)
		}
		vrev, _, err := SolveBasis(g.p, vopts)
		if err != nil {
			t.Fatalf("SolveBasis(%v, %v): %v", pricing, presolve, err)
		}
		if vrev.Status != Optimal {
			t.Fatalf("variant revised status = %v, want Optimal", vrev.Status)
		}
		if d := vrev.Objective - sol.Objective; abs(d) > 1e-6*(1+abs(sol.Objective)) {
			t.Errorf("variant revised objective %g != baseline %g (pricing %v, presolve %v)",
				vrev.Objective, sol.Objective, pricing, presolve)
		}
		// The presolved dual path must still produce a certificate of the
		// ORIGINAL problem.
		ds, err := SolveWithDuals(g.p, Options{Presolve: PresolveOn})
		if err != nil {
			t.Fatalf("SolveWithDuals(PresolveOn): %v", err)
		}
		if ds.Status == Optimal {
			if err := Certify(g.p, ds.X, ds.Duals, 1e-6); err != nil {
				t.Errorf("presolved certificate: %v", err)
			}
		}

		// Boxed variant from the same stream: the bounded-variable method
		// must match the bounds-expanded-to-rows rewrite of the identical
		// instance, and its solution must respect the original boxes.
		gb := generateBoundedLP(s, n, m)
		bounded, err := Solve(gb.p, Options{})
		if err != nil {
			t.Fatalf("Solve(bounded): %v", err)
		}
		if bounded.Status != Optimal {
			t.Fatalf("bounded status = %v, want Optimal (boxed LP is feasible and bounded by construction)", bounded.Status)
		}
		for v, x := range bounded.X {
			if x < gb.lo[v]-1e-7 || x > gb.hi[v]+1e-7 {
				t.Errorf("x[%d] = %g outside box [%g, %g]", v, x, gb.lo[v], gb.hi[v])
			}
		}
		expanded, err := Solve(ExpandBounds(gb.p), Options{})
		if err != nil {
			t.Fatalf("Solve(ExpandBounds): %v", err)
		}
		if expanded.Status != Optimal {
			t.Fatalf("expanded status = %v, want Optimal", expanded.Status)
		}
		if d := bounded.Objective - expanded.Objective; abs(d) > 1e-6*(1+abs(expanded.Objective)) {
			t.Errorf("bounded objective %g != rows-expanded objective %g (diff %g)",
				bounded.Objective, expanded.Objective, d)
		}
		boundedSparse, _, err := SolveBasis(gb.p, Options{Sparse: SparseOn})
		if err != nil {
			t.Fatalf("SolveBasis(bounded, SparseOn): %v", err)
		}
		if boundedSparse.Status != Optimal {
			t.Fatalf("bounded sparse status = %v, want Optimal", boundedSparse.Status)
		}
		if d := boundedSparse.Objective - bounded.Objective; abs(d) > 1e-6*(1+abs(bounded.Objective)) {
			t.Errorf("bounded sparse objective %g != bounded tableau objective %g (diff %g)",
				boundedSparse.Objective, bounded.Objective, d)
		}
		// The boxed family's fixed variables are presolve's fixed-column
		// food: the fuzzed variant options must agree here too.
		vbounded, _, err := SolveBasis(gb.p, vopts)
		if err != nil {
			t.Fatalf("SolveBasis(bounded, %v, %v): %v", pricing, presolve, err)
		}
		if vbounded.Status != Optimal {
			t.Fatalf("bounded variant status = %v, want Optimal", vbounded.Status)
		}
		if d := vbounded.Objective - bounded.Objective; abs(d) > 1e-6*(1+abs(bounded.Objective)) {
			t.Errorf("bounded variant objective %g != baseline %g (pricing %v, presolve %v)",
				vbounded.Objective, bounded.Objective, pricing, presolve)
		}
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
