package lp

import (
	"testing"

	"repro/internal/rng"
)

// FuzzSimplex builds random LPs that are feasible by construction — a known
// point x* >= 0 satisfies every row because each RHS is A_i·x* plus a
// non-negative slack — and bounded by construction thanks to per-variable box
// constraints. The solver must therefore report Optimal, return a primal
// feasible point, and achieve an objective no worse than c·x*.
func FuzzSimplex(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4))
	f.Add(int64(42), uint8(1), uint8(1))
	f.Add(int64(-7), uint8(6), uint8(8))
	f.Add(int64(1<<40), uint8(2), uint8(0))

	f.Fuzz(func(t *testing.T, seed int64, nvRaw, ncRaw uint8) {
		s := rng.New(seed, "fuzz-simplex")
		n := 1 + int(nvRaw)%6
		m := int(ncRaw) % 9

		// Known feasible point.
		xstar := make([]float64, n)
		for v := range xstar {
			xstar[v] = s.Uniform(0, 5)
		}

		p := NewProblem(n)
		obj := make([]float64, n)
		for v := range obj {
			obj[v] = s.Uniform(-1, 2)
			p.SetObjCoef(v, obj[v])
		}

		type rowData struct {
			coefs []float64
			rhs   float64
		}
		var rows []rowData
		addRow := func(coefs []float64, rhs float64) {
			terms := make([]Term, 0, len(coefs))
			for v, c := range coefs {
				if c != 0 {
					terms = append(terms, Term{Var: v, Coef: c})
				}
			}
			p.AddConstraint(terms, LE, rhs)
			rows = append(rows, rowData{coefs: coefs, rhs: rhs})
		}

		// Random LE rows, feasible at x* with non-negative slack.
		for i := 0; i < m; i++ {
			coefs := make([]float64, n)
			dot := 0.0
			for v := range coefs {
				if s.Float64() < 0.3 {
					continue // keep some sparsity
				}
				coefs[v] = s.Uniform(-2, 3)
				dot += coefs[v] * xstar[v]
			}
			addRow(coefs, dot+s.Uniform(0, 2))
		}
		// Box constraints keep the maximisation bounded; each box contains x*.
		for v := 0; v < n; v++ {
			coefs := make([]float64, n)
			coefs[v] = 1
			addRow(coefs, xstar[v]+s.Uniform(0.1, 5))
		}

		sol, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if sol.Status != Optimal {
			t.Fatalf("status = %v, want Optimal (LP is feasible and bounded by construction)", sol.Status)
		}
		if len(sol.X) != n {
			t.Fatalf("solution has %d vars, want %d", len(sol.X), n)
		}
		for v, x := range sol.X {
			if x < -1e-7 {
				t.Errorf("x[%d] = %g violates non-negativity", v, x)
			}
		}
		for i, r := range rows {
			lhs := 0.0
			scale := 1.0
			for v, c := range r.coefs {
				lhs += c * sol.X[v]
				if a := c * sol.X[v]; a > scale {
					scale = a
				} else if -a > scale {
					scale = -a
				}
			}
			if lhs > r.rhs+1e-6*scale+1e-6 {
				t.Errorf("row %d infeasible: %g > %g", i, lhs, r.rhs)
			}
		}
		// x* is feasible, so the optimum must score at least c·x*.
		want := 0.0
		for v := range obj {
			want += obj[v] * xstar[v]
		}
		tol := 1e-6 * (1 + abs(want))
		if sol.Objective < want-tol {
			t.Errorf("objective %g below feasible point's value %g", sol.Objective, want)
		}
	})
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
