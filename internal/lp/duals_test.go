package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDualsTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum 36 with
	// duals (0, 3/2, 1).
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal {
		t.Fatalf("status %v", ds.Status)
	}
	want := []float64{0, 1.5, 1}
	for i := range want {
		if math.Abs(ds.Duals[i]-want[i]) > 1e-7 {
			t.Errorf("dual %d = %g, want %g", i, ds.Duals[i], want[i])
		}
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
	// Reduced costs of basic variables are zero.
	for v, rc := range ds.ReducedCosts {
		if ds.X[v] > 1e-9 && math.Abs(rc) > 1e-7 {
			t.Errorf("basic var %d has reduced cost %g", v, rc)
		}
	}
}

func TestDualsWithEqualityAndGE(t *testing.T) {
	// max x + 2y s.t. x + y == 4, y >= 1, x <= 2.5.
	// Optimum: y as large as possible: x=0? obj = x+2y = x + 2(4−x) = 8−x
	// -> x = 0, y = 4, obj 8. Duals: eq row 2, ge row 0, le row 0.
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{1, 1}}, GE, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 2.5)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal || math.Abs(ds.Objective-8) > 1e-7 {
		t.Fatalf("status %v obj %g", ds.Status, ds.Objective)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
	if math.Abs(ds.Duals[0]-2) > 1e-7 {
		t.Errorf("equality dual = %g, want 2", ds.Duals[0])
	}
}

func TestDualsUpperBoundComplementarity(t *testing.T) {
	// max 2x + y s.t. x + y <= 10 with x boxed to [0, 3]. Optimum x = 3,
	// y = 7, objective 13; the row dual is 1 and the reduced cost of x is
	// 2 − 1 = +1: positive, as complementary slackness demands of a
	// variable resting at its upper bound (the residue is priced by the
	// upper bound's own multiplier). Certify must accept the certificate —
	// under the default [0, +inf) boxes a positive reduced cost would be
	// outright dual-infeasible, so this pins the boxed dual theory.
	p := NewProblem(2)
	p.SetObjCoef(0, 2)
	p.SetObjCoef(1, 1)
	p.SetBounds(0, 0, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal || math.Abs(ds.Objective-13) > 1e-7 {
		t.Fatalf("status %v obj %g, want Optimal 13", ds.Status, ds.Objective)
	}
	if math.Abs(ds.X[0]-3) > 1e-7 || math.Abs(ds.X[1]-7) > 1e-7 {
		t.Fatalf("x = %v, want (3, 7)", ds.X)
	}
	if math.Abs(ds.Duals[0]-1) > 1e-7 {
		t.Errorf("row dual = %g, want 1", ds.Duals[0])
	}
	if rc := ds.ReducedCosts[0]; math.Abs(rc-1) > 1e-7 {
		t.Errorf("reduced cost at upper bound = %g, want +1", rc)
	}
	if rc := ds.ReducedCosts[1]; math.Abs(rc) > 1e-7 {
		t.Errorf("basic variable reduced cost = %g, want 0", rc)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

func TestDualsNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -3 (x >= 3). Optimum x=3, obj -3; the flipped row's
	// dual in original orientation is y <= 0 with value -1... specifically
	// c - y·a = 0 for basic x: -1 - y·(-1) = 0 -> y = -1? With a = -1:
	// -1 + y = 0 -> y = 1? Let Certify decide.
	p := NewProblem(1)
	p.SetObjCoef(0, -1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal {
		t.Fatalf("status %v", ds.Status)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

func TestCertifyOnRandomLPs(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		src := rng.NewReplicate(123, "certify", trial)
		p := randomLP(src, 3+src.Intn(12), 3+src.Intn(20))
		ds, err := SolveWithDuals(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, ds.Status)
		}
		if err := Certify(p, ds.X, ds.Duals, 1e-5); err != nil {
			t.Errorf("trial %d: certificate rejected: %v", trial, err)
		}
	}
}

func TestCertifyRejectsBadCertificates(t *testing.T) {
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	// Wrong dimensions.
	if err := Certify(p, []float64{1, 2}, []float64{0}, 1e-9); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Primal infeasible point.
	if err := Certify(p, []float64{3}, []float64{1}, 1e-9); err == nil {
		t.Error("infeasible primal accepted")
	}
	// Negative primal.
	if err := Certify(p, []float64{-1}, []float64{1}, 1e-9); err == nil {
		t.Error("negative primal accepted")
	}
	// Wrong dual sign.
	if err := Certify(p, []float64{2}, []float64{-1}, 1e-9); err == nil {
		t.Error("negative LE dual accepted")
	}
	// Duality gap (suboptimal primal with optimal dual).
	if err := Certify(p, []float64{1}, []float64{1}, 1e-9); err == nil {
		t.Error("duality gap accepted")
	}
	// Positive reduced cost (zero dual on the only binding row).
	if err := Certify(p, []float64{2}, []float64{0}, 1e-9); err == nil {
		t.Error("positive reduced cost accepted")
	}
}

func TestSolveWithDualsInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Infeasible {
		t.Errorf("status %v", ds.Status)
	}
	if ds.Duals != nil {
		t.Error("infeasible problems should not carry duals")
	}
}
