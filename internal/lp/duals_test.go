package lp

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestDualsTextbook(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum 36 with
	// duals (0, 3/2, 1).
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal {
		t.Fatalf("status %v", ds.Status)
	}
	want := []float64{0, 1.5, 1}
	for i := range want {
		if math.Abs(ds.Duals[i]-want[i]) > 1e-7 {
			t.Errorf("dual %d = %g, want %g", i, ds.Duals[i], want[i])
		}
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
	// Reduced costs of basic variables are zero.
	for v, rc := range ds.ReducedCosts {
		if ds.X[v] > 1e-9 && math.Abs(rc) > 1e-7 {
			t.Errorf("basic var %d has reduced cost %g", v, rc)
		}
	}
}

func TestDualsWithEqualityAndGE(t *testing.T) {
	// max x + 2y s.t. x + y == 4, y >= 1, x <= 2.5.
	// Optimum: y as large as possible: x=0? obj = x+2y = x + 2(4−x) = 8−x
	// -> x = 0, y = 4, obj 8. Duals: eq row 2, ge row 0, le row 0.
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{1, 1}}, GE, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 2.5)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal || math.Abs(ds.Objective-8) > 1e-7 {
		t.Fatalf("status %v obj %g", ds.Status, ds.Objective)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
	if math.Abs(ds.Duals[0]-2) > 1e-7 {
		t.Errorf("equality dual = %g, want 2", ds.Duals[0])
	}
}

func TestDualsUpperBoundComplementarity(t *testing.T) {
	// max 2x + y s.t. x + y <= 10 with x boxed to [0, 3]. Optimum x = 3,
	// y = 7, objective 13; the row dual is 1 and the reduced cost of x is
	// 2 − 1 = +1: positive, as complementary slackness demands of a
	// variable resting at its upper bound (the residue is priced by the
	// upper bound's own multiplier). Certify must accept the certificate —
	// under the default [0, +inf) boxes a positive reduced cost would be
	// outright dual-infeasible, so this pins the boxed dual theory.
	p := NewProblem(2)
	p.SetObjCoef(0, 2)
	p.SetObjCoef(1, 1)
	p.SetBounds(0, 0, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal || math.Abs(ds.Objective-13) > 1e-7 {
		t.Fatalf("status %v obj %g, want Optimal 13", ds.Status, ds.Objective)
	}
	if math.Abs(ds.X[0]-3) > 1e-7 || math.Abs(ds.X[1]-7) > 1e-7 {
		t.Fatalf("x = %v, want (3, 7)", ds.X)
	}
	if math.Abs(ds.Duals[0]-1) > 1e-7 {
		t.Errorf("row dual = %g, want 1", ds.Duals[0])
	}
	if rc := ds.ReducedCosts[0]; math.Abs(rc-1) > 1e-7 {
		t.Errorf("reduced cost at upper bound = %g, want +1", rc)
	}
	if rc := ds.ReducedCosts[1]; math.Abs(rc) > 1e-7 {
		t.Errorf("basic variable reduced cost = %g, want 0", rc)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

func TestDualsNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -3 (x >= 3). Optimum x=3, obj -3; the flipped row's
	// dual in original orientation is y <= 0 with value -1... specifically
	// c - y·a = 0 for basic x: -1 - y·(-1) = 0 -> y = -1? With a = -1:
	// -1 + y = 0 -> y = 1? Let Certify decide.
	p := NewProblem(1)
	p.SetObjCoef(0, -1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Optimal {
		t.Fatalf("status %v", ds.Status)
	}
	if err := Certify(p, ds.X, ds.Duals, 1e-6); err != nil {
		t.Errorf("certificate rejected: %v", err)
	}
}

func TestCertifyOnRandomLPs(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		src := rng.NewReplicate(123, "certify", trial)
		p := randomLP(src, 3+src.Intn(12), 3+src.Intn(20))
		ds, err := SolveWithDuals(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, ds.Status)
		}
		if err := Certify(p, ds.X, ds.Duals, 1e-5); err != nil {
			t.Errorf("trial %d: certificate rejected: %v", trial, err)
		}
	}
}

func TestCertifyRejectsBadCertificates(t *testing.T) {
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	// Wrong dimensions.
	if err := Certify(p, []float64{1, 2}, []float64{0}, 1e-9); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// Primal infeasible point.
	if err := Certify(p, []float64{3}, []float64{1}, 1e-9); err == nil {
		t.Error("infeasible primal accepted")
	}
	// Negative primal.
	if err := Certify(p, []float64{-1}, []float64{1}, 1e-9); err == nil {
		t.Error("negative primal accepted")
	}
	// Wrong dual sign.
	if err := Certify(p, []float64{2}, []float64{-1}, 1e-9); err == nil {
		t.Error("negative LE dual accepted")
	}
	// Duality gap (suboptimal primal with optimal dual).
	if err := Certify(p, []float64{1}, []float64{1}, 1e-9); err == nil {
		t.Error("duality gap accepted")
	}
	// Positive reduced cost (zero dual on the only binding row).
	if err := Certify(p, []float64{2}, []float64{0}, 1e-9); err == nil {
		t.Error("positive reduced cost accepted")
	}
}

func TestSolveWithDualsInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	ds, err := SolveWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Infeasible {
		t.Errorf("status %v", ds.Status)
	}
	if ds.Duals != nil {
		t.Error("infeasible problems should not carry duals")
	}
}

// TestSolveBasisWithDualsTextbook pins the kernel-extracted duals on the
// same instance TestDualsTextbook uses for the tableau extraction.
func TestSolveBasisWithDualsTextbook(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	for _, fm := range []FactorMode{FactorLU, FactorBinv} {
		ds, bs, err := SolveBasisWithDuals(p, Options{Factor: fm})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Status != Optimal {
			t.Fatalf("factor=%v: status %v", fm, ds.Status)
		}
		if bs == nil {
			t.Fatalf("factor=%v: no basis returned", fm)
		}
		if math.Abs(ds.Objective-36) > 1e-9 {
			t.Errorf("factor=%v: objective %g, want 36", fm, ds.Objective)
		}
		want := []float64{0, 1.5, 1}
		for i, w := range want {
			if math.Abs(ds.Duals[i]-w) > 1e-9 {
				t.Errorf("factor=%v: dual[%d] = %g, want %g", fm, i, ds.Duals[i], w)
			}
		}
	}
}

// TestSolveBasisWithDualsCertify runs the kernel dual extraction over
// random LPs under both basis kernels and checks every certificate with
// Certify, then cross-checks duals and reduced costs against the tableau
// extraction on the same instance.
func TestSolveBasisWithDualsCertify(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		src := rng.NewReplicate(321, "certify-kernel", trial)
		p := randomLP(src, 3+src.Intn(12), 3+src.Intn(20))
		ref, err := SolveWithDuals(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, ref.Status)
		}
		for _, fm := range []FactorMode{FactorLU, FactorBinv} {
			ds, _, err := SolveBasisWithDuals(p, Options{Factor: fm})
			if err != nil {
				t.Fatal(err)
			}
			if ds.Status != Optimal {
				t.Fatalf("trial %d factor=%v: status %v", trial, fm, ds.Status)
			}
			if err := Certify(p, ds.X, ds.Duals, 1e-5); err != nil {
				t.Errorf("trial %d factor=%v: certificate rejected: %v", trial, fm, err)
			}
			if math.Abs(ds.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
				t.Errorf("trial %d factor=%v: objective %g vs tableau %g",
					trial, fm, ds.Objective, ref.Objective)
			}
			for i := range ds.Duals {
				if math.Abs(ds.Duals[i]-ref.Duals[i]) > 1e-6*(1+math.Abs(ref.Duals[i])) {
					t.Errorf("trial %d factor=%v: dual[%d] = %g vs tableau %g",
						trial, fm, i, ds.Duals[i], ref.Duals[i])
				}
			}
			for v := range ds.ReducedCosts {
				if math.Abs(ds.ReducedCosts[v]-ref.ReducedCosts[v]) > 1e-6*(1+math.Abs(ref.ReducedCosts[v])) {
					t.Errorf("trial %d factor=%v: redcost[%d] = %g vs tableau %g",
						trial, fm, v, ds.ReducedCosts[v], ref.ReducedCosts[v])
				}
			}
		}
	}
}

// TestSolveBasisWithDualsStaircase certifies the kernel duals on
// DSCT-EA-FR-shaped staircase instances, the sparse workload the LU kernel
// is built for.
func TestSolveBasisWithDualsStaircase(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		src := rng.NewReplicate(322, "certify-kernel-staircase", trial)
		g := generateStaircaseLP(src, 20+src.Intn(21), 2+src.Intn(3))
		ds, _, err := SolveBasisWithDuals(g.p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, ds.Status)
		}
		if err := Certify(g.p, ds.X, ds.Duals, 1e-5); err != nil {
			t.Errorf("trial %d: certificate rejected: %v", trial, err)
		}
	}
}

// TestSolveBasisWithDualsInfeasible mirrors TestSolveWithDualsInfeasible:
// non-optimal statuses must carry no duals.
func TestSolveBasisWithDualsInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	ds, bs, err := SolveBasisWithDuals(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", ds.Status)
	}
	if ds.Duals != nil || bs != nil {
		t.Fatal("infeasible solve returned duals or a basis")
	}
}
