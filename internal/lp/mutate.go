package lp

// In-place mutation API for incremental re-solves. The incremental engine
// (internal/incremental) keeps one live Problem per shard and applies
// scheduler events — task arrivals, departures, machine joins/leaves,
// budget renegotiations — as deltas against it instead of rebuilding the
// model: new columns via AddVariables, new rows via AddConstraint,
// coefficient extensions of existing rows via AppendTerms, right-hand-side
// edits via SetRHS and entity removal via Deactivate. Every mutator
// preserves the copy-on-write discipline Overlay relies on: storage that
// may be shared with another Problem (a base prefix, an aliased objective
// or bound slice, a term slice referenced by an overlay) is copied before
// the first write, so mutating a problem never changes what a previously
// derived problem sees.
//
// The one contract callers must keep is Overlay's: a Problem must not be
// mutated while an overlay derived FROM IT is alive. Mutate between
// solves, never during one.

import (
	"fmt"
	"math"
)

// materializeRows gives p an owned row-header slice covering every
// constraint, flattening a shared base prefix (set by Overlay) into it.
// Term slices stay shared until AppendTerms copies the edited row's.
//
//lint:freezer the copy-on-write transition for row headers: replaces the aliased prefix with owned headers
func (p *Problem) materializeRows() {
	if p.base == nil {
		return
	}
	rows := make([]row, 0, p.NumConstraints())
	rows = append(rows, p.base...)
	rows = append(rows, p.rows...)
	p.base = nil
	p.rows = rows
}

// SetRHS replaces the right-hand side of constraint row i, leaving its
// terms and sense untouched — the delta for budget renegotiations and
// group-cardinality edits. It panics on an out-of-range row or a NaN rhs.
//
// A basis produced before the edit warm-starts the edited problem
// directly: the basic column set is independent of b, so the dual simplex
// repairs the (at most one-row) primal infeasibility in a few pivots.
//
//lint:hotpath=bounded one header write after the bounded one-time row materialisation
func (p *Problem) SetRHS(i int, rhs float64) {
	if i < 0 || i >= p.NumConstraints() {
		panic(fmt.Sprintf("lp: SetRHS(%d) out of range [0,%d)", i, p.NumConstraints()))
	}
	if math.IsNaN(rhs) {
		panic(fmt.Sprintf("lp: SetRHS(%d): NaN right-hand side", i))
	}
	p.materializeRows()
	p.rows[i].rhs = rhs
}

// AppendTerms adds coefficients to existing constraint row i (the delta
// that extends a budget, assignment or staircase row when a new task or
// machine brings new columns into scope). Like AddConstraint, appended
// terms may repeat a variable already on the row; coefficients accumulate.
// The row's term slice is copied before the append, so problems that
// shared it (clones of headers via Overlay flattening) are unaffected.
//
//lint:hotpath=bounded copies only the one edited row's terms per call
func (p *Problem) AppendTerms(i int, terms []Term) {
	if i < 0 || i >= p.NumConstraints() {
		panic(fmt.Sprintf("lp: AppendTerms(%d) out of range [0,%d)", i, p.NumConstraints()))
	}
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	if len(terms) == 0 {
		return
	}
	p.materializeRows()
	r := &p.rows[i]
	nt := make([]Term, 0, len(r.terms)+len(terms))
	nt = append(nt, r.terms...)
	nt = append(nt, terms...)
	r.terms = nt
}

// AddVariables appends k new structural variables and returns the index of
// the first: objective coefficient 0 and the default [0, +Inf) box, ready
// for SetObjCoef/SetBounds and for rows that reference them. Existing rows
// are unchanged (the new columns have zero coefficients everywhere until
// AppendTerms or AddConstraint mentions them).
//
// Shared objective and bound storage is copied before the extension, so
// the problem this one was derived from keeps its own variable count. A
// Basis produced before the append still warm-starts the grown problem:
// new columns enter nonbasic at their lower bound, which leaves the basic
// column set — and hence the snapshot's factorisation — intact.
//
//lint:freezer copies shared objective/bound storage before the extension (copy-on-write growth)
func (p *Problem) AddVariables(k int) int {
	if k <= 0 {
		panic(fmt.Sprintf("lp: AddVariables(%d): count must be positive", k))
	}
	first := p.nVars
	obj := make([]float64, p.nVars+k)
	copy(obj, p.obj)
	p.obj = obj
	p.objShared = false
	if p.lo != nil {
		lo := make([]float64, p.nVars+k)
		hi := make([]float64, p.nVars+k)
		copy(lo, p.lo)
		copy(hi, p.hi)
		inf := math.Inf(1)
		for v := p.nVars; v < len(hi); v++ {
			hi[v] = inf
		}
		p.lo, p.hi = lo, hi
		p.boundsShared = false
	}
	p.nVars += k
	return first
}

// Deactivate fixes variable v to zero by boxing it to [0, 0] — the column
// analogue of dropping it. Every row coefficient of v becomes inert, the
// objective contribution vanishes, and a basis that had v basic stays
// adoptable (the warm start's dual phase drives the fixed column out).
// Departed tasks and withdrawn machines are deactivated, never deleted, so
// column indices of the live problem are stable for the lifetime of the
// engine.
//
//lint:hotpath=bounded two bound writes after the bounded one-time box materialisation
func (p *Problem) Deactivate(v int) {
	p.SetBounds(v, 0, 0)
}
