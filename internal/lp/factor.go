package lp

// Sparse LU factorisation of the simplex basis, with an eta file for
// product-form updates. This is the revised core's default basis kernel
// (Options.Factor): instead of maintaining an explicit dense m×m B⁻¹ —
// O(m³) Gauss–Jordan refactorisation, O(m²) per pivot, m² floats per
// warm-start snapshot — it keeps B = Pᵀ·L·U·Qᵀ as two sparse triangular
// factors plus a short product-form eta file, so
//
//   - FTRAN (w = B⁻¹a) and BTRAN (yᵀ = cᵦᵀB⁻¹) are triangular solves that
//     skip structural zeros: O(nnz(L+U) + nnz(etas)) per application;
//   - a pivot appends one eta vector (the entering direction already
//     computed for the ratio test) instead of rewriting m² entries;
//   - refactorisation is right-looking elimination with Markowitz ordering
//     and threshold pivoting — near-O(nnz) on the staircase bases the
//     paper's EDF instances produce — triggered adaptively by eta-file
//     fill and a numerical-drift check rather than a fixed pivot count;
//   - a warm-start snapshot shares the immutable L/U with every child that
//     inherits it (O(1) adoption), instead of copying an m² inverse.
//
// Coordinate conventions. Basis matrix columns are indexed by basis
// position (the slot in rev.basis), rows by constraint row. The
// factorisation permutes both: rowOf/posOfRow map elimination step k to
// the pivoted constraint row and back, colOf/posOfCol do the same for
// basis positions. L and U are stored column-wise in elimination
// coordinates; L has an implicit unit diagonal, U keeps its diagonal in
// uDiag. Column-wise storage serves both directions: FTRAN scatters down
// columns, BTRAN gathers up them.

import "math"

const (
	// markowitzTau is the threshold-pivoting tolerance: a pivot candidate
	// must have magnitude at least markowitzTau times its column's largest,
	// trading a bounded amount of growth for sparsity in the factors.
	markowitzTau = 0.1
	// markowitzSearch bounds the candidate columns examined per pivot once
	// a usable candidate is in hand; Markowitz cost is a heuristic, so an
	// exhaustive scan buys little over the first few low-count columns.
	markowitzSearch = 8
	// etaFillRows/etaFillLU define the adaptive refactorisation trigger:
	// the eta file may hold at most etaFillRows·m + etaFillLU·nnz(LU)
	// nonzeros before the factors are rebuilt — beyond that, applying the
	// etas costs more than a fresh near-O(nnz) factorisation would save.
	etaFillRows = 4
	etaFillLU   = 2
	// driftCheckEvery is the pivot cadence of the numerical-drift check on
	// the eta path: every driftCheckEvery pivots the basic values are
	// verified against B·xb ≈ q and the factors rebuilt on failure.
	driftCheckEvery = 16
)

// luFactor is a sparse LU factorisation of one basis matrix plus the eta
// file of product-form updates applied since. A frozen luFactor (see
// freeze) is immutable and safe to share across goroutines; appendEta may
// only be called by the single solver that owns the factor.
type luFactor struct {
	//lint:frozen dimension is fixed at factorisation
	m int

	//lint:frozen permutation backing is shared by every frozen snapshot
	rowOf []int // elimination step -> constraint row
	//lint:frozen permutation backing is shared by every frozen snapshot
	posOfRow []int // constraint row -> elimination step
	//lint:frozen permutation backing is shared by every frozen snapshot
	colOf []int // elimination step -> basis position
	//lint:frozen permutation backing is shared by every frozen snapshot
	posOfCol []int // basis position -> elimination step

	// L: unit lower triangular, column-wise, elimination coordinates;
	// column k holds the step-k multipliers (row indices > k).
	//
	//lint:frozen L is never mutated after factorisation and shared as-is
	lPtr []int
	//lint:frozen L is never mutated after factorisation and shared as-is
	lIdx []int
	//lint:frozen L is never mutated after factorisation and shared as-is
	lVal []float64
	// U: upper triangular, column-wise; column k holds entries above the
	// diagonal (row indices < k), the diagonal lives in uDiag.
	//
	//lint:frozen U is never mutated after factorisation and shared as-is
	uPtr []int
	//lint:frozen U is never mutated after factorisation and shared as-is
	uIdx []int
	//lint:frozen U is never mutated after factorisation and shared as-is
	uVal []float64
	//lint:frozen U is never mutated after factorisation and shared as-is
	uDiag []float64

	//lint:frozen fixed at factorisation
	nnzLU int // total stored nonzeros of L and U including the diagonal

	// Eta file: update e appended at basis position etaPos[e] transforms
	// B into B·E with E = I except column etaPos[e] = w (the entering
	// direction). etaDiag[e] = w[etaPos[e]]; the off-diagonal nonzeros of
	// w live in etaIdx/etaVal[etaPtr[e]:etaPtr[e+1]].
	//
	//lint:frozen eta backing may be shared with frozen siblings; only appendEta may grow it
	etaPos []int
	//lint:frozen eta backing may be shared with frozen siblings; only appendEta may grow it
	etaDiag []float64
	//lint:frozen eta backing may be shared with frozen siblings; only appendEta may grow it
	etaPtr []int // len(etaPos)+1 offsets into etaIdx/etaVal
	//lint:frozen eta backing may be shared with frozen siblings; only appendEta may grow it
	etaIdx []int
	//lint:frozen eta backing may be shared with frozen siblings; only appendEta may grow it
	etaVal []float64
}

// nEtas returns the number of product-form updates absorbed.
func (f *luFactor) nEtas() int { return len(f.etaPos) }

// etaNnz returns the stored nonzero count of the eta file.
func (f *luFactor) etaNnz() int { return len(f.etaPos) + len(f.etaIdx) }

// fillHeavy reports that the eta file has outgrown the factors and a
// refactorisation is cheaper than continuing to apply it.
func (f *luFactor) fillHeavy() bool {
	return f.etaNnz() > etaFillRows*f.m+etaFillLU*f.nnzLU
}

// appendEta records the product-form update of a pivot at basis position r
// with entering direction w = B⁻¹A_pc (position space, length m).
//
//lint:freezer the owning solver's eta append is the copy-on-write growth point
//lint:hotpath one append per pivot; arena growth is amortised and pinned to zero steady-state allocations
func (f *luFactor) appendEta(r int, w []float64) {
	f.etaPos = append(f.etaPos, r)
	f.etaDiag = append(f.etaDiag, w[r])
	for i, wi := range w {
		if i != r && wi != 0 {
			f.etaIdx = append(f.etaIdx, i)
			f.etaVal = append(f.etaVal, wi)
		}
	}
	f.etaPtr = append(f.etaPtr, len(f.etaIdx))
}

// freeze returns a snapshot of f that is safe to share: the eta slices are
// clipped to their length, so a solver that later inherits the snapshot
// and appends an eta forces a copy-on-write reallocation instead of
// scribbling over a backing array shared with sibling solvers. L and U are
// never mutated after factorisation, so they are shared as-is.
//
//lint:freezer clips the slice headers of a local copy; the shared backing is untouched
func (f *luFactor) freeze() *luFactor {
	c := *f
	c.etaPos = c.etaPos[:len(c.etaPos):len(c.etaPos)]
	c.etaDiag = c.etaDiag[:len(c.etaDiag):len(c.etaDiag)]
	c.etaPtr = c.etaPtr[:len(c.etaPtr):len(c.etaPtr)]
	c.etaIdx = c.etaIdx[:len(c.etaIdx):len(c.etaIdx)]
	c.etaVal = c.etaVal[:len(c.etaVal):len(c.etaVal)]
	return &c
}

// ftran solves B·x = rhs: rhs is in row space, the result (written to out)
// in basis-position space. work is an m-length scratch slice owned by the
// caller — the factor itself is stateless so frozen snapshots can serve
// many solvers at once. Structural zeros are skipped throughout.
//
//lint:hotpath one triangular solve per pivot per node; pinned to zero allocations
func (f *luFactor) ftran(rhs, out, work []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		work[k] = rhs[f.rowOf[k]]
	}
	// Forward solve L·z = P·rhs, scattering down column k.
	for k := 0; k < m; k++ {
		v := work[k]
		if v == 0 {
			continue
		}
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			work[f.lIdx[t]] -= f.lVal[t] * v
		}
	}
	// Backward solve U·x̃ = z, scattering up column k.
	for k := m - 1; k >= 0; k-- {
		v := work[k]
		if v == 0 {
			continue
		}
		v /= f.uDiag[k]
		work[k] = v
		for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
			work[f.uIdx[t]] -= f.uVal[t] * v
		}
	}
	for k := 0; k < m; k++ {
		out[f.colOf[k]] = work[k]
	}
	// Eta file, oldest first: B = B₀·E₁⋯E_e, so B⁻¹ applies E⁻¹ in
	// chronological order after the factor solve.
	for e := 0; e < len(f.etaPos); e++ {
		r := f.etaPos[e]
		pv := out[r]
		if pv == 0 {
			continue
		}
		pv /= f.etaDiag[e]
		for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
			out[f.etaIdx[t]] -= f.etaVal[t] * pv
		}
		out[r] = pv
	}
}

// btran solves yᵀ·B = cᵀ: c is in basis-position space, the result
// (written to out) in row space. work and cw are m-length scratch slices
// owned by the caller; c is not modified.
//
//lint:hotpath one transposed solve per pricing pass; pinned to zero allocations
func (f *luFactor) btran(c, out, work, cw []float64) {
	m := f.m
	copy(cw, c)
	// Eta transposes, newest first: cᵀ·E_e⁻¹ touches only position r.
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		r := f.etaPos[e]
		s := cw[r]
		for t := f.etaPtr[e]; t < f.etaPtr[e+1]; t++ {
			s -= cw[f.etaIdx[t]] * f.etaVal[t]
		}
		cw[r] = s / f.etaDiag[e]
	}
	for k := 0; k < m; k++ {
		work[k] = cw[f.colOf[k]]
	}
	// Forward solve Uᵀ·z = c̃, gathering up column k.
	for k := 0; k < m; k++ {
		s := work[k]
		for t := f.uPtr[k]; t < f.uPtr[k+1]; t++ {
			s -= f.uVal[t] * work[f.uIdx[t]]
		}
		work[k] = s / f.uDiag[k]
	}
	// Backward solve Lᵀ·ỹ = z, gathering down column k.
	for k := m - 1; k >= 0; k-- {
		s := work[k]
		for t := f.lPtr[k]; t < f.lPtr[k+1]; t++ {
			s -= f.lVal[t] * work[f.lIdx[t]]
		}
		work[k] = s
	}
	for k := 0; k < m; k++ {
		out[f.rowOf[k]] = work[k]
	}
}

// facEntry is one live nonzero of the active submatrix during elimination.
type facEntry struct {
	row int
	val float64
}

// facState is the right-looking elimination workspace of factorizeBasis.
// It is reusable: factorizeInto resets every slice in place, so a solver
// that owns a facState (a Workspace) refactorises without allocating once
// the buffers have grown to the largest basis seen.
type facState struct {
	m    int
	cols [][]facEntry // live nonzeros per basis-position column
	// rowCols[i] lists the columns that (at some point) held a nonzero in
	// row i; entries go stale when an update cancels the nonzero exactly
	// and are skipped lazily.
	rowCols [][]int
	rowCnt  []int // live nonzeros per row (Markowitz row counts)
	colCnt  []int // live nonzeros per column

	// Count buckets with lazy revalidation: a column is (re-)pushed
	// whenever its count changes; stale entries (count mismatch or already
	// pivoted) are discarded when popped. heads are persistent read
	// cursors — popped entries are either stale or re-pushed explicitly.
	buckets  [][]int
	heads    []int
	examined []int // columns popped but not pivoted this step; re-pushed

	// Multiplier scatter (generation-stamped dense scratch) for the rank-1
	// update of each column touched by the pivot row.
	mark []int
	mval []float64
	gen  int
	// Fill detection within one updated column.
	seen    []int
	seenGen int

	rowOf, posOfRow []int
	colOf, posOfCol []int

	lPtr []int
	lIdx []int // original row indices during elimination; remapped at the end
	lVal []float64
	// U collected row-wise during elimination (uRowIdx holds original
	// basis positions), transposed to column-wise at the end.
	uRowPtr []int
	uRowIdx []int
	uRowVal []float64
	uDiag   []float64

	counts []int // m+1 scratch for the final counting transpose of U
}

// reset prepares the workspace for an m×m elimination, reusing every
// backing array with sufficient capacity. Inner column/row lists keep
// their arenas: pivoted columns and rows are reslied to length zero
// during elimination instead of dropped, so repeat factorisations of
// same-shaped bases settle into zero allocations.
func (s *facState) reset(m int) {
	s.m = m
	if cap(s.cols) < m {
		s.cols = make([][]facEntry, m)
	} else {
		s.cols = s.cols[:m]
	}
	if cap(s.rowCols) < m {
		s.rowCols = make([][]int, m)
	} else {
		s.rowCols = s.rowCols[:m]
		for i := range s.rowCols {
			s.rowCols[i] = s.rowCols[i][:0]
		}
	}
	if cap(s.buckets) < m+1 {
		s.buckets = make([][]int, m+1)
	} else {
		s.buckets = s.buckets[:m+1]
		for c := range s.buckets {
			s.buckets[c] = s.buckets[c][:0]
		}
	}
	s.rowCnt = grown(s.rowCnt, m)
	s.colCnt = grown(s.colCnt, m)
	s.heads = grown(s.heads, m+1)
	s.examined = s.examined[:0]
	s.mark = grown(s.mark, m)
	s.mval = grown(s.mval, m)
	s.gen = 0
	s.seen = grown(s.seen, m)
	s.seenGen = 0
	s.rowOf = grown(s.rowOf, m)
	s.posOfRow = grown(s.posOfRow, m)
	s.colOf = grown(s.colOf, m)
	s.posOfCol = grown(s.posOfCol, m)
	s.lPtr = append(s.lPtr[:0], 0)
	s.lIdx = s.lIdx[:0]
	s.lVal = s.lVal[:0]
	s.uRowPtr = append(s.uRowPtr[:0], 0)
	s.uRowIdx = s.uRowIdx[:0]
	s.uRowVal = s.uRowVal[:0]
	s.uDiag = grown(s.uDiag, m)
	s.counts = grown(s.counts, m+1)
}

func (s *facState) pushCol(j int) {
	c := s.colCnt[j]
	s.buckets[c] = append(s.buckets[c], j)
}

// selectPivot scans the count buckets smallest-first for the candidate
// minimising the Markowitz cost (colCnt−1)·(rowCnt−1) subject to threshold
// pivoting, examining at most markowitzSearch columns once a candidate is
// in hand. Ties break toward the smaller column, then the smaller row, so
// the ordering — and with it the whole factorisation — is deterministic.
func (s *facState) selectPivot() (bp, bq int, bpv float64, ok bool) {
	s.examined = s.examined[:0]
	bestScore := int64(-1)
	examinedCnt := 0
	for cnt := 1; cnt <= s.m; cnt++ {
		for s.heads[cnt] < len(s.buckets[cnt]) {
			j := s.buckets[cnt][s.heads[cnt]]
			s.heads[cnt]++
			if s.posOfCol[j] >= 0 || s.colCnt[j] != cnt {
				continue // pivoted already, or a stale count entry
			}
			s.examined = append(s.examined, j)
			colmax := 0.0
			for _, e := range s.cols[j] {
				if a := math.Abs(e.val); a > colmax {
					colmax = a
				}
			}
			if colmax <= singularTol {
				continue // numerically empty for now; re-pushed after the pivot
			}
			thresh := markowitzTau * colmax
			for _, e := range s.cols[j] {
				a := math.Abs(e.val)
				if a < thresh || a <= singularTol {
					continue
				}
				score := int64(cnt-1) * int64(s.rowCnt[e.row]-1)
				if bestScore < 0 || score < bestScore ||
					(score == bestScore && (j < bq || (j == bq && e.row < bp))) {
					bestScore, bq, bp, bpv = score, j, e.row, e.val
				}
			}
			examinedCnt++
			if bestScore == 0 {
				return bp, bq, bpv, true // a perfect (fill-free) pivot
			}
			if bestScore >= 0 && examinedCnt >= markowitzSearch {
				return bp, bq, bpv, true
			}
		}
	}
	return bp, bq, bpv, bestScore >= 0
}

// factorizeBasis computes the sparse LU of an m×m basis matrix given
// column-wise (CSC-style: colPtr offsets basis positions into
// rowIdx/vals). It returns errSingular when no admissible pivot exists for
// some elimination step — a structurally or numerically singular basis.
//
//lint:freezer builds the factor's frozen arrays before publication
func factorizeBasis(m int, colPtr, rowIdx []int, vals []float64) (*luFactor, error) {
	var s facState
	f := &luFactor{}
	if err := s.factorizeInto(f, m, colPtr, rowIdx, vals); err != nil {
		return nil, err
	}
	return f, nil
}

// factorizeInto is factorizeBasis with explicit storage: the elimination
// runs entirely in s (reset in place), and the finished factor is written
// into f, reusing f's array capacity. f must not be aliased by any frozen
// snapshot (the Workspace's private factor store qualifies; a factor that
// has been through freeze does not). On error f is left untouched. The
// input CSC arrays are only read.
//
//lint:freezer builds the factor's arrays before publication; on reuse the caller owns f exclusively
func (s *facState) factorizeInto(f *luFactor, m int, colPtr, rowIdx []int, vals []float64) error {
	s.reset(m)
	if m == 0 {
		f.m = 0
		f.lPtr = append(f.lPtr[:0], 0)
		f.uPtr = grown(f.uPtr, 1)
		f.lIdx, f.lVal = f.lIdx[:0], f.lVal[:0]
		f.uIdx, f.uVal = f.uIdx[:0], f.uVal[:0]
		f.uDiag = f.uDiag[:0]
		f.rowOf, f.posOfRow = f.rowOf[:0], f.posOfRow[:0]
		f.colOf, f.posOfCol = f.colOf[:0], f.posOfCol[:0]
		f.nnzLU = 0
		f.resetEtas()
		return nil
	}
	for j := 0; j < m; j++ {
		s.posOfCol[j] = -1
		s.posOfRow[j] = -1
		lo, hi := colPtr[j], colPtr[j+1]
		col := s.cols[j][:0]
		for k := lo; k < hi; k++ {
			i, v := rowIdx[k], vals[k]
			if v == 0 {
				continue
			}
			col = append(col, facEntry{row: i, val: v})
			s.rowCols[i] = append(s.rowCols[i], j)
			s.rowCnt[i]++
		}
		s.cols[j] = col
		s.colCnt[j] = len(col)
		s.pushCol(j)
	}

	for k := 0; k < m; k++ {
		p, q, pv, ok := s.selectPivot()
		if !ok {
			return errSingular
		}
		s.rowOf[k], s.posOfRow[p] = p, k
		s.colOf[k], s.posOfCol[q] = q, k

		// L column k: the multipliers of the pivot column's other live
		// entries. Their (i, q) nonzeros leave the active matrix here.
		lstart := len(s.lIdx)
		for _, e := range s.cols[q] {
			if e.row == p {
				continue
			}
			s.lIdx = append(s.lIdx, e.row)
			s.lVal = append(s.lVal, e.val/pv)
			s.rowCnt[e.row]--
		}
		s.lPtr = append(s.lPtr, len(s.lIdx))
		s.uDiag[k] = pv
		s.cols[q] = s.cols[q][:0] // keep the arena for the next reset

		// Scatter the multipliers for the rank-1 update of every column
		// the pivot row touches.
		s.gen++
		for t := lstart; t < len(s.lIdx); t++ {
			s.mark[s.lIdx[t]] = s.gen
			s.mval[s.lIdx[t]] = s.lVal[t]
		}

		// U row k: walk the pivot row's columns, extract the pivot-row
		// entry (it becomes a U nonzero) and apply the update to the rest
		// of the column, dropping exact cancellations and adding fill.
		for _, j := range s.rowCols[p] {
			if s.posOfCol[j] >= 0 {
				continue // pivoted already (including q itself)
			}
			es := s.cols[j]
			u := 0.0
			found := false
			for idx, e := range es {
				if e.row == p {
					u = e.val
					es[idx] = es[len(es)-1]
					es = es[:len(es)-1]
					found = true
					break
				}
			}
			if !found {
				continue // stale rowCols entry: cancelled to exact zero earlier
			}
			s.uRowIdx = append(s.uRowIdx, j)
			s.uRowVal = append(s.uRowVal, u)
			if lstart == len(s.lIdx) {
				// No multipliers: removal of the pivot-row entry is the
				// whole update.
				s.cols[j] = es
				s.colCnt[j] = len(es)
				s.pushCol(j)
				continue
			}
			out := es[:0]
			s.seenGen++
			for _, e := range es {
				if s.mark[e.row] == s.gen {
					e.val -= s.mval[e.row] * u
					s.seen[e.row] = s.seenGen
					if e.val == 0 {
						s.rowCnt[e.row]--
						continue
					}
				}
				out = append(out, e)
			}
			for t := lstart; t < len(s.lIdx); t++ {
				i := s.lIdx[t]
				if s.seen[i] != s.seenGen {
					out = append(out, facEntry{row: i, val: -s.lVal[t] * u})
					s.rowCnt[i]++
					s.rowCols[i] = append(s.rowCols[i], j)
				}
			}
			s.cols[j] = out
			s.colCnt[j] = len(out)
			s.pushCol(j)
		}
		s.uRowPtr = append(s.uRowPtr, len(s.uRowIdx))
		s.rowCols[p] = s.rowCols[p][:0] // keep the arena for the next reset

		// Columns examined but not chosen stay live; requeue them.
		for _, j := range s.examined {
			if s.posOfCol[j] < 0 {
				s.pushCol(j)
			}
		}
	}

	// Remap L's row indices into elimination coordinates (every multiplier
	// row pivots at a later step, so posOfRow is final by now).
	for t := range s.lIdx {
		s.lIdx[t] = s.posOfRow[s.lIdx[t]]
	}
	f.m = m
	f.lPtr = taken(f.lPtr, s.lPtr)
	f.lIdx = taken(f.lIdx, s.lIdx)
	f.lVal = taken(f.lVal, s.lVal)
	f.uDiag = taken(f.uDiag, s.uDiag)
	f.rowOf = taken(f.rowOf, s.rowOf)
	f.posOfRow = taken(f.posOfRow, s.posOfRow)
	f.colOf = taken(f.colOf, s.colOf)
	f.posOfCol = taken(f.posOfCol, s.posOfCol)

	// Counting transpose of U from rows to columns, remapping column
	// indices into elimination coordinates; scattering in step order keeps
	// each column's row indices ascending.
	counts := s.counts
	for _, j := range s.uRowIdx {
		counts[s.posOfCol[j]+1]++
	}
	for k := 0; k < m; k++ {
		counts[k+1] += counts[k]
	}
	f.uPtr = taken(f.uPtr, counts)
	f.uIdx = grown(f.uIdx, len(s.uRowIdx))
	f.uVal = grown(f.uVal, len(s.uRowIdx))
	next := counts
	for k := 0; k < m; k++ {
		for t := s.uRowPtr[k]; t < s.uRowPtr[k+1]; t++ {
			c := s.posOfCol[s.uRowIdx[t]]
			f.uIdx[next[c]] = k
			f.uVal[next[c]] = s.uRowVal[t]
			next[c]++
		}
	}
	f.nnzLU = len(f.lIdx) + len(f.uIdx) + m
	f.resetEtas()
	return nil
}

// resetEtas empties f's eta file in place, keeping the arenas. The caller
// must own f exclusively (never call this on a frozen snapshot).
//
//lint:freezer reslices an unpublished factor's own eta arenas
func (f *luFactor) resetEtas() {
	f.etaPos = f.etaPos[:0]
	f.etaDiag = f.etaDiag[:0]
	f.etaPtr = append(f.etaPtr[:0], 0)
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
}

// copyFrom deep-copies src into f, reusing f's array capacity, with the
// eta slices given append slack — the adopting solver appends
// copy-on-write-free because the arenas are its own. Used by the
// Workspace's no-escape warm start to adopt a parent's frozen factor
// without inheriting its shared (clipped) backing.
//
//lint:freezer deep-copies into an unpublished caller-owned factor; src is only read
func (f *luFactor) copyFrom(src *luFactor) {
	f.m = src.m
	f.lPtr = taken(f.lPtr, src.lPtr)
	f.lIdx = taken(f.lIdx, src.lIdx)
	f.lVal = taken(f.lVal, src.lVal)
	f.uPtr = taken(f.uPtr, src.uPtr)
	f.uIdx = taken(f.uIdx, src.uIdx)
	f.uVal = taken(f.uVal, src.uVal)
	f.uDiag = taken(f.uDiag, src.uDiag)
	f.rowOf = taken(f.rowOf, src.rowOf)
	f.posOfRow = taken(f.posOfRow, src.posOfRow)
	f.colOf = taken(f.colOf, src.colOf)
	f.posOfCol = taken(f.posOfCol, src.posOfCol)
	f.nnzLU = src.nnzLU
	f.etaPos = taken(f.etaPos, src.etaPos)
	f.etaDiag = taken(f.etaDiag, src.etaDiag)
	f.etaPtr = taken(f.etaPtr, src.etaPtr)
	f.etaIdx = taken(f.etaIdx, src.etaIdx)
	f.etaVal = taken(f.etaVal, src.etaVal)
}
