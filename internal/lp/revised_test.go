package lp

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func solveBasisOK(t *testing.T, p *Problem) (*Solution, *Basis) {
	t.Helper()
	sol, bs, err := SolveBasis(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if bs == nil {
		t.Fatal("optimal solve returned nil basis")
	}
	if bs.NumVars() != p.NumVars() || bs.NumRows() != p.NumConstraints() {
		t.Fatalf("basis shape %d/%d, want %d/%d", bs.NumVars(), bs.NumRows(), p.NumVars(), p.NumConstraints())
	}
	return sol, bs
}

func TestRevisedTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol, bs := solveBasisOK(t, p)
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
	if bs.String() == "" {
		t.Error("empty basis string")
	}
}

func TestRevisedEqualityAndGE(t *testing.T) {
	// max x + y s.t. x + y == 5, x >= 2, y <= 2 -> obj 5.
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	p.AddConstraint([]Term{{1, 1}}, LE, 2)
	sol, _ := solveBasisOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-7 {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
	if sol.X[0] < 2-1e-7 {
		t.Errorf("x = %v violates x >= 2", sol.X)
	}
}

func TestRevisedNegativeRHS(t *testing.T) {
	// max x s.t. -x <= -3 (x >= 3), x <= 7 -> 7.
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	p.AddConstraint([]Term{{0, 1}}, LE, 7)
	sol, _ := solveBasisOK(t, p)
	if math.Abs(sol.Objective-7) > 1e-7 {
		t.Errorf("objective = %g, want 7", sol.Objective)
	}
}

func TestRevisedInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	sol, bs, err := SolveBasis(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
	if bs != nil {
		t.Error("infeasible solve returned a basis")
	}
}

func TestRevisedUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{1, 1}}, LE, 3)
	sol, _, err := SolveBasis(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestRevisedMatchesTableau(t *testing.T) {
	// The two cores must agree on a problem exercising all three senses.
	p := NewProblem(3)
	p.SetObjCoef(0, 2)
	p.SetObjCoef(1, -1)
	p.SetObjCoef(2, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	p.AddConstraint([]Term{{0, 1}, {2, -1}}, GE, 1)
	p.AddConstraint([]Term{{1, 1}, {2, 2}}, EQ, 4)
	cold, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rev, _ := solveBasisOK(t, p)
	if cold.Status != Optimal {
		t.Fatalf("tableau status %v", cold.Status)
	}
	if !numeric.AlmostEqual(cold.Objective, rev.Objective) {
		t.Errorf("tableau %.15g != revised %.15g", cold.Objective, rev.Objective)
	}
}

// TestWarmStartAfterBoundRow is the core branch-and-bound use case: solve,
// append a tightening bound row, warm start from the parent basis.
func TestWarmStartAfterBoundRow(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	parent, bs := solveBasisOK(t, p)
	if parent.X[1] < 5.9 {
		t.Fatalf("unexpected parent solution %v", parent.X)
	}

	// Down-branch y <= 5: optimum moves to x = 8/3, obj = 33.
	down := p.Clone()
	down.AddConstraint([]Term{{1, 1}}, LE, 5)
	warm, wbs, err := SolveFrom(down, bs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("warm status = %v", warm.Status)
	}
	if math.Abs(warm.Objective-33) > 1e-7 {
		t.Errorf("warm objective = %g, want 33", warm.Objective)
	}
	cold, err := Solve(down, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Close(cold.Objective, warm.Objective, 1e-9) {
		t.Errorf("cold %.15g != warm %.15g", cold.Objective, warm.Objective)
	}
	if wbs == nil || wbs.NumRows() != 4 {
		t.Fatalf("warm basis %v", wbs)
	}

	// Chain a second tightening from the warm basis.
	deeper := down.Clone()
	deeper.AddConstraint([]Term{{0, 1}}, GE, 3)
	warm2, _, err := SolveFrom(deeper, wbs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := Solve(deeper, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm2.Status != cold2.Status {
		t.Fatalf("status warm %v != cold %v", warm2.Status, cold2.Status)
	}
	if warm2.Status == Optimal && !numeric.Close(cold2.Objective, warm2.Objective, 1e-9) {
		t.Errorf("cold %.15g != warm %.15g", cold2.Objective, warm2.Objective)
	}
}

// TestWarmStartDetectsInfeasible: a bound row that empties the feasible
// region must be reported Infeasible by the dual phase.
func TestWarmStartDetectsInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	_, bs := solveBasisOK(t, p)

	child := p.Clone()
	child.AddConstraint([]Term{{0, 1}}, GE, 5)
	warm, _, err := SolveFrom(child, bs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", warm.Status)
	}
}

func TestSolveFromRejectsMismatchedBasis(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 3)
	_, bs := solveBasisOK(t, p)

	if _, _, err := SolveFrom(p, nil, Options{}); err == nil {
		t.Error("nil basis accepted")
	}
	q := NewProblem(1) // fewer variables than the basis snapshot
	q.SetObjCoef(0, 1)
	q.AddConstraint([]Term{{0, 1}}, LE, 1)
	if _, _, err := SolveFrom(q, bs, Options{}); err == nil {
		t.Error("basis with more variables than problem accepted")
	}
	r := NewProblem(2) // fewer rows than the basis
	r.SetObjCoef(0, 1)
	if _, _, err := SolveFrom(r, bs, Options{}); err == nil {
		t.Error("basis with more rows than problem accepted")
	}
}

// TestWarmStartEqualityAppended: SolveFrom also supports appended EQ rows
// (their fixed-at-zero logical starts basic and is driven out by the
// mirrored dual ratio test).
func TestWarmStartEqualityAppended(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	_, bs := solveBasisOK(t, p)

	child := p.Clone()
	child.AddConstraint([]Term{{0, 1}}, EQ, 1)
	warm, _, err := SolveFrom(child, bs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(child, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("status warm %v != cold %v", warm.Status, cold.Status)
	}
	if !numeric.Close(warm.Objective, cold.Objective, 1e-9) {
		t.Errorf("warm %.15g != cold %.15g", warm.Objective, cold.Objective)
	}
}
