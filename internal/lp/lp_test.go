package lp

import (
	"math"
	"testing"
	"time"

	"repro/internal/numeric"
	"repro/internal/rng"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

// Classic 2-var LP: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
// Optimum 36 at (2, 6).
func TestTextbookLP(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-7 || math.Abs(sol.X[1]-6) > 1e-7 {
		t.Errorf("x = %v, want [2 6]", sol.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// max x + y s.t. x + y == 5, x >= 2, y <= 2 -> x=3, y=2, obj=5.
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	p.AddConstraint([]Term{{1, 1}}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-7 {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
	if sol.X[0] < 2-1e-7 {
		t.Errorf("x = %v violates x >= 2", sol.X)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// max x s.t. -x <= -3 (i.e. x >= 3), x <= 7 -> 7.
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	p.AddConstraint([]Term{{0, 1}}, LE, 7)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-7) > 1e-7 {
		t.Errorf("objective = %g, want 7", sol.Objective)
	}
	// And minimization-style: max -x s.t. x >= 3 -> -3.
	q := NewProblem(1)
	q.SetObjCoef(0, -1)
	q.AddConstraint([]Term{{0, 1}}, GE, 3)
	sol = solveOK(t, q)
	if math.Abs(sol.Objective-(-3)) > 1e-7 {
		t.Errorf("objective = %g, want -3", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{1, 1}}, LE, 5) // x0 unconstrained above
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem with equalities.
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-3) > 1e-7 || math.Abs(sol.X[1]-1) > 1e-7 {
		t.Errorf("x = %v, want [3 1]", sol.X)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave a redundant artificial basic at zero.
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 3)
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 6)
	p.AddConstraint([]Term{{0, 1}}, LE, 2)
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate problem (multiple constraints active at the
	// origin-adjacent vertex); must terminate and find the optimum 1 at x=(1,0,...).
	p := NewProblem(3)
	p.SetObjCoef(0, 0.75)
	p.SetObjCoef(1, -150)
	p.SetObjCoef(2, 0.02)
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -0.04}}, LE, 0)
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -0.02}}, LE, 0)
	p.AddConstraint([]Term{{2, 1}}, LE, 1)
	sol := solveOK(t, p)
	// Beale's cycling example (without anti-cycling it loops forever).
	if sol.Objective < 0.05-1e-7 {
		t.Errorf("objective = %g, want 1/20", sol.Objective)
	}
}

func TestIterationLimit(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10)
	sol, err := Solve(p, Options{MaxIters: 0}) // default generous limit
	if err != nil || sol.Status != Optimal {
		t.Fatalf("default limit should solve: %v %v", sol.Status, err)
	}
}

func TestDeadline(t *testing.T) {
	src := rng.New(1, "deadline")
	p := randomLP(src, 60, 80)
	sol, err := Solve(p, Options{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != TimeLimit && sol.Status != Optimal {
		t.Errorf("status = %v, want time-limit (or instantly optimal)", sol.Status)
	}
}

func TestProblemAPI(t *testing.T) {
	p := NewProblem(3)
	if p.NumVars() != 3 || p.NumConstraints() != 0 {
		t.Error("fresh problem dimensions wrong")
	}
	p.SetObjCoef(1, 2.5)
	if !numeric.AlmostEqual(p.ObjCoef(1), 2.5) {
		t.Error("ObjCoef roundtrip failed")
	}
	idx := p.AddConstraint([]Term{{0, 1}, {0, 1}}, LE, 2) // accumulating terms
	if idx != 0 || p.NumConstraints() != 1 {
		t.Error("AddConstraint index/count wrong")
	}
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 0) // leave x1, x2 out of the objective so the LP is bounded
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-1) > 1e-7 { // 2x <= 2
		t.Errorf("duplicate terms should accumulate: x = %v", sol.X)
	}
	c := p.Clone()
	c.SetObjCoef(0, 99)
	if numeric.AlmostEqual(p.ObjCoef(0), 99) {
		t.Error("Clone shares objective")
	}

	defer func() {
		if recover() == nil {
			t.Error("out-of-range variable should panic")
		}
	}()
	p.AddConstraint([]Term{{7, 1}}, LE, 1)
}

func TestNewProblemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewProblem(0) should panic")
		}
	}()
	NewProblem(0)
}

func TestStatusAndSenseStrings(t *testing.T) {
	for _, s := range []Status{Optimal, Infeasible, Unbounded, IterLimit, TimeLimit, Status(99)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
	for _, s := range []Sense{LE, GE, EQ, Sense(99)} {
		if s.String() == "" {
			t.Error("empty sense string")
		}
	}
}

// randomLP builds a bounded, feasible LP: nonnegative constraint matrix,
// positive rhs (x = 0 feasible), box rows keeping it bounded.
func randomLP(src *rng.Source, nVars, nRows int) *Problem {
	p := NewProblem(nVars)
	for v := 0; v < nVars; v++ {
		p.SetObjCoef(v, src.Uniform(-1, 2))
		p.AddConstraint([]Term{{v, 1}}, LE, src.Uniform(1, 10))
	}
	for i := 0; i < nRows; i++ {
		var terms []Term
		for v := 0; v < nVars; v++ {
			if src.Float64() < 0.3 {
				terms = append(terms, Term{v, src.Uniform(0, 5)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddConstraint(terms, LE, src.Uniform(1, 20))
	}
	return p
}

// dualOf builds the dual of an all-LE primal: min b·y s.t. Aᵀy >= c, y >= 0,
// expressed as max −b·y.
func dualOf(p *Problem) *Problem {
	d := NewProblem(p.NumConstraints())
	for i, r := range p.rows {
		d.SetObjCoef(i, -r.rhs)
	}
	colTerms := make([][]Term, p.nVars)
	for i, r := range p.rows {
		for _, tm := range r.terms {
			colTerms[tm.Var] = append(colTerms[tm.Var], Term{i, tm.Coef})
		}
	}
	for v := 0; v < p.nVars; v++ {
		d.AddConstraint(colTerms[v], GE, p.obj[v])
	}
	return d
}

// TestStrongDualityOnRandomLPs is the solver's main correctness oracle:
// for random bounded feasible LPs, the primal optimum must equal the dual
// optimum (with sign flipped by the max/min conversion).
func TestStrongDualityOnRandomLPs(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		src := rng.NewReplicate(99, "duality", trial)
		nVars := 2 + src.Intn(10)
		nRows := 2 + src.Intn(15)
		p := randomLP(src, nVars, nRows)
		primal, err := Solve(p, Options{})
		if err != nil || primal.Status != Optimal {
			t.Fatalf("trial %d: primal %v %v", trial, primal.Status, err)
		}
		dual, err := Solve(dualOf(p), Options{})
		if err != nil || dual.Status != Optimal {
			t.Fatalf("trial %d: dual %v %v", trial, dual.Status, err)
		}
		// primal max = dual min = -(dual max of -b·y)
		if math.Abs(primal.Objective-(-dual.Objective)) > 1e-6*math.Max(1, math.Abs(primal.Objective)) {
			t.Errorf("trial %d: duality gap: primal %g, dual %g", trial, primal.Objective, -dual.Objective)
		}
		// Primal solution must satisfy all constraints.
		for i, r := range p.rows {
			var lhs float64
			for _, tm := range r.terms {
				lhs += tm.Coef * primal.X[tm.Var]
			}
			if lhs > r.rhs+1e-6 {
				t.Errorf("trial %d: constraint %d violated: %g > %g", trial, i, lhs, r.rhs)
			}
		}
	}
}

func TestLargerSparseLP(t *testing.T) {
	// Moderately large LP solved and verified by duality.
	src := rng.New(7, "large")
	p := randomLP(src, 60, 120)
	primal := solveOK(t, p)
	dual := solveOK(t, dualOf(p))
	if math.Abs(primal.Objective-(-dual.Objective)) > 1e-5*math.Max(1, math.Abs(primal.Objective)) {
		t.Errorf("duality gap on large LP: %g vs %g", primal.Objective, -dual.Objective)
	}
}

func TestMixedScaleCoefficients(t *testing.T) {
	// Rows mixing 1e4-scale and 1e-3-scale coefficients (as in the DSCT-EA
	// models) must still solve accurately thanks to equilibration.
	p := NewProblem(2)
	p.SetObjCoef(0, 1e-3)
	p.SetObjCoef(1, 1e-3)
	p.AddConstraint([]Term{{0, 2e4}, {1, 1e4}}, LE, 3e4)
	p.AddConstraint([]Term{{0, 1}, {1, 3}}, LE, 4)
	sol := solveOK(t, p)
	// Optimum at intersection: 2e4 x + 1e4 y = 3e4, x + 3y = 4 -> x=1, y=1.
	if math.Abs(sol.X[0]-1) > 1e-6 || math.Abs(sol.X[1]-1) > 1e-6 {
		t.Errorf("x = %v, want [1 1]", sol.X)
	}
}

func TestIterLimitReturnsBestEffort(t *testing.T) {
	src := rng.New(5, "iterlimit")
	p := randomLP(src, 40, 60)
	sol, err := Solve(p, Options{MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Skipf("solved within 3 pivots: %v", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("iteration-limited solve should return the current basis")
	}
	// The partial solution is primal feasible for an all-LE problem
	// (phase 2 preserves feasibility pivot by pivot).
	for i, r := range p.rows {
		var lhs float64
		for _, tm := range r.terms {
			lhs += tm.Coef * sol.X[tm.Var]
		}
		if lhs > r.rhs+1e-6 {
			t.Errorf("row %d violated in partial solution: %g > %g", i, lhs, r.rhs)
		}
	}
	// And its objective is a valid lower bound on the optimum.
	full, err := Solve(p, Options{})
	if err != nil || full.Status != Optimal {
		t.Fatalf("%v %v", full.Status, err)
	}
	if sol.Objective > full.Objective+1e-6 {
		t.Errorf("partial objective %g exceeds optimum %g", sol.Objective, full.Objective)
	}
}
