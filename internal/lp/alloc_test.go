package lp

import (
	"testing"

	"repro/internal/rng"
)

// Allocation-regression pins on the solver's hot paths. The FTRAN/BTRAN
// triangular solves and the eta-file pivot update run once per simplex
// pivot per node across the whole branch-and-bound tree, so a stray
// allocation there multiplies into the millions; these tests pin them to
// zero steady-state allocations. The warm re-solve path (SolveFrom) cannot
// be allocation-free — it builds a fresh solver — but its per-call count is
// pinned under a generous ceiling so an accidental O(m²) copy (the exact
// regression the LU kernel removed) cannot creep back in unnoticed.

// raceEnabled reports whether the race detector is active in this build;
// race_on_test.go flips it under the race build tag.
var raceEnabled = false

// allocFactor builds a representative factor with a few etas absorbed,
// plus scratch slices, for the kernel allocation pins.
func allocFactor(t *testing.T) (f *luFactor, rhs, out, work, cw []float64) {
	t.Helper()
	s := rng.New(21, "lp-alloc")
	m := 40
	B := randomSparseBasis(s, m, 3*m)
	colPtr, rowIdx, vals := cscFromDense(B)
	f, err := factorizeBasis(m, colPtr, rowIdx, vals)
	if err != nil {
		t.Fatal(err)
	}
	rhs = make([]float64, m)
	out = make([]float64, m)
	work = make([]float64, m)
	cw = make([]float64, m)
	for i := range rhs {
		rhs[i] = s.Uniform(-2, 2)
	}
	// Absorb a few etas so the pins cover the eta-application loops too.
	w := make([]float64, m)
	for e := 0; e < 4; e++ {
		r := s.Intn(m)
		a := make([]float64, m)
		for i := range a {
			a[i] = 1.5 * B[i][r]
		}
		f.ftran(a, w, work)
		f.appendEta(r, w)
	}
	return f, rhs, out, work, cw
}

func TestAllocsFtranBtran(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	f, rhs, out, work, cw := allocFactor(t)
	if got := testing.AllocsPerRun(100, func() {
		f.ftran(rhs, out, work)
	}); got != 0 {
		t.Errorf("ftran allocates %.0f per run, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		f.btran(rhs, out, work, cw)
	}); got != 0 {
		t.Errorf("btran allocates %.0f per run, want 0", got)
	}
}

//lint:freezer rewinds the test-local factor's eta file between measured appends
func TestAllocsEtaAppend(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	f, rhs, out, work, _ := allocFactor(t)
	f.ftran(rhs, out, work)
	r := 7
	// Steady state: truncate the eta file back after each append so the
	// arena capacities grown by the warm-up call are reused. The pin is on
	// the append itself, not on slice growth.
	n0, i0 := len(f.etaPos), len(f.etaIdx)
	if got := testing.AllocsPerRun(100, func() {
		f.appendEta(r, out)
		f.etaPos = f.etaPos[:n0]
		f.etaDiag = f.etaDiag[:n0]
		f.etaPtr = f.etaPtr[:n0+1]
		f.etaIdx = f.etaIdx[:i0]
		f.etaVal = f.etaVal[:i0]
	}); got != 0 {
		t.Errorf("appendEta allocates %.0f per run at steady state, want 0", got)
	}
}

// TestAllocsWarmResolve pins the allocation count of a whole warm-started
// re-solve of a branch-and-bound-shaped child. The dominant costs are the
// solver workspace (O(m + n) slices) and the adopted factor; the ceiling
// is far below what an O(m²) dense-inverse copy would add (m² floats are
// ~100 allocations' worth of one 8KB block each at this size, but the real
// guard is the count staying flat when m grows — see the two sizes).
func TestAllocsWarmResolve(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	for _, sz := range [][2]int{{30, 3}, {60, 3}} {
		s := rng.NewReplicate(22, "lp-alloc-warm", sz[0])
		g := generateStaircaseLP(s, sz[0], sz[1])
		sol, bs, err := SolveBasis(g.p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("status %v", sol.Status)
		}
		v := s.Intn(g.p.NumVars())
		child := g.p.Overlay()
		child.SetBounds(v, 0, sol.X[v]/2)
		got := testing.AllocsPerRun(20, func() {
			if _, _, err := SolveFrom(child, bs, Options{}); err != nil {
				t.Fatal(err)
			}
		})
		// Workspace slices + CSC build + solution: ~55 today, flat in m. An
		// O(m) allocation pattern per pivot or an m² snapshot copy would
		// blow straight through the ceiling.
		const ceiling = 100
		if got > ceiling {
			t.Errorf("%dx%d: warm SolveFrom allocates %.0f per run, want <= %d",
				sz[0], sz[1], got, ceiling)
		}
	}
}
