package lp

// Unit tests for the variable-bounds API (SetBounds/Bounds, copy-on-write
// through Clone and Overlay, ExpandBounds) and a table-driven end-to-end
// suite for the bound-flip ratio test: each case is a tiny LP whose optimal
// trace forces a specific bounded-variable event — a pure bound flip, a
// flip followed by a pivot, an entry *from* the upper bound, a fixed
// (zero-width) box, a degenerate [0, 0] box, a negative lower bound — and
// all three solver cores must land on the same known optimum.

import (
	"math"
	"testing"
)

// wantBox asserts Bounds(v) returns exactly the given endpoints: SetBounds
// stores endpoints verbatim (no arithmetic), so the round trip is bit-exact
// and approximate comparison would only mask a copy-on-write bug.
func wantBox(t *testing.T, p *Problem, v int, lo, hi float64) {
	t.Helper()
	gotLo, gotHi := p.Bounds(v)
	//lint:ignore floatcmp SetBounds stores endpoints verbatim; the round trip is bit-exact
	if gotLo != lo || gotHi != hi {
		t.Fatalf("Bounds(%d) = [%g, %g], want [%g, %g]", v, gotLo, gotHi, lo, hi)
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", what)
		}
	}()
	f()
}

func TestSetBoundsValidation(t *testing.T) {
	p := NewProblem(2)
	mustPanic(t, "variable out of range", func() { p.SetBounds(2, 0, 1) })
	mustPanic(t, "NaN lower", func() { p.SetBounds(0, math.NaN(), 1) })
	mustPanic(t, "NaN upper", func() { p.SetBounds(0, 0, math.NaN()) })
	mustPanic(t, "infinite lower", func() { p.SetBounds(0, math.Inf(1), math.Inf(1)) })
	mustPanic(t, "hi < lo", func() { p.SetBounds(0, 2, 1) })
	mustPanic(t, "Bounds out of range", func() { p.Bounds(2) })
}

func TestBoundsDefaultsAndRoundTrip(t *testing.T) {
	p := NewProblem(2)
	wantBox(t, p, 1, 0, math.Inf(1))
	p.SetBounds(0, -1.5, 4)
	wantBox(t, p, 0, -1.5, 4)
	// Setting one variable must not disturb another's default.
	wantBox(t, p, 1, 0, math.Inf(1))
	// A zero-width box is legal (fixed variable).
	p.SetBounds(1, 2, 2)
	wantBox(t, p, 1, 2, 2)
}

func TestCloneCopiesBounds(t *testing.T) {
	p := NewProblem(1)
	p.SetBounds(0, 1, 3)
	c := p.Clone()
	c.SetBounds(0, 0, 7)
	wantBox(t, p, 0, 1, 3) // clone write must not leak into the original
	wantBox(t, c, 0, 0, 7)
}

func TestOverlayBoundsCopyOnWrite(t *testing.T) {
	p := NewProblem(2)
	p.SetBounds(0, 1, 3)
	o := p.Overlay()
	// The overlay sees the base's boxes without copying them...
	wantBox(t, o, 0, 1, 3)
	// ...and its first write copies, leaving the base untouched.
	o.SetBounds(0, 2, 2)
	wantBox(t, p, 0, 1, 3)
	wantBox(t, o, 0, 2, 2)
	// An overlay of a default-boxed base materialises its own slices.
	q := NewProblem(1)
	oq := q.Overlay()
	oq.SetBounds(0, 0, 5)
	wantBox(t, q, 0, 0, math.Inf(1))
}

func TestExpandBounds(t *testing.T) {
	p := NewProblem(4)
	p.SetBounds(0, 0, 5) // finite upper: one LE row
	p.SetBounds(1, 2, 7) // positive lower + finite upper: GE + LE rows
	p.SetBounds(2, 3, 3) // fixed: one EQ row
	_ = p                // variable 3 keeps the default box: no rows
	p.AddConstraint([]Term{{0, 1}, {3, 1}}, LE, 9)

	e := ExpandBounds(p)
	if got := e.NumConstraints(); got != 1+1+2+1 {
		t.Fatalf("expanded rows = %d, want 5", got)
	}
	// Every expanded box must be back at the default.
	for v := 0; v < 4; v++ {
		wantBox(t, e, v, 0, math.Inf(1))
	}
	// The original is untouched.
	wantBox(t, p, 1, 2, 7)
	// Negative lower bounds are inexpressible over x >= 0.
	q := NewProblem(1)
	q.SetBounds(0, -1, 1)
	mustPanic(t, "negative lower bound", func() { ExpandBounds(q) })
}

// boundsCase is one bound-flip ratio-test scenario with a known optimum.
type boundsCase struct {
	name  string
	build func() *Problem
	want  Status
	obj   float64
	x     []float64 // nil: don't pin the vertex
}

func boundsCases() []boundsCase {
	return []boundsCase{
		{
			// The entering variable's own span is the minimum ratio: x0
			// flips from lower to upper bound with no basis change.
			name: "pure-flip",
			build: func() *Problem {
				p := NewProblem(1)
				p.SetObjCoef(0, 1)
				p.SetBounds(0, 0, 5)
				p.AddConstraint([]Term{{0, 1}}, LE, 100) // loose
				return p
			},
			want: Optimal, obj: 5, x: []float64{5},
		},
		{
			// x0 flips to its upper bound 4, then x1 enters with a pivot
			// on the remaining row slack.
			name: "flip-then-pivot",
			build: func() *Problem {
				p := NewProblem(2)
				p.SetObjCoef(0, 3)
				p.SetObjCoef(1, 2)
				p.SetBounds(0, 0, 4)
				p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 5)
				return p
			},
			want: Optimal, obj: 14, x: []float64{4, 1},
		},
		{
			// Greedy pricing flips x0 up first (largest reduced cost),
			// but once x1 is priced in, x0's reduced cost turns negative
			// at the upper bound and it must re-enter *from* the upper
			// bound and travel back down — the sign-aware entry the
			// one-sided method never needed.
			name: "enter-from-upper",
			build: func() *Problem {
				p := NewProblem(2)
				p.SetObjCoef(0, 5)
				p.SetObjCoef(1, 4)
				p.SetBounds(0, 0, 1)
				p.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 3)
				return p
			},
			want: Optimal, obj: 12, x: []float64{0, 3},
		},
		{
			// A fixed (zero-width) box: x0 is never eligible to enter and
			// contributes as a constant.
			name: "fixed-var",
			build: func() *Problem {
				p := NewProblem(2)
				p.SetObjCoef(0, 1)
				p.SetObjCoef(1, 1)
				p.SetBounds(0, 2, 2)
				p.SetBounds(1, 0, 1)
				return p
			},
			want: Optimal, obj: 3, x: []float64{2, 1},
		},
		{
			// Degenerate [0, 0] box: the profitable column is pinned at
			// zero width and must be skipped even with reduced cost 5.
			name: "degenerate-zero-box",
			build: func() *Problem {
				p := NewProblem(2)
				p.SetObjCoef(0, 5)
				p.SetObjCoef(1, 1)
				p.SetBounds(0, 0, 0)
				p.SetBounds(1, 0, 2)
				return p
			},
			want: Optimal, obj: 2, x: []float64{0, 2},
		},
		{
			// Negative boxes: both variables live strictly below zero /
			// straddle zero, exercising nonzero-lower shifts everywhere.
			name: "negative-lower",
			build: func() *Problem {
				p := NewProblem(2)
				p.SetObjCoef(0, 1)
				p.SetObjCoef(1, -1)
				p.SetBounds(0, -3, -1)
				p.SetBounds(1, -2, 4)
				p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10) // loose
				return p
			},
			want: Optimal, obj: 1, x: []float64{-1, -2},
		},
		{
			// No finite upper bound and no binding row: unbounded above
			// even though the lower bound is positive.
			name: "unbounded-above",
			build: func() *Problem {
				p := NewProblem(2)
				p.SetObjCoef(0, 1)
				p.SetBounds(0, 1, math.Inf(1))
				p.AddConstraint([]Term{{1, 1}}, LE, 2)
				return p
			},
			want: Unbounded,
		},
		{
			// The box demands x0 >= 2 while a row caps it at 1: Phase 1
			// must prove the empty feasible region.
			name: "infeasible-box-vs-row",
			build: func() *Problem {
				p := NewProblem(1)
				p.SetObjCoef(0, 1)
				p.SetBounds(0, 2, 5)
				p.AddConstraint([]Term{{0, 1}}, LE, 1)
				return p
			},
			want: Infeasible,
		},
	}
}

func TestBoundFlipRatioTest(t *testing.T) {
	for _, tc := range boundsCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			check := func(core string, sol *Solution, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("%s: %v", core, err)
				}
				if sol.Status != tc.want {
					t.Fatalf("%s: status %v, want %v", core, sol.Status, tc.want)
				}
				if tc.want != Optimal {
					return
				}
				if math.Abs(sol.Objective-tc.obj) > 1e-7 {
					t.Errorf("%s: objective %g, want %g", core, sol.Objective, tc.obj)
				}
				for v, want := range tc.x {
					if math.Abs(sol.X[v]-want) > 1e-7 {
						t.Errorf("%s: x[%d] = %g, want %g", core, v, sol.X[v], want)
					}
				}
			}
			p := tc.build()
			sol, err := Solve(p, Options{})
			check("tableau", sol, err)
			dense, _, err := SolveBasis(p, Options{Sparse: SparseOff})
			check("dense revised", dense, err)
			sparse, _, err := SolveBasis(p, Options{Sparse: SparseOn})
			check("sparse revised", sparse, err)
		})
	}
}
