//go:build race

package lp

// Flip raceEnabled (declared in alloc_test.go) when the race detector is
// active, so the allocation-regression tests skip themselves: the detector
// instruments allocations and the pinned counts would not hold.
func init() { raceEnabled = true }
