package lp

// Revised simplex with an explicit basis inverse. Unlike the dense tableau
// in simplex.go — which rewrites the whole constraint matrix on every pivot
// and must re-solve from scratch for every problem — this core keeps the
// original matrix immutable and maintains B⁻¹ explicitly, refactorising it
// from scratch every refactorEvery pivots for numerical hygiene. That makes
// two things possible that the tableau cannot offer:
//
//   - an exportable Basis: the basic column set is plain data that survives
//     the solve and can seed another one;
//   - warm starts (SolveFrom): branch-and-bound children differ from their
//     parent only by appended bound rows, so the parent's optimal basis —
//     extended with the new rows' slacks — is dual feasible for the child,
//     and a short dual-simplex phase restores primal feasibility in a
//     handful of pivots instead of a full two-phase solve.
//
// Canonical column layout for a problem with n structural variables and m
// rows: columns [0, n) are structural, column n+i is the logical of row i
// (slack after orienting >= rows to <=; fixed at zero for == rows) and
// column n+m+i is the phase-1 artificial of row i. Rows are equilibrated
// (scaled by their largest structural coefficient) exactly like the
// tableau, so tolerances behave identically across the two cores.

import (
	"errors"
	"fmt"
	"math"
	"time"
)

const (
	// refactorEvery bounds the number of product-form updates applied to
	// B⁻¹ before it is recomputed from scratch; explicit-inverse updates
	// accumulate roundoff linearly, so a periodic rebuild keeps basic
	// values trustworthy over long pivot sequences.
	refactorEvery = 64
	// singularTol is the partial-pivoting threshold below which a basis
	// matrix is declared singular during refactorisation.
	singularTol = 1e-11
	// minPivot rejects pivot elements too small to divide by safely.
	minPivot = 1e-11
)

var (
	errSingular  = errors.New("lp: singular basis")
	errNumerical = errors.New("lp: numerical failure (pivot element vanished)")
)

// rev is the revised simplex working state.
type rev struct {
	m, n  int // rows, structural variables
	width int // n + 2m: structural + logical + artificial column index space
	rw    int // n + m: stored row width of a (artificials are implicit)

	// Exactly one of a and sp is set, per the resolved SparseMode. Both
	// store the structural and logical columns only; the artificial of
	// row i is ±e_i and is reconstructed on demand, halving the memory
	// the dense pricing and pivot-row passes must walk.
	a        []float64 // m*rw immutable constraint matrix, row-major (dense mode)
	sp       *csMatrix // CSR+CSC structural block (sparse mode; logicals implicit)
	artSign  []float64 // m; artificial column signs (±1)
	b        []float64 // m oriented+scaled right-hand sides
	canEnter []bool    // width; column may be chosen as entering
	mustZero []bool    // width; column value must remain zero (EQ logicals, phase-2 artificials)

	basis   []int  // basis[i] = column basic in row i
	inBasis []bool // width
	binv    []float64
	xb      []float64 // current basic values, binv·b

	tol           float64
	iters         int
	iterLimit     int
	deadline      time.Time
	blandMode     bool
	degenRun      int
	sinceRefactor int
	numRetries    int  // consecutive vanished-pivot rebuilds; bounded to stay terminating
	dFresh        bool // t.d currently holds valid reduced costs (dual incremental updates)

	// scratch buffers, allocated once
	y     []float64 // m dual prices of the working cost vector
	d     []float64 // width reduced costs
	alpha []float64 // width pivot-row coefficients (dual simplex)
	w     []float64 // m entering-column direction (ftran)
	colv  []float64 // m gathered matrix column
}

// newRev builds the canonical-form matrix for p: >= rows negated to <=,
// rows equilibrated, one logical and one artificial column per row. The
// rows are flattened once through the shared sparse builder (deduplicating
// repeated Terms) and stored densely or as a CSR+CSC pair per the resolved
// SparseMode; both representations hold identical values, so the two paths
// pivot identically.
func newRev(p *Problem, opts Options) *rev {
	m := p.NumConstraints()
	n := p.nVars
	width := n + 2*m
	t := &rev{
		m: m, n: n, width: width, rw: n + m,
		artSign:  make([]float64, m),
		b:        make([]float64, m),
		canEnter: make([]bool, width),
		mustZero: make([]bool, width),
		basis:    make([]int, m),
		inBasis:  make([]bool, width),
		binv:     make([]float64, m*m),
		xb:       make([]float64, m),
		tol:      opts.Tol,
		y:        make([]float64, m),
		d:        make([]float64, width),
		alpha:    make([]float64, width),
		w:        make([]float64, m),
		colv:     make([]float64, m),
	}
	if t.tol == 0 {
		t.tol = defaultTol
	}
	t.iterLimit = opts.MaxIters
	if t.iterLimit == 0 {
		t.iterLimit = 100*(m+n) + 1000
	}
	t.deadline = opts.Deadline

	for v := 0; v < n; v++ {
		t.canEnter[v] = true
	}

	sr := dedupRows(p)
	sparse := opts.Sparse == SparseOn ||
		(opts.Sparse == SparseAuto && autoSparse(m, n, sr.nnz()))
	if !sparse {
		t.a = make([]float64, m*t.rw)
	}
	// Orient and equilibrate each row in place over its nonzeros only,
	// then scatter into the selected representation.
	vals := append([]float64(nil), sr.val...)
	for i := 0; i < m; i++ {
		cols := sr.idx[sr.ptr[i]:sr.ptr[i+1]]
		seg := vals[sr.ptr[i]:sr.ptr[i+1]]
		rhs := sr.rhs[i]
		if sr.sense[i] == GE {
			for k := range seg {
				seg[k] = -seg[k]
			}
			rhs = -rhs
		}
		// Equilibrate against the largest structural coefficient, as in
		// newTableau, so the cores share one tolerance discipline.
		scale := 0.0
		for _, v := range seg {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale > 0 {
			inv := 1 / scale
			for k := range seg {
				seg[k] *= inv
			}
			rhs *= inv
		}
		t.b[i] = rhs

		if !sparse {
			row := t.a[i*t.rw : (i+1)*t.rw]
			for k, v := range cols {
				row[v] = seg[k]
			}
			row[n+i] = 1 // logical
		}
		if sr.sense[i] == EQ {
			t.mustZero[n+i] = true
		} else {
			t.canEnter[n+i] = true
		}
		// Artificial, signed so that when basic it starts at |rhs| >= 0.
		if rhs >= 0 {
			t.artSign[i] = 1
		} else {
			t.artSign[i] = -1
		}
		// Artificials start basic where needed and never (re-)enter.
	}
	if sparse {
		t.sp = newCSMatrix(m, n, sr.ptr, sr.idx, vals)
	}
	return t
}

// colAt returns the matrix entry of column col in row r, reconstructing
// implicit artificial columns (±e_i) — and, in sparse mode, implicit
// logical columns (e_i) — on demand. Cold-path accessor: the hot passes
// walk whole rows or columns of the selected representation instead.
func (t *rev) colAt(r, col int) float64 {
	if col >= t.rw {
		if col-t.rw == r {
			return t.artSign[r]
		}
		return 0
	}
	if t.sp == nil {
		return t.a[r*t.rw+col]
	}
	if col >= t.n {
		if col-t.n == r {
			return 1
		}
		return 0
	}
	return t.sp.at(r, col)
}

// refactorize recomputes B⁻¹ from the basis columns by Gauss–Jordan
// elimination with partial pivoting and refreshes xb = B⁻¹b.
func (t *rev) refactorize() error {
	m := t.m
	if m == 0 {
		t.sinceRefactor = 0
		return nil
	}
	// Augmented [B | I], row-major, width 2m. In sparse mode the basis
	// columns are scattered from the CSC index (O(nnz of the basis)
	// instead of m² element probes).
	aug := make([]float64, m*2*m)
	if t.sp != nil {
		for i := 0; i < m; i++ {
			col := t.basis[i]
			switch {
			case col >= t.rw:
				aug[(col-t.rw)*2*m+i] = t.artSign[col-t.rw]
			case col >= t.n:
				aug[(col-t.n)*2*m+i] = 1
			default:
				for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
					aug[t.sp.rowIdx[k]*2*m+i] = t.sp.colVal[k]
				}
			}
		}
		for r := 0; r < m; r++ {
			aug[r*2*m+m+r] = 1
		}
	} else {
		for r := 0; r < m; r++ {
			for i := 0; i < m; i++ {
				aug[r*2*m+i] = t.colAt(r, t.basis[i])
			}
			aug[r*2*m+m+r] = 1
		}
	}
	// Right-block support intervals: row r of the identity block starts
	// with its single nonzero at column r and only ever gains fill from
	// pivot rows it absorbs, so [lo[r], hi[r]] bounds its nonzeros.
	// Restricting the inner loops to that interval (and to left-block
	// columns >= k, which are the only ones not yet eliminated) skips
	// exact-zero products only — the surviving arithmetic is identical,
	// so dense and sparse modes still agree bit-for-bit — while cutting
	// the Gauss–Jordan constant by ~2x on slack-heavy bases.
	lo := make([]int, m)
	hi := make([]int, m)
	for r := range lo {
		lo[r], hi[r] = r, r
	}
	for k := 0; k < m; k++ {
		// Partial pivoting.
		pr, best := -1, singularTol
		for r := k; r < m; r++ {
			if a := math.Abs(aug[r*2*m+k]); a > best {
				best = a
				pr = r
			}
		}
		if pr == -1 {
			return errSingular
		}
		if pr != k {
			rk := aug[k*2*m : (k+1)*2*m]
			rp := aug[pr*2*m : (pr+1)*2*m]
			for j := k; j < m; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			for j := m + min(lo[k], lo[pr]); j <= m+max(hi[k], hi[pr]); j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			lo[k], lo[pr] = lo[pr], lo[k]
			hi[k], hi[pr] = hi[pr], hi[k]
		}
		piv := aug[k*2*m+k]
		inv := 1 / piv
		rowK := aug[k*2*m : (k+1)*2*m]
		for j := k + 1; j < m; j++ {
			rowK[j] *= inv
		}
		for j := m + lo[k]; j <= m+hi[k]; j++ {
			rowK[j] *= inv
		}
		rowK[k] = 1
		for r := 0; r < m; r++ {
			if r == k {
				continue
			}
			f := aug[r*2*m+k]
			if f == 0 {
				continue
			}
			row := aug[r*2*m : (r+1)*2*m]
			for j := k + 1; j < m; j++ {
				row[j] -= f * rowK[j]
			}
			for j := m + lo[k]; j <= m+hi[k]; j++ {
				row[j] -= f * rowK[j]
			}
			row[k] = 0
			if lo[k] < lo[r] {
				lo[r] = lo[k]
			}
			if hi[k] > hi[r] {
				hi[r] = hi[k]
			}
		}
	}
	// [B|I] has been reduced to [I|B⁻¹]; row swaps were applied to both
	// blocks, so the right block's rows are aligned to basis positions.
	for r := 0; r < m; r++ {
		copy(t.binv[r*m:(r+1)*m], aug[r*2*m+m:(r+1)*2*m])
	}
	t.computeXB()
	t.sinceRefactor = 0
	return nil
}

// inheritInverse builds B⁻¹ from a parent basis snapshot instead of
// refactorising: with the appended rows' logicals basic, the child basis
// matrix is block lower-triangular over the parent's,
//
//	B = | Bp 0 |        B⁻¹ = |     Bp⁻¹     0 |
//	    | C  I |               | −C·Bp⁻¹     I |
//
// so the child inverse costs O(m²) per appended row. It reports false —
// leaving the caller to refactorise — when the snapshot is missing, has
// absorbed too many product-form updates already, or fails the residual
// check B·xb ≈ b that guards against inherited drift.
func (t *rev) inheritInverse(from *Basis) bool {
	mp := len(from.entries)
	if from.binv == nil || len(from.binv) != mp*mp || from.age >= refactorEvery {
		return false
	}
	m := t.m
	for i := 0; i < mp; i++ {
		row := t.binv[i*m : (i+1)*m]
		copy(row[:mp], from.binv[i*mp:(i+1)*mp])
		for j := mp; j < m; j++ {
			row[j] = 0
		}
	}
	for r := mp; r < m; r++ {
		row := t.binv[r*m : (r+1)*m]
		for j := range row {
			row[j] = 0
		}
		for tp := 0; tp < mp; tp++ {
			c := t.colAt(r, t.basis[tp])
			if c == 0 {
				continue
			}
			prow := from.binv[tp*mp : (tp+1)*mp]
			for j := 0; j < mp; j++ {
				row[j] -= c * prow[j]
			}
		}
		row[r] = 1
	}
	t.computeXB()
	t.sinceRefactor = from.age + (m - mp)
	return t.inverseResidualOK()
}

// inverseResidualOK spot-checks the inherited inverse: the basic values it
// produces must satisfy B·xb = b to working accuracy. O(m²) dense — free
// relative to the O(m³) refactorisation it may save — and O(nnz of the
// basis) in sparse mode, accumulated column-by-column (same per-row
// contribution order as the dense pass, so the two modes agree).
func (t *rev) inverseResidualOK() bool {
	if t.sp != nil {
		sum := make([]float64, t.m)
		scale := make([]float64, t.m)
		for r := range scale {
			scale[r] = 1
		}
		add := func(r int, v float64) {
			sum[r] += v
			if a := math.Abs(v); a > scale[r] {
				scale[r] = a
			}
		}
		for i := 0; i < t.m; i++ {
			col := t.basis[i]
			switch {
			case col >= t.rw:
				add(col-t.rw, t.artSign[col-t.rw]*t.xb[i])
			case col >= t.n:
				add(col-t.n, t.xb[i])
			default:
				for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
					add(t.sp.rowIdx[k], t.sp.colVal[k]*t.xb[i])
				}
			}
		}
		for r := 0; r < t.m; r++ {
			if math.Abs(sum[r]-t.b[r]) > 1e-7*scale[r] {
				return false
			}
		}
		return true
	}
	for r := 0; r < t.m; r++ {
		var sum float64
		scale := 1.0
		for i := 0; i < t.m; i++ {
			v := t.colAt(r, t.basis[i]) * t.xb[i]
			sum += v
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if math.Abs(sum-t.b[r]) > 1e-7*scale {
			return false
		}
	}
	return true
}

// computeXB refreshes xb = B⁻¹ b.
func (t *rev) computeXB() {
	for i := 0; i < t.m; i++ {
		var s float64
		row := t.binv[i*t.m : (i+1)*t.m]
		for k, bk := range t.b {
			s += row[k] * bk
		}
		if s < 0 && s > -t.tol {
			s = 0
		}
		t.xb[i] = s
	}
}

// setBasis installs cols as the basis and rebuilds membership flags.
func (t *rev) setBasis(cols []int) {
	copy(t.basis, cols)
	for j := range t.inBasis {
		t.inBasis[j] = false
	}
	for _, c := range cols {
		t.inBasis[c] = true
	}
}

// prices computes the dual prices y = c_B B⁻¹ and reduced costs
// d = c − yᵀA for the working cost vector c.
func (t *rev) prices(c []float64) {
	m := t.m
	for k := range t.y {
		t.y[k] = 0
	}
	for i := 0; i < m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			t.y[k] += cb * row[k]
		}
	}
	// Artificial reduced costs (columns >= rw) are never read — artificials
	// cannot enter — so only the structural+logical block is priced. The
	// sparse pass subtracts y_i over row i's nonzeros plus the implicit
	// logical (coefficient 1 in row i): O(nnz + m) against the dense
	// O(m·(n+m)), with identical per-column accumulation order.
	copy(t.d[:t.rw], c[:t.rw])
	if t.sp != nil {
		for i := 0; i < m; i++ {
			yi := t.y[i]
			if yi == 0 {
				continue
			}
			for k := t.sp.rowPtr[i]; k < t.sp.rowPtr[i+1]; k++ {
				t.d[t.sp.colIdx[k]] -= yi * t.sp.rowVal[k]
			}
			t.d[t.n+i] -= yi
		}
	} else {
		for i := 0; i < m; i++ {
			yi := t.y[i]
			if yi == 0 {
				continue
			}
			row := t.a[i*t.rw : (i+1)*t.rw]
			for j := 0; j < t.rw; j++ {
				t.d[j] -= yi * row[j]
			}
		}
	}
	for i := 0; i < m; i++ {
		t.d[t.basis[i]] = 0 // exact by definition; zap rounding residue
	}
}

// ftran computes w = B⁻¹ A_col into t.w. The sparse pass dots each B⁻¹
// row against only the column's nonzeros — O(nnz_col·m) instead of O(m²)
// — and implicit logical/artificial columns (±e_k) reduce to copying the
// k-th column of B⁻¹.
func (t *rev) ftran(col int) {
	m := t.m
	if t.sp != nil {
		if col >= t.n { // logical e_k or artificial ±e_k: w = ±B⁻¹ e_k
			k := col - t.n
			sign := 1.0
			if col >= t.rw {
				k = col - t.rw
				sign = t.artSign[k]
			}
			for i := 0; i < m; i++ {
				t.w[i] = sign * t.binv[i*m+k]
			}
			return
		}
		lo, hi := t.sp.colPtr[col], t.sp.colPtr[col+1]
		rows := t.sp.rowIdx[lo:hi]
		vals := t.sp.colVal[lo:hi]
		for i := 0; i < m; i++ {
			var s float64
			row := t.binv[i*m : (i+1)*m]
			for z, k := range rows {
				s += row[k] * vals[z]
			}
			t.w[i] = s
		}
		return
	}
	for i := 0; i < m; i++ {
		t.colv[i] = t.colAt(i, col)
	}
	for i := 0; i < m; i++ {
		var s float64
		row := t.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			s += row[k] * t.colv[k]
		}
		t.w[i] = s
	}
}

// pivotRow computes alpha = (row pr of B⁻¹)·A into t.alpha. Artificial
// entries (columns >= rw) are never read by the callers and stay zero.
// The sparse pass accumulates each contributing constraint row over its
// nonzeros plus its implicit logical column — O(Σ nnz of contributing
// rows) against the dense O(m·(n+m)) — in the same k order as the dense
// pass, so the two modes price identically.
func (t *rev) pivotRow(pr int) {
	for j := 0; j < t.rw; j++ {
		t.alpha[j] = 0
	}
	row := t.binv[pr*t.m : (pr+1)*t.m]
	if t.sp != nil {
		for k := 0; k < t.m; k++ {
			bk := row[k]
			if bk == 0 {
				continue
			}
			for z := t.sp.rowPtr[k]; z < t.sp.rowPtr[k+1]; z++ {
				t.alpha[t.sp.colIdx[z]] += bk * t.sp.rowVal[z]
			}
			t.alpha[t.n+k] += bk
		}
		return
	}
	for k := 0; k < t.m; k++ {
		bk := row[k]
		if bk == 0 {
			continue
		}
		arow := t.a[k*t.rw : (k+1)*t.rw]
		for j := 0; j < t.rw; j++ {
			t.alpha[j] += bk * arow[j]
		}
	}
}

// pivot brings column pc into the basis at row pr, updating B⁻¹ and xb via
// a product-form update on the precomputed direction w = B⁻¹A_pc. It
// refactorises periodically.
func (t *rev) pivot(pr, pc int) error {
	piv := t.w[pr]
	if math.Abs(piv) < minPivot {
		// The update direction disagrees with the selection (stale B⁻¹):
		// rebuild and report so the caller can re-price.
		if err := t.refactorize(); err != nil {
			return err
		}
		return errNumerical
	}
	m := t.m
	theta := t.xb[pr] / piv
	for i := 0; i < m; i++ {
		if i == pr {
			continue
		}
		if wi := t.w[i]; wi != 0 {
			t.xb[i] -= wi * theta
			if t.xb[i] < 0 && t.xb[i] > -t.tol {
				t.xb[i] = 0
			}
		}
	}
	t.xb[pr] = theta

	inv := 1 / piv
	prow := t.binv[pr*m : (pr+1)*m]
	for k := range prow {
		prow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == pr {
			continue
		}
		wi := t.w[i]
		if wi == 0 {
			continue
		}
		row := t.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			row[k] -= wi * prow[k]
		}
	}

	t.inBasis[t.basis[pr]] = false
	t.basis[pr] = pc
	t.inBasis[pc] = true

	t.sinceRefactor++
	if t.sinceRefactor >= refactorEvery {
		return t.refactorize()
	}
	return nil
}

// limits enforces the shared pivot budget and deadline; it returns a
// non-Optimal status when a limit is hit, Optimal otherwise.
func (t *rev) limits() Status {
	if t.iters >= t.iterLimit {
		return IterLimit
	}
	//lint:ignore wallclock sanctioned deadline probe, amortised to once per 128 pivots
	if t.iters%128 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
		return TimeLimit
	}
	return Optimal
}

// trackDegenerate switches to Bland's rule after a run of degenerate
// pivots, mirroring the tableau's anti-cycling policy.
func (t *rev) trackDegenerate(ratio float64) {
	if ratio <= t.tol {
		t.degenRun++
		if t.degenRun >= degenerateRunLimit {
			t.blandMode = true
		}
	} else {
		t.degenRun = 0
	}
}

// primal runs primal simplex pivots under cost vector c until optimality
// (no entering column) or a limit. The caller must ensure the current
// basis is primal feasible.
func (t *rev) primal(c []float64) (Status, error) {
	for {
		if st := t.limits(); st != Optimal {
			return st, nil
		}
		t.prices(c)

		pc := -1
		if t.blandMode {
			for j := 0; j < t.width; j++ {
				if t.canEnter[j] && !t.inBasis[j] && t.d[j] > t.tol {
					pc = j
					break
				}
			}
		} else {
			best := t.tol
			for j := 0; j < t.width; j++ {
				if t.canEnter[j] && !t.inBasis[j] && t.d[j] > best {
					best = t.d[j]
					pc = j
				}
			}
		}
		if pc == -1 {
			return Optimal, nil
		}

		t.ftran(pc)
		pr := -1
		minRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			wi := t.w[i]
			var ratio float64
			if t.mustZero[t.basis[i]] {
				// A basic fixed-at-zero column (EQ logical or phase-2
				// artificial in a redundant row) must not move off zero:
				// any significant direction component pivots it out now.
				if wi > t.tol || wi < -t.tol {
					ratio = 0
				} else {
					continue
				}
			} else {
				if wi <= t.tol {
					continue
				}
				ratio = t.xb[i] / wi
				if ratio < 0 {
					ratio = 0
				}
			}
			if ratio < minRatio-t.tol || (math.Abs(ratio-minRatio) <= t.tol && (pr == -1 || t.basis[i] < t.basis[pr])) {
				minRatio = ratio
				pr = i
			}
		}
		if pr == -1 {
			return Unbounded, nil
		}
		t.trackDegenerate(minRatio)

		if err := t.pivot(pr, pc); err != nil {
			if errors.Is(err, errNumerical) && t.numRetries < 3 {
				t.numRetries++
				continue // B⁻¹ was rebuilt; re-price and retry
			}
			return Optimal, err
		}
		t.numRetries = 0
		t.iters++
	}
}

// dual runs dual simplex pivots under cost vector c until the basis is
// primal feasible (returning Optimal, meaning "proceed to primal"), the
// problem is detected infeasible, or a limit is hit. It assumes the
// starting reduced costs are (near-)dual feasible — the warm-start
// invariant — and restores primal feasibility after appended rows have
// invalidated the parent solution.
//
// Reduced costs are maintained incrementally across pivots (the basis-
// change update d'_j = d_j − (d_pc/α_pc)·α_j reuses the pivot row already
// computed for the ratio test) rather than re-priced from scratch each
// iteration; t.dFresh records whether t.d is valid on exit, letting the
// caller skip the primal phase when the final basis is already dual
// feasible.
func (t *rev) dual(c []float64) (Status, error) {
	t.dFresh = false
	for {
		if st := t.limits(); st != Optimal {
			return st, nil
		}

		// Leaving row: the most primal-infeasible basic value. A basic
		// fixed-at-zero column sitting above zero is just as infeasible as
		// a negative basic; its row is handled by mirroring signs below.
		pr := -1
		mirror := false
		if t.blandMode {
			for i := 0; i < t.m; i++ {
				if t.xb[i] < -t.tol {
					pr, mirror = i, false
					break
				}
				if t.mustZero[t.basis[i]] && t.xb[i] > t.tol {
					pr, mirror = i, true
					break
				}
			}
		} else {
			worst := t.tol
			for i := 0; i < t.m; i++ {
				if v := -t.xb[i]; v > worst {
					worst = v
					pr, mirror = i, false
				}
				if t.mustZero[t.basis[i]] && t.xb[i] > worst {
					worst = t.xb[i]
					pr, mirror = i, true
				}
			}
		}
		if pr == -1 {
			return Optimal, nil // primal feasible: hand over to primal clean-up
		}

		if !t.dFresh {
			t.prices(c)
			t.dFresh = true
		}
		t.pivotRow(pr)

		// Entering column: the standard dual ratio test on the (possibly
		// mirrored) pivot row. Minimising d_j/alpha_j over alpha_j < 0
		// keeps the reduced costs dual feasible after the pivot.
		pc := -1
		bestRatio := math.Inf(1)
		for j := 0; j < t.width; j++ {
			if !t.canEnter[j] || t.inBasis[j] {
				continue
			}
			aj := t.alpha[j]
			if mirror {
				aj = -aj
			}
			if aj >= -t.tol {
				continue
			}
			ratio := t.d[j] / aj
			if ratio < bestRatio-t.tol || (math.Abs(ratio-bestRatio) <= t.tol && (pc == -1 || j < pc)) {
				bestRatio = ratio
				pc = j
			}
		}
		if pc == -1 {
			// Row pr certifies primal infeasibility: every eligible
			// column moves the violated basic value the wrong way.
			return Infeasible, nil
		}

		t.ftran(pc)
		t.trackDegenerate(math.Abs(t.xb[pr]))
		f := t.d[pc] / t.alpha[pc] // basis-change step for the d update below
		if err := t.pivot(pr, pc); err != nil {
			if errors.Is(err, errNumerical) && t.numRetries < 3 {
				t.numRetries++
				t.dFresh = false // B⁻¹ was rebuilt; re-price next round
				continue
			}
			return Optimal, err
		}
		if t.sinceRefactor == 0 {
			// pivot refactorised; incremental d would no longer match B⁻¹.
			t.dFresh = false
		} else {
			for j := 0; j < t.rw; j++ {
				t.d[j] -= f * t.alpha[j]
			}
			t.d[pc] = 0 // entering column: exactly zero by construction
		}
		t.numRetries = 0
		t.iters++
	}
}

// dualFeasible reports whether the current (fresh) reduced costs admit no
// entering column, i.e. the basis is already optimal for the caller.
func (t *rev) dualFeasible() bool {
	for j := 0; j < t.width; j++ {
		if t.canEnter[j] && !t.inBasis[j] && t.d[j] > t.tol {
			return false
		}
	}
	return true
}

// artificialValue sums |value| over basic artificial columns.
func (t *rev) artificialValue() float64 {
	var s float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.n+t.m {
			s += math.Abs(t.xb[i])
		}
	}
	return s
}

// driveOutArtificials pivots basic artificials (at value zero after a
// feasible phase 1) out of the basis wherever a usable pivot exists; rows
// with none are redundant and keep their artificial basic, protected at
// zero by mustZero from here on.
func (t *rev) driveOutArtificials() error {
	artBase := t.n + t.m
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artBase {
			continue
		}
		t.pivotRow(i)
		for j := 0; j < artBase; j++ {
			if t.inBasis[j] || t.mustZero[j] {
				continue
			}
			if math.Abs(t.alpha[j]) > t.tol*100 {
				t.ftran(j)
				if err := t.pivot(i, j); err != nil && !errors.Is(err, errNumerical) {
					return err
				}
				break
			}
		}
	}
	return nil
}

// finish assembles the public Solution (and, at optimality, the Basis
// snapshot) from the final state.
func (t *rev) finish(p *Problem, status Status) (*Solution, *Basis) {
	sol := &Solution{Status: status, Iterations: t.iters}
	if status != Optimal && status != IterLimit && status != TimeLimit {
		return sol, nil
	}
	x := make([]float64, p.nVars)
	for i := 0; i < t.m; i++ {
		if v := t.basis[i]; v < p.nVars {
			val := t.xb[i]
			// Snap roundoff residue to an exact zero, both the slightly
			// infeasible negatives and the tiny positives a warm-started
			// B⁻¹ leaves behind where a from-scratch solve lands on 0:
			// downstream integrality checks treat any nonzero as "used".
			if math.Abs(val) < t.tol*100 {
				val = 0
			}
			x[v] = val
		}
	}
	sol.X = x
	for v, c := range p.obj {
		sol.Objective += c * x[v]
	}
	if status != Optimal {
		return sol, nil
	}
	// Hand the inverse over without copying: finish is terminal, the rev
	// and its buffers are dead after this call, and a Basis is immutable.
	bs := &Basis{
		nVars:   t.n,
		entries: make([]basisEntry, t.m),
		binv:    t.binv,
		age:     t.sinceRefactor,
	}
	t.binv = nil
	for i := 0; i < t.m; i++ {
		bs.entries[i] = entryForColumn(t.basis[i], t.n, t.m)
	}
	return sol, bs
}

// SolveBasis solves p from scratch with the revised simplex (two-phase,
// like Solve) and additionally returns the optimal basis for use as a
// warm start by SolveFrom. The Basis is nil unless the status is Optimal.
func SolveBasis(p *Problem, opts Options) (*Solution, *Basis, error) {
	t := newRev(p, opts)

	cols := make([]int, t.m)
	needPhase1 := false
	for i := range cols {
		if t.mustZero[t.n+i] || t.b[i] < 0 {
			cols[i] = t.n + t.m + i // EQ row, or slack would start negative
			needPhase1 = true
		} else {
			cols[i] = t.n + i
		}
	}
	t.setBasis(cols)
	if err := t.refactorize(); err != nil {
		return nil, nil, err
	}

	if needPhase1 {
		phase1 := make([]float64, t.width)
		for j := t.n + t.m; j < t.width; j++ {
			phase1[j] = -1
		}
		status, err := t.primal(phase1)
		if err != nil {
			return nil, nil, err
		}
		switch status {
		case IterLimit, TimeLimit:
			return &Solution{Status: status, Iterations: t.iters}, nil, nil
		case Unbounded:
			// Phase 1 is bounded by construction; treat as numerical failure.
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil, nil
		}
		if t.artificialValue() > feasTol {
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil, nil
		}
		if err := t.driveOutArtificials(); err != nil {
			return nil, nil, err
		}
	}
	for j := t.n + t.m; j < t.width; j++ {
		t.mustZero[j] = true // artificials must stay at zero in phase 2
	}

	phase2 := make([]float64, t.width)
	copy(phase2, p.obj)
	status, err := t.primal(phase2)
	if err != nil {
		return nil, nil, err
	}
	sol, bs := t.finish(p, status)
	return sol, bs, nil
}

// SolveFrom solves p warm-started from a basis produced by a previous
// SolveBasis/SolveFrom on a "prefix problem": p must have the same
// variables, its first from.NumRows() rows must be identical to the rows
// of the producing problem, and any further rows are treated as newly
// appended (their logical columns complete the starting basis). A dual
// simplex phase repairs the primal infeasibility the new rows introduce,
// then primal simplex finishes to optimality.
//
// It returns an error when the basis does not fit p or has become
// numerically singular; callers should fall back to a cold solve then.
func SolveFrom(p *Problem, from *Basis, opts Options) (*Solution, *Basis, error) {
	if from == nil {
		return nil, nil, errors.New("lp: SolveFrom with nil basis")
	}
	m := p.NumConstraints()
	if from.nVars != p.nVars {
		return nil, nil, fmt.Errorf("lp: basis is over %d variables, problem has %d", from.nVars, p.nVars)
	}
	if len(from.entries) > m {
		return nil, nil, fmt.Errorf("lp: basis has %d rows, problem only %d", len(from.entries), m)
	}

	t := newRev(p, opts)
	for j := t.n + t.m; j < t.width; j++ {
		t.mustZero[j] = true // artificials may persist basic at zero, never grow
	}

	cols := make([]int, m)
	seen := make(map[int]bool, m)
	for i, e := range from.entries {
		if e.idx < 0 || (e.kind == basisStructural && e.idx >= t.n) || (e.kind != basisStructural && e.idx >= m) {
			return nil, nil, fmt.Errorf("lp: basis entry %d out of range", i)
		}
		col := e.column(t.n, m)
		if seen[col] {
			return nil, nil, fmt.Errorf("lp: duplicate basic column %d", col)
		}
		seen[col] = true
		cols[i] = col
	}
	for i := len(from.entries); i < m; i++ {
		cols[i] = t.n + i // appended rows start with their logical basic
	}
	t.setBasis(cols)
	if !t.inheritInverse(from) {
		if err := t.refactorize(); err != nil {
			return nil, nil, err
		}
	}

	cost := make([]float64, t.width)
	copy(cost, p.obj)

	status, err := t.dual(cost)
	if err != nil {
		return nil, nil, err
	}
	// The dual phase preserves dual feasibility, so when it ends primal
	// feasible with up-to-date reduced costs the basis is already optimal
	// and the primal clean-up (one full pricing pass) can be skipped.
	if status == Optimal && !(t.dFresh && t.dualFeasible()) {
		status, err = t.primal(cost)
		if err != nil {
			return nil, nil, err
		}
	}
	sol, bs := t.finish(p, status)
	return sol, bs, nil
}
