package lp

// Revised simplex over an exchangeable basis kernel. Unlike the dense
// tableau in simplex.go — which rewrites the whole constraint matrix on
// every pivot and must re-solve from scratch for every problem — this core
// keeps the original matrix immutable and maintains a representation of
// B⁻¹ beside it: by default the sparse LU factorisation with eta-file
// updates in factor.go, or (Options.Factor = FactorBinv) the legacy
// explicit dense inverse, refactorised every refactorEvery pivots for
// numerical hygiene. That makes two things possible that the tableau
// cannot offer:
//
//   - an exportable Basis: the basic column set (plus the nonbasic-at-bound
//     markers) is plain data that survives the solve and can seed another;
//   - warm starts (SolveFrom): branch-and-bound children differ from their
//     parent only by tightened variable bounds (or, optionally, appended
//     rows), so the parent's optimal basis stays dual feasible for the
//     child and a short dual-simplex phase restores primal feasibility in
//     a handful of pivots instead of a full two-phase solve.
//
// All three cores implement the bounded-variable simplex method: every
// column j carries a box [lo_j, hi_j] and a nonbasic column rests at either
// bound (atUpper selects which). Basic values are xb = B⁻¹q where
// q = b − Σ_{nonbasic j} A_j·x_j folds the nonbasic bound values into the
// right-hand side; q is maintained incrementally as columns change bounds.
// Pricing is sign-aware (a column at its upper bound enters when its
// reduced cost is negative, moving down), the ratio test includes the
// bound-flip case (the entering column hits its opposite bound before any
// basic column hits one of its own — no pivot, just a q update), and
// fixed columns (lo == hi: equality logicals, frozen artificials, branch-
// fixed variables) are never eligible to enter.
//
// Canonical column layout for a problem with n structural variables and m
// rows: columns [0, n) are structural with the Problem's boxes, column n+i
// is the logical of row i ([0, +inf) slack after orienting >= rows to <=;
// fixed at [0, 0] for == rows) and column n+m+i is the phase-1 artificial
// of row i ([0, +inf) during phase 1, frozen to [0, 0] afterwards). Rows
// are equilibrated (scaled by their largest structural coefficient)
// exactly like the tableau, so tolerances behave identically across cores.

import (
	"errors"
	"fmt"
	"math"
	"time"
)

const (
	// refactorEvery is the default Options.RefactorEvery: it bounds the
	// number of product-form updates applied to the legacy explicit B⁻¹
	// before it is recomputed from scratch; explicit-inverse updates
	// accumulate roundoff linearly, so a periodic rebuild keeps basic
	// values trustworthy over long pivot sequences. The LU kernel ignores
	// it (see the adaptive trigger constants in factor.go).
	refactorEvery = 64
	// singularTol is the partial-pivoting threshold below which a basis
	// matrix is declared singular during refactorisation.
	singularTol = 1e-11
	// minPivot rejects pivot elements too small to divide by safely.
	minPivot = 1e-11
)

var (
	errSingular  = errors.New("lp: singular basis")
	errNumerical = errors.New("lp: numerical failure (pivot element vanished)")
)

// rev is the revised simplex working state.
type rev struct {
	m, n  int // rows, structural variables
	width int // n + 2m: structural + logical + artificial column index space
	rw    int // n + m: stored row width of a (artificials are implicit)

	// Exactly one of a and sp is set, per the resolved SparseMode. Both
	// store the structural and logical columns only; the artificial of
	// row i is ±e_i and is reconstructed on demand, halving the memory
	// the dense pricing and pivot-row passes must walk.
	a       []float64 // m*rw immutable constraint matrix, row-major (dense mode)
	sp      *csMatrix // CSR+CSC structural block (sparse mode; logicals implicit)
	artSign []float64 // m; artificial column signs (±1)
	b       []float64 // m oriented+scaled right-hand sides
	q       []float64 // m; b minus the nonbasic columns' bound contributions

	lo, hi  []float64 // width; column boxes (see package layout comment)
	atUpper []bool    // width; nonbasic column rests at hi instead of lo

	// rowScale and rowNeg record the equilibration scale and orientation
	// sign applied to each stored row, so duals priced in the stored frame
	// can be mapped back to the caller's rows (SolveBasisWithDuals).
	rowScale []float64 // m; largest structural coefficient (1 for all-zero rows)
	rowNeg   []float64 // m; −1 for >= rows negated to <=, else +1

	basis   []int  // basis[i] = column basic in row i
	inBasis []bool // width

	// Basis kernel: exactly one representation is maintained, per the
	// resolved Options.Factor. factorLU selects the sparse LU factors with
	// eta-file updates (lu); otherwise the legacy explicit dense inverse
	// (binv) is kept.
	factorLU bool
	lu       *luFactor
	binv     []float64
	xb       []float64 // current basic values, B⁻¹·q

	// pricing is the resolved entering rule (never PricingAuto); pp holds
	// its state: devex reference weights and, for partial pricing, the
	// candidate list with its rotating refill cursor.
	pricing PricingMode
	pp      pricer

	tol           float64
	iters         int
	iterLimit     int
	deadline      time.Time
	blandMode     bool
	degenRun      int
	sinceRefactor int
	refactorEvery int  // legacy rebuild cadence (resolved Options.RefactorEvery)
	numRetries    int  // consecutive vanished-pivot rebuilds; bounded to stay terminating
	dFresh        bool // t.d currently holds valid reduced costs (dual incremental updates)

	// scratch buffers, allocated once
	y     []float64 // m dual prices of the working cost vector
	d     []float64 // width reduced costs
	alpha []float64 // width pivot-row coefficients (dual simplex)
	w     []float64 // m entering-column direction (ftran)
	colv  []float64 // m gathered matrix column
	// LU-kernel scratch (nil in legacy mode)
	cb  []float64 // m btran input: basic costs, or a unit vector
	rho []float64 // m btran output: one row of B⁻¹ (row space)
	luW []float64 // m triangular-solve workspace
	luC []float64 // m btran eta-transform workspace

	// Reuse-mode flags. A Workspace-owned rev (owned) persists across
	// solves, so buffers that today's one-shot path may share into a
	// published Basis (binv, the factor) must be copied out instead.
	// noEscape additionally promises that the solve publishes no Basis at
	// all, unlocking factor-arena reuse and an output Solution that aliases
	// the solver. The zero value (package-level entry points) is a fresh
	// rev per solve with today's sharing semantics.
	owned    bool
	noEscape bool

	// Construction scratch, reused by init across solves.
	ds      dedupScratch
	srStore sparseRows
	valsBuf []float64 // oriented+equilibrated copy of srStore.val
	spStore csMatrix  // sparse-mode storage behind t.sp (nil in dense mode)
	csNext  []int     // csMatrix.build transpose cursor

	// Factor-path scratch.
	fColPtr []int // refactorizeLU CSC gather of the basis columns
	fRowIdx []int
	fVals   []float64
	fac     facState // right-looking elimination workspace
	luStore luFactor // owned factor arena (owned && noEscape)
	luHold  luFactor // persistent holder for adopted frozen snapshots

	// Legacy-kernel and residual-check scratch.
	augBuf       []float64 // refactorizeBinv augmented [B | I]
	supLo, supHi []int     // refactorizeBinv right-block support intervals
	resSum       []float64 // inverseResidualOK sparse accumulators
	resScale     []float64

	// Solve-driver scratch.
	colsBuf  []int     // starting-basis column list
	seenCols []bool    // solveFrom duplicate-column check
	costBuf  []float64 // phase-1/phase-2/warm cost vectors

	// noEscape output buffers: the returned Solution and its X alias these.
	xOut   []float64
	solOut *Solution
}

// newRev builds a fresh solver for one solve; see init for the body. The
// package-level entry points use it, so their allocation behaviour (and
// Basis sharing) is unchanged; a Workspace calls init on its persistent
// rev instead.
func newRev(p *Problem, opts Options) *rev {
	t := &rev{}
	t.init(p, opts)
	return t
}

// init (re)builds the canonical-form matrix for p: >= rows negated to <=,
// rows equilibrated, one logical and one artificial column per row. The
// rows are flattened once through the shared sparse builder (deduplicating
// repeated Terms) and stored densely or as a CSR+CSC pair per the resolved
// SparseMode; both representations hold identical values, so the two paths
// pivot identically. Column boxes come from the Problem's bounds; the
// initial nonbasic point is every structural column at its lower bound,
// which fixes q and the artificial signs.
//
// Every buffer is sized with grown/taken, so re-initialising a rev whose
// buffers have already grown to this shape allocates nothing; unused-mode
// storage (t.a in sparse mode, t.binv in LU mode) may stay allocated but
// is never read — every access is guarded by t.sp / t.factorLU, not by
// nil-ness. All per-solve state fields are reset here; owned/noEscape are
// the caller's and preserved.
//
//lint:hotpath=bounded rebuilding the canonical form allocates only on warm-up growth; the Workspace AllocsPerRun pins hold the steady state at zero
func (t *rev) init(p *Problem, opts Options) {
	m := p.NumConstraints()
	n := p.nVars
	t.m, t.n = m, n
	t.width = n + 2*m
	t.rw = n + m
	t.artSign = grown(t.artSign, m)
	t.b = grown(t.b, m)
	t.q = grown(t.q, m)
	t.rowScale = grown(t.rowScale, m)
	t.rowNeg = grown(t.rowNeg, m)
	t.lo = grown(t.lo, t.width)
	t.hi = grown(t.hi, t.width)
	t.atUpper = grown(t.atUpper, t.width)
	t.basis = grown(t.basis, m)
	t.inBasis = grown(t.inBasis, t.width)
	t.xb = grown(t.xb, m)
	t.y = grown(t.y, m)
	t.d = grown(t.d, t.width)
	t.alpha = grown(t.alpha, t.width)
	t.w = grown(t.w, m)
	t.colv = grown(t.colv, m)
	t.iters = 0
	t.blandMode = false
	t.degenRun = 0
	t.sinceRefactor = 0
	t.numRetries = 0
	t.dFresh = false
	t.lu = nil
	t.pricing = resolvePricing(opts.Pricing, t.rw)
	t.pp.init(t.pricing, t.rw)
	t.factorLU = opts.Factor != FactorBinv
	if t.factorLU {
		t.cb = grown(t.cb, m)
		t.rho = grown(t.rho, m)
		t.luW = grown(t.luW, m)
		t.luC = grown(t.luC, m)
	} else {
		t.binv = grown(t.binv, m*m)
	}
	t.tol = opts.Tol
	if t.tol == 0 {
		t.tol = defaultTol
	}
	t.iterLimit = opts.MaxIters
	if t.iterLimit == 0 {
		t.iterLimit = 100*(m+n) + 1000
	}
	t.refactorEvery = opts.RefactorEvery
	if t.refactorEvery <= 0 {
		t.refactorEvery = refactorEvery
	}
	t.deadline = opts.Deadline

	inf := math.Inf(1)
	for v := 0; v < n; v++ {
		t.lo[v], t.hi[v] = p.boundsAt(v)
	}
	for i := 0; i < m; i++ {
		t.hi[t.rw+i] = inf // artificials: [0, +inf) until frozen after phase 1
	}

	sr := t.ds.flatten(p, &t.srStore)
	sparse := opts.Sparse == SparseOn ||
		(opts.Sparse == SparseAuto && autoSparse(m, n, sr.nnz()))
	if !sparse {
		t.a = grown(t.a, m*t.rw)
	}
	// Orient and equilibrate each row in place over its nonzeros only,
	// then scatter into the selected representation.
	t.valsBuf = taken(t.valsBuf, sr.val)
	vals := t.valsBuf
	for i := 0; i < m; i++ {
		cols := sr.idx[sr.ptr[i]:sr.ptr[i+1]]
		seg := vals[sr.ptr[i]:sr.ptr[i+1]]
		rhs := sr.rhs[i]
		if sr.sense[i] == GE {
			for k := range seg {
				seg[k] = -seg[k]
			}
			rhs = -rhs
		}
		// Equilibrate against the largest structural coefficient, as in
		// newTableau, so the cores share one tolerance discipline.
		scale := 0.0
		for _, v := range seg {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale > 0 {
			inv := 1 / scale
			for k := range seg {
				seg[k] *= inv
			}
			rhs *= inv
			t.rowScale[i] = scale
		} else {
			t.rowScale[i] = 1
		}
		if sr.sense[i] == GE {
			t.rowNeg[i] = -1
		} else {
			t.rowNeg[i] = 1
		}
		t.b[i] = rhs

		if !sparse {
			row := t.a[i*t.rw : (i+1)*t.rw]
			for k, v := range cols {
				row[v] = seg[k]
			}
			row[n+i] = 1 // logical
		}
		if sr.sense[i] == EQ {
			// Equality logical: fixed at zero ([0, 0]); never enters.
			t.hi[n+i] = 0
		} else {
			t.hi[n+i] = inf
		}
	}
	if sparse {
		t.csNext = grown(t.csNext, n)
		t.spStore.build(m, n, sr.ptr, sr.idx, vals, t.csNext)
		t.sp = &t.spStore
	} else {
		t.sp = nil
	}
	// With every structural column nonbasic at its lower bound (the state
	// setBasis/SolveBasis start from), q = b − A·lo determines which rows
	// need a negatively-signed artificial to start basic at |q| >= 0.
	t.recomputeQ()
	for i := 0; i < m; i++ {
		if t.q[i] >= 0 {
			t.artSign[i] = 1
		} else {
			t.artSign[i] = -1
		}
	}
}

// nbVal returns the current value of nonbasic column j: the bound it
// rests at.
func (t *rev) nbVal(j int) float64 {
	if t.atUpper[j] {
		return t.hi[j]
	}
	return t.lo[j]
}

// eligible reports whether column j may be chosen as entering: structural
// or logical (artificials never re-enter), currently nonbasic, and not
// fixed (lo == hi columns — equality logicals, frozen artificials and
// branch-fixed variables — have no room to move).
func (t *rev) eligible(j int) bool {
	return !t.inBasis[j] && t.hi[j] > t.lo[j]
}

// recomputeQ rebuilds q = b − Σ_{nonbasic j} A_j·x_j from scratch. Only
// structural columns can contribute: logicals and artificials rest at zero
// whenever nonbasic (their lower bound, and their upper bound is either
// +inf — never selected — or also zero).
func (t *rev) recomputeQ() {
	copy(t.q, t.b)
	for v := 0; v < t.n; v++ {
		if t.inBasis[v] {
			continue
		}
		if val := t.nbVal(v); val != 0 {
			t.addColTimes(v, -val)
		}
	}
}

// addColTimes adds factor·A_col to q.
//
//lint:hotpath runs per bound flip and per pivot; pinned to zero allocations
func (t *rev) addColTimes(col int, factor float64) {
	if factor == 0 {
		return
	}
	if col >= t.rw {
		t.q[col-t.rw] += factor * t.artSign[col-t.rw]
		return
	}
	if t.sp != nil {
		if col >= t.n {
			t.q[col-t.n] += factor
			return
		}
		for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
			t.q[t.sp.rowIdx[k]] += factor * t.sp.colVal[k]
		}
		return
	}
	for i := 0; i < t.m; i++ {
		if v := t.a[i*t.rw+col]; v != 0 {
			t.q[i] += factor * v
		}
	}
}

// colAt returns the matrix entry of column col in row r, reconstructing
// implicit artificial columns (±e_i) — and, in sparse mode, implicit
// logical columns (e_i) — on demand. Cold-path accessor: the hot passes
// walk whole rows or columns of the selected representation instead.
func (t *rev) colAt(r, col int) float64 {
	if col >= t.rw {
		if col-t.rw == r {
			return t.artSign[r]
		}
		return 0
	}
	if t.sp == nil {
		return t.a[r*t.rw+col]
	}
	if col >= t.n {
		if col-t.n == r {
			return 1
		}
		return 0
	}
	return t.sp.at(r, col)
}

// gatherCol scatters matrix column col (structural, logical or implicit
// artificial) into t.colv as a dense row-space vector.
//
//lint:hotpath feeds every LU-mode FTRAN; pinned to zero allocations
func (t *rev) gatherCol(col int) {
	for i := range t.colv {
		t.colv[i] = 0
	}
	switch {
	case col >= t.rw:
		t.colv[col-t.rw] = t.artSign[col-t.rw]
	case t.sp != nil:
		if col >= t.n {
			t.colv[col-t.n] = 1
			return
		}
		for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
			t.colv[t.sp.rowIdx[k]] = t.sp.colVal[k]
		}
	default:
		for i := 0; i < t.m; i++ {
			t.colv[i] = t.a[i*t.rw+col]
		}
	}
}

// refactorize rebuilds the basis representation of the selected kernel
// from the basis columns and refreshes xb = B⁻¹q. The rebuilt
// representation also restarts the devex reference framework: weights
// measured against the old factors would no longer approximate the new
// geometry, and the fresh basis is the natural new reference.
func (t *rev) refactorize() error {
	t.pp.resetWeights()
	if t.factorLU {
		return t.refactorizeLU()
	}
	return t.refactorizeBinv()
}

// refactorizeLU gathers the basis columns into CSC form and computes a
// fresh sparse LU (factor.go), emptying the eta file. O(nnz of the basis)
// gather plus the near-O(nnz) elimination on the staircase bases the
// paper's instances produce — against the dense kernel's O(m³).
func (t *rev) refactorizeLU() error {
	m := t.m
	t.fColPtr = grown(t.fColPtr, m+1)
	colPtr := t.fColPtr
	rowIdx := t.fRowIdx[:0]
	vals := t.fVals[:0]
	for i := 0; i < m; i++ {
		col := t.basis[i]
		switch {
		case col >= t.rw:
			rowIdx = append(rowIdx, col-t.rw)
			vals = append(vals, t.artSign[col-t.rw])
		case t.sp != nil && col >= t.n:
			rowIdx = append(rowIdx, col-t.n)
			vals = append(vals, 1)
		case t.sp != nil:
			for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
				if v := t.sp.colVal[k]; v != 0 {
					rowIdx = append(rowIdx, t.sp.rowIdx[k])
					vals = append(vals, v)
				}
			}
		default:
			for r := 0; r < m; r++ {
				if v := t.a[r*t.rw+col]; v != 0 {
					rowIdx = append(rowIdx, r)
					vals = append(vals, v)
				}
			}
		}
		colPtr[i+1] = len(rowIdx)
	}
	t.fRowIdx, t.fVals = rowIdx, vals
	if t.reuseFactor() {
		// No Basis will be published, so the factor arenas (and the eta
		// file appendEta grows in them) are private to this solver and
		// reused across solves.
		if err := t.fac.factorizeInto(&t.luStore, m, colPtr, rowIdx, vals); err != nil {
			return err
		}
		t.lu = &t.luStore
	} else {
		// A frozen snapshot of this factor may be published into a Basis,
		// so it must own fresh storage.
		f := &luFactor{}
		if err := t.fac.factorizeInto(f, m, colPtr, rowIdx, vals); err != nil {
			return err
		}
		t.lu = f
	}
	t.sinceRefactor = 0
	t.computeXB()
	return nil
}

// reuseFactor reports whether LU factors may live in the solver-owned
// arenas: only when the solver is Workspace-owned AND no Basis escapes the
// call — a published frozen factor must never share storage that a later
// solve will overwrite.
func (t *rev) reuseFactor() bool { return t.owned && t.noEscape }

// refactorizeBinv recomputes the legacy explicit B⁻¹ from the basis
// columns by Gauss–Jordan elimination with partial pivoting and refreshes
// xb = B⁻¹q.
func (t *rev) refactorizeBinv() error {
	m := t.m
	if m == 0 {
		t.sinceRefactor = 0
		return nil
	}
	// Augmented [B | I], row-major, width 2m. In sparse mode the basis
	// columns are scattered from the CSC index (O(nnz of the basis)
	// instead of m² element probes).
	aug := grown(t.augBuf, m*2*m)
	t.augBuf = aug
	if t.sp != nil {
		for i := 0; i < m; i++ {
			col := t.basis[i]
			switch {
			case col >= t.rw:
				aug[(col-t.rw)*2*m+i] = t.artSign[col-t.rw]
			case col >= t.n:
				aug[(col-t.n)*2*m+i] = 1
			default:
				for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
					aug[t.sp.rowIdx[k]*2*m+i] = t.sp.colVal[k]
				}
			}
		}
		for r := 0; r < m; r++ {
			aug[r*2*m+m+r] = 1
		}
	} else {
		for r := 0; r < m; r++ {
			for i := 0; i < m; i++ {
				aug[r*2*m+i] = t.colAt(r, t.basis[i])
			}
			aug[r*2*m+m+r] = 1
		}
	}
	// Right-block support intervals: row r of the identity block starts
	// with its single nonzero at column r and only ever gains fill from
	// pivot rows it absorbs, so [lo[r], hi[r]] bounds its nonzeros.
	// Restricting the inner loops to that interval (and to left-block
	// columns >= k, which are the only ones not yet eliminated) skips
	// exact-zero products only — the surviving arithmetic is identical,
	// so dense and sparse modes still agree bit-for-bit — while cutting
	// the Gauss–Jordan constant by ~2x on slack-heavy bases.
	lo := grown(t.supLo, m)
	hi := grown(t.supHi, m)
	t.supLo, t.supHi = lo, hi
	for r := range lo {
		lo[r], hi[r] = r, r
	}
	for k := 0; k < m; k++ {
		// Partial pivoting.
		pr, best := -1, singularTol
		for r := k; r < m; r++ {
			if a := math.Abs(aug[r*2*m+k]); a > best {
				best = a
				pr = r
			}
		}
		if pr == -1 {
			return errSingular
		}
		if pr != k {
			rk := aug[k*2*m : (k+1)*2*m]
			rp := aug[pr*2*m : (pr+1)*2*m]
			for j := k; j < m; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			for j := m + min(lo[k], lo[pr]); j <= m+max(hi[k], hi[pr]); j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			lo[k], lo[pr] = lo[pr], lo[k]
			hi[k], hi[pr] = hi[pr], hi[k]
		}
		piv := aug[k*2*m+k]
		inv := 1 / piv
		rowK := aug[k*2*m : (k+1)*2*m]
		for j := k + 1; j < m; j++ {
			rowK[j] *= inv
		}
		for j := m + lo[k]; j <= m+hi[k]; j++ {
			rowK[j] *= inv
		}
		rowK[k] = 1
		for r := 0; r < m; r++ {
			if r == k {
				continue
			}
			f := aug[r*2*m+k]
			if f == 0 {
				continue
			}
			row := aug[r*2*m : (r+1)*2*m]
			for j := k + 1; j < m; j++ {
				row[j] -= f * rowK[j]
			}
			for j := m + lo[k]; j <= m+hi[k]; j++ {
				row[j] -= f * rowK[j]
			}
			row[k] = 0
			if lo[k] < lo[r] {
				lo[r] = lo[k]
			}
			if hi[k] > hi[r] {
				hi[r] = hi[k]
			}
		}
	}
	// [B|I] has been reduced to [I|B⁻¹]; row swaps were applied to both
	// blocks, so the right block's rows are aligned to basis positions.
	for r := 0; r < m; r++ {
		copy(t.binv[r*m:(r+1)*m], aug[r*2*m+m:(r+1)*2*m])
	}
	t.computeXB()
	t.sinceRefactor = 0
	return nil
}

// inheritInverse builds B⁻¹ from a parent basis snapshot instead of
// refactorising: with the appended rows' logicals basic, the child basis
// matrix is block lower-triangular over the parent's,
//
//	B = | Bp 0 |        B⁻¹ = |     Bp⁻¹     0 |
//	    | C  I |               | −C·Bp⁻¹     I |
//
// so the child inverse costs O(m²) per appended row. It reports false —
// leaving the caller to refactorise — when the snapshot is missing, has
// absorbed too many product-form updates already, or fails the residual
// check B·xb ≈ q that guards against inherited drift (q, not b: a child
// that tightened a bound moved the nonbasic contribution folded into q,
// and a flipped artificial sign surfaces here too).
func (t *rev) inheritInverse(from *Basis) bool {
	mp := len(from.entries)
	if from.binv == nil || len(from.binv) != mp*mp || from.age >= t.refactorEvery {
		return false
	}
	m := t.m
	for i := 0; i < mp; i++ {
		row := t.binv[i*m : (i+1)*m]
		copy(row[:mp], from.binv[i*mp:(i+1)*mp])
		for j := mp; j < m; j++ {
			row[j] = 0
		}
	}
	for r := mp; r < m; r++ {
		row := t.binv[r*m : (r+1)*m]
		for j := range row {
			row[j] = 0
		}
		for tp := 0; tp < mp; tp++ {
			c := t.colAt(r, t.basis[tp])
			if c == 0 {
				continue
			}
			prow := from.binv[tp*mp : (tp+1)*mp]
			for j := 0; j < mp; j++ {
				row[j] -= c * prow[j]
			}
		}
		row[r] = 1
	}
	t.computeXB()
	t.sinceRefactor = from.age + (m - mp)
	return t.inverseResidualOK()
}

// inheritFactor adopts a parent snapshot's frozen LU factors: a struct
// copy sharing the immutable L/U and the clipped eta file (appends
// copy-on-write, so sibling children adopting the same snapshot never
// race). It reports false — leaving the caller to refactorise — when the
// snapshot is missing or produced by the dense kernel, when the child's
// basis dimension differs (appended rows under BranchRows), when the eta
// file is already fill-heavy, or when the residual check B·xb ≈ q fails
// (a child's bound changes can flip an artificial's sign, invalidating
// the parent's factor of it).
func (t *rev) inheritFactor(from *Basis) bool {
	f := from.fac
	if f == nil || f.m != t.m || f.fillHeavy() {
		return false
	}
	if t.noEscape {
		// No frozen snapshot of this factor will be published, so deep-copy
		// the parent's factors into the solver-owned arenas: later eta
		// appends extend private storage instead of triggering per-append
		// copy-on-write growth, and the copy itself reuses grown capacity.
		t.luStore.copyFrom(f)
		t.lu = &t.luStore
	} else {
		// A struct copy sharing the immutable L/U and the clipped eta file
		// (appends copy-on-write, see appendEta); held by value in the
		// solver so adoption allocates nothing beyond what appends force.
		t.luHold = *f
		t.lu = &t.luHold
	}
	t.sinceRefactor = from.age
	t.computeXB()
	return t.inverseResidualOK()
}

// inverseResidualOK spot-checks the inherited inverse: the basic values it
// produces must satisfy B·xb = q to working accuracy. O(m²) dense — free
// relative to the O(m³) refactorisation it may save — and O(nnz of the
// basis) in sparse mode, accumulated column-by-column (same per-row
// contribution order as the dense pass, so the two modes agree).
func (t *rev) inverseResidualOK() bool {
	if t.sp != nil {
		sum := grown(t.resSum, t.m)
		scale := grown(t.resScale, t.m)
		t.resSum, t.resScale = sum, scale
		for r := range scale {
			scale[r] = 1
		}
		// The per-case accumulation below is the inlined form of
		// add(r, v) = { sum[r] += v; scale[r] = max(scale[r], |v|) } —
		// inlined so this path stays closure-free (hotalloc gate), with the
		// accumulation order unchanged.
		for i := 0; i < t.m; i++ {
			col := t.basis[i]
			switch {
			case col >= t.rw:
				r, v := col-t.rw, t.artSign[col-t.rw]*t.xb[i]
				sum[r] += v
				if a := math.Abs(v); a > scale[r] {
					scale[r] = a
				}
			case col >= t.n:
				r, v := col-t.n, t.xb[i]
				sum[r] += v
				if a := math.Abs(v); a > scale[r] {
					scale[r] = a
				}
			default:
				for k := t.sp.colPtr[col]; k < t.sp.colPtr[col+1]; k++ {
					r, v := t.sp.rowIdx[k], t.sp.colVal[k]*t.xb[i]
					sum[r] += v
					if a := math.Abs(v); a > scale[r] {
						scale[r] = a
					}
				}
			}
		}
		for r := 0; r < t.m; r++ {
			if math.Abs(sum[r]-t.q[r]) > 1e-7*scale[r] {
				return false
			}
		}
		return true
	}
	for r := 0; r < t.m; r++ {
		var sum float64
		scale := 1.0
		for i := 0; i < t.m; i++ {
			v := t.colAt(r, t.basis[i]) * t.xb[i]
			sum += v
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if math.Abs(sum-t.q[r]) > 1e-7*scale {
			return false
		}
	}
	return true
}

// computeXB refreshes xb = B⁻¹ q, snapping roundoff residue just outside a
// basic column's box back onto the bound (the bounded generalisation of
// the old negative-residue-to-zero snap).
func (t *rev) computeXB() {
	if t.factorLU {
		t.lu.ftran(t.q, t.xb, t.luW)
		for i := 0; i < t.m; i++ {
			t.snapXB(i)
		}
		return
	}
	for i := 0; i < t.m; i++ {
		var s float64
		row := t.binv[i*t.m : (i+1)*t.m]
		for k, qk := range t.q {
			s += row[k] * qk
		}
		bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
		if s < bl && s > bl-t.tol {
			s = bl
		} else if s > bh && s < bh+t.tol {
			s = bh
		}
		t.xb[i] = s
	}
}

// snapXB applies computeXB's bound snap to a single incrementally updated
// basic value.
//
//lint:hotpath runs once per basic row per pivot; pinned to zero allocations
func (t *rev) snapXB(i int) {
	bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
	if t.xb[i] < bl && t.xb[i] > bl-t.tol {
		t.xb[i] = bl
	} else if t.xb[i] > bh && t.xb[i] < bh+t.tol {
		t.xb[i] = bh
	}
}

// setBasis installs cols as the basis and rebuilds membership flags.
func (t *rev) setBasis(cols []int) {
	copy(t.basis, cols)
	for j := range t.inBasis {
		t.inBasis[j] = false
	}
	for _, c := range cols {
		t.inBasis[c] = true
	}
}

// computeY computes the dual prices y = c_B B⁻¹ of the working cost
// vector: the BTRAN half of prices, which partial pricing runs alone —
// its per-candidate pricing needs y but never the full reduced-cost
// vector.
//
//lint:hotpath one BTRAN per pricing pass; pinned to zero allocations
func (t *rev) computeY(c []float64) {
	m := t.m
	if t.factorLU {
		// One BTRAN of the basic costs against the factors + eta file.
		for i := 0; i < m; i++ {
			t.cb[i] = c[t.basis[i]]
		}
		t.lu.btran(t.cb, t.y, t.luW, t.luC)
		return
	}
	for k := range t.y {
		t.y[k] = 0
	}
	for i := 0; i < m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			t.y[k] += cb * row[k]
		}
	}
}

// priceCol prices a single column against the current duals in t.y:
// d_j = c_j − y·A_j. Partial pricing calls it per candidate — an O(nnz
// of the column) walk — instead of materialising all rw reduced costs.
// Never called for artificial columns (they cannot enter).
//
//lint:hotpath per-candidate pricing kernel; pinned to zero allocations
func (t *rev) priceCol(c []float64, j int) float64 {
	d := c[j]
	if j >= t.n { // logical of row j−n: implicit +e_i column
		return d - t.y[j-t.n]
	}
	if t.sp != nil {
		for k := t.sp.colPtr[j]; k < t.sp.colPtr[j+1]; k++ {
			d -= t.y[t.sp.rowIdx[k]] * t.sp.colVal[k]
		}
		return d
	}
	for i := 0; i < t.m; i++ {
		if v := t.a[i*t.rw+j]; v != 0 {
			d -= t.y[i] * v
		}
	}
	return d
}

// prices computes the dual prices y = c_B B⁻¹ and reduced costs
// d = c − yᵀA for the working cost vector c.
//
//lint:hotpath full pricing pass per iteration; pinned to zero allocations
func (t *rev) prices(c []float64) {
	m := t.m
	t.computeY(c)
	// Artificial reduced costs (columns >= rw) are never read — artificials
	// cannot enter — so only the structural+logical block is priced. The
	// sparse pass subtracts y_i over row i's nonzeros plus the implicit
	// logical (coefficient 1 in row i): O(nnz + m) against the dense
	// O(m·(n+m)), with identical per-column accumulation order.
	copy(t.d[:t.rw], c[:t.rw])
	if t.sp != nil {
		for i := 0; i < m; i++ {
			yi := t.y[i]
			if yi == 0 {
				continue
			}
			for k := t.sp.rowPtr[i]; k < t.sp.rowPtr[i+1]; k++ {
				t.d[t.sp.colIdx[k]] -= yi * t.sp.rowVal[k]
			}
			t.d[t.n+i] -= yi
		}
	} else {
		for i := 0; i < m; i++ {
			yi := t.y[i]
			if yi == 0 {
				continue
			}
			row := t.a[i*t.rw : (i+1)*t.rw]
			for j := 0; j < t.rw; j++ {
				t.d[j] -= yi * row[j]
			}
		}
	}
	for i := 0; i < m; i++ {
		t.d[t.basis[i]] = 0 // exact by definition; zap rounding residue
	}
}

// ftran computes w = B⁻¹ A_col into t.w. The sparse pass dots each B⁻¹
// row against only the column's nonzeros — O(nnz_col·m) instead of O(m²)
// — and implicit logical/artificial columns (±e_k) reduce to copying the
// k-th column of B⁻¹.
//
//lint:hotpath one entering-direction solve per pivot; pinned to zero allocations
func (t *rev) ftran(col int) {
	m := t.m
	if t.factorLU {
		t.gatherCol(col)
		t.lu.ftran(t.colv, t.w, t.luW)
		return
	}
	if t.sp != nil {
		if col >= t.n { // logical e_k or artificial ±e_k: w = ±B⁻¹ e_k
			k := col - t.n
			sign := 1.0
			if col >= t.rw {
				k = col - t.rw
				sign = t.artSign[k]
			}
			for i := 0; i < m; i++ {
				t.w[i] = sign * t.binv[i*m+k]
			}
			return
		}
		lo, hi := t.sp.colPtr[col], t.sp.colPtr[col+1]
		rows := t.sp.rowIdx[lo:hi]
		vals := t.sp.colVal[lo:hi]
		for i := 0; i < m; i++ {
			var s float64
			row := t.binv[i*m : (i+1)*m]
			for z, k := range rows {
				s += row[k] * vals[z]
			}
			t.w[i] = s
		}
		return
	}
	for i := 0; i < m; i++ {
		t.colv[i] = t.colAt(i, col)
	}
	for i := 0; i < m; i++ {
		var s float64
		row := t.binv[i*m : (i+1)*m]
		for k := 0; k < m; k++ {
			s += row[k] * t.colv[k]
		}
		t.w[i] = s
	}
}

// pivotRow computes alpha = (row pr of B⁻¹)·A into t.alpha. Artificial
// entries (columns >= rw) are never read by the callers and stay zero.
// The sparse pass accumulates each contributing constraint row over its
// nonzeros plus its implicit logical column — O(Σ nnz of contributing
// rows) against the dense O(m·(n+m)) — in the same k order as the dense
// pass, so the two modes price identically.
//
//lint:hotpath one ratio-test row per dual iteration; pinned to zero allocations
func (t *rev) pivotRow(pr int) {
	for j := 0; j < t.rw; j++ {
		t.alpha[j] = 0
	}
	row := t.computeRho(pr)
	if t.sp != nil {
		for k := 0; k < t.m; k++ {
			bk := row[k]
			if bk == 0 {
				continue
			}
			for z := t.sp.rowPtr[k]; z < t.sp.rowPtr[k+1]; z++ {
				t.alpha[t.sp.colIdx[z]] += bk * t.sp.rowVal[z]
			}
			t.alpha[t.n+k] += bk
		}
		return
	}
	for k := 0; k < t.m; k++ {
		bk := row[k]
		if bk == 0 {
			continue
		}
		arow := t.a[k*t.rw : (k+1)*t.rw]
		for j := 0; j < t.rw; j++ {
			t.alpha[j] += bk * arow[j]
		}
	}
}

// computeRho materialises row pr of B⁻¹: one BTRAN of a unit vector in
// LU mode, a direct row view of the explicit inverse otherwise. Shared by
// pivotRow (which expands it into the full pivot row) and the partial
// devex update (which dots it against candidate columns only).
//
//lint:hotpath one unit-vector BTRAN per pivot row; pinned to zero allocations
func (t *rev) computeRho(pr int) []float64 {
	if !t.factorLU {
		return t.binv[pr*t.m : (pr+1)*t.m]
	}
	for k := range t.cb {
		t.cb[k] = 0
	}
	t.cb[pr] = 1
	t.lu.btran(t.cb, t.rho, t.luW, t.luC)
	return t.rho
}

// rhoDotCol dots one row of B⁻¹ against matrix column j — the single
// pivot-row coefficient α_j = ρ·A_j that the candidate-restricted devex
// update needs, at O(nnz of the column) instead of the full pivot row.
//
//lint:hotpath per-candidate pivot-row coefficient; pinned to zero allocations
func (t *rev) rhoDotCol(rho []float64, j int) float64 {
	if j >= t.n { // logical of row j−n: implicit +e_i column
		return rho[j-t.n]
	}
	if t.sp != nil {
		var s float64
		for k := t.sp.colPtr[j]; k < t.sp.colPtr[j+1]; k++ {
			s += rho[t.sp.rowIdx[k]] * t.sp.colVal[k]
		}
		return s
	}
	var s float64
	for i := 0; i < t.m; i++ {
		if v := t.a[i*t.rw+j]; v != 0 {
			s += rho[i] * v
		}
	}
	return s
}

// updateDevex applies the reference-framework weight update for the pivot
// about to happen at (pr, pc): the full pivot row for devex pricing, the
// candidate-restricted variant (plus the leaving column) for partial
// pricing. It must run before pivotBounded mutates the factorisation —
// the pivot-row coefficients are priced against the pre-pivot B⁻¹ — and
// reuses the entering direction already in t.w for the pivot element.
func (t *rev) updateDevex(pr, pc int) {
	apiv := t.w[pr]
	if apiv == 0 {
		return
	}
	leave := t.basis[pr]
	if leave >= t.rw {
		leave = -1 // artificial: carries no weight
	}
	if t.pricing == PricingDevex {
		t.pivotRow(pr) // full α over [0, rw)
		t.pp.devexUpdateFull(t.alpha, apiv, pc, leave)
		return
	}
	ref := t.pp.devex[pc] / (apiv * apiv)
	rho := t.computeRho(pr)
	for _, j := range t.pp.cand {
		if j == pc || t.inBasis[j] {
			continue
		}
		t.pp.bumpWeight(j, t.rhoDotCol(rho, j), ref)
	}
	t.pp.sealUpdate(ref, pc, leave)
}

// partialPrice chooses the entering column by partial pricing: one BTRAN
// refreshes the duals, the surviving candidates are re-priced
// individually (unattractive ones drop out in place), and an empty list
// refills by pricing rotating sections of the column space from the
// cursor. It returns −1 — optimality — only after a full wrap of the
// column space finds no attractive column: no pivot happened since the
// BTRAN, so the duals certifying that wrap are exact.
//
//lint:hotpath the whole per-iteration pricing pass of partial mode; pinned to zero allocations
func (t *rev) partialPrice(c []float64) int {
	t.computeY(c)
	best := 0.0
	pc := -1
	keep := t.pp.cand[:0]
	for _, j := range t.pp.cand {
		if !t.eligible(j) {
			continue
		}
		deff := t.priceCol(c, j)
		if t.atUpper[j] {
			deff = -deff
		}
		if deff <= t.tol {
			continue
		}
		keep = append(keep, j)
		if score := deff * deff / t.pp.devex[j]; score > best {
			best, pc = score, j
		}
	}
	t.pp.cand = keep
	if pc != -1 {
		return pc
	}
	start := t.pp.cursor
	scanned := 0
	for scanned < t.rw {
		secEnd := scanned + partialSection
		if secEnd > t.rw {
			secEnd = t.rw
		}
		for ; scanned < secEnd; scanned++ {
			col := start + scanned
			if col >= t.rw {
				col -= t.rw
			}
			if !t.eligible(col) {
				continue
			}
			deff := t.priceCol(c, col)
			if t.atUpper[col] {
				deff = -deff
			}
			if deff <= t.tol {
				continue
			}
			if len(t.pp.cand) < partialListCap {
				t.pp.cand = append(t.pp.cand, col)
			}
			if score := deff * deff / t.pp.devex[col]; score > best {
				best, pc = score, col
			}
		}
		if pc != -1 && len(t.pp.cand) >= partialMinFill {
			break
		}
	}
	t.pp.cursor = start + scanned
	if t.pp.cursor >= t.rw {
		t.pp.cursor -= t.rw
	}
	return pc
}

// flipCol moves nonbasic column pc from its current bound to the opposite
// one: a simplex step that hits the entering column's own far bound before
// any basic column hits one of its own, so the basis does not change. q
// absorbs the value change, the basic values shift along the precomputed
// direction w = B⁻¹A_pc, and that is the whole iteration.
//
//lint:hotpath whole iteration for bound-flip steps; pinned to zero allocations
func (t *rev) flipCol(pc int, sigma float64) {
	span := t.hi[pc] - t.lo[pc]
	t.addColTimes(pc, -sigma*span)
	for i := 0; i < t.m; i++ {
		if wi := t.w[i]; wi != 0 {
			t.xb[i] -= sigma * span * wi
			t.snapXB(i)
		}
	}
	t.atUpper[pc] = !t.atUpper[pc]
}

// pivotBounded brings column pc into the basis at row pr, sending the
// leaving column to the bound selected by the ratio test (leaveToUpper).
// B⁻¹ is updated via a product-form update on the precomputed direction
// w = B⁻¹A_pc, the basic values shift by the exact step that lands the
// leaving column on its bound, and q absorbs both columns' nonbasic value
// changes. It refactorises periodically.
//
//lint:hotpath=bounded the refactorisation fallback and copy-on-write eta growth allocate; the pivot body itself is allocation-free
func (t *rev) pivotBounded(pr, pc int, leaveToUpper bool) error {
	piv := t.w[pr]
	if math.Abs(piv) < minPivot {
		// The update direction disagrees with the selection (stale B⁻¹):
		// rebuild and report so the caller can re-price.
		if err := t.refactorize(); err != nil {
			return err
		}
		return errNumerical
	}
	m := t.m
	leave := t.basis[pr]
	leaveVal := t.lo[leave]
	if leaveToUpper {
		leaveVal = t.hi[leave]
	}
	// The entering column leaves the nonbasic set (q regains its old bound
	// contribution) and the leaving column joins it at leaveVal.
	t.addColTimes(pc, t.nbVal(pc))
	t.addColTimes(leave, -leaveVal)

	// Entering step: exactly the displacement that lands the leaving
	// column on leaveVal.
	delta := (t.xb[pr] - leaveVal) / piv
	for i := 0; i < m; i++ {
		if i == pr {
			continue
		}
		if wi := t.w[i]; wi != 0 {
			t.xb[i] -= delta * wi
			t.snapXB(i)
		}
	}
	t.xb[pr] = t.nbVal(pc) + delta

	if t.factorLU {
		// Product-form update: one eta vector from the direction already
		// in hand, O(nnz(w)) instead of the dense kernel's O(m²) sweep.
		t.lu.appendEta(pr, t.w)
	} else {
		inv := 1 / piv
		prow := t.binv[pr*m : (pr+1)*m]
		for k := range prow {
			prow[k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == pr {
				continue
			}
			wi := t.w[i]
			if wi == 0 {
				continue
			}
			row := t.binv[i*m : (i+1)*m]
			for k := 0; k < m; k++ {
				row[k] -= wi * prow[k]
			}
		}
	}

	t.inBasis[leave] = false
	t.atUpper[leave] = leaveToUpper
	t.atUpper[pc] = false
	t.basis[pr] = pc
	t.inBasis[pc] = true
	t.snapXB(pr)

	t.sinceRefactor++
	if t.factorLU {
		// Adaptive trigger: rebuild when the eta file outgrows the factors,
		// or when the amortised drift check finds the represented inverse
		// has wandered from the basis it claims to invert.
		if t.lu.fillHeavy() ||
			(t.sinceRefactor%driftCheckEvery == 0 && !t.inverseResidualOK()) {
			return t.refactorize()
		}
		return nil
	}
	if t.sinceRefactor >= t.refactorEvery {
		return t.refactorize()
	}
	return nil
}

// limits enforces the shared pivot budget and deadline; it returns a
// non-Optimal status when a limit is hit, Optimal otherwise.
func (t *rev) limits() Status {
	if t.iters >= t.iterLimit {
		return IterLimit
	}
	//lint:ignore wallclock sanctioned deadline probe, amortised to once per 128 pivots
	if t.iters%128 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
		return TimeLimit
	}
	return Optimal
}

// trackDegenerate switches to Bland's rule after a run of degenerate
// pivots, mirroring the tableau's anti-cycling policy. Entering Bland
// mode abandons the devex reference framework — Bland's first-index scan
// never consults weights, and any later return to weighted pricing
// deserves a fresh reference.
func (t *rev) trackDegenerate(ratio float64) {
	if ratio <= t.tol {
		t.degenRun++
		if t.degenRun >= degenerateRunLimit && !t.blandMode {
			t.blandMode = true
			t.pp.resetWeights()
		}
	} else {
		t.degenRun = 0
	}
}

// primal runs bounded-variable primal simplex pivots under cost vector c
// until optimality (no entering column) or a limit. The caller must ensure
// the current basis is primal feasible (every xb within its column's box).
func (t *rev) primal(c []float64) (Status, error) {
	for {
		if st := t.limits(); st != Optimal {
			return st, nil
		}
		// Entering column, sign-aware: a column at its lower bound improves
		// by increasing (d > 0, sigma +1), one at its upper bound by
		// decreasing (d < 0, sigma −1). Bland takes the first eligible
		// column (always over full prices — its anti-cycling guarantee
		// needs the complete index order); Dantzig scores |d|; devex scores
		// d²/w over the same full scan; partial prices a candidate list.
		pc := -1
		sigma := 1.0
		switch {
		case t.blandMode:
			t.prices(c)
			for j := 0; j < t.rw; j++ {
				if !t.eligible(j) {
					continue
				}
				if t.atUpper[j] {
					if t.d[j] < -t.tol {
						pc = j
						break
					}
				} else if t.d[j] > t.tol {
					pc = j
					break
				}
			}
		case t.pricing == PricingPartial:
			pc = t.partialPrice(c)
		case t.pricing == PricingDevex:
			t.prices(c)
			best := 0.0
			for j := 0; j < t.rw; j++ {
				if !t.eligible(j) {
					continue
				}
				deff := t.d[j]
				if t.atUpper[j] {
					deff = -deff
				}
				if deff <= t.tol {
					continue
				}
				if score := deff * deff / t.pp.devex[j]; score > best {
					best = score
					pc = j
				}
			}
		default: // Dantzig
			t.prices(c)
			best := t.tol
			for j := 0; j < t.rw; j++ {
				if !t.eligible(j) {
					continue
				}
				score := t.d[j]
				if t.atUpper[j] {
					score = -score
				}
				if score > best {
					best = score
					pc = j
				}
			}
		}
		if pc == -1 {
			return Optimal, nil
		}
		if t.atUpper[pc] {
			sigma = -1
		}

		t.ftran(pc)

		// Bounded ratio test: the entering column moves by sigma·step; each
		// basic value i changes by −step·(sigma·w_i), so a positive
		// effective direction drives it toward its lower bound and a
		// negative one toward its (finite) upper bound. The entering
		// column's own span seeds the minimum — if nothing binds earlier
		// the iteration is a bound flip, no pivot. Ties prefer a row pivot
		// (pr == -1 initially) and then the lowest basic column index, the
		// Bland-compatible deterministic order.
		pr := -1
		leaveToUpper := false
		minRatio := t.hi[pc] - t.lo[pc] // +inf when hi is
		for i := 0; i < t.m; i++ {
			wi := sigma * t.w[i]
			bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
			var ratio float64
			var toUpper bool
			if wi > t.tol {
				ratio = (t.xb[i] - bl) / wi
			} else if wi < -t.tol && !math.IsInf(bh, 1) {
				ratio = (bh - t.xb[i]) / -wi
				toUpper = true
			} else {
				continue
			}
			if ratio < 0 {
				ratio = 0 // roundoff residue just outside the box
			}
			if ratio < minRatio-t.tol || (math.Abs(ratio-minRatio) <= t.tol && (pr == -1 || t.basis[i] < t.basis[pr])) {
				minRatio = ratio
				pr = i
				leaveToUpper = toUpper
			}
		}
		if pr == -1 {
			if math.IsInf(minRatio, 1) {
				return Unbounded, nil
			}
			// Bound flip: the entering column jumps to its opposite bound.
			t.trackDegenerate(minRatio)
			t.flipCol(pc, sigma)
			t.iters++
			continue
		}
		t.trackDegenerate(minRatio)
		if t.pp.devex != nil && !t.blandMode {
			t.updateDevex(pr, pc)
		}

		if err := t.pivotBounded(pr, pc, leaveToUpper); err != nil {
			if errors.Is(err, errNumerical) && t.numRetries < 3 {
				t.numRetries++
				continue // B⁻¹ was rebuilt; re-price and retry
			}
			return Optimal, err
		}
		t.numRetries = 0
		t.iters++
	}
}

// dual runs bounded-variable dual simplex pivots under cost vector c until
// the basis is primal feasible (returning Optimal, meaning "proceed to
// primal"), the problem is detected infeasible, or a limit is hit. It
// assumes the starting reduced costs are (near-)dual feasible — the
// warm-start invariant: d <= 0 at lower bounds, d >= 0 at upper bounds —
// and restores primal feasibility after tightened bounds or appended rows
// have invalidated the parent solution.
//
// Reduced costs are maintained incrementally across pivots (the basis-
// change update d'_j = d_j − (d_pc/α_pc)·α_j reuses the pivot row already
// computed for the ratio test) rather than re-priced from scratch each
// iteration; t.dFresh records whether t.d is valid on exit, letting the
// caller skip the primal phase when the final basis is already dual
// feasible.
func (t *rev) dual(c []float64) (Status, error) {
	t.dFresh = false
	for {
		if st := t.limits(); st != Optimal {
			return st, nil
		}

		// Leaving row: the basic value furthest outside its column's box.
		// Below its lower bound it leaves to the lower bound; above its
		// (finite) upper bound it leaves to the upper bound.
		pr := -1
		toUpper := false
		viol := t.tol
		if t.blandMode {
			for i := 0; i < t.m; i++ {
				bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
				if t.xb[i] < bl-t.tol {
					pr, toUpper, viol = i, false, bl-t.xb[i]
					break
				}
				if t.xb[i] > bh+t.tol {
					pr, toUpper, viol = i, true, t.xb[i]-bh
					break
				}
			}
		} else {
			for i := 0; i < t.m; i++ {
				bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
				if v := bl - t.xb[i]; v > viol {
					viol = v
					pr, toUpper = i, false
				}
				if v := t.xb[i] - bh; v > viol {
					viol = v
					pr, toUpper = i, true
				}
			}
		}
		if pr == -1 {
			return Optimal, nil // primal feasible: hand over to primal clean-up
		}

		if !t.dFresh {
			t.prices(c)
			t.dFresh = true
		}
		t.pivotRow(pr)

		// Entering column: the bounded dual ratio test. Mapping each
		// candidate into the "at lower bound, leaving below lower" frame
		// (negate alpha when the row leaves to its upper bound; negate both
		// alpha and d when the candidate rests at its upper bound) reduces
		// every case to the classic test: candidates need effective
		// alpha < 0, and the minimum effective ratio d/alpha keeps every
		// reduced cost on its dual-feasible side after the update.
		pc := -1
		bestRatio := math.Inf(1)
		for j := 0; j < t.rw; j++ {
			if !t.eligible(j) {
				continue
			}
			aeff, deff := t.alpha[j], t.d[j]
			if toUpper {
				aeff = -aeff
			}
			if t.atUpper[j] {
				aeff, deff = -aeff, -deff
			}
			if aeff >= -t.tol {
				continue
			}
			ratio := deff / aeff
			if ratio < bestRatio-t.tol || (math.Abs(ratio-bestRatio) <= t.tol && (pc == -1 || j < pc)) {
				bestRatio = ratio
				pc = j
			}
		}
		if pc == -1 {
			// Row pr certifies primal infeasibility: every eligible
			// column moves the violated basic value the wrong way.
			return Infeasible, nil
		}

		t.ftran(pc)
		t.trackDegenerate(viol)
		f := t.d[pc] / t.alpha[pc] // basis-change step for the d update below
		if err := t.pivotBounded(pr, pc, toUpper); err != nil {
			if errors.Is(err, errNumerical) && t.numRetries < 3 {
				t.numRetries++
				t.dFresh = false // B⁻¹ was rebuilt; re-price next round
				continue
			}
			return Optimal, err
		}
		if t.sinceRefactor == 0 {
			// pivot refactorised; incremental d would no longer match B⁻¹.
			t.dFresh = false
		} else {
			for j := 0; j < t.rw; j++ {
				t.d[j] -= f * t.alpha[j]
			}
			t.d[pc] = 0 // entering column: exactly zero by construction
		}
		t.numRetries = 0
		t.iters++
	}
}

// dualFeasible reports whether the current (fresh) reduced costs admit no
// entering column — d <= tol at lower bounds and d >= −tol at upper bounds
// — i.e. the basis is already optimal for the caller.
func (t *rev) dualFeasible() bool {
	for j := 0; j < t.rw; j++ {
		if !t.eligible(j) {
			continue
		}
		if t.atUpper[j] {
			if t.d[j] < -t.tol {
				return false
			}
		} else if t.d[j] > t.tol {
			return false
		}
	}
	return true
}

// artificialValue sums |value| over basic artificial columns.
func (t *rev) artificialValue() float64 {
	var s float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.n+t.m {
			s += math.Abs(t.xb[i])
		}
	}
	return s
}

// freezeArtificials clamps every artificial column to [0, 0] — after a
// feasible phase 1 (or for a warm start, which never runs one) they may
// persist basic at zero in redundant rows but can never carry value again.
func (t *rev) freezeArtificials() {
	for j := t.rw; j < t.width; j++ {
		t.hi[j] = 0
	}
}

// driveOutArtificials pivots basic artificials (at value zero after a
// feasible phase 1) out of the basis wherever a usable pivot exists; rows
// with none are redundant and keep their artificial basic, protected at
// zero once freezeArtificials clamps their box.
func (t *rev) driveOutArtificials() error {
	artBase := t.n + t.m
	for i := 0; i < t.m; i++ {
		if t.basis[i] < artBase {
			continue
		}
		t.pivotRow(i)
		for j := 0; j < artBase; j++ {
			if !t.eligible(j) {
				continue
			}
			if math.Abs(t.alpha[j]) > t.tol*100 {
				t.ftran(j)
				if err := t.pivotBounded(i, j, false); err != nil && !errors.Is(err, errNumerical) {
					return err
				}
				break
			}
		}
	}
	return nil
}

// finish assembles the public Solution (and, at optimality, the Basis
// snapshot) from the final state. Nonbasic structural variables sit at
// their recorded bound; basic values get roundoff residue near a bound
// snapped onto it (the bounded generalisation of the old snap-to-zero:
// downstream integrality checks treat any off-bound value as fractional).
//
//lint:freezer assembles the published Basis snapshot before returning it
func (t *rev) finish(p *Problem, status Status) (*Solution, *Basis) {
	sol := t.bareSolution(status)
	if status != Optimal && status != IterLimit && status != TimeLimit {
		return sol, nil
	}
	var x []float64
	if t.noEscape {
		t.xOut = grown(t.xOut, p.nVars)
		x = t.xOut
	} else {
		x = make([]float64, p.nVars)
	}
	for v := 0; v < p.nVars; v++ {
		x[v] = t.nbVal(v)
	}
	for i := 0; i < t.m; i++ {
		if v := t.basis[i]; v < p.nVars {
			val := t.xb[i]
			if bl := t.lo[v]; math.Abs(val-bl) < t.tol*100 {
				val = bl
			} else if bh := t.hi[v]; !math.IsInf(bh, 1) && math.Abs(val-bh) < t.tol*100 {
				val = bh
			}
			x[v] = val
		}
	}
	sol.X = x
	for v, c := range p.obj {
		sol.Objective += c * x[v]
	}
	if status != Optimal || t.noEscape {
		return sol, nil
	}
	// Hand the kernel's representation over without copying: a Basis is
	// immutable, and the rev never pivots after finish (it may still price
	// read-only, which is how SolveBasisWithDuals extracts duals). The LU
	// factors are frozen (eta slices clipped) so every solver that adopts
	// them appends copy-on-write. The one exception is a Workspace-owned
	// solver's dense B⁻¹: the next solve on the Workspace would overwrite a
	// shared slice, so that one is deep-copied into the snapshot.
	bs := &Basis{
		nVars:   t.n,
		entries: make([]basisEntry, t.m),
		atUpper: append([]bool(nil), t.atUpper[:t.n]...),
		age:     t.sinceRefactor,
		devex:   t.pp.snapshotWeights(),
	}
	if t.factorLU {
		bs.fac = t.lu.freeze()
	} else if t.owned {
		bs.binv = append([]float64(nil), t.binv...)
	} else {
		bs.binv = t.binv
	}
	for i := 0; i < t.m; i++ {
		bs.entries[i] = entryForColumn(t.basis[i], t.n, t.m)
	}
	return sol, bs
}

// bareSolution returns the Solution shell for this solve: the solver-owned
// output struct in noEscape mode (aliased per the Workspace contract,
// lazily allocated so Reset can relinquish it), a fresh one otherwise.
func (t *rev) bareSolution(status Status) *Solution {
	if t.noEscape {
		if t.solOut == nil {
			t.solOut = new(Solution)
		}
		*t.solOut = Solution{Status: status, Iterations: t.iters}
		return t.solOut
	}
	return &Solution{Status: status, Iterations: t.iters}
}

// SolveBasis solves p from scratch with the revised simplex (two-phase,
// like Solve) and additionally returns the optimal basis for use as a
// warm start by SolveFrom. The Basis is nil unless the status is Optimal.
// When Options.Presolve selects the presolve layer, the reduced problem
// is solved and the returned Basis is restored to index the original
// problem's rows and columns (eliminated rows seat their logicals), so
// it remains a valid SolveFrom token for the original problem.
func SolveBasis(p *Problem, opts Options) (*Solution, *Basis, error) {
	if ps := presolveFor(p, opts, false); ps != nil {
		if ps.status == Infeasible {
			return &Solution{Status: Infeasible}, nil, nil
		}
		if ps.reduced == nil {
			return ps.directSolution(), ps.restoreBasis(nil), nil
		}
		opts.Presolve = PresolveOff
		_, sol, bs, err := solveBasisRev(ps.reduced, opts)
		if err != nil {
			return nil, nil, err
		}
		return ps.mapSolution(sol), ps.restoreBasis(bs), nil
	}
	_, sol, bs, err := solveBasisRev(p, opts)
	return sol, bs, err
}

// solveBasisRev is SolveBasis returning the final solver state as well,
// for callers that extract more than the Solution (SolveBasisWithDuals).
// The returned rev is nil when the solve errored out early.
func solveBasisRev(p *Problem, opts Options) (*rev, *Solution, *Basis, error) {
	t := newRev(p, opts)
	sol, bs, err := t.solveCold(p)
	if err != nil {
		return nil, nil, nil, err
	}
	return t, sol, bs, nil
}

// solveCold runs the two-phase cold solve on an initialised solver. The
// package-level paths call it through solveBasisRev on a fresh rev; a
// Workspace calls it directly on its persistent one.
//
//lint:hotpath=bounded one cold solve on a warmed workspace allocates only in finish's escape paths; the AllocsPerRun pins hold the noEscape steady state at zero
func (t *rev) solveCold(p *Problem) (*Solution, *Basis, error) {
	// Initial point: every structural column at its lower bound. Rows whose
	// residual q is negative (or that are equalities) start with their
	// signed artificial basic at |q| >= 0; the rest use their logical.
	t.colsBuf = grown(t.colsBuf, t.m)
	cols := t.colsBuf
	needPhase1 := false
	for i := range cols {
		if t.hi[t.n+i] <= t.lo[t.n+i] || t.q[i] < 0 {
			cols[i] = t.n + t.m + i // EQ row, or logical would start negative
			needPhase1 = true
		} else {
			cols[i] = t.n + i
		}
	}
	t.setBasis(cols)
	if err := t.refactorize(); err != nil {
		return nil, nil, err
	}

	if needPhase1 {
		t.costBuf = grown(t.costBuf, t.width)
		phase1 := t.costBuf
		for j := t.n + t.m; j < t.width; j++ {
			phase1[j] = -1
		}
		status, err := t.primal(phase1)
		if err != nil {
			return nil, nil, err
		}
		switch status {
		case IterLimit, TimeLimit:
			return t.bareSolution(status), nil, nil
		case Unbounded:
			// Phase 1 is bounded by construction; treat as numerical failure.
			return t.bareSolution(Infeasible), nil, nil
		}
		if t.artificialValue() > feasTol {
			return t.bareSolution(Infeasible), nil, nil
		}
		if err := t.driveOutArtificials(); err != nil {
			return nil, nil, err
		}
	}
	t.freezeArtificials()

	t.costBuf = grown(t.costBuf, t.width)
	phase2 := t.costBuf
	copy(phase2, p.obj)
	status, err := t.primal(phase2)
	if err != nil {
		return nil, nil, err
	}
	sol, bs := t.finish(p, status)
	sol.DualFeasible = sol.Status == Optimal
	return sol, bs, nil
}

// SolveFrom solves p warm-started from a basis produced by a previous
// SolveBasis/SolveFrom on a related problem: p's first from.NumVars()
// variables must be the variables of the producing problem (any further
// ones are treated as newly appended columns and start nonbasic at their
// lower bound), its first from.NumRows() rows must be identical to the
// rows of the producing problem, and any further rows are treated as newly
// appended (their logical columns complete the starting basis). Variable
// bounds may differ from the producing problem's — the usual warm-start
// delta is a branch-and-bound child that only tightened one box — since a
// bound change never disturbs dual feasibility of the inherited basis: the
// nonbasic-at-bound state is restored from the snapshot and each nonbasic
// column simply rests on the child's (moved) bound. A dual simplex phase
// repairs the primal infeasibility the new bounds or rows introduce, then
// primal simplex finishes to optimality.
//
// It returns an error when the basis does not fit p or has become
// numerically singular; callers should fall back to a cold solve then.
//
//lint:hotpath=bounded one warm re-solve allocates only the solver workspace; the AllocsPerRun ceiling pins it
func SolveFrom(p *Problem, from *Basis, opts Options) (*Solution, *Basis, error) {
	if err := checkBasisFit(p, from); err != nil {
		return nil, nil, err
	}
	t := newRev(p, opts)
	return t.solveFrom(p, from)
}

// checkBasisFit validates that from can warm-start p: no more basis
// variables than p has (columns appended after the snapshot start nonbasic
// at their lower bound, so a basis over fewer variables still describes a
// valid starting point), and no more basis rows than p has constraints.
// Shared by the package-level and Workspace warm-start entry points.
func checkBasisFit(p *Problem, from *Basis) error {
	if from == nil {
		return errors.New("lp: SolveFrom with nil basis")
	}
	if from.nVars > p.nVars {
		return fmt.Errorf("lp: basis is over %d variables, problem only has %d", from.nVars, p.nVars)
	}
	if len(from.entries) > p.NumConstraints() {
		return fmt.Errorf("lp: basis has %d rows, problem only %d", len(from.entries), p.NumConstraints())
	}
	return nil
}

// solveFrom runs the warm-started solve on an initialised solver; see
// SolveFrom for the semantics. The caller has already run checkBasisFit.
//
//lint:hotpath=bounded one warm re-solve on a warmed workspace allocates only in finish's escape paths; the AllocsPerRun pins hold the noEscape steady state at zero
func (t *rev) solveFrom(p *Problem, from *Basis) (*Solution, *Basis, error) {
	m := t.m
	t.freezeArtificials() // artificials may persist basic at zero, never grow

	t.colsBuf = grown(t.colsBuf, m)
	cols := t.colsBuf
	t.seenCols = grown(t.seenCols, t.width)
	seen := t.seenCols
	for i, e := range from.entries {
		if e.idx < 0 || (e.kind == basisStructural && e.idx >= t.n) || (e.kind != basisStructural && e.idx >= m) {
			return nil, nil, fmt.Errorf("lp: basis entry %d out of range", i)
		}
		col := e.column(t.n, m)
		if seen[col] {
			return nil, nil, fmt.Errorf("lp: duplicate basic column %d", col)
		}
		seen[col] = true
		cols[i] = col
	}
	for i := len(from.entries); i < m; i++ {
		cols[i] = t.n + i // appended rows start with their logical basic
	}
	t.setBasis(cols)
	// Restore nonbasic-at-bound state for structural columns, guarded by
	// the child's boxes: at-upper needs a finite upper bound here (a child
	// may have relaxed a bound the parent rested on). Columns appended
	// after the snapshot (v >= len(from.atUpper)) rest at their lower
	// bound.
	if from.atUpper != nil {
		vn := t.n
		if len(from.atUpper) < vn {
			vn = len(from.atUpper)
		}
		for v := 0; v < vn; v++ {
			if from.atUpper[v] && !t.inBasis[v] && !math.IsInf(t.hi[v], 1) {
				t.atUpper[v] = true
			}
		}
	}
	t.recomputeQ() // fold the restored nonbasic values into q
	// Adopt the parent's devex reference weights (when both sides price
	// with them) before the kernel decides how to build B⁻¹: a successful
	// inherit keeps them, while the refactorisation fallback below resets
	// them to unit like any other refactorisation. The snapshot's layout —
	// [0, n) structural, then logicals by row — only lines up when the
	// variable counts match; after appended columns the weights restart at
	// unit instead of misreading parent logical weights as structural.
	if from.nVars == t.n {
		t.pp.inheritWeights(from.devex, t.n)
	}
	inherited := false
	if t.factorLU {
		inherited = t.inheritFactor(from)
	} else {
		inherited = t.inheritInverse(from)
	}
	if !inherited {
		if err := t.refactorize(); err != nil {
			return nil, nil, err
		}
	}

	t.costBuf = grown(t.costBuf, t.width)
	cost := t.costBuf
	copy(cost, p.obj)

	status, err := t.dual(cost)
	if err != nil {
		return nil, nil, err
	}
	// A limit struck inside the dual phase leaves the basis dual feasible
	// (the dual simplex preserves it pivot by pivot), so the truncated
	// objective is still a valid upper bound — recorded on the Solution for
	// strong-branching probes. Capture the flag before the primal clean-up
	// can overwrite status: a primal-phase limit carries no such guarantee.
	dualLimited := status == IterLimit || status == TimeLimit
	// The dual phase preserves dual feasibility, so when it ends primal
	// feasible with up-to-date reduced costs the basis is already optimal
	// and the primal clean-up (one full pricing pass) can be skipped.
	if status == Optimal && !(t.dFresh && t.dualFeasible()) {
		status, err = t.primal(cost)
		if err != nil {
			return nil, nil, err
		}
	}
	sol, bs := t.finish(p, status)
	sol.FactorRebuilt = !inherited
	sol.DualFeasible = dualLimited || sol.Status == Optimal
	return sol, bs, nil
}
