package lp

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// mutBase builds the shared fixture for the mutation tests:
// max 3x0 + 5x1 + 4x2
//
//	r0: x0 + x1 + x2 <= 10
//	r1: 2x0 + x1     <= 8
//	r2: x1 + 3x2     <= 12
func mutBase() *Problem {
	p := NewProblem(3)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.SetObjCoef(2, 4)
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	p.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 8)
	p.AddConstraint([]Term{{1, 1}, {2, 3}}, LE, 12)
	return p
}

// sameOptimum asserts two solutions agree on objective and X.
func sameOptimum(t *testing.T, got, want *Solution, label string) {
	t.Helper()
	if got.Status != Optimal || want.Status != Optimal {
		t.Fatalf("%s: status got %v, want %v (both optimal)", label, got.Status, want.Status)
	}
	if !numeric.Close(got.Objective, want.Objective, 1e-9) {
		t.Errorf("%s: objective %g, want %g", label, got.Objective, want.Objective)
	}
	if len(got.X) < len(want.X) {
		t.Fatalf("%s: got %d vars, want at least %d", label, len(got.X), len(want.X))
	}
	for v := range want.X {
		if !numeric.Close(got.X[v], want.X[v], 1e-8) {
			t.Errorf("%s: x[%d] = %g, want %g", label, v, got.X[v], want.X[v])
		}
	}
}

// SetRHS on a live problem must be indistinguishable from rebuilding the
// problem from scratch with the new right-hand side.
func TestSetRHSEquivalence(t *testing.T) {
	p := mutBase()
	p.SetRHS(1, 5)
	p.SetRHS(2, 20)

	q := NewProblem(3)
	q.SetObjCoef(0, 3)
	q.SetObjCoef(1, 5)
	q.SetObjCoef(2, 4)
	q.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	q.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 5)
	q.AddConstraint([]Term{{1, 1}, {2, 3}}, LE, 20)

	sameOptimum(t, solveOK(t, p), solveOK(t, q), "SetRHS")

	terms, sense, rhs := p.Constraint(1)
	//lint:ignore floatcmp SetRHS stores the literal verbatim; round-trip identity is the contract
	if rhs != 5 || sense != LE || len(terms) != 2 {
		t.Errorf("Constraint(1) = (%v, %v, %g) after SetRHS", terms, sense, rhs)
	}
}

// AppendTerms must accumulate coefficients exactly as a from-scratch build
// would, including repeated variables.
func TestAppendTermsEquivalence(t *testing.T) {
	p := mutBase()
	p.AppendTerms(0, []Term{{0, 2}})          // r0: 3x0 + x1 + x2 <= 10
	p.AppendTerms(2, []Term{{0, 1}, {2, -1}}) // r2: x0 + x1 + 2x2 <= 12
	p.AppendTerms(1, nil)                     // no-op

	q := NewProblem(3)
	q.SetObjCoef(0, 3)
	q.SetObjCoef(1, 5)
	q.SetObjCoef(2, 4)
	q.AddConstraint([]Term{{0, 3}, {1, 1}, {2, 1}}, LE, 10)
	q.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 8)
	q.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 2}}, LE, 12)

	sameOptimum(t, solveOK(t, p), solveOK(t, q), "AppendTerms")
}

// AddVariables grows the problem; new columns priced into old rows via
// AppendTerms plus fresh rows must match the equivalent from-scratch build.
func TestAddVariablesEquivalence(t *testing.T) {
	p := mutBase()
	first := p.AddVariables(2)
	if first != 3 {
		t.Fatalf("AddVariables returned first=%d, want 3", first)
	}
	if p.NumVars() != 5 {
		t.Fatalf("NumVars = %d, want 5", p.NumVars())
	}
	p.SetObjCoef(3, 6)
	p.SetObjCoef(4, 1)
	p.SetBounds(4, 0, 2)
	p.AppendTerms(0, []Term{{3, 1}, {4, 1}})
	p.AddConstraint([]Term{{3, 2}, {4, 1}}, LE, 6)

	q := NewProblem(5)
	q.SetObjCoef(0, 3)
	q.SetObjCoef(1, 5)
	q.SetObjCoef(2, 4)
	q.SetObjCoef(3, 6)
	q.SetObjCoef(4, 1)
	q.SetBounds(4, 0, 2)
	q.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}, {3, 1}, {4, 1}}, LE, 10)
	q.AddConstraint([]Term{{0, 2}, {1, 1}}, LE, 8)
	q.AddConstraint([]Term{{1, 1}, {2, 3}}, LE, 12)
	q.AddConstraint([]Term{{3, 2}, {4, 1}}, LE, 6)

	sameOptimum(t, solveOK(t, p), solveOK(t, q), "AddVariables")
}

// Deactivate must be equivalent to removing the variable from the model.
func TestDeactivateEquivalence(t *testing.T) {
	p := mutBase()
	p.Deactivate(1)

	q := NewProblem(2) // the model without x1, reindexed
	q.SetObjCoef(0, 3)
	q.SetObjCoef(1, 4)
	q.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 10)
	q.AddConstraint([]Term{{0, 2}}, LE, 8)
	q.AddConstraint([]Term{{1, 3}}, LE, 12)

	got, want := solveOK(t, p), solveOK(t, q)
	if !numeric.Close(got.Objective, want.Objective, 1e-9) {
		t.Errorf("objective %g, want %g", got.Objective, want.Objective)
	}
	if got.X[1] != 0 {
		t.Errorf("deactivated x1 = %g, want 0", got.X[1])
	}
}

// A basis snapshot taken before each kind of mutation must warm-start the
// mutated problem to the same optimum a cold solve finds.
func TestWarmStartAfterMutation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(p *Problem)
	}{
		{"SetRHS", func(p *Problem) { p.SetRHS(1, 5) }},
		{"Deactivate", func(p *Problem) { p.Deactivate(1) }},
		{"AppendTerms", func(p *Problem) { p.AppendTerms(0, []Term{{2, 1}}) }},
		{"AddVariables", func(p *Problem) {
			v := p.AddVariables(1)
			p.SetObjCoef(v, 7)
			p.AppendTerms(0, []Term{{v, 1}})
			p.AddConstraint([]Term{{v, 1}}, LE, 3)
		}},
		{"NewRow", func(p *Problem) { p.AddConstraint([]Term{{0, 1}, {2, 1}}, LE, 4) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := mutBase()
			_, basis, err := SolveBasis(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(p)
			warm, _, err := SolveFrom(p, basis, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cold := solveOK(t, p.Clone())
			sameOptimum(t, warm, cold, "warm vs cold")
		})
	}
}

// Mutating a problem must never change what a previously derived problem
// (an overlay, or the overlay's parent) sees: copy-on-write discipline.
func TestMutationPreservesOverlayIsolation(t *testing.T) {
	parent := mutBase()
	parentCold := solveOK(t, parent.Clone())

	child := parent.Overlay()
	child.AddConstraint([]Term{{0, 1}}, LE, 2)
	childCold := solveOK(t, child.Clone())

	// Mutating the overlay child must not disturb the parent.
	child.SetRHS(0, 1)
	child.AppendTerms(1, []Term{{2, 5}})
	child.Deactivate(2)
	child.AddVariables(1)
	sameOptimum(t, solveOK(t, parent), parentCold, "parent after child mutation")

	// And mutating the parent (no overlay of it alive anymore — the child
	// materialised its own storage above) must not disturb a second,
	// already-materialised derived problem.
	child2 := parent.Overlay()
	child2.SetRHS(0, 9) // forces child2 to own its rows
	child2Cold := solveOK(t, child2.Clone())
	parent.SetRHS(0, 3)
	parent.AppendTerms(2, []Term{{0, 1}})
	sameOptimum(t, solveOK(t, child2), child2Cold, "materialised sibling after parent mutation")
	_ = childCold
}

// AdaptRows: the identity map returns the snapshot itself; a real remap
// yields a basis the solver adopts on the rearranged problem.
func TestAdaptRows(t *testing.T) {
	p := mutBase()
	_, basis, err := SolveBasis(p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if got := basis.AdaptRows([]int{0, 1, 2}, 3); got != basis {
		t.Error("identity AdaptRows did not return the snapshot itself")
	}

	// Rebuild with row 1 dropped and a fresh row appended at the end:
	// old rows {0, 2} land at {0, 1}.
	q := NewProblem(3)
	q.SetObjCoef(0, 3)
	q.SetObjCoef(1, 5)
	q.SetObjCoef(2, 4)
	q.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
	q.AddConstraint([]Term{{1, 1}, {2, 3}}, LE, 12)
	q.AddConstraint([]Term{{0, 1}, {1, 2}}, LE, 9)

	adapted := basis.AdaptRows([]int{0, -1, 1}, 3)
	if adapted == basis {
		t.Fatal("non-identity AdaptRows returned the snapshot itself")
	}
	if adapted.NumRows() != 3 {
		t.Fatalf("adapted NumRows = %d, want 3", adapted.NumRows())
	}
	warm, _, err := SolveFrom(q, adapted, Options{})
	if err != nil {
		// A rejected adapted basis is a legal outcome; the engine falls
		// back cold. But on this well-posed remap adoption should succeed.
		t.Fatalf("SolveFrom rejected adapted basis: %v", err)
	}
	sameOptimum(t, warm, solveOK(t, q.Clone()), "adapted warm vs cold")
}

// Mutator panics on bad input.
func TestMutatePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func(p *Problem)
	}{
		{"SetRHS out of range", func(p *Problem) { p.SetRHS(3, 1) }},
		{"SetRHS negative row", func(p *Problem) { p.SetRHS(-1, 1) }},
		{"SetRHS NaN", func(p *Problem) { p.SetRHS(0, math.NaN()) }},
		{"AppendTerms out of range", func(p *Problem) { p.AppendTerms(7, []Term{{0, 1}}) }},
		{"AppendTerms bad var", func(p *Problem) { p.AppendTerms(0, []Term{{9, 1}}) }},
		{"AddVariables zero", func(p *Problem) { p.AddVariables(0) }},
		{"AddVariables negative", func(p *Problem) { p.AddVariables(-2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f(mutBase())
		})
	}
}
