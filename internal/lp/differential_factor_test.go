package lp

// Differential pinning of the two basis kernels against each other: the
// sparse LU kernel (the default) and the legacy explicit dense B⁻¹ run the
// same pivot rule over the same matrices, so on every corpus instance they
// must land on the same vertex — status, objective AND the full solution
// vector — cold, warm-started from a bounds-tightened child (the row-free
// branch-and-bound move, where the LU child adopts the parent's frozen
// factors) and warm-started after an appended row (where the LU kernel
// must detect the dimension change and refactorise). A disagreement here is
// how an FTRAN/BTRAN or eta-file bug would surface as a silently wrong
// optimum with the factorisation layer enabled.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/rng"
)

// solveBothKernels solves p cold under both kernels and returns the pair.
func solveBothKernels(t *testing.T, p *Problem) (lu, binv *Solution, luBS, binvBS *Basis) {
	t.Helper()
	var err error
	lu, luBS, err = SolveBasis(p, Options{Factor: FactorLU})
	if err != nil {
		t.Fatalf("lu: %v", err)
	}
	binv, binvBS, err = SolveBasis(p, Options{Factor: FactorBinv})
	if err != nil {
		t.Fatalf("binv: %v", err)
	}
	return lu, binv, luBS, binvBS
}

// TestDifferentialLUVsBinv: kernel agreement over the whole corpus, cold
// and across a warm-started bounds-tightened child plus a grandchild
// chained from the warm basis (the child appends etas onto inherited
// factors, the exact state a deep branch-and-bound dive produces).
func TestDifferentialLUVsBinv(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			lu, binv, luBS, binvBS := solveBothKernels(t, g.p)
			assertAgreeX(t, "cold", binv, lu)
			if lu.Status != Optimal {
				return
			}

			s := rng.NewReplicate(6, "lp-differential-factor", i)
			v := s.Intn(g.p.NumVars())
			child := g.p.Clone()
			lo, _ := child.Bounds(v)
			child.SetBounds(v, lo, math.Max(lo, math.Floor(lu.X[v])))
			warmLU, wluBS, err := SolveFrom(child, luBS, Options{Factor: FactorLU})
			if err != nil {
				t.Fatalf("warm lu: %v", err)
			}
			warmBinv, wbinvBS, err := SolveFrom(child, binvBS, Options{Factor: FactorBinv})
			if err != nil {
				t.Fatalf("warm binv: %v", err)
			}
			assertAgreeX(t, "warm", warmBinv, warmLU)
			if warmLU.Status != Optimal {
				return
			}

			// Grandchild from the warm basis: the LU snapshot being adopted
			// now carries a frozen eta file from the child's own pivots.
			v2 := s.Intn(g.p.NumVars())
			grand := child.Clone()
			lo2, _ := grand.Bounds(v2)
			grand.SetBounds(v2, lo2, math.Max(lo2, math.Floor(warmLU.X[v2])))
			grandLU, _, err := SolveFrom(grand, wluBS, Options{Factor: FactorLU})
			if err != nil {
				t.Fatalf("grand lu: %v", err)
			}
			grandBinv, _, err := SolveFrom(grand, wbinvBS, Options{Factor: FactorBinv})
			if err != nil {
				t.Fatalf("grand binv: %v", err)
			}
			assertAgreeX(t, "grandchild", grandBinv, grandLU)
		})
	}
}

// TestDifferentialLUVsBinvAppendedRows: kernel agreement when the child
// appends a bound row instead of tightening a box. The dense kernel extends
// its inverse block-triangularly; the LU kernel cannot adopt a factor of
// the wrong dimension and must flag the rebuild on the Solution.
func TestDifferentialLUVsBinvAppendedRows(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			lu, _, luBS, binvBS := solveBothKernels(t, g.p)
			if lu.Status != Optimal {
				return
			}
			s := rng.NewReplicate(7, "lp-differential-factor-rows", i)
			v := s.Intn(g.p.NumVars())
			child := g.p.Clone()
			child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, math.Floor(lu.X[v]))
			warmLU, _, err := SolveFrom(child, luBS, Options{Factor: FactorLU})
			if err != nil {
				t.Fatalf("warm lu: %v", err)
			}
			warmBinv, _, err := SolveFrom(child, binvBS, Options{Factor: FactorBinv})
			if err != nil {
				t.Fatalf("warm binv: %v", err)
			}
			assertAgreeX(t, "row-child", warmBinv, warmLU)
			if !warmLU.FactorRebuilt {
				t.Error("LU warm start after an appended row did not report FactorRebuilt")
			}
		})
	}
}

// TestDifferentialLUVsBinvStaircase: kernel agreement at realistic
// DSCT-EA-FR scale, where the staircase bases make the sparse factors pay
// off and refactorisation actually triggers.
func TestDifferentialLUVsBinvStaircase(t *testing.T) {
	const staircaseFactorCorpus = 12
	for i := 0; i < staircaseFactorCorpus; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			s := rng.NewReplicate(8, "lp-differential-factor-staircase", i)
			nTasks := 20 + s.Intn(41) // 20..60 tasks
			mMach := 2 + s.Intn(3)    // 2..4 machines
			g := generateStaircaseLP(s, nTasks, mMach)

			lu, binv, luBS, _ := solveBothKernels(t, g.p)
			assertAgreeX(t, "cold", binv, lu)
			if lu.Status != Optimal {
				t.Fatalf("staircase instance not optimal (%v); generator broken", lu.Status)
			}

			v := s.Intn(g.p.NumVars())
			child := g.p.Clone()
			lo, _ := child.Bounds(v)
			child.SetBounds(v, lo, math.Max(lo, math.Floor(lu.X[v])))
			warmLU, _, err := SolveFrom(child, luBS, Options{Factor: FactorLU})
			if err != nil {
				t.Fatalf("warm lu: %v", err)
			}
			coldChild, _, err := SolveBasis(child, Options{Factor: FactorBinv})
			if err != nil {
				t.Fatalf("cold binv child: %v", err)
			}
			assertAgree(t, "warm-vs-cold-child", coldChild, warmLU)
		})
	}
}

// TestFactorRebuiltSemantics pins the FactorRebuilt flag on a fixed
// instance: false cold and for an adopted same-shape LU inherit, true when
// the basis came from the other kernel (no adoptable snapshot) and when a
// row append changed the basis dimension.
func TestFactorRebuiltSemantics(t *testing.T) {
	p := degenerateStaircaseLP(12, 2)
	lu, _, luBS, binvBS := solveBothKernels(t, p)
	if lu.Status != Optimal {
		t.Fatalf("status %v", lu.Status)
	}
	if lu.FactorRebuilt {
		t.Error("cold solve reported FactorRebuilt")
	}

	child := p.Overlay()
	child.SetBounds(0, 0, 0.5)

	adopt, _, err := SolveFrom(child, luBS, Options{Factor: FactorLU})
	if err != nil {
		t.Fatal(err)
	}
	if adopt.FactorRebuilt {
		t.Error("same-shape LU inherit reported FactorRebuilt")
	}

	cross, _, err := SolveFrom(child, binvBS, Options{Factor: FactorLU})
	if err != nil {
		t.Fatal(err)
	}
	if !cross.FactorRebuilt {
		t.Error("LU warm start from a dense-kernel basis did not report FactorRebuilt")
	}
	crossBack, _, err := SolveFrom(child, luBS, Options{Factor: FactorBinv})
	if err != nil {
		t.Fatal(err)
	}
	if !crossBack.FactorRebuilt {
		t.Error("dense warm start from an LU basis did not report FactorRebuilt")
	}

	rowChild := p.Overlay()
	rowChild.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 0.5)
	rowWarm, _, err := SolveFrom(rowChild, luBS, Options{Factor: FactorLU})
	if err != nil {
		t.Fatal(err)
	}
	if !rowWarm.FactorRebuilt {
		t.Error("LU warm start after a row append did not report FactorRebuilt")
	}
}
