package lp

// The xl family: assignment-shaped DSCT instances at the scale where the
// pricing and presolve work of this package starts to matter — up to 10k
// tasks on a 100-machine fleet, each task eligible on a small subset of
// machines, so the matrix is a few nonzeros per column no matter how
// wide the fleet. The family crosses every auto threshold (sparse
// representation, partial pricing, presolve) and carries deliberate
// reduction food: singleton guard rows and pinned columns. The smoke
// test keeps a tier-1-sized member honest against the dantzig/
// no-presolve baseline; the benchmarks record the rule and layer
// speedups that BENCH_PR7.json pins.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// xlElig is the number of machines each xl task may run on: columns per
// task, nonzeros per assignment row.
const xlElig = 3

// generateXLLP builds an assignment-shaped instance: nTasks·xlElig
// processing-time variables (task j on its e-th eligible machine),
// per-task share rows Σ_e x_je <= f_j, per-machine capacity rows over
// the variables placed there, one global energy row, a singleton guard
// row on every 10th task's first variable, and every 20th task's third
// variable pinned to a zero-width box. Feasible and bounded by
// construction: a known x* satisfies every row with slack and the share
// rows cap every (positively priced) column.
func generateXLLP(s *rng.Source, nTasks, mMach int) *genLP {
	nv := nTasks * xlElig
	g := &genLP{xstar: make([]float64, nv), obj: make([]float64, nv)}
	g.p = NewProblem(nv)

	speed := make([]float64, mMach)
	power := make([]float64, mMach)
	for r := range speed {
		speed[r] = s.Uniform(0.5, 2)
		power[r] = s.Uniform(0.2, 1)
	}
	mach := make([]int, nv)
	colScale := make([]float64, nv)
	for j := 0; j < nTasks; j++ {
		base := s.Intn(mMach)
		// Task demands span orders of magnitude — compressible inference
		// workloads are not uniform — so whole columns scale by 10^±2.
		// Dantzig's rule chases the scaled reduced costs; the devex
		// reference framework and the presolve scaling layer both exist to
		// be insensitive to exactly this.
		ts := powUniform(s, -2, 2)
		for e := 0; e < xlElig; e++ {
			v := j*xlElig + e
			mach[v] = (base + e*7) % mMach
			colScale[v] = ts
			g.obj[v] = s.Uniform(0.1, 1) * speed[mach[v]] * ts
			g.p.SetObjCoef(v, g.obj[v])
			g.xstar[v] = s.Uniform(0, 0.02) / ts
		}
	}
	// Pinned columns: the fixed-column reduction's food, the exact shape
	// branch-and-bound leaves behind when it fixes a variable.
	for j := 0; j < nTasks; j += 20 {
		v := j*xlElig + 2
		g.p.SetBounds(v, g.xstar[v], g.xstar[v])
	}
	// Per-task share rows.
	for j := 0; j < nTasks; j++ {
		terms := make([]Term, xlElig)
		dot := 0.0
		for e := 0; e < xlElig; e++ {
			v := j*xlElig + e
			terms[e] = Term{Var: v, Coef: colScale[v]}
			dot += colScale[v] * g.xstar[v]
		}
		g.p.AddConstraint(terms, LE, dot+s.Uniform(0.05, 0.5))
	}
	// Singleton guard rows: the singleton-row reduction's food.
	for j := 0; j < nTasks; j += 10 {
		v := j * xlElig
		g.p.AddConstraint([]Term{{Var: v, Coef: colScale[v]}}, LE,
			colScale[v]*g.xstar[v]+s.Uniform(0.01, 0.2))
	}
	// Per-machine capacity rows.
	machTerms := make([][]Term, mMach)
	machDot := make([]float64, mMach)
	for v := 0; v < nv; v++ {
		r := mach[v]
		machTerms[r] = append(machTerms[r], Term{Var: v, Coef: speed[r] * colScale[v]})
		machDot[r] += speed[r] * colScale[v] * g.xstar[v]
	}
	for r := 0; r < mMach; r++ {
		if len(machTerms[r]) == 0 {
			continue
		}
		g.p.AddConstraint(machTerms[r], LE, machDot[r]*s.Uniform(1.2, 2))
	}
	// Global energy budget.
	eterms := make([]Term, nv)
	var edot float64
	for v := 0; v < nv; v++ {
		eterms[v] = Term{Var: v, Coef: power[mach[v]] * colScale[v]}
		edot += power[mach[v]] * colScale[v] * g.xstar[v]
	}
	g.p.AddConstraint(eterms, LE, edot*s.Uniform(1.5, 3))
	return g
}

// powUniform draws 10^u with u uniform on [lo, hi].
func powUniform(s *rng.Source, lo, hi float64) float64 {
	return math.Pow(10, s.Uniform(lo, hi))
}

// TestXLAutoSmoke: a tier-1-sized xl member must cross every auto
// threshold — sparse matrix, partial pricing, presolve — and the
// resulting all-auto solve must agree with the dantzig/no-presolve
// baseline on status, objective and the full solution vector.
func TestXLAutoSmoke(t *testing.T) {
	s := rng.NewReplicate(8, "lp-xl-smoke", 0)
	g := generateXLLP(s, 1900, 20)
	m, n := g.p.NumConstraints(), g.p.NumVars()
	if m < presolveAutoRows {
		t.Fatalf("smoke member has %d rows, below the presolve auto threshold %d", m, presolveAutoRows)
	}
	if n+m < pricingAutoCols {
		t.Fatalf("smoke member prices %d columns, below the pricing auto threshold %d", n+m, pricingAutoCols)
	}
	if !autoSparse(m, n, dedupRows(g.p).nnz()) {
		t.Fatal("smoke member not auto-sparse; generator misconfigured")
	}
	if got := resolvePricing(PricingAuto, n+m); got != PricingPartial {
		t.Fatalf("auto pricing resolves to %v, want partial", got)
	}
	if !resolvePresolve(PresolveAuto, m) {
		t.Fatal("auto presolve resolves to off")
	}

	base, _, err := SolveBasis(g.p, Options{Pricing: PricingDantzig, Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != Optimal {
		t.Fatalf("baseline status %v", base.Status)
	}
	auto, _, err := SolveBasis(g.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreeXWithin(t, "auto-vs-baseline", base, auto, presolveXTol)

	// The known feasible point bounds the optimum from below.
	want := g.feasibleValue()
	if auto.Objective < want-1e-6*(1+want) {
		t.Errorf("objective %g below feasible value %g", auto.Objective, want)
	}
}

// xlBenchSizes are the xl benchmark shapes: a tier-1-scale member and
// the full 10k-task, 100-machine flagship the acceptance bar names.
var xlBenchSizes = []struct{ tasks, mach int }{
	{2000, 20}, {10000, 100},
}

// BenchmarkPricingXLLP: cold revised solves of the xl family under each
// pricing rule, presolve off, so the timing isolates the per-pivot
// pricing work — dantzig's full column scan against devex's weighted
// scan and partial's candidate-list pricing. The pivot metric shows the
// rules' path lengths; the win is ns/op, not pivots.
func BenchmarkPricingXLLP(b *testing.B) {
	for _, sz := range xlBenchSizes {
		g := generateXLLP(rng.New(29, "lp-xl-pricing-bench"), sz.tasks, sz.mach)
		for _, mode := range []struct {
			name    string
			pricing PricingMode
		}{
			{"dantzig", PricingDantzig},
			{"devex", PricingDevex},
			{"partial", PricingPartial},
		} {
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveBasis(g.p, Options{Pricing: mode.pricing, Presolve: PresolveOff})
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}

// BenchmarkPresolveXLLP: cold revised solves of the xl family with the
// presolve layer off versus on, partial pricing both ways. The xl
// members carry the reductions' food (singleton guard rows, pinned
// columns), so the layer shrinks the basis the core has to factor and
// the column space it has to price.
func BenchmarkPresolveXLLP(b *testing.B) {
	for _, sz := range xlBenchSizes {
		g := generateXLLP(rng.New(31, "lp-xl-presolve-bench"), sz.tasks, sz.mach)
		for _, mode := range []struct {
			name     string
			presolve PresolveMode
		}{
			{"nopresolve", PresolveOff},
			{"presolve", PresolveOn},
		} {
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveBasis(g.p, Options{Pricing: PricingPartial, Presolve: mode.presolve})
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}
