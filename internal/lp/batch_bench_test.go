package lp

// Batch-throughput benchmarks: the workload is a CORPUS of instances, the
// metric is instances/sec, and the comparison is per-solve allocation
// (fresh SolveBasis per instance) against workspace reuse (one Workspace
// solving the whole corpus) and the BatchSolve harness that shards the
// corpus across per-core workers. Every segment asserts bit-identical
// objectives against a pre-computed reference and reports the corpus
// pivot total, so a throughput win can never hide a path change; with
// the arithmetic pinned, instances/sec isolates exactly the allocation
// and GC cost the Workspace exists to remove. scripts/verify.sh -bench
// records these into BENCH_PR8.json; the PR acceptance bar is >=2x
// pooled-vs-fresh on the corpus benchmark.

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// batchRef solves every instance fresh once and returns the reference
// objectives and the corpus pivot total the benchmark segments pin
// themselves against.
func batchRef(b *testing.B, probs []*Problem, opts Options) ([]float64, float64) {
	b.Helper()
	ref := make([]float64, len(probs))
	var pivots float64
	for i, p := range probs {
		sol, _, err := SolveBasis(p, opts)
		if err != nil {
			b.Fatal(err)
		}
		ref[i] = sol.Objective
		pivots += float64(sol.Iterations)
	}
	return ref, pivots
}

// runBatchSegments runs the fresh / pooled / batch segments over one
// corpus under one Options value, reporting instances/sec, allocs/op
// (one op = one full corpus pass) and the corpus pivot total.
func runBatchSegments(b *testing.B, label string, probs []*Problem, opts Options) {
	ref, refPivots := batchRef(b, probs, opts)
	check := func(b *testing.B, i int, sol *Solution, err error, pivots *float64) {
		if err != nil {
			b.Fatal(err)
		}
		//lint:ignore floatcmp bit-identical objectives are the segment invariant
		if sol.Objective != ref[i] {
			b.Fatalf("instance %d: objective %.17g != reference %.17g", i, sol.Objective, ref[i])
		}
		*pivots += float64(sol.Iterations)
	}

	b.Run("fresh/"+label, func(b *testing.B) {
		b.ReportAllocs()
		var pivots float64
		for n := 0; n < b.N; n++ {
			pivots = 0
			for i, p := range probs {
				sol, _, err := SolveBasis(p, opts)
				check(b, i, sol, err, &pivots)
			}
		}
		//lint:ignore floatcmp integer-valued pivot totals compare exactly
		if pivots != refPivots {
			b.Fatalf("pivot total %v != reference %v", pivots, refPivots)
		}
		b.ReportMetric(float64(b.N*len(probs))/b.Elapsed().Seconds(), "instances/sec")
		b.ReportMetric(pivots, "pivots")
	})
	b.Run("pooled/"+label, func(b *testing.B) {
		b.ReportAllocs()
		ws := NewWorkspace()
		var pivots float64
		for n := 0; n < b.N; n++ {
			pivots = 0
			for i, p := range probs {
				sol, err := ws.Solve(p, opts)
				check(b, i, sol, err, &pivots)
			}
		}
		//lint:ignore floatcmp integer-valued pivot totals compare exactly
		if pivots != refPivots {
			b.Fatalf("pivot total %v != reference %v", pivots, refPivots)
		}
		b.ReportMetric(float64(b.N*len(probs))/b.Elapsed().Seconds(), "instances/sec")
		b.ReportMetric(pivots, "pivots")
	})
	b.Run("batch/"+label, func(b *testing.B) {
		b.ReportAllocs()
		var pivots float64
		for n := 0; n < b.N; n++ {
			pivots = 0
			sols, err := BatchSolve(probs, opts, 0)
			if err != nil {
				b.Fatal(err)
			}
			for i, sol := range sols {
				check(b, i, sol, nil, &pivots)
			}
		}
		//lint:ignore floatcmp integer-valued pivot totals compare exactly
		if pivots != refPivots {
			b.Fatalf("pivot total %v != reference %v", pivots, refPivots)
		}
		b.ReportMetric(float64(b.N*len(probs))/b.Elapsed().Seconds(), "instances/sec")
		b.ReportMetric(pivots, "pivots")
	})
}

// BenchmarkBatchThroughputLP: the 240-instance differential corpus as a
// batch workload. The instances are tiny (1-7 variables), so per-solve
// allocation dominates the fresh segment and the pooled/batch segments
// measure the workspace win at its starkest — the B&B-node-sized regime
// the paper's per-epoch scheduling sweep lives in.
func BenchmarkBatchThroughputLP(b *testing.B) {
	probs := make([]*Problem, corpusSize)
	for i := range probs {
		probs[i] = corpusInstance(i).p
	}
	runBatchSegments(b, "corpus-240", probs, Options{})
}

// BenchmarkBatchThroughputXLLP: a shard of xl-family assignment instances
// at tier-1 scale. Solve time grows with the instance, so the allocation
// share shrinks relative to the corpus benchmark; this records how much
// of the workspace win survives at the paper's Fig 3/4 problem sizes.
func BenchmarkBatchThroughputXLLP(b *testing.B) {
	const shard = 4
	probs := make([]*Problem, shard)
	for i := range probs {
		probs[i] = generateXLLP(rng.NewReplicate(37, "lp-xl-batch-bench", i), 500, 10).p
	}
	runBatchSegments(b, fmt.Sprintf("xl-%dx500x10", shard), probs, Options{})
}
