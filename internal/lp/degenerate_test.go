package lp

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// Degenerate staircase instances: the EDF prefix structure of the paper's
// DSCT model with every deadline collapsed to the same value and fully tied
// objective coefficients. All prefix rows but the longest per machine are
// redundant, so almost every vertex is massively degenerate and Dantzig
// pricing stalls in long runs of zero-ratio pivots — the workload the
// anti-cycling fallback (Bland's rule after degenerateRunLimit degenerate
// pivots) exists for. These tests pin that every core — tableau, revised
// with the legacy dense inverse, revised with the LU kernel, each over the
// dense and the sparse matrix — terminates at the same optimum.

// degenerateStaircaseLP builds the collapsed-deadline instance: variables
// x[j][r] (task j on machine r), per-machine EDF prefix rows
// Σ_{i<=j} x[i][r] <= 1 for every j (identical RHS, so only the full-length
// prefix binds), and per-task caps Σ_r x[j][r] <= 1, maximising Σ x. The
// optimum is min(nTasks, mMach): one unit of work per machine.
func degenerateStaircaseLP(nTasks, mMach int) *Problem {
	nv := nTasks * mMach
	p := NewProblem(nv)
	v := func(j, r int) int { return j*mMach + r }
	for x := 0; x < nv; x++ {
		p.SetObjCoef(x, 1)
	}
	for r := 0; r < mMach; r++ {
		for j := 0; j < nTasks; j++ {
			terms := make([]Term, 0, j+1)
			for i := 0; i <= j; i++ {
				terms = append(terms, Term{Var: v(i, r), Coef: 1})
			}
			p.AddConstraint(terms, LE, 1)
		}
	}
	for j := 0; j < nTasks; j++ {
		terms := make([]Term, 0, mMach)
		for r := 0; r < mMach; r++ {
			terms = append(terms, Term{Var: v(j, r), Coef: 1})
		}
		p.AddConstraint(terms, LE, 1)
	}
	return p
}

// revisedCoreConfigs enumerates the revised core's kernel × representation
// grid used by the degenerate tests.
var revisedCoreConfigs = []struct {
	name string
	opts Options
}{
	{"binv-dense", Options{Factor: FactorBinv, Sparse: SparseOff}},
	{"binv-sparse", Options{Factor: FactorBinv, Sparse: SparseOn}},
	{"lu-dense", Options{Factor: FactorLU, Sparse: SparseOff}},
	{"lu-sparse", Options{Factor: FactorLU, Sparse: SparseOn}},
}

func TestDegenerateStaircaseAntiCycling(t *testing.T) {
	for _, sz := range [][2]int{{30, 3}, {40, 3}, {60, 3}} {
		nTasks, mMach := sz[0], sz[1]
		p := degenerateStaircaseLP(nTasks, mMach)
		want := float64(mMach)

		ref, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("%dx%d tableau: %v", nTasks, mMach, err)
		}
		if ref.Status != Optimal {
			t.Fatalf("%dx%d tableau: status %v", nTasks, mMach, ref.Status)
		}
		if math.Abs(ref.Objective-want) > 1e-9 {
			t.Fatalf("%dx%d tableau: objective %g, want %g", nTasks, mMach, ref.Objective, want)
		}

		for _, cfg := range revisedCoreConfigs {
			sol, _, err := SolveBasis(p, cfg.opts)
			if err != nil {
				t.Fatalf("%dx%d %s: %v", nTasks, mMach, cfg.name, err)
			}
			// The degenerate optimum is unique in objective but not in X, so
			// agreement is on status and objective only.
			assertAgree(t, cfg.name, ref, sol)
		}
	}
}

// TestDegenerateStaircaseStallsDantzig checks, white-box, that the instance
// really exercises the anti-cycling machinery: both basis kernels must run
// through degenerateRunLimit consecutive zero-ratio pivots and flip to
// Bland's rule before terminating. Without this pin the agreement test
// above could silently degrade into a non-degenerate workload.
func TestDegenerateStaircaseStallsDantzig(t *testing.T) {
	p := degenerateStaircaseLP(30, 3)
	for _, fm := range []FactorMode{FactorLU, FactorBinv} {
		tt, sol, _, err := solveBasisRev(p, Options{Factor: fm})
		if err != nil {
			t.Fatalf("factor=%v: %v", fm, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("factor=%v: status %v", fm, sol.Status)
		}
		if !tt.blandMode {
			t.Errorf("factor=%v: Bland fallback never engaged — instance not degenerate enough", fm)
		}
	}
}

// TestDegenerateStaircaseWarmStart re-solves degenerate children (one
// variable's upper bound tightened, branch-and-bound style) from the
// parent's basis on every kernel and pins agreement with a cold tableau
// solve of the same child.
func TestDegenerateStaircaseWarmStart(t *testing.T) {
	p := degenerateStaircaseLP(30, 3)
	for _, cfg := range revisedCoreConfigs {
		_, bs, err := SolveBasis(p, cfg.opts)
		if err != nil {
			t.Fatalf("%s parent: %v", cfg.name, err)
		}
		for _, v := range []int{0, 17, 44} {
			child := p.Overlay()
			child.SetBounds(v, 0, 0.25)
			warm, _, err := SolveFrom(child, bs, cfg.opts)
			if err != nil {
				t.Fatalf("%s child v=%d: %v", cfg.name, v, err)
			}
			cold, err := Solve(child, Options{})
			if err != nil {
				t.Fatalf("%s child v=%d cold: %v", cfg.name, v, err)
			}
			assertAgree(t, cfg.name, cold, warm)
			if warm.Status == Optimal && warm.X[v] > 0.25+numeric.TestTol {
				t.Fatalf("%s child v=%d: tightened bound violated: x=%g", cfg.name, v, warm.X[v])
			}
		}
	}
}
