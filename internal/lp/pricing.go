package lp

// Pricing rules for the entering-column choice, shared by the simplex
// cores. Three rules are selectable through Options.Pricing:
//
//   - Dantzig: the classic full scan for the largest sign-aware reduced
//     cost. O(priced columns) per pivot; the historical default.
//   - Devex (Forrest–Goldfarb reference framework): the same full scan,
//     but scoring d_j²/w_j against reference weights w_j that approximate
//     the steepest-edge column norms ‖B⁻¹A_j‖². The weights cost one
//     pivot row per basis change — no extra solves — and typically cut
//     the pivot count substantially on long, thin problems.
//   - Partial (partial pricing with candidate lists): devex scores over a
//     bounded candidate list, refilled by pricing rotating sections of
//     the column space. Per-pivot pricing work is proportional to the
//     candidate list plus one section — not to the full column count —
//     which is what makes 10⁴-column problems pivot in O(candidates).
//
// The devex recurrence, for a pivot entering column q at row r with
// pivot element α_q (the entering direction's r-th component):
//
//	w_j ← max(w_j, (α_j/α_q)²·w_q)   for nonbasic j     (α_j: pivot row)
//	w_l ← max(w_q/α_q², 1)           for the leaving column l
//
// Weights are pure basis geometry — independent of the cost vector — so
// they survive the phase-1 → phase-2 transition and travel with a Basis
// snapshot into warm-started children. The reference framework restarts
// (all weights to 1) whenever the basis representation is refactorised,
// when pricing falls back to Bland's rule, and when a weight overflows
// devexWeightCap; a restarted framework is merely a fresh approximation,
// never a correctness event.
//
// Correctness is rule-independent: pricing only orders pivots. Every rule
// demands a strictly improving sign-aware reduced cost (> tol) before
// entering, Bland's rule still takes over after a degenerate run, and
// partial pricing certifies optimality only by a full wrap of the column
// space — under duals that cannot have changed since no pivot happened —
// finding no attractive column.

const (
	// pricingAutoCols is the priced-column-space size (structural +
	// logical columns) at which PricingAuto switches from Dantzig's full
	// scan to partial pricing. Below it the full scan is cheap and the
	// historical pivot order is preserved bit-for-bit.
	pricingAutoCols = 4096
	// devexWeightCap bounds the devex weights; any update past it
	// restarts the reference framework at unit weights.
	devexWeightCap = 1e10
	// partialListCap bounds the partial-pricing candidate list.
	partialListCap = 128
	// partialSection is the number of columns one refill scan prices
	// before checking whether a candidate has surfaced.
	partialSection = 512
	// partialMinFill is the candidate count a refill keeps scanning
	// sections for before it commits to an entering column. A single
	// section is a narrow window of the column space; entering from it
	// when it holds only a handful of attractive columns makes myopic
	// pivots and inflates the pivot count, so a refill widens the pool to
	// this many candidates (or a full wrap) first.
	partialMinFill = 64
)

// resolvePricing maps PricingAuto to a concrete rule for a problem whose
// priced column space (structural + logical columns) has rw columns.
func resolvePricing(mode PricingMode, rw int) PricingMode {
	if mode != PricingAuto {
		return mode
	}
	if rw >= pricingAutoCols {
		return PricingPartial
	}
	return PricingDantzig
}

// pricer is the pricing-rule state a simplex core embeds: the resolved
// rule, the devex reference weights (devex/partial rules only) and the
// partial-pricing candidate list with its rotating refill cursor.
type pricer struct {
	mode PricingMode // resolved rule; never PricingAuto
	rw   int         // priced column space is [0, rw)

	devex []float64 // rw reference weights (nil: rule keeps none)
	wmax  float64   // largest weight since the last framework restart

	cand   []int // partial-pricing candidate columns
	cursor int   // next column a refill section scan starts from

	// devexBuf/candBuf are the persistent backing arrays devex/cand are
	// resliced from: init reuses their capacity across solves (a reused
	// pricer reaches zero steady-state allocations), while devex/cand keep
	// their nil-means-rule-keeps-none semantics.
	devexBuf []float64
	candBuf  []int
}

// init resolves nothing (the caller passes a resolved mode) and sizes the
// rule's state: unit weights for devex/partial, an empty candidate list
// at full capacity for partial. Re-initialising a pricer reuses its
// backing arrays.
func (pp *pricer) init(mode PricingMode, rw int) {
	pp.mode = mode
	pp.rw = rw
	pp.cursor = 0
	pp.devex = nil
	pp.cand = nil
	if mode == PricingDevex || mode == PricingPartial {
		if cap(pp.devexBuf) < rw {
			pp.devexBuf = make([]float64, rw)
		}
		pp.devex = pp.devexBuf[:rw]
		pp.resetWeights()
	}
	if mode == PricingPartial {
		if cap(pp.candBuf) < partialListCap {
			pp.candBuf = make([]int, 0, partialListCap)
		}
		pp.cand = pp.candBuf[:0]
	}
}

// resetWeights restarts the devex reference framework at the current
// basis: every weight back to 1. Called on refactorisation (the rebuilt
// representation is the natural new reference), on the Bland fallback,
// and on weight overflow. No-op when the rule keeps no weights.
//
//lint:hotpath runs inside the pivot loop via refactorize; pinned to zero allocations
func (pp *pricer) resetWeights() {
	for j := range pp.devex {
		pp.devex[j] = 1
	}
	pp.wmax = 1
}

// devexUpdateFull applies the reference-framework recurrence over the
// whole priced column space after a basis change: alpha is the full pivot
// row (α_j for j in [0, rw)), apiv the pivot element α_q, pc the entering
// column and leave the leaving column (−1 when the leaver carries no
// weight, i.e. an artificial).
//
//lint:hotpath per-pivot devex weight update; pinned to zero allocations
func (pp *pricer) devexUpdateFull(alpha []float64, apiv float64, pc, leave int) {
	if apiv == 0 {
		return
	}
	ref := pp.devex[pc] / (apiv * apiv)
	for j := 0; j < pp.rw; j++ {
		if j == pc {
			continue
		}
		aj := alpha[j]
		if aj == 0 {
			continue
		}
		if wj := aj * aj * ref; wj > pp.devex[j] {
			pp.devex[j] = wj
			if wj > pp.wmax {
				pp.wmax = wj
			}
		}
	}
	pp.sealUpdate(ref, pc, leave)
}

// bumpWeight applies the recurrence to a single column given its pivot-
// row coefficient α_j and the precomputed reference factor w_q/α_q²;
// partial pricing restricts the update to its candidate list.
//
//lint:hotpath per-candidate devex weight update; pinned to zero allocations
func (pp *pricer) bumpWeight(j int, aj, ref float64) {
	if wj := aj * aj * ref; wj > pp.devex[j] {
		pp.devex[j] = wj
		if wj > pp.wmax {
			pp.wmax = wj
		}
	}
}

// sealUpdate finishes a weight update: the entering column's weight
// re-seeds at 1 (it is basic now; the value is only read again after it
// leaves), the leaving column inherits max(w_q/α_q², 1), and an
// overflowed framework restarts.
//
//lint:hotpath per-pivot weight-update epilogue; pinned to zero allocations
func (pp *pricer) sealUpdate(ref float64, pc, leave int) {
	pp.devex[pc] = 1
	if leave >= 0 && leave < pp.rw {
		wl := ref
		if wl < 1 {
			wl = 1
		}
		pp.devex[leave] = wl
		if wl > pp.wmax {
			pp.wmax = wl
		}
	}
	if pp.wmax > devexWeightCap {
		pp.resetWeights()
	}
}

// snapshotWeights copies the devex weights for a Basis snapshot (nil when
// the rule keeps none): [0, n) structural, [n, rw) logicals by row.
func (pp *pricer) snapshotWeights() []float64 {
	if pp.devex == nil {
		return nil
	}
	return append([]float64(nil), pp.devex...)
}

// inheritWeights adopts a parent snapshot's weights into a child solver
// over the same n structural variables but a possibly larger row count:
// the structural segment maps index-for-index, the logical segment
// row-for-row over the shared row prefix, and appended rows' logicals
// keep their unit weight. No-op when either side keeps no weights; a
// later refactorisation (the warm-start fallback path included) resets
// the inherited weights like any others.
func (pp *pricer) inheritWeights(w []float64, n int) {
	if pp.devex == nil || w == nil || len(w) < n {
		return
	}
	copy(pp.devex[:n], w[:n])
	shared := len(w) - n // parent logical count
	if shared > pp.rw-n {
		shared = pp.rw - n
	}
	copy(pp.devex[n:n+shared], w[n:n+shared])
	pp.wmax = 1
	for _, wj := range pp.devex {
		if wj > pp.wmax {
			pp.wmax = wj
		}
	}
	if pp.wmax > devexWeightCap {
		pp.resetWeights()
	}
}
