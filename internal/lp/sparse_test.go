package lp

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// TestDedupRows: the shared flattener must accumulate repeated Terms, sort
// columns within a row, and drop exact cancellations.
func TestDedupRows(t *testing.T) {
	p := NewProblem(4)
	p.AddConstraint([]Term{{Var: 3, Coef: 2}, {Var: 1, Coef: 1}, {Var: 3, Coef: 0.5}}, LE, 7)
	p.AddConstraint([]Term{{Var: 2, Coef: 1}, {Var: 2, Coef: -1}, {Var: 0, Coef: 4}}, GE, -1)
	p.AddConstraint(nil, EQ, 0)

	sr := dedupRows(p)
	if got := sr.nnz(); got != 3 {
		t.Fatalf("nnz = %d, want 3 (duplicates merged, cancellation dropped)", got)
	}
	cols, vals := sr.row(0)
	//lint:ignore floatcmp dedup sums exact binary fractions (1, 2+0.5); bit-exactness is the contract
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 3 || vals[0] != 1 || vals[1] != 2.5 {
		t.Errorf("row 0 = %v %v, want [1 3] [1 2.5]", cols, vals)
	}
	cols, vals = sr.row(1)
	//lint:ignore floatcmp value copied verbatim from the input Term; identity is exact
	if len(cols) != 1 || cols[0] != 0 || vals[0] != 4 {
		t.Errorf("row 1 = %v %v, want [0] [4]", cols, vals)
	}
	if cols, _ := sr.row(2); len(cols) != 0 {
		t.Errorf("row 2 nonzeros = %v, want empty", cols)
	}
	//lint:ignore floatcmp rhs copied verbatim from AddConstraint; identity is exact
	if sr.sense[1] != GE || sr.rhs[1] != -1 {
		t.Errorf("row 1 sense/rhs = %v/%g, want >=/-1", sr.sense[1], sr.rhs[1])
	}
}

// TestCSMatrixViewsAgree: the CSR and CSC views must index identical
// values, and the binary-search accessor must match both.
func TestCSMatrixViewsAgree(t *testing.T) {
	s := rng.New(11, "lp-csmatrix")
	g := generateFeasibleLP(s, 6, 9)
	sr := dedupRows(g.p)
	sp := newCSMatrix(g.p.NumConstraints(), g.p.NumVars(), sr.ptr, sr.idx, sr.val)

	dense := make([]float64, sp.m*sp.n)
	for i := 0; i < sp.m; i++ {
		cols, vals := sr.row(i)
		for k, v := range cols {
			dense[i*sp.n+v] = vals[k]
		}
	}
	for j := 0; j < sp.n; j++ {
		for k := sp.colPtr[j]; k < sp.colPtr[j+1]; k++ {
			//lint:ignore floatcmp the transpose copies values bit-for-bit; identity is exact
			if got, want := sp.colVal[k], dense[sp.rowIdx[k]*sp.n+j]; got != want {
				t.Fatalf("CSC (%d,%d) = %g, dense %g", sp.rowIdx[k], j, got, want)
			}
		}
	}
	for i := 0; i < sp.m; i++ {
		for j := 0; j < sp.n; j++ {
			//lint:ignore floatcmp at() returns a stored value or exact zero; identity is exact
			if got, want := sp.at(i, j), dense[i*sp.n+j]; got != want {
				t.Fatalf("at(%d,%d) = %g, dense %g", i, j, got, want)
			}
		}
	}
}

// TestAutoSparseSelection pins the SparseAuto decision rule and checks the
// resolved representation inside newRev for all three modes.
func TestAutoSparseSelection(t *testing.T) {
	if autoSparse(sparseAutoRows-1, 1000, 10) {
		t.Error("autoSparse accepted a problem below the row threshold")
	}
	if !autoSparse(sparseAutoRows, 1000, 10) {
		t.Error("autoSparse rejected a large sparse problem")
	}
	if autoSparse(1000, 10, 10*1000/2) {
		t.Error("autoSparse accepted a half-dense problem")
	}

	small := NewProblem(2)
	small.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 1)
	if tr := newRev(small, Options{}); tr.sp != nil || tr.a == nil {
		t.Error("auto mode picked sparse for a tiny problem")
	}
	if tr := newRev(small, Options{Sparse: SparseOn}); tr.sp == nil || tr.a != nil {
		t.Error("SparseOn did not force the sparse representation")
	}

	// A big diagonal problem is far below the density threshold.
	big := NewProblem(sparseAutoRows)
	for v := 0; v < sparseAutoRows; v++ {
		big.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, 1)
	}
	if tr := newRev(big, Options{}); tr.sp == nil {
		t.Error("auto mode picked dense for a large diagonal problem")
	}
	if tr := newRev(big, Options{Sparse: SparseOff}); tr.sp != nil {
		t.Error("SparseOff did not force the dense representation")
	}
}

// solveForced is a test helper running SolveBasis under a forced
// representation.
func solveForced(t *testing.T, p *Problem, mode SparseMode) (*Solution, *Basis) {
	t.Helper()
	sol, bs, err := SolveBasis(p, Options{Sparse: mode})
	if err != nil {
		t.Fatalf("SolveBasis(%v): %v", mode, err)
	}
	return sol, bs
}

// assertSameSolution checks status, objective and the full solution vector
// within the repo-wide assertion tolerance.
func assertSameSolution(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("%s: status %v != %v", label, a.Status, b.Status)
	}
	if a.Status != Optimal {
		return
	}
	if !numeric.AlmostEqual(a.Objective, b.Objective) {
		t.Fatalf("%s: objective %.17g != %.17g", label, a.Objective, b.Objective)
	}
	for v := range a.X {
		if !numeric.AlmostEqual(a.X[v], b.X[v]) {
			t.Fatalf("%s: x[%d] %.17g != %.17g", label, v, a.X[v], b.X[v])
		}
	}
}

// TestSparseMatchesDenseBasics: forced sparse and forced dense must agree
// on small problems covering every sense, negative RHS, infeasibility and
// unboundedness.
func TestSparseMatchesDenseBasics(t *testing.T) {
	build := func() []*Problem {
		textbook := NewProblem(2)
		textbook.SetObjCoef(0, 3)
		textbook.SetObjCoef(1, 5)
		textbook.AddConstraint([]Term{{0, 1}}, LE, 4)
		textbook.AddConstraint([]Term{{1, 2}}, LE, 12)
		textbook.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)

		mixed := NewProblem(3)
		mixed.SetObjCoef(0, 2)
		mixed.SetObjCoef(1, -1)
		mixed.SetObjCoef(2, 3)
		mixed.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, LE, 10)
		mixed.AddConstraint([]Term{{0, 1}, {2, -1}}, GE, 1)
		mixed.AddConstraint([]Term{{1, 1}, {2, 2}}, EQ, 4)

		negRHS := NewProblem(1)
		negRHS.SetObjCoef(0, 1)
		negRHS.AddConstraint([]Term{{0, -1}}, LE, -3)
		negRHS.AddConstraint([]Term{{0, 1}}, LE, 7)

		infeasible := NewProblem(1)
		infeasible.SetObjCoef(0, 1)
		infeasible.AddConstraint([]Term{{0, 1}}, GE, 5)
		infeasible.AddConstraint([]Term{{0, 1}}, LE, 2)

		unbounded := NewProblem(2)
		unbounded.SetObjCoef(0, 1)
		unbounded.AddConstraint([]Term{{1, 1}}, LE, 3)

		return []*Problem{textbook, mixed, negRHS, infeasible, unbounded}
	}
	names := []string{"textbook", "mixed-senses", "negative-rhs", "infeasible", "unbounded"}
	for i, p := range build() {
		dense, _ := solveForced(t, p, SparseOff)
		sparse, _ := solveForced(t, p, SparseOn)
		assertSameSolution(t, names[i], dense, sparse)
	}
}

// TestSparseWarmStart: the warm-start pipeline (basis export, O(m²)
// inverse inheritance, dual repair) must work identically under the sparse
// representation, including chained bound rows.
func TestSparseWarmStart(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	_, bs := solveForced(t, p, SparseOn)

	child := p.Clone()
	child.AddConstraint([]Term{{1, 1}}, LE, 5)
	warm, wbs, err := SolveFrom(child, bs, Options{Sparse: SparseOn})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-33) > 1e-7 {
		t.Fatalf("warm = %v/%g, want optimal/33", warm.Status, warm.Objective)
	}

	deeper := child.Clone()
	deeper.AddConstraint([]Term{{0, 1}}, GE, 3)
	warm2, _, err := SolveFrom(deeper, wbs, Options{Sparse: SparseOn})
	if err != nil {
		t.Fatal(err)
	}
	cold2, _ := solveForced(t, deeper, SparseOff)
	assertSameSolution(t, "chained", cold2, warm2)
}

// TestSparseLargeStaircase: a DSCT-shaped instance (deadline staircase per
// machine plus a coupling energy row) big enough for SparseAuto to pick
// the sparse path; the three cores must agree.
func TestSparseLargeStaircase(t *testing.T) {
	g := generateStaircaseLP(rng.New(5, "lp-staircase-test"), 40, 3)
	tab, err := Solve(g.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto := newRev(g.p, Options{})
	if auto.sp == nil {
		t.Fatalf("staircase instance (m=%d n=%d) not auto-detected as sparse", auto.m, auto.n)
	}
	dense, _ := solveForced(t, g.p, SparseOff)
	sparse, _ := solveForced(t, g.p, SparseOn)
	if tab.Status != Optimal {
		t.Fatalf("tableau status %v", tab.Status)
	}
	assertSameSolution(t, "tableau-vs-sparse", tab, sparse)
	assertSameSolution(t, "dense-vs-sparse", dense, sparse)
	want := g.feasibleValue()
	if sparse.Objective < want-1e-6*(1+math.Abs(want)) {
		t.Errorf("sparse objective %g below feasible value %g", sparse.Objective, want)
	}
}

// TestAddConstraintAccumulatesDuplicates: AddConstraint documents that
// repeated variables accumulate. Assert the promise holds identically
// under the tableau, the dense revised and the sparse revised cores by
// comparing a duplicated-Term problem against its hand-merged twin.
func TestAddConstraintAccumulatesDuplicates(t *testing.T) {
	dup := NewProblem(3)
	merged := NewProblem(3)
	for v, c := range []float64{1, 2, 0.5} {
		dup.SetObjCoef(v, c)
		merged.SetObjCoef(v, c)
	}
	// 3x0 + 2x1 <= 12, written with x0 split into three pieces and a
	// cancelling x2 pair.
	dup.AddConstraint([]Term{
		{Var: 0, Coef: 1}, {Var: 1, Coef: 2}, {Var: 0, Coef: 1.5},
		{Var: 2, Coef: 4}, {Var: 0, Coef: 0.5}, {Var: 2, Coef: -4},
	}, LE, 12)
	merged.AddConstraint([]Term{{Var: 0, Coef: 3}, {Var: 1, Coef: 2}}, LE, 12)
	// x1 + x2 >= 2 with duplicated x2.
	dup.AddConstraint([]Term{{Var: 1, Coef: 0.25}, {Var: 2, Coef: 1}, {Var: 1, Coef: 0.75}}, GE, 2)
	merged.AddConstraint([]Term{{Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, GE, 2)
	// Boxes to keep the maximisation bounded.
	for v := 0; v < 3; v++ {
		dup.AddConstraint([]Term{{Var: v, Coef: 0.5}, {Var: v, Coef: 0.5}}, LE, 5)
		merged.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, 5)
	}

	tabDup, err := Solve(dup, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tabMerged, err := Solve(merged, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, "tableau", tabMerged, tabDup)

	for _, mode := range []SparseMode{SparseOff, SparseOn} {
		gotDup, _ := solveForced(t, dup, mode)
		gotMerged, _ := solveForced(t, merged, mode)
		assertSameSolution(t, "revised/"+mode.String()+"/dup-vs-merged", gotMerged, gotDup)
		assertSameSolution(t, "revised/"+mode.String()+"/vs-tableau", tabDup, gotDup)
	}
}

// TestDefaultMaxIters pins the documented pivot-budget default,
// 100·(rows+cols)+1000, for both cores (the Options doc used to claim a
// different formula).
func TestDefaultMaxIters(t *testing.T) {
	p := NewProblem(7)
	for i := 0; i < 5; i++ {
		p.AddConstraint([]Term{{Var: i, Coef: 1}}, LE, 1)
	}
	want := 100*(5+7) + 1000
	if got := newTableau(p, Options{}).iterLimit; got != want {
		t.Errorf("tableau default MaxIters = %d, want %d", got, want)
	}
	if got := newRev(p, Options{}).iterLimit; got != want {
		t.Errorf("revised default MaxIters = %d, want %d", got, want)
	}
	if got := newRev(p, Options{MaxIters: 17}).iterLimit; got != 17 {
		t.Errorf("explicit MaxIters = %d, want 17", got)
	}
}
