package lp

import (
	"math"
	"time"
)

const (
	defaultTol = 1e-9
	// feasTol is the (post-equilibration) tolerance used to decide phase-1
	// feasibility and to report residual artificial infeasibility.
	feasTol = 1e-7
	// degenerateRunLimit is the number of consecutive degenerate pivots
	// after which pricing switches to Bland's rule (which cannot cycle).
	degenerateRunLimit = 64
)

// tableau is the dense bounded-variable simplex working state. It shares
// the revised core's canonical column layout — n structural columns with
// the Problem's boxes, one logical per row (slack of a <= row after
// orienting >= rows; fixed at [0, 0] for == rows) and one artificial per
// row ([0, +inf) in phase 1, frozen to [0, 0] afterwards) — but maintains
// the whole matrix as B⁻¹A via full elimination pivots. b holds the
// current basic values; because nonbasic columns rest at bounds rather
// than zero, b is updated by explicit value displacement in pivotAt and
// flipCol instead of being eliminated along with the matrix.
type tableau struct {
	m, n      int       // constraint rows, structural variables
	width     int       // n + 2m
	artBase   int       // n + m: first artificial column index
	a         []float64 // m * width, row-major
	b         []float64 // m; current basic values
	basis     []int     // basis[i] = column basic in row i
	objRow    []float64 // reduced costs, length width
	lo, hi    []float64 // width; column boxes
	atUpper   []bool    // width; nonbasic column rests at hi instead of lo
	tol       float64
	iterLimit int
	deadline  time.Time
	iters     int
	blandMode bool
	degenRun  int
	nArt      int // rows whose artificial starts basic (phase 1 needed iff > 0)

	// pricing is the resolved entering rule (never PricingAuto); pp holds
	// its state. The tableau maintains every reduced cost each pivot
	// anyway, so devex here buys fewer pivots and partial pricing only a
	// cheaper scan — but both run so the three cores stay A/B-comparable
	// under one Options.Pricing switch.
	pricing PricingMode
	pp      pricer

	// Normalisation metadata per original row, for dual recovery.
	rowScale []float64 // equilibration divisor applied to the row
	rowNeg   []float64 // ±1: total negation factor applied to the stored row

	// noEscape marks a Workspace solve whose Solution may alias
	// tableau-owned output buffers (xOut, solOut; see workspace.go's
	// aliasing contract). The package-level paths leave it false and
	// allocate fresh output per solve.
	noEscape bool

	// Construction and phase-cost scratch, reused across init calls on the
	// same tableau (Workspace mode); see the rev struct for the pattern.
	ds      dedupScratch
	srStore sparseRows
	valsBuf []float64
	costBuf []float64

	// Output buffers for noEscape solves; Reset relinquishes them.
	xOut   []float64
	solOut *Solution
}

// Solve runs two-phase bounded-variable primal simplex on p, through the
// presolve/postsolve layer when Options.Presolve selects it.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if ps := presolveFor(p, opts, false); ps != nil {
		if ps.status == Infeasible {
			return &Solution{Status: Infeasible}, nil
		}
		if ps.reduced == nil {
			return ps.directSolution(), nil
		}
		opts.Presolve = PresolveOff
		sol, err := solveTableau(ps.reduced, opts)
		if err != nil {
			return nil, err
		}
		return ps.mapSolution(sol), nil
	}
	return solveTableau(p, opts)
}

// solveTableau is the presolve-free tableau solve.
func solveTableau(p *Problem, opts Options) (*Solution, error) {
	t := newTableau(p, opts)
	return t.solve(p)
}

// solve runs the two phases on an initialised tableau. The package-level
// path calls it on a fresh tableau; a Workspace calls it on its persistent
// one (noEscape), where the phase cost vectors and the output Solution come
// from reused buffers.
func (t *tableau) solve(p *Problem) (*Solution, error) {
	// Phase 1: drive artificials to zero.
	if t.nArt > 0 {
		t.costBuf = grown(t.costBuf, t.width)
		phase1 := t.costBuf
		for c := t.artBase; c < t.width; c++ {
			phase1[c] = -1
		}
		t.setObjective(phase1)
		status := t.iterate()
		switch status {
		case IterLimit, TimeLimit:
			return t.bareSolution(status), nil
		case Unbounded:
			// Phase 1 is bounded by construction; treat as numerical failure.
			return t.bareSolution(Infeasible), nil
		}
		if t.artificialResidual() > feasTol {
			return t.bareSolution(Infeasible), nil
		}
		t.driveOutArtificials()
	}
	t.freezeArtificials()

	// Phase 2: original objective over structural variables.
	t.costBuf = grown(t.costBuf, t.width)
	phase2 := t.costBuf
	copy(phase2, p.obj)
	t.setObjective(phase2)
	status := t.iterate()

	sol := t.bareSolution(status)
	if status == Optimal || status == IterLimit || status == TimeLimit {
		sol.X = t.extract(p)
		var obj float64
		for v, c := range p.obj {
			obj += c * sol.X[v]
		}
		sol.Objective = obj
	}
	return sol, nil
}

// bareSolution returns the Solution shell for this solve: the
// tableau-owned output struct in noEscape mode (aliased per the Workspace
// contract, lazily allocated so Reset can relinquish it), a fresh one
// otherwise.
func (t *tableau) bareSolution(status Status) *Solution {
	if t.noEscape {
		if t.solOut == nil {
			t.solOut = new(Solution)
		}
		*t.solOut = Solution{Status: status, Iterations: t.iters}
		return t.solOut
	}
	return &Solution{Status: status, Iterations: t.iters}
}

// newTableau builds the canonical-form tableau: >= rows negated to <=,
// rows equilibrated, one logical and one artificial column per row. Rows
// are flattened once through the shared sparse builder (deduplicating
// repeated Terms, see sparse.go), so construction is O(nnz) plus the
// unavoidable dense tableau allocation.
//
// The initial nonbasic point is every structural column at its lower
// bound, leaving residual q = rhs − A·lo for the basic column of each row.
// Rows with q >= 0 and a free logical start with the logical basic at q;
// the rest (equalities, or q < 0) are physically negated so that q >= 0
// and start with a +1 artificial basic — which makes the initial basis an
// identity over the chosen columns and the initial tableau equal to A.
func newTableau(p *Problem, opts Options) *tableau {
	t := &tableau{}
	t.init(p, opts)
	return t
}

// init (re)builds the tableau for p; see newTableau for the construction
// semantics. Every buffer is sized with grown/taken, so re-initialising a
// tableau whose buffers have already grown to this shape allocates nothing
// (the Workspace zero-allocation path); all per-solve state is reset here,
// noEscape is the caller's and preserved.
func (t *tableau) init(p *Problem, opts Options) {
	m := p.NumConstraints()
	n := p.nVars
	width := n + 2*m
	t.m, t.n = m, n
	t.width = width
	t.artBase = n + m
	t.a = grown(t.a, m*width)
	t.b = grown(t.b, m)
	t.basis = grown(t.basis, m)
	t.lo = grown(t.lo, width)
	t.hi = grown(t.hi, width)
	t.atUpper = grown(t.atUpper, width)
	t.rowScale = grown(t.rowScale, m)
	t.rowNeg = grown(t.rowNeg, m)
	t.iters = 0
	t.blandMode = false
	t.degenRun = 0
	t.nArt = 0
	t.tol = opts.Tol
	if t.tol == 0 {
		t.tol = defaultTol
	}
	t.iterLimit = opts.MaxIters
	if t.iterLimit == 0 {
		t.iterLimit = 100*(m+n) + 1000
	}
	t.deadline = opts.Deadline
	t.pricing = resolvePricing(opts.Pricing, t.artBase)
	t.pp.init(t.pricing, t.artBase)

	inf := math.Inf(1)
	for v := 0; v < n; v++ {
		t.lo[v], t.hi[v] = p.boundsAt(v)
	}
	for i := 0; i < m; i++ {
		t.hi[t.artBase+i] = inf // artificials: [0, +inf) until frozen
	}

	sr := t.ds.flatten(p, &t.srStore)
	t.valsBuf = taken(t.valsBuf, sr.val)
	vals := t.valsBuf
	for i := 0; i < m; i++ {
		cols := sr.idx[sr.ptr[i]:sr.ptr[i+1]]
		seg := vals[sr.ptr[i]:sr.ptr[i+1]]
		sense, rhs := sr.sense[i], sr.rhs[i]
		neg := 1.0
		if sense == GE {
			neg = -1
			for k := range seg {
				seg[k] = -seg[k]
			}
			rhs = -rhs
			sense = LE
		}
		// Equilibrate: scale the row so its largest structural coefficient
		// has magnitude 1 (keeps pivot tolerances meaningful across rows
		// mixing GFLOP/s-scale and accuracy-slope-scale data).
		scale := 0.0
		for _, c := range seg {
			if a := math.Abs(c); a > scale {
				scale = a
			}
		}
		if scale > 0 {
			inv := 1 / scale
			for k := range seg {
				seg[k] *= inv
			}
			rhs *= inv
		} else {
			scale = 1
		}
		if sense == EQ {
			t.hi[n+i] = 0 // equality logical: fixed at [0, 0]
		} else {
			t.hi[n+i] = inf
		}
		// Residual of the row at the initial nonbasic point (structural at
		// lower bounds, logicals/artificials at zero).
		q := rhs
		for k, v := range cols {
			q -= seg[k] * t.lo[v]
		}
		logCoef := 1.0
		if q < 0 {
			// Physically negate the stored row so the starting basic value
			// is |q| >= 0; the logical keeps its box but flips coefficient.
			neg = -neg
			for k := range seg {
				seg[k] = -seg[k]
			}
			q = -q
			logCoef = -1
		}
		row := t.a[i*width : (i+1)*width]
		for k, v := range cols {
			row[v] = seg[k]
		}
		row[n+i] = logCoef
		row[t.artBase+i] = 1
		t.b[i] = q
		t.rowScale[i] = scale
		t.rowNeg[i] = neg
		if sense == EQ || logCoef < 0 {
			t.basis[i] = t.artBase + i
			t.nArt++
		} else {
			t.basis[i] = n + i
		}
	}
}

// nbVal returns the current value of nonbasic column j: the bound it
// rests at.
func (t *tableau) nbVal(j int) float64 {
	if t.atUpper[j] {
		return t.hi[j]
	}
	return t.lo[j]
}

// snapB snaps roundoff residue just outside the basic column's box in row
// i back onto the bound.
func (t *tableau) snapB(i int) {
	bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
	if t.b[i] < bl && t.b[i] > bl-t.tol {
		t.b[i] = bl
	} else if t.b[i] > bh && t.b[i] < bh+t.tol {
		t.b[i] = bh
	}
}

// freezeArtificials clamps every artificial column to [0, 0] after phase 1.
func (t *tableau) freezeArtificials() {
	for c := t.artBase; c < t.width; c++ {
		t.hi[c] = 0
	}
}

// setObjective installs cost vector c (length width) as the current reduced
// cost row, pricing out the current basis.
func (t *tableau) setObjective(c []float64) {
	t.objRow = append(t.objRow[:0], c...)
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i*t.width : (i+1)*t.width]
		for j := 0; j < t.width; j++ {
			t.objRow[j] -= cb * row[j]
		}
	}
	// Reduced costs of basic columns are exactly zero by definition; zap
	// rounding residue so pricing never re-selects them.
	for i := 0; i < t.m; i++ {
		t.objRow[t.basis[i]] = 0
	}
	t.blandMode = false
	t.degenRun = 0
}

// iterate runs bounded-variable simplex pivots until optimality or a
// limit. Artificial columns never enter in either phase; fixed columns
// (lo == hi: equality logicals, frozen artificials, branch-fixed
// variables) are never eligible either. Pricing is sign-aware: a column
// at its lower bound enters on a positive reduced cost (moving up), one
// at its upper bound on a negative reduced cost (moving down).
func (t *tableau) iterate() Status {
	for {
		if t.iters >= t.iterLimit {
			return IterLimit
		}
		//lint:ignore wallclock sanctioned deadline probe, amortised to once per 128 pivots
		if t.iters%128 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return TimeLimit
		}

		// Entering column. Bland takes the first eligible column; Dantzig
		// the largest sign-aware reduced cost; devex/partial score d²/w
		// against the reference weights (see priceWeighted).
		pc := -1
		sigma := 1.0
		switch {
		case t.blandMode:
			for j := 0; j < t.artBase; j++ {
				if t.hi[j] <= t.lo[j] {
					continue
				}
				if t.atUpper[j] {
					if t.objRow[j] < -t.tol {
						pc = j
						break
					}
				} else if t.objRow[j] > t.tol {
					pc = j
					break
				}
			}
		case t.pricing == PricingDevex || t.pricing == PricingPartial:
			pc = t.priceWeighted()
		default: // Dantzig
			best := t.tol
			for j := 0; j < t.artBase; j++ {
				if t.hi[j] <= t.lo[j] {
					continue
				}
				score := t.objRow[j]
				if t.atUpper[j] {
					score = -score
				}
				if score > best {
					best = score
					pc = j
				}
			}
		}
		if pc == -1 {
			return Optimal
		}
		if t.atUpper[pc] {
			sigma = -1
		}

		// Bounded ratio test: the entering column moves by sigma·step; each
		// basic value i changes by −step·(sigma·a[i][pc]), so a positive
		// effective direction drives it toward its lower bound and a
		// negative one toward its (finite) upper bound. The entering
		// column's own span seeds the minimum — if nothing binds earlier
		// the iteration is a bound flip, no pivot. Ties prefer a row pivot
		// and then the lowest basic column index.
		pr := -1
		leaveToUpper := false
		minRatio := t.hi[pc] - t.lo[pc] // +inf when hi is
		for i := 0; i < t.m; i++ {
			wi := sigma * t.a[i*t.width+pc]
			bl, bh := t.lo[t.basis[i]], t.hi[t.basis[i]]
			var ratio float64
			var toUpper bool
			if wi > t.tol {
				ratio = (t.b[i] - bl) / wi
			} else if wi < -t.tol && !math.IsInf(bh, 1) {
				ratio = (bh - t.b[i]) / -wi
				toUpper = true
			} else {
				continue
			}
			if ratio < 0 {
				ratio = 0 // roundoff residue just outside the box
			}
			if ratio < minRatio-t.tol || (math.Abs(ratio-minRatio) <= t.tol && (pr == -1 || t.basis[i] < t.basis[pr])) {
				minRatio = ratio
				pr = i
				leaveToUpper = toUpper
			}
		}
		if pr == -1 {
			if math.IsInf(minRatio, 1) {
				return Unbounded
			}
			t.trackDegenerate(minRatio)
			t.flipCol(pc, sigma)
			t.iters++
			continue
		}
		t.trackDegenerate(minRatio)

		t.pivotAt(pr, pc, leaveToUpper)
		t.iters++
	}
}

// trackDegenerate switches to Bland's rule after a run of degenerate
// steps. Entering Bland mode abandons the devex reference framework —
// Bland's first-index scan never consults weights.
func (t *tableau) trackDegenerate(ratio float64) {
	if ratio <= t.tol {
		t.degenRun++
		if t.degenRun >= degenerateRunLimit && !t.blandMode {
			t.blandMode = true
			t.pp.resetWeights()
		}
	} else {
		t.degenRun = 0
	}
}

// priceWeighted chooses the entering column with devex scores d²/w over
// the maintained reduced-cost row: a full scan for PricingDevex, the
// candidate list plus rotating refill sections for PricingPartial. Unlike
// the revised core — where partial pricing skips computing most reduced
// costs entirely — the tableau's objRow is already up to date every
// pivot, so partial here only shortens the scan; it exists so all three
// cores answer to one Options.Pricing switch and the differential suite
// can pin their agreement.
//
//lint:hotpath per-iteration pricing scan; pinned to zero allocations
func (t *tableau) priceWeighted() int {
	best := 0.0
	pc := -1
	if t.pricing == PricingDevex {
		for j := 0; j < t.artBase; j++ {
			if t.hi[j] <= t.lo[j] {
				continue
			}
			deff := t.objRow[j]
			if t.atUpper[j] {
				deff = -deff
			}
			if deff <= t.tol {
				continue
			}
			if score := deff * deff / t.pp.devex[j]; score > best {
				best = score
				pc = j
			}
		}
		return pc
	}
	// Partial: re-score the surviving candidates, dropping unattractive
	// ones in place.
	keep := t.pp.cand[:0]
	for _, j := range t.pp.cand {
		if t.hi[j] <= t.lo[j] {
			continue
		}
		deff := t.objRow[j]
		if t.atUpper[j] {
			deff = -deff
		}
		if deff <= t.tol {
			continue
		}
		keep = append(keep, j)
		if score := deff * deff / t.pp.devex[j]; score > best {
			best = score
			pc = j
		}
	}
	t.pp.cand = keep
	if pc != -1 {
		return pc
	}
	// Refill from the rotating cursor; a full wrap finding nothing is the
	// optimality certificate (objRow is exact, no pivot intervened).
	start := t.pp.cursor
	scanned := 0
	for scanned < t.artBase {
		secEnd := scanned + partialSection
		if secEnd > t.artBase {
			secEnd = t.artBase
		}
		for ; scanned < secEnd; scanned++ {
			col := start + scanned
			if col >= t.artBase {
				col -= t.artBase
			}
			if t.hi[col] <= t.lo[col] {
				continue
			}
			deff := t.objRow[col]
			if t.atUpper[col] {
				deff = -deff
			}
			if deff <= t.tol {
				continue
			}
			if len(t.pp.cand) < partialListCap {
				t.pp.cand = append(t.pp.cand, col)
			}
			if score := deff * deff / t.pp.devex[col]; score > best {
				best = score
				pc = col
			}
		}
		if pc != -1 {
			break
		}
	}
	t.pp.cursor = start + scanned
	if t.pp.cursor >= t.artBase {
		t.pp.cursor -= t.artBase
	}
	return pc
}

// flipCol moves nonbasic column pc from its current bound to the opposite
// one; the basis (and therefore the tableau matrix) is unchanged, only the
// basic values shift along the column.
func (t *tableau) flipCol(pc int, sigma float64) {
	span := t.hi[pc] - t.lo[pc]
	for i := 0; i < t.m; i++ {
		if aij := t.a[i*t.width+pc]; aij != 0 {
			t.b[i] -= sigma * span * aij
			t.snapB(i)
		}
	}
	t.atUpper[pc] = !t.atUpper[pc]
}

// pivotAt performs a full tableau pivot on (pr, pc): basic values are
// displaced by the exact step that lands the leaving column on the bound
// the ratio test selected, then the matrix and objective row are
// eliminated on the pivot column. b is never eliminated — with nonbasic
// columns resting at bounds it holds values, not B⁻¹rhs.
func (t *tableau) pivotAt(pr, pc int, leaveToUpper bool) {
	w := t.width
	prow := t.a[pr*w : (pr+1)*w]
	piv := prow[pc]

	// Devex weight update, against the pre-elimination pivot row (which
	// in the tableau frame is exactly α = e_prᵀB⁻¹A). The tableau pays a
	// full elimination pass per pivot anyway, so the full-row update is
	// used for partial pricing too.
	if t.pp.devex != nil && !t.blandMode {
		wleave := t.basis[pr]
		if wleave >= t.artBase {
			wleave = -1 // artificial: carries no weight
		}
		t.pp.devexUpdateFull(prow, piv, pc, wleave)
	}

	leave := t.basis[pr]
	leaveVal := t.lo[leave]
	if leaveToUpper {
		leaveVal = t.hi[leave]
	}
	// Entering displacement that lands the leaving column on leaveVal.
	delta := (t.b[pr] - leaveVal) / piv
	for i := 0; i < t.m; i++ {
		if i == pr {
			continue
		}
		if aij := t.a[i*w+pc]; aij != 0 {
			t.b[i] -= delta * aij
			t.snapB(i)
		}
	}
	enterVal := t.nbVal(pc) + delta
	t.atUpper[leave] = leaveToUpper
	t.atUpper[pc] = false

	inv := 1 / piv
	for j := range prow {
		prow[j] *= inv
	}
	prow[pc] = 1 // exact

	for i := 0; i < t.m; i++ {
		if i == pr {
			continue
		}
		row := t.a[i*w : (i+1)*w]
		f := row[pc]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[pc] = 0 // exact
	}
	if f := t.objRow[pc]; f != 0 {
		for j := range t.objRow {
			t.objRow[j] -= f * prow[j]
		}
		t.objRow[pc] = 0
	}
	t.basis[pr] = pc
	t.b[pr] = enterVal
	t.snapB(pr)
}

// artificialResidual returns the total value of basic artificial variables.
func (t *tableau) artificialResidual() float64 {
	var s float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artBase {
			s += math.Abs(t.b[i])
		}
	}
	return s
}

// driveOutArtificials pivots basic artificials (at value zero after a
// feasible phase 1) out of the basis wherever a usable pivot exists. Rows
// with no usable pivot are redundant and stay inert: their artificial is
// frozen to [0, 0] after phase 1, and every other entry of the row is
// (numerically) zero, so later pivots leave them untouched.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		row := t.a[i*t.width : (i+1)*t.width]
		for j := 0; j < t.artBase; j++ {
			if t.hi[j] <= t.lo[j] {
				continue // fixed column cannot replace the artificial
			}
			if math.Abs(row[j]) > t.tol*100 {
				t.pivotAt(i, j, false)
				break
			}
		}
	}
}

// extract returns the structural solution vector of the current basis:
// nonbasic variables at their recorded bound, basic values with
// just-outside-the-box roundoff snapped onto the violated bound.
func (t *tableau) extract(p *Problem) []float64 {
	var x []float64
	if t.noEscape {
		t.xOut = grown(t.xOut, p.nVars)
		x = t.xOut
	} else {
		x = make([]float64, p.nVars)
	}
	for v := 0; v < p.nVars; v++ {
		x[v] = t.nbVal(v)
	}
	for i := 0; i < t.m; i++ {
		if v := t.basis[i]; v < p.nVars {
			val := t.b[i]
			if bl := t.lo[v]; val < bl && val > bl-t.tol*100 {
				val = bl
			} else if bh := t.hi[v]; val > bh && val < bh+t.tol*100 {
				val = bh
			}
			x[v] = val
		}
	}
	return x
}
