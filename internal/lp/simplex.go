package lp

import (
	"math"
	"time"
)

const (
	defaultTol = 1e-9
	// feasTol is the (post-equilibration) tolerance used to decide phase-1
	// feasibility and to report residual artificial infeasibility.
	feasTol = 1e-7
	// degenerateRunLimit is the number of consecutive degenerate pivots
	// after which pricing switches to Bland's rule (which cannot cycle).
	degenerateRunLimit = 64
)

// tableau is the dense simplex working state.
type tableau struct {
	m, n      int // constraint rows, structural variables
	nSlack    int
	nArt      int
	width     int       // n + nSlack + nArt
	a         []float64 // m * width, row-major
	b         []float64 // m
	basis     []int     // basis[i] = column basic in row i
	objRow    []float64 // reduced costs, length width
	artBase   int       // first artificial column index
	tol       float64
	iterLimit int
	deadline  time.Time
	iters     int
	blandMode bool
	degenRun  int

	// Normalisation metadata per original row, for dual recovery.
	rowScale   []float64 // equilibration divisor applied to the row
	rowFlipped []bool    // whether the row was negated (RHS < 0)
	rowSense   []Sense   // sense after normalisation
}

// Solve runs two-phase primal simplex on p.
func Solve(p *Problem, opts Options) (*Solution, error) {
	t := newTableau(p, opts)

	// Phase 1: drive artificials to zero.
	if t.nArt > 0 {
		phase1 := make([]float64, t.width)
		for c := t.artBase; c < t.width; c++ {
			phase1[c] = -1
		}
		t.setObjective(phase1)
		status := t.iterate(true)
		switch status {
		case IterLimit, TimeLimit:
			return &Solution{Status: status, Iterations: t.iters}, nil
		case Unbounded:
			// Phase 1 is bounded by construction; treat as numerical failure.
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil
		}
		if t.artificialResidual() > feasTol {
			return &Solution{Status: Infeasible, Iterations: t.iters}, nil
		}
		t.driveOutArtificials()
	}

	// Phase 2: original objective over structural variables.
	phase2 := make([]float64, t.width)
	copy(phase2, p.obj)
	t.setObjective(phase2)
	status := t.iterate(false)

	sol := &Solution{Status: status, Iterations: t.iters}
	if status == Optimal || status == IterLimit || status == TimeLimit {
		sol.X = t.extract(p)
		var obj float64
		for v, c := range p.obj {
			obj += c * sol.X[v]
		}
		sol.Objective = obj
	}
	return sol, nil
}

// newTableau builds the standard-form tableau with slacks and artificials,
// after row equilibration. Rows are flattened once through the shared
// sparse builder (deduplicating repeated Terms, see sparse.go) and
// normalised over their nonzeros only, so construction is O(nnz) plus the
// unavoidable dense tableau allocation.
func newTableau(p *Problem, opts Options) *tableau {
	m := p.NumConstraints()
	n := p.nVars

	// Normalise rows to rhs >= 0 and count auxiliary columns.
	sr := dedupRows(p)
	vals := append([]float64(nil), sr.val...)
	rowScale := make([]float64, m)
	rowFlipped := make([]bool, m)
	rowSense := make([]Sense, m)
	rowRHS := make([]float64, m)
	nSlack, nArt := 0, 0
	for i := 0; i < m; i++ {
		seg := vals[sr.ptr[i]:sr.ptr[i+1]]
		sense, rhs := sr.sense[i], sr.rhs[i]
		if rhs < 0 {
			rowFlipped[i] = true
			for k := range seg {
				seg[k] = -seg[k]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		// Equilibrate: scale the row so its largest structural coefficient
		// has magnitude 1 (keeps pivot tolerances meaningful across rows
		// mixing GFLOP/s-scale and accuracy-slope-scale data).
		scale := 0.0
		for _, c := range seg {
			if a := math.Abs(c); a > scale {
				scale = a
			}
		}
		if scale > 0 {
			inv := 1 / scale
			for k := range seg {
				seg[k] *= inv
			}
			rhs *= inv
		} else {
			scale = 1
		}
		rowScale[i] = scale
		rowSense[i] = sense
		rowRHS[i] = rhs
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	width := n + nSlack + nArt
	t := &tableau{
		m: m, n: n,
		nSlack: nSlack, nArt: nArt,
		width:      width,
		a:          make([]float64, m*width),
		b:          make([]float64, m),
		basis:      make([]int, m),
		artBase:    n + nSlack,
		tol:        opts.Tol,
		rowScale:   rowScale,
		rowFlipped: rowFlipped,
		rowSense:   rowSense,
	}
	if t.tol == 0 {
		t.tol = defaultTol
	}
	t.iterLimit = opts.MaxIters
	if t.iterLimit == 0 {
		t.iterLimit = 100*(m+n) + 1000
	}
	t.deadline = opts.Deadline

	slack := n
	art := t.artBase
	for i := 0; i < m; i++ {
		row := t.a[i*width : (i+1)*width]
		cols := sr.idx[sr.ptr[i]:sr.ptr[i+1]]
		seg := vals[sr.ptr[i]:sr.ptr[i+1]]
		for k, v := range cols {
			row[v] = seg[k]
		}
		t.b[i] = rowRHS[i]
		switch rowSense[i] {
		case LE:
			row[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			row[slack] = -1
			slack++
			row[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			row[art] = 1
			t.basis[i] = art
			art++
		}
	}
	return t
}

// setObjective installs cost vector c (length width) as the current reduced
// cost row, pricing out the current basis.
func (t *tableau) setObjective(c []float64) {
	t.objRow = append(t.objRow[:0], c...)
	for i := 0; i < t.m; i++ {
		cb := c[t.basis[i]]
		if cb == 0 {
			continue
		}
		row := t.a[i*t.width : (i+1)*t.width]
		for j := 0; j < t.width; j++ {
			t.objRow[j] -= cb * row[j]
		}
	}
	// Reduced costs of basic columns are exactly zero by definition; zap
	// rounding residue so pricing never re-selects them.
	for i := 0; i < t.m; i++ {
		t.objRow[t.basis[i]] = 0
	}
	t.blandMode = false
	t.degenRun = 0
}

// iterate runs simplex pivots until optimality or a limit. phase1 allows
// artificial columns to stay basic but never lets them enter.
func (t *tableau) iterate(phase1 bool) Status {
	enterLimit := t.width
	if !phase1 {
		enterLimit = t.artBase // artificials may never re-enter in phase 2
	}
	for {
		if t.iters >= t.iterLimit {
			return IterLimit
		}
		//lint:ignore wallclock sanctioned deadline probe, amortised to once per 128 pivots
		if t.iters%128 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return TimeLimit
		}

		// Entering column.
		pc := -1
		if t.blandMode {
			for j := 0; j < enterLimit; j++ {
				if t.objRow[j] > t.tol {
					pc = j
					break
				}
			}
		} else {
			best := t.tol
			for j := 0; j < enterLimit; j++ {
				if t.objRow[j] > best {
					best = t.objRow[j]
					pc = j
				}
			}
		}
		if pc == -1 {
			return Optimal
		}

		// Ratio test.
		pr := -1
		minRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i*t.width+pc]
			if aij <= t.tol {
				continue
			}
			ratio := t.b[i] / aij
			if ratio < minRatio-t.tol || (math.Abs(ratio-minRatio) <= t.tol && (pr == -1 || t.basis[i] < t.basis[pr])) {
				minRatio = ratio
				pr = i
			}
		}
		if pr == -1 {
			return Unbounded
		}
		if minRatio <= t.tol {
			t.degenRun++
			if t.degenRun >= degenerateRunLimit {
				t.blandMode = true
			}
		} else {
			t.degenRun = 0
		}

		t.pivot(pr, pc)
		t.iters++
	}
}

// pivot performs a full tableau pivot on (pr, pc).
func (t *tableau) pivot(pr, pc int) {
	w := t.width
	prow := t.a[pr*w : (pr+1)*w]
	piv := prow[pc]
	inv := 1 / piv
	for j := range prow {
		prow[j] *= inv
	}
	prow[pc] = 1 // exact
	t.b[pr] *= inv

	for i := 0; i < t.m; i++ {
		if i == pr {
			continue
		}
		row := t.a[i*w : (i+1)*w]
		f := row[pc]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[pc] = 0 // exact
		t.b[i] -= f * t.b[pr]
		if t.b[i] < 0 && t.b[i] > -t.tol {
			t.b[i] = 0
		}
	}
	if f := t.objRow[pc]; f != 0 {
		for j := range t.objRow {
			t.objRow[j] -= f * prow[j]
		}
		t.objRow[pc] = 0
	}
	t.basis[pr] = pc
}

// artificialResidual returns the total value of basic artificial variables.
func (t *tableau) artificialResidual() float64 {
	var s float64
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.artBase {
			s += t.b[i]
		}
	}
	return s
}

// driveOutArtificials pivots basic artificials (at value zero after a
// feasible phase 1) out of the basis wherever a usable pivot exists. Rows
// with no usable pivot are redundant and stay inert: their artificial never
// re-enters pricing, and every other entry of the row is (numerically)
// zero, so later pivots leave them untouched.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artBase {
			continue
		}
		row := t.a[i*t.width : (i+1)*t.width]
		for j := 0; j < t.artBase; j++ {
			if math.Abs(row[j]) > t.tol*100 {
				t.pivot(i, j)
				break
			}
		}
	}
}

// extract returns the structural solution vector of the current basis.
func (t *tableau) extract(p *Problem) []float64 {
	x := make([]float64, p.nVars)
	for i := 0; i < t.m; i++ {
		if v := t.basis[i]; v < p.nVars {
			val := t.b[i]
			if val < 0 && val > -t.tol*100 {
				val = 0
			}
			x[v] = val
		}
	}
	return x
}
