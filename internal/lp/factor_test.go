package lp

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// Unit tests of the sparse LU kernel in isolation: factorisation of basis
// matrices given in CSC form, FTRAN/BTRAN against a dense reference,
// eta-file updates against re-factorisation, copy-on-write freezing,
// singularity detection, determinism — plus the pinned resolution of the
// factor-related Options defaults.

// denseFromCSC expands a CSC basis matrix into B[row][position].
func denseFromCSC(m int, colPtr, rowIdx []int, vals []float64) [][]float64 {
	B := make([][]float64, m)
	for i := range B {
		B[i] = make([]float64, m)
	}
	for j := 0; j < m; j++ {
		for k := colPtr[j]; k < colPtr[j+1]; k++ {
			B[rowIdx[k]][j] += vals[k]
		}
	}
	return B
}

// cscFromDense is the inverse of denseFromCSC (exact zeros are dropped).
func cscFromDense(B [][]float64) (colPtr, rowIdx []int, vals []float64) {
	m := len(B)
	colPtr = make([]int, m+1)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			if B[i][j] != 0 {
				rowIdx = append(rowIdx, i)
				vals = append(vals, B[i][j])
			}
		}
		colPtr[j+1] = len(rowIdx)
	}
	return colPtr, rowIdx, vals
}

// checkFactorAgainstDense verifies ftran and btran of f against the dense
// matrix B it claims to factorise: B·ftran(rhs) must reproduce rhs and
// btran(c)ᵀ·B must reproduce c, for unit vectors and a dense random vector.
func checkFactorAgainstDense(t *testing.T, f *luFactor, B [][]float64, s *rng.Source, relTol float64) {
	t.Helper()
	m := len(B)
	work := make([]float64, m)
	cw := make([]float64, m)
	out := make([]float64, m)
	scale := 1.0
	for i := range B {
		for j := range B[i] {
			if a := math.Abs(B[i][j]); a > scale {
				scale = a
			}
		}
	}
	tol := relTol * scale

	rhss := make([][]float64, 0, m+1)
	for i := 0; i < m; i++ {
		e := make([]float64, m)
		e[i] = 1
		rhss = append(rhss, e)
	}
	r := make([]float64, m)
	for i := range r {
		r[i] = s.Uniform(-3, 3)
	}
	rhss = append(rhss, r)

	for _, rhs := range rhss {
		f.ftran(rhs, out, work)
		for i := 0; i < m; i++ {
			var bx float64
			for j := 0; j < m; j++ {
				bx += B[i][j] * out[j]
			}
			if math.Abs(bx-rhs[i]) > tol {
				t.Fatalf("ftran: (B·x)[%d] = %g, want %g (err %g)", i, bx, rhs[i], bx-rhs[i])
			}
		}
		f.btran(rhs, out, work, cw)
		for j := 0; j < m; j++ {
			var yb float64
			for i := 0; i < m; i++ {
				yb += out[i] * B[i][j]
			}
			if math.Abs(yb-rhs[j]) > tol {
				t.Fatalf("btran: (yᵀB)[%d] = %g, want %g (err %g)", j, yb, rhs[j], yb-rhs[j])
			}
		}
	}
}

// randomSparseBasis builds a random nonsingular m×m matrix: a permuted
// dominant diagonal plus a sprinkling of off-diagonal entries.
func randomSparseBasis(s *rng.Source, m int, extra int) [][]float64 {
	B := make([][]float64, m)
	for i := range B {
		B[i] = make([]float64, m)
	}
	perm := s.Perm(m)
	for j := 0; j < m; j++ {
		B[perm[j]][j] = s.Uniform(2, 4) * float64(1-2*s.Intn(2))
	}
	for k := 0; k < extra; k++ {
		B[s.Intn(m)][s.Intn(m)] += s.Uniform(-1, 1)
	}
	return B
}

func TestFactorizeBasisIdentityAndPermutation(t *testing.T) {
	s := rng.New(11, "lp-factor-perm")
	for _, m := range []int{1, 2, 5, 17} {
		B := make([][]float64, m)
		for i := range B {
			B[i] = make([]float64, m)
		}
		perm := s.Perm(m)
		for j := 0; j < m; j++ {
			B[perm[j]][j] = 1
		}
		colPtr, rowIdx, vals := cscFromDense(B)
		f, err := factorizeBasis(m, colPtr, rowIdx, vals)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		// A permutation matrix factorises with empty L and diagonal U.
		if len(f.lIdx) != 0 || len(f.uIdx) != 0 {
			t.Fatalf("m=%d: permutation produced fill: nnz(L)=%d nnz(U offdiag)=%d",
				m, len(f.lIdx), len(f.uIdx))
		}
		checkFactorAgainstDense(t, f, B, s, 1e-9)
	}
}

func TestFactorizeBasisRandomSparse(t *testing.T) {
	s := rng.New(12, "lp-factor-rand")
	for trial := 0; trial < 40; trial++ {
		m := 1 + s.Intn(30)
		B := randomSparseBasis(s, m, s.Intn(3*m+1))
		colPtr, rowIdx, vals := cscFromDense(B)
		f, err := factorizeBasis(m, colPtr, rowIdx, vals)
		if err != nil {
			t.Fatalf("trial %d (m=%d): %v", trial, m, err)
		}
		checkFactorAgainstDense(t, f, B, s, 1e-9)
	}
}

func TestFactorizeBasisDense(t *testing.T) {
	// A fully dense matrix exercises the threshold-pivoting path where no
	// fill-free pivot exists.
	s := rng.New(13, "lp-factor-dense")
	m := 12
	B := make([][]float64, m)
	for i := range B {
		B[i] = make([]float64, m)
		for j := range B[i] {
			B[i][j] = s.Uniform(-1, 1)
		}
		B[i][i] += 4 // diagonally dominant, hence nonsingular
	}
	colPtr, rowIdx, vals := cscFromDense(B)
	f, err := factorizeBasis(m, colPtr, rowIdx, vals)
	if err != nil {
		t.Fatal(err)
	}
	checkFactorAgainstDense(t, f, B, s, 1e-9)
}

func TestFactorizeBasisEmpty(t *testing.T) {
	f, err := factorizeBasis(0, []int{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.m != 0 || f.nEtas() != 0 {
		t.Fatalf("empty factor: m=%d etas=%d", f.m, f.nEtas())
	}
	f.ftran(nil, nil, nil) // must be a no-op, not a panic
	f.btran(nil, nil, nil, nil)
}

func TestFactorizeBasisSingular(t *testing.T) {
	cases := []struct {
		name string
		B    [][]float64
	}{
		{"zero-column", [][]float64{{1, 0}, {0, 0}}},
		{"duplicate-columns", [][]float64{{1, 1}, {2, 2}}},
		{"tiny-pivot", [][]float64{{1e-13}}},
		{"rank-deficient-3x3", [][]float64{{1, 2, 3}, {2, 4, 6}, {1, 0, 1}}},
	}
	for _, tc := range cases {
		colPtr, rowIdx, vals := cscFromDense(tc.B)
		if _, err := factorizeBasis(len(tc.B), colPtr, rowIdx, vals); err != errSingular {
			t.Errorf("%s: err = %v, want errSingular", tc.name, err)
		}
	}
}

func TestFactorizeBasisDeterministic(t *testing.T) {
	s := rng.New(14, "lp-factor-det")
	for trial := 0; trial < 10; trial++ {
		m := 5 + s.Intn(20)
		B := randomSparseBasis(s, m, 2*m)
		colPtr, rowIdx, vals := cscFromDense(B)
		f1, err1 := factorizeBasis(m, colPtr, rowIdx, vals)
		f2, err2 := factorizeBasis(m, colPtr, rowIdx, vals)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: %v, %v", trial, err1, err2)
		}
		if !reflect.DeepEqual(f1, f2) {
			t.Fatalf("trial %d: repeated factorisation differs", trial)
		}
	}
}

func TestFactorEtaUpdates(t *testing.T) {
	// Replace basis columns one at a time through the eta file and verify
	// the updated factor tracks the updated dense matrix exactly as a fresh
	// factorisation would.
	s := rng.New(15, "lp-factor-eta")
	for trial := 0; trial < 10; trial++ {
		m := 5 + s.Intn(15)
		B := randomSparseBasis(s, m, 2*m)
		colPtr, rowIdx, vals := cscFromDense(B)
		f, err := factorizeBasis(m, colPtr, rowIdx, vals)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		work := make([]float64, m)
		w := make([]float64, m)
		for upd := 0; upd < 6; upd++ {
			r := s.Intn(m)
			// New column: a rescaling of the old column plus a small sparse
			// perturbation, so w = B⁻¹a ≈ α·e_r has a healthy diagonal and
			// the update chain stays well conditioned by construction.
			alpha := s.Uniform(1, 2)
			a := make([]float64, m)
			for i := range a {
				a[i] = alpha * B[i][r]
				if s.Intn(4) == 0 {
					a[i] += s.Uniform(-0.3, 0.3)
				}
			}
			f.ftran(a, w, work)
			if math.Abs(w[r]) < 0.5 {
				continue // perturbation unluckily large; skip this update
			}
			f.appendEta(r, w)
			for i := 0; i < m; i++ {
				B[i][r] = a[i]
			}
		}
		if f.nEtas() == 0 {
			t.Fatalf("trial %d: no eta updates exercised", trial)
		}
		// A chain of column replacements can condition the basis worse than
		// any single factorisation; allow the eta path proportional slack.
		checkFactorAgainstDense(t, f, B, s, 1e-6)
	}
}

func TestFactorFreezeCopyOnWrite(t *testing.T) {
	s := rng.New(16, "lp-factor-freeze")
	m := 10
	B := randomSparseBasis(s, m, 2*m)
	colPtr, rowIdx, vals := cscFromDense(B)
	f, err := factorizeBasis(m, colPtr, rowIdx, vals)
	if err != nil {
		t.Fatal(err)
	}
	work := make([]float64, m)
	w := make([]float64, m)
	e := make([]float64, m)
	e[0] = 1
	f.ftran(e, w, work)
	f.appendEta(2, w)

	frozen := f.freeze()
	if frozen.nEtas() != 1 {
		t.Fatalf("frozen etas = %d, want 1", frozen.nEtas())
	}
	before := make([]float64, m)
	frozen.ftran(e, before, work)

	// Two children adopt the same frozen snapshot and append different
	// etas; neither the frozen parent nor the sibling may observe them.
	childA := *frozen
	childB := *frozen
	wa := make([]float64, m)
	wb := make([]float64, m)
	ea := make([]float64, m)
	ea[1] = 1
	eb := make([]float64, m)
	eb[2] = 1
	childA.ftran(ea, wa, work)
	childA.appendEta(3, wa)
	childB.ftran(eb, wb, work)
	childB.appendEta(4, wb)

	if frozen.nEtas() != 1 {
		t.Fatalf("parent eta count changed to %d after child appends", frozen.nEtas())
	}
	after := make([]float64, m)
	frozen.ftran(e, after, work)
	for i := range before {
		// Exact replay required: the frozen factor must be bitwise
		// unaffected by child appends, not merely close.
		if before[i]-after[i] != 0 {
			t.Fatalf("parent ftran result changed at %d: %g -> %g", i, before[i], after[i])
		}
	}
	if childA.nEtas() != 2 || childB.nEtas() != 2 {
		t.Fatalf("child eta counts = %d, %d, want 2, 2", childA.nEtas(), childB.nEtas())
	}
	if childA.etaPos[1] != 3 || childB.etaPos[1] != 4 {
		t.Fatalf("children share an eta tail: %v vs %v", childA.etaPos, childB.etaPos)
	}
}

func TestFactorFillHeavy(t *testing.T) {
	f := &luFactor{m: 2, nnzLU: 4}
	w := []float64{1, 1}
	budget := etaFillRows*f.m + etaFillLU*f.nnzLU
	for !f.fillHeavy() {
		f.appendEta(0, w)
		if f.etaNnz() > budget+2 {
			t.Fatalf("fillHeavy never triggered: nnz=%d budget=%d", f.etaNnz(), budget)
		}
	}
	if f.etaNnz() <= budget {
		t.Fatalf("fillHeavy fired early: nnz=%d budget=%d", f.etaNnz(), budget)
	}
}

// TestFactorOptionDefaultsPinned pins the resolved defaults of the
// factor-related knobs: RefactorEvery defaults to the historical cadence 64
// (and only governs the legacy dense kernel), and Factor defaults to the
// sparse LU kernel with FactorBinv restoring the dense inverse.
func TestFactorOptionDefaultsPinned(t *testing.T) {
	p := NewProblem(2)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 4)

	def := newRev(p, Options{})
	if def.refactorEvery != 64 {
		t.Errorf("default RefactorEvery resolved to %d, want 64", def.refactorEvery)
	}
	if !def.factorLU {
		t.Error("default Factor did not select the LU kernel")
	}
	if def.binv != nil {
		t.Error("LU kernel allocated a dense inverse")
	}

	if got := newRev(p, Options{RefactorEvery: 7}).refactorEvery; got != 7 {
		t.Errorf("RefactorEvery: 7 resolved to %d", got)
	}
	if got := newRev(p, Options{RefactorEvery: -1}).refactorEvery; got != 64 {
		t.Errorf("RefactorEvery: -1 resolved to %d, want default 64", got)
	}

	if lu := newRev(p, Options{Factor: FactorLU}); !lu.factorLU {
		t.Error("FactorLU did not select the LU kernel")
	}
	binv := newRev(p, Options{Factor: FactorBinv})
	if binv.factorLU {
		t.Error("FactorBinv still selected the LU kernel")
	}
	if binv.binv == nil {
		t.Error("FactorBinv did not allocate the dense inverse")
	}

	for _, tc := range []struct {
		mode FactorMode
		want string
	}{
		{FactorAuto, "auto"},
		{FactorLU, "lu"},
		{FactorBinv, "binv"},
		{FactorMode(9), "factormode(9)"},
	} {
		if got := tc.mode.String(); got != tc.want {
			t.Errorf("FactorMode(%d).String() = %q, want %q", int(tc.mode), got, tc.want)
		}
	}
}
