package lp

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// BenchmarkWarmVsColdLP isolates the warm-start effect from branch-and-
// bound tree shape: solve a random LP, append one binding bound row (the
// shape of a branching child), and compare re-solving from scratch
// against SolveFrom on the parent basis. The iteration metric shows why
// warm wins: a couple of dual pivots versus a full two-phase solve.
func BenchmarkWarmVsColdLP(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{20, 40}, {40, 80}, {80, 160}} {
		g := generateFeasibleLP(rng.New(7, "lp-bench"), sz.n, sz.m)
		parent, bs, err := SolveBasis(g.p, Options{})
		if err != nil || parent.Status != Optimal {
			b.Fatalf("parent solve: %v / %v", err, parent.Status)
		}
		// Halve the largest variable: a binding cut, so the dual phase has
		// genuine repair work at every warm start.
		v := 0
		for i, x := range parent.X {
			if x > parent.X[v] {
				v = i
			}
		}
		child := g.p.Clone()
		child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, parent.X[v]/2)

		suffix := fmt.Sprintf("/n=%d,m=%d", sz.n, sz.m)
		b.Run("cold"+suffix, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, _, err := SolveBasis(child, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != Optimal {
					b.Fatalf("status %v", sol.Status)
				}
				iters = sol.Iterations
			}
			b.ReportMetric(float64(iters), "pivots")
		})
		b.Run("warm"+suffix, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, _, err := SolveFrom(child, bs, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != Optimal {
					b.Fatalf("status %v", sol.Status)
				}
				iters = sol.Iterations
			}
			b.ReportMetric(float64(iters), "pivots")
		})
	}
}

// sparseBenchSizes are the DSCT-EA-FR staircase shapes the sparse-vs-dense
// benchmarks run at: the paper's Fig 3/4 scale (100 tasks x 5 machines)
// bracketed by a half-size warm-up and a ~4x-variables instance beyond it.
var sparseBenchSizes = []struct{ tasks, mach int }{
	{50, 3}, {100, 5}, {200, 10},
}

// BenchmarkSparseVsDenseLP: cold revised-simplex solves of staircase
// instances with the constraint matrix stored dense (SparseOff) versus CSC
// (SparseOn). The staircases are ~1/m dense, so the sparse FTRAN/pricing
// walks touch a fraction of the entries the dense dot products do; the
// pivot metric confirms both modes take the identical path. Pricing and
// presolve are pinned to dantzig/off so the benchmark isolates the matrix
// representation along the historical path (the xl pairings measure those
// knobs); the largest member would otherwise cross both auto thresholds.
func BenchmarkSparseVsDenseLP(b *testing.B) {
	for _, sz := range sparseBenchSizes {
		g := generateStaircaseLP(rng.New(11, "lp-sparse-bench"), sz.tasks, sz.mach)
		for _, mode := range []struct {
			name   string
			sparse SparseMode
		}{
			{"dense", SparseOff},
			{"sparse", SparseOn},
		} {
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveBasis(g.p, Options{Sparse: mode.sparse, Pricing: PricingDantzig, Presolve: PresolveOff})
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}

// BenchmarkBoundsVsRowsLP: the identical boxed staircase instance with
// per-variable caps declared as implicit bounds (the bounded-variable
// method) versus expanded into explicit LE rows (the only encoding the
// one-sided method had). The box encoding keeps the basis at the staircase
// row count while the row encoding adds one row — and hence one basis
// dimension, one logical column and one more O(m) FTRAN lane — per capped
// variable; the basis-rows metric records that gap, pivots the path length.
func BenchmarkBoundsVsRowsLP(b *testing.B) {
	for _, sz := range []struct{ tasks, mach int }{{50, 3}, {100, 5}} {
		s := rng.New(17, "lp-bounds-bench")
		g := generateStaircaseLP(s, sz.tasks, sz.mach)
		for v := 0; v < g.p.NumVars(); v++ {
			g.p.SetBounds(v, 0, s.Uniform(0.3, 1))
		}
		rows := ExpandBounds(g.p)
		for _, mode := range []struct {
			name string
			p    *Problem
		}{
			{"bounds", g.p},
			{"rows", rows},
		} {
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveBasis(mode.p, Options{})
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(mode.p.NumConstraints()), "basis-rows")
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}

// BenchmarkSparseVsDenseWarmLP: the branch-and-bound node shape — append
// one binding bound row and re-optimise from the parent basis — under both
// matrix representations, checking the sparse layout keeps (and extends)
// the warm-start win rather than trading it away. Pricing and presolve
// are pinned to dantzig/off: a presolved parent basis is restored through
// postsolve and costs repair pivots on re-entry, which would drown the
// representation comparison this benchmark isolates.
func BenchmarkSparseVsDenseWarmLP(b *testing.B) {
	for _, sz := range sparseBenchSizes {
		g := generateStaircaseLP(rng.New(13, "lp-sparse-warm-bench"), sz.tasks, sz.mach)
		for _, mode := range []struct {
			name   string
			sparse SparseMode
		}{
			{"dense", SparseOff},
			{"sparse", SparseOn},
		} {
			opts := Options{Sparse: mode.sparse, Pricing: PricingDantzig, Presolve: PresolveOff}
			parent, bs, err := SolveBasis(g.p, opts)
			if err != nil || parent.Status != Optimal {
				b.Fatalf("parent solve: %v / %v", err, parent.Status)
			}
			v := 0
			for i, x := range parent.X {
				if x > parent.X[v] {
					v = i
				}
			}
			child := g.p.Overlay()
			child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, parent.X[v]/2)
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveFrom(child, bs, opts)
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}

// BenchmarkFactorLUVsBinvLP: cold revised-simplex solves of staircase
// instances under the legacy explicit dense B⁻¹ kernel (binv) versus the
// sparse LU + eta-file kernel (lu), both over the CSC matrix. The dense
// kernel pays O(m²) per pivot update and O(m³) per refactorisation no
// matter how sparse the basis is; the LU kernel's triangular solves and
// eta appends touch only structural nonzeros, which on ~1/m-dense
// staircase bases is where the asymptotic win lives. The pivot metric
// confirms both kernels walk the identical path; pricing and presolve
// are pinned to dantzig/off so the path stays the historical one and the
// benchmark isolates the kernel (the xl pairings measure those knobs).
func BenchmarkFactorLUVsBinvLP(b *testing.B) {
	for _, sz := range sparseBenchSizes {
		g := generateStaircaseLP(rng.New(19, "lp-factor-bench"), sz.tasks, sz.mach)
		for _, mode := range []struct {
			name   string
			factor FactorMode
		}{
			{"binv", FactorBinv},
			{"lu", FactorLU},
		} {
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveBasis(g.p, Options{Sparse: SparseOn, Factor: mode.factor, Pricing: PricingDantzig, Presolve: PresolveOff})
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}

// BenchmarkFactorLUVsBinvWarmLP: the branch-and-bound node shape — tighten
// one binding variable bound and re-optimise from the parent basis — under
// both kernels. The legacy kernel copies the parent's m² inverse into every
// child; the LU kernel adopts the parent's frozen factors by a struct copy
// and appends child pivots copy-on-write, so the per-node cost tracks the
// dual repair work instead of the basis dimension. Pricing and presolve
// are pinned to dantzig/off: a presolved parent basis is restored through
// postsolve and costs a handful of repair pivots on re-entry, which would
// drown the kernel comparison this benchmark isolates.
func BenchmarkFactorLUVsBinvWarmLP(b *testing.B) {
	for _, sz := range sparseBenchSizes {
		g := generateStaircaseLP(rng.New(23, "lp-factor-warm-bench"), sz.tasks, sz.mach)
		for _, mode := range []struct {
			name   string
			factor FactorMode
		}{
			{"binv", FactorBinv},
			{"lu", FactorLU},
		} {
			opts := Options{Sparse: SparseOn, Factor: mode.factor, Pricing: PricingDantzig, Presolve: PresolveOff}
			parent, bs, err := SolveBasis(g.p, opts)
			if err != nil || parent.Status != Optimal {
				b.Fatalf("parent solve: %v / %v", err, parent.Status)
			}
			v := 0
			for i, x := range parent.X {
				if x > parent.X[v] {
					v = i
				}
			}
			child := g.p.Overlay()
			child.SetBounds(v, 0, parent.X[v]/2)
			b.Run(fmt.Sprintf("%s/tasks=%d,mach=%d", mode.name, sz.tasks, sz.mach), func(b *testing.B) {
				var iters int
				for i := 0; i < b.N; i++ {
					sol, _, err := SolveFrom(child, bs, opts)
					if err != nil {
						b.Fatal(err)
					}
					if sol.Status != Optimal {
						b.Fatalf("status %v", sol.Status)
					}
					iters = sol.Iterations
				}
				b.ReportMetric(float64(iters), "pivots")
			})
		}
	}
}
