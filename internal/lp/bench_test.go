package lp

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// BenchmarkWarmVsColdLP isolates the warm-start effect from branch-and-
// bound tree shape: solve a random LP, append one binding bound row (the
// shape of a branching child), and compare re-solving from scratch
// against SolveFrom on the parent basis. The iteration metric shows why
// warm wins: a couple of dual pivots versus a full two-phase solve.
func BenchmarkWarmVsColdLP(b *testing.B) {
	for _, sz := range []struct{ n, m int }{{20, 40}, {40, 80}, {80, 160}} {
		g := generateFeasibleLP(rng.New(7, "lp-bench"), sz.n, sz.m)
		parent, bs, err := SolveBasis(g.p, Options{})
		if err != nil || parent.Status != Optimal {
			b.Fatalf("parent solve: %v / %v", err, parent.Status)
		}
		// Halve the largest variable: a binding cut, so the dual phase has
		// genuine repair work at every warm start.
		v := 0
		for i, x := range parent.X {
			if x > parent.X[v] {
				v = i
			}
		}
		child := g.p.Clone()
		child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, parent.X[v]/2)

		suffix := fmt.Sprintf("/n=%d,m=%d", sz.n, sz.m)
		b.Run("cold"+suffix, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, _, err := SolveBasis(child, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != Optimal {
					b.Fatalf("status %v", sol.Status)
				}
				iters = sol.Iterations
			}
			b.ReportMetric(float64(iters), "pivots")
		})
		b.Run("warm"+suffix, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				sol, _, err := SolveFrom(child, bs, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if sol.Status != Optimal {
					b.Fatalf("status %v", sol.Status)
				}
				iters = sol.Iterations
			}
			b.ReportMetric(float64(iters), "pivots")
		})
	}
}
