package lp

// Shared random-LP generator for the fuzz and differential test suites.
// Instances are feasible by construction — a known point x* >= 0 satisfies
// every row because each RHS is A_i·x* plus a non-negative slack — and
// bounded by construction thanks to per-variable box constraints, so a
// correct solver must report Optimal with objective >= c·x*.

import "repro/internal/rng"

// genRow is one generated constraint, kept in dense form so tests can
// re-check feasibility of solver output against the original data.
type genRow struct {
	coefs []float64
	rhs   float64
}

// genLP is a generated instance with its certificates.
type genLP struct {
	p     *Problem
	rows  []genRow
	xstar []float64 // known feasible point
	obj   []float64
	// lo/hi mirror the instance's variable boxes when the generator
	// declared them through SetBounds (nil: default [0, +inf) boxes
	// emitted as explicit rows). Tests use them to re-check box
	// feasibility of solver output against the original data.
	lo, hi []float64
}

// generateFeasibleLP builds a random feasible, bounded LP over n variables
// with m random LE rows plus n box rows, all satisfied at a random x*.
func generateFeasibleLP(s *rng.Source, n, m int) *genLP {
	g := &genLP{xstar: make([]float64, n), obj: make([]float64, n)}
	for v := range g.xstar {
		g.xstar[v] = s.Uniform(0, 5)
	}

	g.p = NewProblem(n)
	for v := range g.obj {
		g.obj[v] = s.Uniform(-1, 2)
		g.p.SetObjCoef(v, g.obj[v])
	}

	addRow := func(coefs []float64, rhs float64) {
		terms := make([]Term, 0, len(coefs))
		for v, c := range coefs {
			if c != 0 {
				terms = append(terms, Term{Var: v, Coef: c})
			}
		}
		g.p.AddConstraint(terms, LE, rhs)
		g.rows = append(g.rows, genRow{coefs: coefs, rhs: rhs})
	}

	// Random LE rows, feasible at x* with non-negative slack.
	for i := 0; i < m; i++ {
		coefs := make([]float64, n)
		dot := 0.0
		for v := range coefs {
			if s.Float64() < 0.3 {
				continue // keep some sparsity
			}
			coefs[v] = s.Uniform(-2, 3)
			dot += coefs[v] * g.xstar[v]
		}
		addRow(coefs, dot+s.Uniform(0, 2))
	}
	// Box constraints keep the maximisation bounded; each box contains x*.
	for v := 0; v < n; v++ {
		coefs := make([]float64, n)
		coefs[v] = 1
		addRow(coefs, g.xstar[v]+s.Uniform(0.1, 5))
	}
	return g
}

// generateBoundedLP builds a random feasible, bounded LP over n variables
// with m random LE rows and a finite box lo <= x <= hi on every variable
// declared through SetBounds instead of rows. About half the lower bounds
// are strictly positive, every upper bound is finite (which keeps the
// maximisation bounded with no box rows at all), and roughly 15% of the
// variables are fixed (lo == hi) — the degenerate box branch-and-bound
// produces when it pins a binary. The known point x* lies inside every box
// and satisfies every row with slack, so a correct solver must report
// Optimal with objective >= c·x*, and ExpandBounds can rewrite the
// instance into the equivalent all-rows form (all lower bounds are >= 0).
func generateBoundedLP(s *rng.Source, n, m int) *genLP {
	g := &genLP{
		xstar: make([]float64, n),
		obj:   make([]float64, n),
		lo:    make([]float64, n),
		hi:    make([]float64, n),
	}
	g.p = NewProblem(n)
	for v := 0; v < n; v++ {
		g.obj[v] = s.Uniform(-1, 2)
		g.p.SetObjCoef(v, g.obj[v])
		if s.Float64() < 0.15 {
			// Fixed variable: a zero-width box.
			g.xstar[v] = s.Uniform(0, 3)
			g.lo[v] = g.xstar[v]
			g.hi[v] = g.xstar[v]
		} else {
			g.xstar[v] = s.Uniform(0, 5)
			if s.Float64() < 0.5 {
				g.lo[v] = s.Uniform(0, g.xstar[v])
			}
			g.hi[v] = g.xstar[v] + s.Uniform(0.1, 5)
		}
		g.p.SetBounds(v, g.lo[v], g.hi[v])
	}

	// Random LE rows, feasible at x* with non-negative slack.
	for i := 0; i < m; i++ {
		coefs := make([]float64, n)
		dot := 0.0
		for v := range coefs {
			if s.Float64() < 0.3 {
				continue // keep some sparsity
			}
			coefs[v] = s.Uniform(-2, 3)
			dot += coefs[v] * g.xstar[v]
		}
		rhs := dot + s.Uniform(0, 2)
		terms := make([]Term, 0, n)
		for v, c := range coefs {
			if c != 0 {
				terms = append(terms, Term{Var: v, Coef: c})
			}
		}
		g.p.AddConstraint(terms, LE, rhs)
		g.rows = append(g.rows, genRow{coefs: coefs, rhs: rhs})
	}
	return g
}

// feasibleValue returns c·x*, a lower bound on the optimum.
func (g *genLP) feasibleValue() float64 {
	var want float64
	for v := range g.obj {
		want += g.obj[v] * g.xstar[v]
	}
	return want
}

// generateStaircaseLP builds a DSCT-EA-FR-shaped instance: nTasks·mMach
// processing-time variables t_jr with positive accuracy-slope objectives,
// per-machine EDF deadline staircases Σ_{i<=j} t_ir <= d_j, per-task work
// caps Σ_r s_r·t_jr <= fmax_j, and one global energy row — the structure
// whose ~1/m nonzero density motivates the sparse representation. The
// origin is feasible (every RHS is positive) and the staircases bound
// every variable, so a correct solver must report Optimal with a
// non-negative objective.
func generateStaircaseLP(s *rng.Source, nTasks, mMach int) *genLP {
	nv := nTasks * mMach
	g := &genLP{xstar: make([]float64, nv), obj: make([]float64, nv)}
	g.p = NewProblem(nv)

	speed := make([]float64, mMach)
	power := make([]float64, mMach)
	for r := range speed {
		speed[r] = s.Uniform(0.5, 2)
		power[r] = s.Uniform(0.2, 1)
	}
	deadline := make([]float64, nTasks)
	d := 0.0
	for j := range deadline {
		d += s.Uniform(0.1, 1)
		deadline[j] = d
	}

	// Objective: accuracy slope per unit time on machine r.
	for j := 0; j < nTasks; j++ {
		for r := 0; r < mMach; r++ {
			g.obj[j*mMach+r] = s.Uniform(0.1, 1) * speed[r]
			g.p.SetObjCoef(j*mMach+r, g.obj[j*mMach+r])
		}
	}
	// Deadline staircases, one per (machine, task-prefix).
	for r := 0; r < mMach; r++ {
		for j := 0; j < nTasks; j++ {
			terms := make([]Term, 0, j+1)
			for i := 0; i <= j; i++ {
				terms = append(terms, Term{Var: i*mMach + r, Coef: 1})
			}
			g.p.AddConstraint(terms, LE, deadline[j])
		}
	}
	// Per-task work caps.
	for j := 0; j < nTasks; j++ {
		terms := make([]Term, mMach)
		for r := 0; r < mMach; r++ {
			terms[r] = Term{Var: j*mMach + r, Coef: speed[r]}
		}
		g.p.AddConstraint(terms, LE, s.Uniform(0.5, 3))
	}
	// Global energy budget.
	eterms := make([]Term, nv)
	for j := 0; j < nTasks; j++ {
		for r := 0; r < mMach; r++ {
			eterms[j*mMach+r] = Term{Var: j*mMach + r, Coef: power[r]}
		}
	}
	g.p.AddConstraint(eterms, LE, 0.3*deadline[nTasks-1]*float64(mMach))
	return g
}
