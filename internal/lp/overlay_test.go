package lp

// Tests for the copy-free Overlay used by branch-and-bound nodes: an
// overlay must behave exactly like a deep Clone to every solver while
// never mutating the base problem it shares rows with.

import (
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// TestOverlayIsolation: appending rows and rewriting objective
// coefficients on an overlay must leave the base problem untouched, and
// two sibling overlays must not see each other's rows.
func TestOverlayIsolation(t *testing.T) {
	base := NewProblem(3)
	base.SetObjCoef(0, 1)
	base.SetObjCoef(1, 2)
	base.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 4)
	base.AddConstraint([]Term{{Var: 2, Coef: 1}}, LE, 7)
	baseRows := base.NumConstraints()

	down := base.Overlay()
	up := base.Overlay()
	if got := down.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 1); got != baseRows {
		t.Fatalf("overlay AddConstraint returned %d, want %d", got, baseRows)
	}
	up.AddConstraint([]Term{{Var: 0, Coef: 1}}, GE, 2)
	up.AddConstraint([]Term{{Var: 1, Coef: 1}}, GE, 1)
	down.SetObjCoef(2, 5)

	if base.NumConstraints() != baseRows {
		t.Fatalf("base grew to %d rows", base.NumConstraints())
	}
	if base.ObjCoef(2) != 0 {
		t.Fatalf("base objective mutated: c[2] = %g", base.ObjCoef(2))
	}
	if down.NumConstraints() != baseRows+1 || up.NumConstraints() != baseRows+2 {
		t.Fatalf("sibling overlays share rows: down=%d up=%d",
			down.NumConstraints(), up.NumConstraints())
	}
	//lint:ignore floatcmp SetObjCoef stores the value verbatim; identity is exact
	if down.ObjCoef(2) != 5 || up.ObjCoef(2) != 0 {
		t.Fatalf("objective copy-on-write leaked: down c[2]=%g up c[2]=%g",
			down.ObjCoef(2), up.ObjCoef(2))
	}
}

// TestOverlayOfOverlay: stacking overlays (a grandchild node) flattens
// correctly — the grandchild sees base + parent rows as its immutable
// prefix and still cannot mutate either ancestor.
func TestOverlayOfOverlay(t *testing.T) {
	base := NewProblem(2)
	base.SetObjCoef(0, 1)
	base.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 3)

	child := base.Overlay()
	child.AddConstraint([]Term{{Var: 0, Coef: 1}}, LE, 2)
	grand := child.Overlay()
	grand.AddConstraint([]Term{{Var: 1, Coef: 1}}, LE, 1)

	if base.NumConstraints() != 1 || child.NumConstraints() != 2 || grand.NumConstraints() != 3 {
		t.Fatalf("row counts base=%d child=%d grand=%d, want 1/2/3",
			base.NumConstraints(), child.NumConstraints(), grand.NumConstraints())
	}
	sol, err := Solve(grand, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !numeric.AlmostEqual(sol.Objective, 2) {
		t.Fatalf("grandchild solve: status %v obj %g, want Optimal 2", sol.Status, sol.Objective)
	}
}

// TestOverlaySolvesLikeClone: on random instances, an overlay with
// appended bound rows must produce the same solution as a deep clone with
// the same rows, under the tableau core and both revised cores, cold and
// warm-started — the exact usage pattern of internal/mip node solves.
func TestOverlaySolvesLikeClone(t *testing.T) {
	for i := 0; i < 40; i++ {
		s := rng.NewReplicate(5, "lp-overlay", i)
		n := 2 + s.Intn(6)
		g := generateFeasibleLP(s, n, s.Intn(8))
		root, bs, err := SolveBasis(g.p, Options{})
		if err != nil || root.Status != Optimal {
			t.Fatalf("instance %d: root status %v err %v", i, root.Status, err)
		}
		v := s.Intn(n)
		rhs := root.X[v] / 2

		clone := g.p.Clone()
		clone.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, rhs)
		overlay := g.p.Overlay()
		overlay.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, rhs)

		for _, mode := range []SparseMode{SparseOff, SparseOn} {
			cs, _, err := SolveBasis(clone, Options{Sparse: mode})
			if err != nil {
				t.Fatalf("instance %d: clone solve (%v): %v", i, mode, err)
			}
			os, _, err := SolveBasis(overlay, Options{Sparse: mode})
			if err != nil {
				t.Fatalf("instance %d: overlay solve (%v): %v", i, mode, err)
			}
			assertAgreeX(t, mode.String(), cs, os)
		}
		ct, err := Solve(clone, Options{})
		if err != nil {
			t.Fatalf("instance %d: clone tableau: %v", i, err)
		}
		ot, err := Solve(overlay, Options{})
		if err != nil {
			t.Fatalf("instance %d: overlay tableau: %v", i, err)
		}
		assertAgreeX(t, "tableau", ct, ot)

		cw, _, err := SolveFrom(clone, bs, Options{})
		if err != nil {
			t.Fatalf("instance %d: clone warm: %v", i, err)
		}
		ow, _, err := SolveFrom(overlay, bs, Options{})
		if err != nil {
			t.Fatalf("instance %d: overlay warm: %v", i, err)
		}
		assertAgreeX(t, "warm", cw, ow)
	}
}
