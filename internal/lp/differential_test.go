package lp

// Differential test corpus for the revised simplex: on a seeded corpus of
// random LPs the cold tableau solver (Solve), the cold revised solver
// (SolveBasis) and the warm-started revised solver (SolveFrom) must agree
// on status and objective — including after bound rows are appended, the
// exact shape of branch-and-bound child problems. A disagreement here is
// how a warm-start bug would surface as a silently wrong MIP optimum, so
// this suite is the safety net under internal/mip's node rewiring.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// corpusSize is the number of seeded instances; the acceptance bar for the
// warm-start work is at least 200.
const corpusSize = 240

// diffObjEqual is the agreement criterion on objectives: AlmostEqual's
// TestTol scaled criterion, the repo-wide assertion tolerance.
func diffObjEqual(a, b float64) bool { return numeric.AlmostEqual(a, b) }

// corpusInstance derives the deterministic instance for one corpus index.
func corpusInstance(i int) *genLP {
	s := rng.NewReplicate(1, "lp-differential", i)
	n := 1 + s.Intn(7) // 1..7 variables
	m := s.Intn(10)    // 0..9 random rows (plus n box rows)
	return generateFeasibleLP(s, n, m)
}

// assertAgree fails unless the two solutions agree on status and, when
// both are optimal, on objective.
func assertAgree(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("%s: status %v != %v", label, a.Status, b.Status)
	}
	if a.Status == Optimal && !diffObjEqual(a.Objective, b.Objective) {
		t.Fatalf("%s: objective %.17g != %.17g (diff %g)",
			label, a.Objective, b.Objective, a.Objective-b.Objective)
	}
}

// TestDifferentialColdRevisedVsTableau: the revised core's cold path must
// reproduce the tableau solver across the whole corpus.
func TestDifferentialColdRevisedVsTableau(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			cold, err := Solve(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rev, bs, err := SolveBasis(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			assertAgree(t, "cold", cold, rev)
			if cold.Status != Optimal {
				t.Fatalf("corpus instance not optimal (%v); generator broken", cold.Status)
			}
			if bs == nil {
				t.Fatal("no basis from optimal cold solve")
			}
			// Both must beat the known feasible point.
			want := g.feasibleValue()
			tol := 1e-6 * (1 + math.Abs(want))
			if rev.Objective < want-tol {
				t.Errorf("revised objective %g below feasible value %g", rev.Objective, want)
			}
		})
	}
}

// TestDifferentialWarmVsColdAfterBoundRows: for every corpus instance,
// derive branch-and-bound style children by appending bound rows and
// check the warm-started solve against a cold solve of the same child —
// then chain a second bound row from the warm basis.
func TestDifferentialWarmVsColdAfterBoundRows(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			parent, bs, err := SolveBasis(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if parent.Status != Optimal {
				t.Fatalf("parent status %v", parent.Status)
			}

			s := rng.NewReplicate(2, "lp-differential-branch", i)
			v := s.Intn(g.p.NumVars())
			val := parent.X[v]

			branches := []struct {
				name  string
				sense Sense
				rhs   float64
			}{
				{"down", LE, math.Floor(val)},
				{"up", GE, math.Ceil(val) + float64(s.Intn(2))}, // sometimes beyond the box: infeasible child
			}
			for _, br := range branches {
				child := g.p.Clone()
				child.AddConstraint([]Term{{Var: v, Coef: 1}}, br.sense, br.rhs)
				warm, wbs, err := SolveFrom(child, bs, Options{})
				if err != nil {
					t.Fatalf("%s: SolveFrom: %v", br.name, err)
				}
				cold, err := Solve(child, Options{})
				if err != nil {
					t.Fatalf("%s: Solve: %v", br.name, err)
				}
				assertAgree(t, br.name, cold, warm)

				if warm.Status != Optimal {
					continue
				}
				// Chain: tighten a second variable from the warm basis.
				v2 := s.Intn(g.p.NumVars())
				grandchild := child.Clone()
				grandchild.AddConstraint([]Term{{Var: v2, Coef: 1}}, LE, math.Floor(warm.X[v2]))
				warm2, _, err := SolveFrom(grandchild, wbs, Options{})
				if err != nil {
					t.Fatalf("%s/chain: SolveFrom: %v", br.name, err)
				}
				cold2, err := Solve(grandchild, Options{})
				if err != nil {
					t.Fatalf("%s/chain: Solve: %v", br.name, err)
				}
				assertAgree(t, br.name+"/chain", cold2, warm2)
			}
		})
	}
}
