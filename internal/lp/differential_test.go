package lp

// Differential test corpus for the revised simplex: on a seeded corpus of
// random LPs the cold tableau solver (Solve), the cold revised solver
// (SolveBasis) and the warm-started revised solver (SolveFrom) must agree
// on status and objective — including after bound rows are appended, the
// exact shape of branch-and-bound child problems. The dense and CSC-backed
// sparse revised cores must additionally agree on the full solution vector
// on every instance. A disagreement here is how a warm-start or sparse-
// indexing bug would surface as a silently wrong MIP optimum, so this suite
// is the safety net under internal/mip's node rewiring.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// corpusSize is the number of seeded instances; the acceptance bar for the
// warm-start work is at least 200.
const corpusSize = 240

// diffObjEqual is the agreement criterion on objectives: AlmostEqual's
// TestTol scaled criterion, the repo-wide assertion tolerance.
func diffObjEqual(a, b float64) bool { return numeric.AlmostEqual(a, b) }

// corpusInstance derives the deterministic instance for one corpus index.
func corpusInstance(i int) *genLP {
	s := rng.NewReplicate(1, "lp-differential", i)
	n := 1 + s.Intn(7) // 1..7 variables
	m := s.Intn(10)    // 0..9 random rows (plus n box rows)
	return generateFeasibleLP(s, n, m)
}

// assertAgree fails unless the two solutions agree on status and, when
// both are optimal, on objective.
func assertAgree(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("%s: status %v != %v", label, a.Status, b.Status)
	}
	if a.Status == Optimal && !diffObjEqual(a.Objective, b.Objective) {
		t.Fatalf("%s: objective %.17g != %.17g (diff %g)",
			label, a.Objective, b.Objective, a.Objective-b.Objective)
	}
}

// assertAgreeX is assertAgree plus full solution-vector agreement, the
// criterion for the dense-vs-sparse pinning (the two representations pivot
// through identical matrices, so they must land on the same vertex).
func assertAgreeX(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	assertAgree(t, label, a, b)
	if a.Status != Optimal {
		return
	}
	for v := range a.X {
		if !numeric.AlmostEqual(a.X[v], b.X[v]) {
			t.Fatalf("%s: x[%d] %.17g != %.17g", label, v, a.X[v], b.X[v])
		}
	}
}

// TestDifferentialColdRevisedVsTableau: the revised core's cold path must
// reproduce the tableau solver across the whole corpus.
func TestDifferentialColdRevisedVsTableau(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			cold, err := Solve(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rev, bs, err := SolveBasis(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			assertAgree(t, "cold", cold, rev)
			if cold.Status != Optimal {
				t.Fatalf("corpus instance not optimal (%v); generator broken", cold.Status)
			}
			if bs == nil {
				t.Fatal("no basis from optimal cold solve")
			}
			// Both must beat the known feasible point.
			want := g.feasibleValue()
			tol := 1e-6 * (1 + math.Abs(want))
			if rev.Objective < want-tol {
				t.Errorf("revised objective %g below feasible value %g", rev.Objective, want)
			}
		})
	}
}

// TestDifferentialWarmVsColdAfterBoundRows: for every corpus instance,
// derive branch-and-bound style children by appending bound rows and
// check the warm-started solve against a cold solve of the same child —
// then chain a second bound row from the warm basis.
func TestDifferentialWarmVsColdAfterBoundRows(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			parent, bs, err := SolveBasis(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if parent.Status != Optimal {
				t.Fatalf("parent status %v", parent.Status)
			}

			s := rng.NewReplicate(2, "lp-differential-branch", i)
			v := s.Intn(g.p.NumVars())
			val := parent.X[v]

			branches := []struct {
				name  string
				sense Sense
				rhs   float64
			}{
				{"down", LE, math.Floor(val)},
				{"up", GE, math.Ceil(val) + float64(s.Intn(2))}, // sometimes beyond the box: infeasible child
			}
			for _, br := range branches {
				child := g.p.Clone()
				child.AddConstraint([]Term{{Var: v, Coef: 1}}, br.sense, br.rhs)
				warm, wbs, err := SolveFrom(child, bs, Options{})
				if err != nil {
					t.Fatalf("%s: SolveFrom: %v", br.name, err)
				}
				cold, err := Solve(child, Options{})
				if err != nil {
					t.Fatalf("%s: Solve: %v", br.name, err)
				}
				assertAgree(t, br.name, cold, warm)

				if warm.Status != Optimal {
					continue
				}
				// Chain: tighten a second variable from the warm basis.
				v2 := s.Intn(g.p.NumVars())
				grandchild := child.Clone()
				grandchild.AddConstraint([]Term{{Var: v2, Coef: 1}}, LE, math.Floor(warm.X[v2]))
				warm2, _, err := SolveFrom(grandchild, wbs, Options{})
				if err != nil {
					t.Fatalf("%s/chain: SolveFrom: %v", br.name, err)
				}
				cold2, err := Solve(grandchild, Options{})
				if err != nil {
					t.Fatalf("%s/chain: Solve: %v", br.name, err)
				}
				assertAgree(t, br.name+"/chain", cold2, warm2)
			}
		})
	}
}

// TestDifferentialSparseVsDense: the CSC-backed revised core must reproduce
// the dense revised core across the whole corpus — status, objective AND the
// full solution vector — both cold and warm-started after a bound row, the
// exact code path branch-and-bound nodes take with the sparse matrix on.
func TestDifferentialSparseVsDense(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			g := corpusInstance(i)
			dense, dbs, err := SolveBasis(g.p, Options{Sparse: SparseOff})
			if err != nil {
				t.Fatal(err)
			}
			sparse, sbs, err := SolveBasis(g.p, Options{Sparse: SparseOn})
			if err != nil {
				t.Fatal(err)
			}
			assertAgreeX(t, "cold", dense, sparse)
			if dense.Status != Optimal {
				return
			}

			// Warm-started bound-row child under both representations.
			s := rng.NewReplicate(3, "lp-differential-sparse", i)
			v := s.Intn(g.p.NumVars())
			child := g.p.Clone()
			child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, math.Floor(dense.X[v]))
			wd, _, err := SolveFrom(child, dbs, Options{Sparse: SparseOff})
			if err != nil {
				t.Fatalf("warm dense: %v", err)
			}
			ws, _, err := SolveFrom(child, sbs, Options{Sparse: SparseOn})
			if err != nil {
				t.Fatalf("warm sparse: %v", err)
			}
			assertAgreeX(t, "warm", wd, ws)
		})
	}
}

// TestDifferentialBoundsVsRows: on a corpus of randomly boxed LPs, the
// bounded-variable method (all three cores: tableau, dense revised, sparse
// revised) must agree with the same problem after ExpandBounds rewrote
// every box as explicit constraint rows — status, objective AND the full
// solution vector. It then tightens one variable's upper bound, the exact
// move of a row-free branch-and-bound child, and checks the warm-started
// bounded solves against a cold solve of the rows-expanded child. This is
// the equivalence proof that implicit boxes change the arithmetic, not the
// answer.
func TestDifferentialBoundsVsRows(t *testing.T) {
	for i := 0; i < corpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			s := rng.NewReplicate(5, "lp-differential-bounds", i)
			n := 1 + s.Intn(7) // 1..7 variables
			m := s.Intn(10)    // 0..9 random rows (boxes come as bounds)
			g := generateBoundedLP(s, n, m)
			rows := ExpandBounds(g.p)

			ref, err := Solve(rows, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ref.Status != Optimal {
				t.Fatalf("rows-expanded instance not optimal (%v); generator broken", ref.Status)
			}
			tab, err := Solve(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			dense, dbs, err := SolveBasis(g.p, Options{Sparse: SparseOff})
			if err != nil {
				t.Fatal(err)
			}
			sparse, sbs, err := SolveBasis(g.p, Options{Sparse: SparseOn})
			if err != nil {
				t.Fatal(err)
			}
			assertAgreeX(t, "tableau", ref, tab)
			assertAgreeX(t, "dense", ref, dense)
			assertAgreeX(t, "sparse", ref, sparse)

			want := g.feasibleValue()
			tol := 1e-6 * (1 + math.Abs(want))
			if dense.Objective < want-tol {
				t.Errorf("objective %g below feasible value %g", dense.Objective, want)
			}

			// Bound-tightened child: clamp one variable's upper bound to
			// floor(x*_v) (at least lo, possibly a zero-width box) and
			// re-optimise warm from the parent basis — same basis dimension,
			// no appended rows — against a cold solve of the rows-expanded
			// child.
			v := s.Intn(n)
			child := g.p.Clone()
			lo, _ := child.Bounds(v)
			child.SetBounds(v, lo, math.Max(lo, math.Floor(dense.X[v])))
			refChild, err := Solve(ExpandBounds(child), Options{})
			if err != nil {
				t.Fatal(err)
			}
			wd, _, err := SolveFrom(child, dbs, Options{Sparse: SparseOff})
			if err != nil {
				t.Fatalf("warm dense: %v", err)
			}
			ws, _, err := SolveFrom(child, sbs, Options{Sparse: SparseOn})
			if err != nil {
				t.Fatalf("warm sparse: %v", err)
			}
			assertAgreeX(t, "child-dense", refChild, wd)
			assertAgreeX(t, "child-sparse", refChild, ws)
		})
	}
}

// TestDifferentialStaircase: a smaller corpus of DSCT-EA-FR-shaped staircase
// instances big enough to cross the density auto-switch, so the sparse code
// paths (including periodic refactorisation) are exercised at realistic
// scale by the race-enabled gate. Tableau, dense revised and auto (=sparse
// here) revised must agree, cold and after a warm-started bound row.
func TestDifferentialStaircase(t *testing.T) {
	const staircaseCorpusSize = 24
	for i := 0; i < staircaseCorpusSize; i++ {
		i := i
		t.Run(strconv.Itoa(i), func(t *testing.T) {
			t.Parallel()
			s := rng.NewReplicate(4, "lp-differential-staircase", i)
			nTasks := 20 + s.Intn(41) // 20..60 tasks
			mMach := 2 + s.Intn(3)    // 2..4 machines
			g := generateStaircaseLP(s, nTasks, mMach)

			m := g.p.NumConstraints()
			n := g.p.NumVars()
			if !autoSparse(m, n, dedupRows(g.p).nnz()) {
				t.Fatalf("staircase %dx%d not auto-sparse; corpus misconfigured", nTasks, mMach)
			}

			cold, err := Solve(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			dense, dbs, err := SolveBasis(g.p, Options{Sparse: SparseOff})
			if err != nil {
				t.Fatal(err)
			}
			auto, autoBS, err := SolveBasis(g.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			assertAgree(t, "tableau-vs-dense", cold, dense)
			assertAgreeX(t, "dense-vs-auto", dense, auto)
			if cold.Status != Optimal {
				t.Fatalf("staircase instance not optimal (%v); generator broken", cold.Status)
			}

			// Warm-started bound-row child, dense basis vs sparse basis.
			v := s.Intn(n)
			child := g.p.Clone()
			child.AddConstraint([]Term{{Var: v, Coef: 1}}, LE, math.Floor(auto.X[v]))
			wd, _, err := SolveFrom(child, dbs, Options{Sparse: SparseOff})
			if err != nil {
				t.Fatalf("warm dense: %v", err)
			}
			ws, _, err := SolveFrom(child, autoBS, Options{})
			if err != nil {
				t.Fatalf("warm auto: %v", err)
			}
			assertAgreeX(t, "warm", wd, ws)
		})
	}
}
