package lp

// Presolve/postsolve layer. Before a cold solve reaches a simplex core,
// presolve shrinks the problem with the classic reductions — empty and
// singleton rows, fixed and empty columns, activity-based bound
// tightening — and conditions what remains with geometric-mean scaling.
// Each reduction pushes one record onto an undo stack; postsolve replays
// the stack in reverse to reconstruct the full solution vector, the full
// dual vector and (for the revised core) a warm-start Basis of the
// original problem, so callers cannot tell a presolved solve from a
// direct one except by speed.
//
// The reductions, in fixpoint rotation until none fires:
//
//   - Empty row: a row with no surviving nonzeros is a pure feasibility
//     check of its (substituted) right-hand side — infeasible or gone.
//     Its dual is 0.
//   - Singleton row: a·x_v {sense} b over one surviving column is a
//     bound: b/a tightens x_v's box (both sides for EQ) and the row is
//     dropped. Postsolve recovers the row's dual from the residual
//     reduced cost of column v (see postsolveDuals).
//   - Fixed column: hi == lo pins x_v; its contribution moves into every
//     row's right-hand side and the objective offset. (Branch-and-bound
//     children pin binaries exactly like this, which is why the root
//     presolve keeps the integer columns out of the reductions.)
//   - Empty column: a column with no surviving rows moves to whichever
//     working bound the objective prefers — skipped when that bound is
//     infinite, leaving the unbounded direction for the core to detect.
//   - Bound tightening: per-row activity bounds prove infeasibility or
//     imply tighter boxes. Implied bounds are only installed when the
//     caller does not want duals: a variable resting on an implied bound
//     absorbs reduced cost that belongs to the implying row's dual,
//     which postsolve does not untangle. The infeasibility probe runs
//     either way.
//
// Scaling runs last, over the surviving submatrix: two rounds of
// geometric-mean equilibration with every scale rounded to a power of
// two, so postsolve's unscaling multiplications are exact and the solve
// is perturbed only through pivot choices, never through the values a
// round-trip reconstructs. Kept (integer) columns are never rescaled so
// branching bounds keep their meaning.
//
// SolveFrom never presolves: a warm-start Basis indexes the original
// rows, and branch-and-bound warm chains stay coherent by presolving
// once at the root (RootPresolve) and searching entirely in the reduced
// space.

import "math"

const (
	// presolveAutoRows is the constraint-row count at which PresolveAuto
	// switches the layer on: the scale where shrinking the basis pays for
	// the reduction pass. Smaller problems solve bit-identically to
	// PresolveOff.
	presolveAutoRows = 2048
	// presolveMaxPasses caps the reduction fixpoint rotations.
	presolveMaxPasses = 10
	// presolveTol is the feasibility tolerance of the reductions, scaled
	// by scaleOf of the quantity under test (the cores' feasTol).
	presolveTol = feasTol
)

// resolvePresolve maps a PresolveMode to a concrete on/off decision for a
// problem with m constraint rows.
func resolvePresolve(mode PresolveMode, m int) bool {
	switch mode {
	case PresolveOn:
		return true
	case PresolveOff:
		return false
	}
	return m >= presolveAutoRows
}

// Reduction kinds on the undo stack.
type presolveAction uint8

const (
	presolveFixedCol presolveAction = iota
	presolveEmptyCol
	presolveSingletonRow
)

// presolveRec is one undo record. Fields are per-action: fixed/empty
// columns store the resting value (and, for empty columns, whether that
// is the upper bound); singleton rows store the row, its surviving
// column and coefficient, and the original sense for the dual recovery.
type presolveRec struct {
	action  presolveAction
	row     int
	col     int
	coef    float64
	sense   Sense
	val     float64
	atUpper bool
}

// presolved is the outcome of a presolve: a decided status, or a reduced
// problem plus the undo program, or a fallback directive for the corner
// shapes the layer does not model (no surviving rows but surviving
// columns with an unbounded best bound).
type presolved struct {
	orig   *Problem
	status Status // Optimal: reduced ready (or fully decided); or Infeasible
	// fallback directs the caller to solve the original problem
	// unreduced.
	fallback bool

	reduced *Problem // nil when the reductions decided every variable
	n, m    int      // original dimensions

	cols   []int // reduced column -> original column
	rows   []int // reduced row -> original row
	colMap []int // original column -> reduced column (-1: eliminated)
	rowMap []int // original row -> reduced row (-1: eliminated)

	// Power-of-two scale factors by original index (nil: unscaled).
	// Reduced data is a' = r·a·s, b' = r·b, c' = c·s, lo' = lo/s,
	// hi' = hi/s; postsolve maps x = s·x', y = r·y'. The objective value
	// is invariant.
	colScale []float64
	rowScale []float64

	undo   []presolveRec
	objOff float64 // objective contribution of the eliminated columns
}

// reducer is the working state of the reduction fixpoint: the original
// rows in compressed form with both orientations, alive masks, working
// right-hand sides (fixed-column substitutions folded in) and working
// boxes (singleton-row implications, plus activity tightenings when the
// caller does not need duals).
type reducer struct {
	p         *Problem
	n, m      int
	needDuals bool

	sr     *sparseRows
	colPtr []int
	colRow []int
	colVal []float64

	rhs    []float64
	lo, hi []float64
	obj    []float64 // read-only view of p's objective

	rowAlive []bool
	colAlive []bool
	rowNnz   []int // surviving nonzeros per row
	colNnz   []int // surviving nonzeros per column
	keep     []bool

	undo       []presolveRec
	objOff     float64
	infeasible bool

	// Persistent backing for reuse across init calls on the same reducer
	// (a Workspace keeps one): the compressed-row storage sr points into,
	// the flattener scratch and the transpose cursor.
	srStore sparseRows
	ds      dedupScratch
	colNext []int
}

// presolveProblem runs the reductions on p with a fresh reducer. keepCols
// lists columns that must survive untouched by eliminations and scaling
// (branch-and-bound integers). needDuals gates the bound-tightening
// installs as described in the file comment.
//
// The fresh reducer matters: the returned presolved aliases the reducer's
// undo stack, and this path's callers (RootPresolve in particular) may
// hold it indefinitely. Reducer-reusing callers go through presolveInto
// and own the consume-before-next-solve discipline.
func presolveProblem(p *Problem, keepCols []int, needDuals bool) *presolved {
	var rd reducer
	return presolveInto(&rd, p, keepCols, needDuals)
}

// presolveInto runs the reductions on p using rd's storage. The returned
// presolved aliases rd's undo stack and must be consumed before rd is
// reused.
func presolveInto(rd *reducer, p *Problem, keepCols []int, needDuals bool) *presolved {
	n, m := p.nVars, p.NumConstraints()
	ps := &presolved{orig: p, status: Optimal, n: n, m: m}
	if m == 0 {
		ps.fallback = true
		return ps
	}

	rd.init(p, keepCols, needDuals)
	rd.run()
	if rd.infeasible {
		ps.status = Infeasible
		return ps
	}
	ps.undo = rd.undo
	ps.objOff = rd.objOff

	ps.colMap = make([]int, n)
	for j := 0; j < n; j++ {
		if rd.colAlive[j] {
			ps.colMap[j] = len(ps.cols)
			ps.cols = append(ps.cols, j)
		} else {
			ps.colMap[j] = -1
		}
	}
	ps.rowMap = make([]int, m)
	for i := 0; i < m; i++ {
		if rd.rowAlive[i] {
			ps.rowMap[i] = len(ps.rows)
			ps.rows = append(ps.rows, i)
		} else {
			ps.rowMap[i] = -1
		}
	}

	if len(ps.rows) == 0 {
		if len(ps.cols) == 0 {
			return ps // every variable decided; direct solution
		}
		// Rows all gone but box-only columns remain (an empty column kept
		// alive by an infinite best bound, or a kept integer): the layer
		// does not model a row-less core problem.
		ps.fallback = true
		return ps
	}

	rd.computeScaling(ps)
	ps.reduced = rd.buildReduced(ps)
	return ps
}

// init (re)builds the reducer's working state for p, reusing its storage
// (grown/taken everywhere), so a recycled reducer reaches zero
// steady-state allocations. The undo stack is truncated, not freed — the
// previous solve's presolved must already have been consumed.
func (rd *reducer) init(p *Problem, keepCols []int, needDuals bool) {
	n, m := p.nVars, p.NumConstraints()
	rd.p = p
	rd.n, rd.m = n, m
	rd.needDuals = needDuals
	rd.sr = rd.ds.flatten(p, &rd.srStore)
	rd.obj = p.obj
	rd.rhs = taken(rd.rhs, rd.sr.rhs)
	rd.lo = grown(rd.lo, n)
	rd.hi = grown(rd.hi, n)
	rd.rowAlive = grown(rd.rowAlive, m)
	rd.colAlive = grown(rd.colAlive, n)
	rd.rowNnz = grown(rd.rowNnz, m)
	rd.colNnz = grown(rd.colNnz, n)
	rd.keep = grown(rd.keep, n)
	rd.undo = rd.undo[:0]
	rd.objOff = 0
	rd.infeasible = false
	for v := 0; v < n; v++ {
		rd.lo[v], rd.hi[v] = p.boundsAt(v)
		rd.colAlive[v] = true
	}
	for i := 0; i < m; i++ {
		rd.rowAlive[i] = true
		rd.rowNnz[i] = rd.sr.ptr[i+1] - rd.sr.ptr[i]
	}
	// Counting transpose of the deduped rows: the column view fixed-column
	// elimination walks.
	rd.colPtr = grown(rd.colPtr, n+1)
	for _, j := range rd.sr.idx {
		rd.colPtr[j+1]++
	}
	for j := 0; j < n; j++ {
		rd.colPtr[j+1] += rd.colPtr[j]
		rd.colNnz[j] = rd.colPtr[j+1] - rd.colPtr[j]
	}
	rd.colRow = grown(rd.colRow, len(rd.sr.idx))
	rd.colVal = grown(rd.colVal, len(rd.sr.idx))
	rd.colNext = grown(rd.colNext, n)
	next := rd.colNext
	copy(next, rd.colPtr[:n])
	for i := 0; i < m; i++ {
		for k := rd.sr.ptr[i]; k < rd.sr.ptr[i+1]; k++ {
			j := rd.sr.idx[k]
			rd.colRow[next[j]] = i
			rd.colVal[next[j]] = rd.sr.val[k]
			next[j]++
		}
	}
	for _, v := range keepCols {
		rd.keep[v] = true
	}
}

// run rotates the reduction passes to a fixpoint (or the pass cap).
func (rd *reducer) run() {
	for pass := 0; pass < presolveMaxPasses; pass++ {
		changed := false
		for i := 0; i < rd.m && !rd.infeasible; i++ {
			if !rd.rowAlive[i] {
				continue
			}
			switch rd.rowNnz[i] {
			case 0:
				rd.elimEmptyRow(i)
				changed = true
			case 1:
				rd.elimSingletonRow(i)
				changed = true
			}
		}
		if rd.infeasible {
			return
		}
		for j := 0; j < rd.n && !rd.infeasible; j++ {
			if !rd.colAlive[j] || rd.keep[j] {
				continue
			}
			switch {
			case rd.hi[j] <= rd.lo[j]:
				rd.elimFixedCol(j)
				changed = true
			case rd.colNnz[j] == 0:
				if rd.elimEmptyCol(j) {
					changed = true
				}
			}
		}
		if rd.infeasible {
			return
		}
		if rd.tighten() {
			changed = true
		}
		if rd.infeasible || !changed {
			return
		}
	}
}

// dropRow retires row i and updates the surviving-nonzero column counts.
func (rd *reducer) dropRow(i int) {
	rd.rowAlive[i] = false
	for k := rd.sr.ptr[i]; k < rd.sr.ptr[i+1]; k++ {
		if j := rd.sr.idx[k]; rd.colAlive[j] {
			rd.colNnz[j]--
		}
	}
}

// elimEmptyRow feasibility-checks 0 {sense} rhs and drops the row. All
// columns the row ever touched were eliminated as fixed (an alive column
// with a nonzero entry would keep the count positive), so the working
// right-hand side carries their exact substitutions.
func (rd *reducer) elimEmptyRow(i int) {
	b := rd.rhs[i]
	tol := presolveTol * scaleOf(b)
	switch rd.sr.sense[i] {
	case LE:
		if b < -tol {
			rd.infeasible = true
			return
		}
	case GE:
		if b > tol {
			rd.infeasible = true
			return
		}
	case EQ:
		if math.Abs(b) > tol {
			rd.infeasible = true
			return
		}
	}
	rd.dropRow(i)
}

// elimSingletonRow turns a one-column row a·x_v {sense} b into the bound
// b/a on x_v and drops the row, recording it for dual recovery.
func (rd *reducer) elimSingletonRow(i int) {
	var v int
	var a float64
	for k := rd.sr.ptr[i]; k < rd.sr.ptr[i+1]; k++ {
		if j := rd.sr.idx[k]; rd.colAlive[j] {
			v, a = j, rd.sr.val[k]
			break
		}
	}
	b := rd.rhs[i]
	bound := b / a
	sense := rd.sr.sense[i]
	switch {
	case sense == EQ:
		tol := presolveTol * scaleOf(bound)
		if bound < rd.lo[v]-tol || bound > rd.hi[v]+tol {
			rd.infeasible = true
			return
		}
		bound = math.Max(rd.lo[v], math.Min(rd.hi[v], bound))
		rd.lo[v], rd.hi[v] = bound, bound
	case (sense == LE) == (a > 0):
		rd.clampHi(v, bound)
	default:
		rd.clampLo(v, bound)
	}
	if rd.infeasible {
		return
	}
	rd.undo = append(rd.undo, presolveRec{
		action: presolveSingletonRow, row: i, col: v, coef: a, sense: sense,
	})
	rd.dropRow(i)
}

// clampHi tightens x_v's upper bound to nh if that improves it, snapping
// a box emptied within tolerance and flagging one emptied beyond it.
func (rd *reducer) clampHi(v int, nh float64) {
	if nh >= rd.hi[v] {
		return
	}
	rd.hi[v] = nh
	if rd.hi[v] < rd.lo[v] {
		if rd.hi[v] < rd.lo[v]-presolveTol*scaleOf(rd.lo[v]) {
			rd.infeasible = true
			return
		}
		rd.hi[v] = rd.lo[v]
	}
}

// clampLo is clampHi's mirror for the lower bound.
func (rd *reducer) clampLo(v int, nl float64) {
	if nl <= rd.lo[v] {
		return
	}
	rd.lo[v] = nl
	if rd.lo[v] > rd.hi[v] {
		if rd.lo[v] > rd.hi[v]+presolveTol*scaleOf(rd.hi[v]) {
			rd.infeasible = true
			return
		}
		rd.lo[v] = rd.hi[v]
	}
}

// elimFixedCol substitutes the pinned x_v into every surviving row's
// right-hand side and the objective offset, then retires the column.
func (rd *reducer) elimFixedCol(v int) {
	val := rd.lo[v]
	for k := rd.colPtr[v]; k < rd.colPtr[v+1]; k++ {
		i := rd.colRow[k]
		if !rd.rowAlive[i] {
			continue
		}
		rd.rhs[i] -= rd.colVal[k] * val
		rd.rowNnz[i]--
	}
	rd.objOff += rd.obj[v] * val
	rd.colAlive[v] = false
	rd.undo = append(rd.undo, presolveRec{action: presolveFixedCol, col: v, val: val})
}

// elimEmptyCol rests a column with no surviving rows at whichever working
// bound the objective prefers. A preferred bound at infinity leaves the
// column alive — the core detects the unbounded ray if the rest of the
// problem turns out feasible.
func (rd *reducer) elimEmptyCol(v int) bool {
	c := rd.obj[v]
	val, atUpper := rd.lo[v], false
	if c > 0 {
		if math.IsInf(rd.hi[v], 1) {
			return false
		}
		val, atUpper = rd.hi[v], rd.hi[v] > rd.lo[v]
	}
	rd.objOff += c * val
	rd.colAlive[v] = false
	rd.undo = append(rd.undo, presolveRec{action: presolveEmptyCol, col: v, val: val, atUpper: atUpper})
	return true
}

// tighten runs the activity-bounds pass over every surviving multi-column
// row: an infeasibility probe always, implied-bound installs only when
// the caller does not need duals.
func (rd *reducer) tighten() bool {
	changed := false
	for i := 0; i < rd.m; i++ {
		if !rd.rowAlive[i] || rd.rowNnz[i] < 2 {
			continue
		}
		if rd.tightenRow(i) {
			changed = true
		}
		if rd.infeasible {
			return changed
		}
	}
	return changed
}

func (rd *reducer) tightenRow(i int) bool {
	idx, val := rd.sr.row(i)
	b := rd.rhs[i]
	sense := rd.sr.sense[i]

	// Row activity bounds over the surviving columns. Only an infinite
	// upper bound can push a contribution to ±inf (lower bounds are
	// finite by construction), so one counter per direction suffices.
	var minSum, maxSum float64
	var minInf, maxInf int
	for k := range idx {
		j := idx[k]
		if !rd.colAlive[j] {
			continue
		}
		a := val[k]
		if a > 0 {
			minSum += a * rd.lo[j]
			if math.IsInf(rd.hi[j], 1) {
				maxInf++
			} else {
				maxSum += a * rd.hi[j]
			}
		} else {
			maxSum += a * rd.lo[j]
			if math.IsInf(rd.hi[j], 1) {
				minInf++
			} else {
				minSum += a * rd.hi[j]
			}
		}
	}
	tol := presolveTol * scaleOf(b)
	if (sense == LE || sense == EQ) && minInf == 0 && minSum > b+tol {
		rd.infeasible = true
		return false
	}
	if (sense == GE || sense == EQ) && maxInf == 0 && maxSum < b-tol {
		rd.infeasible = true
		return false
	}
	if rd.needDuals {
		return false // probe only; installs would orphan reduced costs
	}

	// Implied bounds: a_j·x_j {<=,>=} b − (activity bound of the others).
	// Bounds installed earlier in this row only loosen the cached sums,
	// so later candidates stay valid (merely weaker than freshest).
	changed := false
	for k := range idx {
		j := idx[k]
		if !rd.colAlive[j] {
			continue
		}
		a := val[k]
		if sense == LE || sense == EQ {
			if resid, ok := rd.activityResidual(minSum, minInf, a, j, false); ok {
				cand := (b - resid) / a
				if a > 0 {
					if cand < rd.hi[j]-presolveTol*scaleOf(cand) {
						rd.clampHi(j, cand)
						changed = true
					}
				} else if cand > rd.lo[j]+presolveTol*scaleOf(cand) {
					rd.clampLo(j, cand)
					changed = true
				}
			}
		}
		if rd.infeasible {
			return changed
		}
		if sense == GE || sense == EQ {
			if resid, ok := rd.activityResidual(maxSum, maxInf, a, j, true); ok {
				cand := (b - resid) / a
				if a > 0 {
					if cand > rd.lo[j]+presolveTol*scaleOf(cand) {
						rd.clampLo(j, cand)
						changed = true
					}
				} else if cand < rd.hi[j]-presolveTol*scaleOf(cand) {
					rd.clampHi(j, cand)
					changed = true
				}
			}
		}
		if rd.infeasible {
			return changed
		}
	}
	return changed
}

// activityResidual returns the activity bound of a row minus column j's
// own contribution — the tightest finite bound on what the other columns
// contribute — with ok=false when that residual is infinite. upper
// selects the max-activity direction.
func (rd *reducer) activityResidual(sum float64, infs int, a float64, j int, upper bool) (float64, bool) {
	var contrib float64
	infContrib := false
	switch {
	case (a > 0) == upper: // a>0 against hi, a<0 against hi in min sense
		if math.IsInf(rd.hi[j], 1) {
			infContrib = true
		} else {
			contrib = a * rd.hi[j]
		}
	default:
		contrib = a * rd.lo[j]
	}
	if infContrib {
		if infs == 1 {
			return sum, true
		}
		return 0, false
	}
	if infs > 0 {
		return 0, false
	}
	return sum - contrib, true
}

// computeScaling fills ps.colScale/rowScale with two rounds of
// geometric-mean equilibration over the surviving submatrix, every scale
// rounded to a power of two (exact unscaling). Kept columns stay at 1.
// All-unit scalings are dropped to nil so the common well-scaled case
// pays nothing at postsolve.
func (rd *reducer) computeScaling(ps *presolved) {
	rowS := make([]float64, rd.m)
	colS := make([]float64, rd.n)
	for i := range rowS {
		rowS[i] = 1
	}
	for j := range colS {
		colS[j] = 1
	}
	for round := 0; round < 2; round++ {
		for _, i := range ps.rows {
			minA, maxA := math.Inf(1), 0.0
			for k := rd.sr.ptr[i]; k < rd.sr.ptr[i+1]; k++ {
				j := rd.sr.idx[k]
				if !rd.colAlive[j] {
					continue
				}
				if a := math.Abs(rd.sr.val[k]) * colS[j]; a > 0 {
					minA = math.Min(minA, a)
					maxA = math.Max(maxA, a)
				}
			}
			if maxA > 0 {
				rowS[i] = pow2Recip(math.Sqrt(minA * maxA))
			}
		}
		for _, j := range ps.cols {
			if rd.keep[j] {
				continue
			}
			minA, maxA := math.Inf(1), 0.0
			for k := rd.colPtr[j]; k < rd.colPtr[j+1]; k++ {
				i := rd.colRow[k]
				if !rd.rowAlive[i] {
					continue
				}
				if a := math.Abs(rd.colVal[k]) * rowS[i]; a > 0 {
					minA = math.Min(minA, a)
					maxA = math.Max(maxA, a)
				}
			}
			if maxA > 0 {
				colS[j] = pow2Recip(math.Sqrt(minA * maxA))
			}
		}
	}
	allUnit := true
	for _, i := range ps.rows {
		//lint:ignore floatcmp scales are exact powers of two; 1 is the exact no-op value
		if rowS[i] != 1 {
			allUnit = false
			break
		}
	}
	if allUnit {
		for _, j := range ps.cols {
			//lint:ignore floatcmp scales are exact powers of two; 1 is the exact no-op value
			if colS[j] != 1 {
				allUnit = false
				break
			}
		}
	}
	if allUnit {
		return
	}
	ps.rowScale, ps.colScale = rowS, colS
}

// pow2Recip returns the power of two nearest to 1/g (so that g·pow2Recip(g)
// lands in [1/sqrt2, sqrt2)); 1 for degenerate inputs.
func pow2Recip(g float64) float64 {
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		return 1
	}
	frac, exp := math.Frexp(g) // g = frac·2^exp, frac in [0.5, 1)
	if frac < math.Sqrt2/2 {
		exp--
	}
	return math.Ldexp(1, -exp)
}

// buildReduced materialises the surviving subproblem with the scaling
// applied.
func (rd *reducer) buildReduced(ps *presolved) *Problem {
	rp := NewProblem(len(ps.cols))
	for rj, oj := range ps.cols {
		s := 1.0
		if ps.colScale != nil {
			s = ps.colScale[oj]
		}
		if c := rd.obj[oj]; c != 0 {
			rp.SetObjCoef(rj, c*s)
		}
		lo, hi := rd.lo[oj]/s, rd.hi[oj]/s
		if lo != 0 || !math.IsInf(hi, 1) {
			rp.SetBounds(rj, lo, hi)
		}
	}
	terms := make([]Term, 0, 16)
	for _, oi := range ps.rows {
		r := 1.0
		if ps.rowScale != nil {
			r = ps.rowScale[oi]
		}
		terms = terms[:0]
		for k := rd.sr.ptr[oi]; k < rd.sr.ptr[oi+1]; k++ {
			oj := rd.sr.idx[k]
			if !rd.colAlive[oj] {
				continue
			}
			s := 1.0
			if ps.colScale != nil {
				s = ps.colScale[oj]
			}
			terms = append(terms, Term{Var: ps.colMap[oj], Coef: rd.sr.val[k] * r * s})
		}
		rp.AddConstraint(terms, rd.sr.sense[oi], rd.rhs[oi]*r)
	}
	return rp
}

// postsolveX reconstructs the original-problem solution vector from a
// reduced one: scatter and unscale the surviving columns, then replay
// the undo stack in reverse for the eliminated ones.
func (ps *presolved) postsolveX(xr []float64) []float64 {
	x := make([]float64, ps.n)
	for rj, oj := range ps.cols {
		v := xr[rj]
		if ps.colScale != nil {
			v *= ps.colScale[oj]
		}
		x[oj] = v
	}
	for k := len(ps.undo) - 1; k >= 0; k-- {
		u := ps.undo[k]
		if u.action == presolveFixedCol || u.action == presolveEmptyCol {
			x[u.col] = u.val
		}
	}
	return x
}

// postsolveDuals reconstructs the original-problem dual vector: unscale
// and scatter the surviving rows' duals (eliminated rows start at 0),
// then walk the undo stack in reverse assigning each singleton row the
// residual reduced cost of its column — unless that residual is already
// absorbed: negligible, the row is slack at x (complementary slackness),
// or the column rests on one of its original bounds with the admissible
// sign. After a row takes a column's residual the later (earlier-pushed)
// records on the same column see zero and stay at 0, so each column's
// residual is attributed at most once.
func (ps *presolved) postsolveDuals(x, yr []float64) []float64 {
	y := make([]float64, ps.m)
	for ri, oi := range ps.rows {
		v := yr[ri]
		if ps.rowScale != nil {
			v *= ps.rowScale[oi]
		}
		y[oi] = v
	}
	var sr *sparseRows
	var colPtr, colRow []int
	var colVal []float64
	for k := len(ps.undo) - 1; k >= 0; k-- {
		u := ps.undo[k]
		if u.action != presolveSingletonRow {
			continue
		}
		if sr == nil {
			sr, colPtr, colRow, colVal = ps.origColumns()
		}
		v := u.col
		// Residual reduced cost of column v under the duals assigned so
		// far, with Certify's column-activity scaling on the tolerance.
		red := ps.orig.obj[v]
		absSum := 0.0
		for t := colPtr[v]; t < colPtr[v+1]; t++ {
			c := y[colRow[t]] * colVal[t]
			red -= c
			absSum += math.Abs(c)
		}
		if math.Abs(red) <= presolveTol*math.Max(1, absSum) {
			continue
		}
		// Slack rows carry no dual: their implied bound cannot be the one
		// x rests on.
		i := u.row
		act := u.coef * x[v]
		for t := sr.ptr[i]; t < sr.ptr[i+1]; t++ {
			if j := sr.idx[t]; j != v {
				act += sr.val[t] * x[j]
			}
		}
		b := sr.rhs[i]
		atol := presolveTol * scaleOf(b)
		if (u.sense == LE && act < b-atol) || (u.sense == GE && act > b+atol) {
			continue
		}
		// A residual the column's own original bound can absorb with the
		// admissible sign belongs to that bound's multiplier, not the row.
		lo, hi := ps.orig.boundsAt(v)
		if red > 0 && !math.IsInf(hi, 1) && x[v] >= hi-presolveTol*scaleOf(hi) {
			continue
		}
		if red < 0 && x[v] <= lo+presolveTol*scaleOf(lo) {
			continue
		}
		y[i] = red / u.coef
	}
	return y
}

// origColumns lazily builds the original problem's deduped rows and their
// counting transpose for the dual recovery's column walks.
func (ps *presolved) origColumns() (*sparseRows, []int, []int, []float64) {
	sr := dedupRows(ps.orig)
	n := ps.n
	colPtr := make([]int, n+1)
	for _, j := range sr.idx {
		colPtr[j+1]++
	}
	for j := 0; j < n; j++ {
		colPtr[j+1] += colPtr[j]
	}
	colRow := make([]int, len(sr.idx))
	colVal := make([]float64, len(sr.idx))
	next := append([]int(nil), colPtr[:n]...)
	for i := 0; i < len(sr.sense); i++ {
		for k := sr.ptr[i]; k < sr.ptr[i+1]; k++ {
			j := sr.idx[k]
			colRow[next[j]] = i
			colVal[next[j]] = sr.val[k]
			next[j]++
		}
	}
	return sr, colPtr, colRow, colVal
}

// reducedCosts recomputes c − yᵀA over the original problem for a mapped
// dual vector.
func (ps *presolved) reducedCosts(y []float64) []float64 {
	red := append([]float64(nil), ps.orig.obj...)
	for i := 0; i < ps.m; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		r := ps.orig.rowAt(i)
		for _, tm := range r.terms {
			red[tm.Var] -= yi * tm.Coef
		}
	}
	return red
}

// restoreBasis maps a reduced-problem basis onto the original problem:
// surviving rows translate their entries through the index maps, and
// every eliminated row seats its own logical — the basis matrix is block
// triangular over the (surviving, eliminated) row split, so the restored
// column set is nonsingular whenever the reduced one was. The
// factorisation snapshot does not survive the reindexing; SolveFrom
// refactorises on first use. With a nil reduced basis (every row
// eliminated) the restored basis is all logicals.
func (ps *presolved) restoreBasis(br *Basis) *Basis {
	if br == nil && ps.reduced != nil {
		return nil // non-optimal reduced solve: nothing to restore
	}
	entries := make([]basisEntry, ps.m)
	atUpper := make([]bool, ps.n)
	for i := 0; i < ps.m; i++ {
		ri := ps.rowMap[i]
		if ri < 0 || br == nil {
			entries[i] = basisEntry{kind: basisLogical, idx: i}
			continue
		}
		e := br.entries[ri]
		switch e.kind {
		case basisStructural:
			entries[i] = basisEntry{kind: basisStructural, idx: ps.cols[e.idx]}
		default:
			entries[i] = basisEntry{kind: e.kind, idx: ps.rows[e.idx]}
		}
	}
	if br != nil && br.atUpper != nil {
		for rj, oj := range ps.cols {
			if br.atUpper[rj] {
				atUpper[oj] = true
			}
		}
	}
	for _, u := range ps.undo {
		if u.action == presolveEmptyCol && u.atUpper {
			atUpper[u.col] = true
		}
	}
	return &Basis{nVars: ps.n, entries: entries, atUpper: atUpper}
}

// mapSolution lifts a reduced-problem Solution to the original problem.
// The objective is recomputed from the original coefficients over the
// postsolved X, which also folds the eliminated columns' offset back in.
func (ps *presolved) mapSolution(sol *Solution) *Solution {
	out := &Solution{Status: sol.Status, Iterations: sol.Iterations, FactorRebuilt: sol.FactorRebuilt}
	if sol.X == nil {
		return out
	}
	out.X = ps.postsolveX(sol.X)
	for v, c := range ps.orig.obj {
		out.Objective += c * out.X[v]
	}
	return out
}

// directSolution is the solution of a problem presolve decided outright
// (every column eliminated, every row feasibility-checked).
func (ps *presolved) directSolution() *Solution {
	sol := &Solution{Status: Optimal, X: ps.postsolveX(nil)}
	for v, c := range ps.orig.obj {
		sol.Objective += c * sol.X[v]
	}
	return sol
}

// directDualSolution augments directSolution with duals: eliminated rows
// start at zero and the singleton recovery fills in the binding ones.
func (ps *presolved) directDualSolution() *DualSolution {
	sol := ps.directSolution()
	ds := &DualSolution{Solution: *sol}
	ds.Duals = ps.postsolveDuals(sol.X, nil)
	ds.ReducedCosts = ps.reducedCosts(ds.Duals)
	return ds
}

// mapDualSolution lifts a reduced-problem DualSolution to the original
// problem: X and objective via mapSolution, duals via the undo walk,
// reduced costs recomputed against the recovered duals.
func (ps *presolved) mapDualSolution(ds *DualSolution) *DualSolution {
	out := &DualSolution{Solution: *ps.mapSolution(&ds.Solution)}
	if ds.Status != Optimal || ds.Duals == nil {
		return out
	}
	out.Duals = ps.postsolveDuals(out.X, ds.Duals)
	out.ReducedCosts = ps.reducedCosts(out.Duals)
	return out
}

// presolveFor runs the layer for one of the package-level solve entry
// points. It returns nil when the solve should proceed directly on the
// original problem: the mode resolves to off, or presolve hit a corner
// it does not model (fallback).
func presolveFor(p *Problem, opts Options, needDuals bool) *presolved {
	if !resolvePresolve(opts.Presolve, p.NumConstraints()) {
		return nil
	}
	ps := presolveProblem(p, nil, needDuals)
	if ps.fallback {
		return nil
	}
	return ps
}

// Presolved is the exported presolve handle for callers that run many
// related solves in the reduced space — branch-and-bound presolves once
// at the root, searches reduced, and postsolves incumbents. Columns in
// the keep set survive every reduction unscaled, so their indices map
// through Col and their values are identical in both spaces.
type Presolved struct {
	ps *presolved
}

// RootPresolve presolves p for a reduced-space search. keep lists columns
// that must survive untouched (integer variables). It returns nil when
// opts.Presolve resolves to off or the layer cannot reduce this shape,
// in which case the caller proceeds on the original problem.
func RootPresolve(p *Problem, keep []int, opts Options) *Presolved {
	if !resolvePresolve(opts.Presolve, p.NumConstraints()) {
		return nil
	}
	ps := presolveProblem(p, keep, false)
	if ps.fallback {
		return nil
	}
	return &Presolved{ps: ps}
}

// Status is Optimal when a reduced problem (or a directly decided
// solution) is available, Infeasible when presolve proved the original
// problem infeasible.
func (r *Presolved) Status() Status { return r.ps.status }

// Reduced returns the reduced problem, or nil when presolve decided
// every variable (PostsolveX(nil) is then the complete solution).
func (r *Presolved) Reduced() *Problem { return r.ps.reduced }

// Col maps an original column index to its reduced index (-1 when the
// column was eliminated; never -1 for keep columns).
func (r *Presolved) Col(orig int) int { return r.ps.colMap[orig] }

// PostsolveX reconstructs the original-space solution vector from a
// reduced-space one.
func (r *Presolved) PostsolveX(xr []float64) []float64 { return r.ps.postsolveX(xr) }

// ObjOffset is the objective contribution of the eliminated columns:
// original objective = reduced objective + ObjOffset.
func (r *Presolved) ObjOffset() float64 { return r.ps.objOff }
