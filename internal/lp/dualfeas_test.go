package lp

// Tests for the two small API additions carried by the branch-and-cut
// work: the Problem.Constraint row accessor (the cut separator reads rows
// through it) and the Solution.DualFeasible flag (strong-branching probes
// trust a truncated warm solve's objective as a bound only when it is
// set).

import (
	"math"
	"testing"
)

func TestConstraintAccessor(t *testing.T) {
	p := NewProblem(3)
	p.AddConstraint([]Term{{Var: 0, Coef: 2}, {Var: 2, Coef: -1}}, LE, 7)
	p.AddConstraint([]Term{{Var: 1, Coef: 1}}, GE, -3)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, EQ, 1)

	terms, sense, rhs := p.Constraint(0)
	//lint:ignore floatcmp the accessor returns the stored literals verbatim; identity is exact
	if len(terms) != 2 || terms[0] != (Term{Var: 0, Coef: 2}) || sense != LE || rhs != 7 {
		t.Fatalf("Constraint(0) = %v %v %g", terms, sense, rhs)
	}
	//lint:ignore floatcmp the accessor returns the stored literals verbatim; identity is exact
	if terms[1] != (Term{Var: 2, Coef: -1}) {
		t.Fatalf("Constraint(0) terms[1] = %v", terms[1])
	}
	//lint:ignore floatcmp the accessor returns the stored literals verbatim; identity is exact
	if _, sense, rhs = p.Constraint(1); sense != GE || rhs != -3 {
		t.Fatalf("Constraint(1) sense %v rhs %g", sense, rhs)
	}
	if terms, _, _ = p.Constraint(2); len(terms) != 3 {
		t.Fatalf("Constraint(2) terms %v", terms)
	}

	for _, i := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Constraint(%d) did not panic", i)
				}
			}()
			p.Constraint(i)
		}()
	}
}

// dualFeasProblem is a small LP with a non-trivial optimal vertex:
// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, 0 <= x,y <= 3.
func dualFeasProblem() *Problem {
	p := NewProblem(2)
	p.SetObjCoef(0, 3)
	p.SetObjCoef(1, 2)
	p.SetBounds(0, 0, 3)
	p.SetBounds(1, 0, 3)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, LE, 4)
	p.AddConstraint([]Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 3}}, LE, 6)
	return p
}

func TestDualFeasibleFlag(t *testing.T) {
	p := dualFeasProblem()
	sol, basis, err := SolveBasis(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if !sol.DualFeasible {
		t.Error("optimal cold solve not marked dual feasible")
	}
	opt := sol.Objective

	// Tighten a bound that cuts off the optimal vertex (x <= 1): the old
	// basis stays dual feasible, so a warm re-solve truncated after a
	// single dual pivot must still report DualFeasible — its objective is
	// a valid upper bound on the tightened problem.
	p.SetBounds(0, 0, 1)
	ws := NewWorkspace()
	truncated, err := ws.SolveFrom(p, basis, Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if truncated.Status == Optimal {
		t.Skip("re-solve finished within one pivot; no truncated case to assert")
	}
	if !truncated.DualFeasible {
		t.Fatalf("warm re-solve truncated in the dual phase (status %v) not marked dual feasible",
			truncated.Status)
	}
	exact, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status != Optimal {
		t.Fatalf("tightened problem status %v", exact.Status)
	}
	if truncated.Objective < exact.Objective-1e-9 {
		t.Errorf("truncated dual-feasible objective %.12g below true optimum %.12g — not a valid bound",
			truncated.Objective, exact.Objective)
	}
	if exact.Objective > opt {
		t.Errorf("tightening raised the optimum: %g > %g", exact.Objective, opt)
	}

	// A cold solve stopped by an iteration cap sits mid primal phase:
	// its objective bounds nothing, so the flag must be off.
	capped, err := Solve(dualFeasProblem(), Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Status != Optimal && capped.DualFeasible {
		t.Errorf("iteration-capped cold solve (status %v) marked dual feasible", capped.Status)
	}
	if math.IsNaN(capped.Objective) {
		t.Error("iteration-capped solve returned NaN objective")
	}
}
