// Package stats provides the summary statistics used by the experiment
// harness to report replicate series: mean, min, max, standard deviation,
// and percentiles, plus a Summary aggregate that renders the rows in the
// tables of EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over xs. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Min:  math.Inf(1),
		Max:  math.Inf(-1),
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Std = Std(xs)
	s.Median = Percentile(xs, 50)
	return s
}

// String renders the summary compactly: "mean ± std [min, max] (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g [%.4g, %.4g] (n=%d)", s.Mean, s.Std, s.Min, s.Max, s.N)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return numeric.Sum(xs) / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for n < 2).
func Std(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var acc numeric.KahanSum
	for _, x := range xs {
		d := x - m
		acc.Add(d * d)
	}
	return math.Sqrt(acc.Value() / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input and
// panics for out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of range [0,100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MinMax returns the smallest and largest element of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given confidence level (e.g. 0.95), using iters
// resamples drawn with the provided uniform-int source. It returns the
// sample mean for degenerate inputs (n < 2 or iters < 1).
func BootstrapCI(xs []float64, confidence float64, iters int, intn func(int) int) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 || iters < 1 || confidence <= 0 || confidence >= 1 {
		return m, m
	}
	means := make([]float64, iters)
	resample := make([]float64, len(xs))
	for b := 0; b < iters; b++ {
		for i := range resample {
			resample[i] = xs[intn(len(xs))]
		}
		means[b] = Mean(resample)
	}
	alpha := (1 - confidence) / 2
	return Percentile(means, 100*alpha), Percentile(means, 100*(1-alpha))
}
