package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); !numeric.AlmostEqual(got, 2.5) {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Error("std of single element should be 0")
	}
	// Known sample: {2,4,4,4,5,5,7,9} has sample std sqrt(32/7).
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); !numeric.AlmostEqual(got, 15) {
		t.Errorf("Percentile 50 of {10,20} = %g, want 15", got)
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p > 100")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if !numeric.AlmostEqual(xs[0], 3) || !numeric.AlmostEqual(xs[1], 1) || !numeric.AlmostEqual(xs[2], 2) {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !numeric.AlmostEqual(s.Mean, 2) || !numeric.AlmostEqual(s.Min, 1) ||
		!numeric.AlmostEqual(s.Max, 3) || !numeric.AlmostEqual(s.Median, 2) {
		t.Errorf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("Summarize(nil).N should be 0")
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if !numeric.AlmostEqual(min, -1) || !numeric.AlmostEqual(max, 7) {
		t.Errorf("MinMax = %g,%g", min, max)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax of empty should panic")
		}
	}()
	MinMax(nil)
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Min <= s.Median && s.Median <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCI(t *testing.T) {
	src := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + src.NormFloat64()
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, src.Intn)
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Errorf("CI [%g, %g] does not contain the mean %g", lo, hi, m)
	}
	// The CI for n=200 unit-variance data should be tight around the mean.
	if hi-lo > 0.5 {
		t.Errorf("CI too wide: [%g, %g]", lo, hi)
	}
	// Degenerate cases collapse to the mean.
	if lo, hi := BootstrapCI([]float64{5}, 0.95, 100, src.Intn); !numeric.AlmostEqual(lo, 5) || !numeric.AlmostEqual(hi, 5) {
		t.Errorf("degenerate CI = [%g, %g]", lo, hi)
	}
	if lo, hi := BootstrapCI(xs, 0, 100, src.Intn); !numeric.AlmostEqual(lo, hi) {
		t.Errorf("zero-confidence CI should collapse, got [%g, %g]", lo, hi)
	}
}
