package machine

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

func TestMachineBasics(t *testing.T) {
	m := New("gpu", 2_000, 80)
	if !numeric.AlmostEqual(m.Speed, 2_000) {
		t.Errorf("Speed = %g", m.Speed)
	}
	if math.Abs(m.Power-25) > 1e-12 {
		t.Errorf("Power = %g, want 25", m.Power)
	}
	if math.Abs(m.Efficiency()-80) > 1e-12 {
		t.Errorf("Efficiency = %g, want 80", m.Efficiency())
	}
	if math.Abs(m.EnergyPerGFLOP()-1.0/80) > 1e-15 {
		t.Errorf("EnergyPerGFLOP = %g", m.EnergyPerGFLOP())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	if m.String() == "" {
		t.Error("String should render")
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	if err := (Machine{Speed: 0, Power: 10}).Validate(); err == nil {
		t.Error("zero speed should fail")
	}
	if err := (Machine{Speed: 10, Power: 0}).Validate(); err == nil {
		t.Error("zero power should fail")
	}
	if err := (Fleet{}).Validate(); err == nil {
		t.Error("empty fleet should fail")
	}
	if err := (Fleet{{Speed: 1, Power: 1}, {Speed: -1, Power: 1}}).Validate(); err == nil {
		t.Error("fleet with bad machine should fail")
	}
}

func TestNewPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with non-positive speed should panic")
		}
	}()
	New("bad", 0, 10)
}

func TestFleetAggregates(t *testing.T) {
	f := Fleet{New("a", 1_000, 10), New("b", 3_000, 30)}
	if !numeric.AlmostEqual(f.TotalSpeed(), 4_000) {
		t.Errorf("TotalSpeed = %g", f.TotalSpeed())
	}
	if math.Abs(f.TotalPower()-200) > 1e-9 {
		t.Errorf("TotalPower = %g, want 200", f.TotalPower())
	}
	c := f.Clone()
	c[0].Speed = 99
	if numeric.AlmostEqual(f[0].Speed, 99) {
		t.Error("Clone should be independent")
	}
}

func TestByEfficiencyDesc(t *testing.T) {
	f := Fleet{
		New("low", 5_000, 10),
		New("high", 2_000, 80),
		New("mid", 1_000, 40),
	}
	order := f.ByEfficiencyDesc()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	// Ties break by higher speed, then index.
	tied := Fleet{New("slow", 1_000, 20), New("fast", 2_000, 20)}
	o := tied.ByEfficiencyDesc()
	if o[0] != 1 || o[1] != 0 {
		t.Errorf("tie-break order = %v, want [1 0]", o)
	}
}

func TestUniformFleetRanges(t *testing.T) {
	src := rng.New(1, "fleet")
	f := UniformFleet(src, 200)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range f {
		if m.Speed < MinSpeed || m.Speed >= MaxSpeed {
			t.Fatalf("speed %g out of range", m.Speed)
		}
		e := m.Efficiency()
		if e < MinEfficiency-1e-9 || e >= MaxEfficiency+1e-9 {
			t.Fatalf("efficiency %g out of range", e)
		}
	}
}

func TestUniformFleetDeterminism(t *testing.T) {
	a := UniformFleet(rng.New(7, "det"), 5)
	b := UniformFleet(rng.New(7, "det"), 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fleet generation is not deterministic at %d", i)
		}
	}
}

func TestUniformFleetPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UniformFleet(_, 0) should panic")
		}
	}()
	UniformFleet(rng.New(1, "x"), 0)
}

func TestTwoMachineScenario(t *testing.T) {
	f := TwoMachineScenario()
	if len(f) != 2 {
		t.Fatalf("len = %d", len(f))
	}
	if !numeric.AlmostEqual(f[0].Speed, 2_000) || math.Abs(f[0].Efficiency()-80) > 1e-9 {
		t.Errorf("machine 1 = %v", f[0])
	}
	if !numeric.AlmostEqual(f[1].Speed, 5_000) || math.Abs(f[1].Efficiency()-70) > 1e-9 {
		t.Errorf("machine 2 = %v", f[1])
	}
	if f[0].Efficiency() <= f[1].Efficiency() {
		t.Error("machine 1 must be more efficient than machine 2")
	}
	if f[0].Speed >= f[1].Speed {
		t.Error("machine 1 must be slower than machine 2")
	}
}

func TestCatalog(t *testing.T) {
	if len(Catalog) < 10 {
		t.Fatalf("catalog too small: %d entries", len(Catalog))
	}
	fleet := CatalogFleet()
	if err := fleet.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, g := range Catalog {
		if g.Year < 2010 || g.Year > 2024 {
			t.Errorf("%s: implausible year %d", g.Name, g.Year)
		}
		if g.Efficiency() <= 0 || g.Efficiency() > 200 {
			t.Errorf("%s: implausible efficiency %g", g.Name, g.Efficiency())
		}
	}
}

func TestEfficiencyTrendPositive(t *testing.T) {
	// The paper's Fig 1 observation: efficiency improves with speed.
	alpha, _, r2 := EfficiencyTrend(Catalog)
	if alpha <= 0 {
		t.Errorf("trend slope = %g, want positive", alpha)
	}
	if r2 < 0 || r2 > 1 {
		t.Errorf("R² = %g out of [0,1]", r2)
	}
}

func TestEfficiencyTrendEdgeCases(t *testing.T) {
	if a, b, r2 := EfficiencyTrend(nil); a != 0 || b != 0 || r2 != 0 {
		t.Error("empty input should return zeros")
	}
	// Identical speeds: slope undefined, returns mean as intercept.
	same := []GPU{{Speed: 10, Power: 1}, {Speed: 10, Power: 2}}
	a, b, _ := EfficiencyTrend(same)
	if a != 0 || math.Abs(b-7.5) > 1e-12 {
		t.Errorf("degenerate trend = %g, %g", a, b)
	}
	// Perfectly linear data: R² = 1.
	lin := []GPU{{Speed: 1000, Power: 100}, {Speed: 2000, Power: 100}, {Speed: 3000, Power: 100}}
	_, _, r2 := EfficiencyTrend(lin)
	if math.Abs(r2-1) > 1e-9 {
		t.Errorf("R² on linear data = %g, want 1", r2)
	}
}
