// Package machine models the heterogeneous servers of the DSCT-EA problem.
// A machine r is characterised by its speed s_r (GFLOP/s), its power draw
// P_r (W) and the derived energy efficiency E_r = s_r / P_r (GFLOPS/W).
// The package also embeds a catalog of NVIDIA server GPUs with published
// throughput/TDP figures — the data behind the paper's Figure 1 (after
// Desislavov et al., "Trends in AI inference energy consumption") — and the
// uniform fleet generators used by the paper's experiments (speeds 1–20
// TFLOPS, efficiencies 5–60 GFLOPS/W).
//
// Units: speed GFLOP/s, power W, work GFLOPs, time s, energy J. With these
// units energy per GFLOP equals 1/E_r.
package machine

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Machine is one processing unit of the cluster.
type Machine struct {
	Name  string  `json:"name,omitempty"`
	Speed float64 `json:"speed"` // GFLOP/s
	Power float64 `json:"power"` // W
}

// Efficiency returns E_r = Speed/Power in GFLOPS/W.
func (m Machine) Efficiency() float64 { return m.Speed / m.Power }

// EnergyPerGFLOP returns the Joules consumed per GFLOP of work, 1/E_r.
func (m Machine) EnergyPerGFLOP() float64 { return m.Power / m.Speed }

// Validate checks that the machine has positive speed and power.
func (m Machine) Validate() error {
	if m.Speed <= 0 {
		return fmt.Errorf("machine %q: speed must be positive, got %g", m.Name, m.Speed)
	}
	if m.Power <= 0 {
		return fmt.Errorf("machine %q: power must be positive, got %g", m.Name, m.Power)
	}
	return nil
}

// String renders the machine compactly.
func (m Machine) String() string {
	return fmt.Sprintf("%s{%.3g TFLOPS, %.3g W, %.3g GFLOPS/W}", m.Name, m.Speed/1000, m.Power, m.Efficiency())
}

// New returns a machine from speed (GFLOP/s) and efficiency (GFLOPS/W),
// deriving the power draw. It panics on non-positive arguments; it is the
// constructor used by generators and tests where (s, E) is the natural
// parameterisation, as in the paper.
func New(name string, speedGFLOPS, efficiencyGFLOPSPerW float64) Machine {
	if speedGFLOPS <= 0 || efficiencyGFLOPSPerW <= 0 {
		panic(fmt.Sprintf("machine: non-positive parameters (%g, %g)", speedGFLOPS, efficiencyGFLOPSPerW))
	}
	return Machine{Name: name, Speed: speedGFLOPS, Power: speedGFLOPS / efficiencyGFLOPSPerW}
}

// Fleet is an ordered collection of machines. The scheduling algorithms
// index machines by position in the fleet.
type Fleet []Machine

// Validate checks every machine.
func (f Fleet) Validate() error {
	if len(f) == 0 {
		return fmt.Errorf("machine: empty fleet")
	}
	for i, m := range f {
		if err := m.Validate(); err != nil {
			return fmt.Errorf("machine %d: %w", i, err)
		}
	}
	return nil
}

// TotalSpeed returns Σ_r s_r in GFLOP/s.
func (f Fleet) TotalSpeed() float64 {
	var s float64
	for _, m := range f {
		s += m.Speed
	}
	return s
}

// TotalPower returns Σ_r P_r in W.
func (f Fleet) TotalPower() float64 {
	var p float64
	for _, m := range f {
		p += m.Power
	}
	return p
}

// ByEfficiencyDesc returns the fleet indices sorted by non-increasing
// energy efficiency (most efficient machine first), breaking ties by
// higher speed then lower index for determinism.
func (f Fleet) ByEfficiencyDesc() []int {
	idx := make([]int, len(f))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		ea, eb := f[ia].Efficiency(), f[ib].Efficiency()
		//lint:ignore floatcmp comparator tie-break: tolerant comparison would break the strict weak ordering sort requires
		if ea != eb {
			return ea > eb
		}
		//lint:ignore floatcmp comparator tie-break on the next sort key
		if f[ia].Speed != f[ib].Speed {
			return f[ia].Speed > f[ib].Speed
		}
		return ia < ib
	})
	return idx
}

// Clone returns a deep copy of the fleet.
func (f Fleet) Clone() Fleet { return append(Fleet(nil), f...) }

// Generator parameters for the paper's uniform fleets.
const (
	// MinSpeed and MaxSpeed bound the uniform speed distribution, in
	// GFLOP/s (1–20 TFLOPS, paper §6).
	MinSpeed = 1_000
	MaxSpeed = 20_000
	// MinEfficiency and MaxEfficiency bound the uniform efficiency
	// distribution, in GFLOPS/W (5–60, paper §6, after Desislavov et al.).
	MinEfficiency = 5
	MaxEfficiency = 60
)

// UniformFleet draws m machines with speeds uniform in
// [MinSpeed, MaxSpeed) and efficiencies uniform in
// [MinEfficiency, MaxEfficiency), the paper's experimental setting.
func UniformFleet(src *rng.Source, m int) Fleet {
	if m <= 0 {
		panic(fmt.Sprintf("machine: fleet size must be positive, got %d", m))
	}
	fleet := make(Fleet, m)
	for i := range fleet {
		speed := src.Uniform(MinSpeed, MaxSpeed)
		eff := src.Uniform(MinEfficiency, MaxEfficiency)
		fleet[i] = New(fmt.Sprintf("m%d", i), speed, eff)
	}
	return fleet
}

// TwoMachineScenario returns the fixed two-machine fleet of the paper's
// workload-balancing experiment (Fig 6): machine 1 is slower but more
// energy efficient (2 TFLOPS, 80 GFLOPS/W) than machine 2 (5 TFLOPS,
// 70 GFLOPS/W).
func TwoMachineScenario() Fleet {
	return Fleet{
		New("m1-efficient", 2_000, 80),
		New("m2-fast", 5_000, 70),
	}
}
