package machine

// GPU is one catalog entry: a server accelerator with its published dense
// FP32 throughput and board power. Efficiency is derived as Speed/Power.
type GPU struct {
	Name  string
	Year  int
	Speed float64 // GFLOP/s (dense FP32)
	Power float64 // W (TDP)
}

// Machine converts the catalog entry to a schedulable Machine.
func (g GPU) Machine() Machine { return Machine{Name: g.Name, Speed: g.Speed, Power: g.Power} }

// Efficiency returns the catalog entry's energy efficiency in GFLOPS/W.
func (g GPU) Efficiency() float64 { return g.Speed / g.Power }

// Catalog lists NVIDIA data-center GPUs with published dense FP32
// throughput and TDP — the population behind the paper's Figure 1 (after
// Desislavov et al. 2023). The general trend is that efficiency improves
// roughly linearly with speed across hardware generations, with low-power
// inference cards (P4, T4, A2000) as efficient outliers.
var Catalog = []GPU{
	{Name: "Tesla K40", Year: 2013, Speed: 4_290, Power: 235},
	{Name: "Tesla K80", Year: 2014, Speed: 5_590, Power: 300},
	{Name: "Tesla M40", Year: 2015, Speed: 6_840, Power: 250},
	{Name: "Tesla M60", Year: 2015, Speed: 9_650, Power: 300},
	{Name: "Tesla P4", Year: 2016, Speed: 5_500, Power: 75},
	{Name: "Tesla P40", Year: 2016, Speed: 11_760, Power: 250},
	{Name: "Tesla P100", Year: 2016, Speed: 9_300, Power: 250},
	{Name: "Tesla V100", Year: 2017, Speed: 14_130, Power: 250},
	{Name: "Tesla T4", Year: 2018, Speed: 8_140, Power: 70},
	{Name: "RTX A2000", Year: 2021, Speed: 8_000, Power: 70},
	{Name: "A30", Year: 2021, Speed: 10_320, Power: 165},
	{Name: "A40", Year: 2020, Speed: 37_400, Power: 300},
	{Name: "A100 SXM", Year: 2020, Speed: 19_500, Power: 400},
}

// CatalogFleet returns the whole catalog as a Fleet.
func CatalogFleet() Fleet {
	out := make(Fleet, len(Catalog))
	for i, g := range Catalog {
		out[i] = g.Machine()
	}
	return out
}

// EfficiencyTrend fits efficiency = alpha·speed + beta by ordinary least
// squares over the catalog, reproducing the linear trend the paper reads
// off Figure 1. It returns the slope (GFLOPS/W per GFLOP/s), the intercept
// (GFLOPS/W) and the coefficient of determination R².
func EfficiencyTrend(gpus []GPU) (alpha, beta, r2 float64) {
	n := float64(len(gpus))
	if n == 0 {
		return 0, 0, 0
	}
	var sx, sy float64
	for _, g := range gpus {
		sx += g.Speed
		sy += g.Efficiency()
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for _, g := range gpus {
		dx, dy := g.Speed-mx, g.Efficiency()-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	alpha = sxy / sxx
	beta = my - alpha*mx
	if syy == 0 {
		return alpha, beta, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return alpha, beta, r2
}
