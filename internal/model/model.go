// Package model translates DSCT-EA problem instances into the solver
// representations of packages lp and mip:
//
//   - BuildMIP emits the paper's Mixed-Integer Program (formulation
//     (1a)–(1g) with the piecewise-linear objective linearised through the
//     epigraph variables z_j of §3.2) — the "DSCT-EA-Opt" exact baseline.
//   - BuildFR emits the fractional relaxation DSCT-EA-FR as a pure LP
//     (formulation (3a)–(3f)) — the paper's "DSCT-EA-FR [Mosek]" column in
//     Table 1.
//
// Both builders return models that can map solver vectors back into
// schedule.Schedule values.
package model

import (
	"math"

	"repro/internal/lp"
	"repro/internal/mip"
	"repro/internal/schedule"
	"repro/internal/task"
)

// MIPModel is the DSCT-EA mixed-integer program for one instance.
type MIPModel struct {
	Inst *task.Instance
	Prob *mip.Problem
	n, m int
}

// TVar returns the variable index of t_jr (processing time of task j on
// machine r, seconds).
//
//lint:hotpath index arithmetic called inside every row-builder loop
func (mm *MIPModel) TVar(j, r int) int { return j*mm.m + r }

// XVar returns the variable index of the binary x_jr (task j assigned to
// machine r).
//
//lint:hotpath index arithmetic called inside every row-builder loop
func (mm *MIPModel) XVar(j, r int) int { return mm.n*mm.m + j*mm.m + r }

// ZVar returns the variable index of the epigraph variable z_j
// (z_j <= a_j(f_j) at the optimum, z_j = a_j(f_j)).
//
//lint:hotpath index arithmetic called inside every row-builder loop
func (mm *MIPModel) ZVar(j int) int { return 2*mm.n*mm.m + j }

// BuildMIP constructs the paper's MIP for the instance. Variables:
// t_jr (n·m), x_jr (n·m, binary), z_j (n). Objective: maximize Σ_j z_j,
// which equals n minus the paper's minimisation objective (1a).
func BuildMIP(in *task.Instance) *MIPModel {
	n, m := in.N(), in.M()
	mm := &MIPModel{Inst: in, n: n, m: m}
	p := lp.NewProblem(2*n*m + n)
	// Row structure handed to the branch-and-cut separator: the builder
	// knows exactly which rows are GUB assignments, VUB deadline links and
	// the energy-budget knapsack, so the separator need not re-detect them.
	st := &mip.Structure{}

	for j := 0; j < n; j++ {
		p.SetObjCoef(mm.ZVar(j), 1)
	}

	for j, tk := range in.Tasks {
		// (3b): z_j <= α_jk · Σ_r s_r t_jr + b_jk for every segment k.
		for _, seg := range tk.Acc.Segments() {
			terms := []lp.Term{{Var: mm.ZVar(j), Coef: 1}}
			for r, mc := range in.Machines {
				terms = append(terms, lp.Term{Var: mm.TVar(j, r), Coef: -seg.Slope * mc.Speed})
			}
			p.AddConstraint(terms, lp.LE, seg.Intercept)
		}
		// z_j <= a_max (redundant at integral points; keeps the relaxation's
		// epigraph bounded where fractional x lets f_j exceed f_j^max).
		// Single-variable cap: a box bound, not a constraint row.
		p.SetBounds(mm.ZVar(j), 0, tk.Acc.AMax())

		// (1c), per machine as printed: t_jr·s_r <= f_j^max. One variable
		// per row, so it is the box 0 <= t_jr <= f_j^max/s_r.
		for r, mc := range in.Machines {
			p.SetBounds(mm.TVar(j, r), 0, tk.FMax()/mc.Speed)
		}
		// Aggregate work cap Σ_r s_r·t_jr <= f_j^max — valid for every
		// integral solution (only one machine is used) and strengthens the
		// LP relaxation, where (1c) alone would allow up to m·f_j^max.
		aggTerms := make([]lp.Term, 0, m)
		for r, mc := range in.Machines {
			aggTerms = append(aggTerms, lp.Term{Var: mm.TVar(j, r), Coef: mc.Speed})
		}
		p.AddConstraint(aggTerms, lp.LE, tk.FMax())

		// (1d): t_jr <= x_jr · d_j. A variable upper bound: when the box cap
		// f_j^max/s_r is tighter than d_j the separator strengthens the link.
		for r := 0; r < m; r++ {
			p.AddConstraint([]lp.Term{
				{Var: mm.TVar(j, r), Coef: 1},
				{Var: mm.XVar(j, r), Coef: -tk.Deadline},
			}, lp.LE, 0)
			st.VUBs = append(st.VUBs, mip.VUB{Cont: mm.TVar(j, r), Bin: mm.XVar(j, r), U: tk.Deadline})
		}
		// (1e): Σ_r x_jr = 1 — the one-machine-per-task GUB row.
		xTerms := make([]lp.Term, 0, m)
		for r := 0; r < m; r++ {
			xTerms = append(xTerms, lp.Term{Var: mm.XVar(j, r), Coef: 1})
		}
		st.GUBRows = append(st.GUBRows, p.AddConstraint(xTerms, lp.EQ, 1))
	}

	// (1b): deadline staircases Σ_{i<=j} t_ir <= d_j for every (j, r).
	for r := 0; r < m; r++ {
		for j, tk := range in.Tasks {
			terms := make([]lp.Term, 0, j+1)
			for i := 0; i <= j; i++ {
				terms = append(terms, lp.Term{Var: mm.TVar(i, r), Coef: 1})
			}
			p.AddConstraint(terms, lp.LE, tk.Deadline)
		}
	}

	// (1f): energy budget Σ_{j,r} P_r·t_jr <= B.
	eTerms := make([]lp.Term, 0, n*m)
	for j := 0; j < n; j++ {
		for r, mc := range in.Machines {
			eTerms = append(eTerms, lp.Term{Var: mm.TVar(j, r), Coef: mc.Power})
		}
	}
	st.BudgetRows = append(st.BudgetRows, p.AddConstraint(eTerms, lp.LE, in.Budget))

	ints := make([]int, 0, n*m)
	for j := 0; j < n; j++ {
		for r := 0; r < m; r++ {
			ints = append(ints, mm.XVar(j, r))
		}
	}
	mm.Prob = &mip.Problem{LP: p, Integers: ints, Structure: st}
	return mm
}

// Schedule converts a solver vector into a Schedule (reading the t_jr
// block). Tiny negative residues are clamped to zero.
func (mm *MIPModel) Schedule(x []float64) *schedule.Schedule {
	s := schedule.New(mm.n, mm.m)
	for j := 0; j < mm.n; j++ {
		for r := 0; r < mm.m; r++ {
			v := x[mm.TVar(j, r)]
			if v < 0 {
				v = 0
			}
			s.Times[j][r] = v
		}
	}
	return s
}

// RoundingHook returns a primal heuristic for the branch-and-bound solver:
// it assigns each task to its largest-x̂ machine and lets the node LP
// re-optimise the processing times under those fixed assignments.
func (mm *MIPModel) RoundingHook() mip.RoundingHook {
	return func(x []float64) ([]float64, bool) {
		fixed := make([]float64, mm.n*mm.m)
		for j := 0; j < mm.n; j++ {
			best, bestVal := 0, math.Inf(-1)
			for r := 0; r < mm.m; r++ {
				if v := x[mm.XVar(j, r)]; v > bestVal {
					bestVal = v
					best = r
				}
			}
			fixed[j*mm.m+best] = 1
		}
		return fixed, true
	}
}

// Objective converts a total-accuracy value (Σ z_j) to the paper's
// minimisation objective Σ (1 − a_j).
func (mm *MIPModel) Objective(totalAccuracy float64) float64 {
	return float64(mm.n) - totalAccuracy
}
