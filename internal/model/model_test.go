package model

import (
	"math"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/mip"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/task"
)

func genInstance(t *testing.T, seed int64, n, m int, rho, beta float64) *task.Instance {
	t.Helper()
	cfg := task.DefaultConfig(n, rho, beta)
	cfg.ThetaMax = 1.0
	in, err := task.GenerateUniformFleet(rng.New(seed, "model"), cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestFRModelShape(t *testing.T) {
	in := genInstance(t, 1, 8, 3, 0.5, 0.5)
	fm := BuildFR(in)
	n, m := in.N(), in.M()
	segs := 0
	for _, tk := range in.Tasks {
		segs += tk.Acc.NumSegments()
	}
	wantVars := n*m + n
	if fm.Prob.NumVars() != wantVars {
		t.Errorf("vars = %d, want %d", fm.Prob.NumVars(), wantVars)
	}
	// Rows: segments + fmax (n) + staircases (n·m) + energy (1).
	wantRows := segs + n + n*m + 1
	if fm.Prob.NumConstraints() != wantRows {
		t.Errorf("rows = %d, want %d", fm.Prob.NumConstraints(), wantRows)
	}
	// Index layout is a bijection.
	seen := map[int]bool{}
	for j := 0; j < n; j++ {
		for r := 0; r < m; r++ {
			v := fm.TVar(j, r)
			if seen[v] {
				t.Fatalf("duplicate TVar index %d", v)
			}
			seen[v] = true
		}
		if seen[fm.ZVar(j)] {
			t.Fatalf("ZVar collides at %d", fm.ZVar(j))
		}
		seen[fm.ZVar(j)] = true
	}
}

func TestFRSolutionFeasibleAndConsistent(t *testing.T) {
	in := genInstance(t, 2, 10, 3, 0.5, 0.4)
	fm := BuildFR(in)
	sol, err := lp.Solve(fm.Prob, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	s := fm.Schedule(sol.X)
	if err := s.Validate(in, schedule.ValidateOptions{}); err != nil {
		t.Fatalf("FR schedule infeasible: %v", err)
	}
	// At optimum z_j equals a_j(f_j): objective equals schedule accuracy.
	if acc := s.TotalAccuracy(in); math.Abs(acc-sol.Objective) > 1e-5 {
		t.Errorf("LP objective %g != schedule accuracy %g", sol.Objective, acc)
	}
}

func TestFRObjectiveMonotoneInBudget(t *testing.T) {
	// More budget can never hurt the relaxation.
	var prev float64
	for i, beta := range []float64{0.05, 0.2, 0.5, 1.0} {
		in := genInstance(t, 3, 8, 2, 0.5, beta)
		sol, err := lp.Solve(BuildFR(in).Prob, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("beta=%g: %v %v", beta, sol.Status, err)
		}
		if i > 0 && sol.Objective < prev-1e-6 {
			t.Errorf("objective decreased with budget: %g -> %g", prev, sol.Objective)
		}
		prev = sol.Objective
	}
}

func TestMIPModelShapeAndSolve(t *testing.T) {
	in := genInstance(t, 4, 4, 2, 0.8, 0.6)
	mm := BuildMIP(in)
	n, m := in.N(), in.M()
	if mm.Prob.LP.NumVars() != 2*n*m+n {
		t.Errorf("vars = %d, want %d", mm.Prob.LP.NumVars(), 2*n*m+n)
	}
	if len(mm.Prob.Integers) != n*m {
		t.Errorf("integers = %d, want %d", len(mm.Prob.Integers), n*m)
	}
	res, err := mip.Solve(mm.Prob, mip.Options{
		Deadline: time.Now().Add(30 * time.Second),
		Rounding: mm.RoundingHook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal && res.Status != mip.Feasible {
		t.Fatalf("status %v", res.Status)
	}
	s := mm.Schedule(res.X)
	if err := s.Validate(in, schedule.ValidateOptions{RequireIntegral: true}); err != nil {
		t.Fatalf("MIP schedule infeasible: %v", err)
	}
	if acc := s.TotalAccuracy(in); math.Abs(acc-res.Objective) > 1e-4 {
		t.Errorf("MIP objective %g != schedule accuracy %g", res.Objective, acc)
	}
	if obj := mm.Objective(res.Objective); math.Abs(obj-(float64(n)-res.Objective)) > 1e-9 {
		t.Errorf("Objective conversion wrong: %g", obj)
	}
}

func TestMIPBoundedByFR(t *testing.T) {
	// The fractional relaxation upper-bounds the integral optimum, and the
	// MIP's own LP bound must also dominate its incumbent.
	in := genInstance(t, 5, 4, 2, 0.6, 0.5)
	fr, err := lp.Solve(BuildFR(in).Prob, lp.Options{})
	if err != nil || fr.Status != lp.Optimal {
		t.Fatalf("FR solve: %v %v", fr.Status, err)
	}
	mm := BuildMIP(in)
	res, err := mip.Solve(mm.Prob, mip.Options{Deadline: time.Now().Add(30 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal {
		t.Skipf("MIP not solved to optimality in time: %v", res.Status)
	}
	if res.Objective > fr.Objective+1e-5 {
		t.Errorf("integral optimum %g exceeds fractional relaxation %g", res.Objective, fr.Objective)
	}
}

func TestRoundingHookShape(t *testing.T) {
	in := genInstance(t, 6, 3, 2, 0.8, 0.8)
	mm := BuildMIP(in)
	hook := mm.RoundingHook()
	x := make([]float64, mm.Prob.LP.NumVars())
	// Fractional assignment: x_{j,0} = 0.4, x_{j,1} = 0.6 -> machine 1.
	for j := 0; j < in.N(); j++ {
		x[mm.XVar(j, 0)] = 0.4
		x[mm.XVar(j, 1)] = 0.6
	}
	fixed, ok := hook(x)
	if !ok || len(fixed) != len(mm.Prob.Integers) {
		t.Fatalf("hook returned ok=%v len=%d", ok, len(fixed))
	}
	for j := 0; j < in.N(); j++ {
		if !numeric.AlmostEqual(fixed[j*in.M()+1], 1) || fixed[j*in.M()+0] != 0 {
			t.Errorf("task %d rounded to wrong machine: %v", j, fixed[j*in.M():j*in.M()+2])
		}
	}
}

func TestZeroBudgetForcesAMin(t *testing.T) {
	in := genInstance(t, 7, 5, 2, 0.5, 0)
	in.Budget = 0
	sol, err := lp.Solve(BuildFR(in).Prob, lp.Options{})
	if err != nil || sol.Status != lp.Optimal {
		t.Fatalf("%v %v", sol.Status, err)
	}
	// No energy -> no work -> every task scores a_min.
	want := 0.0
	for _, tk := range in.Tasks {
		want += tk.Acc.AMin()
	}
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Errorf("objective %g, want Σ a_min = %g", sol.Objective, want)
	}
}

func TestFRDualCertificate(t *testing.T) {
	// The strongest oracle available: an optimal primal/dual pair for the
	// FR LP must pass lp.Certify, proving both the model build and the
	// simplex solve correct from first principles.
	in := genInstance(t, 8, 12, 3, 0.35, 0.4)
	fm := BuildFR(in)
	ds, err := lp.SolveWithDuals(fm.Prob, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Status != lp.Optimal {
		t.Fatalf("status %v", ds.Status)
	}
	if err := lp.Certify(fm.Prob, ds.X, ds.Duals, 1e-5); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	// The energy constraint is the last row; its shadow price is the
	// accuracy gained per extra Joule of budget and cannot be negative.
	energyDual := ds.Duals[fm.Prob.NumConstraints()-1]
	if energyDual < -1e-9 {
		t.Errorf("energy shadow price %g is negative", energyDual)
	}
}

// TestMIPAgainstAssignmentEnumeration is an independent oracle for the
// whole exact path: for a tiny instance, enumerate every task-to-machine
// assignment, solve the fixed-assignment LP over processing times, and
// compare the best against branch-and-bound.
func TestMIPAgainstAssignmentEnumeration(t *testing.T) {
	in := genInstance(t, 9, 4, 2, 0.15, 0.25)
	n, m := in.N(), in.M()

	best := math.Inf(-1)
	assignment := make([]int, n)
	var enumerate func(j int)
	enumerate = func(j int) {
		if j == n {
			mm := BuildMIP(in)
			p := mm.Prob.LP.Clone()
			for jj, r := range assignment {
				for rr := 0; rr < m; rr++ {
					v := 0.0
					if rr == r {
						v = 1
					}
					p.AddConstraint([]lp.Term{{Var: mm.XVar(jj, rr), Coef: 1}}, lp.EQ, v)
				}
			}
			sol, err := lp.Solve(p, lp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status == lp.Optimal && sol.Objective > best {
				best = sol.Objective
			}
			return
		}
		for r := 0; r < m; r++ {
			assignment[j] = r
			enumerate(j + 1)
		}
	}
	enumerate(0)

	mm := BuildMIP(in)
	res, err := mip.Solve(mm.Prob, mip.Options{Deadline: time.Now().Add(60 * time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal {
		t.Skipf("MIP hit the limit: %v", res.Status)
	}
	if math.Abs(res.Objective-best) > 1e-5*math.Max(1, best) {
		t.Errorf("B&B optimum %.9g != enumeration optimum %.9g", res.Objective, best)
	}
}

// TestMIPStructureHints: BuildMIP must hand the branch-and-cut separator
// an accurate row map — one GUB assignment row per task, exactly one
// energy-budget row, and one VUB deadline link per (task, machine) — with
// indices that really point at rows of that shape.
func TestMIPStructureHints(t *testing.T) {
	in := genInstance(t, 9, 5, 3, 0.4, 0.5)
	mm := BuildMIP(in)
	st := mm.Prob.Structure
	if st == nil {
		t.Fatal("BuildMIP left Problem.Structure nil")
	}
	n, m := in.N(), in.M()
	if len(st.GUBRows) != n {
		t.Fatalf("GUB rows = %d, want %d", len(st.GUBRows), n)
	}
	if len(st.BudgetRows) != 1 {
		t.Fatalf("budget rows = %d, want 1", len(st.BudgetRows))
	}
	if len(st.VUBs) != n*m {
		t.Fatalf("VUBs = %d, want %d", len(st.VUBs), n*m)
	}
	for j, row := range st.GUBRows {
		terms, sense, rhs := mm.Prob.LP.Constraint(row)
		//lint:ignore floatcmp BuildMIP writes the exact literal 1 as the assignment rhs
		if sense != lp.EQ || rhs != 1 || len(terms) != m {
			t.Fatalf("GUB row %d for task %d: %d terms, sense %v, rhs %g", row, j, len(terms), sense, rhs)
		}
		for r, tm := range terms {
			//lint:ignore floatcmp assignment coefficients are the exact literal 1
			if tm.Var != mm.XVar(j, r) || tm.Coef != 1 {
				t.Fatalf("GUB row for task %d has term %+v at position %d", j, tm, r)
			}
		}
	}
	terms, sense, rhs := mm.Prob.LP.Constraint(st.BudgetRows[0])
	//lint:ignore floatcmp the budget rhs is copied verbatim from the instance
	if sense != lp.LE || rhs != in.Budget || len(terms) != n*m {
		t.Fatalf("budget row: %d terms, sense %v, rhs %g (budget %g)", len(terms), sense, rhs, in.Budget)
	}
	for k, vb := range st.VUBs {
		j, r := k/m, k%m
		if vb.Cont != mm.TVar(j, r) || vb.Bin != mm.XVar(j, r) {
			t.Fatalf("VUB %d = %+v, want link t(%d,%d) <= d·x(%d,%d)", k, vb, j, r, j, r)
		}
		//lint:ignore floatcmp the VUB bound is copied verbatim from the task deadline
		if vb.U != in.Tasks[j].Deadline {
			t.Fatalf("VUB %d U = %g, want deadline %g", k, vb.U, in.Tasks[j].Deadline)
		}
	}
}
