package model

import (
	"repro/internal/lp"
	"repro/internal/schedule"
	"repro/internal/task"
)

// FRModel is the DSCT-EA-FR linear program (fractional relaxation,
// formulation (3a)–(3f)) for one instance: assignment variables are
// dropped entirely and a task may run on several machines (in parallel).
type FRModel struct {
	Inst *task.Instance
	Prob *lp.Problem
	n, m int
}

// TVar returns the variable index of t_jr.
//
//lint:hotpath index arithmetic called inside every row-builder loop
func (fm *FRModel) TVar(j, r int) int { return j*fm.m + r }

// ZVar returns the variable index of the epigraph variable z_j.
//
//lint:hotpath index arithmetic called inside every row-builder loop
func (fm *FRModel) ZVar(j int) int { return fm.n*fm.m + j }

// BuildFR constructs the DSCT-EA-FR LP. Variables: t_jr (n·m), z_j (n).
// Objective: maximize Σ_j z_j (the paper states min Σ −z_j).
func BuildFR(in *task.Instance) *FRModel {
	n, m := in.N(), in.M()
	fm := &FRModel{Inst: in, n: n, m: m}
	p := lp.NewProblem(n*m + n)

	for j := 0; j < n; j++ {
		p.SetObjCoef(fm.ZVar(j), 1)
	}

	for j, tk := range in.Tasks {
		// (3b): epigraph rows, one per accuracy segment.
		for _, seg := range tk.Acc.Segments() {
			terms := []lp.Term{{Var: fm.ZVar(j), Coef: 1}}
			for r, mc := range in.Machines {
				terms = append(terms, lp.Term{Var: fm.TVar(j, r), Coef: -seg.Slope * mc.Speed})
			}
			p.AddConstraint(terms, lp.LE, seg.Intercept)
		}
		// z_j <= a_max as a box bound: redundant given the epigraph rows
		// (the flat last segment already caps z_j) but it keeps the column
		// boxed, which shortens Phase 1.
		p.SetBounds(fm.ZVar(j), 0, tk.Acc.AMax())
		// (3d): Σ_r s_r·t_jr <= f_j^max.
		aggTerms := make([]lp.Term, 0, m)
		for r, mc := range in.Machines {
			aggTerms = append(aggTerms, lp.Term{Var: fm.TVar(j, r), Coef: mc.Speed})
		}
		p.AddConstraint(aggTerms, lp.LE, tk.FMax())
	}

	// (3c): deadline staircases.
	for r := 0; r < m; r++ {
		for j, tk := range in.Tasks {
			terms := make([]lp.Term, 0, j+1)
			for i := 0; i <= j; i++ {
				terms = append(terms, lp.Term{Var: fm.TVar(i, r), Coef: 1})
			}
			p.AddConstraint(terms, lp.LE, tk.Deadline)
		}
	}

	// (3e): energy budget.
	eTerms := make([]lp.Term, 0, n*m)
	for j := 0; j < n; j++ {
		for r, mc := range in.Machines {
			eTerms = append(eTerms, lp.Term{Var: fm.TVar(j, r), Coef: mc.Power})
		}
	}
	p.AddConstraint(eTerms, lp.LE, in.Budget)

	fm.Prob = p
	return fm
}

// Schedule converts a solver vector into a (fractional) Schedule.
func (fm *FRModel) Schedule(x []float64) *schedule.Schedule {
	s := schedule.New(fm.n, fm.m)
	for j := 0; j < fm.n; j++ {
		for r := 0; r < fm.m; r++ {
			v := x[fm.TVar(j, r)]
			if v < 0 {
				v = 0
			}
			s.Times[j][r] = v
		}
	}
	return s
}
