package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a := New(42, "fig3")
	b := New(42, "fig3")
	for i := 0; i < 100; i++ {
		//lint:ignore floatcmp determinism contract is bit-exact stream reproduction
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with identical (seed,label) diverged at draw %d", i)
		}
	}
}

func TestLabelIndependence(t *testing.T) {
	a := New(42, "fig3")
	b := New(42, "fig5")
	same := 0
	for i := 0; i < 100; i++ {
		//lint:ignore floatcmp counting bit-exact collisions between streams is the point of the test
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different labels matched %d/100 draws", same)
	}
}

func TestReplicateIndependence(t *testing.T) {
	a := NewReplicate(7, "x", 0)
	b := NewReplicate(7, "x", 1)
	same := 0
	for i := 0; i < 100; i++ {
		//lint:ignore floatcmp counting bit-exact collisions between streams is the point of the test
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("replicate streams matched %d/100 draws", same)
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1, "x")
	b := New(2, "x")
	same := 0
	for i := 0; i < 100; i++ {
		//lint:ignore floatcmp counting bit-exact collisions between streams is the point of the test
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(3, "range")
	for i := 0; i < 1000; i++ {
		v := s.Uniform(5, 60)
		if v < 5 || v >= 60 {
			t.Fatalf("Uniform(5,60) produced %g", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	s := New(3, "deg")
	//lint:ignore floatcmp degenerate range must return the endpoint bit-exactly
	if v := s.Uniform(2, 2); v != 2 {
		t.Errorf("Uniform(2,2) = %g, want 2", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9, "perm")
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformMeanRoughlyCentered(t *testing.T) {
	s := New(11, "mean")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += s.Uniform(0, 10)
	}
	mean := sum / n
	if mean < 4.8 || mean > 5.2 {
		t.Errorf("Uniform(0,10) mean over %d draws = %g, want ~5", n, mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(21, "norm")
	var sum, sumSq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("normal mean = %g", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("normal variance = %g", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(22, "exp")
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / n; mean < 0.95 || mean > 1.05 {
		t.Errorf("exponential mean = %g", mean)
	}
}

func TestShuffle(t *testing.T) {
	s := New(23, "shuffle")
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatal("shuffle lost elements")
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	s := New(24, "intn")
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}
