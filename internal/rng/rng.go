// Package rng provides deterministic, stream-splittable random number
// generation for experiments. Every randomized experiment in the harness
// derives its generators from a root seed plus a textual stream label, so
// replicate k of experiment "fig3/mu=5" is bit-reproducible regardless of
// execution order or parallelism.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random source for one experiment stream.
// It wraps math/rand.Rand seeded from a (seed, label, replicate) triple.
type Source struct {
	r *rand.Rand
}

// New returns a Source derived from the root seed and a stream label.
// Different labels yield independent-looking streams for the same seed.
func New(seed int64, label string) *Source {
	return &Source{r: rand.New(rand.NewSource(mix(seed, label, 0)))}
}

// NewReplicate returns the Source for one replicate of a labelled stream.
func NewReplicate(seed int64, label string, replicate int) *Source {
	return &Source{r: rand.New(rand.NewSource(mix(seed, label, replicate)))}
}

// mix hashes the triple into a 63-bit seed using FNV-1a.
func mix(seed int64, label string, replicate int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	putInt64(&buf, seed)
	_, _ = h.Write(buf[:]) // hash.Hash.Write is documented to never fail
	_, _ = h.Write([]byte(label))
	putInt64(&buf, int64(replicate))
	_, _ = h.Write(buf[:])
	v := int64(h.Sum64() & (1<<63 - 1))
	if v == 0 {
		v = 1 // rand.NewSource(0) is valid, but keep streams distinct from zero seeds
	}
	return v
}

func putInt64(buf *[8]byte, v int64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.r.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Source) ExpFloat64() float64 { return s.r.ExpFloat64() }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
