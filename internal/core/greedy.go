// Package core implements the paper's exact algorithm for the fractional
// relaxation DSCT-EA-FR (Algorithms 1–4):
//
//   - the single-machine greedy allocator (Algorithm 1), generalised to run
//     over aggregate prefix capacities;
//   - energy profiles and the naive profile of ComputeNaiveSolution
//     (Algorithm 2);
//   - profile refinement guided by accuracy-per-Joule exchanges
//     (Algorithm 3 / RefineProfile);
//   - the end-to-end solver DSCT-EA-FR-OPT (Algorithm 4), including the
//     reconstruction of per-machine processing times t_jr from the
//     aggregate solution.
//
// The key structural fact (see DESIGN.md §4): with fractional splitting a
// work vector f is feasible for an energy profile p iff for every task j
// (deadline order) Σ_{i<=j} f_i <= C(d_j, p) = Σ_r s_r·min(d_j, p_r). The
// prefix constraints form a chain, so for fixed p the feasible work vectors
// form a polymatroid (intersected with the boxes f_j <= f_j^max) and
// allocating PWL segments in non-increasing slope order is optimal — this
// is exactly the paper's Algorithm 1. The value V(p) of that inner optimum
// is concave in p, which RefineProfile exploits.
package core

import (
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/segtree"
	"repro/internal/task"
)

// segRef is one linear piece of one task's accuracy function, flattened for
// the greedy allocator.
type segRef struct {
	task  int     // task index (deadline order)
	pos   int     // segment position within the task's accuracy function
	slope float64 // accuracy per GFLOP
	width float64 // GFLOPs in this segment
}

// flattenSegments lists every accuracy segment of every task, sorted by
// non-increasing slope (ties broken by task then position, so a task's
// earlier segments always precede its later ones — concavity makes their
// slopes non-increasing).
func flattenSegments(tasks []task.Task) []segRef {
	var segs []segRef
	for j, tk := range tasks {
		for k, s := range tk.Acc.Segments() {
			if s.Width() <= 0 {
				continue
			}
			segs = append(segs, segRef{task: j, pos: k, slope: s.Slope, width: s.Width()})
		}
	}
	sort.SliceStable(segs, func(a, b int) bool {
		sa, sb := segs[a], segs[b]
		//lint:ignore floatcmp comparator tie-break: tolerant comparison would break the strict weak ordering sort requires
		if sa.slope != sb.slope {
			return sa.slope > sb.slope
		}
		if sa.task != sb.task {
			return sa.task < sb.task
		}
		return sa.pos < sb.pos
	})
	return segs
}

// slackTracker maintains the prefix slacks slack_i = C_i − Σ_{k<=i} f_k and
// answers suffix-minimum queries. Two implementations: a naive O(n) scan
// (the paper's O(n²) inner loop) and a segment tree (O(log n)).
type slackTracker interface {
	// SuffixMin returns min_{i >= j} slack_i.
	SuffixMin(j int) float64
	// AddSuffix subtracts delta from every slack_i with i >= j.
	AddSuffix(j int, delta float64)
}

type naiveSlack struct{ slack []float64 }

func (s *naiveSlack) SuffixMin(j int) float64 {
	m := math.Inf(1)
	for i := j; i < len(s.slack); i++ {
		if s.slack[i] < m {
			m = s.slack[i]
		}
	}
	return m
}

func (s *naiveSlack) AddSuffix(j int, delta float64) {
	for i := j; i < len(s.slack); i++ {
		s.slack[i] -= delta
	}
}

type treeSlack struct{ t *segtree.Tree }

func (s *treeSlack) SuffixMin(j int) float64        { return s.t.MinRange(j, s.t.Len()-1) }
func (s *treeSlack) AddSuffix(j int, delta float64) { s.t.AddRange(j, s.t.Len()-1, -delta) }

// GreedyOptions tunes the allocator.
type GreedyOptions struct {
	// UseScan selects the paper's O(n²) slack scan instead of the segment
	// tree (ablation BenchmarkAblationSegtreeVsScan).
	UseScan bool
}

// Allocator is a reusable Algorithm 1 runner: it caches the slope-sorted
// segment list of a task set so that repeated allocations against
// different capacity vectors (as in RefineProfile's line searches) skip
// the O(S log S) sort.
type Allocator struct {
	n    int
	segs []segRef
	opts GreedyOptions
}

// NewAllocator prepares an allocator for the tasks (deadline order).
func NewAllocator(tasks []task.Task, opts GreedyOptions) *Allocator {
	return &Allocator{n: len(tasks), segs: flattenSegments(tasks), opts: opts}
}

// Allocate is Algorithm 1 over aggregate capacities: given the
// non-decreasing prefix capacities caps[j] (GFLOPs available to tasks 1..j
// together), it returns the optimal work vector f.
//
// Algorithm: consider segments in non-increasing slope order; grant each
// segment the largest amount that keeps every prefix constraint i >= j
// satisfied (min suffix slack). caps must be non-decreasing and
// non-negative.
func (a *Allocator) Allocate(caps []float64) []float64 {
	if len(caps) != a.n {
		panic("core: caps length must match task count")
	}
	slackVals := make([]float64, a.n)
	for i, c := range caps {
		if c < 0 {
			c = 0
		}
		slackVals[i] = c
	}
	var slack slackTracker
	if a.opts.UseScan {
		slack = &naiveSlack{slack: slackVals}
	} else {
		slack = &treeSlack{t: segtree.New(slackVals)}
	}

	f := make([]float64, a.n)
	for _, seg := range a.segs {
		room := slack.SuffixMin(seg.task)
		if room <= numeric.Eps {
			continue
		}
		grant := math.Min(seg.width, room)
		f[seg.task] += grant
		slack.AddSuffix(seg.task, grant)
	}
	return f
}

// GreedyAllocate runs Algorithm 1 once (see Allocator.Allocate).
func GreedyAllocate(tasks []task.Task, caps []float64, opts GreedyOptions) []float64 {
	return NewAllocator(tasks, opts).Allocate(caps)
}

// TotalAccuracy evaluates Σ_j a_j(f_j) for a work vector.
func TotalAccuracy(tasks []task.Task, f []float64) float64 {
	var acc numeric.KahanSum
	for j, tk := range tasks {
		acc.Add(tk.Acc.Eval(f[j]))
	}
	return acc.Value()
}
