package core

import (
	"math"

	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/task"
)

// RefineOptions tunes RefineProfile.
type RefineOptions struct {
	Greedy GreedyOptions
	// MaxSweeps caps the outer improvement loop (default 64).
	MaxSweeps int
	// LineSearchIters is the ternary-search depth per exchange (default 48).
	LineSearchIters int
	// Tol is the minimum accuracy improvement worth applying (default 1e-9).
	Tol float64
	// DisablePolish skips the random-direction polish pass that guards
	// against stalls of pairwise exchanges at kinks of the piecewise-linear
	// value function (ablation).
	DisablePolish bool
	// Seed drives the deterministic polish directions.
	Seed int64
}

func (o *RefineOptions) defaults() {
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 64
	}
	if o.LineSearchIters == 0 {
		o.LineSearchIters = 48
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
}

// RefineProfile is the paper's RefineProfile (Algorithm 3) realised as
// energy exchanges between machines: starting from a profile (normally the
// naive one), it repeatedly moves energy from machine r' to machine r —
// increasing p_r by e/P_r and decreasing p_{r'} by e/P_{r'} — whenever the
// move improves the optimal accuracy V(p) of the inner greedy; it also
// spends any slack budget. The exchange amount is chosen by exact line
// search on the concave function e -> V(p(e)), which generalises the
// paper's accuracy-per-Joule (ψ = slope·E_r) pair ordering: a move is
// improving exactly when the energy marginal gain on r exceeds the energy
// marginal loss on r'. A deterministic random-direction polish pass guards
// against stalls at kinks (where single-pair moves are blocked but a joint
// move improves). Returns the refined profile and the number of sweeps.
func RefineProfile(in *task.Instance, p Profile, opts RefineOptions) (Profile, int) {
	opts.defaults()
	m := in.M()
	dMax := in.MaxDeadline()
	p = p.Clone()
	// Nothing to refine when the budget lets every machine run until d_max.
	allFull := true
	for _, v := range p {
		if v < dMax {
			allFull = false
			break
		}
	}
	if allFull {
		return p, 0
	}
	alloc := NewAllocator(in.Tasks, opts.Greedy)
	value := func(q Profile) float64 {
		v, _ := valueWith(alloc, in, q)
		return v
	}
	cur := value(p)
	polishSrc := rng.New(opts.Seed, "core/refine-polish")

	sweeps := 0
	for ; sweeps < opts.MaxSweeps; sweeps++ {
		improved := false

		// Spend slack budget: extend each machine with the budget left over
		// (line search over the extension; V is non-decreasing in p_r, so
		// this only ever helps).
		slack := in.Budget - p.Energy(in)
		if slack > opts.Tol {
			for r := 0; r < m; r++ {
				slack = in.Budget - p.Energy(in)
				if slack <= opts.Tol || p[r] >= dMax {
					continue
				}
				eMax := math.Min(slack, (dMax-p[r])*in.Machines[r].Power)
				if eMax <= 0 {
					continue
				}
				best, gain := maximizeAlong(p, cur, func(q Profile, e float64) {
					q[r] += e / in.Machines[r].Power
				}, eMax, value, opts.LineSearchIters)
				if gain > opts.Tol {
					p = best
					cur += gain
					improved = true
				}
			}
		}

		// Pairwise energy exchanges.
		for r := 0; r < m; r++ {
			for rp := 0; rp < m; rp++ {
				if r == rp || p[rp] <= 0 || p[r] >= dMax {
					continue
				}
				eMax := math.Min(p[rp]*in.Machines[rp].Power, (dMax-p[r])*in.Machines[r].Power)
				if eMax <= 0 {
					continue
				}
				best, gain := maximizeAlong(p, cur, func(q Profile, e float64) {
					q[r] += e / in.Machines[r].Power
					q[rp] -= e / in.Machines[rp].Power
					if q[rp] < 0 {
						q[rp] = 0
					}
				}, eMax, value, opts.LineSearchIters)
				if gain > opts.Tol {
					p = best
					cur += gain
					improved = true
				}
			}
		}

		if improved {
			continue
		}
		if opts.DisablePolish {
			break
		}
		// Polish: joint random directions in the feasible cone.
		if q, gain := polish(in, p, cur, value, polishSrc, opts); gain > opts.Tol {
			p = q
			cur += gain
			continue
		}
		break
	}
	return p, sweeps
}

// maximizeAlong ternary-searches the concave map e -> V(apply(p, e)) over
// [0, eMax] and returns the best profile and its gain over cur.
func maximizeAlong(p Profile, cur float64, apply func(Profile, float64), eMax float64,
	value func(Profile) float64, iters int) (Profile, float64) {
	eval := func(e float64) (Profile, float64) {
		q := p.Clone()
		apply(q, e)
		return q, value(q)
	}
	lo, hi := 0.0, eMax
	for i := 0; i < iters && hi-lo > 1e-12*math.Max(1, eMax); i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		_, v1 := eval(m1)
		_, v2 := eval(m2)
		if v1 < v2 {
			lo = m1
		} else {
			hi = m2
		}
	}
	// Candidate points: interval midpoint and the full move.
	bestQ, bestV := eval((lo + hi) / 2)
	if qFull, vFull := eval(eMax); vFull > bestV {
		bestQ, bestV = qFull, vFull
	}
	return bestQ, bestV - cur
}

// polish tries a handful of deterministic random joint directions that
// respect the budget hyperplane and box; it returns an improved profile
// when one is found.
func polish(in *task.Instance, p Profile, cur float64, value func(Profile) float64,
	src *rng.Source, opts RefineOptions) (Profile, float64) {
	m := in.M()
	dMax := in.MaxDeadline()
	budgetTight := in.Budget-p.Energy(in) <= opts.Tol
	for attempt := 0; attempt < 8*m; attempt++ {
		dir := make([]float64, m) // energy-space direction
		for r := range dir {
			dir[r] = src.Uniform(-1, 1)
		}
		if budgetTight {
			// Project onto Σ dir = 0 in energy space so the move stays on
			// the budget face.
			var mean float64
			for _, d := range dir {
				mean += d
			}
			mean /= float64(m)
			for r := range dir {
				dir[r] -= mean
			}
		}
		// Maximum step keeping 0 <= p_r <= dMax (and the budget when not
		// tight: moving along dir changes energy by Σ dir · e).
		eMax := math.Inf(1)
		for r := range dir {
			pw := in.Machines[r].Power
			if dir[r] > 0 {
				eMax = math.Min(eMax, (dMax-p[r])*pw/dir[r])
			} else if dir[r] < 0 {
				eMax = math.Min(eMax, p[r]*pw/-dir[r])
			}
		}
		if !budgetTight {
			var sum float64
			for _, d := range dir {
				sum += d
			}
			if sum > 0 {
				eMax = math.Min(eMax, (in.Budget-p.Energy(in))/sum)
			}
		}
		if !numeric.IsFinite(eMax) || eMax <= 0 {
			continue
		}
		q, gain := maximizeAlong(p, cur, func(qq Profile, e float64) {
			for r := range dir {
				qq[r] += e * dir[r] / in.Machines[r].Power
				if qq[r] < 0 {
					qq[r] = 0
				}
				if qq[r] > dMax {
					qq[r] = dMax
				}
			}
		}, eMax, value, opts.LineSearchIters)
		if gain > opts.Tol {
			return q, gain
		}
	}
	return p, 0
}
