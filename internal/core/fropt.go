package core

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/task"
)

// FROptions tunes SolveFR (Algorithm 4, DSCT-EA-FR-OPT).
type FROptions struct {
	// SkipRefine stops after ComputeNaiveSolution (Algorithm 2), i.e. the
	// naive energy profile is used as-is (ablation; the paper shows the
	// naive profile can be suboptimal, Fig 6b).
	SkipRefine bool
	// PaperRefine replaces the fixed-point exchange refinement with the
	// single-sweep pair-list transcription of Algorithm 3
	// (RefinePaperPairs); weaker but literally the paper's pseudocode.
	PaperRefine bool
	Greedy      GreedyOptions
	Refine      RefineOptions
}

// FRSolution is the output of DSCT-EA-FR-OPT.
type FRSolution struct {
	// Schedule holds the fractional processing times t_jr.
	Schedule *schedule.Schedule
	// Profile is the (refined) energy profile p; it upper-bounds each
	// machine's load and is the per-machine work cap the approximation
	// algorithm (Algorithm 5) enforces.
	Profile Profile
	// Work is the optimal work vector f_j in GFLOPs.
	Work []float64
	// TotalAccuracy is Σ_j a_j(f_j) — the paper's DSCT-EA-UB upper bound.
	TotalAccuracy float64
	// Sweeps is the number of refinement sweeps performed.
	Sweeps int
}

// SolveFR runs DSCT-EA-FR-OPT (Algorithm 4): ComputeNaiveSolution
// (Algorithm 2: naive profile + Algorithm 1 on the aggregate capacities)
// followed by RefineProfile (Algorithm 3), then reconstructs the
// per-machine times.
func SolveFR(in *task.Instance, opts FROptions) (*FRSolution, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	opts.Refine.Greedy = opts.Greedy

	p := NaiveProfile(in)
	sweeps := 0
	if opts.PaperRefine && !opts.SkipRefine {
		return solveFRPaper(in, p, opts)
	}
	if !opts.SkipRefine {
		p, sweeps = RefineProfile(in, p, opts.Refine)
	}
	total, f := Value(in, p, opts.Greedy)
	sched, err := Split(in, p, f)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(in, schedule.ValidateOptions{}); err != nil {
		return nil, fmt.Errorf("core: internal error, fractional schedule invalid: %w", err)
	}
	return &FRSolution{
		Schedule:      sched,
		Profile:       p,
		Work:          f,
		TotalAccuracy: total,
		Sweeps:        sweeps,
	}, nil
}

// solveFRPaper runs ComputeNaiveSolution followed by the paper-literal
// Algorithm 3 pair sweep. The realised machine loads act as the profile.
func solveFRPaper(in *task.Instance, p Profile, opts FROptions) (*FRSolution, error) {
	_, f := Value(in, p, opts.Greedy)
	sched, err := Split(in, p, f)
	if err != nil {
		return nil, err
	}
	sched = RefinePaperPairs(in, sched)
	if err := sched.Validate(in, schedule.ValidateOptions{}); err != nil {
		return nil, fmt.Errorf("core: internal error, paper-refined schedule invalid: %w", err)
	}
	work := make([]float64, in.N())
	for j := range work {
		work[j] = sched.Work(in, j)
	}
	return &FRSolution{
		Schedule:      sched,
		Profile:       Profile(sched.Profile()),
		Work:          work,
		TotalAccuracy: sched.TotalAccuracy(in),
		Sweeps:        1,
	}, nil
}
