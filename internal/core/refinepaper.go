package core

import (
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/schedule"
	"repro/internal/segtree"
	"repro/internal/task"
)

// RefinePaperPairs is a literal transcription of the paper's Algorithm 3
// (RefineProfile): it operates on the concrete processing-time matrix t_jr
// of a fractional solution rather than on the profile abstraction.
//
// A pair list of every (accuracy segment, machine) combination is sorted
// by non-increasing accuracy-per-Joule ψ = slope·E_r. Walking the list
// from the front, each pair (seg, r) computes how much energy E_add it
// could absorb — bounded by the segment's unfilled work and by the
// deadline headroom of seg's task on machine r (generalised from the
// paper's line 8 to respect the deadlines of the *following* tasks on the
// machine, as Algorithm 1 does) — and funds it first from unused budget,
// then by draining pairs (seg', r') from the back of the list whenever
// ψ' < ψ, exactly as lines 9–17 prescribe.
//
// Segment ordering within a task is respected: a segment may only gain
// work when its predecessor is full, and only lose work when its successor
// is empty, so every intermediate state remains a valid point of the
// concave accuracy functions.
//
// The returned schedule is feasible whenever the input schedule is. The
// single sweep of the pair list matches the paper; it is weaker than the
// fixed-point exchange refinement (RefineProfile), which the ablation
// BenchmarkAblationRefineVariants quantifies.
func RefinePaperPairs(in *task.Instance, s *schedule.Schedule) *schedule.Schedule {
	n, m := in.N(), in.M()
	s = s.Clone()

	// Per-task per-segment usage from the current work vector.
	segs := make([][]accSeg, n)
	for j, tk := range in.Tasks {
		f := s.Work(in, j)
		for _, sg := range tk.Acc.Segments() {
			used := numeric.Clamp(f-sg.Start, 0, sg.Width())
			segs[j] = append(segs[j], accSeg{slope: sg.Slope, width: sg.Width(), used: used})
		}
	}

	// Deadline slack trees per machine: slack_i = d_i − Σ_{k<=i} t_kr.
	slack := make([]*segtree.Tree, m)
	for r := 0; r < m; r++ {
		vals := make([]float64, n)
		var load float64
		for j := 0; j < n; j++ {
			load += s.Times[j][r]
			vals[j] = in.Tasks[j].Deadline - load
		}
		slack[r] = segtree.New(vals)
	}

	// Budget slack: energy not yet spent.
	freeEnergy := in.Budget - s.Energy(in)
	if freeEnergy < 0 {
		freeEnergy = 0
	}

	type pair struct {
		j, k, r int
		psi     float64
	}
	var pairs []pair
	for j := range segs {
		for k := range segs[j] {
			for r := 0; r < m; r++ {
				pairs = append(pairs, pair{j: j, k: k, r: r,
					psi: segs[j][k].slope * in.Machines[r].Efficiency()})
			}
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].psi > pairs[b].psi })

	apply := func(j, k, r int, energy float64) {
		eff := in.Machines[r].Efficiency()
		dt := energy * eff / in.Machines[r].Speed // seconds gained/lost
		s.Times[j][r] += dt
		if s.Times[j][r] < 0 {
			s.Times[j][r] = 0
		}
		segs[j][k].used += energy * eff
		segs[j][k].used = numeric.Clamp(segs[j][k].used, 0, segs[j][k].width)
		slack[r].AddRange(j, n-1, -dt)
	}

	const eps = 1e-12
	for front, p := range pairs {
		back := len(pairs) - 1 // the paper rescans the reversed list per pair
		sg := &segs[p.j][p.k]
		// Gain gate: predecessor segment must be full.
		if p.k > 0 && segs[p.j][p.k-1].used < segs[p.j][p.k-1].width-1e-9 {
			continue
		}
		machineE := in.Machines[p.r].Efficiency()
		// E_add: unfilled segment work and deadline headroom, in Joules.
		headroom := slack[p.r].MinRange(p.j, n-1)
		if headroom <= eps {
			continue
		}
		eAdd := math.Min((sg.width-sg.used)/machineE,
			headroom*in.Machines[p.r].Power)
		if eAdd <= eps {
			continue
		}

		// Free budget first.
		if freeEnergy > eps {
			take := math.Min(eAdd, freeEnergy)
			apply(p.j, p.k, p.r, take)
			freeEnergy -= take
			eAdd -= take
		}

		// Then drain low-ψ pairs from the back of the list.
		for back > front && eAdd > eps {
			q := pairs[back]
			if q.psi >= p.psi-eps {
				break // nothing cheaper remains
			}
			sq := &segs[q.j][q.k]
			// Loss gates: successor segment must be empty, and the donor
			// must actually hold time on that machine.
			nextUsed := 0.0
			if q.k+1 < len(segs[q.j]) {
				nextUsed = segs[q.j][q.k+1].used
			}
			t := s.Times[q.j][q.r]
			if nextUsed > 1e-9 || sq.used <= eps || t <= eps || (q.j == p.j) {
				back--
				continue
			}
			effQ := in.Machines[q.r].Efficiency()
			eSub := math.Min(sq.used/effQ, t*in.Machines[q.r].Power)
			if eSub <= eps {
				back--
				continue
			}
			eTrans := math.Min(eAdd, eSub)
			apply(q.j, q.k, q.r, -eTrans) // drain donor (frees deadline slack)
			apply(p.j, p.k, p.r, eTrans)  // feed receiver
			eAdd -= eTrans
			// Receiver headroom shrank; re-clamp the remaining demand.
			if h := slack[p.r].MinRange(p.j, n-1); h < 0 {
				// Numerical guard: undo the overdraft.
				over := -h * in.Machines[p.r].Power
				apply(p.j, p.k, p.r, -over)
				apply(q.j, q.k, q.r, over)
				eAdd = 0
			}
			if sq.used <= eps || s.Times[q.j][q.r] <= eps {
				back--
			}
		}
	}
	return s
}

// accSeg tracks one segment's fill state during the paper-literal refine.
type accSeg struct {
	slope float64
	width float64
	used  float64
}
