package core

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/lp"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/task"
)

// mkTask builds a task with an explicit 2-segment accuracy function.
func mkTask(t *testing.T, name string, deadline float64, breaks, vals []float64) task.Task {
	t.Helper()
	return task.Task{Name: name, Deadline: deadline, Acc: accuracy.MustPWL(breaks, vals)}
}

func genInstance(t *testing.T, seed int64, n, m int, rho, beta, thetaMax float64) *task.Instance {
	t.Helper()
	cfg := task.DefaultConfig(n, rho, beta)
	cfg.ThetaMax = thetaMax
	in, err := task.GenerateUniformFleet(rng.New(seed, "core"), cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestGreedySingleMachineHandCase(t *testing.T) {
	// Machine speed 100 GFLOP/s. Tasks (deadline order):
	//   t0: d=1, segments 0..50 slope 0.01, 50..100 slope 0.002
	//   t1: d=2, segments 0..50 slope 0.005, 50..100 slope 0.001
	// Capacities: C_0 = 100, C_1 = 200.
	tasks := []task.Task{
		mkTask(t, "t0", 1, []float64{0, 50, 100}, []float64{0, 0.5, 0.6}),
		mkTask(t, "t1", 2, []float64{0, 50, 100}, []float64{0, 0.25, 0.3}),
	}
	f := GreedyAllocate(tasks, []float64{100, 200}, GreedyOptions{})
	// Slope order: t0s0 (0.01), t1s0 (0.005), t0s1 (0.002), t1s1 (0.001).
	// t0s0: min(50, min(100,200)) = 50 -> f0=50, slack (50,150)
	// t1s0: min(50, 150) = 50 -> f1=50, slack (50,100)
	// t0s1: min(50, min(50,100)) = 50 -> f0=100, slack (0,50)
	// t1s1: min(50, 50) = 50 -> f1=100.
	if math.Abs(f[0]-100) > 1e-9 || math.Abs(f[1]-100) > 1e-9 {
		t.Errorf("f = %v, want [100 100]", f)
	}

	// Tighter capacity: C = (60, 120): t0s0 50, t1s0 50 (slack 10,20-> wait)
	f = GreedyAllocate(tasks, []float64{60, 120}, GreedyOptions{})
	// t0s0: min(50, 60)=50, slack (10,70); t1s0: min(50,70)=50, slack (10,20);
	// t0s1: min(50, min(10,20))=10 -> f0=60; slack (0,10); t1s1: min(50,10)=10 -> f1=60.
	if math.Abs(f[0]-60) > 1e-9 || math.Abs(f[1]-60) > 1e-9 {
		t.Errorf("f = %v, want [60 60]", f)
	}
}

func TestGreedyPrefixFeasibility(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		in := genInstance(t, int64(trial), 30, 1, 0.4, 1.0, 2.0)
		caps := Caps(in, Profile{in.MaxDeadline()})
		f := GreedyAllocate(in.Tasks, caps, GreedyOptions{})
		var prefix float64
		for j := range f {
			if f[j] < -1e-12 {
				t.Fatalf("negative work f[%d] = %g", j, f[j])
			}
			if f[j] > in.Tasks[j].FMax()+1e-6 {
				t.Fatalf("f[%d] = %g exceeds fmax %g", j, f[j], in.Tasks[j].FMax())
			}
			prefix += f[j]
			if prefix > caps[j]*(1+1e-9)+1e-6 {
				t.Fatalf("prefix %g exceeds cap %g at %d", prefix, caps[j], j)
			}
		}
	}
}

func TestGreedyScanMatchesSegtree(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		in := genInstance(t, 100+int64(trial), 40, 3, 0.3, 0.6, 3.0)
		caps := Caps(in, NaiveProfile(in))
		a := GreedyAllocate(in.Tasks, caps, GreedyOptions{UseScan: true})
		b := GreedyAllocate(in.Tasks, caps, GreedyOptions{UseScan: false})
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-6*math.Max(1, a[j]) {
				t.Fatalf("trial %d: backends disagree at %d: %g vs %g", trial, j, a[j], b[j])
			}
		}
	}
}

func TestGreedyPanicsOnBadCaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched caps length should panic")
		}
	}()
	GreedyAllocate([]task.Task{mkTask(t, "x", 1, []float64{0, 1}, []float64{0, 0.5})}, nil, GreedyOptions{})
}

// TestGreedyMatchesLPSingleMachine: with one machine and ample energy, the
// greedy must equal the LP optimum of the fractional relaxation.
func TestGreedyMatchesLPSingleMachine(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		in := genInstance(t, 200+int64(trial), 15, 1, 0.5, 1.0, 4.0)
		in.Budget = 1e12 // effectively unconstrained energy

		caps := Caps(in, Profile{in.MaxDeadline()})
		f := GreedyAllocate(in.Tasks, caps, GreedyOptions{})
		got := TotalAccuracy(in.Tasks, f)

		sol, err := lp.Solve(model.BuildFR(in).Prob, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP %v %v", trial, sol.Status, err)
		}
		if math.Abs(got-sol.Objective) > 1e-5*math.Max(1, sol.Objective) {
			t.Errorf("trial %d: greedy %g != LP %g", trial, got, sol.Objective)
		}
	}
}

func TestCapsMonotone(t *testing.T) {
	in := genInstance(t, 9, 20, 4, 0.3, 0.5, 2.0)
	caps := Caps(in, NaiveProfile(in))
	for j := 1; j < len(caps); j++ {
		if caps[j] < caps[j-1]-1e-9 {
			t.Fatalf("caps not monotone at %d: %g < %g", j, caps[j], caps[j-1])
		}
	}
}

func TestNaiveProfileProperties(t *testing.T) {
	in := genInstance(t, 10, 20, 5, 0.3, 0.4, 1.0)
	p := NaiveProfile(in)
	if err := p.Validate(in, 1e-9); err != nil {
		t.Fatal(err)
	}
	// Budget either exhausted or every machine at d_max.
	e := p.Energy(in)
	dMax := in.MaxDeadline()
	allFull := true
	for _, v := range p {
		if v < dMax-1e-9 {
			allFull = false
		}
	}
	if !allFull && math.Abs(e-in.Budget) > 1e-6*in.Budget {
		t.Errorf("naive profile wastes budget: %g of %g", e, in.Budget)
	}
	// Machines are filled in efficiency order: a machine with positive
	// profile < d_max implies every more efficient machine is at d_max.
	order := in.Machines.ByEfficiencyDesc()
	for i, r := range order {
		if p[r] > 0 && p[r] < dMax-1e-9 {
			for _, earlier := range order[:i] {
				if p[earlier] < dMax-1e-9 {
					t.Errorf("machine %d partially filled while more efficient %d not full", r, earlier)
				}
			}
		}
	}
}

func TestProfileValidateErrors(t *testing.T) {
	in := genInstance(t, 11, 5, 2, 0.5, 0.5, 1.0)
	if err := (Profile{1}).Validate(in, 1e-9); err == nil {
		t.Error("wrong length accepted")
	}
	if err := (Profile{-1, 0}).Validate(in, 1e-9); err == nil {
		t.Error("negative entry accepted")
	}
	huge := Profile{in.MaxDeadline() * 2, 0}
	if err := huge.Validate(in, 1e-9); err == nil {
		t.Error("over-d_max entry accepted")
	}
	overBudget := Profile{in.MaxDeadline(), in.MaxDeadline()}
	in.Budget = 0.001
	if err := overBudget.Validate(in, 1e-9); err == nil {
		t.Error("over-budget profile accepted")
	}
}

// TestSolveFRMatchesLP is the central correctness test: the combinatorial
// DSCT-EA-FR-OPT must match the LP optimum of the same relaxation.
func TestSolveFRMatchesLP(t *testing.T) {
	cases := []struct {
		seed          int64
		n, m          int
		rho, beta, mu float64
	}{
		{1, 10, 2, 0.5, 0.5, 1},
		{2, 12, 3, 0.35, 0.5, 4},
		{3, 15, 2, 1.0, 0.3, 10},
		{4, 8, 4, 0.2, 0.7, 2},
		{5, 20, 3, 0.05, 0.2, 20},
		{6, 10, 2, 0.01, 0.4, 49}, // strict deadlines, skewed tasks
		{7, 12, 5, 0.35, 0.1, 5},  // very tight energy
		{8, 10, 2, 2.0, 1.0, 1},   // loose everything
	}
	for _, c := range cases {
		cfg := task.DefaultConfig(c.n, c.rho, c.beta)
		cfg.ThetaMax = cfg.ThetaMin * c.mu
		in, err := task.GenerateUniformFleet(rng.New(c.seed, "frlp"), cfg, c.m)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := SolveFR(in, FROptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", c.seed, err)
		}
		ref, err := lp.Solve(model.BuildFR(in).Prob, lp.Options{})
		if err != nil || ref.Status != lp.Optimal {
			t.Fatalf("seed %d: LP %v %v", c.seed, ref.Status, err)
		}
		rel := math.Abs(sol.TotalAccuracy-ref.Objective) / math.Max(1, ref.Objective)
		if rel > 2e-4 {
			t.Errorf("seed %d (n=%d m=%d rho=%g beta=%g mu=%g): FR-OPT %.9g vs LP %.9g (rel %g)",
				c.seed, c.n, c.m, c.rho, c.beta, c.mu, sol.TotalAccuracy, ref.Objective, rel)
		}
		// FR-OPT is a feasible solution, hence also a lower bound.
		if sol.TotalAccuracy > ref.Objective+1e-5*math.Max(1, ref.Objective) {
			t.Errorf("seed %d: FR-OPT %g exceeds LP optimum %g", c.seed, sol.TotalAccuracy, ref.Objective)
		}
	}
}

func TestSolveFRSolutionConsistency(t *testing.T) {
	in := genInstance(t, 31, 25, 3, 0.3, 0.4, 5.0)
	sol, err := SolveFR(in, FROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Profile.Validate(in, 1e-6); err != nil {
		t.Errorf("profile invalid: %v", err)
	}
	if err := sol.Schedule.Validate(in, schedule.ValidateOptions{}); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	// Work vector matches the schedule and the declared accuracy.
	for j := range sol.Work {
		if w := sol.Schedule.Work(in, j); math.Abs(w-sol.Work[j]) > 1e-6*math.Max(1, sol.Work[j]) {
			t.Errorf("task %d: schedule work %g != f_j %g", j, w, sol.Work[j])
		}
	}
	if acc := sol.Schedule.TotalAccuracy(in); math.Abs(acc-sol.TotalAccuracy) > 1e-6*math.Max(1, acc) {
		t.Errorf("accuracy mismatch: schedule %g vs declared %g", acc, sol.TotalAccuracy)
	}
	// Machine loads never exceed the profile.
	for r, l := range sol.Schedule.Profile() {
		if l > sol.Profile[r]*(1+1e-9)+1e-9 {
			t.Errorf("machine %d load %g exceeds profile %g", r, l, sol.Profile[r])
		}
	}
}

func TestRefineNeverHurts(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		in := genInstance(t, 300+int64(trial), 20, 3, 0.1, 0.3, 10)
		naive, err := SolveFR(in, FROptions{SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		refined, err := SolveFR(in, FROptions{})
		if err != nil {
			t.Fatal(err)
		}
		if refined.TotalAccuracy < naive.TotalAccuracy-1e-9 {
			t.Errorf("trial %d: refine hurt: %g -> %g", trial, naive.TotalAccuracy, refined.TotalAccuracy)
		}
	}
}

// TestRefineImprovesSkewedScenario reproduces the paper's Fig 6b setting in
// miniature: early deadline tasks are highly efficient, so the naive
// profile (all energy on the efficient machine) is suboptimal and the
// refinement must shift work onto the fast machine.
func TestRefineImprovesSkewedScenario(t *testing.T) {
	cfg := task.DefaultConfig(40, 0.01, 0.3)
	cfg.Scenario = task.EarliestHighEfficient
	cfg.ThetaMin, cfg.ThetaMax = 0.1, 1.0
	cfg.EarlyFraction = 0.3
	cfg.EarlyThetaMin, cfg.EarlyThetaMax = 4.0, 4.9
	in, err := task.Generate(rng.New(77, "fig6b"), cfg, machine.TwoMachineScenario())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveFR(in, FROptions{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := SolveFR(in, FROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if refined.TotalAccuracy <= naive.TotalAccuracy+1e-9 {
		t.Errorf("expected strict improvement in skewed scenario: naive %g, refined %g",
			naive.TotalAccuracy, refined.TotalAccuracy)
	}
	// The refined profile must give the fast machine (index 1) time that
	// the naive profile did not.
	naiveP := NaiveProfile(in)
	if refined.Profile[1] <= naiveP[1]+1e-9 {
		t.Errorf("refined profile did not shift work to the fast machine: naive %v, refined %v",
			naiveP, refined.Profile)
	}
}

func TestSplitPropertyRandom(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		in := genInstance(t, 400+int64(trial), 30, 4, 0.2, 0.5, 8)
		p := NaiveProfile(in)
		_, f := Value(in, p, GreedyOptions{})
		s, err := Split(in, p, f)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(in, schedule.ValidateOptions{}); err != nil {
			t.Fatalf("trial %d: split schedule invalid: %v", trial, err)
		}
		for r := 0; r < in.M(); r++ {
			if l := s.MachineLoad(r); l > p[r]*(1+1e-9)+1e-9 {
				t.Fatalf("trial %d: machine %d load %g exceeds profile %g", trial, r, l, p[r])
			}
		}
	}
}

func TestSplitRejectsInfeasibleWork(t *testing.T) {
	in := genInstance(t, 50, 5, 2, 0.5, 0.5, 1.0)
	p := Profile{0, 0} // no machine time at all
	f := make([]float64, in.N())
	f[0] = 10
	if _, err := Split(in, p, f); err == nil {
		t.Error("expected error for unplaceable work")
	}
	if _, err := Split(in, p, []float64{1}); err == nil {
		t.Error("expected error for wrong work length")
	}
}

func TestSolveFRRejectsInvalidInstance(t *testing.T) {
	in := genInstance(t, 51, 5, 2, 0.5, 0.5, 1.0)
	in.Budget = -5
	if _, err := SolveFR(in, FROptions{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestZeroBudgetYieldsAMin(t *testing.T) {
	in := genInstance(t, 52, 8, 2, 0.5, 0, 1.0)
	in.Budget = 0
	sol, err := SolveFR(in, FROptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, tk := range in.Tasks {
		want += tk.Acc.AMin()
	}
	if math.Abs(sol.TotalAccuracy-want) > 1e-9 {
		t.Errorf("accuracy %g, want Σ a_min = %g", sol.TotalAccuracy, want)
	}
}

func TestGenerousBudgetReachesAMax(t *testing.T) {
	// With beta = 1 and loose deadlines every task should be fully
	// processed (the paper's Fig 5 right edge).
	in := genInstance(t, 53, 10, 2, 1.0, 1.0, 1.0)
	sol, err := SolveFR(in, FROptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, tk := range in.Tasks {
		want += tk.Acc.AMax()
	}
	if math.Abs(sol.TotalAccuracy-want) > 1e-6*want {
		t.Errorf("accuracy %g, want Σ a_max = %g", sol.TotalAccuracy, want)
	}
}
