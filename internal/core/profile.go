package core

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/task"
)

// Profile is an energy profile: p[r] is the maximum busy time (seconds) of
// machine r. A profile is admissible for budget B when Σ_r p_r·P_r <= B
// (paper §3.2, "The Energy Profiles").
type Profile []float64

// Clone returns a copy of the profile.
func (p Profile) Clone() Profile { return append(Profile(nil), p...) }

// Energy returns Σ_r p_r·P_r, the energy consumed if every machine runs for
// its full profile.
func (p Profile) Energy(in *task.Instance) float64 {
	var e numeric.KahanSum
	for r, mc := range in.Machines {
		e.Add(p[r] * mc.Power)
	}
	return e.Value()
}

// Validate checks non-negativity, admissibility for the instance budget and
// the d_max cap.
func (p Profile) Validate(in *task.Instance, tol float64) error {
	if len(p) != in.M() {
		return fmt.Errorf("core: profile has %d entries for %d machines", len(p), in.M())
	}
	dMax := in.MaxDeadline()
	for r, v := range p {
		if !numeric.IsFinite(v) || v < -tol {
			return fmt.Errorf("core: profile[%d] = %g invalid", r, v)
		}
		if v > dMax*(1+tol)+tol {
			return fmt.Errorf("core: profile[%d] = %g exceeds d_max %g", r, v, dMax)
		}
	}
	if e := p.Energy(in); !numeric.LessEq(e, in.Budget, tol) {
		return fmt.Errorf("core: profile energy %g exceeds budget %g", e, in.Budget)
	}
	return nil
}

// Caps returns the aggregate prefix capacities C(d_j, p) = Σ_r s_r·min(d_j, p_r)
// for every task j, in GFLOPs. The result is non-decreasing because
// deadlines are sorted.
func Caps(in *task.Instance, p Profile) []float64 {
	caps := make([]float64, in.N())
	for j, tk := range in.Tasks {
		var c numeric.KahanSum
		for r, mc := range in.Machines {
			c.Add(mc.Speed * math.Min(tk.Deadline, p[r]))
		}
		caps[j] = c.Value()
	}
	return caps
}

// NaiveProfile is the first half of ComputeNaiveSolution (Algorithm 2):
// machines are taken in non-increasing energy-efficiency order and each is
// given the longest profile the remaining budget allows, capped at d_max.
func NaiveProfile(in *task.Instance) Profile {
	p := make(Profile, in.M())
	dMax := in.MaxDeadline()
	remaining := in.Budget
	for _, r := range in.Machines.ByEfficiencyDesc() {
		if remaining <= 0 {
			break
		}
		power := in.Machines[r].Power
		t := math.Min(remaining/power, dMax)
		p[r] = t
		remaining -= t * power
	}
	return p
}

// Value computes V(p): the optimal total accuracy achievable with profile p
// (inner greedy, Algorithm 1 over the aggregate capacities), together with
// the optimal work vector.
func Value(in *task.Instance, p Profile, opts GreedyOptions) (float64, []float64) {
	return valueWith(NewAllocator(in.Tasks, opts), in, p)
}

// valueWith is Value against a prepared allocator (hot path of the
// refinement line searches).
func valueWith(alloc *Allocator, in *task.Instance, p Profile) (float64, []float64) {
	f := alloc.Allocate(Caps(in, p))
	return TotalAccuracy(in.Tasks, f), f
}
