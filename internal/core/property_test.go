package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestValueMonotoneInProfile: enlarging any profile entry can never reduce
// V(p) — the structural fact behind spending the whole budget.
func TestValueMonotoneInProfile(t *testing.T) {
	in := genInstance(t, 700, 20, 3, 0.2, 1.0, 10)
	in.Budget = math.Inf(1) // profiles checked directly, not via budget
	dMax := in.MaxDeadline()
	src := rng.New(7, "monotone")
	f := func(seedByte uint8) bool {
		_ = seedByte
		p := Profile{src.Uniform(0, dMax), src.Uniform(0, dMax), src.Uniform(0, dMax)}
		v0, _ := Value(in, p, GreedyOptions{})
		r := src.Intn(3)
		q := p.Clone()
		q[r] = math.Min(dMax, q[r]+src.Uniform(0, dMax/2))
		v1, _ := Value(in, q, GreedyOptions{})
		return v1 >= v0-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestValueConcaveAlongSegments: V is concave along straight lines in
// profile space — the property RefineProfile's ternary line search relies
// on. Midpoint concavity is checked on random segments.
func TestValueConcaveAlongSegments(t *testing.T) {
	in := genInstance(t, 701, 15, 2, 0.1, 1.0, 20)
	in.Budget = math.Inf(1)
	dMax := in.MaxDeadline()
	src := rng.New(9, "concave")
	f := func(seedByte uint8) bool {
		_ = seedByte
		p := Profile{src.Uniform(0, dMax), src.Uniform(0, dMax)}
		q := Profile{src.Uniform(0, dMax), src.Uniform(0, dMax)}
		mid := Profile{(p[0] + q[0]) / 2, (p[1] + q[1]) / 2}
		vp, _ := Value(in, p, GreedyOptions{})
		vq, _ := Value(in, q, GreedyOptions{})
		vm, _ := Value(in, mid, GreedyOptions{})
		return vm >= (vp+vq)/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGreedyIdempotentOnAllocation: granting the greedy its own result's
// prefix sums as capacities reproduces the same allocation (a fixed-point
// sanity check on Algorithm 1).
func TestGreedyIdempotentOnAllocation(t *testing.T) {
	in := genInstance(t, 702, 25, 1, 0.3, 1.0, 5)
	caps := Caps(in, Profile{in.MaxDeadline()})
	f := GreedyAllocate(in.Tasks, caps, GreedyOptions{})
	// Tight capacities: exactly the prefix sums of f.
	tight := make([]float64, len(f))
	var prefix float64
	for j, v := range f {
		prefix += v
		tight[j] = prefix
	}
	g := GreedyAllocate(in.Tasks, tight, GreedyOptions{})
	var sumF, sumG float64
	for j := range f {
		sumF += f[j]
		sumG += g[j]
	}
	// Same total work is extracted and the same accuracy achieved.
	if math.Abs(sumF-sumG) > 1e-6*math.Max(1, sumF) {
		t.Errorf("total work changed under tight caps: %g vs %g", sumF, sumG)
	}
	af := TotalAccuracy(in.Tasks, f)
	ag := TotalAccuracy(in.Tasks, g)
	if ag < af-1e-9 {
		t.Errorf("accuracy dropped under tight caps: %g vs %g", ag, af)
	}
}

// TestSplitRandomProfilesQuick: any (profile, greedy work) pair must split
// into a valid per-machine schedule.
func TestSplitRandomProfilesQuick(t *testing.T) {
	in := genInstance(t, 703, 20, 4, 0.15, 1.0, 8)
	in.Budget = math.Inf(1)
	dMax := in.MaxDeadline()
	src := rng.New(11, "split")
	f := func(seedByte uint8) bool {
		_ = seedByte
		p := make(Profile, in.M())
		for r := range p {
			p[r] = src.Uniform(0, dMax)
		}
		_, work := Value(in, p, GreedyOptions{})
		s, err := Split(in, p, work)
		if err != nil {
			return false
		}
		for r := range p {
			if s.MachineLoad(r) > p[r]*(1+1e-9)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
