package core

import (
	"fmt"
	"math"

	"repro/internal/schedule"
	"repro/internal/task"
)

// Split reconstructs per-machine processing times t_jr from an aggregate
// solution (profile p, work vector f): tasks are taken in deadline order
// and each task's work is water-filled across machines subject to the
// availability caps min(d_j, p_r) minus the load already placed there.
//
// This always succeeds when Σ_{i<=j} f_i <= C(d_j, p) for all j (the
// aggregate feasibility condition): allocating anywhere reduces the
// aggregate Σ_r s_r·load_r by exactly the work placed, and the per-machine
// caps min(d_j, p_r) are non-decreasing in j, so no choice at step j can
// starve a later task. A tiny residual (relative 1e-9) is forgiven to
// absorb floating-point slop; anything larger is an error.
func Split(in *task.Instance, p Profile, f []float64) (*schedule.Schedule, error) {
	n, m := in.N(), in.M()
	if len(f) != n {
		return nil, fmt.Errorf("core: work vector has %d entries for %d tasks", len(f), n)
	}
	s := schedule.New(n, m)
	load := make([]float64, m)
	for j, tk := range in.Tasks {
		need := f[j]
		if need <= 0 {
			continue
		}
		for r := 0; r < m && need > 0; r++ {
			avail := math.Min(tk.Deadline, p[r]) - load[r]
			if avail <= 0 {
				continue
			}
			speed := in.Machines[r].Speed
			t := math.Min(need/speed, avail)
			if t <= 0 {
				continue
			}
			s.Times[j][r] = t
			load[r] += t
			need -= t * speed
		}
		if need > 1e-9*math.Max(1, f[j]) {
			return nil, fmt.Errorf("core: could not place %g GFLOPs of task %d (aggregate feasibility violated)", need, j)
		}
	}
	return s, nil
}
