package core

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/task"
)

func TestPaperRefineFeasibleAndImproving(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		in := genInstance(t, 500+int64(trial), 25, 3, 0.1, 0.3, 10)
		naive, err := SolveFR(in, FROptions{SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		paper, err := SolveFR(in, FROptions{PaperRefine: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := paper.Schedule.Validate(in, schedule.ValidateOptions{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if paper.TotalAccuracy < naive.TotalAccuracy-1e-6 {
			t.Errorf("trial %d: paper refine hurt: %g -> %g",
				trial, naive.TotalAccuracy, paper.TotalAccuracy)
		}
	}
}

func TestPaperRefineBoundedByExchangeRefine(t *testing.T) {
	// The single-sweep pair refinement must not beat the fixed-point
	// exchange refinement (which matches the LP optimum) by more than
	// numerical noise, and should close most of the gap on the skewed
	// scenario.
	cfg := task.DefaultConfig(40, 0.01, 0.3)
	cfg.Scenario = task.EarliestHighEfficient
	cfg.ThetaMin, cfg.ThetaMax = 0.1, 1.0
	cfg.EarlyFraction = 0.3
	cfg.EarlyThetaMin, cfg.EarlyThetaMax = 4.0, 4.9
	in, err := task.Generate(rng.New(91, "paper-refine"), cfg, machine.TwoMachineScenario())
	if err != nil {
		t.Fatal(err)
	}
	naive, err := SolveFR(in, FROptions{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := SolveFR(in, FROptions{PaperRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	exchange, err := SolveFR(in, FROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if paper.TotalAccuracy > exchange.TotalAccuracy+1e-6 {
		t.Errorf("paper refine %g exceeds exchange optimum %g",
			paper.TotalAccuracy, exchange.TotalAccuracy)
	}
	if paper.TotalAccuracy <= naive.TotalAccuracy+1e-9 {
		t.Errorf("paper refine made no progress on the skewed scenario: naive %g, paper %g (exchange %g)",
			naive.TotalAccuracy, paper.TotalAccuracy, exchange.TotalAccuracy)
	}
	t.Logf("naive %.6f, paper %.6f, exchange %.6f",
		naive.TotalAccuracy, paper.TotalAccuracy, exchange.TotalAccuracy)
}

func TestPaperRefineEnergyWithinBudget(t *testing.T) {
	in := genInstance(t, 600, 30, 4, 0.2, 0.25, 5)
	paper, err := SolveFR(in, FROptions{PaperRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if e := paper.Schedule.Energy(in); e > in.Budget*(1+1e-9)+1e-9 {
		t.Errorf("energy %g exceeds budget %g", e, in.Budget)
	}
	// Work vector consistent with the schedule.
	for j := range paper.Work {
		if w := paper.Schedule.Work(in, j); math.Abs(w-paper.Work[j]) > 1e-6*math.Max(1, w) {
			t.Errorf("task %d work mismatch: %g vs %g", j, w, paper.Work[j])
		}
	}
}

func TestPaperRefineSpendsFreeBudget(t *testing.T) {
	// When the naive inner solution leaves budget unspent (profile time
	// it cannot use), the pair sweep should still be able to draw on the
	// remaining budget for better segments.
	in := genInstance(t, 601, 15, 2, 0.05, 0.6, 20)
	naive, err := SolveFR(in, FROptions{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	paper, err := SolveFR(in, FROptions{PaperRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if paper.TotalAccuracy < naive.TotalAccuracy-1e-9 {
		t.Errorf("free-budget sweep hurt: %g -> %g", naive.TotalAccuracy, paper.TotalAccuracy)
	}
}
