package task

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/machine"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func pwl(t *testing.T, theta float64) *accuracy.PWL {
	t.Helper()
	p, err := accuracy.FitChord(accuracy.NewExponential(theta), 5)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func smallInstance(t *testing.T) *Instance {
	t.Helper()
	in := &Instance{
		Tasks: []Task{
			{Name: "a", Deadline: 1, Acc: pwl(t, 0.5)},
			{Name: "b", Deadline: 2, Acc: pwl(t, 0.2)},
		},
		Machines: machine.Fleet{machine.New("m0", 2000, 40), machine.New("m1", 5000, 20)},
		Budget:   100,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestTaskAccessors(t *testing.T) {
	tk := Task{Name: "x", Deadline: 3, Acc: pwl(t, 0.5)}
	if err := tk.Validate(); err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(tk.FMax(), tk.Acc.FMax()) {
		t.Error("FMax should delegate")
	}
	if !numeric.AlmostEqual(tk.Efficiency(), tk.Acc.FirstSlope()) {
		t.Error("Efficiency should be first slope")
	}
}

func TestTaskValidateErrors(t *testing.T) {
	if err := (Task{Deadline: 0, Acc: pwl(t, 1)}).Validate(); err == nil {
		t.Error("zero deadline should fail")
	}
	if err := (Task{Deadline: 1}).Validate(); err == nil {
		t.Error("missing accuracy function should fail")
	}
}

func TestInstanceValidate(t *testing.T) {
	in := smallInstance(t)
	if in.N() != 2 || in.M() != 2 {
		t.Errorf("N=%d M=%d", in.N(), in.M())
	}
	// Unsorted deadlines rejected.
	bad := in.Clone()
	bad.Tasks[0].Deadline = 5
	if err := bad.Validate(); err == nil {
		t.Error("unsorted deadlines should fail validation")
	}
	bad2 := in.Clone()
	bad2.Budget = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative budget should fail")
	}
	empty := &Instance{Machines: in.Machines}
	if err := empty.Validate(); err == nil {
		t.Error("no tasks should fail")
	}
}

func TestInstanceAggregates(t *testing.T) {
	in := smallInstance(t)
	if !numeric.AlmostEqual(in.MaxDeadline(), 2) {
		t.Errorf("MaxDeadline = %g", in.MaxDeadline())
	}
	wantWork := in.Tasks[0].FMax() + in.Tasks[1].FMax()
	if math.Abs(in.TotalWork()-wantWork) > 1e-9 {
		t.Errorf("TotalWork = %g, want %g", in.TotalWork(), wantWork)
	}
	mu := in.HeterogeneityRatio()
	wantMu := in.Tasks[0].Efficiency() / in.Tasks[1].Efficiency()
	if math.Abs(mu-wantMu) > 1e-9 {
		t.Errorf("mu = %g, want %g", mu, wantMu)
	}
	if in.FullProcessingEnergy() <= 0 {
		t.Error("FullProcessingEnergy should be positive")
	}
}

func TestSortByDeadlineStable(t *testing.T) {
	in := smallInstance(t)
	in.Tasks[0].Deadline, in.Tasks[1].Deadline = 2, 1
	in.SortByDeadline()
	if in.Tasks[0].Name != "b" || in.Tasks[1].Name != "a" {
		t.Errorf("sort failed: %s, %s", in.Tasks[0].Name, in.Tasks[1].Name)
	}
}

func TestGenConfigValidate(t *testing.T) {
	good := DefaultConfig(10, 0.5, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GenConfig{
		func() GenConfig { c := good; c.N = 0; return c }(),
		func() GenConfig { c := good; c.Rho = 0; return c }(),
		func() GenConfig { c := good; c.Beta = -1; return c }(),
		func() GenConfig { c := good; c.ThetaMin = 0; return c }(),
		func() GenConfig { c := good; c.ThetaMax = 0.05; return c }(),
		func() GenConfig { c := good; c.Segments = 0; return c }(),
		func() GenConfig { c := good; c.AMax = 0; return c }(),
		func() GenConfig {
			c := good
			c.Scenario = EarliestHighEfficient
			return c // missing early params
		}(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d: expected error", i)
		}
	}
}

func TestGenerateUniform(t *testing.T) {
	src := rng.New(42, "gen")
	cfg := DefaultConfig(50, 0.35, 0.5)
	cfg.ThetaMax = 2.0 // heterogeneous
	in, err := GenerateUniformFleet(src, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 50 || in.M() != 5 {
		t.Fatalf("N=%d M=%d", in.N(), in.M())
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deadlines sorted and within (0, d_max].
	dMax := in.MaxDeadline()
	for j, tk := range in.Tasks {
		if tk.Deadline <= 0 || tk.Deadline > dMax {
			t.Fatalf("deadline %d = %g out of (0, %g]", j, tk.Deadline, dMax)
		}
	}
	// ρ and β round-trip through the instance.
	if got := in.DeadlineTolerance(); math.Abs(got-0.35) > 1e-9 {
		t.Errorf("recovered rho = %g, want 0.35", got)
	}
	if got := in.BudgetRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("recovered beta = %g, want 0.5", got)
	}
	// θ within bounds.
	for _, tk := range in.Tasks {
		th := tk.Efficiency()
		if th <= 0 || th > 2.0 {
			t.Errorf("theta %g out of range", th)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig(20, 1, 0.3)
	a, err := GenerateUniformFleet(rng.New(3, "d"), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateUniformFleet(rng.New(3, "d"), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Tasks {
		//lint:ignore floatcmp generator determinism is a bit-exact contract between runs
		if a.Tasks[j].Deadline != b.Tasks[j].Deadline {
			t.Fatalf("nondeterministic deadlines at %d", j)
		}
	}
	//lint:ignore floatcmp generator determinism is a bit-exact contract between runs
	if a.Budget != b.Budget {
		t.Error("nondeterministic budget")
	}
}

func TestGenerateEarliestHighEfficient(t *testing.T) {
	cfg := DefaultConfig(100, 0.01, 0.4)
	cfg.Scenario = EarliestHighEfficient
	cfg.ThetaMin, cfg.ThetaMax = 0.1, 1.0
	cfg.EarlyFraction = 0.30
	cfg.EarlyThetaMin, cfg.EarlyThetaMax = 4.0, 4.9
	in, err := Generate(rng.New(5, "ehe"), cfg, machine.TwoMachineScenario())
	if err != nil {
		t.Fatal(err)
	}
	// First 30 tasks (earliest deadlines) are the efficient ones. The first
	// PWL slope is slightly below θ, so check against a loose floor.
	for j, tk := range in.Tasks {
		th := tk.Efficiency()
		if j < 30 && th < 3.0 {
			t.Errorf("early task %d has low efficiency %g", j, th)
		}
		if j >= 30 && th > 1.1 {
			t.Errorf("late task %d has high efficiency %g", j, th)
		}
	}
	if s := cfg.Scenario.String(); s != "earliest-high-efficient" {
		t.Errorf("Scenario.String = %q", s)
	}
}

func TestScenarioString(t *testing.T) {
	if Uniform.String() != "uniform" {
		t.Error("Uniform string")
	}
	if Scenario(99).String() == "" {
		t.Error("unknown scenario should still render")
	}
}

func TestGenerateRejectsBadInputs(t *testing.T) {
	if _, err := GenerateUniformFleet(rng.New(1, "x"), GenConfig{}, 2); err == nil {
		t.Error("invalid config should fail")
	}
	cfg := DefaultConfig(5, 1, 1)
	if _, err := Generate(rng.New(1, "x"), cfg, nil); err == nil {
		t.Error("empty fleet should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in, err := GenerateUniformFleet(rng.New(8, "json"), DefaultConfig(10, 0.5, 0.5), 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := in.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() || back.M() != in.M() || math.Abs(back.Budget-in.Budget) > 1e-9 {
		t.Fatalf("round trip mismatch: N=%d M=%d B=%g", back.N(), back.M(), back.Budget)
	}
	for j := range in.Tasks {
		if math.Abs(back.Tasks[j].Deadline-in.Tasks[j].Deadline) > 1e-12 {
			t.Fatalf("deadline %d mismatch", j)
		}
		if math.Abs(back.Tasks[j].FMax()-in.Tasks[j].FMax()) > 1e-9 {
			t.Fatalf("fmax %d mismatch", j)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown fields should fail")
	}
	// Convex accuracy function must be rejected at load time.
	bad := `{"tasks":[{"deadline_s":1,"breakpoints_gflops":[0,1,2],"accuracy_values":[0,0.1,0.5]}],
	         "machines":[{"speed":1000,"power":100}],"budget_joules":10}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("non-concave accuracy function should fail")
	}
}

func TestPaperPresets(t *testing.T) {
	if cfg := PaperFig3(100, 10); !numeric.AlmostEqual(cfg.Rho, 0.35) || !numeric.AlmostEqual(cfg.Beta, 0.5) || math.Abs(cfg.ThetaMax-1.0) > 1e-12 {
		t.Errorf("PaperFig3 = %+v", cfg)
	}
	if cfg := PaperFig4(50); !numeric.AlmostEqual(cfg.Rho, 0.1) || !numeric.AlmostEqual(cfg.Beta, 0.15) {
		t.Errorf("PaperFig4 = %+v", cfg)
	}
	if cfg := PaperFig5(100, 0.3); !numeric.AlmostEqual(cfg.Rho, 1.0) || !numeric.AlmostEqual(cfg.Beta, 0.3) || !numeric.AlmostEqual(cfg.ThetaMax, 0.1) {
		t.Errorf("PaperFig5 = %+v", cfg)
	}
	a, err := PaperFig6(100, Uniform, 0.4)
	if err != nil || !numeric.AlmostEqual(a.ThetaMax, 4.9) || a.Scenario != Uniform {
		t.Errorf("PaperFig6 uniform = %+v, %v", a, err)
	}
	b, err := PaperFig6(100, EarliestHighEfficient, 0.4)
	if err != nil || b.Scenario != EarliestHighEfficient || !numeric.AlmostEqual(b.EarlyThetaMax, 4.9) {
		t.Errorf("PaperFig6 skewed = %+v, %v", b, err)
	}
	if _, err := PaperFig6(100, Scenario(9), 0.4); err == nil {
		t.Error("invalid scenario accepted")
	}
	// All presets validate and generate.
	for name, cfg := range map[string]GenConfig{
		"fig3": PaperFig3(10, 5), "fig4": PaperFig4(10), "fig5": PaperFig5(10, 0.5), "fig6a": a, "fig6b": b,
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
