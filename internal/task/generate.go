package task

import (
	"fmt"
	"sort"

	"repro/internal/accuracy"
	"repro/internal/machine"
	"repro/internal/rng"
)

// Scenario selects how task efficiencies θ relate to deadlines.
type Scenario int

const (
	// Uniform draws every θ uniformly from [ThetaMin, ThetaMax] — the
	// paper's default and its Fig 6a "Uniform Tasks" setting.
	Uniform Scenario = iota
	// EarliestHighEfficient gives the earliest EarlyFraction of tasks (by
	// deadline) a high efficiency in [EarlyThetaMin, EarlyThetaMax] and the
	// remaining tasks a low efficiency in [ThetaMin, ThetaMax] — the
	// paper's Fig 6b "Earliest High Efficient Tasks" setting.
	EarliestHighEfficient
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case EarliestHighEfficient:
		return "earliest-high-efficient"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// GenConfig parameterises workload generation, mirroring §6 of the paper.
//
// The deadline tolerance ρ sets the largest deadline as
//
//	d_max = ρ · m² · Σ_j f_j^max / Σ_r s_r
//
// (larger ρ means more time for the tasks; the paper's printed formula is
// dimensionally garbled, see DESIGN.md). Deadlines are drawn uniformly from
// (0, d_max] and sorted. The energy budget ratio β sets
//
//	B = β · d_max · Σ_r P_r
//
// (β = 1 lets every machine run at full power until d_max; β near 0 is a
// strict budget).
type GenConfig struct {
	N        int     // number of tasks
	Rho      float64 // deadline tolerance ρ > 0
	Beta     float64 // energy budget ratio β >= 0
	ThetaMin float64 // minimum task efficiency (paper: 0.1)
	ThetaMax float64 // maximum task efficiency (>= ThetaMin)
	Segments int     // PWL segments per accuracy function (paper: 5)
	AMin     float64 // accuracy floor (paper: 1/1000)
	AMax     float64 // accuracy ceiling (paper: 0.82)
	Scenario Scenario

	// EarliestHighEfficient parameters (ignored for Uniform).
	EarlyFraction float64 // fraction of earliest tasks that are efficient (paper: 0.30)
	EarlyThetaMin float64 // paper: 4.0
	EarlyThetaMax float64 // paper: 4.9
}

// DefaultConfig returns the paper's base configuration with the given task
// count, deadline tolerance and budget ratio, and uniform θ = ThetaMin.
func DefaultConfig(n int, rho, beta float64) GenConfig {
	return GenConfig{
		N:        n,
		Rho:      rho,
		Beta:     beta,
		ThetaMin: 0.1,
		ThetaMax: 0.1,
		Segments: accuracy.DefaultSegments,
		AMin:     accuracy.DefaultAMin,
		AMax:     accuracy.DefaultAMax,
		Scenario: Uniform,
	}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("task: N must be positive, got %d", c.N)
	}
	if c.Rho <= 0 {
		return fmt.Errorf("task: Rho must be positive, got %g", c.Rho)
	}
	if c.Beta < 0 {
		return fmt.Errorf("task: Beta must be non-negative, got %g", c.Beta)
	}
	if c.ThetaMin <= 0 || c.ThetaMax < c.ThetaMin {
		return fmt.Errorf("task: need 0 < ThetaMin <= ThetaMax, got [%g, %g]", c.ThetaMin, c.ThetaMax)
	}
	if c.Segments < 1 {
		return fmt.Errorf("task: Segments must be >= 1, got %d", c.Segments)
	}
	if !(c.AMin >= 0 && c.AMax > c.AMin) {
		return fmt.Errorf("task: need 0 <= AMin < AMax, got [%g, %g]", c.AMin, c.AMax)
	}
	if c.Scenario == EarliestHighEfficient {
		if c.EarlyFraction <= 0 || c.EarlyFraction > 1 {
			return fmt.Errorf("task: EarlyFraction must lie in (0,1], got %g", c.EarlyFraction)
		}
		if c.EarlyThetaMin <= 0 || c.EarlyThetaMax < c.EarlyThetaMin {
			return fmt.Errorf("task: need 0 < EarlyThetaMin <= EarlyThetaMax, got [%g, %g]",
				c.EarlyThetaMin, c.EarlyThetaMax)
		}
	}
	return nil
}

// Generate draws a complete problem instance for the given fleet. Tasks are
// returned sorted by non-decreasing deadline.
func Generate(src *rng.Source, cfg GenConfig, fleet machine.Fleet) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fleet.Validate(); err != nil {
		return nil, err
	}

	// Draw task efficiencies. For EarliestHighEfficient, the first
	// ceil(EarlyFraction·N) tasks in deadline order are the efficient ones.
	thetas := make([]float64, cfg.N)
	nEarly := 0
	if cfg.Scenario == EarliestHighEfficient {
		nEarly = int(float64(cfg.N)*cfg.EarlyFraction + 0.5)
		if nEarly > cfg.N {
			nEarly = cfg.N
		}
	}
	for j := range thetas {
		if j < nEarly {
			thetas[j] = src.Uniform(cfg.EarlyThetaMin, cfg.EarlyThetaMax)
		} else {
			thetas[j] = src.Uniform(cfg.ThetaMin, cfg.ThetaMax)
		}
	}

	// Build accuracy functions; f_j^max is determined by θ_j through the
	// exponential model so that a_j(f_j^max) = AMax (paper §6).
	tasks := make([]Task, cfg.N)
	var totalWork float64
	for j := range tasks {
		model := accuracy.Exponential{
			AMin: cfg.AMin, AMax: cfg.AMax, Theta: thetas[j], Cut: accuracy.DefaultCut,
		}
		pwl, err := accuracy.FitChord(model, cfg.Segments)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", j, err)
		}
		tasks[j] = Task{Name: fmt.Sprintf("t%d", j), Acc: pwl}
		totalWork += pwl.FMax()
	}

	// Deadlines: d_max from ρ, each d_j uniform in (0, d_max], sorted. The
	// earliest tasks keep the low indices, so in the EarliestHighEfficient
	// scenario the high-θ tasks end up with the earliest deadlines.
	m := float64(len(fleet))
	dMax := cfg.Rho * m * m * totalWork / fleet.TotalSpeed()
	deadlines := make([]float64, cfg.N)
	for j := range deadlines {
		// (0, dMax]: avoid a zero deadline.
		deadlines[j] = dMax * (1 - src.Float64())
	}
	sort.Float64s(deadlines)
	// Force the recovered d_max to be exact so β is well-defined.
	deadlines[cfg.N-1] = dMax
	for j := range tasks {
		tasks[j].Deadline = deadlines[j]
	}

	inst := &Instance{
		Tasks:    tasks,
		Machines: fleet.Clone(),
		Budget:   cfg.Beta * dMax * fleet.TotalPower(),
	}
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	return inst, nil
}

// GenerateUniformFleet draws both a uniform fleet of m machines and an
// instance over it.
func GenerateUniformFleet(src *rng.Source, cfg GenConfig, m int) (*Instance, error) {
	return Generate(src, cfg, machine.UniformFleet(src, m))
}
