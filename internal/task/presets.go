package task

import "fmt"

// Canonical workload configurations of the paper's evaluation (§6). The
// experiment harness builds its sweeps from these; they are also reachable
// from cmd/gen via -preset so any instance from the paper's figures can be
// materialised as JSON.

// PaperFig3 returns the Fig 3 workload: n tasks, ρ=0.35, β=0.5, task
// efficiencies uniform in [0.1, 0.1·mu] (mu is the heterogeneity ratio;
// the paper sweeps mu in [5, 20] with n=100, m=5).
func PaperFig3(n int, mu float64) GenConfig {
	cfg := DefaultConfig(n, 0.35, 0.5)
	cfg.ThetaMax = cfg.ThetaMin * mu
	return cfg
}

// PaperFig4 returns the runtime-sweep workload used for Fig 4 in this
// reproduction: tight deadlines (ρ=0.1) and budget (β=0.15) with
// heterogeneous tasks (μ=10), the regime where the exact solver actually
// has to branch (see DESIGN.md §3).
func PaperFig4(n int) GenConfig {
	cfg := DefaultConfig(n, 0.1, 0.15)
	cfg.ThetaMax = 1.0
	return cfg
}

// PaperFig5 returns the Fig 5 workload: n uniform θ=0.1 tasks, ρ=1.0, at
// energy budget ratio beta (the paper sweeps beta in [0.1, 1.0] with
// n=100, m=2).
func PaperFig5(n int, beta float64) GenConfig {
	return DefaultConfig(n, 1.0, beta)
}

// PaperFig6 returns the Fig 6 workload at budget ratio beta: n tasks with
// very strict deadlines (ρ=0.01) on the fixed two-machine fleet
// (machine.TwoMachineScenario). scenario selects Fig 6a (Uniform,
// θ∈[0.1, 4.9]) or Fig 6b (EarliestHighEfficient: earliest 30% with
// θ∈[4.0, 4.9], rest θ∈[0.1, 1.0]).
func PaperFig6(n int, scenario Scenario, beta float64) (GenConfig, error) {
	cfg := DefaultConfig(n, 0.01, beta)
	switch scenario {
	case Uniform:
		cfg.ThetaMin, cfg.ThetaMax = 0.1, 4.9
	case EarliestHighEfficient:
		cfg.Scenario = EarliestHighEfficient
		cfg.ThetaMin, cfg.ThetaMax = 0.1, 1.0
		cfg.EarlyFraction = 0.30
		cfg.EarlyThetaMin, cfg.EarlyThetaMax = 4.0, 4.9
	default:
		return GenConfig{}, fmt.Errorf("task: unsupported scenario %v for Fig 6", scenario)
	}
	return cfg, nil
}
