// Package task models compressible inference tasks and problem instances,
// and generates the synthetic workloads of the paper's evaluation (§6):
// tasks with exponential-derived 5-segment piecewise-linear accuracy
// functions, task efficiencies θ drawn per scenario, deadlines controlled
// by the deadline-tolerance ρ, and an energy budget controlled by the
// budget ratio β.
package task

import (
	"fmt"
	"sort"

	"repro/internal/accuracy"
	"repro/internal/machine"
)

// Task is one compressible inference request: it must finish by Deadline
// and yields accuracy Acc.Eval(f) when granted f GFLOPs of work, up to
// FMax = Acc.FMax().
type Task struct {
	Name     string
	Deadline float64 // seconds
	Acc      *accuracy.PWL
}

// FMax returns the work required for full, uncompressed processing.
func (t Task) FMax() float64 { return t.Acc.FMax() }

// Efficiency returns the paper's task efficiency θ: the slope of the first
// segment of the accuracy function.
func (t Task) Efficiency() float64 { return t.Acc.FirstSlope() }

// Validate checks the task's fields.
func (t Task) Validate() error {
	if t.Deadline <= 0 {
		return fmt.Errorf("task %q: deadline must be positive, got %g", t.Name, t.Deadline)
	}
	if t.Acc == nil {
		return fmt.Errorf("task %q: missing accuracy function", t.Name)
	}
	return t.Acc.Validate()
}

// Instance is a complete DSCT-EA problem: tasks (sorted by non-decreasing
// deadline, the order every algorithm in this module assumes), machines,
// and the energy budget B in Joules.
type Instance struct {
	Tasks    []Task
	Machines machine.Fleet
	Budget   float64 // Joules
}

// N returns the number of tasks.
func (in *Instance) N() int { return len(in.Tasks) }

// M returns the number of machines.
func (in *Instance) M() int { return len(in.Machines) }

// Validate checks structural invariants: non-empty tasks and machines,
// valid components, deadline-sorted tasks and a non-negative budget.
func (in *Instance) Validate() error {
	if len(in.Tasks) == 0 {
		return fmt.Errorf("task: instance has no tasks")
	}
	if err := in.Machines.Validate(); err != nil {
		return err
	}
	for j, tk := range in.Tasks {
		if err := tk.Validate(); err != nil {
			return fmt.Errorf("task %d: %w", j, err)
		}
		if j > 0 && tk.Deadline < in.Tasks[j-1].Deadline {
			return fmt.Errorf("task: tasks not sorted by deadline at index %d (%g < %g)",
				j, tk.Deadline, in.Tasks[j-1].Deadline)
		}
	}
	if in.Budget < 0 {
		return fmt.Errorf("task: negative energy budget %g", in.Budget)
	}
	return nil
}

// SortByDeadline sorts the tasks in place by non-decreasing deadline
// (stable, so equal deadlines keep their relative order).
func (in *Instance) SortByDeadline() {
	sort.SliceStable(in.Tasks, func(a, b int) bool {
		return in.Tasks[a].Deadline < in.Tasks[b].Deadline
	})
}

// MaxDeadline returns d_max = max_j d_j. It panics on an empty instance.
func (in *Instance) MaxDeadline() float64 {
	if len(in.Tasks) == 0 {
		panic("task: MaxDeadline of empty instance")
	}
	// Tasks are deadline-sorted, but tolerate unsorted input.
	d := in.Tasks[0].Deadline
	for _, t := range in.Tasks[1:] {
		if t.Deadline > d {
			d = t.Deadline
		}
	}
	return d
}

// TotalWork returns Σ_j f_j^max in GFLOPs.
func (in *Instance) TotalWork() float64 {
	var s float64
	for _, t := range in.Tasks {
		s += t.FMax()
	}
	return s
}

// HeterogeneityRatio returns μ = θ_max / θ_min over the tasks' first-segment
// slopes (the paper's task heterogeneity ratio).
func (in *Instance) HeterogeneityRatio() float64 {
	if len(in.Tasks) == 0 {
		return 1
	}
	min, max := in.Tasks[0].Efficiency(), in.Tasks[0].Efficiency()
	for _, t := range in.Tasks[1:] {
		e := t.Efficiency()
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return max / min
}

// DeadlineTolerance returns ρ recovered from the instance:
// ρ = d_max · Σ_r s_r / (m² · Σ_j f_j^max); see GenConfig for the forward
// definition.
func (in *Instance) DeadlineTolerance() float64 {
	m := float64(in.M())
	return in.MaxDeadline() * in.Machines.TotalSpeed() / (m * m * in.TotalWork())
}

// BudgetRatio returns β recovered from the instance:
// β = B / (d_max · Σ_r P_r).
func (in *Instance) BudgetRatio() float64 {
	return in.Budget / (in.MaxDeadline() * in.Machines.TotalPower())
}

// FullProcessingEnergy returns a lower bound on the energy needed to fully
// process every task, assuming all work runs on the most efficient machine:
// Σ_j f_j^max / E_best. It is used by experiments to contextualise β.
func (in *Instance) FullProcessingEnergy() float64 {
	best := 0.0
	for _, m := range in.Machines {
		if e := m.Efficiency(); e > best {
			best = e
		}
	}
	if best == 0 {
		return 0
	}
	return in.TotalWork() / best
}

// Clone returns a deep copy of the instance (tasks share their immutable
// accuracy functions).
func (in *Instance) Clone() *Instance {
	return &Instance{
		Tasks:    append([]Task(nil), in.Tasks...),
		Machines: in.Machines.Clone(),
		Budget:   in.Budget,
	}
}
