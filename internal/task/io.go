package task

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/accuracy"
	"repro/internal/machine"
)

// instanceDTO is the on-disk JSON form of an Instance. Accuracy functions
// are serialised as their breakpoints and values.
type instanceDTO struct {
	Tasks    []taskDTO         `json:"tasks"`
	Machines []machine.Machine `json:"machines"`
	Budget   float64           `json:"budget_joules"`
}

type taskDTO struct {
	Name        string    `json:"name,omitempty"`
	Deadline    float64   `json:"deadline_s"`
	Breakpoints []float64 `json:"breakpoints_gflops"`
	Values      []float64 `json:"accuracy_values"`
}

// WriteJSON serialises the instance to w as indented JSON.
func (in *Instance) WriteJSON(w io.Writer) error {
	dto := instanceDTO{
		Machines: in.Machines,
		Budget:   in.Budget,
	}
	for _, t := range in.Tasks {
		dto.Tasks = append(dto.Tasks, taskDTO{
			Name:        t.Name,
			Deadline:    t.Deadline,
			Breakpoints: t.Acc.Breakpoints(),
			Values:      t.Acc.Values(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dto)
}

// ReadJSON parses an instance from r, validating it fully (including
// accuracy-function concavity and deadline ordering).
func ReadJSON(r io.Reader) (*Instance, error) {
	var dto instanceDTO
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("task: decoding instance: %w", err)
	}
	in := &Instance{
		Machines: dto.Machines,
		Budget:   dto.Budget,
	}
	for i, td := range dto.Tasks {
		pwl, err := accuracy.NewPWL(td.Breakpoints, td.Values)
		if err != nil {
			return nil, fmt.Errorf("task %d (%s): %w", i, td.Name, err)
		}
		in.Tasks = append(in.Tasks, Task{Name: td.Name, Deadline: td.Deadline, Acc: pwl})
	}
	in.SortByDeadline()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
