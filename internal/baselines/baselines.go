// Package baselines implements the state-of-the-art scheduling strategies
// the paper compares DSCT-EA-APPROX against (§6):
//
//   - EDF-NoCompression: tasks are never compressed (always f_j^max
//     operations). Earliest-Deadline-First order combined with
//     least-loaded-machine placement; scheduling stops when the energy
//     budget is exhausted.
//   - EDF-3CompressionLevels: neural networks may run at three discrete
//     compression levels (accuracy 27%, 55% or 82% by default, after the
//     quality-oriented allocation of Lee & Song). Each task gets the
//     highest level that fits both its deadline on the least-loaded
//     machine and the remaining energy budget.
//
// Tasks that cannot be scheduled at all remain unprocessed and score
// a_j(0) = a_min.
package baselines

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/task"
)

// DefaultLevels are the paper's three discrete accuracy levels for
// EDF-3CompressionLevels.
var DefaultLevels = []float64{0.27, 0.55, 0.82}

// EDFNoCompression schedules every task uncompressed. For each task in
// deadline (EDF) order it picks the machine with the least committed work;
// the task is scheduled there only if its full processing time fits the
// deadline and the remaining energy budget, otherwise it is skipped.
func EDFNoCompression(in *task.Instance) *schedule.Schedule {
	s := schedule.New(in.N(), in.M())
	work := make([]float64, in.M())
	remaining := in.Budget
	for j, tk := range in.Tasks {
		r := leastLoaded(work)
		t := tk.FMax() / in.Machines[r].Speed
		if work[r]+t > tk.Deadline {
			continue // would miss its deadline: cannot compress, so skip
		}
		if e := t * in.Machines[r].Power; e > remaining {
			continue // budget exhausted for a full run
		}
		s.Times[j][r] = t
		work[r] += t
		remaining -= t * in.Machines[r].Power
	}
	return s
}

// EDF3CompressionLevels schedules tasks at the highest of the given
// discrete accuracy levels that fits the deadline (on the least-loaded
// machine) and the remaining budget. Levels must be increasing accuracies;
// nil selects DefaultLevels.
func EDF3CompressionLevels(in *task.Instance, levels []float64) (*schedule.Schedule, error) {
	if levels == nil {
		levels = DefaultLevels
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			return nil, fmt.Errorf("baselines: levels must strictly increase, got %v", levels)
		}
	}
	s := schedule.New(in.N(), in.M())
	work := make([]float64, in.M())
	remaining := in.Budget
	for j, tk := range in.Tasks {
		r := leastLoaded(work)
		// Highest level first.
		for li := len(levels) - 1; li >= 0; li-- {
			target := levels[li]
			if target > tk.Acc.AMax() {
				continue // level unreachable for this task's model
			}
			f, err := tk.Acc.Inverse(target)
			if err != nil {
				continue
			}
			if f <= 0 {
				break // level at or below a_min: not worth scheduling
			}
			t := f / in.Machines[r].Speed
			if work[r]+t > tk.Deadline {
				continue
			}
			if e := t * in.Machines[r].Power; e > remaining {
				continue
			}
			s.Times[j][r] = t
			work[r] += t
			remaining -= t * in.Machines[r].Power
			break
		}
	}
	return s, nil
}

// leastLoaded returns the index of the machine with the least committed
// work (lowest index on ties).
func leastLoaded(work []float64) int {
	best := 0
	for r := 1; r < len(work); r++ {
		if work[r] < work[best] {
			best = r
		}
	}
	return best
}
