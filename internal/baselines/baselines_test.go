package baselines

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/task"
)

func genInstance(t *testing.T, seed int64, n, m int, rho, beta float64) *task.Instance {
	t.Helper()
	cfg := task.DefaultConfig(n, rho, beta)
	in, err := task.GenerateUniformFleet(rng.New(seed, "baselines"), cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEDFNoCompressionFeasible(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		in := genInstance(t, int64(trial), 40, 3, 0.5, 0.5)
		s := EDFNoCompression(in)
		if err := s.Validate(in, schedule.ValidateOptions{RequireIntegral: true}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestEDFNoCompressionAllOrNothing(t *testing.T) {
	in := genInstance(t, 10, 30, 2, 0.8, 0.7)
	s := EDFNoCompression(in)
	for j := range in.Tasks {
		w := s.Work(in, j)
		fmax := in.Tasks[j].FMax()
		if w > 1e-9 && math.Abs(w-fmax) > 1e-6*fmax {
			t.Errorf("task %d partially processed (%g of %g) without compression", j, w, fmax)
		}
	}
}

func TestEDFNoCompressionBudgetStops(t *testing.T) {
	in := genInstance(t, 11, 30, 2, 1.0, 1.0)
	in.Budget = in.FullProcessingEnergy() * 0.2 // only ~20% of the cheapest full run
	s := EDFNoCompression(in)
	if err := s.Validate(in, schedule.ValidateOptions{}); err != nil {
		t.Fatal(err)
	}
	scheduled := 0
	for j := range in.Tasks {
		if s.Work(in, j) > 0 {
			scheduled++
		}
	}
	if scheduled == len(in.Tasks) {
		t.Error("tight budget should leave tasks unscheduled")
	}
}

func TestEDF3LevelsFeasibleAndQuantized(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		in := genInstance(t, 20+int64(trial), 40, 3, 0.5, 0.5)
		s, err := EDF3CompressionLevels(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(in, schedule.ValidateOptions{RequireIntegral: true}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every processed task sits at one of the level accuracies.
		for j := range in.Tasks {
			w := s.Work(in, j)
			if w <= 1e-9 {
				continue
			}
			a := in.Tasks[j].Acc.Eval(w)
			ok := false
			for _, lv := range DefaultLevels {
				if math.Abs(a-lv) < 1e-6 {
					ok = true
				}
			}
			if !ok {
				t.Errorf("trial %d: task %d accuracy %g not at a level", trial, j, a)
			}
		}
	}
}

func TestEDF3LevelsRejectsBadLevels(t *testing.T) {
	in := genInstance(t, 30, 5, 2, 0.5, 0.5)
	if _, err := EDF3CompressionLevels(in, []float64{0.5, 0.5}); err == nil {
		t.Error("non-increasing levels accepted")
	}
}

func TestEDF3LevelsBeatsNoCompressionUnderTightBudget(t *testing.T) {
	// With a strict budget, compression should allow more tasks (higher
	// total accuracy) than always-full processing — the paper's Fig 5 gap.
	var acc3, accNo float64
	for trial := 0; trial < 5; trial++ {
		in := genInstance(t, 40+int64(trial), 60, 2, 1.0, 0.15)
		s3, err := EDF3CompressionLevels(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		sNo := EDFNoCompression(in)
		acc3 += s3.TotalAccuracy(in)
		accNo += sNo.TotalAccuracy(in)
	}
	if acc3 <= accNo {
		t.Errorf("3-levels (%g) should beat no-compression (%g) under a tight budget", acc3, accNo)
	}
}

func TestApproxDominatesBaselinesUnderTightBudget(t *testing.T) {
	// The paper's headline comparison (Fig 5): under a constrained budget
	// DSCT-EA-APPROX clearly beats both baselines.
	var accApprox, acc3, accNo float64
	for trial := 0; trial < 4; trial++ {
		in := genInstance(t, 50+int64(trial), 50, 2, 1.0, 0.15)
		sol, err := approx.Solve(in, approx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s3, err := EDF3CompressionLevels(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		accApprox += sol.TotalAccuracy
		acc3 += s3.TotalAccuracy(in)
		accNo += EDFNoCompression(in).TotalAccuracy(in)
	}
	if accApprox <= acc3 || accApprox <= accNo {
		t.Errorf("approx (%g) should dominate 3-levels (%g) and no-compression (%g)",
			accApprox, acc3, accNo)
	}
}

func TestApproxCompetitiveUnderGenerousBudget(t *testing.T) {
	// At generous budgets all methods converge toward Σ a_max (Fig 5 right
	// edge); the approximation must stay within 1% of the best baseline.
	var accApprox, accBest float64
	for trial := 0; trial < 4; trial++ {
		in := genInstance(t, 50+int64(trial), 50, 2, 1.0, 0.5)
		sol, err := approx.Solve(in, approx.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s3, err := EDF3CompressionLevels(in, nil)
		if err != nil {
			t.Fatal(err)
		}
		accApprox += sol.TotalAccuracy
		accBest += math.Max(s3.TotalAccuracy(in), EDFNoCompression(in).TotalAccuracy(in))
	}
	if accApprox < 0.99*accBest {
		t.Errorf("approx (%g) more than 1%% below best baseline (%g) at generous budget",
			accApprox, accBest)
	}
}

func TestLeastLoaded(t *testing.T) {
	if leastLoaded([]float64{3, 1, 2}) != 1 {
		t.Error("leastLoaded wrong")
	}
	if leastLoaded([]float64{1, 1}) != 0 {
		t.Error("tie should pick lowest index")
	}
}

func TestZeroBudgetSchedulesNothing(t *testing.T) {
	in := genInstance(t, 60, 10, 2, 0.5, 0)
	in.Budget = 0
	sNo := EDFNoCompression(in)
	s3, err := EDF3CompressionLevels(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range in.Tasks {
		if sNo.Work(in, j) != 0 || s3.Work(in, j) != 0 {
			t.Fatalf("task %d scheduled with zero budget", j)
		}
	}
}
