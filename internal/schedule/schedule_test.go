package schedule

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/machine"
	"repro/internal/numeric"
	"repro/internal/task"
)

// twoTaskInstance: two tasks with a simple 2-segment accuracy function on
// two machines with speeds 1000/2000 GFLOP/s and powers 100/200 W.
func twoTaskInstance(t *testing.T) *task.Instance {
	t.Helper()
	acc := accuracy.MustPWL([]float64{0, 100, 300}, []float64{0.1, 0.6, 0.8})
	in := &task.Instance{
		Tasks: []task.Task{
			{Name: "a", Deadline: 1.0, Acc: acc},
			{Name: "b", Deadline: 2.0, Acc: acc},
		},
		Machines: machine.Fleet{
			{Name: "m0", Speed: 1000, Power: 100},
			{Name: "m1", Speed: 2000, Power: 200},
		},
		Budget: 1000,
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewShape(t *testing.T) {
	s := New(3, 2)
	if s.N() != 3 || s.M() != 2 {
		t.Fatalf("N=%d M=%d", s.N(), s.M())
	}
	if (&Schedule{}).M() != 0 {
		t.Error("empty schedule M should be 0")
	}
}

func TestWorkEnergyAccuracy(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	s.Times[0][0] = 0.1 // 100 GFLOPs on m0 -> a = 0.6
	s.Times[1][1] = 0.1 // 200 GFLOPs on m1 -> a = 0.6 + 100*0.001 = 0.7
	if w := s.Work(in, 0); math.Abs(w-100) > 1e-9 {
		t.Errorf("work 0 = %g", w)
	}
	if w := s.Work(in, 1); math.Abs(w-200) > 1e-9 {
		t.Errorf("work 1 = %g", w)
	}
	if e := s.Energy(in); math.Abs(e-(0.1*100+0.1*200)) > 1e-9 {
		t.Errorf("energy = %g", e)
	}
	wantAcc := 0.6 + 0.7
	if a := s.TotalAccuracy(in); math.Abs(a-wantAcc) > 1e-9 {
		t.Errorf("accuracy = %g, want %g", a, wantAcc)
	}
	if avg := s.AverageAccuracy(in); math.Abs(avg-wantAcc/2) > 1e-9 {
		t.Errorf("avg accuracy = %g", avg)
	}
	if obj := s.Objective(in); math.Abs(obj-(2-wantAcc)) > 1e-9 {
		t.Errorf("objective = %g", obj)
	}
	m := s.MetricsFor(in)
	if !numeric.AlmostEqual(m.TotalAccuracy, s.TotalAccuracy(in)) || len(m.Profile) != 2 {
		t.Error("MetricsFor inconsistent")
	}
}

func TestProfileAndLoads(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	s.Times[0][0] = 0.3
	s.Times[1][0] = 0.2
	s.Times[1][1] = 0.4
	if l := s.MachineLoad(0); math.Abs(l-0.5) > 1e-12 {
		t.Errorf("load 0 = %g", l)
	}
	p := s.Profile()
	if math.Abs(p[0]-0.5) > 1e-12 || math.Abs(p[1]-0.4) > 1e-12 {
		t.Errorf("profile = %v", p)
	}
	_ = in
}

func TestAssignedMachine(t *testing.T) {
	s := New(2, 2)
	s.Times[0][1] = 0.5
	r, err := s.AssignedMachine(0)
	if err != nil || r != 1 {
		t.Errorf("AssignedMachine = %d, %v", r, err)
	}
	r, err = s.AssignedMachine(1)
	if err != nil || r != -1 {
		t.Errorf("empty task AssignedMachine = %d, %v", r, err)
	}
	s.Times[0][0] = 0.1
	if _, err := s.AssignedMachine(0); err == nil {
		t.Error("split task should error")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(1, 1)
	c := s.Clone()
	c.Times[0][0] = 5
	if s.Times[0][0] != 0 {
		t.Error("Clone shares storage")
	}
}

func TestValidateAcceptsFeasible(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	s.Times[0][0] = 0.1
	s.Times[1][1] = 0.1
	if err := s.Validate(in, ValidateOptions{RequireIntegral: true}); err != nil {
		t.Errorf("feasible schedule rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	in := twoTaskInstance(t)

	// Wrong shape.
	if err := New(1, 2).Validate(in, ValidateOptions{}); err == nil {
		t.Error("wrong row count accepted")
	}
	if err := New(2, 1).Validate(in, ValidateOptions{}); err == nil {
		t.Error("wrong column count accepted")
	}

	// Negative time.
	s := New(2, 2)
	s.Times[0][0] = -0.5
	if err := s.Validate(in, ValidateOptions{}); err == nil {
		t.Error("negative time accepted")
	}

	// NaN.
	s = New(2, 2)
	s.Times[0][0] = math.NaN()
	if err := s.Validate(in, ValidateOptions{}); err == nil {
		t.Error("NaN accepted")
	}

	// Deadline miss: task a (d=1.0) scheduled for 1.5 s.
	s = New(2, 2)
	s.Times[0][0] = 1.5
	if err := s.Validate(in, ValidateOptions{}); err == nil {
		t.Error("deadline miss accepted")
	}

	// Staircase miss: a uses [0,0.9], b (d=2.0) needs 1.2 -> completes 2.1.
	s = New(2, 2)
	s.Times[0][0] = 0.9
	s.Times[1][0] = 1.2
	if err := s.Validate(in, ValidateOptions{}); err == nil {
		t.Error("staircase violation accepted")
	}

	// Work beyond fmax: 300 GFLOPs max; 0.2 s on m1 = 400.
	s = New(2, 2)
	s.Times[0][1] = 0.2
	if err := s.Validate(in, ValidateOptions{}); err == nil {
		t.Error("fmax violation accepted")
	}

	// Energy budget: shrink budget.
	tight := in.Clone()
	tight.Budget = 1
	s = New(2, 2)
	s.Times[0][0] = 0.1 // 10 J > 1 J
	if err := s.Validate(tight, ValidateOptions{}); err == nil {
		t.Error("energy violation accepted")
	}

	// Integral requirement.
	s = New(2, 2)
	s.Times[0][0] = 0.05
	s.Times[0][1] = 0.05
	if err := s.Validate(in, ValidateOptions{RequireIntegral: true}); err == nil {
		t.Error("split task accepted under RequireIntegral")
	}
	if err := s.Validate(in, ValidateOptions{}); err != nil {
		t.Errorf("fractional split rejected without RequireIntegral: %v", err)
	}
}

func TestValidateStaircaseAllowsEarlierIdleGap(t *testing.T) {
	// Task b alone on a slow machine finishing at 1.9 < d_b=2.0 is fine
	// even though 1.9 passes a's deadline of 1.0 (a has no time there).
	acc := accuracy.MustPWL([]float64{0, 100, 300}, []float64{0.1, 0.6, 0.8})
	in := &task.Instance{
		Tasks: []task.Task{
			{Name: "a", Deadline: 1.0, Acc: acc},
			{Name: "b", Deadline: 2.0, Acc: acc},
		},
		Machines: machine.Fleet{{Name: "slow", Speed: 100, Power: 10}},
		Budget:   1000,
	}
	s := New(2, 1)
	s.Times[1][0] = 1.9 // 190 GFLOPs < fmax, completes at 1.9 < 2.0
	if err := s.Validate(in, ValidateOptions{}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestWorkKahanStability(t *testing.T) {
	// Many tiny contributions should sum stably.
	acc := accuracy.MustPWL([]float64{0, 1000}, []float64{0, 0.8})
	in := &task.Instance{
		Tasks:    []task.Task{{Name: "a", Deadline: 10, Acc: acc}},
		Machines: make(machine.Fleet, 100),
		Budget:   1e12,
	}
	for r := range in.Machines {
		in.Machines[r] = machine.Machine{Name: "m", Speed: 1000, Power: 100}
	}
	s := New(1, 100)
	for r := 0; r < 100; r++ {
		s.Times[0][r] = 1e-6
	}
	if w := s.Work(in, 0); math.Abs(w-0.1) > 1e-9 {
		t.Errorf("work = %.12g, want 0.1", w)
	}
}
