package schedule

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/task"
)

// WriteCSV exports the schedule as a per-(task, machine) CSV for
// downstream analysis: one row per positive assignment with start time,
// duration, work, achieved accuracy and the task's deadline. Start times
// follow the per-machine EDF queues (prefix sums).
func (s *Schedule) WriteCSV(w io.Writer, in *task.Instance) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"task", "name", "machine", "machine_name",
		"start_s", "time_s", "work_gflops", "accuracy", "deadline_s",
	}); err != nil {
		return err
	}
	starts := make([]float64, in.M())
	for j := 0; j < s.N(); j++ {
		work := s.Work(in, j)
		acc := in.Tasks[j].Acc.Eval(work)
		for r := 0; r < s.M(); r++ {
			t := s.Times[j][r]
			if t <= 0 {
				continue
			}
			row := []string{
				fmt.Sprintf("%d", j),
				in.Tasks[j].Name,
				fmt.Sprintf("%d", r),
				in.Machines[r].Name,
				fmt.Sprintf("%.9g", starts[r]),
				fmt.Sprintf("%.9g", t),
				fmt.Sprintf("%.9g", work),
				fmt.Sprintf("%.6f", acc),
				fmt.Sprintf("%.9g", in.Tasks[j].Deadline),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
			starts[r] += t
		}
	}
	cw.Flush()
	return cw.Error()
}
