// Package schedule defines the common solution representation shared by
// every algorithm in this module, together with an independent feasibility
// validator and the accuracy/energy metrics reported by the experiments.
//
// A Schedule stores the processing-time matrix t_jr (seconds of task j on
// machine r). Integral solutions (DSCT-EA) use a single non-zero entry per
// row; fractional solutions (DSCT-EA-FR) may split a row across machines.
// On each machine, tasks run back-to-back in deadline (index) order, so
// task j completes on machine r at Σ_{i<=j} t_ir — the staircase constraint
// (1b) of the paper.
package schedule

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/task"
)

// Schedule is the processing-time matrix of a solution.
type Schedule struct {
	// Times[j][r] is the time (seconds) task j spends on machine r.
	Times [][]float64
}

// New returns an all-zero schedule for n tasks and m machines.
func New(n, m int) *Schedule {
	t := make([][]float64, n)
	cells := make([]float64, n*m)
	for j := range t {
		t[j], cells = cells[:m:m], cells[m:]
	}
	return &Schedule{Times: t}
}

// N returns the number of tasks.
func (s *Schedule) N() int { return len(s.Times) }

// M returns the number of machines (0 for an empty schedule).
func (s *Schedule) M() int {
	if len(s.Times) == 0 {
		return 0
	}
	return len(s.Times[0])
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := New(s.N(), s.M())
	for j := range s.Times {
		copy(c.Times[j], s.Times[j])
	}
	return c
}

// Work returns the total work f_j = Σ_r s_r·t_jr granted to task j, in
// GFLOPs.
func (s *Schedule) Work(in *task.Instance, j int) float64 {
	var w numeric.KahanSum
	for r, m := range in.Machines {
		w.Add(m.Speed * s.Times[j][r])
	}
	return w.Value()
}

// MachineLoad returns the total busy time Σ_j t_jr of machine r, in
// seconds. This is the machine's realised energy profile entry.
func (s *Schedule) MachineLoad(r int) float64 {
	var l numeric.KahanSum
	for j := range s.Times {
		l.Add(s.Times[j][r])
	}
	return l.Value()
}

// Profile returns all machine loads (the realised energy profile).
func (s *Schedule) Profile() []float64 {
	out := make([]float64, s.M())
	for r := range out {
		out[r] = s.MachineLoad(r)
	}
	return out
}

// Energy returns the total energy Σ_{j,r} t_jr·P_r consumed, in Joules.
func (s *Schedule) Energy(in *task.Instance) float64 {
	var e numeric.KahanSum
	for j := range s.Times {
		for r, m := range in.Machines {
			e.Add(s.Times[j][r] * m.Power)
		}
	}
	return e.Value()
}

// TotalAccuracy returns Σ_j a_j(f_j).
func (s *Schedule) TotalAccuracy(in *task.Instance) float64 {
	var a numeric.KahanSum
	for j := range s.Times {
		a.Add(in.Tasks[j].Acc.Eval(s.Work(in, j)))
	}
	return a.Value()
}

// AverageAccuracy returns TotalAccuracy / n.
func (s *Schedule) AverageAccuracy(in *task.Instance) float64 {
	if s.N() == 0 {
		return 0
	}
	return s.TotalAccuracy(in) / float64(s.N())
}

// Objective returns the paper's minimisation objective Σ_j (1 − a_j(f_j)).
func (s *Schedule) Objective(in *task.Instance) float64 {
	return float64(s.N()) - s.TotalAccuracy(in)
}

// AssignedMachine returns the machine index task j runs on for integral
// schedules, or -1 if the task has zero time everywhere. It returns an
// error if the task is split across machines.
func (s *Schedule) AssignedMachine(j int) (int, error) {
	assigned := -1
	for r, t := range s.Times[j] {
		if t > 0 {
			if assigned != -1 {
				return -1, fmt.Errorf("schedule: task %d is split across machines %d and %d", j, assigned, r)
			}
			assigned = r
		}
	}
	return assigned, nil
}

// Metrics bundles the headline quantities of a solution.
type Metrics struct {
	TotalAccuracy   float64
	AverageAccuracy float64
	Energy          float64   // Joules
	Profile         []float64 // per-machine busy time, seconds
}

// MetricsFor computes the Metrics of s on instance in.
func (s *Schedule) MetricsFor(in *task.Instance) Metrics {
	return Metrics{
		TotalAccuracy:   s.TotalAccuracy(in),
		AverageAccuracy: s.AverageAccuracy(in),
		Energy:          s.Energy(in),
		Profile:         s.Profile(),
	}
}
