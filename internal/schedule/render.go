package schedule

import (
	"fmt"
	"strings"

	"repro/internal/task"
)

// Gantt renders the schedule as a fixed-width text chart: one row per
// machine, time flowing left to right up to the latest deadline, each
// task's span filled with its index (mod 10) and '·' marking idle time.
// A legend with per-task placement, work and accuracy follows. width is
// the number of character cells for the time axis (minimum 20).
func (s *Schedule) Gantt(in *task.Instance, width int) string {
	if width < 20 {
		width = 20
	}
	horizon := in.MaxDeadline()
	if horizon <= 0 {
		return "(empty horizon)\n"
	}
	cell := horizon / float64(width)

	var b strings.Builder
	fmt.Fprintf(&b, "time 0 %s %.4gs\n", strings.Repeat("-", width-4), horizon)
	for r := 0; r < s.M(); r++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		var elapsed float64
		for j := 0; j < s.N(); j++ {
			t := s.Times[j][r]
			if t <= 0 {
				continue
			}
			start := int(elapsed / cell)
			end := int((elapsed + t) / cell)
			if end >= width {
				end = width - 1
			}
			glyph := byte('0' + j%10)
			for i := start; i <= end && i < width; i++ {
				row[i] = glyph
			}
			elapsed += t
		}
		name := fmt.Sprintf("m%d", r)
		if in.Machines[r].Name != "" {
			name = in.Machines[r].Name
		}
		fmt.Fprintf(&b, "%-14s |%s| load %.4gs\n", truncate(name, 14), row, s.MachineLoad(r))
	}
	b.WriteString("\ntask  machine      time(s)    work(GF)   accuracy  deadline(s)\n")
	for j := 0; j < s.N(); j++ {
		r, err := s.AssignedMachine(j)
		where := "-"
		var t float64
		switch {
		case err != nil:
			where = "split"
			for rr := 0; rr < s.M(); rr++ {
				t += s.Times[j][rr]
			}
		case r >= 0:
			where = fmt.Sprintf("m%d", r)
			if in.Machines[r].Name != "" {
				where = in.Machines[r].Name
			}
			t = s.Times[j][r]
		}
		w := s.Work(in, j)
		fmt.Fprintf(&b, "%-5d %-12s %-10.4g %-10.4g %-9.4f %.4g\n",
			j, where, t, w, in.Tasks[j].Acc.Eval(w), in.Tasks[j].Deadline)
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
