package schedule

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/task"
)

// ValidateOptions tunes the feasibility checks.
type ValidateOptions struct {
	// Tol is the numeric tolerance (default numeric.Eps·1e3 when zero —
	// schedules accumulate rounding across thousands of additions).
	Tol float64
	// RequireIntegral additionally demands that no task is split across
	// machines (the DSCT-EA setting; fractional solutions skip it).
	RequireIntegral bool
}

// DefaultTol is the default validation tolerance.
const DefaultTol = 1e-6

// Validate checks that s is a feasible solution of in:
//
//  1. shape matches the instance;
//  2. all times are finite and non-negative;
//  3. per-machine deadline staircases hold: Σ_{i<=j} t_ir <= d_j ∀ j, r;
//  4. no task receives more than f_j^max work;
//  5. total energy is within the budget;
//  6. (optional) each task runs on at most one machine.
//
// It returns nil when feasible and a descriptive error for the first
// violated condition.
func (s *Schedule) Validate(in *task.Instance, opts ValidateOptions) error {
	tol := opts.Tol
	if tol == 0 {
		tol = DefaultTol
	}
	n, m := in.N(), in.M()
	if s.N() != n {
		return fmt.Errorf("schedule: %d task rows for %d tasks", s.N(), n)
	}
	if n > 0 && s.M() != m {
		return fmt.Errorf("schedule: %d machine columns for %d machines", s.M(), m)
	}

	for j := range s.Times {
		for r, t := range s.Times[j] {
			if !numeric.IsFinite(t) {
				return fmt.Errorf("schedule: t[%d][%d] is not finite", j, r)
			}
			if t < -tol {
				return fmt.Errorf("schedule: t[%d][%d] = %g is negative", j, r, t)
			}
		}
	}

	// Deadline staircases, one pass per machine.
	for r := 0; r < m; r++ {
		var elapsed numeric.KahanSum
		for j := 0; j < n; j++ {
			elapsed.Add(s.Times[j][r])
			if s.Times[j][r] > 0 && !numeric.LessEq(elapsed.Value(), in.Tasks[j].Deadline, tol) {
				return fmt.Errorf("schedule: task %d misses deadline on machine %d (completes %.9g > d=%.9g)",
					j, r, elapsed.Value(), in.Tasks[j].Deadline)
			}
			// Even with zero own time, later tasks' prefix includes earlier
			// loads; the check above at the next positive entry covers it.
		}
	}

	// Work caps.
	for j := 0; j < n; j++ {
		w := s.Work(in, j)
		if !numeric.LessEq(w, in.Tasks[j].FMax(), tol) {
			return fmt.Errorf("schedule: task %d gets %g GFLOPs > fmax %g", j, w, in.Tasks[j].FMax())
		}
	}

	// Energy budget.
	if e := s.Energy(in); !numeric.LessEq(e, in.Budget, tol) {
		return fmt.Errorf("schedule: energy %g J exceeds budget %g J", e, in.Budget)
	}

	if opts.RequireIntegral {
		for j := 0; j < n; j++ {
			if _, err := s.AssignedMachine(j); err != nil {
				return err
			}
		}
	}
	return nil
}
