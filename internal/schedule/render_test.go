package schedule

import (
	"bytes"
	"strings"
	"testing"
)

func TestGanttRendersAllMachinesAndTasks(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	s.Times[0][0] = 0.1
	s.Times[1][1] = 0.1
	out := s.Gantt(in, 40)
	if !strings.Contains(out, "m0") || !strings.Contains(out, "m1") {
		t.Errorf("missing machine rows:\n%s", out)
	}
	for _, col := range []string{"task", "machine", "accuracy", "deadline"} {
		if !strings.Contains(out, col) {
			t.Errorf("legend missing %q", col)
		}
	}
	// Two legend rows (one per task).
	if n := strings.Count(out, "\n"); n < 6 {
		t.Errorf("suspiciously short output (%d lines):\n%s", n, out)
	}
}

func TestGanttMarksSplitTasks(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	s.Times[0][0] = 0.05
	s.Times[0][1] = 0.02
	out := s.Gantt(in, 30)
	if !strings.Contains(out, "split") {
		t.Errorf("split task not marked:\n%s", out)
	}
}

func TestGanttMinimumWidthAndEmpty(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	out := s.Gantt(in, 1) // clamped to 20
	if out == "" {
		t.Error("empty render")
	}
	if !strings.Contains(out, "...") {
		t.Errorf("idle machines should render dots:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	in := twoTaskInstance(t)
	s := New(2, 2)
	s.Times[0][0] = 0.1
	s.Times[1][0] = 0.05
	s.Times[1][1] = 0.02
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 assignments
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "task,name,machine") {
		t.Errorf("header = %q", lines[0])
	}
	// Task 1 on machine 0 starts after task 0's 0.1 s.
	if !strings.Contains(lines[2], ",0.1,") {
		t.Errorf("expected start 0.1 in %q", lines[2])
	}
}
