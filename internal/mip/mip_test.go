package mip

import (
	"math"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/rng"
)

// knapsackProblem builds a 0/1 knapsack max Σ v_i x_i s.t. Σ w_i x_i <= cap,
// x_i in {0,1} (with explicit x_i <= 1 rows).
func knapsackProblem(values, weights []float64, capacity float64) *Problem {
	n := len(values)
	p := lp.NewProblem(n)
	var capTerms []lp.Term
	for i := 0; i < n; i++ {
		p.SetObjCoef(i, values[i])
		p.AddConstraint([]lp.Term{{Var: i, Coef: 1}}, lp.LE, 1)
		capTerms = append(capTerms, lp.Term{Var: i, Coef: weights[i]})
	}
	p.AddConstraint(capTerms, lp.LE, capacity)
	ints := make([]int, n)
	for i := range ints {
		ints[i] = i
	}
	return &Problem{LP: p, Integers: ints}
}

// bruteKnapsack solves the knapsack exactly by enumeration.
func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	res, err := Solve(knapsackProblem(values, weights, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-220) > 1e-6 {
		t.Errorf("objective = %g, want 220", res.Objective)
	}
	// x = (0, 1, 1).
	if res.X[0] > intTol || res.X[1] < 1-intTol || res.X[2] < 1-intTol {
		t.Errorf("x = %v, want [0 1 1]", res.X)
	}
	if res.Bound < res.Objective-1e-6 {
		t.Errorf("bound %g below objective %g", res.Bound, res.Objective)
	}
}

func TestKnapsackRandomAgainstBruteForce(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		src := rng.NewReplicate(11, "knap", trial)
		n := 4 + src.Intn(9) // 4..12 items
		values := make([]float64, n)
		weights := make([]float64, n)
		var total float64
		for i := range values {
			values[i] = src.Uniform(1, 100)
			weights[i] = src.Uniform(1, 50)
			total += weights[i]
		}
		capacity := total * src.Uniform(0.2, 0.8)
		res, err := Solve(knapsackProblem(values, weights, capacity), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		want := bruteKnapsack(values, weights, capacity)
		if math.Abs(res.Objective-want) > 1e-5 {
			t.Errorf("trial %d: objective %g, want %g", trial, res.Objective, want)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	src := rng.New(13, "par")
	n := 14
	values := make([]float64, n)
	weights := make([]float64, n)
	var total float64
	for i := range values {
		values[i] = src.Uniform(1, 100)
		weights[i] = src.Uniform(1, 50)
		total += weights[i]
	}
	capacity := total * 0.45
	prob := knapsackProblem(values, weights, capacity)
	serial, err := Solve(prob, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Solve(prob, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Status != Optimal || parallel.Status != Optimal {
		t.Fatalf("statuses: %v, %v", serial.Status, parallel.Status)
	}
	if math.Abs(serial.Objective-parallel.Objective) > 1e-6 {
		t.Errorf("serial %g != parallel %g", serial.Objective, parallel.Objective)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.GE, 2)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 1)
	res, err := Solve(&Problem{LP: p, Integers: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestIntegerInfeasibleByBranching(t *testing.T) {
	// LP feasible only at x = 0.5: 2x == 1 with x integral -> infeasible.
	p := lp.NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}}, lp.EQ, 1)
	res, err := Solve(&Problem{LP: p, Integers: []int{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjCoef(0, 1)
	if _, err := Solve(&Problem{LP: p, Integers: []int{0}}, Options{}); err == nil {
		t.Error("unbounded root should error")
	}
}

func TestPureLPNoIntegers(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjCoef(0, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, 2.5)
	res, err := Solve(&Problem{LP: p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-2.5) > 1e-7 {
		t.Errorf("got %v obj %g", res.Status, res.Objective)
	}
}

func TestGeneralIntegerBranching(t *testing.T) {
	// max x + y s.t. 2x + 3y <= 12.5, x,y integer >= 0 -> relaxation is
	// fractional; integer optimum value 6 (e.g. x=6, y=0 gives 12 <= 12.5).
	p := lp.NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetObjCoef(1, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 2}, {Var: 1, Coef: 3}}, lp.LE, 12.5)
	res, err := Solve(&Problem{LP: p, Integers: []int{0, 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-6) > 1e-6 {
		t.Errorf("got %v obj %g, want 6", res.Status, res.Objective)
	}
	for _, v := range res.X {
		if math.Abs(v-math.Round(v)) > intTol*10 {
			t.Errorf("non-integral solution %v", res.X)
		}
	}
}

func TestDeadlineStopsSearch(t *testing.T) {
	src := rng.New(17, "deadline")
	n := 22
	values := make([]float64, n)
	weights := make([]float64, n)
	var total float64
	for i := range values {
		values[i] = src.Uniform(1, 100)
		weights[i] = src.Uniform(1, 50)
		total += weights[i]
	}
	prob := knapsackProblem(values, weights, total*0.5)
	res, err := Solve(prob, Options{Deadline: time.Now().Add(20 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	// Must stop promptly with some status; bound must dominate objective.
	if res.Status == Optimal {
		t.Skip("machine fast enough to prove optimality in 20ms")
	}
	if res.Status == Feasible && res.Bound < res.Objective-1e-6 {
		t.Errorf("bound %g < incumbent %g", res.Bound, res.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	values := []float64{10, 20, 30, 40, 50, 60}
	weights := []float64{1, 2, 3, 4, 5, 6}
	prob := knapsackProblem(values, weights, 10.5)
	res, err := Solve(prob, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 1 {
		t.Errorf("processed %d nodes, limit 1", res.Nodes)
	}
	if res.Status == Optimal {
		// With one node the relaxation must have been already integral.
		t.Logf("root relaxation integral")
	}
}

func TestRoundingHookProvidesIncumbent(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	prob := knapsackProblem(values, weights, 50)
	called := false
	hook := func(x []float64) ([]float64, bool) {
		called = true
		fixed := make([]float64, len(x))
		for i, v := range x {
			if v > 0.99 { // conservative rounding keeps the capacity feasible
				fixed[i] = 1
			}
		}
		return fixed, true
	}
	// Cuts off: the cover cut makes this root integral, and the heuristic
	// only runs at nodes that still have a fractional relaxation.
	res, err := Solve(prob, Options{Rounding: hook, Cuts: CutsOff})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("rounding hook never called")
	}
	if res.Status != Optimal || math.Abs(res.Objective-220) > 1e-6 {
		t.Errorf("got %v obj %g", res.Status, res.Objective)
	}
}

func TestOnNodeCallback(t *testing.T) {
	count := 0
	values := []float64{3, 5, 7, 9}
	weights := []float64{2, 3, 4, 5}
	_, err := Solve(knapsackProblem(values, weights, 7.5), Options{OnNode: func(int) { count++ }})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Error("OnNode never invoked")
	}
}

func TestStatusString(t *testing.T) {
	for _, s := range []Status{Optimal, Feasible, NoIncumbent, Infeasible, Status(42)} {
		if s.String() == "" {
			t.Error("empty status string")
		}
	}
}

func TestDepthFirstMatchesBestBound(t *testing.T) {
	src := rng.New(31, "dfs")
	n := 12
	values := make([]float64, n)
	weights := make([]float64, n)
	var total float64
	for i := range values {
		values[i] = src.Uniform(1, 100)
		weights[i] = src.Uniform(1, 50)
		total += weights[i]
	}
	prob := knapsackProblem(values, weights, total*0.4)
	bb, err := Solve(prob, Options{Strategy: BestBound})
	if err != nil {
		t.Fatal(err)
	}
	dfs, err := Solve(prob, Options{Strategy: DepthFirst})
	if err != nil {
		t.Fatal(err)
	}
	if bb.Status != Optimal || dfs.Status != Optimal {
		t.Fatalf("statuses %v %v", bb.Status, dfs.Status)
	}
	if math.Abs(bb.Objective-dfs.Objective) > 1e-6 {
		t.Errorf("best-bound %g != depth-first %g", bb.Objective, dfs.Objective)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{BestBound, DepthFirst, Strategy(7)} {
		if s.String() == "" {
			t.Error("empty strategy string")
		}
	}
}

// TestInheritFallbackAccounting pins Result.InheritFallbacks across the
// kernel × branching grid on a fixed knapsack search. Row-append branching
// grows every child's basis dimension, so the LU kernel can never adopt
// the parent's factors — every warm solve must be counted as an inherit
// fallback — while the legacy dense kernel extends its inverse
// block-triangularly and never falls back. Under the default row-free
// bound branching both kernels adopt every parent snapshot.
func TestInheritFallbackAccounting(t *testing.T) {
	values := []float64{9, 13, 7, 11, 5, 8, 12, 6, 10, 4}
	weights := []float64{4, 6, 3, 5, 2, 4, 6, 3, 5, 2}
	p := knapsackProblem(values, weights, 17)
	want := bruteKnapsack(values, weights, 17)

	cases := []struct {
		name         string
		opts         Options
		allFallbacks bool // every warm solve falls back (else: none do)
	}{
		{"bounds-lu", Options{}, false},
		{"bounds-binv", Options{LP: lp.Options{Factor: lp.FactorBinv}}, false},
		{"rows-lu", Options{BranchRows: true}, true},
		{"rows-binv", Options{BranchRows: true, LP: lp.Options{Factor: lp.FactorBinv}}, false},
	}
	for _, tc := range cases {
		res, err := Solve(p, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Status != Optimal || math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("%s: status %v objective %g, want optimal %g",
				tc.name, res.Status, res.Objective, want)
		}
		if res.WarmSolves == 0 {
			t.Fatalf("%s: search ran without warm solves; instance too easy to pin accounting", tc.name)
		}
		if tc.allFallbacks && res.InheritFallbacks != res.WarmSolves {
			t.Errorf("%s: InheritFallbacks = %d, want all %d warm solves",
				tc.name, res.InheritFallbacks, res.WarmSolves)
		}
		if !tc.allFallbacks && res.InheritFallbacks != 0 {
			t.Errorf("%s: InheritFallbacks = %d, want 0 (WarmSolves = %d)",
				tc.name, res.InheritFallbacks, res.WarmSolves)
		}
	}

	// Warm starts off: nothing to fall back from.
	res, err := Solve(p, Options{DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmSolves != 0 || res.InheritFallbacks != 0 {
		t.Errorf("cold-only search counted %d warm solves, %d fallbacks",
			res.WarmSolves, res.InheritFallbacks)
	}
}
