package mip

// Branch-and-cut tests: the separator's cut families, the differential
// corpus holding every Cuts × Branching × NodeOrder combination to the
// legacy solver's answers, and the row-accounting guarantees when cut rows
// are appended and removed.

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/rng"
)

// --- separator unit tests -------------------------------------------------

// binKnapLP builds max Σ v x s.t. Σ w x <= cap with x binary encoded as
// x <= 1 rows (the separator must fold those into effective bounds).
func binKnapLP(values, weights []float64, capacity float64) *Problem {
	return knapsackProblem(values, weights, capacity)
}

func TestSeparatorCoverCut(t *testing.T) {
	// Three items of weight 3, capacity 5: any two overflow, so the
	// extended cover is x0+x1+x2 <= 1.
	p := binKnapLP([]float64{1, 1, 1}, []float64{3, 3, 3}, 5)
	sep := newSeparator(p.LP, p.Integers, nil)
	if len(sep.knaps) != 1 {
		t.Fatalf("knapsack rows detected = %d, want 1", len(sep.knaps))
	}
	for v := 0; v < 3; v++ {
		if !sep.binary[v] {
			t.Fatalf("x%d not recognised as binary (x <= 1 is a row, not a box)", v)
		}
	}
	x := []float64{0.55, 0.55, 0.55} // feasible for the row (4.95 <= 5)
	cuts := sep.separate(x, 8)
	if len(cuts) != 1 {
		t.Fatalf("cuts = %d, want 1 cover cut", len(cuts))
	}
	c := cuts[0]
	//lint:ignore floatcmp the separator assigns the exact integer literal |C|-1
	if len(c.terms) != 3 || c.rhs != 1 {
		t.Fatalf("cover cut = %+v, want x0+x1+x2 <= 1", c)
	}
	var lhs float64
	for _, tm := range c.terms {
		//lint:ignore floatcmp cover coefficients are the exact literal 1
		if tm.Coef != 1 {
			t.Fatalf("cover coefficient %g, want 1", tm.Coef)
		}
		lhs += x[tm.Var]
	}
	if lhs <= c.rhs {
		t.Fatalf("emitted cut not violated at x: lhs %g rhs %g", lhs, c.rhs)
	}
}

func TestSeparatorComplementedCover(t *testing.T) {
	// -3 y0 - 3 y1 - 3 y2 >= -5  ==  3 y0 + 3 y1 + 3 y2 <= 5 after the GE
	// negation; the coefficients stay positive so this exercises the GE
	// path, while a genuinely negative LE coefficient exercises
	// complementation: 3 y0 + 3 y1 - 3 y2 <= 2 has the binary relaxation
	// 3 y0 + 3 y1 + 3 y2'' <= 5 with y2'' = 1 - y2.
	p := lp.NewProblem(3)
	for i := 0; i < 3; i++ {
		p.SetObjCoef(i, 1)
		p.SetBounds(i, 0, 1)
	}
	p.AddConstraint([]lp.Term{
		{Var: 0, Coef: 3}, {Var: 1, Coef: 3}, {Var: 2, Coef: -3},
	}, lp.LE, 2)
	sep := newSeparator(p, []int{0, 1, 2}, nil)
	if len(sep.knaps) != 1 {
		t.Fatalf("knapsack rows detected = %d, want 1", len(sep.knaps))
	}
	kr := sep.knaps[0]
	if kr.pure {
		t.Fatal("row with a negative binary coefficient marked pure")
	}
	// y = (0.55, 0.55, 0.45): row activity 1.95 <= 2 feasible, but
	// y'' = (0.55, 0.55, 0.55) violates the cover y0 + y1 + y2'' <= 1,
	// i.e. y0 + y1 - y2 <= 0.
	cuts := sep.separate([]float64{0.55, 0.55, 0.45}, 8)
	if len(cuts) != 1 {
		t.Fatalf("cuts = %d, want 1", len(cuts))
	}
	c := cuts[0]
	if c.rhs != 0 {
		t.Fatalf("complemented cover rhs = %g, want 0 (= |C|-1 shifted by one complement)", c.rhs)
	}
	var neg int
	for _, tm := range c.terms {
		//lint:ignore floatcmp complemented terms carry the exact literal -1
		if tm.Coef == -1 {
			neg++
		}
	}
	if neg != 1 {
		t.Fatalf("complemented cover has %d negative terms, want exactly 1", neg)
	}
}

func TestSeparatorGUBCover(t *testing.T) {
	// Two assignment groups {0,1} and {2,3} (one-of-each GUB rows) sharing
	// a knapsack 3 y0 + 3 y1 + 3 y2 + 3 y3 <= 5. The plain cover over the
	// two per-group representatives lifts to all four variables with
	// rhs 1 — stronger than the four-variable plain cover (rhs 1 needs a
	// 2-cover; the plain greedy cover gets the same rhs here, so assert
	// the GUB cut exists and is group-lifted).
	p := lp.NewProblem(4)
	for i := 0; i < 4; i++ {
		p.SetObjCoef(i, 1)
		p.SetBounds(i, 0, 1)
	}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.EQ, 1)
	p.AddConstraint([]lp.Term{{Var: 2, Coef: 1}, {Var: 3, Coef: 1}}, lp.EQ, 1)
	p.AddConstraint([]lp.Term{
		{Var: 0, Coef: 3}, {Var: 1, Coef: 3}, {Var: 2, Coef: 3}, {Var: 3, Coef: 3},
	}, lp.LE, 5)
	sep := newSeparator(p, []int{0, 1, 2, 3}, nil)
	if sep.gubOf[0] != sep.gubOf[1] || sep.gubOf[2] != sep.gubOf[3] ||
		sep.gubOf[0] == sep.gubOf[2] || sep.gubOf[0] == -1 {
		t.Fatalf("GUB groups = %v, want {0,1} and {2,3}", sep.gubOf)
	}
	cuts := sep.separate([]float64{0.45, 0.45, 0.45, 0.45}, 8)
	if len(cuts) == 0 {
		t.Fatal("no cuts at a point violating the GUB cover")
	}
	// The top cut must be the lifted 4-variable rhs-1 inequality.
	c := cuts[0]
	//lint:ignore floatcmp the separator assigns the exact integer literal 1
	if len(c.terms) != 4 || c.rhs != 1 {
		t.Fatalf("top cut = %+v, want y0+y1+y2+y3 <= 1", c)
	}
}

func TestSeparatorVUBStrengthening(t *testing.T) {
	// t <= 10 x (a VUB row) with box t <= 4: the strengthened link
	// t <= 4 x cuts points the weak row admits. Detected both from the
	// builder hint and the generic two-term-row scan.
	build := func() *lp.Problem {
		p := lp.NewProblem(2)
		p.SetObjCoef(0, 1)
		p.SetBounds(0, 0, 4)
		p.SetBounds(1, 0, 1)
		p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: -10}}, lp.LE, 0)
		return p
	}
	for _, tc := range []struct {
		name string
		hint *Structure
	}{
		{"scan", nil},
		{"hint", &Structure{VUBs: []VUB{{Cont: 0, Bin: 1, U: 10}}}},
	} {
		sep := newSeparator(build(), []int{1}, tc.hint)
		if len(sep.vubs) != 1 {
			t.Fatalf("%s: VUBs detected = %d, want 1", tc.name, len(sep.vubs))
		}
		if vb := sep.vubs[0]; vb.Cont != 0 || vb.Bin != 1 || math.Abs(vb.U-4) > 1e-12 {
			t.Fatalf("%s: strengthened VUB = %+v, want {Cont:0 Bin:1 U:4}", tc.name, vb)
		}
		// t=4, x=0.4 satisfies t <= 10x but violates t <= 4x.
		cuts := sep.separate([]float64{4, 0.4}, 8)
		if len(cuts) != 1 {
			t.Fatalf("%s: cuts = %d, want 1", tc.name, len(cuts))
		}
		c := cuts[0]
		if c.rhs != 0 || len(c.terms) != 2 {
			t.Fatalf("%s: VUB cut = %+v", tc.name, c)
		}
	}
	// No strengthening when the box is not tighter than the link.
	p := build()
	p.SetBounds(0, 0, 10)
	if sep := newSeparator(p, []int{1}, nil); len(sep.vubs) != 0 {
		t.Fatalf("VUB strengthened with u >= U: %+v", sep.vubs)
	}
}

func TestSeparatorSkipsContinuousKnapsack(t *testing.T) {
	// The DSCT-EA energy row shape: all-continuous <= row. No binary
	// items, so no knapsack relaxation and no cuts — the separator must
	// report inactive rather than emit something bogus.
	p := lp.NewProblem(3)
	for i := 0; i < 3; i++ {
		p.SetObjCoef(i, 1)
		p.SetBounds(i, 0, 100)
	}
	p.AddConstraint([]lp.Term{
		{Var: 0, Coef: 2}, {Var: 1, Coef: 3}, {Var: 2, Coef: 5},
	}, lp.LE, 50)
	sep := newSeparator(p, nil, nil)
	if sep.active() {
		t.Fatalf("separator active on a continuous-only problem: %d knaps, %d vubs",
			len(sep.knaps), len(sep.vubs))
	}
}

// --- differential corpus --------------------------------------------------

// corpusProblem builds the i-th corpus instance: a deterministic mix of
// plain knapsacks, GUB-structured assignment knapsacks and VUB-linked
// fixed-charge problems, sized for exhaustive or LP-verified checking.
func corpusProblem(i int) *Problem {
	src := rng.NewReplicate(31, "bc-corpus", i)
	switch i % 3 {
	case 0: // plain 0/1 knapsack, brute-forceable
		n := 10 + src.Intn(5)
		values := make([]float64, n)
		weights := make([]float64, n)
		var total float64
		for j := range values {
			values[j] = src.Uniform(1, 100)
			weights[j] = src.Uniform(1, 50)
			total += weights[j]
		}
		return knapsackProblem(values, weights, total*src.Uniform(0.3, 0.6))
	case 1: // assignment knapsack: g groups × 3 choices, shared capacity
		g := 3 + src.Intn(3)
		n := g * 3
		p := lp.NewProblem(n)
		var capTerms []lp.Term
		var total float64
		for j := 0; j < n; j++ {
			p.SetObjCoef(j, src.Uniform(1, 100))
			p.SetBounds(j, 0, 1)
			w := src.Uniform(1, 50)
			total += w
			capTerms = append(capTerms, lp.Term{Var: j, Coef: w})
		}
		for k := 0; k < g; k++ {
			p.AddConstraint([]lp.Term{
				{Var: 3 * k, Coef: 1}, {Var: 3*k + 1, Coef: 1}, {Var: 3*k + 2, Coef: 1},
			}, lp.EQ, 1)
		}
		p.AddConstraint(capTerms, lp.LE, total*src.Uniform(0.2, 0.4))
		ints := make([]int, n)
		for j := range ints {
			ints[j] = j
		}
		return &Problem{LP: p, Integers: ints}
	default: // fixed-charge: continuous t_j <= u_j x_j, budget on Σ t
		k := 4 + src.Intn(3)
		p := lp.NewProblem(2 * k) // t_0..t_{k-1}, x_0..x_{k-1}
		var budget []lp.Term
		var fixTerms []lp.Term
		for j := 0; j < k; j++ {
			p.SetObjCoef(j, src.Uniform(1, 10))    // reward per unit of t
			p.SetObjCoef(k+j, -src.Uniform(5, 40)) // opening cost
			u := src.Uniform(2, 8)
			p.SetBounds(j, 0, u)
			p.SetBounds(k+j, 0, 1)
			bigU := u * src.Uniform(1.5, 4) // deliberately weak link
			p.AddConstraint([]lp.Term{
				{Var: j, Coef: 1}, {Var: k + j, Coef: -bigU},
			}, lp.LE, 0)
			budget = append(budget, lp.Term{Var: j, Coef: 1})
			fixTerms = append(fixTerms, lp.Term{Var: k + j, Coef: src.Uniform(1, 3)})
		}
		p.AddConstraint(budget, lp.LE, src.Uniform(3, 10))
		p.AddConstraint(fixTerms, lp.LE, src.Uniform(2, 6))
		ints := make([]int, k)
		for j := range ints {
			ints[j] = k + j
		}
		return &Problem{LP: p, Integers: ints}
	}
}

// checkIncumbentFeasible verifies integrality of the integer variables and
// every constraint row at the returned incumbent.
func checkIncumbentFeasible(t *testing.T, label string, prob *Problem, res *Result) {
	t.Helper()
	for _, v := range prob.Integers {
		if f := math.Abs(res.X[v] - math.Round(res.X[v])); f > 1e-6 {
			t.Fatalf("%s: x[%d] = %g not integral", label, v, res.X[v])
		}
	}
	for i := 0; i < prob.LP.NumConstraints(); i++ {
		terms, sense, rhs := prob.LP.Constraint(i)
		var act float64
		for _, tm := range terms {
			act += tm.Coef * res.X[tm.Var]
		}
		tol := 1e-6 * (1 + math.Abs(rhs))
		switch sense {
		case lp.LE:
			if act > rhs+tol {
				t.Fatalf("%s: row %d violated: %g > %g", label, i, act, rhs)
			}
		case lp.GE:
			if act < rhs-tol {
				t.Fatalf("%s: row %d violated: %g < %g", label, i, act, rhs)
			}
		case lp.EQ:
			if math.Abs(act-rhs) > tol {
				t.Fatalf("%s: row %d violated: %g != %g", label, i, act, rhs)
			}
		}
	}
}

// TestBranchAndCutDifferentialCorpus holds every non-legacy option
// combination to the legacy solver's answer on a 240-instance corpus.
// Combinations rotate across instances so each of the 24 combos sees 10
// instances; the legacy reference runs on all 240.
func TestBranchAndCutDifferentialCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus test skipped in -short mode")
	}
	legacy := Options{Cuts: CutsOff, Branching: BranchMostFractional, NodeOrder: NodeOrderBestBound}
	var combos []Options
	for _, cm := range []CutMode{CutsOff, CutsRoot, CutsTree} {
		for _, br := range []BranchRule{BranchMostFractional, BranchPseudoCost, BranchReliability} {
			for _, no := range []NodeOrder{NodeOrderBestBound, NodeOrderPlunge, NodeOrderDepthFirst} {
				if cm == CutsOff && br == BranchMostFractional && no == NodeOrderBestBound {
					continue // that is the reference itself
				}
				combos = append(combos, Options{Cuts: cm, Branching: br, NodeOrder: no})
			}
		}
	}
	// 26 combos; add presolve-off and BranchRows flavours of the default.
	combos = append(combos,
		Options{LP: lp.Options{Presolve: lp.PresolveOff}},
		Options{BranchRows: true, Cuts: CutsTree}, // CutsTree must degrade to CutsRoot
	)

	const instances = 240
	for i := 0; i < instances; i++ {
		prob := corpusProblem(i)
		ref, err := Solve(prob, legacy)
		if err != nil {
			t.Fatalf("instance %d legacy: %v", i, err)
		}
		opts := combos[i%len(combos)]
		res, err := Solve(prob, opts)
		if err != nil {
			t.Fatalf("instance %d combo %d: %v", i, i%len(combos), err)
		}
		label := opts.Cuts.String() + "/" + opts.Branching.String() + "/" + opts.NodeOrder.String()
		if ref.Status == Infeasible {
			// Some assignment-knapsack draws are integer infeasible; every
			// combination must prove the same.
			if res.Status != Infeasible {
				t.Fatalf("instance %d %s: status %v, legacy proved infeasible", i, label, res.Status)
			}
			continue
		}
		if ref.Status != Optimal {
			t.Fatalf("instance %d legacy status %v", i, ref.Status)
		}
		if res.Status != Optimal {
			t.Fatalf("instance %d %s: status %v, want optimal", i, label, res.Status)
		}
		if math.Abs(res.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
			t.Fatalf("instance %d %s: objective %.12g, legacy %.12g", i, label, res.Objective, ref.Objective)
		}
		checkIncumbentFeasible(t, label, prob, res)
		if res.Gap > 1e-6*(1+math.Abs(res.Objective)) {
			t.Fatalf("instance %d %s: optimal with gap %g", i, label, res.Gap)
		}
		if res.DualBound < res.Objective-1e-9 {
			t.Fatalf("instance %d %s: dual bound %g below objective %g", i, label, res.DualBound, res.Objective)
		}
	}
}

// TestBranchAndCutSmallCorpusShort is the -short stand-in: eight instances
// across the default and legacy paths.
func TestBranchAndCutSmallCorpusShort(t *testing.T) {
	legacy := Options{Cuts: CutsOff, Branching: BranchMostFractional, NodeOrder: NodeOrderBestBound}
	for i := 0; i < 8; i++ {
		prob := corpusProblem(i)
		ref, err := Solve(prob, legacy)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(prob, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Status != Optimal || res.Status != Optimal ||
			math.Abs(res.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
			t.Fatalf("instance %d: legacy %v %.12g vs default %v %.12g",
				i, ref.Status, ref.Objective, res.Status, res.Objective)
		}
	}
}

// --- cut-row accounting ---------------------------------------------------

// cutHeavyProblem is a knapsack family where root and tree cuts reliably
// fire (weights clustered around half the capacity).
func cutHeavyProblem(trial int) *Problem {
	src := rng.NewReplicate(47, "cut-heavy", trial)
	n := 14 + src.Intn(4)
	values := make([]float64, n)
	weights := make([]float64, n)
	var total float64
	for i := range values {
		values[i] = src.Uniform(10, 100)
		weights[i] = src.Uniform(20, 30)
		total += weights[i]
	}
	return knapsackProblem(values, weights, total*0.35)
}

// TestCutRowAccounting: appended cut rows must show up in the
// Result.MaxNodeRows high-water mark, and the LU kernel must count an
// inherit fallback for every warm re-solve whose problem grew rows under
// it (the CutsTree mid-dive appends), while the dense kernel extends its
// inverse and never falls back.
func TestCutRowAccounting(t *testing.T) {
	var prob *Problem
	var root *Result
	trial := 0
	for ; trial < 20; trial++ {
		prob = cutHeavyProblem(trial)
		r, err := Solve(prob, Options{Cuts: CutsRoot})
		if err != nil {
			t.Fatal(err)
		}
		if r.Cuts > 0 && r.Nodes > 4 {
			root = r
			break
		}
	}
	if root == nil {
		t.Fatal("no cut-heavy trial produced root cuts; separator dead?")
	}
	baseRows := prob.LP.NumConstraints()
	if root.MaxNodeRows < baseRows+root.Cuts {
		t.Errorf("CutsRoot: MaxNodeRows = %d, want >= base %d + kept cuts %d",
			root.MaxNodeRows, baseRows, root.Cuts)
	}

	tree, err := Solve(prob, Options{Cuts: CutsTree})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Status != Optimal || math.Abs(tree.Objective-root.Objective) > 1e-9*(1+math.Abs(root.Objective)) {
		t.Fatalf("CutsTree objective %v %.12g, want %.12g", tree.Status, tree.Objective, root.Objective)
	}
	if tree.TreeCuts > 0 {
		if tree.MaxNodeRows <= baseRows+tree.Cuts {
			t.Errorf("CutsTree: MaxNodeRows = %d not above base %d + root cuts %d despite %d tree cuts",
				tree.MaxNodeRows, baseRows, tree.Cuts, tree.TreeCuts)
		}
		// LU cannot adopt a parent snapshot across a row append; the
		// tree-cut re-solves must be accounted as inherit fallbacks.
		if tree.InheritFallbacks == 0 {
			t.Errorf("CutsTree under LU: %d tree cuts but InheritFallbacks = 0", tree.TreeCuts)
		}
	} else {
		t.Log("no tree cuts fired on this instance; tree-cut fallback branch unexercised")
	}

	binv, err := Solve(prob, Options{Cuts: CutsTree, LP: lp.Options{Factor: lp.FactorBinv}})
	if err != nil {
		t.Fatal(err)
	}
	if binv.InheritFallbacks != 0 {
		t.Errorf("CutsTree under Binv: InheritFallbacks = %d, want 0 (dense inverse extends across appended rows)",
			binv.InheritFallbacks)
	}
	if math.Abs(binv.Objective-root.Objective) > 1e-6*(1+math.Abs(root.Objective)) {
		t.Errorf("Binv CutsTree objective %.12g, want %.12g", binv.Objective, root.Objective)
	}
}

// TestGapAndDualBound: RelGap terminates early with a Feasible status and
// an honest Gap; a run to completion reports Gap 0 at the optimum.
func TestGapAndDualBound(t *testing.T) {
	prob := cutHeavyProblem(3)
	exact, err := Solve(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status != Optimal {
		t.Fatalf("status %v", exact.Status)
	}
	if exact.Gap != 0 {
		t.Errorf("optimal Gap = %g, want 0", exact.Gap)
	}
	if math.Abs(exact.DualBound-exact.Objective) > 1e-9*(1+math.Abs(exact.Objective)) {
		t.Errorf("optimal DualBound %.12g != Objective %.12g", exact.DualBound, exact.Objective)
	}

	loose, err := Solve(prob, Options{RelGap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	switch loose.Status {
	case Optimal: // tree collapsed before the gap check fired — fine
	case Feasible:
		if loose.Gap > 0.5*(1+math.Abs(loose.Objective))+1e-9 {
			t.Errorf("RelGap stop with Gap %g above tolerance", loose.Gap)
		}
		if loose.DualBound < exact.Objective-1e-9 {
			t.Errorf("early-stop DualBound %.12g below true optimum %.12g", loose.DualBound, exact.Objective)
		}
	default:
		t.Fatalf("RelGap run status %v", loose.Status)
	}
	if loose.Objective > exact.Objective+1e-9 {
		t.Errorf("early incumbent %.12g above optimum %.12g", loose.Objective, exact.Objective)
	}
}

// TestOptionEnumStrings covers the A/B switch enum stringers.
func TestOptionEnumStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{CutsAuto.String(), "auto"},
		{CutsOff.String(), "off"},
		{CutsRoot.String(), "root"},
		{CutsTree.String(), "tree"},
		{BranchAuto.String(), "auto"},
		{BranchMostFractional.String(), "most-fractional"},
		{BranchPseudoCost.String(), "pseudocost"},
		{BranchReliability.String(), "reliability"},
		{NodeOrderAuto.String(), "auto"},
		{NodeOrderBestBound.String(), "best-bound"},
		{NodeOrderPlunge.String(), "plunge"},
		{NodeOrderDepthFirst.String(), "depth-first"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}
