package mip

import (
	"container/heap"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/lp"
)

// ErrUnbounded is returned when the root relaxation is unbounded.
var ErrUnbounded = errors.New("mip: unbounded relaxation")

// Solve runs branch-and-bound on p.
func Solve(p *Problem, opts Options) (*Result, error) {
	start := time.Now() //lint:ignore wallclock sanctioned once-per-solve stamp for Result wall-time reporting
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 1 << 20
	}
	if opts.Gap == 0 {
		opts.Gap = 1e-6
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}

	s := &searcher{
		prob:      p,
		opts:      opts,
		incumbent: math.Inf(-1),
		inflight:  make(map[*node]struct{}),
	}
	// Root presolve (when opts.LP.Presolve selects it): reduce the LP once
	// with the integer columns kept, search entirely in the reduced space —
	// warm-start chains and bound branching work unchanged because integer
	// indices and values map one-to-one — and postsolve the incumbent at
	// the end. Node solves must not re-presolve: their basis snapshots have
	// to stay coherent across the warm-start chain.
	if ps := lp.RootPresolve(p.LP, p.Integers, opts.LP); ps != nil {
		if ps.Status() == lp.Infeasible {
			return &Result{Status: Infeasible, Bound: math.Inf(-1), Elapsed: time.Since(start)}, nil
		}
		if red := ps.Reduced(); red != nil {
			ints := make([]int, len(p.Integers))
			for i, v := range p.Integers {
				ints[i] = ps.Col(v)
			}
			s.prob = &Problem{LP: red, Integers: ints}
			s.ps = ps
			s.opts.LP.Presolve = lp.PresolveOff
			if orig := opts.Rounding; orig != nil {
				// The caller's heuristic sees original-space solutions; the
				// fixed values it returns are unscaled keep columns, so they
				// are valid in both spaces.
				s.opts.Rounding = func(xr []float64) ([]float64, bool) {
					return orig(ps.PostsolveX(xr))
				}
			}
		} else {
			// Presolve decided every column (possible only with no integer
			// variables, which are always kept): the box solution is the
			// optimum if integral, else search the original problem.
			x := ps.PostsolveX(nil)
			if integralOn(p.Integers, x) {
				var obj float64
				for v := 0; v < p.LP.NumVars(); v++ {
					obj += p.LP.ObjCoef(v) * x[v]
				}
				return &Result{
					Status: Optimal, Objective: obj, X: x, Bound: obj,
					Nodes: 0, Elapsed: time.Since(start),
				}, nil
			}
		}
	}
	s.cond = sync.NewCond(&s.mu)
	s.queue.strat = opts.Strategy
	heap.Push(&s.queue, &node{bound: math.Inf(1)})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a private lp.Workspace, reused across every
			// node it dequeues: node solves hit zero steady-state solver
			// allocations, and workspaces are never shared across
			// goroutines (see Options.Workers).
			s.run(lp.NewWorkspace())
		}()
	}
	wg.Wait()

	if s.err != nil {
		return nil, s.err
	}
	res := &Result{
		Nodes:            s.nodes,
		Elapsed:          time.Since(start),
		WarmSolves:       s.warmSolves,
		ColdSolves:       s.coldSolves,
		InheritFallbacks: s.inheritFallbacks,
		MaxNodeRows:      s.maxNodeRows,
	}
	hasIncumbent := !math.IsInf(s.incumbent, -1)
	if hasIncumbent {
		res.Objective = s.incumbent
		res.X = s.incumbentX
	}
	switch {
	case !s.stopped && hasIncumbent:
		res.Status = Optimal
		res.Bound = s.incumbent
	case !s.stopped:
		res.Status = Infeasible
		res.Bound = math.Inf(-1)
	case hasIncumbent:
		res.Status = Feasible
		res.Bound = s.openBound()
	default:
		res.Status = NoIncumbent
		res.Bound = s.openBound()
	}
	if s.ps != nil {
		// Lift the reduced-space result back to the original problem: X
		// through the undo stack, objective and bound by the eliminated
		// columns' offset (reduced objective + offset = original exactly;
		// infinite bounds stay infinite).
		if res.X != nil {
			res.X = s.ps.PostsolveX(res.X)
		}
		if hasIncumbent {
			res.Objective += s.ps.ObjOffset()
		}
		res.Bound += s.ps.ObjOffset()
	}
	return res, nil
}

type searcher struct {
	prob *Problem
	opts Options
	// ps is non-nil when the search runs in root-presolved reduced space:
	// prob then holds the reduced LP with remapped integer indices, and
	// the final result is postsolved back (see Solve).
	ps *lp.Presolved

	mu               sync.Mutex
	cond             *sync.Cond
	queue            nodeQueue
	inflight         map[*node]struct{}
	incumbent        float64
	incumbentX       []float64
	incumbentPath    string
	nodes            int
	warmSolves       int
	coldSolves       int
	inheritFallbacks int
	maxNodeRows      int
	stopped          bool
	err              error
}

// openBound returns the best upper bound over open and in-flight nodes and
// the incumbent; callers must not hold the mutex.
func (s *searcher) openBound() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.incumbent
	for _, nd := range s.queue.items {
		if nd.bound > b {
			b = nd.bound
		}
	}
	for nd := range s.inflight {
		if nd.bound > b {
			b = nd.bound
		}
	}
	return b
}

// run is one worker's loop. ws is the worker's private solver workspace;
// it must not be shared with any other goroutine.
func (s *searcher) run(ws *lp.Workspace) {
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && len(s.inflight) > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || (s.queue.Len() == 0 && len(s.inflight) == 0) {
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		nd := heap.Pop(&s.queue).(*node)
		if nd.bound <= s.incumbent+s.opts.Gap {
			// Pruned by bound; nothing in flight changes.
			s.mu.Unlock()
			continue
		}
		if s.nodes >= s.opts.MaxNodes {
			heap.Push(&s.queue, nd) // keep for bound reporting
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		//lint:ignore wallclock sanctioned deadline probe, once per dequeued branch-and-bound node
		if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
			heap.Push(&s.queue, nd)
			s.stopped = true
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		s.nodes++
		s.inflight[nd] = struct{}{}
		if s.opts.OnNode != nil {
			s.opts.OnNode(s.nodes)
		}
		s.mu.Unlock()

		children, fatal := s.process(nd, ws)

		s.mu.Lock()
		delete(s.inflight, nd)
		if fatal != nil && s.err == nil {
			s.err = fatal
			s.stopped = true
		}
		for _, c := range children {
			heap.Push(&s.queue, c)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// process solves one node relaxation (on the worker's workspace) and
// returns child nodes.
func (s *searcher) process(nd *node, ws *lp.Workspace) (children []*node, fatal error) {
	sol, basis, err := s.solveNodeLP(nd.fixes, nd.depth, nd.basis, nil, ws)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return nil, nil
	case lp.Unbounded:
		if nd.depth == 0 {
			return nil, ErrUnbounded
		}
		return nil, nil // cannot happen below a bounded root; drop defensively
	case lp.TimeLimit, lp.IterLimit:
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		return nil, nil
	}

	s.mu.Lock()
	pruned := sol.Objective <= s.incumbent+s.opts.Gap
	s.mu.Unlock()
	if pruned {
		return nil, nil
	}

	branchVar := s.mostFractional(sol.X)
	if branchVar == -1 {
		// Integral: candidate incumbent.
		s.offerIncumbent(sol.Objective, sol.X, nd.path)
		return nil, nil
	}

	// Capture the branching value and bound before any further solve on the
	// worker's workspace: the tableau-routed solves below (heuristic, or
	// everything under DisableWarmStart) return Solutions that alias
	// workspace buffers, so the heuristic re-solve would overwrite sol.
	val := sol.X[branchVar]
	bound := sol.Objective

	// Primal heuristic: at the root and periodically thereafter, round the
	// fractional solution, fix all integers and re-solve for a quick
	// incumbent. The trigger depends only on the node's depth — never on a
	// dequeue counter — so the set of heuristic solves (and hence every
	// incumbent candidate) is identical at any worker count.
	d := nd.depth
	if s.opts.Rounding != nil && (d == 0 || d%4 == 0) {
		if fixed, ok := s.opts.Rounding(sol.X); ok && len(fixed) == len(s.prob.Integers) {
			if hsol, _, err := s.solveNodeLP(nd.fixes, nd.depth, basis, fixed, ws); err == nil && hsol.Status == lp.Optimal {
				if s.mostFractional(hsol.X) == -1 {
					s.offerIncumbent(hsol.Objective, hsol.X, nd.path+"h")
				}
			}
		}
	}

	// Children share the parent's immutable fix chain and prepend their one
	// new decision: O(1) per child instead of the O(depth) copy (O(depth²)
	// per root-to-leaf path) the slice encoding used to pay.
	down := &node{
		fixes: &fixChain{f: fix{Var: branchVar, Sense: lp.LE, Val: math.Floor(val)}, prev: nd.fixes},
		depth: nd.depth + 1,
		bound: bound,
		path:  nd.path + "0",
		basis: basis,
	}
	up := &node{
		fixes: &fixChain{f: fix{Var: branchVar, Sense: lp.GE, Val: math.Ceil(val)}, prev: nd.fixes},
		depth: nd.depth + 1,
		bound: bound,
		path:  nd.path + "1",
		basis: basis,
	}
	return []*node{down, up}, nil
}

// solveNodeLP derives the node problem as a copy-free overlay of the
// immutable base LP and solves it. By default branching decisions become
// tightened variable bounds on the overlay (LE fix: hi = min(hi, val); GE
// fix: lo = max(lo, val)) — the node keeps exactly the root's constraint
// rows and basis dimension at any depth, and an empty box (hi < lo) proves
// infeasibility without invoking the solver at all. With Options.BranchRows
// the legacy encoding appends one explicit bound row per fix instead. A
// non-nil heuristicFix additionally pins every integer variable to the
// given value (fixed box by default, EQ row under BranchRows). The base LP
// is never mutated during the search, which is what makes concurrent
// overlays by parallel workers safe.
//
// When warm starts are enabled and a parent basis is available, the node
// is re-optimised with the dual simplex via ws.SolveBasisFrom; a failed
// warm start (invalid or singular basis) falls back to a cold Phase-1
// solve. The returned basis warm-starts this node's children (nil when
// only the tableau solver ran or the relaxation was not solved to
// optimality).
//
// Every solve runs on ws, the calling worker's private workspace. The
// basis-publishing paths return independent Solutions, safe to hold across
// later solves; the tableau paths (DisableWarmStart, heuristicFix) return
// Solutions aliasing ws buffers, valid only until the next solve on this
// worker — process captures what it needs before re-solving.
//
//lint:hotpath=bounded one node relaxation allocates an overlay plus the published basis; solver scratch comes from the worker's workspace
func (s *searcher) solveNodeLP(fixes *fixChain, depth int, from *lp.Basis, heuristicFix []float64, ws *lp.Workspace) (*lp.Solution, *lp.Basis, error) {
	p := s.prob.LP.Overlay()
	if s.opts.BranchRows {
		// Replay the chain oldest-first so row order (and hence the basis
		// row layout a parent basis describes) matches insertion order.
		fs := make([]fix, depth)
		for c, i := fixes, depth-1; c != nil; c, i = c.prev, i-1 {
			fs[i] = c.f
		}
		for _, f := range fs {
			p.AddConstraint([]lp.Term{{Var: f.Var, Coef: 1}}, f.Sense, f.Val)
		}
		if heuristicFix != nil {
			for i, v := range s.prob.Integers {
				p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.EQ, heuristicFix[i])
			}
		}
	} else {
		for c := fixes; c != nil; c = c.prev {
			lo, hi := p.Bounds(c.f.Var)
			if c.f.Sense == lp.LE {
				hi = math.Min(hi, c.f.Val)
			} else {
				lo = math.Max(lo, c.f.Val)
			}
			if hi < lo {
				return &lp.Solution{Status: lp.Infeasible}, nil, nil
			}
			p.SetBounds(c.f.Var, lo, hi)
		}
		if heuristicFix != nil {
			for i, v := range s.prob.Integers {
				val := heuristicFix[i]
				lo, hi := p.Bounds(v)
				if val < lo-intTol || val > hi+intTol {
					return &lp.Solution{Status: lp.Infeasible}, nil, nil
				}
				p.SetBounds(v, val, val)
			}
		}
	}
	lpOpts := s.opts.LP
	lpOpts.Deadline = s.opts.Deadline
	rows := p.NumConstraints()

	if s.opts.DisableWarmStart {
		sol, err := ws.SolveTableau(p, lpOpts)
		s.countSolve(false, false, rows)
		return sol, nil, err
	}
	if heuristicFix != nil {
		// With every integer pinned the relaxation is close to a pure
		// feasibility check; the parent basis is a poor starting point for
		// that many simultaneous changes (the dual repair walks farther
		// than a fresh solve), so go straight to the tableau solver.
		// Children never inherit from heuristic solves.
		sol, err := ws.SolveTableau(p, lpOpts)
		s.countSolve(false, false, rows)
		return sol, nil, err
	}
	if from != nil {
		if sol, basis, err := ws.SolveBasisFrom(p, from, lpOpts); err == nil {
			s.countSolve(true, sol.FactorRebuilt, rows)
			return sol, basis, nil
		}
		// Warm start failed; fall through to a cold solve.
	}
	sol, basis, err := ws.SolveBasis(p, lpOpts)
	if err != nil {
		// Last-resort fallback: the independent tableau implementation.
		sol, err = ws.SolveTableau(p, lpOpts)
		basis = nil
		if err != nil {
			return nil, nil, err
		}
	}
	s.countSolve(false, false, rows)
	return sol, basis, nil
}

// countSolve tallies warm vs cold relaxation solves, inherit fallbacks
// (warm starts that had to refactorise because the parent snapshot could
// not be adopted) and the node row-count high-water mark for Result
// reporting.
func (s *searcher) countSolve(warm, inheritFallback bool, rows int) {
	s.mu.Lock()
	if warm {
		s.warmSolves++
		if inheritFallback {
			s.inheritFallbacks++
		}
	} else {
		s.coldSolves++
	}
	if rows > s.maxNodeRows {
		s.maxNodeRows = rows
	}
	s.mu.Unlock()
}

// integralOn reports whether every listed variable of x is integral
// within intTol.
func integralOn(integers []int, x []float64) bool {
	for _, v := range integers {
		f := x[v] - math.Floor(x[v])
		if math.Min(f, 1-f) > intTol {
			return false
		}
	}
	return true
}

// mostFractional returns the integer variable whose value is farthest from
// integral (closest to 0.5 fractional part), or -1 if all are integral.
func (s *searcher) mostFractional(x []float64) int {
	varIdx := -1
	best := intTol
	for _, v := range s.prob.Integers {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > best {
			best = dist
			varIdx = v
		}
	}
	return varIdx
}

// incumbentTieTol bounds the objective difference under which two
// incumbent candidates are considered tied and the tree-path tie-break
// applies. It is far below the default pruning Gap, so tie-breaking never
// degrades the reported objective beyond the solver's own tolerance.
const incumbentTieTol = 1e-9

// offerIncumbent installs (obj, x) as the incumbent if it improves, or if
// it ties the current incumbent (within incumbentTieTol) and comes from a
// lexicographically earlier tree path. The path tie-break makes the
// winning solution a function of the search tree alone, not of which
// worker reported first, so Solve returns identical X at any Workers
// setting (up to exact-objective ties between distinct optima, which the
// path ordering then resolves deterministically as well).
func (s *searcher) offerIncumbent(obj float64, x []float64, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	better := obj > s.incumbent+incumbentTieTol
	tied := !better && obj > s.incumbent-incumbentTieTol &&
		s.incumbentX != nil && path < s.incumbentPath
	if !better && !tied {
		return
	}
	if obj > s.incumbent {
		s.incumbent = obj
	}
	s.incumbentX = append([]float64(nil), x...)
	s.incumbentPath = path
}
