package mip

import (
	"container/heap"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/lp"
)

// ErrUnbounded is returned when the root relaxation is unbounded.
var ErrUnbounded = errors.New("mip: unbounded relaxation")

// Solve runs branch-and-cut on p.
func Solve(p *Problem, opts Options) (*Result, error) {
	start := time.Now() //lint:ignore wallclock sanctioned once-per-solve stamp for Result wall-time reporting
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 1 << 20
	}
	if opts.Gap == 0 {
		opts.Gap = 1e-6
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	cuts := opts.Cuts
	if cuts == CutsAuto {
		cuts = CutsRoot
	}
	if opts.BranchRows && cuts == CutsTree {
		// Node-local cut rows would interleave with the appended fix rows
		// and break the row-prefix rule parent bases rely on; see CutsTree.
		cuts = CutsRoot
	}
	branch := opts.Branching
	if branch == BranchAuto {
		branch = BranchReliability
	}
	order := opts.NodeOrder
	if order == NodeOrderAuto {
		if opts.Strategy == DepthFirst {
			order = NodeOrderDepthFirst
		} else {
			order = NodeOrderPlunge
		}
	}

	s := &searcher{
		prob:      p,
		opts:      opts,
		branch:    branch,
		plunge:    order == NodeOrderPlunge,
		treeCuts:  cuts == CutsTree,
		incumbent: math.Inf(-1),
		inflight:  make(map[*node]struct{}),
	}
	// Root presolve (when opts.LP.Presolve selects it): reduce the LP once
	// with the integer columns kept, search entirely in the reduced space —
	// warm-start chains and bound branching work unchanged because integer
	// indices and values map one-to-one — and postsolve the incumbent at
	// the end. Node solves must not re-presolve: their basis snapshots have
	// to stay coherent across the warm-start chain.
	if ps := lp.RootPresolve(p.LP, p.Integers, opts.LP); ps != nil {
		if ps.Status() == lp.Infeasible {
			return &Result{
				Status: Infeasible, Bound: math.Inf(-1), DualBound: math.Inf(-1),
				Gap: math.Inf(1), Elapsed: time.Since(start),
			}, nil
		}
		if red := ps.Reduced(); red != nil {
			ints := make([]int, len(p.Integers))
			for i, v := range p.Integers {
				ints[i] = ps.Col(v)
			}
			s.prob = &Problem{LP: red, Integers: ints}
			s.ps = ps
			s.opts.LP.Presolve = lp.PresolveOff
			if orig := opts.Rounding; orig != nil {
				// The caller's heuristic sees original-space solutions; the
				// fixed values it returns are unscaled keep columns, so they
				// are valid in both spaces.
				s.opts.Rounding = func(xr []float64) ([]float64, bool) {
					return orig(ps.PostsolveX(xr))
				}
			}
		} else {
			// Presolve decided every column (possible only with no integer
			// variables, which are always kept): the box solution is the
			// optimum if integral, else search the original problem.
			x := ps.PostsolveX(nil)
			if integralOn(p.Integers, x) {
				var obj float64
				for v := 0; v < p.LP.NumVars(); v++ {
					obj += p.LP.ObjCoef(v) * x[v]
				}
				return &Result{
					Status: Optimal, Objective: obj, X: x, Bound: obj,
					DualBound: obj, Nodes: 0, Elapsed: time.Since(start),
				}, nil
			}
		}
	}
	// Cross-solve warm state (incremental re-solves): record the base-row
	// watermark first — export needs it even without an import — then graft
	// the imported cut pool, adapted root basis and pseudo-cost chain onto
	// the searcher. Both directions are disabled under root presolve, whose
	// row/column remapping the exported state does not survive.
	s.baseLP = s.prob.LP
	s.baseRows = s.prob.LP.NumConstraints()
	if opts.Warm != nil && s.ps == nil {
		s.importWarm(opts.Warm)
	}
	// The caller-owned workspace serves the serial pre-search phases (root
	// cut loop) and, below, the single worker; parallel searches ignore it.
	rootWS := opts.Workspace
	if rootWS == nil || workers > 1 {
		rootWS = lp.NewWorkspace()
	}
	// Root cutting loop: separate valid inequalities from the model
	// structure, append the violated ones and re-optimise, then drop the
	// slack ones and make the surviving pool part of every node relaxation
	// (see cuts.go). Builder hints index the as-built rows, so they only
	// apply when no root presolve remapped them.
	if cuts != CutsOff && len(s.prob.Integers) > 0 {
		var hint *Structure
		if s.ps == nil {
			hint = p.Structure
		}
		sep := newSeparator(s.prob.LP, s.prob.Integers, hint)
		if sep.active() {
			s.rootCuts(sep, rootWS)
			if s.treeCuts {
				s.sep = sep
			}
		}
	}
	s.cond = sync.NewCond(&s.mu)
	if order == NodeOrderDepthFirst {
		s.queue.strat = DepthFirst
	} else {
		s.queue.strat = BestBound
	}
	heap.Push(&s.queue, &node{bound: math.Inf(1), brVar: -1, basis: s.rootFrom, pc: s.rootPC})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a private lp.Workspace and branching scratch,
			// reused across every node it dequeues: node solves hit zero
			// steady-state solver allocations, and workspaces are never
			// shared across goroutines (see Options.Workers). A serial
			// search reuses the pre-search workspace (the caller's, when
			// Options.Workspace provided one).
			ws := rootWS
			if workers > 1 {
				ws = lp.NewWorkspace()
			}
			s.run(ws, newBranchScratch(s.prob.LP.NumVars()))
		}()
	}
	wg.Wait()

	if s.err != nil {
		return nil, s.err
	}
	res := &Result{
		Nodes:            s.nodes,
		Elapsed:          time.Since(start),
		WarmSolves:       s.warmSolves,
		ColdSolves:       s.coldSolves,
		InheritFallbacks: s.inheritFallbacks,
		MaxNodeRows:      s.maxNodeRows,
		Cuts:             s.cutsKept,
		CutRounds:        s.cutRounds,
		TreeCuts:         s.treeCutCount,
		StrongBranches:   s.strongBranches,
	}
	hasIncumbent := !math.IsInf(s.incumbent, -1)
	if hasIncumbent {
		res.Objective = s.incumbent
		res.X = s.incumbentX
	}
	switch {
	case !s.stopped && hasIncumbent:
		res.Status = Optimal
		res.Bound = s.incumbent
	case !s.stopped:
		res.Status = Infeasible
		res.Bound = math.Inf(-1)
	case hasIncumbent:
		res.Status = Feasible
		res.Bound = s.openBound()
	default:
		res.Status = NoIncumbent
		res.Bound = s.openBound()
	}
	if s.ps != nil {
		// Lift the reduced-space result back to the original problem: X
		// through the undo stack, objective and bound by the eliminated
		// columns' offset (reduced objective + offset = original exactly;
		// infinite bounds stay infinite).
		if res.X != nil {
			res.X = s.ps.PostsolveX(res.X)
		}
		if hasIncumbent {
			res.Objective += s.ps.ObjOffset()
		}
		res.Bound += s.ps.ObjOffset()
	}
	res.DualBound = res.Bound
	if hasIncumbent {
		res.Gap = math.Max(0, res.Bound-res.Objective)
	} else {
		res.Gap = math.Inf(1)
	}
	if opts.ExportWarm && s.ps == nil {
		res.Warm = s.exportWarm()
	}
	return res, nil
}

type searcher struct {
	prob *Problem
	opts Options
	// Resolved search configuration (Auto modes mapped to concrete ones).
	branch   BranchRule
	plunge   bool
	treeCuts bool
	// sep separates cuts at shallow tree nodes under CutsTree; its
	// detection structures are immutable after construction, so concurrent
	// workers share it read-only (separation scratch is per-call).
	sep *separator
	// ps is non-nil when the search runs in root-presolved reduced space:
	// prob then holds the reduced LP with remapped integer indices, and
	// the final result is postsolved back (see Solve).
	ps *lp.Presolved

	// Cross-solve warm state (see warm.go). baseLP/baseRows snapshot the
	// problem before any cut rows joined it — the layout WarmState.BaseRows
	// describes. pool is the current root cut pool (imported then updated
	// by the root loop); rootFrom/rootPC seed the root node's basis and
	// pseudo-cost chain (nil outside warm mode, keeping the legacy tree
	// shape bit-identical); warmMode records that an import happened.
	baseLP   *lp.Problem
	baseRows int
	pool     []cut
	rootFrom *lp.Basis
	rootPC   *pcObs
	warmMode bool

	mu               sync.Mutex
	cond             *sync.Cond
	queue            nodeQueue
	inflight         map[*node]struct{}
	incumbent        float64
	incumbentX       []float64
	incumbentPath    string
	incumbentPC      *pcObs    // pseudo-cost chain at the incumbent's node (export)
	rootBasis        *lp.Basis // root relaxation basis captured for export
	nodes            int
	warmSolves       int
	coldSolves       int
	inheritFallbacks int
	maxNodeRows      int
	cutsKept         int
	cutRounds        int
	treeCutCount     int
	strongBranches   int
	stopped          bool
	err              error
}

// openBound returns the best upper bound over open and in-flight nodes and
// the incumbent; callers must not hold the mutex.
func (s *searcher) openBound() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dualBoundLocked()
}

// dualBoundLocked is openBound's locked core: the global dual bound over
// the open queue, the in-flight nodes and the incumbent.
func (s *searcher) dualBoundLocked() float64 {
	b := s.incumbent
	for _, nd := range s.queue.items {
		if nd.bound > b {
			b = nd.bound
		}
	}
	for nd := range s.inflight {
		if nd.bound > b {
			b = nd.bound
		}
	}
	return b
}

// gapMetLocked reports whether the RelGap early-termination criterion
// holds: an incumbent exists and the global dual bound (including extra,
// the node the caller is about to process) is within the relative gap of
// it. Caller holds the mutex.
func (s *searcher) gapMetLocked(extra *node) bool {
	if s.opts.RelGap <= 0 || math.IsInf(s.incumbent, -1) {
		return false
	}
	db := s.dualBoundLocked()
	if extra != nil && extra.bound > db {
		db = extra.bound
	}
	return db-s.incumbent <= s.opts.RelGap*math.Max(1, math.Abs(s.incumbent))
}

// admitLocked runs the node-budget and deadline gates for a node about to
// be processed and, when admitted, registers it in flight and counts it.
// It returns false — with nd pushed back on the queue for bound reporting
// and the search stopped — when a limit struck. Caller holds the mutex.
func (s *searcher) admitLocked(nd *node) bool {
	if s.nodes >= s.opts.MaxNodes {
		heap.Push(&s.queue, nd)
		s.stopped = true
		s.cond.Broadcast()
		return false
	}
	//lint:ignore wallclock sanctioned deadline probe, once per admitted branch-and-bound node
	if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
		heap.Push(&s.queue, nd)
		s.stopped = true
		s.cond.Broadcast()
		return false
	}
	if s.gapMetLocked(nd) {
		heap.Push(&s.queue, nd)
		s.stopped = true
		s.cond.Broadcast()
		return false
	}
	s.nodes++
	s.inflight[nd] = struct{}{}
	if s.opts.OnNode != nil {
		s.opts.OnNode(s.nodes)
	}
	return true
}

// run is one worker's loop. ws is the worker's private solver workspace
// and scr its private branching scratch; neither may be shared with any
// other goroutine.
func (s *searcher) run(ws *lp.Workspace, scr *branchScratch) {
	for {
		s.mu.Lock()
		for s.queue.Len() == 0 && len(s.inflight) > 0 && !s.stopped {
			s.cond.Wait()
		}
		if s.stopped || (s.queue.Len() == 0 && len(s.inflight) == 0) {
			s.cond.Broadcast()
			s.mu.Unlock()
			return
		}
		nd := heap.Pop(&s.queue).(*node)
		if nd.bound <= s.incumbent+s.opts.Gap {
			// Pruned by bound; nothing in flight changes.
			s.mu.Unlock()
			continue
		}
		if !s.admitLocked(nd) {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		// Process nd, then — when plunging — continue directly with one of
		// its children instead of going back through the global queue: the
		// worker dives down one path (bounded depth), keeping the parent's
		// basis hot in its workspace. Plunging only reorders exploration;
		// the tree, the pruning and the incumbents are untouched, so
		// determinism across worker counts is preserved.
		for depth := 0; nd != nil; depth++ {
			children, fatal := s.process(nd, ws, scr)

			s.mu.Lock()
			delete(s.inflight, nd)
			if fatal != nil && s.err == nil {
				s.err = fatal
				s.stopped = true
			}
			var carry *node
			if s.plunge && !s.stopped && depth < maxPlunge {
				// Dive onto the child with the stronger bound (tie: the
				// down branch, matching the queue's path tie-break).
				for _, c := range children {
					if c.bound <= s.incumbent+s.opts.Gap {
						continue
					}
					if carry == nil || c.bound > carry.bound ||
						//lint:ignore floatcmp deterministic tie-break mirroring the queue comparator's exact ordering
						(c.bound == carry.bound && c.path < carry.path) {
						carry = c
					}
				}
			}
			for _, c := range children {
				if c != carry {
					heap.Push(&s.queue, c)
				}
			}
			if carry != nil && !s.admitLocked(carry) {
				carry = nil
			}
			nd = carry
			s.cond.Broadcast()
			s.mu.Unlock()
		}
	}
}

// process solves one node relaxation (on the worker's workspace) and
// returns child nodes.
func (s *searcher) process(nd *node, ws *lp.Workspace, scr *branchScratch) (children []*node, fatal error) {
	sol, basis, err := s.solveNodeLP(nd, nd.basis, nil, ws)
	if err != nil {
		return nil, err
	}
	switch sol.Status {
	case lp.Infeasible:
		return nil, nil
	case lp.Unbounded:
		if nd.depth == 0 {
			return nil, ErrUnbounded
		}
		return nil, nil // cannot happen below a bounded root; drop defensively
	case lp.TimeLimit, lp.IterLimit:
		s.mu.Lock()
		s.stopped = true
		s.mu.Unlock()
		return nil, nil
	}

	if nd.depth == 0 && s.opts.ExportWarm && basis != nil {
		// Root relaxation basis for WarmState export. Captured before the
		// pruning gate so even a one-node search exports it; an independent
		// copy-out, safe to hold past this worker's next solve.
		s.mu.Lock()
		s.rootBasis = basis
		s.mu.Unlock()
	}

	s.mu.Lock()
	pruned := sol.Objective <= s.incumbent+s.opts.Gap
	s.mu.Unlock()
	if pruned {
		return nil, nil
	}

	// Shallow-node separation (CutsTree): cut off the fractional optimum
	// with fresh globally-valid inequalities, carried on the node's
	// immutable cut chain so only this subtree pays for their rows, and
	// re-solve warm from the node's own basis (the appended rows enter
	// with their logicals basic, so the dual simplex repairs them in a few
	// pivots — the same mechanics as the root loop).
	if s.treeCuts && s.sep != nil && nd.depth > 0 && nd.depth <= cutTreeDepth && basis != nil {
		if fresh := s.sep.separate(sol.X, treeCutsPerNode); len(fresh) > 0 {
			for i := range fresh {
				nd.cuts = &cutChain{c: fresh[i], prev: nd.cuts}
				nd.nCuts++
			}
			s.mu.Lock()
			s.treeCutCount += len(fresh)
			s.mu.Unlock()
			nsol, nbasis, nerr := s.solveNodeLP(nd, basis, nil, ws)
			if nerr != nil {
				return nil, nerr
			}
			switch nsol.Status {
			case lp.Optimal:
				sol, basis = nsol, nbasis
			case lp.Infeasible:
				// Valid cuts proved the subtree holds no integer point.
				return nil, nil
			}
			// Limit statuses: keep the pre-cut solution; the chain stays,
			// so the children still inherit the (valid) cuts.
			s.mu.Lock()
			pruned = sol.Objective <= s.incumbent+s.opts.Gap
			s.mu.Unlock()
			if pruned {
				return nil, nil
			}
		}
	}

	// Record the pseudo-cost observation of the branching step that created
	// this node: the relaxation degraded by (parent bound - node objective)
	// over a bound movement of brDist. The chain extension is node-local
	// and immutable, so estimates depend only on ancestry (see pcObs).
	if s.branch != BranchMostFractional && nd.brVar >= 0 && nd.brDist > intTol && !math.IsInf(nd.bound, 1) {
		nd.pc = &pcObs{
			v: nd.brVar, dir: nd.brDir,
			delta: math.Max(0, nd.bound-sol.Objective) / nd.brDist,
			prev:  nd.pc,
		}
	}

	pick := s.selectBranch(nd, sol, basis, scr, ws)
	if pick.v == -1 {
		// Integral: candidate incumbent.
		s.offerIncumbent(sol.Objective, sol.X, nd.path, pick.pc)
		return nil, nil
	}
	if pick.downInfeas && pick.upInfeas {
		// Strong-branching probes proved both directions infeasible: the
		// node itself holds no integer point.
		return nil, nil
	}

	// Capture the branching value and bound before any further solve on the
	// worker's workspace: the tableau-routed solves below (heuristic, or
	// everything under DisableWarmStart) return Solutions that alias
	// workspace buffers, so the heuristic re-solve would overwrite sol.
	val := pick.val
	bound := sol.Objective

	// Primal heuristic: at the root and periodically thereafter, round the
	// fractional solution, fix all integers and re-solve for a quick
	// incumbent. The trigger depends only on the node's depth — never on a
	// dequeue counter — so the set of heuristic solves (and hence every
	// incumbent candidate) is identical at any worker count.
	d := nd.depth
	if s.opts.Rounding != nil && (d == 0 || d%4 == 0) {
		if fixed, ok := s.opts.Rounding(sol.X); ok && len(fixed) == len(s.prob.Integers) {
			if hsol, _, err := s.solveNodeLP(nd, basis, fixed, ws); err == nil && hsol.Status == lp.Optimal {
				if s.mostFractional(hsol.X) == -1 {
					s.offerIncumbent(hsol.Objective, hsol.X, nd.path+"h", pick.pc)
				}
			}
		}
	}

	// Children share the parent's immutable fix chain and prepend their one
	// new decision: O(1) per child instead of the O(depth) copy (O(depth²)
	// per root-to-leaf path) the slice encoding used to pay. Probe results
	// tighten the child bounds (a truncated dual-feasible probe objective
	// is a valid upper bound on its subtree) and drop probe-proven
	// infeasible directions outright.
	children = make([]*node, 0, 2)
	if !pick.downInfeas {
		children = append(children, &node{
			fixes: &fixChain{f: fix{Var: pick.v, Sense: lp.LE, Val: math.Floor(val)}, prev: nd.fixes},
			depth: nd.depth + 1,
			bound: math.Min(bound, pick.downBound),
			path:  nd.path + "0",
			basis: basis,
			pc:    pick.pc,
			cuts:  nd.cuts, nCuts: nd.nCuts,
			brVar: pick.v, brDir: 0, brDist: val - math.Floor(val),
		})
	}
	if !pick.upInfeas {
		children = append(children, &node{
			fixes: &fixChain{f: fix{Var: pick.v, Sense: lp.GE, Val: math.Ceil(val)}, prev: nd.fixes},
			depth: nd.depth + 1,
			bound: math.Min(bound, pick.upBound),
			path:  nd.path + "1",
			basis: basis,
			pc:    pick.pc,
			cuts:  nd.cuts, nCuts: nd.nCuts,
			brVar: pick.v, brDir: 1, brDist: math.Ceil(val) - val,
		})
	}
	return children, nil
}

// nodeProblem derives the node relaxation as a copy-free overlay of the
// immutable base LP: branching decisions become tightened variable bounds
// (or appended bound rows under Options.BranchRows), inherited CutsTree
// cuts are replayed as rows oldest-first (so the row order matches the
// ancestor append order a parent basis describes), and a non-nil
// heuristicFix pins every integer variable. It returns ok=false when a
// replayed box is empty — infeasibility proven without invoking the
// solver. The base LP is never mutated during the search, which is what
// makes concurrent overlays by parallel workers safe.
//
//lint:hotpath=bounded one node derivation allocates an overlay plus the O(depth) replay scratch
func (s *searcher) nodeProblem(nd *node, heuristicFix []float64) (*lp.Problem, bool) {
	p := s.prob.LP.Overlay()
	if nd.cuts != nil {
		cs := make([]*cutChain, nd.nCuts)
		for c, i := nd.cuts, nd.nCuts-1; c != nil; c, i = c.prev, i-1 {
			cs[i] = c
		}
		for _, cc := range cs {
			p.AddConstraint(cc.c.terms, lp.LE, cc.c.rhs)
		}
	}
	if s.opts.BranchRows {
		// Replay the chain oldest-first so row order (and hence the basis
		// row layout a parent basis describes) matches insertion order.
		fs := make([]fix, nd.depth)
		for c, i := nd.fixes, nd.depth-1; c != nil; c, i = c.prev, i-1 {
			fs[i] = c.f
		}
		for _, f := range fs {
			p.AddConstraint([]lp.Term{{Var: f.Var, Coef: 1}}, f.Sense, f.Val)
		}
		if heuristicFix != nil {
			for i, v := range s.prob.Integers {
				p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.EQ, heuristicFix[i])
			}
		}
	} else {
		for c := nd.fixes; c != nil; c = c.prev {
			lo, hi := p.Bounds(c.f.Var)
			if c.f.Sense == lp.LE {
				hi = math.Min(hi, c.f.Val)
			} else {
				lo = math.Max(lo, c.f.Val)
			}
			if hi < lo {
				return nil, false
			}
			p.SetBounds(c.f.Var, lo, hi)
		}
		if heuristicFix != nil {
			for i, v := range s.prob.Integers {
				val := heuristicFix[i]
				lo, hi := p.Bounds(v)
				if val < lo-intTol || val > hi+intTol {
					return nil, false
				}
				p.SetBounds(v, val, val)
			}
		}
	}
	return p, true
}

// solveNodeLP derives the node relaxation via nodeProblem and solves it.
//
// When warm starts are enabled and a parent basis is available, the node
// is re-optimised with the dual simplex via ws.SolveBasisFrom; a failed
// warm start (invalid or singular basis) falls back to a cold Phase-1
// solve. The returned basis warm-starts this node's children (nil when
// only the tableau solver ran or the relaxation was not solved to
// optimality).
//
// Every solve runs on ws, the calling worker's private workspace. The
// basis-publishing paths return independent Solutions, safe to hold across
// later solves; the tableau paths (DisableWarmStart, heuristicFix) return
// Solutions aliasing ws buffers, valid only until the next solve on this
// worker — process captures what it needs before re-solving.
//
//lint:hotpath=bounded one node relaxation allocates an overlay plus the published basis; solver scratch comes from the worker's workspace
func (s *searcher) solveNodeLP(nd *node, from *lp.Basis, heuristicFix []float64, ws *lp.Workspace) (*lp.Solution, *lp.Basis, error) {
	p, ok := s.nodeProblem(nd, heuristicFix)
	if !ok {
		return &lp.Solution{Status: lp.Infeasible}, nil, nil
	}
	lpOpts := s.opts.LP
	lpOpts.Deadline = s.opts.Deadline
	rows := p.NumConstraints()

	if s.opts.DisableWarmStart {
		sol, err := ws.SolveTableau(p, lpOpts)
		s.countSolve(false, false, rows)
		return sol, nil, err
	}
	if heuristicFix != nil {
		// With every integer pinned the relaxation is close to a pure
		// feasibility check; the parent basis is a poor starting point for
		// that many simultaneous changes (the dual repair walks farther
		// than a fresh solve), so go straight to the tableau solver.
		// Children never inherit from heuristic solves.
		sol, err := ws.SolveTableau(p, lpOpts)
		s.countSolve(false, false, rows)
		return sol, nil, err
	}
	if from != nil {
		if sol, basis, err := ws.SolveBasisFrom(p, from, lpOpts); err == nil {
			s.countSolve(true, sol.FactorRebuilt, rows)
			return sol, basis, nil
		}
		// Warm start failed; fall through to a cold solve.
	}
	sol, basis, err := ws.SolveBasis(p, lpOpts)
	if err != nil {
		// Last-resort fallback: the independent tableau implementation.
		sol, err = ws.SolveTableau(p, lpOpts)
		basis = nil
		if err != nil {
			return nil, nil, err
		}
	}
	s.countSolve(false, false, rows)
	return sol, basis, nil
}

// countSolve tallies warm vs cold relaxation solves, inherit fallbacks
// (warm starts that had to refactorise because the parent snapshot could
// not be adopted) and the relaxation row-count high-water mark for Result
// reporting. Node solves and tree-cut re-solves go through here; root
// cut-loop solves and strong-branching probes do not (they keep their own
// counters so WarmSolves+ColdSolves stays comparable across search
// configurations).
func (s *searcher) countSolve(warm, inheritFallback bool, rows int) {
	s.mu.Lock()
	if warm {
		s.warmSolves++
		if inheritFallback {
			s.inheritFallbacks++
		}
	} else {
		s.coldSolves++
	}
	if rows > s.maxNodeRows {
		s.maxNodeRows = rows
	}
	s.mu.Unlock()
}

// integralOn reports whether every listed variable of x is integral
// within intTol.
func integralOn(integers []int, x []float64) bool {
	for _, v := range integers {
		f := x[v] - math.Floor(x[v])
		if math.Min(f, 1-f) > intTol {
			return false
		}
	}
	return true
}

// mostFractional returns the integer variable whose value is farthest from
// integral (closest to 0.5 fractional part), or -1 if all are integral.
func (s *searcher) mostFractional(x []float64) int {
	varIdx := -1
	best := intTol
	for _, v := range s.prob.Integers {
		f := x[v] - math.Floor(x[v])
		dist := math.Min(f, 1-f)
		if dist > best {
			best = dist
			varIdx = v
		}
	}
	return varIdx
}

// incumbentTieTol bounds the objective difference under which two
// incumbent candidates are considered tied and the tree-path tie-break
// applies. It is far below the default pruning Gap, so tie-breaking never
// degrades the reported objective beyond the solver's own tolerance.
const incumbentTieTol = 1e-9

// offerIncumbent installs (obj, x) as the incumbent if it improves, or if
// it ties the current incumbent (within incumbentTieTol) and comes from a
// lexicographically earlier tree path. The path tie-break makes the
// winning solution a function of the search tree alone, not of which
// worker reported first, so Solve returns identical X at any Workers
// setting (up to exact-objective ties between distinct optima, which the
// path ordering then resolves deterministically as well).
// pc is the offering node's pseudo-cost chain; the winning candidate's
// chain is what ExportWarm hands to the next solve (the deterministic
// tie-break keeps it scheduling-independent too).
func (s *searcher) offerIncumbent(obj float64, x []float64, path string, pc *pcObs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	better := obj > s.incumbent+incumbentTieTol
	tied := !better && obj > s.incumbent-incumbentTieTol &&
		s.incumbentX != nil && path < s.incumbentPath
	if !better && !tied {
		return
	}
	if obj > s.incumbent {
		s.incumbent = obj
	}
	s.incumbentX = append([]float64(nil), x...)
	s.incumbentPath = path
	s.incumbentPC = pc
}
