package mip

import (
	"repro/internal/lp"
)

// maxWarmObs bounds the pseudo-cost observations exported in a WarmState:
// the newest maxWarmObs observations on the incumbent's chain are kept.
// Old observations age out — across a long event stream the instance
// drifts, and stale per-variable degradation estimates would misrank
// branching candidates more than no estimate at all.
const maxWarmObs = 512

// WarmCut is one exported root-pool cut, Σ Terms <= RHS, valid for every
// integer point of the producing problem. Whether it remains valid for a
// mutated problem is the importer's judgement call: cuts derived from
// still-present structure (variable-upper-bound links, assignment groups)
// survive restrictions and extensions, while a relaxation of the rows they
// were derived from (e.g. an energy-budget increase) invalidates
// cover-style cuts — the incremental engine drops the pool on such events.
type WarmCut struct {
	Terms []lp.Term
	RHS   float64
}

// WarmObs is one exported pseudo-cost observation: branching variable Var
// in direction Dir (0 = down, 1 = up) degraded the relaxation objective by
// Delta per unit of bound movement. Observations are ordered oldest-first.
type WarmObs struct {
	Var   int
	Dir   int8
	Delta float64
}

// WarmState carries search state from one Solve to the next over a mutated
// problem — the cross-solve analogue of the parent→child inheritance
// inside one tree. Produced by Options.ExportWarm (Result.Warm), consumed
// by Options.Warm. The contract importers must keep:
//
//   - The consuming problem's first min(BaseRows, current rows) rows are
//     the producing problem's rows, possibly with edited right-hand sides,
//     appended terms or changed variable bounds, and never reordered.
//     Variables may have been appended (never removed — deactivate by
//     boxing to [0,0] instead), so column indices stay stable.
//   - Every Cuts entry is still valid for the consuming problem's integer
//     points; drop entries (or the whole pool) when a mutation relaxed the
//     structure they were derived from.
//   - Obs indices refer to consuming-problem variables (stable under the
//     append-only rule above).
//
// RootBasis is the producing root relaxation's optimal basis over the
// layout [0, BaseRows) base rows then one row per Cuts entry; Solve adapts
// it to the consuming layout with lp.Basis.AdaptRows and falls back to a
// cold root solve when it is not adoptable. A zero WarmState imports as a
// no-op. WarmState is read-only to the solver: the same value may be
// imported by several Solves.
type WarmState struct {
	RootBasis *lp.Basis
	BaseRows  int
	Cuts      []WarmCut
	Obs       []WarmObs
}

// importWarm installs w into the searcher before the root cut loop: the
// cut pool is appended to the root relaxation (every node inherits it,
// exactly as a kept root-separated pool), the root basis is adapted to the
// current row layout, and the observations are rebuilt into the root
// node's pseudo-cost chain. Never called under root presolve — the
// exported state lives in original variable/row space and a presolve
// remaps both.
func (s *searcher) importWarm(w *WarmState) {
	s.warmMode = true
	if len(w.Cuts) > 0 {
		aug := s.prob.LP.Overlay()
		s.pool = make([]cut, len(w.Cuts))
		for i, c := range w.Cuts {
			aug.AddConstraint(c.Terms, lp.LE, c.RHS)
			s.pool[i] = cut{terms: c.Terms, rhs: c.RHS}
		}
		s.prob = &Problem{LP: aug, Integers: s.prob.Integers, Structure: s.prob.Structure}
		s.cutsKept = len(s.pool)
	}
	if w.RootBasis != nil && w.RootBasis.NumVars() <= s.prob.LP.NumVars() {
		// Producing layout: [0, w.BaseRows) base rows, then w.Cuts rows.
		// Consuming layout: [0, s.baseRows) base rows (a superset of the
		// producer's shared prefix), then the just-appended pool.
		rowMap := make([]int, w.RootBasis.NumRows())
		for i := range rowMap {
			switch {
			case i < w.BaseRows && i < s.baseRows:
				rowMap[i] = i
			case i >= w.BaseRows && i-w.BaseRows < len(w.Cuts):
				rowMap[i] = s.baseRows + (i - w.BaseRows)
			default:
				rowMap[i] = -1
			}
		}
		s.rootFrom = w.RootBasis.AdaptRows(rowMap, s.baseRows+len(w.Cuts))
	}
	// Obs is oldest-first; the chain is newest-first, so a forward walk
	// prepending each observation leaves the newest at the head.
	for _, o := range w.Obs {
		s.rootPC = &pcObs{v: o.Var, dir: o.Dir, delta: o.Delta, prev: s.rootPC}
	}
}

// exportWarm assembles the Result.Warm payload after the search: the final
// root cut pool (terms deep-copied, so the caller's WarmState never
// aliases solver internals), the root relaxation basis captured when the
// root node was processed, and the newest maxWarmObs pseudo-cost
// observations on the incumbent's chain, reversed to oldest-first.
func (s *searcher) exportWarm() *WarmState {
	w := &WarmState{RootBasis: s.rootBasis, BaseRows: s.baseRows}
	if len(s.pool) > 0 {
		w.Cuts = make([]WarmCut, len(s.pool))
		for i, c := range s.pool {
			w.Cuts[i] = WarmCut{Terms: append([]lp.Term(nil), c.terms...), RHS: c.rhs}
		}
	}
	var newest []WarmObs
	for o := s.incumbentPC; o != nil && len(newest) < maxWarmObs; o = o.prev {
		newest = append(newest, WarmObs{Var: o.v, Dir: o.dir, Delta: o.delta})
	}
	if n := len(newest); n > 0 {
		w.Obs = make([]WarmObs, n)
		for i, o := range newest {
			w.Obs[n-1-i] = o
		}
	}
	return w
}
