// Package mip implements a branch-and-bound solver for mixed-integer
// programs over the package lp simplex solver. It is the module's
// substitute for the commercial MIP solver (cvx-MOSEK) the paper uses as
// the exact DSCT-EA baseline ("DSCT-EA-Opt") in its runtime comparison
// (Fig 4): LP relaxations at every node, most-fractional branching,
// best-bound node selection, and optional parallel node processing.
//
// The solver maximises. Integer variables are branched by tightening their
// bounds (x <= floor(v) becomes hi = floor(v), x >= ceil(v) becomes
// lo = ceil(v)) on a bounds overlay of the immutable root LP — no rows are
// ever appended, so every node relaxation has exactly the root's basis
// dimension regardless of tree depth. For the DSCT-EA model all integer
// variables are binaries, so branching fixes them to 0 or 1. The legacy
// row-append encoding survives behind Options.BranchRows for A/B
// benchmarking.
//
// Node relaxations are warm-started: each node carries its parent's
// optimal basis, and because a child differs from its parent only by one
// tightened variable bound, that basis stays dual feasible (the nonbasic-
// at-bound state travels with the lp.Basis) and lp.SolveFrom re-optimises
// it with a handful of dual simplex pivots instead of a full two-phase
// solve. If the warm start fails (e.g. the parent basis turns out singular
// under the child's data) the node falls back to a cold Phase-1 solve. Set
// Options.DisableWarmStart to benchmark the cold path.
//
// Incumbent selection is deterministic at any Options.Workers setting:
// candidates with equal objectives (within an internal tolerance) are
// tie-broken by their position in the search tree, so the reported X does
// not depend on worker scheduling.
package mip

import (
	"fmt"
	"time"

	"repro/internal/lp"
)

// intTol is the integrality tolerance: a value within intTol of an integer
// is considered integral.
const intTol = 1e-6

// Problem couples an LP with integrality requirements.
type Problem struct {
	LP       *lp.Problem
	Integers []int // variable indices required to take integer values

	// Structure optionally describes model rows the cut separator can
	// exploit (knapsack/budget rows, GUB assignment rows, variable upper
	// bounds). Model builders that know their row layout — internal/model
	// does — fill it in; when nil, or when a root presolve remaps the rows
	// out from under it, the separator detects the same structure from the
	// LP itself.
	Structure *Structure
}

// Structure is builder-provided row metadata for the cut separator. All
// indices refer to the rows and variables of Problem.LP as built.
type Structure struct {
	// BudgetRows are <=-rows with nonnegative coefficients over mixed or
	// continuous variables, e.g. the DSCT-EA energy row Σ P_r·t_jr <= B:
	// cover-cut candidates after continuous terms are shifted to the
	// right-hand side by their bounds.
	BudgetRows []int
	// GUBRows are generalised-upper-bound assignment rows: Σ x in G {<=,=} 1
	// over binaries, e.g. the one-machine-per-task rows Σ_r x_jr = 1.
	GUBRows []int
	// VUBs are variable-upper-bound links t <= U·x with x binary, e.g. the
	// DSCT-EA deadline links t_jr <= d_j·x_jr. The separator strengthens U
	// down to t's own upper bound when that is tighter.
	VUBs []VUB
}

// VUB is one variable-upper-bound link Cont <= U·Bin.
type VUB struct {
	Cont int     // continuous variable
	Bin  int     // binary variable
	U    float64 // link coefficient as built
}

// Status reports how the search terminated.
type Status int

// Solver statuses.
const (
	// Optimal means the incumbent is proven optimal within Options.Gap.
	Optimal Status = iota
	// Feasible means a limit was hit with an incumbent in hand.
	Feasible
	// NoIncumbent means a limit was hit before any integer solution.
	NoIncumbent
	// Infeasible means the problem has no integer solution.
	Infeasible
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case NoIncumbent:
		return "no-incumbent"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Strategy selects the node exploration order.
type Strategy int

// Search strategies.
const (
	// BestBound explores the open node with the highest relaxation bound
	// first (default): strongest bound convergence, larger open set.
	BestBound Strategy = iota
	// DepthFirst dives: deepest open node first (ties broken by bound).
	// It finds incumbents sooner and keeps the open set small, at the
	// cost of a weaker global bound early on.
	DepthFirst
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case BestBound:
		return "best-bound"
	case DepthFirst:
		return "depth-first"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// CutMode selects the cutting-plane layer (see cuts.go).
type CutMode int

// Cut modes.
const (
	// CutsAuto separates cuts at the root (equivalent to CutsRoot).
	CutsAuto CutMode = iota
	// CutsOff disables the separator entirely: the legacy pure
	// branch-and-bound path, kept selectable for A/B comparison.
	CutsOff
	// CutsRoot separates cover/GUB-cover/VUB cuts at the root only: rounds
	// of separate → append → dual-simplex re-optimise, then slack cuts are
	// dropped and the surviving pool becomes part of every node relaxation.
	CutsRoot
	// CutsTree additionally separates at shallow tree nodes (depth <=
	// cutTreeDepth), carried on an immutable per-node cut chain so sibling
	// subtrees stay independent. Node row counts then exceed the root's —
	// the Result.MaxNodeRows high-water mark records it. Ignored (treated
	// as CutsRoot) under Options.BranchRows, whose appended fix rows would
	// interleave with cut rows and break the parent-basis row-prefix rule.
	CutsTree
)

// String names the mode.
func (c CutMode) String() string {
	switch c {
	case CutsAuto:
		return "auto"
	case CutsOff:
		return "off"
	case CutsRoot:
		return "root"
	case CutsTree:
		return "tree"
	default:
		return fmt.Sprintf("cutmode(%d)", int(c))
	}
}

// BranchRule selects how the branching variable is chosen at a node with
// fractional integers (see pseudocost.go).
type BranchRule int

// Branching rules.
const (
	// BranchAuto uses reliability branching (equivalent to
	// BranchReliability).
	BranchAuto BranchRule = iota
	// BranchMostFractional picks the variable farthest from integrality —
	// the legacy rule, kept selectable for A/B comparison.
	BranchMostFractional
	// BranchPseudoCost scores candidates by the per-unit objective
	// degradation observed on ancestor branchings (the node-local
	// pseudo-cost chain), product rule over the up/down estimates. No
	// probing; unobserved variables fall back to the fractionality score.
	BranchPseudoCost
	// BranchReliability is pseudo-cost branching with strong-branching
	// probes on unreliable candidates: variables with no observations yet
	// are probed by bounded dual-simplex re-solves (Workspace.SolveFrom
	// with a small pivot budget) before the scores are compared. Probe
	// side effects — infeasible directions and truncated-but-dual-feasible
	// objectives — tighten the resulting children.
	BranchReliability
)

// String names the rule.
func (b BranchRule) String() string {
	switch b {
	case BranchAuto:
		return "auto"
	case BranchMostFractional:
		return "most-fractional"
	case BranchPseudoCost:
		return "pseudocost"
	case BranchReliability:
		return "reliability"
	default:
		return fmt.Sprintf("branchrule(%d)", int(b))
	}
}

// NodeOrder selects the open-node exploration order.
type NodeOrder int

// Node orders.
const (
	// NodeOrderAuto plunges under best-bound ordering (equivalent to
	// NodeOrderPlunge), except under Strategy DepthFirst which it respects.
	NodeOrderAuto NodeOrder = iota
	// NodeOrderBestBound is the legacy pure best-bound queue: every child
	// goes through the global heap (highest bound first, path tie-break).
	NodeOrderBestBound
	// NodeOrderPlunge keeps best-bound ordering for the global queue but
	// lets a worker dive onto one child of the node it just processed (the
	// down child first, bounded depth), pushing the sibling. Plunging only
	// reorders exploration — the tree, the pruning and the incumbents are
	// identical at any worker count.
	NodeOrderPlunge
	// NodeOrderDepthFirst is the legacy depth-first queue (Strategy
	// DepthFirst expressed as a NodeOrder).
	NodeOrderDepthFirst
)

// String names the order.
func (n NodeOrder) String() string {
	switch n {
	case NodeOrderAuto:
		return "auto"
	case NodeOrderBestBound:
		return "best-bound"
	case NodeOrderPlunge:
		return "plunge"
	case NodeOrderDepthFirst:
		return "depth-first"
	default:
		return fmt.Sprintf("nodeorder(%d)", int(n))
	}
}

// Options tunes the search. The zero value uses defaults: serial
// branch-and-cut (root cuts, reliability branching, plunging best-bound
// order), no deadline, gap 1e-6, node limit 1<<20. The legacy pure
// branch-and-bound path of PRs 1–8 is the combination
// {Cuts: CutsOff, Branching: BranchMostFractional, NodeOrder:
// NodeOrderBestBound}.
type Options struct {
	Deadline time.Time // wall-clock limit (zero: none)
	MaxNodes int       // node budget (0: default 1<<20)
	Gap      float64   // absolute optimality gap for termination (0: 1e-6)

	// RelGap, when positive, terminates the search early once
	// (DualBound - incumbent) <= RelGap * max(1, |incumbent|): the
	// incumbent is then reported as Feasible with Result.Gap recording the
	// proven relative gap. Zero keeps the exact Gap-based criterion.
	RelGap float64

	// Cuts selects the cutting-plane layer (default CutsAuto: root cuts).
	Cuts CutMode
	// Branching selects the branching rule (default BranchAuto:
	// reliability branching).
	Branching BranchRule
	// NodeOrder selects the exploration order (default NodeOrderAuto:
	// plunging best-bound; Strategy DepthFirst keeps depth-first).
	NodeOrder NodeOrder

	// Workers is the number of parallel node processors (<=1: serial).
	// Each worker goroutine owns a private lp.Workspace for the lifetime
	// of the search and reuses it across every node it dequeues, so node
	// relaxations run with zero steady-state solver allocations. A
	// workspace is never shared across goroutines — workers communicate
	// only through the (mutex-guarded) node queue and incumbent, and the
	// Basis snapshots nodes carry are independent copy-outs, safe to adopt
	// by whichever worker dequeues the child. Results are bit-identical at
	// any Workers setting (see the package comment on deterministic
	// incumbent selection).
	Workers int

	Strategy Strategy     // node exploration order (default BestBound)
	LP       lp.Options   // per-node LP options (deadline is overridden)
	Rounding RoundingHook // optional primal heuristic, see RoundingHook
	OnNode   func(n int)  // optional progress callback (nodes processed)

	// DisableWarmStart forces every node relaxation to be solved from
	// scratch with the tableau solver instead of warm-starting the dual
	// simplex from the parent's basis. Intended for benchmarking the
	// warm-start speedup; leave false in normal use.
	DisableWarmStart bool

	// BranchRows applies branching decisions as appended explicit bound
	// rows (x <= floor, x >= ceil) instead of tightened variable bounds,
	// growing each node's basis dimension with its tree depth. Intended
	// for A/B benchmarking the row-free branching win; leave false in
	// normal use.
	BranchRows bool

	// Warm imports search state exported by a previous Solve over a
	// compatibly-mutated problem (see WarmState for the compatibility
	// contract): the cut pool joins every node relaxation, the root basis
	// warm-starts the root solve, and the pseudo-cost observations seed
	// branching. Ignored under root presolve (the exported state lives in
	// original row/column space); any non-adoptable piece degrades to the
	// cold equivalent rather than failing the solve.
	Warm *WarmState

	// ExportWarm asks Solve to assemble Result.Warm for the next re-solve.
	// Ignored under root presolve.
	ExportWarm bool

	// Workspace, when non-nil and Workers <= 1, is the caller-owned
	// lp.Workspace the root cut loop and the single search worker run on,
	// letting consecutive re-solves reuse one workspace's buffers. The
	// caller must not use it concurrently with Solve. Ignored when
	// Workers > 1 (each worker owns a private workspace).
	Workspace *lp.Workspace
}

// RoundingHook is an optional primal heuristic: given the fractional LP
// solution at a node, it may return a fully integral candidate assignment
// for the integer variables (aligned with Problem.Integers). The solver
// fixes those values, re-solves the LP over the continuous variables and,
// if feasible, uses the result as an incumbent. Return ok=false to skip.
//
// x may alias the calling worker's solver workspace: it is valid for the
// duration of the call only and must be copied if retained.
type RoundingHook func(x []float64) (fixed []float64, ok bool)

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective float64 // incumbent objective (valid unless NoIncumbent/Infeasible)
	X         []float64
	Bound     float64 // best proven upper bound on the optimum
	Nodes     int     // LP relaxations solved
	Elapsed   time.Duration

	WarmSolves int // relaxations warm-started from a parent basis
	ColdSolves int // relaxations solved from scratch

	// InheritFallbacks counts warm-started relaxations that reused the
	// parent's basic column set but could not adopt its factorisation
	// snapshot — missing, stale, fill-heavy, failing the residual check,
	// or dimension-mismatched (under Options.BranchRows every child grows
	// a row, so the LU kernel refactorises at every node) — and rebuilt
	// the factors from scratch instead. A subset of WarmSolves; it used
	// to happen silently inside lp.SolveFrom.
	InheritFallbacks int

	// MaxNodeRows is the largest constraint-row count of any node
	// relaxation solved during the search. With bound branching (the
	// default) it equals the root LP's row count — plus the root cut pool
	// kept after the cut loop — at any tree depth; CutsTree node-local cuts
	// and Options.BranchRows fix rows grow it further.
	MaxNodeRows int

	// DualBound is the best proven upper bound on the optimum (identical
	// to Bound; the name matches the branch-and-cut literature). Gap is
	// DualBound - Objective when an incumbent exists (0 at Optimal, +Inf
	// otherwise).
	DualBound float64
	Gap       float64

	// Cuts is the number of cut rows in the root pool after slack removal
	// (the rows every node relaxation carries); CutRounds is how many
	// separate→re-optimise rounds the root loop ran; TreeCuts counts cuts
	// separated at shallow tree nodes under CutsTree.
	Cuts      int
	CutRounds int
	TreeCuts  int

	// StrongBranches counts bounded strong-branching probe solves spent by
	// reliability branching (two per probed candidate). Probe solves are
	// not nodes: they are excluded from Nodes, WarmSolves and ColdSolves.
	StrongBranches int

	// Warm is the exported cross-solve state (Options.ExportWarm); nil
	// when export was off or the solve ran under root presolve.
	Warm *WarmState
}

// fix is one branching decision: variable Var constrained to <= or >= Val.
type fix struct {
	Var   int
	Sense lp.Sense // LE (x <= Val) or GE (x >= Val)
	Val   float64
}

// fixChain is an immutable singly-linked list of branching decisions,
// newest first. A child shares its parent's chain and prepends one
// element, so deriving a node costs O(1) and replaying its decisions
// costs O(depth) — the branching mirror of what lp.Problem.Overlay does
// for constraint rows (and of what the bounds overlay does for boxes).
//
//lint:frozen nodes share chain tails across the whole search tree
type fixChain struct {
	f    fix
	prev *fixChain
}

// cutChain is an immutable singly-linked list of node-local cuts, newest
// first — the CutsTree mirror of fixChain: a child shares its parent's
// chain, and nodes that separate fresh cuts prepend them, so sibling
// subtrees never see each other's cuts and replaying a node's cuts costs
// O(cuts on the root path).
//
//lint:frozen nodes share chain tails across the whole search tree
type cutChain struct {
	c    cut
	prev *cutChain
}

// pcObs is one pseudo-cost observation: branching variable v in direction
// dir (0 = down, 1 = up) degraded the relaxation objective by delta per
// unit of bound movement. Observations form an immutable chain inherited
// parent→child exactly like fixChain, so a node's pseudo-cost estimates
// depend only on its ancestry — never on what other workers explored —
// which keeps the tree shape and hence the incumbents bit-identical at
// any Workers setting (a shared mutable pseudo-cost store would not).
//
//lint:frozen nodes share chain tails across the whole search tree
type pcObs struct {
	v     int
	dir   int8 // 0 = down branch, 1 = up branch
	delta float64
	prev  *pcObs
}

// node is a subproblem in the search tree.
//
// path is the node's position in the tree as a bit string ("0" = down
// branch, "1" = up branch, "" = root). It is a scheduling-independent
// identity: unlike a dequeue counter it does not depend on which worker
// popped the node first, so it can deterministically tie-break incumbents
// with equal objectives. basis is the parent's optimal basis (nil at the
// root and after cold fallbacks) used to warm-start this node's
// relaxation.
type node struct {
	fixes *fixChain // branching decisions, newest first (nil at the root)
	depth int       // branching decisions applied; the chain's length
	bound float64   // parent relaxation objective (upper bound)
	path  string
	basis *lp.Basis

	pc    *pcObs    // inherited pseudo-cost observations, newest first
	cuts  *cutChain // inherited node-local cuts (CutsTree), newest first
	nCuts int       // the chain's length, for oldest-first replay

	// brVar/brDir/brDist record the branching step that created this node
	// (-1/0/0 at the root): after the node's own solve, the observed
	// objective degradation per unit of brDist becomes a new pseudo-cost
	// observation for brVar in direction brDir.
	brVar  int
	brDir  int8
	brDist float64
}

// nodeQueue is a heap of open nodes ordered by the search strategy.
type nodeQueue struct {
	items []*node
	strat Strategy
}

func (q *nodeQueue) Len() int { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.strat == DepthFirst {
		if a.depth != b.depth {
			return a.depth > b.depth
		}
	}
	if a.bound > b.bound {
		return true
	}
	if a.bound < b.bound {
		return false
	}
	// Equal bounds: order by tree path so serial exploration order does
	// not depend on heap insertion order.
	return a.path < b.path
}
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
