// Package mip implements a branch-and-bound solver for mixed-integer
// programs over the package lp simplex solver. It is the module's
// substitute for the commercial MIP solver (cvx-MOSEK) the paper uses as
// the exact DSCT-EA baseline ("DSCT-EA-Opt") in its runtime comparison
// (Fig 4): LP relaxations at every node, most-fractional branching,
// best-bound node selection, and optional parallel node processing.
//
// The solver maximises. Integer variables are branched by tightening their
// bounds (x <= floor(v) becomes hi = floor(v), x >= ceil(v) becomes
// lo = ceil(v)) on a bounds overlay of the immutable root LP — no rows are
// ever appended, so every node relaxation has exactly the root's basis
// dimension regardless of tree depth. For the DSCT-EA model all integer
// variables are binaries, so branching fixes them to 0 or 1. The legacy
// row-append encoding survives behind Options.BranchRows for A/B
// benchmarking.
//
// Node relaxations are warm-started: each node carries its parent's
// optimal basis, and because a child differs from its parent only by one
// tightened variable bound, that basis stays dual feasible (the nonbasic-
// at-bound state travels with the lp.Basis) and lp.SolveFrom re-optimises
// it with a handful of dual simplex pivots instead of a full two-phase
// solve. If the warm start fails (e.g. the parent basis turns out singular
// under the child's data) the node falls back to a cold Phase-1 solve. Set
// Options.DisableWarmStart to benchmark the cold path.
//
// Incumbent selection is deterministic at any Options.Workers setting:
// candidates with equal objectives (within an internal tolerance) are
// tie-broken by their position in the search tree, so the reported X does
// not depend on worker scheduling.
package mip

import (
	"fmt"
	"time"

	"repro/internal/lp"
)

// intTol is the integrality tolerance: a value within intTol of an integer
// is considered integral.
const intTol = 1e-6

// Problem couples an LP with integrality requirements.
type Problem struct {
	LP       *lp.Problem
	Integers []int // variable indices required to take integer values
}

// Status reports how the search terminated.
type Status int

// Solver statuses.
const (
	// Optimal means the incumbent is proven optimal within Options.Gap.
	Optimal Status = iota
	// Feasible means a limit was hit with an incumbent in hand.
	Feasible
	// NoIncumbent means a limit was hit before any integer solution.
	NoIncumbent
	// Infeasible means the problem has no integer solution.
	Infeasible
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case NoIncumbent:
		return "no-incumbent"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Strategy selects the node exploration order.
type Strategy int

// Search strategies.
const (
	// BestBound explores the open node with the highest relaxation bound
	// first (default): strongest bound convergence, larger open set.
	BestBound Strategy = iota
	// DepthFirst dives: deepest open node first (ties broken by bound).
	// It finds incumbents sooner and keeps the open set small, at the
	// cost of a weaker global bound early on.
	DepthFirst
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case BestBound:
		return "best-bound"
	case DepthFirst:
		return "depth-first"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Options tunes the search. The zero value uses defaults: serial
// best-bound search, no deadline, gap 1e-6, node limit 1<<20.
type Options struct {
	Deadline time.Time // wall-clock limit (zero: none)
	MaxNodes int       // node budget (0: default 1<<20)
	Gap      float64   // absolute optimality gap for termination (0: 1e-6)

	// Workers is the number of parallel node processors (<=1: serial).
	// Each worker goroutine owns a private lp.Workspace for the lifetime
	// of the search and reuses it across every node it dequeues, so node
	// relaxations run with zero steady-state solver allocations. A
	// workspace is never shared across goroutines — workers communicate
	// only through the (mutex-guarded) node queue and incumbent, and the
	// Basis snapshots nodes carry are independent copy-outs, safe to adopt
	// by whichever worker dequeues the child. Results are bit-identical at
	// any Workers setting (see the package comment on deterministic
	// incumbent selection).
	Workers int

	Strategy Strategy     // node exploration order (default BestBound)
	LP       lp.Options   // per-node LP options (deadline is overridden)
	Rounding RoundingHook // optional primal heuristic, see RoundingHook
	OnNode   func(n int)  // optional progress callback (nodes processed)

	// DisableWarmStart forces every node relaxation to be solved from
	// scratch with the tableau solver instead of warm-starting the dual
	// simplex from the parent's basis. Intended for benchmarking the
	// warm-start speedup; leave false in normal use.
	DisableWarmStart bool

	// BranchRows applies branching decisions as appended explicit bound
	// rows (x <= floor, x >= ceil) instead of tightened variable bounds,
	// growing each node's basis dimension with its tree depth. Intended
	// for A/B benchmarking the row-free branching win; leave false in
	// normal use.
	BranchRows bool
}

// RoundingHook is an optional primal heuristic: given the fractional LP
// solution at a node, it may return a fully integral candidate assignment
// for the integer variables (aligned with Problem.Integers). The solver
// fixes those values, re-solves the LP over the continuous variables and,
// if feasible, uses the result as an incumbent. Return ok=false to skip.
//
// x may alias the calling worker's solver workspace: it is valid for the
// duration of the call only and must be copied if retained.
type RoundingHook func(x []float64) (fixed []float64, ok bool)

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective float64 // incumbent objective (valid unless NoIncumbent/Infeasible)
	X         []float64
	Bound     float64 // best proven upper bound on the optimum
	Nodes     int     // LP relaxations solved
	Elapsed   time.Duration

	WarmSolves int // relaxations warm-started from a parent basis
	ColdSolves int // relaxations solved from scratch

	// InheritFallbacks counts warm-started relaxations that reused the
	// parent's basic column set but could not adopt its factorisation
	// snapshot — missing, stale, fill-heavy, failing the residual check,
	// or dimension-mismatched (under Options.BranchRows every child grows
	// a row, so the LU kernel refactorises at every node) — and rebuilt
	// the factors from scratch instead. A subset of WarmSolves; it used
	// to happen silently inside lp.SolveFrom.
	InheritFallbacks int

	// MaxNodeRows is the largest constraint-row count of any node
	// relaxation solved during the search. With bound branching (the
	// default) it equals the root LP's row count at any tree depth; with
	// Options.BranchRows it grows by one per branching level.
	MaxNodeRows int
}

// fix is one branching decision: variable Var constrained to <= or >= Val.
type fix struct {
	Var   int
	Sense lp.Sense // LE (x <= Val) or GE (x >= Val)
	Val   float64
}

// fixChain is an immutable singly-linked list of branching decisions,
// newest first. A child shares its parent's chain and prepends one
// element, so deriving a node costs O(1) and replaying its decisions
// costs O(depth) — the branching mirror of what lp.Problem.Overlay does
// for constraint rows (and of what the bounds overlay does for boxes).
//
//lint:frozen nodes share chain tails across the whole search tree
type fixChain struct {
	f    fix
	prev *fixChain
}

// node is a subproblem in the search tree.
//
// path is the node's position in the tree as a bit string ("0" = down
// branch, "1" = up branch, "" = root). It is a scheduling-independent
// identity: unlike a dequeue counter it does not depend on which worker
// popped the node first, so it can deterministically tie-break incumbents
// with equal objectives. basis is the parent's optimal basis (nil at the
// root and after cold fallbacks) used to warm-start this node's
// relaxation.
type node struct {
	fixes *fixChain // branching decisions, newest first (nil at the root)
	depth int       // branching decisions applied; the chain's length
	bound float64   // parent relaxation objective (upper bound)
	path  string
	basis *lp.Basis
}

// nodeQueue is a heap of open nodes ordered by the search strategy.
type nodeQueue struct {
	items []*node
	strat Strategy
}

func (q *nodeQueue) Len() int { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if q.strat == DepthFirst {
		if a.depth != b.depth {
			return a.depth > b.depth
		}
	}
	if a.bound > b.bound {
		return true
	}
	if a.bound < b.bound {
		return false
	}
	// Equal bounds: order by tree path so serial exploration order does
	// not depend on heap insertion order.
	return a.path < b.path
}
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x interface{}) { q.items = append(q.items, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}
