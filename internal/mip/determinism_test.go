package mip

// Determinism tests for parallel branch-and-bound: the solver must return
// bit-identical incumbents at any Workers setting. These tests are meant
// to run under the race detector (scripts/verify.sh runs
// `go test -race ./internal/mip`), where goroutine schedules are
// perturbed enough to expose order-dependent incumbent selection.

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// detKnapsack builds the trial-th seeded knapsack instance.
func detKnapsack(trial int) *Problem {
	src := rng.NewReplicate(23, "det-workers", trial)
	n := 13 + src.Intn(5) // 13..17 items: a few hundred nodes each
	values := make([]float64, n)
	weights := make([]float64, n)
	var total float64
	for i := range values {
		values[i] = src.Uniform(1, 100)
		weights[i] = src.Uniform(1, 50)
		total += weights[i]
	}
	return knapsackProblem(values, weights, total*src.Uniform(0.3, 0.6))
}

// sameSolution reports whether two results carry bit-identical objectives
// and solution vectors.
func sameSolution(a, b *Result) bool {
	if a.Status != b.Status || len(a.X) != len(b.X) {
		return false
	}
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) {
		return false
	}
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			return false
		}
	}
	return true
}

// TestDeterministicAcrossWorkers: identical Status, Objective and X at
// Workers = 1, 4 and 8 on a batch of seeded knapsacks, for both search
// strategies.
func TestDeterministicAcrossWorkers(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		prob := detKnapsack(trial)
		for _, strat := range []Strategy{BestBound, DepthFirst} {
			var base *Result
			for _, workers := range []int{1, 4, 8} {
				res, err := Solve(prob, Options{Workers: workers, Strategy: strat})
				if err != nil {
					t.Fatalf("trial %d %v workers=%d: %v", trial, strat, workers, err)
				}
				if res.Status != Optimal {
					t.Fatalf("trial %d %v workers=%d: status %v", trial, strat, workers, res.Status)
				}
				if base == nil {
					base = res
					continue
				}
				if !sameSolution(base, res) {
					t.Errorf("trial %d %v: workers=%d solution differs from workers=1:\nobj %.17g vs %.17g\nX    %v\nvs   %v",
						trial, strat, workers, base.Objective, res.Objective, base.X, res.X)
				}
			}
		}
	}
}

// TestDeterministicWithRoundingHook: the depth-based heuristic trigger
// must keep incumbent selection deterministic under parallelism too.
func TestDeterministicWithRoundingHook(t *testing.T) {
	prob := detKnapsack(100)
	hook := func(x []float64) ([]float64, bool) {
		fixed := make([]float64, len(x))
		for i, v := range x {
			if v > 0.99 { // conservative rounding keeps the capacity row feasible
				fixed[i] = 1
			}
		}
		return fixed, true
	}
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		res, err := Solve(prob, Options{Workers: workers, Rounding: hook})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("workers=%d: status %v", workers, res.Status)
		}
		if base == nil {
			base = res
			continue
		}
		if !sameSolution(base, res) {
			t.Errorf("workers=%d solution differs:\nobj %.17g vs %.17g", workers, base.Objective, res.Objective)
		}
	}
}

// TestWorkspaceReuseAcrossWorkers: every worker goroutine reuses one
// private lp.Workspace across all its node solves, so this test — meant to
// run under the race detector like the rest of this file — exercises the
// aliasing-heavy workspace paths at Workers = 1, 4 and 8: the default
// basis-publishing chain, the tableau path under DisableWarmStart (whose
// Solutions alias workspace buffers) and the heuristic re-solve on top of
// it, which overwrites those buffers mid-node. Solutions must be
// bit-identical to serial at every worker count. Node counts ARE pinned at
// Workers = 1 — a serial search is fully schedule-determined, so two runs
// must visit exactly the same tree — while at higher worker counts only
// the incumbent is asserted (a parallel worker may legitimately dequeue a
// node that an in-flight incumbent would have pruned, so Nodes is
// scheduling-dependent even though the incumbent is not).
func TestWorkspaceReuseAcrossWorkers(t *testing.T) {
	hook := func(x []float64) ([]float64, bool) {
		fixed := make([]float64, len(x))
		for i, v := range x {
			if v > 0.99 {
				fixed[i] = 1
			}
		}
		return fixed, true
	}
	for trial := 0; trial < 3; trial++ {
		prob := detKnapsack(300 + trial)
		for _, mode := range []struct {
			name string
			opts Options
		}{
			{"warm", Options{}},
			{"tableau", Options{DisableWarmStart: true}},
			{"tableau+hook", Options{DisableWarmStart: true, Rounding: hook}},
		} {
			var base *Result
			for _, workers := range []int{1, 4, 8} {
				opts := mode.opts
				opts.Workers = workers
				res, err := Solve(prob, opts)
				if err != nil {
					t.Fatalf("trial %d %s workers=%d: %v", trial, mode.name, workers, err)
				}
				if res.Status != Optimal {
					t.Fatalf("trial %d %s workers=%d: status %v", trial, mode.name, workers, res.Status)
				}
				if workers == 1 {
					// Serial reruns must retrace the identical tree.
					again, err := Solve(prob, opts)
					if err != nil {
						t.Fatalf("trial %d %s workers=1 rerun: %v", trial, mode.name, err)
					}
					if again.Nodes != res.Nodes {
						t.Errorf("trial %d %s: workers=1 node count not reproducible: %d vs %d",
							trial, mode.name, res.Nodes, again.Nodes)
					}
				}
				if base == nil {
					base = res
					continue
				}
				if math.Float64bits(base.Objective) != math.Float64bits(res.Objective) {
					t.Errorf("trial %d %s: workers=%d incumbent objective %.17g differs from workers=1 %.17g",
						trial, mode.name, workers, res.Objective, base.Objective)
				}
				if !sameSolution(base, res) {
					t.Errorf("trial %d %s: workers=%d solution differs from workers=1:\nobj %.17g vs %.17g",
						trial, mode.name, workers, base.Objective, res.Objective)
				}
			}
		}
	}
}

// TestWarmStartAccounting: warm starts dominate once the tree has depth,
// the counters add up to the node count, and disabling warm starts leaves
// the answer unchanged.
func TestWarmStartAccounting(t *testing.T) {
	prob := detKnapsack(200)
	warm, err := Solve(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal {
		t.Fatalf("status %v", warm.Status)
	}
	if warm.WarmSolves+warm.ColdSolves != warm.Nodes {
		t.Errorf("warm %d + cold %d != nodes %d", warm.WarmSolves, warm.ColdSolves, warm.Nodes)
	}
	if warm.Nodes > 3 && warm.WarmSolves == 0 {
		t.Errorf("no warm-started solves across %d nodes", warm.Nodes)
	}

	cold, err := Solve(prob, Options{DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmSolves != 0 {
		t.Errorf("DisableWarmStart still warm-started %d solves", cold.WarmSolves)
	}
	if cold.Status != warm.Status || math.Abs(cold.Objective-warm.Objective) > 1e-6 {
		t.Errorf("cold obj %g != warm obj %g", cold.Objective, warm.Objective)
	}
}

// TestDeterministicBranchAndCutModes: the branch-and-cut machinery — root
// and tree cuts, pseudo-cost/reliability branching (whose observations
// live on node-local immutable chains precisely so that worker scheduling
// cannot perturb them) and plunging node order — must keep incumbents
// bit-identical at Workers = 1, 4 and 8.
func TestDeterministicBranchAndCutModes(t *testing.T) {
	modes := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"cuts-root/pseudocost/best-bound", Options{Cuts: CutsRoot, Branching: BranchPseudoCost, NodeOrder: NodeOrderBestBound}},
		{"cuts-tree/reliability/plunge", Options{Cuts: CutsTree, Branching: BranchReliability, NodeOrder: NodeOrderPlunge}},
		{"cuts-off/reliability/plunge", Options{Cuts: CutsOff, Branching: BranchReliability, NodeOrder: NodeOrderPlunge}},
		{"cuts-tree/most-fractional/depth-first", Options{Cuts: CutsTree, Branching: BranchMostFractional, NodeOrder: NodeOrderDepthFirst}},
	}
	for trial := 0; trial < 4; trial++ {
		prob := detKnapsack(400 + trial)
		for _, mode := range modes {
			var base *Result
			for _, workers := range []int{1, 4, 8} {
				opts := mode.opts
				opts.Workers = workers
				res, err := Solve(prob, opts)
				if err != nil {
					t.Fatalf("trial %d %s workers=%d: %v", trial, mode.name, workers, err)
				}
				if res.Status != Optimal {
					t.Fatalf("trial %d %s workers=%d: status %v", trial, mode.name, workers, res.Status)
				}
				if base == nil {
					base = res
					continue
				}
				if !sameSolution(base, res) {
					t.Errorf("trial %d %s: workers=%d solution differs from workers=1:\nobj %.17g vs %.17g\nX    %v\nvs   %v",
						trial, mode.name, workers, base.Objective, res.Objective, base.X, res.X)
				}
			}
		}
	}
}
