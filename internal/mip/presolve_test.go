package mip

// Root-presolve differential: branch and bound searching the reduced
// space must report the same optimum as the direct search. The knapsack
// family is ideal food — its x_i <= 1 rows are singleton rows and the
// integers are keep columns, so the root reduction rewrites every node
// while the integer indices must keep meaning through Col's remap.

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/rng"
)

func TestPresolveMatchesDirect(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		src := rng.NewReplicate(14, "mip-presolve", trial)
		n := 4 + src.Intn(9)
		values := make([]float64, n)
		weights := make([]float64, n)
		var total float64
		for i := range values {
			values[i] = src.Uniform(1, 100)
			weights[i] = src.Uniform(1, 50)
			total += weights[i]
		}
		capacity := total * src.Uniform(0.2, 0.8)
		prob := knapsackProblem(values, weights, capacity)

		direct, err := Solve(prob, Options{})
		if err != nil {
			t.Fatal(err)
		}
		presolved, err := Solve(prob, Options{LP: lp.Options{Presolve: lp.PresolveOn}})
		if err != nil {
			t.Fatal(err)
		}
		if direct.Status != presolved.Status {
			t.Fatalf("trial %d: status %v != %v", trial, direct.Status, presolved.Status)
		}
		if direct.Status != Optimal {
			t.Fatalf("trial %d: status %v, want Optimal", trial, direct.Status)
		}
		if math.Abs(direct.Objective-presolved.Objective) > 1e-5 {
			t.Errorf("trial %d: objective %g != %g", trial, direct.Objective, presolved.Objective)
		}
		if presolved.Bound < presolved.Objective-1e-5 {
			t.Errorf("trial %d: bound %g below objective %g", trial, presolved.Bound, presolved.Objective)
		}
		// The incumbent must be a genuine integral knapsack solution of
		// the ORIGINAL problem, postsolved to full length.
		if len(presolved.X) != n {
			t.Fatalf("trial %d: X has %d vars, want %d", trial, len(presolved.X), n)
		}
		var load, val float64
		for i, x := range presolved.X {
			if math.Abs(x-math.Round(x)) > intTol {
				t.Errorf("trial %d: x[%d] = %g not integral", trial, i, x)
			}
			load += weights[i] * x
			val += values[i] * x
		}
		if load > capacity+1e-6 {
			t.Errorf("trial %d: load %g exceeds capacity %g", trial, load, capacity)
		}
		if math.Abs(val-presolved.Objective) > 1e-5 {
			t.Errorf("trial %d: reported objective %g != recomputed %g", trial, presolved.Objective, val)
		}
	}
}

// TestPresolvePinnedBinary: a zero-width box on an integer (exactly what
// branching produces) must survive the root presolve as a keep column
// and come back pinned in the incumbent.
func TestPresolvePinnedBinary(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := []float64{10, 20, 30}
	prob := knapsackProblem(values, weights, 50)
	prob.LP.SetBounds(0, 1, 1) // force item 0 in

	direct, err := Solve(prob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	presolved, err := Solve(prob, Options{LP: lp.Options{Presolve: lp.PresolveOn}})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Status != Optimal || presolved.Status != Optimal {
		t.Fatalf("status %v / %v, want Optimal", direct.Status, presolved.Status)
	}
	if math.Abs(direct.Objective-presolved.Objective) > 1e-6 {
		t.Errorf("objective %g != %g", direct.Objective, presolved.Objective)
	}
	if presolved.X[0] < 1-intTol {
		t.Errorf("pinned item not in solution: x[0] = %g", presolved.X[0])
	}
	// Forcing item 0 (weight 10) leaves room for item 2 or 1 but not
	// both: best is 60 + 120 = 180.
	if math.Abs(presolved.Objective-180) > 1e-6 {
		t.Errorf("objective %g, want 180", presolved.Objective)
	}
}

// TestPresolveInfeasibleRoot: an infeasible root must be detected by the
// reductions alone and reported without any node solves.
func TestPresolveInfeasibleRoot(t *testing.T) {
	p := lp.NewProblem(2)
	p.SetObjCoef(0, 1)
	p.SetBounds(0, 0, 1)
	p.SetBounds(1, 0, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.GE, 5)
	res, err := Solve(&Problem{LP: p, Integers: []int{0, 1}}, Options{LP: lp.Options{Presolve: lp.PresolveOn}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status %v, want Infeasible", res.Status)
	}
	if res.Nodes != 0 {
		t.Errorf("presolve-detected infeasibility explored %d nodes, want 0", res.Nodes)
	}
}
