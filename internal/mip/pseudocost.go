package mip

// Pseudo-cost / reliability branching (see Options.Branching). A node's
// pseudo-cost estimates come exclusively from its own ancestry — the
// immutable pcObs chain inherited parent→child plus the strong-branching
// probes run at the node itself — never from a shared store, so the shape
// of the search tree is a function of the tree alone and incumbents stay
// bit-identical at any Options.Workers setting.
//
// Reliability rule: a candidate whose up or down direction has no
// observation yet is "unreliable"; the most fractional unreliable
// candidates are probed by bounded dual-simplex re-solves from the node's
// own optimal basis (Workspace.SolveFrom with a small pivot budget — the
// non-publishing warm path, so probes cost no basis copy-outs). Probes pay
// twice: their objectives become pseudo-cost observations AND valid child
// bounds (a truncated probe that stayed in the dual phase is still dual
// feasible, see lp.Solution.DualFeasible), and a probe that proves a
// direction infeasible removes that child outright — or the whole node,
// when both directions die.

import (
	"math"

	"repro/internal/lp"
)

const (
	// pcEps floors the per-direction score in the product rule so one
	// zero-degradation direction cannot erase the other's signal.
	pcEps = 1e-4
	// probeMaxCands caps how many unreliable candidates one node probes.
	probeMaxCands = 32
	// probePivots is the dual-simplex pivot budget per probe direction.
	probePivots = 40
)

// branchPick is the branching decision selectBranch returns for one node.
// v == -1 means the relaxation is integral. downBound/upBound are upper
// bounds on the child subtrees (+Inf when no probe tightened them), and
// the infeasibility flags mark probe-proven dead directions. pc is the
// node's observation chain extended with this node's probe results; the
// children inherit it.
type branchPick struct {
	v                    int
	val                  float64
	downBound, upBound   float64
	downInfeas, upInfeas bool
	pc                   *pcObs
}

// pcCand is one fractional branching candidate during selection.
type pcCand struct {
	v          int
	val, dist  float64
	downObj    float64 // probe objective (valid upper bound), NaN if none
	upObj      float64
	downInf    bool
	upInf      bool
	unreliable bool
	tried      bool // already selected for probing this node
}

// branchScratch is one worker's private selection scratch: per-variable
// accumulators written by walking the node's observation chain and zeroed
// by walking it again (O(depth), no O(nVars) clear per node), plus the
// reusable candidate list.
type branchScratch struct {
	dnSum, upSum []float64
	dnCnt, upCnt []int
	cands        []pcCand
}

// newBranchScratch sizes a worker's scratch for an nVars-variable problem.
func newBranchScratch(nVars int) *branchScratch {
	return &branchScratch{
		dnSum: make([]float64, nVars),
		upSum: make([]float64, nVars),
		dnCnt: make([]int, nVars),
		upCnt: make([]int, nVars),
	}
}

// selectBranch picks the branching variable for a node whose relaxation
// solved to sol. basis is the node's own optimal basis (nil disables
// probing: probes need a dual-feasible warm start). The worker's scratch
// arrays are dirty only between the two chain walks inside this call.
//
//lint:hotpath=bounded candidate collection reuses worker scratch; probes allocate one extra overlay per probing node
func (s *searcher) selectBranch(nd *node, sol *lp.Solution, basis *lp.Basis, scr *branchScratch, ws *lp.Workspace) branchPick {
	if s.branch == BranchMostFractional {
		v := s.mostFractional(sol.X)
		pick := branchPick{v: v, downBound: math.Inf(1), upBound: math.Inf(1), pc: nd.pc}
		if v >= 0 {
			pick.val = sol.X[v]
		}
		return pick
	}

	// Fractional candidates, in Integers order (deterministic).
	cands := scr.cands[:0]
	for _, v := range s.prob.Integers {
		f := sol.X[v] - math.Floor(sol.X[v])
		dist := math.Min(f, 1-f)
		if dist > intTol {
			cands = append(cands, pcCand{
				v: v, val: sol.X[v], dist: dist,
				downObj: math.NaN(), upObj: math.NaN(),
			})
		}
	}
	scr.cands = cands
	if len(cands) == 0 {
		return branchPick{v: -1, pc: nd.pc}
	}

	// Accumulate the inherited observation chain into the per-variable
	// scratch. totalSum/totalCnt feed the fallback estimate for directions
	// with no observation of their own.
	chain := nd.pc
	var totalSum float64
	totalCnt := 0
	for o := chain; o != nil; o = o.prev {
		if o.dir == 0 {
			scr.dnSum[o.v] += o.delta
			scr.dnCnt[o.v]++
		} else {
			scr.upSum[o.v] += o.delta
			scr.upCnt[o.v]++
		}
		totalSum += o.delta
		totalCnt++
	}
	for i := range cands {
		c := &cands[i]
		c.unreliable = scr.dnCnt[c.v] == 0 || scr.upCnt[c.v] == 0
	}

	// Strong-branching probes on the most fractional unreliable
	// candidates. Everything a probe learns is appended to the chain, so
	// the estimates below and every descendant see it.
	probes := 0
	if s.branch == BranchReliability && basis != nil {
		var pp *lp.Problem
		probeOpts := s.opts.LP
		probeOpts.Deadline = s.opts.Deadline
		probeOpts.MaxIters = probePivots
		probed := 0
		for probed < probeMaxCands {
			// Next unprobed unreliable candidate by fractionality (tie:
			// lower variable index) — selection, like everything here,
			// depends only on node-local data.
			best := -1
			for i := range cands {
				c := &cands[i]
				if !c.unreliable || c.tried {
					continue
				}
				if best == -1 || c.dist > cands[best].dist ||
					//lint:ignore floatcmp deterministic tie-break on exact equality; tolerance would make probe order basis-dependent
					(c.dist == cands[best].dist && c.v < cands[best].v) {
					best = i
				}
			}
			if best == -1 {
				break
			}
			c := &cands[best]
			c.tried = true
			probed++
			if pp == nil {
				ok := false
				if pp, ok = s.nodeProblem(nd, nil); !ok {
					break // cannot happen: the node just solved feasible
				}
			}
			lo, hi := pp.Bounds(c.v)
			// Down probe: v <= floor(val).
			if math.Floor(c.val) < lo {
				c.downInf = true
			} else {
				pp.SetBounds(c.v, lo, math.Floor(c.val))
				obj, status, dualFeas := probeSolve(ws, pp, basis, probeOpts)
				pp.SetBounds(c.v, lo, hi)
				probes++
				switch {
				case status == lp.Infeasible:
					c.downInf = true
				case dualFeas:
					c.downObj = obj
					delta := math.Max(0, sol.Objective-obj) / c.dist
					chain = &pcObs{v: c.v, dir: 0, delta: delta, prev: chain}
					scr.dnSum[c.v] += delta
					scr.dnCnt[c.v]++
					totalSum += delta
					totalCnt++
				}
			}
			// Up probe: v >= ceil(val).
			if math.Ceil(c.val) > hi {
				c.upInf = true
			} else {
				pp.SetBounds(c.v, math.Ceil(c.val), hi)
				obj, status, dualFeas := probeSolve(ws, pp, basis, probeOpts)
				pp.SetBounds(c.v, lo, hi)
				probes++
				switch {
				case status == lp.Infeasible:
					c.upInf = true
				case dualFeas:
					c.upObj = obj
					delta := math.Max(0, sol.Objective-obj) / (1 - c.dist)
					chain = &pcObs{v: c.v, dir: 1, delta: delta, prev: chain}
					scr.upSum[c.v] += delta
					scr.upCnt[c.v]++
					totalSum += delta
					totalCnt++
				}
			}
			if c.downInf || c.upInf {
				// A dead direction beats any score: branching here either
				// prunes the node (both dead) or advances it for free (one
				// child, with the variable effectively fixed).
				break
			}
		}
	}
	if probes > 0 {
		s.mu.Lock()
		s.strongBranches += probes
		s.mu.Unlock()
	}

	// Score and select. With no observations anywhere the product rule is
	// flat, so fall back to pure fractionality — the legacy rule.
	best := -1
	var bestScore float64
	for i := range cands {
		c := &cands[i]
		if c.downInf || c.upInf {
			best = i
			break
		}
		var score float64
		if totalCnt == 0 {
			score = c.dist
		} else {
			avg := totalSum / float64(totalCnt)
			dEst, uEst := avg, avg
			if scr.dnCnt[c.v] > 0 {
				dEst = scr.dnSum[c.v] / float64(scr.dnCnt[c.v])
			}
			if scr.upCnt[c.v] > 0 {
				uEst = scr.upSum[c.v] / float64(scr.upCnt[c.v])
			}
			score = math.Max(dEst*c.dist, pcEps) * math.Max(uEst*(1-c.dist), pcEps)
		}
		if best == -1 || score > bestScore {
			best, bestScore = i, score
		}
	}

	// Zero the scratch by walking the (extended) chain: every touched
	// accumulator entry was written through it.
	for o := chain; o != nil; o = o.prev {
		scr.dnSum[o.v], scr.dnCnt[o.v] = 0, 0
		scr.upSum[o.v], scr.upCnt[o.v] = 0, 0
	}

	c := &cands[best]
	pick := branchPick{
		v: c.v, val: c.val,
		downBound: math.Inf(1), upBound: math.Inf(1),
		downInfeas: c.downInf, upInfeas: c.upInf,
		pc: chain,
	}
	if !math.IsNaN(c.downObj) {
		pick.downBound = c.downObj
	}
	if !math.IsNaN(c.upObj) {
		pick.upBound = c.upObj
	}
	return pick
}

// probeSolve runs one bounded strong-branching probe: a non-publishing
// warm solve whose Solution aliases the workspace, so only the scalars
// survive the call. dualFeas reports that obj is a valid upper bound on
// the probed subtree (Optimal, or truncated inside the dual phase).
//
//lint:hotpath=bounded the probe solve itself reuses the worker workspace; only scalars are copied out
func probeSolve(ws *lp.Workspace, pp *lp.Problem, basis *lp.Basis, opts lp.Options) (obj float64, status lp.Status, dualFeas bool) {
	sol, err := ws.SolveFrom(pp, basis, opts)
	if err != nil {
		return 0, lp.IterLimit, false
	}
	return sol.Objective, sol.Status, sol.DualFeasible
}
