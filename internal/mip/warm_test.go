package mip

// Cross-solve warm state tests: export/import round trips over mutated
// problems must reach the same optimum a cold solve finds, legacy solves
// must be unaffected by export, and the warm path must stay deterministic.

import (
	"math"
	"testing"

	"repro/internal/lp"
	"repro/internal/rng"
)

// warmKnapsack builds a GUB-structured knapsack that exercises the cut
// separator: pairs (x_2k, x_2k+1) with Σ = 1 rows and a shared capacity.
func warmKnapsack(seed int64) *Problem {
	src := rng.New(seed, "mip-warm")
	const groups = 5
	n := 2 * groups
	p := lp.NewProblem(n)
	var capTerms []lp.Term
	for i := 0; i < n; i++ {
		p.SetObjCoef(i, src.Uniform(1, 20))
		p.SetBounds(i, 0, 1)
		capTerms = append(capTerms, lp.Term{Var: i, Coef: src.Uniform(1, 10)})
	}
	for g := 0; g < groups; g++ {
		p.AddConstraint([]lp.Term{{Var: 2 * g, Coef: 1}, {Var: 2*g + 1, Coef: 1}}, lp.LE, 1)
	}
	var total float64
	for _, t := range capTerms {
		total += t.Coef
	}
	p.AddConstraint(capTerms, lp.LE, total*0.4)
	ints := make([]int, n)
	for i := range ints {
		ints[i] = i
	}
	return &Problem{LP: p, Integers: ints}
}

func solveMIP(t *testing.T, p *Problem, opts Options) *Result {
	t.Helper()
	res, err := Solve(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Export must not change what the solver returns.
func TestExportWarmIsObservationally(t *testing.T) {
	p := warmKnapsack(7)
	plain := solveMIP(t, p, Options{})
	exported := solveMIP(t, p, Options{ExportWarm: true})
	if !sameSolution(plain, exported) {
		t.Fatal("ExportWarm changed the solution")
	}
	if exported.Warm == nil {
		t.Fatal("no warm state exported")
	}
	w := exported.Warm
	if w.RootBasis == nil {
		t.Error("exported state has no root basis")
	}
	if w.BaseRows != p.LP.NumConstraints() {
		t.Errorf("BaseRows = %d, want %d", w.BaseRows, p.LP.NumConstraints())
	}
	if len(w.Cuts) != exported.Cuts {
		t.Errorf("exported %d cuts, Result.Cuts = %d", len(w.Cuts), exported.Cuts)
	}
	if plain.Warm != nil {
		t.Error("warm state exported without ExportWarm")
	}
}

// Round trip on the unchanged problem: importing the exported state must
// reproduce the optimum, with the root relaxation warm-started.
func TestWarmRoundTripUnchanged(t *testing.T) {
	p := warmKnapsack(11)
	first := solveMIP(t, p, Options{ExportWarm: true})
	if first.Warm == nil {
		t.Fatal("no warm state")
	}
	second := solveMIP(t, p, Options{Warm: first.Warm, ExportWarm: true})
	if second.Status != Optimal {
		t.Fatalf("warm re-solve status = %v", second.Status)
	}
	if math.Abs(second.Objective-first.Objective) > 1e-9 {
		t.Errorf("warm objective %g, want %g", second.Objective, first.Objective)
	}
	if second.Warm == nil {
		t.Error("chained export missing")
	}
}

// Warm import over a sequence of problem mutations — RHS edits, column
// deactivation, appended variables and rows — must match a cold solve on
// every step, chaining each step's export into the next import.
func TestWarmAcrossMutations(t *testing.T) {
	p := warmKnapsack(3)
	capRow := p.LP.NumConstraints() - 1
	res := solveMIP(t, p, Options{ExportWarm: true})
	warm := res.Warm

	step := func(name string, mutate func()) {
		t.Helper()
		mutate()
		warmRes := solveMIP(t, p, Options{Warm: warm, ExportWarm: true})
		coldRes := solveMIP(t, &Problem{LP: p.LP.Clone(), Integers: p.Integers}, Options{})
		if warmRes.Status != coldRes.Status {
			t.Fatalf("%s: warm status %v, cold %v", name, warmRes.Status, coldRes.Status)
		}
		if coldRes.Status == Optimal && math.Abs(warmRes.Objective-coldRes.Objective) > 1e-7*(1+math.Abs(coldRes.Objective)) {
			t.Errorf("%s: warm objective %g, cold %g", name, warmRes.Objective, coldRes.Objective)
		}
		warm = warmRes.Warm
	}

	step("tighten capacity", func() { p.LP.SetRHS(capRow, 12) })
	step("deactivate a column", func() { p.LP.Deactivate(3) })
	step("relax capacity, pool dropped", func() {
		p.LP.SetRHS(capRow, 28)
		// A capacity increase invalidates cover-style cuts: the importer's
		// side of the WarmState contract.
		warm = &WarmState{RootBasis: warm.RootBasis, BaseRows: warm.BaseRows, Obs: warm.Obs}
	})
	step("append a variable into the capacity row", func() {
		v := p.LP.AddVariables(1)
		p.LP.SetObjCoef(v, 9)
		p.LP.SetBounds(v, 0, 1)
		p.LP.AppendTerms(capRow, []lp.Term{{Var: v, Coef: 4}})
		p.LP.AddConstraint([]lp.Term{{Var: v, Coef: 1}, {Var: 0, Coef: 1}}, lp.LE, 1)
		ints := append(append([]int(nil), p.Integers...), v)
		p = &Problem{LP: p.LP, Integers: ints}
		// New rows shift nothing (appended after the warm snapshot's rows),
		// so the state imports as-is.
	})
}

// The warm path must stay deterministic across worker counts.
func TestWarmDeterministicAcrossWorkers(t *testing.T) {
	p := warmKnapsack(19)
	first := solveMIP(t, p, Options{ExportWarm: true})
	p.LP.SetRHS(p.LP.NumConstraints()-1, 14)
	var base *Result
	for _, workers := range []int{1, 4, 8} {
		res := solveMIP(t, p, Options{Warm: first.Warm, Workers: workers})
		if base == nil {
			base = res
		} else if !sameSolution(base, res) {
			t.Fatalf("workers=%d diverged from workers=1", workers)
		}
	}
}

// A caller-owned workspace (Workers <= 1) must not change the result.
func TestWarmCallerWorkspace(t *testing.T) {
	p := warmKnapsack(23)
	ws := lp.NewWorkspace()
	plain := solveMIP(t, p, Options{})
	withWS := solveMIP(t, p, Options{Workspace: ws})
	if !sameSolution(plain, withWS) {
		t.Fatal("caller workspace changed the solution")
	}
	// And reusing it across consecutive warm re-solves stays correct.
	first := solveMIP(t, p, Options{Workspace: ws, ExportWarm: true})
	p.LP.SetRHS(p.LP.NumConstraints()-1, 13)
	warmRes := solveMIP(t, p, Options{Workspace: ws, Warm: first.Warm})
	coldRes := solveMIP(t, &Problem{LP: p.LP.Clone(), Integers: p.Integers}, Options{})
	if math.Abs(warmRes.Objective-coldRes.Objective) > 1e-9 {
		t.Errorf("workspace warm objective %g, cold %g", warmRes.Objective, coldRes.Objective)
	}
	_ = first
}

// An obviously stale basis (over more rows than the problem ever had) must
// degrade to a cold root solve, not fail.
func TestWarmNonAdoptableFallsBack(t *testing.T) {
	p := warmKnapsack(29)
	res := solveMIP(t, p, Options{ExportWarm: true})
	w := *res.Warm
	w.BaseRows = 2 // misdeclare the layout: the adapted basis may be rejected
	warmRes := solveMIP(t, p, Options{Warm: &w})
	cold := solveMIP(t, p, Options{})
	if warmRes.Status != Optimal || math.Abs(warmRes.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("mis-declared warm state: status %v objective %g, want optimal %g",
			warmRes.Status, warmRes.Objective, cold.Objective)
	}
}
