package mip

// Cutting planes for the branch-and-cut search (see the package comment
// and Options.Cuts). Three families, all derived from root-problem data
// only — so every cut is valid at every node of the tree:
//
//   - Cover cuts from knapsack rows: a <=-row whose binary items cannot
//     all be at their "heavy" value. Negative-coefficient binaries are
//     complemented (y'' = 1-y) and non-binary terms are shifted to the
//     right-hand side by their bounds, giving a pure binary knapsack
//     relaxation Σ w_j y''_j <= cap with w_j > 0. A cover C (Σ_C w > cap)
//     yields Σ_C y'' <= |C|-1, extended by every item at least as heavy
//     as the heaviest cover member.
//   - GUB cover cuts: when the knapsack's items belong to
//     one-of-a-group assignment rows (Σ_G y <= 1, the DSCT-EA
//     one-machine-per-task structure), a cover built from per-group
//     representatives lifts each representative to every group member at
//     least as heavy — stronger than the plain cover because the GUB row
//     caps each group's contribution at one.
//   - VUB strengthening cuts: a variable upper bound t <= U·x (the
//     DSCT-EA deadline links t_jr <= d_j·x_jr) with x binary is
//     strengthened to t <= u·x when t's own upper bound u < U — valid for
//     every integer point, violated by fractional x that the weaker link
//     admits.
//
// The separator detects this structure once, at root construction, from
// the LP rows themselves (builder hints via Problem.Structure seed the
// scan); singleton rows are folded into effective variable bounds first so
// row-encoded binaries (x <= 1 as a row, not a box) are recognised. The
// root loop then alternates separate → append → dual-simplex re-optimise
// (appended rows enter with their logical columns basic, so the warm
// re-solve is a few dual pivots), keeps the violation-ranked top slice per
// round, and before the dive drops every cut that ended up slack at the
// final root optimum. Under CutsTree the same separator runs at shallow
// tree nodes on the node's own fractional optimum.

import (
	"math"
	"sort"
	"time"

	"repro/internal/lp"
)

// Cut-layer tuning. The bounds are deliberately small: cuts pay off by
// shrinking the tree, and a handful of strong rows beats a dense pool that
// slows every node solve.
const (
	// cutTol is the minimum (scaled) violation for a cut to be emitted.
	cutTol = 1e-6
	// cutSlackTol: cuts with more slack than this at the final root
	// optimum are dropped before the dive.
	cutSlackTol = 1e-7
	// cutMaxRounds caps root separate→re-optimise rounds.
	cutMaxRounds = 8
	// cutsPerRound caps the violation-ranked cuts appended per root round.
	cutsPerRound = 32
	// cutStallTol: relative root-bound improvement below which the loop
	// stops (tailing off).
	cutStallTol = 1e-9
	// cutTreeDepth is the deepest tree level CutsTree separates at.
	cutTreeDepth = 2
	// treeCutsPerNode caps the cuts a single shallow node may add.
	treeCutsPerNode = 8
	// maxPlunge bounds how many consecutive children a worker dives onto
	// before returning to the global best-bound queue.
	maxPlunge = 8
)

// cut is one valid inequality terms·x <= rhs.
type cut struct {
	terms []lp.Term
	rhs   float64
}

// knapRow is a pure binary knapsack relaxation of one constraint row:
// Σ w_i · y”_i <= cap over complemented binaries (y” = 1-y when comp),
// with every w_i > 0 and non-binary terms already shifted into cap.
type knapRow struct {
	vars []int
	w    []float64
	comp []bool
	cap  float64
	// pure marks rows with no complemented item: only those admit the GUB
	// cover argument (a complemented item inverts what "chosen" means, so
	// the one-per-group cap no longer bounds the complemented sum).
	pure bool
}

// separator holds the structure detected at root construction. Detection
// fields are immutable after newSeparator returns; separate() keeps its
// scratch local, so concurrent workers may share one separator.
type separator struct {
	nVars  int
	binary []bool // integer variable with effective box inside [0,1]
	gubOf  []int  // variable -> GUB group id, -1 when ungrouped
	knaps  []knapRow
	vubs   []VUB // strengthened links: emit Cont - U·Bin <= 0 (U already tightened)
}

// active reports whether any cut family found structure to separate from.
func (s *separator) active() bool {
	return len(s.knaps) > 0 || len(s.vubs) > 0
}

// newSeparator scans p's rows for the three cut families. hint, when
// non-nil, names builder-known budget/GUB/VUB rows which are processed
// first; the generic scan then covers everything else, so hints never
// reduce what is found. integers indexes p's integer variables.
func newSeparator(p *lp.Problem, integers []int, hint *Structure) *separator {
	n := p.NumVars()
	m := p.NumConstraints()
	s := &separator{nVars: n}
	isInt := make([]bool, n)
	for _, v := range integers {
		isInt[v] = true
	}

	// Accumulate every row into distinct-variable form once (AddConstraint
	// permits repeated variables) and fold singleton rows into effective
	// variable bounds, so binaries encoded as x <= 1 rows are recognised
	// and non-binary knapsack terms shift by their tightest known bounds.
	effLo := make([]float64, n)
	effHi := make([]float64, n)
	for v := 0; v < n; v++ {
		effLo[v], effHi[v] = p.Bounds(v)
	}
	rowVars := make([][]int, m)
	rowCoefs := make([][]float64, m)
	rowSense := make([]lp.Sense, m)
	rowRhs := make([]float64, m)
	acc := make([]float64, n)
	seen := make([]bool, n)
	for i := 0; i < m; i++ {
		terms, sense, rhs := p.Constraint(i)
		vars := make([]int, 0, len(terms))
		for _, t := range terms {
			if !seen[t.Var] {
				seen[t.Var] = true
				vars = append(vars, t.Var)
			}
			acc[t.Var] += t.Coef
		}
		coefs := make([]float64, 0, len(vars))
		kept := vars[:0]
		for _, v := range vars {
			c := acc[v]
			acc[v] = 0
			seen[v] = false
			if c != 0 {
				kept = append(kept, v)
				coefs = append(coefs, c)
			}
		}
		rowVars[i], rowCoefs[i], rowSense[i], rowRhs[i] = kept, coefs, sense, rhs
		if len(kept) == 1 {
			v, c := kept[0], coefs[0]
			lo, hi := rhs/c, rhs/c
			switch sense {
			case lp.LE:
				if c > 0 {
					effHi[v] = math.Min(effHi[v], hi)
				} else {
					effLo[v] = math.Max(effLo[v], lo)
				}
			case lp.GE:
				if c > 0 {
					effLo[v] = math.Max(effLo[v], lo)
				} else {
					effHi[v] = math.Min(effHi[v], hi)
				}
			case lp.EQ:
				effLo[v] = math.Max(effLo[v], lo)
				effHi[v] = math.Min(effHi[v], hi)
			}
		}
	}
	s.binary = make([]bool, n)
	for v := 0; v < n; v++ {
		s.binary[v] = isInt[v] && effLo[v] >= -intTol && effHi[v] <= 1+intTol
	}

	// GUB groups: rows Σ c·x {<=,=} c over >= 2 binaries with one shared
	// positive coefficient (the ratio form survives the presolver's
	// power-of-two row scaling). Builder-hinted rows first, then the scan;
	// each variable joins at most one group.
	s.gubOf = make([]int, n)
	for v := range s.gubOf {
		s.gubOf[v] = -1
	}
	consumed := make([]bool, m)
	gubRow := func(i int) {
		if i < 0 || i >= m || consumed[i] {
			return
		}
		vars, coefs := rowVars[i], rowCoefs[i]
		if len(vars) < 2 || rowSense[i] == lp.GE {
			return
		}
		c := coefs[0]
		if c <= 0 || math.Abs(rowRhs[i]-c) > 1e-9*math.Max(1, c) {
			return
		}
		for k, v := range vars {
			if !s.binary[v] || math.Abs(coefs[k]-c) > 1e-9*c {
				return
			}
		}
		gid := -1
		for _, v := range vars {
			if s.gubOf[v] == -1 {
				if gid == -1 {
					gid = i // group ids only need to be distinct; the row index is
				}
				s.gubOf[v] = gid
			}
		}
		consumed[i] = true
	}
	if hint != nil {
		for _, i := range hint.GUBRows {
			gubRow(i)
		}
	}
	for i := 0; i < m; i++ {
		gubRow(i)
	}

	// Knapsack relaxations: any remaining multi-variable row normalised to
	// <= (GE rows negate; EQ rows contribute their <= half), binaries kept
	// as complemented items, everything else shifted into the capacity by
	// its effective bounds. Rows whose shift is unbounded, with fewer than
	// two items, or whose items cannot overflow the capacity are useless
	// and skipped — notably the DSCT-EA energy row, whose terms are all
	// continuous, never yields a cover.
	knapRowFrom := func(i int) {
		if i < 0 || i >= m || consumed[i] {
			return
		}
		vars, coefs := rowVars[i], rowCoefs[i]
		if len(vars) < 2 {
			return
		}
		sign := 1.0
		if rowSense[i] == lp.GE {
			sign = -1
		}
		cap := sign * rowRhs[i]
		kr := knapRow{pure: true}
		for k, v := range vars {
			c := sign * coefs[k]
			if s.binary[v] {
				if c > 0 {
					kr.vars = append(kr.vars, v)
					kr.w = append(kr.w, c)
					kr.comp = append(kr.comp, false)
				} else {
					// c·y = c - c·(1-y): complement and move c to the rhs.
					kr.vars = append(kr.vars, v)
					kr.w = append(kr.w, -c)
					kr.comp = append(kr.comp, true)
					kr.pure = false
					cap -= c
				}
				continue
			}
			shift := math.Min(c*effLo[v], c*effHi[v])
			if math.IsInf(shift, -1) {
				return // unbounded term: no valid binary relaxation
			}
			cap -= shift
		}
		if len(kr.vars) < 2 || math.IsInf(cap, 1) || math.IsNaN(cap) {
			return
		}
		var sumW float64
		for _, w := range kr.w {
			sumW += w
		}
		if sumW <= cap+1e-9 {
			return // no cover can exist
		}
		kr.cap = cap
		s.knaps = append(s.knaps, kr)
		consumed[i] = true
	}
	if hint != nil {
		for _, i := range hint.BudgetRows {
			knapRowFrom(i)
		}
	}
	for i := 0; i < m; i++ {
		if rowSense[i] != lp.EQ { // EQ rows are rarely knapsacks; GUBs already taken
			knapRowFrom(i)
		}
	}

	// VUB strengthening candidates: hinted links first, then two-term rows
	// a·t - b·x <= 0 (a,b > 0, x binary, t not). Strengthen U = b/a down to
	// t's effective upper bound when that is strictly tighter.
	haveVUB := make(map[int]bool, 16) // membership only; never iterated
	addVUB := func(cont, bin int, u float64) {
		if cont < 0 || cont >= n || bin < 0 || bin >= n || !s.binary[bin] || s.binary[cont] {
			return
		}
		uNew := effHi[cont]
		if math.IsInf(uNew, 1) || uNew < 0 || uNew >= u*(1-1e-9) {
			return
		}
		key := cont*n + bin
		if haveVUB[key] {
			return
		}
		haveVUB[key] = true
		s.vubs = append(s.vubs, VUB{Cont: cont, Bin: bin, U: uNew})
	}
	if hint != nil {
		for _, vb := range hint.VUBs {
			addVUB(vb.Cont, vb.Bin, vb.U)
		}
	}
	for i := 0; i < m; i++ {
		vars, coefs := rowVars[i], rowCoefs[i]
		if len(vars) != 2 || rowSense[i] == lp.EQ {
			continue
		}
		sign := 1.0
		if rowSense[i] == lp.GE {
			sign = -1
		}
		if math.Abs(rowRhs[i]) > 1e-9 {
			continue
		}
		a0, a1 := sign*coefs[0], sign*coefs[1]
		if a0 > 0 && a1 < 0 {
			addVUB(vars[0], vars[1], -a1/a0)
		} else if a1 > 0 && a0 < 0 {
			addVUB(vars[1], vars[0], -a0/a1)
		}
	}
	return s
}

// separate returns up to maxCuts inequalities violated at x, ranked by
// violation (ties keep generation order, which is deterministic). The
// detection structures are read-only; all scratch is call-local, so
// concurrent workers may call separate on a shared separator.
//
//lint:hotpath=bounded one separation round allocates its candidate and ordering scratch; it runs once per root round and once per shallow CutsTree node, never per deep node
func (s *separator) separate(x []float64, maxCuts int) []cut {
	type scored struct {
		c    cut
		viol float64
	}
	var cands []scored

	for _, vb := range s.vubs {
		viol := x[vb.Cont] - vb.U*x[vb.Bin]
		if viol > cutTol*(1+math.Abs(vb.U)) {
			cands = append(cands, scored{
				c:    cut{terms: []lp.Term{{Var: vb.Cont, Coef: 1}, {Var: vb.Bin, Coef: -vb.U}}, rhs: 0},
				viol: viol,
			})
		}
	}

	for ki := range s.knaps {
		kr := &s.knaps[ki]
		yv := make([]float64, len(kr.vars))
		ord := make([]int, len(kr.vars))
		for i, v := range kr.vars {
			val := x[v]
			if kr.comp[i] {
				val = 1 - val
			}
			yv[i] = math.Min(1, math.Max(0, val))
			ord[i] = i
		}
		// Greedy cover by decreasing complemented value: maximises the cut's
		// left-hand side at x, i.e. the violation of the cover found.
		//lint:ignore hotalloc the comparator closure is part of the per-round scratch the bounded budget covers
		sort.Slice(ord, func(a, b int) bool {
			ia, ib := ord[a], ord[b]
			//lint:ignore floatcmp comparator tie-break: tolerant comparison would break the strict weak ordering sort requires
			if yv[ia] != yv[ib] {
				return yv[ia] > yv[ib]
			}
			return ia < ib
		})
		if c := coverCut(kr, yv, ord); c.viol > cutTol {
			cands = append(cands, scored{c: c.c, viol: c.viol})
		}
		if kr.pure {
			if c := gubCoverCut(kr, s.gubOf, yv); c.viol > cutTol {
				cands = append(cands, scored{c: c.c, viol: c.viol})
			}
		}
	}

	if len(cands) == 0 {
		return nil
	}
	//lint:ignore hotalloc the ranking closure is part of the per-round scratch the bounded budget covers
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].viol > cands[j].viol })
	if len(cands) > maxCuts {
		cands = cands[:maxCuts]
	}
	out := make([]cut, len(cands))
	for i := range cands {
		out[i] = cands[i].c
	}
	return out
}

// coverCut builds the extended cover cut for one knapsack row, greedy over
// ord (items by decreasing y”). Returns viol <= 0 when no cover exists or
// the cut is satisfied at the current point.
func coverCut(kr *knapRow, yv []float64, ord []int) (res struct {
	c    cut
	viol float64
}) {
	var wsum, wmax float64
	cover := 0
	inCover := make([]bool, len(kr.vars))
	for _, i := range ord {
		inCover[i] = true
		cover++
		wsum += kr.w[i]
		if kr.w[i] > wmax {
			wmax = kr.w[i]
		}
		if wsum > kr.cap+1e-9 {
			break
		}
	}
	if wsum <= kr.cap+1e-9 {
		return // all items fit: no cover
	}
	// Extension: every item at least as heavy as the heaviest cover member
	// joins with coefficient 1 (the extended cover inequality).
	rhs := float64(cover - 1)
	var lhs float64
	terms := make([]lp.Term, 0, len(kr.vars))
	for i, v := range kr.vars {
		if !inCover[i] && kr.w[i] < wmax-1e-12 {
			continue
		}
		lhs += yv[i]
		if kr.comp[i] {
			terms = append(terms, lp.Term{Var: v, Coef: -1})
			rhs -= 1
		} else {
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
	}
	res.viol = lhs - float64(cover-1)
	res.c = cut{terms: terms, rhs: rhs}
	return
}

// gubCoverCut builds a GUB cover cut for a pure knapsack row whose items
// sit in one-per-group assignment rows: pick one representative per group
// (highest y”, breaking ties to the lowest item index), greedily cover
// the capacity with representatives, and lift each representative to every
// same-group item at least as heavy. Validity: if the cut's left-hand side
// reached the cover size, every representative's group would contribute a
// full unit at least as heavy as its representative, overflowing the
// capacity. Returns viol <= 0 when no such cover exists.
func gubCoverCut(kr *knapRow, gubOf []int, yv []float64) (res struct {
	c    cut
	viol float64
}) {
	nItems := len(kr.vars)
	// Group slots in first-encounter order (deterministic); singleton
	// groups for ungrouped items.
	slotOf := make(map[int]int, nItems) // group id -> slot; membership only, never iterated
	reps := make([]int, 0, nItems)      // slot -> representative item
	for i, v := range kr.vars {
		g := gubOf[v]
		if g == -1 {
			reps = append(reps, i) // its own group
			continue
		}
		if s, ok := slotOf[g]; ok {
			if yv[i] > yv[reps[s]] {
				reps[s] = i
			}
			continue
		}
		slotOf[g] = len(reps)
		reps = append(reps, i)
	}
	if len(reps) < 2 || len(slotOf) == 0 {
		return // no grouped item: the GUB cover degenerates to a plain cover
	}
	ord := make([]int, len(reps))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := reps[ord[a]], reps[ord[b]]
		//lint:ignore floatcmp comparator tie-break: tolerant comparison would break the strict weak ordering sort requires
		if yv[ia] != yv[ib] {
			return yv[ia] > yv[ib]
		}
		return ia < ib
	})
	var wsum float64
	cover := 0
	chosen := make([]int, 0, len(reps)) // representative items in the cover
	for _, s := range ord {
		i := reps[s]
		chosen = append(chosen, i)
		cover++
		wsum += kr.w[i]
		if wsum > kr.cap+1e-9 {
			break
		}
	}
	if wsum <= kr.cap+1e-9 {
		return
	}
	// Lift: representative i brings every item of its group (within this
	// row) whose weight is >= w_i. Groups are disjoint, so no item repeats.
	terms := make([]lp.Term, 0, nItems)
	var lhs float64
	for _, i := range chosen {
		gi := gubOf[kr.vars[i]]
		if gi == -1 {
			terms = append(terms, lp.Term{Var: kr.vars[i], Coef: 1})
			lhs += yv[i]
			continue
		}
		for j, v := range kr.vars {
			if gubOf[v] == gi && kr.w[j] >= kr.w[i]-1e-12 {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
				lhs += yv[j]
			}
		}
	}
	res.viol = lhs - float64(cover-1)
	res.c = cut{terms: terms, rhs: float64(cover - 1)}
	return
}

// rootCuts runs the root cutting loop on the searcher's (possibly
// presolved, possibly warm-imported) problem: solve the root relaxation —
// warm from the imported root basis when one was adopted — separate,
// append the violated top slice, warm re-optimise with the dual simplex,
// repeat until no violated cut is found, the bound stops moving, or the
// round budget is spent. Slack cuts (imported and fresh alike) are then
// dropped and s.prob is rebuilt as an overlay of the pre-cut base LP
// carrying the surviving pool, which every node relaxation inherits; in
// warm mode the final root basis is adapted to that kept-row layout and
// seeds the root node. Any solver trouble abandons the fresh cuts — the
// search then runs on the pre-loop root (imported pool included), never on
// a half-built one. ws is the caller's pre-search workspace.
func (s *searcher) rootCuts(sep *separator, ws *lp.Workspace) {
	lpOpts := s.opts.LP
	lpOpts.Deadline = s.opts.Deadline
	work := s.prob.LP.Overlay()
	var sol *lp.Solution
	var basis *lp.Basis
	var err error
	if s.rootFrom != nil && !s.opts.DisableWarmStart {
		sol, basis, err = ws.SolveBasisFrom(work, s.rootFrom, lpOpts)
		if err != nil {
			sol, basis, err = ws.SolveBasis(work, lpOpts)
		}
	} else {
		sol, basis, err = ws.SolveBasis(work, lpOpts)
	}
	if err != nil || sol.Status != lp.Optimal {
		return
	}
	s.noteRootRows(work.NumConstraints())
	imported := s.pool
	var fresh []cut
	prevObj := sol.Objective
	for round := 0; round < cutMaxRounds; round++ {
		//lint:ignore wallclock sanctioned deadline probe, once per root cutting round
		if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) {
			break
		}
		found := sep.separate(sol.X, cutsPerRound)
		if len(found) == 0 {
			break
		}
		for _, c := range found {
			work.AddConstraint(c.terms, lp.LE, c.rhs)
		}
		fresh = append(fresh, found...)
		s.cutRounds++
		var nsol *lp.Solution
		var nbasis *lp.Basis
		var nerr error
		if s.opts.DisableWarmStart || basis == nil {
			nsol, nbasis, nerr = ws.SolveBasis(work, lpOpts)
		} else {
			nsol, nbasis, nerr = ws.SolveBasisFrom(work, basis, lpOpts)
			if nerr != nil {
				nsol, nbasis, nerr = ws.SolveBasis(work, lpOpts)
			}
		}
		if nerr != nil {
			// Abandon the fresh cuts; the imported pool (already part of
			// s.prob) stays, but the loop's basis describes rows the search
			// will not carry, so the root node starts cold.
			s.rootFrom = nil
			return
		}
		s.noteRootRows(work.NumConstraints())
		if nsol.Status == lp.Infeasible {
			// The cuts are valid for every integer point, so an infeasible
			// cut LP proves integer infeasibility: keep the pool and let
			// the root node discover it.
			sol, basis = nsol, nil
			break
		}
		if nsol.Status != lp.Optimal {
			break // limit struck: stop cutting, keep what is proven valid
		}
		sol, basis = nsol, nbasis
		if prevObj-sol.Objective <= cutStallTol*(1+math.Abs(prevObj)) {
			break // tailing off
		}
		prevObj = sol.Objective
	}
	combined := imported
	if len(fresh) > 0 {
		combined = append(append(make([]cut, 0, len(imported)+len(fresh)), imported...), fresh...)
	}
	if len(combined) == 0 {
		if s.warmMode {
			s.rootFrom = basis // cut-free layout: directly adoptable
		}
		return
	}
	// Drop cuts that ended up slack at the final root optimum: they did
	// their work guiding the loop but would only burden every node solve.
	keep := make([]bool, len(combined))
	nKept := 0
	for k, c := range combined {
		if sol.X != nil {
			var act float64
			for _, t := range c.terms {
				act += t.Coef * sol.X[t.Var]
			}
			if act < c.rhs-cutSlackTol*(1+math.Abs(c.rhs)) {
				continue
			}
		}
		keep[k] = true
		nKept++
	}
	if nKept == 0 && !s.warmMode {
		return // nothing to carry and s.prob already is the base LP
	}
	kept := make([]cut, 0, nKept)
	aug := s.baseLP.Overlay()
	for k, c := range combined {
		if keep[k] {
			kept = append(kept, c)
			aug.AddConstraint(c.terms, lp.LE, c.rhs)
		}
	}
	s.prob = &Problem{LP: aug, Integers: s.prob.Integers, Structure: s.prob.Structure}
	s.pool = kept
	s.cutsKept = len(kept)
	s.rootFrom = nil
	if s.warmMode && basis != nil {
		// The loop's final basis describes [0, baseRows) plus the cut rows
		// present at its last successful solve; route the kept ones to their
		// positions in the rebuilt layout and drop the rest.
		rowMap := make([]int, basis.NumRows())
		pos := make([]int, len(combined))
		p := s.baseRows
		for k := range combined {
			if keep[k] {
				pos[k] = p
				p++
			} else {
				pos[k] = -1
			}
		}
		for i := range rowMap {
			switch {
			case i < s.baseRows:
				rowMap[i] = i
			case i-s.baseRows < len(combined):
				rowMap[i] = pos[i-s.baseRows]
			default:
				rowMap[i] = -1
			}
		}
		s.rootFrom = basis.AdaptRows(rowMap, s.baseRows+len(kept))
	}
}

// noteRootRows records a root cut-loop relaxation's row count in the
// MaxNodeRows high-water mark. The loop runs before any worker starts, so
// no lock is needed.
func (s *searcher) noteRootRows(rows int) {
	if rows > s.maxNodeRows {
		s.maxNodeRows = rows
	}
}
