// Package numeric provides small floating-point utilities shared across the
// repository: tolerant comparisons, compensated (Kahan) summation, clamping
// and interval helpers. All schedulers in this module operate on float64
// quantities spanning several orders of magnitude (GFLOPs, seconds, Joules),
// so a single, consistent tolerance discipline matters.
package numeric

import "math"

// Eps is the default absolute/relative tolerance used by the schedulers when
// comparing times, work amounts and energies.
const Eps = 1e-9

// Close reports whether a and b are equal within tolerance tol, using a
// mixed absolute/relative criterion: |a-b| <= tol * max(1, |a|, |b|).
func Close(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// CloseEps is Close with the default tolerance Eps.
func CloseEps(a, b float64) bool { return Close(a, b, Eps) }

// TestTol is the tolerance used by test assertions across the module. It is
// much tighter than Eps: test expectations are exactly representable or
// derived by a handful of arithmetic operations, so they should agree to
// within a few ulps — but never be compared with ==.
const TestTol = 1e-12

// AlmostEqual reports whether a and b agree within TestTol. It is the
// assertion helper tests should use instead of exact float equality (the
// floatcmp analyzer enforces this repo-wide).
func AlmostEqual(a, b float64) bool { return Close(a, b, TestTol) }

// LessEq reports whether a <= b within tolerance tol (a may exceed b by a
// scaled tol and still be considered <=).
func LessEq(a, b, tol float64) bool {
	if a <= b {
		return true
	}
	return Close(a, b, tol)
}

// LessEqEps is LessEq with the default tolerance Eps.
func LessEqEps(a, b float64) bool { return LessEq(a, b, Eps) }

// Positive reports whether x is meaningfully greater than zero at tolerance
// tol (scaled against 1 only, since the comparison target is zero).
func Positive(x, tol float64) bool { return x > tol }

// Clamp limits x to the interval [lo, hi]. It panics if lo > hi.
func Clamp(x, lo, hi float64) float64 {
	if lo > hi {
		panic("numeric: Clamp with lo > hi")
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// NonNeg returns x if it is positive and 0 otherwise. It is used to squash
// tiny negative residues produced by cancellation in slack computations.
func NonNeg(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// Sum returns the compensated (Kahan-Babuška) sum of xs. It is preferred
// over a plain loop wherever energies or times of many tasks accumulate.
func Sum(xs []float64) float64 {
	var s KahanSum
	for _, x := range xs {
		s.Add(x)
	}
	return s.Value()
}

// KahanSum is a compensated accumulator. The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// Add accumulates x.
func (k *KahanSum) Add(x float64) {
	y := x - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Value returns the current compensated sum.
func (k *KahanSum) Value() float64 { return k.sum }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// Min returns the smaller of a and b.
func Min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// IsFinite reports whether x is neither NaN nor ±Inf.
func IsFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}
