package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClose(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-10, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{1e12, 1e12 + 1, 1e-9, true}, // relative scaling kicks in
		{1e12, 1e12 + 1e5, 1e-9, false},
		{0, 1e-10, 1e-9, true},
		{0, 1e-6, 1e-9, false},
		{-5, -5, 1e-9, true},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Close(%g,%g,%g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestLessEq(t *testing.T) {
	if !LessEqEps(1, 2) {
		t.Error("1 <= 2 should hold")
	}
	if !LessEqEps(2, 2) {
		t.Error("2 <= 2 should hold")
	}
	if !LessEqEps(2+1e-12, 2) {
		t.Error("2+1e-12 <= 2 should hold within tolerance")
	}
	if LessEqEps(2.1, 2) {
		t.Error("2.1 <= 2 should not hold")
	}
	if !LessEq(1e12+10, 1e12, 1e-9) {
		t.Error("relative tolerance should accept 1e12+10 <= 1e12")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); !AlmostEqual(got, 3) {
		t.Errorf("Clamp(5,0,3) = %g", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp(-1,0,3) = %g", got)
	}
	if got := Clamp(2, 0, 3); !AlmostEqual(got, 2) {
		t.Errorf("Clamp(2,0,3) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp with lo > hi should panic")
		}
	}()
	Clamp(1, 3, 0)
}

func TestNonNeg(t *testing.T) {
	if NonNeg(-1e-15) != 0 {
		t.Error("tiny negative should squash to 0")
	}
	if !AlmostEqual(NonNeg(2), 2) {
		t.Error("positive should pass through")
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// Summing 1e8 + many tiny values loses precision with naive addition;
	// Kahan keeps it.
	var k KahanSum
	k.Add(1e8)
	const n = 1_000_000
	for i := 0; i < n; i++ {
		k.Add(1e-8)
	}
	want := 1e8 + n*1e-8
	if math.Abs(k.Value()-want) > 1e-6 {
		t.Errorf("Kahan sum = %.12f, want %.12f", k.Value(), want)
	}
}

func TestKahanReset(t *testing.T) {
	var k KahanSum
	k.Add(42)
	k.Reset()
	if k.Value() != 0 {
		t.Errorf("after Reset, Value = %g", k.Value())
	}
}

func TestSumMatchesNaiveOnModestInputs(t *testing.T) {
	f := func(xs []float64) bool {
		var naive float64
		for _, x := range xs {
			if !IsFinite(x) || math.Abs(x) > 1e6 {
				return true // skip pathological quick inputs
			}
			naive += x
		}
		return math.Abs(Sum(xs)-naive) <= 1e-6*math.Max(1, math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	if !AlmostEqual(Min(1, 2), 1) || !AlmostEqual(Min(2, 1), 1) {
		t.Error("Min broken")
	}
	if !AlmostEqual(Max(1, 2), 2) || !AlmostEqual(Max(2, 1), 2) {
		t.Error("Max broken")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.5) {
		t.Error("1.5 is finite")
	}
	if IsFinite(math.NaN()) || IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("NaN/Inf are not finite")
	}
}

func TestPositive(t *testing.T) {
	if Positive(1e-12, 1e-9) {
		t.Error("1e-12 should not be Positive at tol 1e-9")
	}
	if !Positive(1e-6, 1e-9) {
		t.Error("1e-6 should be Positive at tol 1e-9")
	}
}
