package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/task"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events), loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name     string            `json:"name"`
	Cat      string            `json:"cat"`
	Phase    string            `json:"ph"`
	TsMicros float64           `json:"ts"`
	DurMicro float64           `json:"dur"`
	PID      int               `json:"pid"`
	TID      int               `json:"tid"`
	Args     map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace exports the simulation trace in the Chrome trace-event
// JSON array format: one lane (tid) per machine, one complete event per
// task execution span, with work and deadline attached as args. Times are
// converted from seconds to microseconds as the format expects.
func (r *Result) WriteChromeTrace(w io.Writer, in *task.Instance) error {
	type open struct{ start float64 }
	pending := map[[2]int]open{}
	var events []chromeEvent
	for _, e := range r.Trace {
		key := [2]int{e.Machine, e.Task}
		switch e.Kind {
		case TaskStart:
			pending[key] = open{start: e.Time}
		case TaskFinish:
			o, ok := pending[key]
			if !ok {
				return fmt.Errorf("cluster: finish without start for machine %d task %d", e.Machine, e.Task)
			}
			delete(pending, key)
			name := fmt.Sprintf("t%d", e.Task)
			if tn := in.Tasks[e.Task].Name; tn != "" {
				name = tn
			}
			events = append(events, chromeEvent{
				Name:     name,
				Cat:      "task",
				Phase:    "X",
				TsMicros: o.start * 1e6,
				DurMicro: (e.Time - o.start) * 1e6,
				PID:      1,
				TID:      e.Machine,
				Args: map[string]string{
					"deadline_s":  fmt.Sprintf("%.6g", in.Tasks[e.Task].Deadline),
					"work_gflops": fmt.Sprintf("%.6g", r.WorkDone[e.Task]),
				},
			})
		}
	}
	if len(pending) != 0 {
		return fmt.Errorf("cluster: %d unterminated spans in trace", len(pending))
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
