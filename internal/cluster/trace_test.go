package cluster

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/approx"
)

func TestWriteChromeTrace(t *testing.T) {
	in := genInstance(t, 20, 12, 2)
	sol, err := approx.Solve(in, approx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, sol.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	// One complete event per (machine, task) execution span.
	want := len(res.Trace) / 2
	if len(events) != want {
		t.Errorf("%d events, want %d", len(events), want)
	}
	for _, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("unexpected phase %v", e["ph"])
		}
		if e["dur"].(float64) < 0 {
			t.Fatal("negative duration")
		}
		args := e["args"].(map[string]interface{})
		if args["deadline_s"] == "" || args["work_gflops"] == "" {
			t.Fatal("missing args")
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	in := genInstance(t, 21, 2, 1)
	res := &Result{}
	var buf bytes.Buffer
	if err := res.WriteChromeTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "null\n" && got != "[]\n" {
		t.Errorf("empty trace rendered %q", got)
	}
}
