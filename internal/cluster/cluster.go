// Package cluster is a discrete-event simulator of the machine cluster: it
// executes a planned schedule, machine by machine, producing an event
// trace, per-task completion times and delivered work, integrated energy
// consumption, and the list of deadline misses. It is the evaluation
// substrate the paper's experiments implicitly assume (schedules are
// executed, not just priced), and the module's end-to-end verification
// layer: a feasible schedule must replay with no misses and with exactly
// its planned energy.
//
// The simulator also supports failure injection — per-machine slowdown
// windows during which a machine delivers a fraction of its nominal speed
// while still drawing full power — and an optional deadline-abandon policy
// that stops a task at its deadline and moves on.
package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/schedule"
	"repro/internal/task"
)

// EventKind distinguishes trace entries.
type EventKind int

// Event kinds.
const (
	// TaskStart marks a task beginning execution on a machine.
	TaskStart EventKind = iota
	// TaskFinish marks a task completing (or being abandoned) on a machine.
	TaskFinish
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case TaskStart:
		return "start"
	case TaskFinish:
		return "finish"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one trace entry.
type Event struct {
	Time    float64
	Machine int
	Task    int
	Kind    EventKind
}

// Slowdown injects a speed degradation: during [From, To) machine Machine
// runs at Factor times its nominal speed (0 <= Factor < 1 models
// contention or thermal throttling; 0 is a full stall) while still drawing
// full power.
type Slowdown struct {
	Machine  int
	From, To float64
	Factor   float64
}

// Options tunes a simulation run.
type Options struct {
	// Slowdowns lists injected degradations. Overlapping windows on the
	// same machine are rejected.
	Slowdowns []Slowdown
	// AbandonAtDeadline stops a task when the simulated clock passes its
	// deadline (delivering only the work completed so far) instead of
	// letting it run long.
	AbandonAtDeadline bool
}

// Result is the outcome of a simulation.
type Result struct {
	// Trace is the merged event log in time order.
	Trace []Event
	// Completion[j] is the time task j finished on its last machine
	// (0 for tasks with no scheduled time).
	Completion []float64
	// WorkDone[j] is the work actually delivered to task j, in GFLOPs.
	WorkDone []float64
	// Missed lists the tasks that finished after their deadline (strictly,
	// beyond tolerance).
	Missed []int
	// Energy is the total energy drawn, in Joules (busy time × power,
	// including slowed execution).
	Energy float64
	// TotalAccuracy is Σ_j a_j(WorkDone_j).
	TotalAccuracy float64
}

// Run simulates schedule s for instance in. The schedule's shape must match
// the instance; it does not otherwise need to be feasible (that is the
// point: infeasibility shows up as misses).
func Run(in *task.Instance, s *schedule.Schedule, opts Options) (*Result, error) {
	n, m := in.N(), in.M()
	if s.N() != n || (n > 0 && s.M() != m) {
		return nil, fmt.Errorf("cluster: schedule shape %dx%d does not match instance %dx%d",
			s.N(), s.M(), n, m)
	}
	slow, err := slowdownIndex(m, opts.Slowdowns)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Completion: make([]float64, n),
		WorkDone:   make([]float64, n),
	}
	var energy numeric.KahanSum

	// Per-machine sweep; events are merged afterwards through a heap to
	// produce a globally time-ordered trace.
	var trace eventHeap
	for r := 0; r < m; r++ {
		clock := 0.0
		for j := 0; j < n; j++ {
			planned := s.Times[j][r]
			if planned <= 0 {
				continue
			}
			heap.Push(&trace, Event{Time: clock, Machine: r, Task: j, Kind: TaskStart})
			var limit float64 = math.Inf(1)
			if opts.AbandonAtDeadline {
				limit = in.Tasks[j].Deadline
			}
			end, delivered := executeOn(slow[r], clock, planned, limit)
			res.WorkDone[j] += delivered * in.Machines[r].Speed
			energy.Add((end - clock) * in.Machines[r].Power)
			clock = end
			heap.Push(&trace, Event{Time: clock, Machine: r, Task: j, Kind: TaskFinish})
			if clock > res.Completion[j] {
				res.Completion[j] = clock
			}
		}
	}
	for trace.Len() > 0 {
		res.Trace = append(res.Trace, heap.Pop(&trace).(Event))
	}

	for j := 0; j < n; j++ {
		if res.Completion[j] > in.Tasks[j].Deadline*(1+1e-9)+1e-9 {
			res.Missed = append(res.Missed, j)
		}
	}
	res.Energy = energy.Value()
	var acc numeric.KahanSum
	for j, tk := range in.Tasks {
		acc.Add(tk.Acc.Eval(res.WorkDone[j]))
	}
	res.TotalAccuracy = acc.Value()
	return res, nil
}

// executeOn runs `planned` seconds of nominal work starting at `start` on a
// machine with the given slowdown windows, stopping at wall-clock `limit`
// if reached. It returns the wall-clock end time and the nominal seconds of
// work delivered.
func executeOn(windows []Slowdown, start, planned, limit float64) (end, delivered float64) {
	clock := start
	remaining := planned
	for remaining > 1e-15 && clock < limit {
		factor, until := speedAt(windows, clock)
		horizon := math.Min(until, limit)
		if factor <= 0 {
			// Full stall: burn wall-clock until the window ends (or limit).
			clock = horizon
			continue
		}
		// Wall time to finish the remaining nominal work at this factor.
		need := remaining / factor
		if clock+need <= horizon {
			clock += need
			delivered += remaining
			remaining = 0
			break
		}
		span := horizon - clock
		delivered += span * factor
		remaining -= span * factor
		clock = horizon
	}
	return clock, delivered
}

// speedAt returns the speed factor at time t and the time at which the
// factor next changes.
func speedAt(windows []Slowdown, t float64) (factor, until float64) {
	factor, until = 1.0, math.Inf(1)
	for _, w := range windows {
		if t >= w.From && t < w.To {
			return w.Factor, w.To
		}
		if w.From > t && w.From < until {
			until = w.From
		}
	}
	return factor, until
}

// slowdownIndex groups and validates the injected windows per machine.
func slowdownIndex(m int, all []Slowdown) ([][]Slowdown, error) {
	idx := make([][]Slowdown, m)
	for _, w := range all {
		if w.Machine < 0 || w.Machine >= m {
			return nil, fmt.Errorf("cluster: slowdown for unknown machine %d", w.Machine)
		}
		if w.To <= w.From || w.From < 0 {
			return nil, fmt.Errorf("cluster: slowdown window [%g, %g) invalid", w.From, w.To)
		}
		if w.Factor < 0 || w.Factor > 1 {
			return nil, fmt.Errorf("cluster: slowdown factor %g out of [0,1]", w.Factor)
		}
		idx[w.Machine] = append(idx[w.Machine], w)
	}
	for r := range idx {
		ws := idx[r]
		sort.Slice(ws, func(a, b int) bool { return ws[a].From < ws[b].From })
		for i := 1; i < len(ws); i++ {
			if ws[i].From < ws[i-1].To {
				return nil, fmt.Errorf("cluster: overlapping slowdowns on machine %d", r)
			}
		}
	}
	return idx, nil
}

// eventHeap orders events by time, then machine, then kind (finish before
// start at equal times on the same machine would be wrong, so starts of a
// later task sort after the finish of the earlier one via task index).
type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	//lint:ignore floatcmp comparator tie-break: tolerant comparison would break the strict weak ordering sort/heap require
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Machine != b.Machine {
		return a.Machine < b.Machine
	}
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	return a.Kind == TaskFinish && b.Kind == TaskStart
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Utilization returns each machine's busy time divided by the given
// horizon (typically the last deadline); a value above 1 means the machine
// ran past the horizon. It panics for a non-positive horizon.
func (r *Result) Utilization(m int, horizon float64) []float64 {
	if horizon <= 0 {
		panic("cluster: non-positive horizon")
	}
	busy := make([]float64, m)
	open := make(map[[2]int]float64, m)
	for _, e := range r.Trace {
		key := [2]int{e.Machine, e.Task}
		if e.Kind == TaskStart {
			open[key] = e.Time
		} else if s, ok := open[key]; ok {
			busy[e.Machine] += e.Time - s
			delete(open, key)
		}
	}
	out := make([]float64, m)
	for i := range out {
		out[i] = busy[i] / horizon
	}
	return out
}
