package cluster

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/task"
)

func genInstance(t *testing.T, seed int64, n, m int) *task.Instance {
	t.Helper()
	cfg := task.DefaultConfig(n, 0.5, 0.5)
	cfg.ThetaMax = 1.0
	in, err := task.GenerateUniformFleet(rng.New(seed, "cluster"), cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestReplayFidelity: a feasible planned schedule replays with no misses,
// delivering exactly its planned work, energy and accuracy.
func TestReplayFidelity(t *testing.T) {
	in := genInstance(t, 1, 30, 3)
	sol, err := approx.Solve(in, approx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, sol.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missed) != 0 {
		t.Fatalf("feasible schedule missed deadlines: %v", res.Missed)
	}
	if math.Abs(res.Energy-sol.Schedule.Energy(in)) > 1e-6*math.Max(1, res.Energy) {
		t.Errorf("energy %g != planned %g", res.Energy, sol.Schedule.Energy(in))
	}
	if math.Abs(res.TotalAccuracy-sol.TotalAccuracy) > 1e-6*math.Max(1, sol.TotalAccuracy) {
		t.Errorf("accuracy %g != planned %g", res.TotalAccuracy, sol.TotalAccuracy)
	}
	for j := range in.Tasks {
		if w := sol.Schedule.Work(in, j); math.Abs(res.WorkDone[j]-w) > 1e-6*math.Max(1, w) {
			t.Errorf("task %d: delivered %g != planned %g", j, res.WorkDone[j], w)
		}
	}
}

func TestCompletionsAreStaircasePrefixSums(t *testing.T) {
	in := genInstance(t, 2, 10, 2)
	s := schedule.New(in.N(), in.M())
	// Tasks 0..3 on machine 0 back to back (tiny times are always feasible).
	times := []float64{0.001, 0.002, 0.003, 0.004}
	for j, tm := range times {
		s.Times[j][0] = tm
	}
	res, err := Run(in, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prefix float64
	for j, tm := range times {
		prefix += tm
		if math.Abs(res.Completion[j]-prefix) > 1e-12 {
			t.Errorf("completion[%d] = %g, want %g", j, res.Completion[j], prefix)
		}
	}
	if res.Completion[5] != 0 {
		t.Error("unscheduled task should have completion 0")
	}
}

func TestTraceOrderingAndPairing(t *testing.T) {
	in := genInstance(t, 3, 20, 3)
	sol, err := approx.Solve(in, approx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(in, sol.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Time-ordered.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Time < res.Trace[i-1].Time-1e-12 {
			t.Fatalf("trace out of order at %d", i)
		}
	}
	// Every start has a matching finish per (machine, task).
	open := map[[2]int]int{}
	for _, e := range res.Trace {
		key := [2]int{e.Machine, e.Task}
		if e.Kind == TaskStart {
			open[key]++
		} else {
			open[key]--
		}
	}
	for k, v := range open {
		if v != 0 {
			t.Errorf("unbalanced events for machine %d task %d", k[0], k[1])
		}
	}
}

func TestSlowdownCausesMissesAndBurnsEnergy(t *testing.T) {
	in := genInstance(t, 4, 20, 2)
	sol, err := approx.Solve(in, approx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(in, sol.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Missed) != 0 {
		t.Fatal("baseline run should not miss")
	}
	// Halve machine 0's speed over the whole horizon.
	horizon := in.MaxDeadline() * 10
	slowed, err := Run(in, sol.Schedule, Options{
		Slowdowns: []Slowdown{{Machine: 0, From: 0, To: horizon, Factor: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Work is still fully delivered (no abandon), but later and at higher
	// energy (longer busy time at full power).
	if slowed.Energy <= base.Energy {
		t.Errorf("slowdown should increase energy: %g <= %g", slowed.Energy, base.Energy)
	}
	if len(slowed.Missed) == 0 {
		t.Log("note: schedule had enough slack to absorb a 2x slowdown")
	}
	for j := range in.Tasks {
		if slowed.Completion[j] < base.Completion[j]-1e-9 {
			t.Errorf("task %d completed earlier under slowdown", j)
		}
	}
}

func TestAbandonAtDeadlineDeliversPartialWork(t *testing.T) {
	in := genInstance(t, 5, 5, 1)
	// Deliberately overrun task 0: plan double its deadline.
	s := schedule.New(in.N(), in.M())
	d0 := in.Tasks[0].Deadline
	s.Times[0][0] = 2 * d0

	long, err := Run(in, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(long.Missed) != 1 || long.Missed[0] != 0 {
		t.Fatalf("expected task 0 to miss, got %v", long.Missed)
	}
	if math.Abs(long.Completion[0]-2*d0) > 1e-9 {
		t.Errorf("completion %g, want %g", long.Completion[0], 2*d0)
	}

	cut, err := Run(in, s, Options{AbandonAtDeadline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Missed) != 0 {
		t.Errorf("abandoned task should not be counted as missed: %v", cut.Missed)
	}
	wantWork := d0 * in.Machines[0].Speed
	if math.Abs(cut.WorkDone[0]-wantWork) > 1e-6*wantWork {
		t.Errorf("delivered %g, want %g", cut.WorkDone[0], wantWork)
	}
	if cut.Energy >= long.Energy {
		t.Errorf("abandoning should save energy: %g >= %g", cut.Energy, long.Energy)
	}
}

func TestFullStallWindow(t *testing.T) {
	in := genInstance(t, 6, 3, 1)
	s := schedule.New(in.N(), in.M())
	s.Times[0][0] = 0.010
	res, err := Run(in, s, Options{
		Slowdowns: []Slowdown{{Machine: 0, From: 0.005, To: 0.020, Factor: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5ms runs, 15ms stall, then the remaining 5ms: finish at 25ms.
	if math.Abs(res.Completion[0]-0.025) > 1e-9 {
		t.Errorf("completion %g, want 0.025", res.Completion[0])
	}
	// Full planned work delivered.
	if math.Abs(res.WorkDone[0]-0.010*in.Machines[0].Speed) > 1e-6 {
		t.Errorf("work %g", res.WorkDone[0])
	}
}

func TestSlowdownValidation(t *testing.T) {
	in := genInstance(t, 7, 2, 2)
	s := schedule.New(in.N(), in.M())
	cases := []Slowdown{
		{Machine: 5, From: 0, To: 1, Factor: 0.5},  // unknown machine
		{Machine: 0, From: 1, To: 1, Factor: 0.5},  // empty window
		{Machine: 0, From: -1, To: 1, Factor: 0.5}, // negative start
		{Machine: 0, From: 0, To: 1, Factor: 1.5},  // factor > 1
	}
	for i, w := range cases {
		if _, err := Run(in, s, Options{Slowdowns: []Slowdown{w}}); err == nil {
			t.Errorf("case %d: invalid slowdown accepted", i)
		}
	}
	// Overlap on the same machine.
	overlap := []Slowdown{
		{Machine: 0, From: 0, To: 2, Factor: 0.5},
		{Machine: 0, From: 1, To: 3, Factor: 0.5},
	}
	if _, err := Run(in, s, Options{Slowdowns: overlap}); err == nil {
		t.Error("overlapping slowdowns accepted")
	}
}

func TestShapeMismatchRejected(t *testing.T) {
	in := genInstance(t, 8, 4, 2)
	if _, err := Run(in, schedule.New(3, 2), Options{}); err == nil {
		t.Error("wrong task count accepted")
	}
	if _, err := Run(in, schedule.New(4, 3), Options{}); err == nil {
		t.Error("wrong machine count accepted")
	}
}

func TestDeterminism(t *testing.T) {
	in := genInstance(t, 9, 15, 3)
	sol, err := approx.Solve(in, approx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(in, sol.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, sol.Schedule, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("trace lengths differ across runs")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace differs at %d", i)
		}
	}
}

func TestEventKindString(t *testing.T) {
	if TaskStart.String() != "start" || TaskFinish.String() != "finish" {
		t.Error("kind strings wrong")
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestUtilization(t *testing.T) {
	in := genInstance(t, 10, 3, 2)
	s := schedule.New(3, 2)
	s.Times[0][0] = 0.004
	s.Times[1][0] = 0.002
	s.Times[2][1] = 0.003
	res, err := Run(in, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization(2, 0.01)
	if math.Abs(u[0]-0.6) > 1e-9 || math.Abs(u[1]-0.3) > 1e-9 {
		t.Errorf("utilization = %v, want [0.6 0.3]", u)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive horizon should panic")
		}
	}()
	res.Utilization(2, 0)
}

// TestValidatorSimulatorAgreement: any schedule the static validator
// accepts must replay with no deadline misses and no budget overdraft —
// the two feasibility notions must agree.
func TestValidatorSimulatorAgreement(t *testing.T) {
	src := rng.New(40, "agreement")
	in := genInstance(t, 41, 12, 3)
	accepted, checked := 0, 0
	for trial := 0; trial < 300; trial++ {
		s := schedule.New(in.N(), in.M())
		for j := 0; j < in.N(); j++ {
			if src.Float64() < 0.5 {
				r := src.Intn(in.M())
				s.Times[j][r] = src.Uniform(0, in.Tasks[j].Deadline/4)
			}
		}
		checked++
		if err := s.Validate(in, schedule.ValidateOptions{}); err != nil {
			continue
		}
		accepted++
		res, err := Run(in, s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Missed) != 0 {
			t.Fatalf("trial %d: validated schedule missed deadlines %v", trial, res.Missed)
		}
		if res.Energy > in.Budget*(1+1e-9)+1e-9 {
			t.Fatalf("trial %d: validated schedule overspent: %g > %g", trial, res.Energy, in.Budget)
		}
	}
	if accepted == 0 {
		t.Fatalf("no random schedule validated (%d tried) — test is vacuous", checked)
	}
}
