package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point expressions. The paper's
// dual-fitting argument for the 1/2(1−ε) guarantee reasons about accuracies
// and energies that are accumulated floating-point quantities; exact
// equality on them is almost always a latent bug. Sanctioned exceptions,
// which need no directive:
//
//   - comparison against an exact zero constant (sentinel / unset checks);
//   - comparison against math.Inf(±1) (infinity sentinels);
//   - x != x (the idiomatic NaN check);
//   - comparisons that are entirely compile-time constant.
//
// Everything else should go through the tolerance helpers in
// internal/numeric (Close, CloseEps, AlmostEqual) or carry a
// //lint:ignore floatcmp <reason> justification.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flags exact ==/!= between floating-point expressions; use internal/numeric tolerance helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	p.Inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		tx, ty := p.Info.Types[be.X].Type, p.Info.Types[be.Y].Type
		if !isFloat(tx) && !isFloat(ty) {
			return true
		}
		if isZeroConst(p.Info, be.X) || isZeroConst(p.Info, be.Y) {
			return true
		}
		if isInfCall(p.Info, be.X) || isInfCall(p.Info, be.Y) {
			return true
		}
		if isConst(p.Info, be.X) && isConst(p.Info, be.Y) {
			return true // compile-time constant comparison
		}
		if be.Op == token.NEQ && types.ExprString(be.X) == types.ExprString(be.Y) {
			return true // x != x: NaN check
		}
		p.Reportf(be.OpPos, "floating-point %s comparison; use numeric.Close/AlmostEqual (exact zero and math.Inf comparisons are exempt)", be.Op)
		return true
	})
}

// isInfCall reports whether e is a call to math.Inf.
func isInfCall(info *types.Info, e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(calleeFunc(info, call), "math", "Inf")
}
