package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc is the static half of the hot-path allocation gate. Functions
// marked //lint:hotpath (the ftran/btran/appendEta LU kernels, the sparse
// pricing and pivot walks) must not contain allocation sites: make/new,
// composite literals, function literals, defer/go statements, string
// concatenation, string<->[]byte conversions, calls into fmt/errors/
// strconv/strings/sort, or calls to in-unit helpers whose summary says
// they allocate. Plain append is exempt — amortised growth into pre-sized
// arenas is pinned by the AllocsPerRun tests. //lint:hotpath=bounded
// (warm SolveFrom, node relaxations) relaxes the static check to closures
// and goroutine launches; the dynamic side — `dsctalint -escape` diffing
// `go build -gcflags=-m` output against LINT_ESCAPE.json — covers both
// kinds.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "reports allocation sites inside //lint:hotpath functions (zero-alloc kernels; =bounded flags only closures and goroutine launches)",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	if p.annot == nil || len(p.annot.hot) == 0 {
		return
	}
	sums := summarize(p)
	for _, fi := range sums.list {
		site := p.annot.hotOf(fi.fn)
		if site == nil {
			continue
		}
		if site.kind == hotBounded {
			checkBoundedHot(p, fi)
		} else {
			checkStrictHot(p, sums, fi)
		}
	}
}

// checkStrictHot reports every allocation site in a //lint:hotpath body.
func checkStrictHot(p *Pass, sums *unitSummary, fi *funcInfo) {
	name := fi.fn.Name()
	report := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s in //lint:hotpath function %s: hot kernels must not allocate (hoist into the caller or a pre-sized arena)", what, name)
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			report(x.Pos(), "function literal")
			return false
		case *ast.GoStmt:
			report(x.Pos(), "go statement")
			return false
		case *ast.DeferStmt:
			report(x.Pos(), "defer statement")
			return false
		case *ast.CompositeLit:
			report(x.Pos(), "composite literal")
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(p.Info, x) {
				report(x.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			switch builtinName(p.Info, x) {
			case "make", "new":
				report(x.Pos(), builtinName(p.Info, x)+" call")
				return true
			}
			if isStringSliceConv(p.Info, x) {
				report(x.Pos(), "string/slice conversion")
				return true
			}
			fn := calleeFunc(p.Info, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "fmt", "errors", "strconv", "strings", "sort":
				report(x.Pos(), "call to "+fn.Pkg().Name()+"."+fn.Name())
				return true
			}
			if cal := sums.byFn[fn]; cal != nil && cal.mayAlloc && p.annot.hotOf(fn) == nil {
				report(x.Pos(), "call to "+fn.Name()+", which allocates ("+cal.allocWhat+")")
			}
		}
		return true
	})
}

// checkBoundedHot reports only the statically-unambiguous allocations a
// bounded hot path must still avoid: closures and goroutine launches.
// The escape gate and the AllocsPerRun pins own the allocation budget.
func checkBoundedHot(p *Pass, fi *funcInfo) {
	name := fi.fn.Name()
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			p.Reportf(x.Pos(), "function literal in //lint:hotpath=bounded function %s: closures defeat the bounded-allocation budget", name)
			return false
		case *ast.GoStmt:
			p.Reportf(x.Pos(), "go statement in //lint:hotpath=bounded function %s: goroutine launches defeat the bounded-allocation budget", name)
			return false
		}
		return true
	})
}

// isStringType reports whether e's type is a string.
func isStringType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringSliceConv reports whether call is a conversion between string
// and a slice type ([]byte, []rune) — both directions copy.
func isStringSliceConv(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type.Underlying()
	src := info.Types[call.Args[0]].Type
	if src == nil {
		return false
	}
	srcU := src.Underlying()
	_, dstSlice := dst.(*types.Slice)
	_, srcSlice := srcU.(*types.Slice)
	dstStr, _ := dst.(*types.Basic)
	srcStr, _ := srcU.(*types.Basic)
	return (dstSlice && srcStr != nil && srcStr.Info()&types.IsString != 0) ||
		(srcSlice && dstStr != nil && dstStr.Info()&types.IsString != 0)
}
