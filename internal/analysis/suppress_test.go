package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppressions(t *testing.T, src string) (*token.FileSet, *suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, collectSuppressions(fset, []*ast.File{f})
}

func TestSuppressionMultiAnalyzer(t *testing.T) {
	const src = `package p

func f(a, b float64) bool {
	//lint:ignore floatcmp,detrand both analyzers are quiet here
	return a == b
}
`
	_, sup := parseForSuppressions(t, src)
	mk := func(analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "p.go", Line: 5}, Analyzer: analyzer}
	}
	if !sup.covers(mk("floatcmp")) || !sup.covers(mk("detrand")) {
		t.Error("comma-separated directive must suppress every named analyzer")
	}
	if sup.covers(mk("wallclock")) {
		t.Error("comma-separated directive must not suppress unnamed analyzers")
	}
}

func TestSuppressionDoesNotLeakBeyondNextLine(t *testing.T) {
	const src = `package p

//lint:ignore floatcmp only the next line is covered
var a = 1
var b = 2
`
	_, sup := parseForSuppressions(t, src)
	mk := func(line int) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "p.go", Line: line}, Analyzer: "floatcmp"}
	}
	if sup.covers(mk(2)) {
		t.Error("directive must not reach the line above it")
	}
	if !sup.covers(mk(3)) || !sup.covers(mk(4)) {
		t.Error("directive must cover its own line and the next")
	}
	if sup.covers(mk(5)) {
		t.Error("directive must not reach two lines below")
	}
}

func TestSuppressionWrongFile(t *testing.T) {
	const src = `package p

//lint:ignore floatcmp justification
var a = 1
`
	_, sup := parseForSuppressions(t, src)
	d := Diagnostic{Pos: token.Position{Filename: "q.go", Line: 4}, Analyzer: "floatcmp"}
	if sup.covers(d) {
		t.Error("directive must only cover findings in its own file")
	}
}

// TestSuppressionBareDirective covers the two under-specified spellings: no
// analyzer list at all, and an analyzer list without a reason. Both are
// reported as malformed and suppress nothing.
func TestSuppressionBareDirective(t *testing.T) {
	const src = `package p

//lint:ignore
var a = 1

//lint:ignore floatcmp
var b = 2
`
	_, sup := parseForSuppressions(t, src)
	if len(sup.malformed) != 2 {
		t.Fatalf("malformed directives = %d, want 2", len(sup.malformed))
	}
	for _, d := range sup.malformed {
		if d.Analyzer != "dsctalint" || !strings.Contains(d.Message, "malformed lint:ignore") {
			t.Errorf("unexpected malformed diagnostic: %s", d)
		}
	}
	for _, line := range []int{4, 7} {
		d := Diagnostic{Pos: token.Position{Filename: "p.go", Line: line}, Analyzer: "floatcmp"}
		if sup.covers(d) {
			t.Errorf("line %d: malformed directive must not suppress", line)
		}
	}
}

func TestSuppressionStackedDirectives(t *testing.T) {
	const src = `package p

func f(a, b float64) bool {
	//lint:ignore floatcmp first analyzer
	//lint:ignore detrand second analyzer, own directive line
	return a == b
}
`
	_, sup := parseForSuppressions(t, src)
	// The detrand directive sits directly above line 6; the floatcmp one is
	// two lines up and covers only lines 4-5.
	if !sup.covers(Diagnostic{Pos: token.Position{Filename: "p.go", Line: 6}, Analyzer: "detrand"}) {
		t.Error("adjacent directive must suppress")
	}
	if sup.covers(Diagnostic{Pos: token.Position{Filename: "p.go", Line: 6}, Analyzer: "floatcmp"}) {
		t.Error("a directive two lines above the finding must not suppress")
	}
}
