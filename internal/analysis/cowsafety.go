package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CowSafety enforces the copy-on-write/freeze discipline the solver's
// warm-start machinery depends on: state marked //lint:frozen (the shared
// base rows and COW objective of lp.Problem overlays, the published
// lp.Basis snapshot, the frozen LU eta arenas) must never be written
// through outside a //lint:freezer function. The dataflow core tracks
// aliases of frozen memory through local assignments, field selections,
// indexing/slicing, range variables and append, and reports direct field
// writes, writes through a reference step, append/copy/delete into frozen
// backing, and calls passing frozen-reachable values to in-unit functions
// whose summary mutates them.
var CowSafety = &Analyzer{
	Name: "cowsafety",
	Doc:  "reports mutations of //lint:frozen state outside //lint:freezer functions (copy-on-write and snapshot invariants)",
	Run:  runCowSafety,
}

func runCowSafety(p *Pass) {
	if p.annot == nil || (len(p.annot.frozen) == 0) {
		return
	}
	sums := summarize(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok && p.annot.isFreezer(fn) {
				continue
			}
			fs := newFlowScope(p.Info, p.annot, sums, true)
			fs.propagate(fd.Body)
			fs.scanWrites(fd.Body, func(pos token.Pos, action, origin string) {
				p.Reportf(pos, "%s %s: frozen state may only be mutated inside a //lint:freezer function", action, origin)
			})
		}
	}
}
