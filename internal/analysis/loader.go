package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked lint target: either a package together with its
// in-package _test.go files, or an external (package foo_test) test package.
type Unit struct {
	Dir   string
	Path  string // module-relative import path (external test units get a _test suffix)
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	annot *annotIndex // loader-global annotation registry
}

// Loader parses and type-checks package directories of the enclosing
// module. Module-local imports are resolved from source recursively;
// standard-library imports go through go/importer.
type Loader struct {
	Fset    *token.FileSet
	modRoot string // absolute directory containing go.mod
	modPath string // module path declared in go.mod

	std    types.Importer
	cache  map[string]*types.Package // import path -> checked base package
	busy   map[string]bool           // import-cycle detection
	annots *annotIndex               // //lint:frozen|freezer|hotpath registry
}

// NewLoader locates the enclosing module starting from the working
// directory and prepares a loader for it.
func NewLoader() (*Loader, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	return NewLoaderAt(wd)
}

// NewLoaderAt locates the module enclosing dir.
func NewLoaderAt(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.Default(),
		cache:   map[string]*types.Package{},
		busy:    map[string]bool{},
		annots:  newAnnotIndex(),
	}, nil
}

// findModule walks upward from dir until it finds a go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ModRoot returns the absolute module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// importPath maps an absolute package directory to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.modRoot)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirFor maps a module-local import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modPath {
		return l.modRoot
	}
	return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

// Import resolves an import for go/types: module-local packages are
// type-checked from source (base files only); everything else is delegated
// to the standard-library importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		return l.checkBase(path)
	}
	return l.std.Import(path)
}

// checkBase type-checks the non-test files of the package at the given
// module-local import path, with caching and cycle detection.
func (l *Loader) checkBase(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	files, _, _, err := l.parseDir(l.dirFor(path))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", l.dirFor(path))
	}
	pkg, _, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file of dir into base, in-package test and
// external test file groups.
func (l *Loader) parseDir(dir string) (base, inTest, extTest []*ast.File, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			base = append(base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTest = append(extTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return base, inTest, extTest, nil
}

// check runs go/types over one file set and returns the package and info.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	// Register annotations here so imported module-local packages (checked
	// from source through this same loader) contribute their //lint:frozen
	// marks before any importing unit is analyzed: a mip unit's selections
	// of lp.Basis fields then share object identity with the registry.
	for _, f := range files {
		l.annots.collectAnnots(l.Fset, f, info, l.modPath)
	}
	return pkg, info, nil
}

// LoadDir parses and type-checks the package in dir and returns its lint
// units: the package including its in-package tests, plus (when present)
// the external test package.
func (l *Loader) LoadDir(dir string) ([]*Unit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	base, inTest, extTest, err := l.parseDir(abs)
	if err != nil {
		return nil, err
	}
	if len(base)+len(inTest)+len(extTest) == 0 {
		return nil, nil
	}
	var units []*Unit
	if len(base)+len(inTest) > 0 {
		files := append(append([]*ast.File{}, base...), inTest...)
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Dir: abs, Path: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info, annot: l.annots})
	}
	if len(extTest) > 0 {
		pkg, info, err := l.check(path+"_test", extTest)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Dir: abs, Path: path + "_test", Fset: l.Fset, Files: extTest, Pkg: pkg, Info: info, annot: l.annots})
	}
	return units, nil
}

// ExpandPatterns turns command-line package patterns into package
// directories. A pattern is either a directory or a directory followed by
// "/...", which walks recursively. Walks skip hidden, vendor and testdata
// directories — unless the pattern root itself lies inside one, so the
// fixture corpus can be linted by naming it explicitly.
func ExpandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		if r2, ok := strings.CutSuffix(root, "/"); ok && recursive {
			root = r2
		}
		if root == "" {
			root = "."
		}
		if !recursive {
			if ok, err := hasGoFiles(root); err != nil {
				return nil, err
			} else if !ok {
				return nil, fmt.Errorf("no Go files in %s", root)
			}
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != filepath.Clean(root) && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			if ok, err := hasGoFiles(p); err != nil {
				return err
			} else if ok {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true, nil
		}
	}
	return false, nil
}
