package analysis

import (
	"go/ast"
	"go/types"
)

// DetRand protects experiment reproducibility: every random stream must be
// derived deterministically (the harness derives them from
// (seed, experiment, replicate) via internal/rng). The analyzer forbids,
// outside any package named rng (the sanctioned wrapper):
//
//   - the global top-level functions of math/rand and math/rand/v2
//     (rand.Intn, rand.Float64, rand.Seed, ... share hidden mutable state);
//   - rand.New whose source is not created inline from a compile-time
//     constant seed (rand.NewSource(7) is fine,
//     rand.NewSource(time.Now().UnixNano()) is not);
//   - rand.NewSource / rand.NewPCG / rand.NewChaCha8 with non-constant
//     arguments.
//
// Type references (rand.Rand, rand.Source) and methods on seeded *rand.Rand
// values are always allowed.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbids global math/rand functions and non-deterministically seeded rand.New outside internal/rng",
	Run:  runDetRand,
}

// randCtors are the source/generator constructors that are legitimate when
// every argument is a compile-time constant.
var randCtors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

func runDetRand(p *Pass) {
	if p.Pkg != nil && p.Pkg.Name() == "rng" {
		return // the sanctioned deterministic-stream wrapper
	}
	// sanctioned marks selector nodes already validated as part of an
	// allowed constructor expression, so the generic selector sweep below
	// does not re-flag them.
	sanctioned := map[*ast.SelectorExpr]bool{}
	p.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, pkg := randSelector(p.Info, call.Fun)
		if sel == nil {
			return true
		}
		switch sel.Sel.Name {
		case "New":
			sanctioned[sel] = true
			// If the argument is an inline constructor call, sanction its
			// selector here; the constructor's own visit below checks seed
			// constness, so only a missing constructor is reported as New.
			if src := inlineCtor(p.Info, call); src != nil {
				sanctioned[src] = true
			} else {
				p.Reportf(call.Pos(), "%s.New must wrap an inline constant-seeded source (e.g. rand.New(rand.NewSource(7))); derive streams from internal/rng instead", pkg)
			}
		case "NewSource", "NewPCG", "NewChaCha8":
			sanctioned[sel] = true
			if !allConstArgs(p.Info, call) {
				p.Reportf(call.Pos(), "%s.%s with non-constant seed breaks experiment reproducibility; use internal/rng streams", pkg, sel.Sel.Name)
			}
		}
		return true
	})
	p.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sanctioned[sel] {
			return true
		}
		s, pkg := randSelector(p.Info, sel)
		if s == nil {
			return true
		}
		switch p.Info.Uses[sel.Sel].(type) {
		case *types.Func, *types.Var:
			if randCtors[sel.Sel.Name] || sel.Sel.Name == "New" {
				return true // reported (or sanctioned) by the call sweep above
			}
			p.Reportf(sel.Pos(), "global %s.%s shares hidden state and breaks experiment reproducibility; use internal/rng streams", pkg, sel.Sel.Name)
		}
		return true
	})
}

// randSelector returns sel if it is a package-qualified selector on
// math/rand or math/rand/v2, along with the local package name.
func randSelector(info *types.Info, e ast.Expr) (*ast.SelectorExpr, string) {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil {
		return nil, ""
	}
	switch pn.Imported().Path() {
	case "math/rand", "math/rand/v2":
		return sel, pn.Name()
	}
	return nil, ""
}

// inlineCtor returns the selector of the allowed source constructor that
// rand.New's single argument calls inline, or nil.
func inlineCtor(info *types.Info, call *ast.CallExpr) *ast.SelectorExpr {
	if len(call.Args) != 1 {
		return nil
	}
	inner, ok := unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, _ := randSelector(info, inner.Fun)
	if sel == nil || !randCtors[sel.Sel.Name] {
		return nil
	}
	return sel
}

func allConstArgs(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if !isConst(info, a) {
			return false
		}
	}
	return true
}
