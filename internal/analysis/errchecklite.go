package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckLite flags silently discarded error returns: a call whose final
// result is an error, used as a bare statement (including go/defer). An
// explicit `_ = f()` assignment is a visible, reviewable discard and is
// not flagged. Also exempt, because they cannot fail meaningfully:
//
//   - methods on *bytes.Buffer and *strings.Builder (documented never to
//     return a non-nil error);
//   - fmt.Print/Printf/Println (best-effort stdout diagnostics);
//   - fmt.Fprint* writing to os.Stdout, os.Stderr, a *bytes.Buffer or a
//     *strings.Builder.
var ErrCheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "flags discarded error returns; handle the error or assign it to _ explicitly",
	Run:  runErrCheckLite,
}

func runErrCheckLite(p *Pass) {
	check := func(call *ast.CallExpr, how string) {
		tv, ok := p.Info.Types[call.Fun]
		if !ok {
			return
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok {
			return // conversion or builtin
		}
		res := sig.Results()
		if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
			return
		}
		callee := calleeFunc(p.Info, call)
		if isExemptErrSink(p.Info, callee, call) {
			return
		}
		name := "call"
		if callee != nil {
			name = callee.Name()
		}
		p.Reportf(call.Pos(), "%serror result of %s is discarded; handle it or assign to _ explicitly", how, name)
	}
	p.Inspect(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				check(call, "")
			}
		case *ast.GoStmt:
			check(s.Call, "go: ")
		case *ast.DeferStmt:
			check(s.Call, "defer: ")
		}
		return true
	})
}

// isExemptErrSink reports whether the callee is on the can't-meaningfully-
// fail allowlist.
func isExemptErrSink(info *types.Info, callee *types.Func, call *ast.CallExpr) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		return namedIn(recv, "bytes", "Buffer") || namedIn(recv, "strings", "Builder")
	}
	if callee.Pkg().Path() != "fmt" {
		return false
	}
	switch callee.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && isExemptWriter(info, call.Args[0])
	}
	return false
}

// isExemptWriter reports whether the fmt.Fprint* destination is os.Stdout,
// os.Stderr, a *bytes.Buffer or a *strings.Builder.
func isExemptWriter(info *types.Info, w ast.Expr) bool {
	if sel, ok := unparen(w).(*ast.SelectorExpr); ok {
		if pn := pkgNameOf(info, sel.X); pn != nil && pn.Imported().Path() == "os" {
			if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
				return true
			}
		}
	}
	t := info.Types[w].Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return namedIn(t, "bytes", "Buffer") || namedIn(t, "strings", "Builder")
}
