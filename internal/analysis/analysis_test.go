package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixture files:  // want "substring"
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// fixtureWants reads the expectation comments of every fixture file in dir,
// keyed by absolute filename and line.
func fixtureWants(t *testing.T, dir string) map[string]map[int][]string {
	t.Helper()
	wants := map[string]map[int][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		abs, err := filepath.Abs(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(abs)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				if wants[abs] == nil {
					wants[abs] = map[int][]string{}
				}
				wants[abs][i+1] = append(wants[abs][i+1], m[1])
			}
		}
	}
	return wants
}

// runFixture applies one analyzer to the fixture dirs and checks the
// produced diagnostics against the // want comments, both directions.
func runFixture(t *testing.T, loader *Loader, a *Analyzer, dirs ...string) {
	t.Helper()
	var diags []Diagnostic
	wants := map[string]map[int][]string{}
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		for _, u := range units {
			diags = append(diags, runUnit(u, []*Analyzer{a})...)
		}
		for file, lines := range fixtureWants(t, dir) {
			wants[file] = lines
		}
	}
	matched := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Message)
		found := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if strings.Contains(d.Message, w) {
				matched[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, w)] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
		_ = key
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !matched[fmt.Sprintf("%s:%d:%s", file, line, w)] {
					t.Errorf("%s:%d: expected a %s diagnostic containing %q, got none", file, line, a.Name, w)
				}
			}
		}
	}
}

func TestAnalyzersOnFixtures(t *testing.T) {
	loader, err := NewLoaderAt(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer *Analyzer
		dirs     []string
	}{
		{FloatCmp, []string{"testdata/src/floatcmp"}},
		{DetRand, []string{"testdata/src/detrand", "testdata/src/detrand/rng"}},
		{DetFlow, []string{"testdata/src/detflow"}},
		{WallClock, []string{"testdata/src/wallclock/lp", "testdata/src/wallclock/renderer"}},
		{ErrCheckLite, []string{"testdata/src/errchecklite"}},
		{SyncMisuse, []string{"testdata/src/syncmisuse"}},
		{CowSafety, []string{"testdata/src/cowsafety"}},
		{HotAlloc, []string{"testdata/src/hotalloc"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.analyzer.Name, func(t *testing.T) {
			runFixture(t, loader, c.analyzer, c.dirs...)
		})
	}
}

// TestSelfCheck runs the full suite over the analysis engine and its CLI:
// the linter must pass on its own source.
func TestSelfCheck(t *testing.T) {
	diags, err := Analyze([]string{".", "../../cmd/dsctalint"}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("self-check: %s", d)
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	const src = `package p

//lint:ignore floatcmp
var x = 1
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{f})
	if len(sup.malformed) != 1 {
		t.Fatalf("malformed directives = %d, want 1", len(sup.malformed))
	}
	if got := sup.malformed[0]; got.Analyzer != "dsctalint" || !strings.Contains(got.Message, "malformed lint:ignore") {
		t.Errorf("unexpected malformed diagnostic: %s", got)
	}
}

func TestSuppressionCoversSameAndPreviousLine(t *testing.T) {
	const src = `package p

func f(a, b float64) (bool, bool, bool) {
	//lint:ignore floatcmp operands are constructed bit-identical
	above := a == b
	same := a == b //lint:ignore floatcmp same-line justification

	unrelated := a == b //lint:ignore detrand wrong analyzer name
	return above, same, unrelated
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sup := collectSuppressions(fset, []*ast.File{f})
	mk := func(line int) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "p.go", Line: line}, Analyzer: "floatcmp"}
	}
	if !sup.covers(mk(5)) {
		t.Error("directive above the line should suppress")
	}
	if !sup.covers(mk(6)) {
		t.Error("same-line directive should suppress")
	}
	if sup.covers(mk(8)) {
		t.Error("directive naming another analyzer must not suppress")
	}
}

func TestExpandPatternsSkipsTestdata(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("recursive pattern must skip testdata, got %s", d)
		}
	}
	fixtures, err := ExpandPatterns([]string{"testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) < 6 {
		t.Errorf("explicit testdata pattern should surface fixture dirs, got %v", fixtures)
	}
}

// TestFixtureCorpusTrips guards the acceptance criterion that the fixture
// corpus as a whole produces findings (the CLI exits non-zero on it).
func TestFixtureCorpusTrips(t *testing.T) {
	dirs, err := ExpandPatterns([]string{"testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Analyze(dirs, All())
	if err != nil {
		t.Fatal(err)
	}
	perAnalyzer := map[string]int{}
	for _, d := range diags {
		perAnalyzer[d.Analyzer]++
	}
	for _, a := range All() {
		if perAnalyzer[a.Name] < 2 {
			t.Errorf("fixture corpus yields %d %s findings, want >= 2", perAnalyzer[a.Name], a.Name)
		}
	}
}
