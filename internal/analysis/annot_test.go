package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

func parseAnnotText(text string) (annotComment, bool) {
	return parseAnnot(&ast.Comment{Text: text})
}

func TestParseAnnotDirectives(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		kind   string
		hot    hotKind
		reason string
		bad    string // substring of the malformed message, "" = well-formed
	}{
		{"//lint:frozen shared with every child", true, "frozen", hotStrict, "shared with every child", ""},
		{"//lint:freezer constructor initialises before publication", true, "freezer", hotStrict, "constructor initialises before publication", ""},
		{"//lint:hotpath one solve per pivot", true, "hotpath", hotStrict, "one solve per pivot", ""},
		{"//lint:hotpath=bounded setup allocation is pinned", true, "hotpath", hotBounded, "setup allocation is pinned", ""},
		{"//lint:hotpath\tone solve per pivot", true, "hotpath", hotStrict, "one solve per pivot", ""},
		// Missing reasons are malformed, not silently accepted.
		{"//lint:frozen", true, "frozen", hotStrict, "", "needs a reason"},
		{"//lint:freezer   ", true, "freezer", hotStrict, "", "needs a reason"},
		{"//lint:hotpath=bounded", true, "hotpath", hotBounded, "", "needs a reason"},
		// Unknown hotpath modes are malformed.
		{"//lint:hotpath=turbo goes faster", true, "hotpath", hotStrict, "", "unknown hotpath mode"},
		// Longer words sharing a directive prefix are not directives.
		{"//lint:frozenset is something else", false, "", hotStrict, "", ""},
		{"//lint:hotpathology unrelated", false, "", hotStrict, "", ""},
		// Other lint comments are not annotations.
		{"//lint:ignore floatcmp reason", false, "", hotStrict, "", ""},
		{"// ordinary comment", false, "", hotStrict, "", ""},
	}
	for _, c := range cases {
		a, ok := parseAnnotText(c.text)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if a.kind != c.kind || a.hot != c.hot {
			t.Errorf("%q: parsed (%s, %v), want (%s, %v)", c.text, a.kind, a.hot, c.kind, c.hot)
		}
		if c.bad == "" {
			if a.bad != "" {
				t.Errorf("%q: unexpectedly malformed: %s", c.text, a.bad)
			}
			if a.reason != c.reason {
				t.Errorf("%q: reason %q, want %q", c.text, a.reason, c.reason)
			}
		} else if !strings.Contains(a.bad, c.bad) {
			t.Errorf("%q: malformed message %q, want substring %q", c.text, a.bad, c.bad)
		}
	}
}

func TestHotKindString(t *testing.T) {
	if got := hotStrict.String(); got != "hotpath" {
		t.Errorf("hotStrict = %q", got)
	}
	if got := hotBounded.String(); got != "hotpath=bounded" {
		t.Errorf("hotBounded = %q", got)
	}
}
