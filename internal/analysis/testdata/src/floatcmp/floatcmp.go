// Fixture for the floatcmp analyzer: exact float comparisons are flagged,
// the sanctioned exceptions (zero, Inf, NaN-check, constants) are not.
package floatcmp

import "math"

func positives(a, b float64, xs []float64) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a != b { // want "floating-point != comparison"
		return false
	}
	same := xs[0] == xs[1]*2 // want "floating-point == comparison"
	var f32 float32
	if f32 == 1.5 { // want "floating-point == comparison"
		return same
	}
	return a != 0.05 // want "floating-point != comparison"
}

func negatives(a, b float64, n int) bool {
	if a == 0 { // exact-zero sentinel
		return true
	}
	if b != 0.0 { // exact-zero sentinel, float literal
		return false
	}
	if b == math.Inf(1) { // infinity sentinel
		return false
	}
	if a != a { // idiomatic NaN check
		return false
	}
	if n == 4 { // integer comparison
		return true
	}
	const exact = 1.5 == 1.5 // fully constant comparison
	return exact
}

func suppressed(a float64) bool {
	//lint:ignore floatcmp operands are bit-identical copies by construction
	return a == 0.25
}

// boxed mimics the lp.Problem bound slices: fixed-variable detection must
// use ordered comparisons (hi <= lo), not equality on the endpoints.
type boxed struct {
	lo, hi []float64
}

func bounds(p *boxed, v int) bool {
	if p.lo[v] == p.hi[v] { // want "floating-point == comparison"
		return true
	}
	if p.hi[v] != p.lo[v] { // want "floating-point != comparison"
		return false
	}
	return p.hi[v] <= p.lo[v] // ordered fixed-box test: sanctioned
}

func boundSentinels(p *boxed, v int) bool {
	if p.lo[v] == 0 { // exact-zero sentinel on a bound field
		return true
	}
	if p.hi[v] == math.Inf(1) { // default-box infinity sentinel
		return false
	}
	return math.IsInf(p.hi[v], 1) // the preferred spelling
}
