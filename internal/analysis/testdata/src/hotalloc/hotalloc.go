package hotalloc

import "fmt"

// ftran mimics a zero-alloc solve kernel.
//
//lint:hotpath solved once per pivot; pinned to zero allocations
func ftran(out, rhs []float64) {
	buf := make([]float64, len(rhs)) // want "make call"
	_ = buf
	for i := range rhs {
		out[i] = rhs[i]
	}
	helper(out) // want "which allocates"
	clean(out)
}

// helper allocates; hot callers are reported at the call site.
func helper(xs []float64) []float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	return tmp
}

// clean is allocation-free, so hot callers stay clean.
func clean(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// price mimics a sparse pricing walk.
//
//lint:hotpath pricing runs every iteration of the simplex loop
func price(xs []float64) float64 {
	s := 0.0
	f := func() { s++ } // want "function literal"
	f()
	defer clean(xs)               // want "defer statement"
	msg := fmt.Sprintf("%d", ign) // want "call to fmt.Sprintf"
	_ = msg
	for _, v := range xs {
		s += v
	}
	return s
}

var ign = 0

// label shows the string-allocation sites.
//
//lint:hotpath formatting must stay out of kernels
func label(a, b string, n []byte) string {
	s := a + b     // want "string concatenation"
	t := string(n) // want "string/slice conversion"
	_ = t
	return s
}

// appendOK rides a pre-sized arena: append is exempt, the AllocsPerRun
// pins own amortised growth.
//
//lint:hotpath eta append into a pre-sized arena
func appendOK(dst []int, v int) []int {
	return append(dst, v)
}

// warm mimics lp.SolveFrom: setup allocation is fine, closures and
// goroutine launches are not.
//
//lint:hotpath=bounded warm start performs bounded setup allocation
func warm(n int) []float64 {
	out := make([]float64, n)  // ok: bounded budget covers setup
	go clean(out)              // want "go statement"
	f := func() { clean(out) } // want "function literal"
	f()
	return out
}

// badMode has a typo in the directive mode.
//
//lint:hotpath=turbo mode does not exist // want "unknown hotpath mode"
func badMode() {}
