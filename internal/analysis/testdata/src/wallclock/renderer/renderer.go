// Fixture for the wallclock analyzer's scope: packages outside the solver
// set (lp, mip, core, approx) may read the wall clock.
package renderer

import "time"

// Stamp is allowed: renderer is not a solver package.
func Stamp() time.Time {
	return time.Now()
}
