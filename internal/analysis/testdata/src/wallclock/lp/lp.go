// Fixture for the wallclock analyzer: a package named lp is a solver
// package, so wall-clock reads outside sanctioned sites are flagged.
package lp

import "time"

func pivot(deadline time.Time) bool {
	now := time.Now() // want "time.Now() in solver package lp"
	return now.After(deadline)
}

func price() int64 {
	return time.Now().UnixNano() // want "time.Now() in solver package lp"
}

func sanctionedDeadlineCheck(deadline time.Time) bool {
	//lint:ignore wallclock sanctioned deadline probe, executed once per 128 pivots
	return !deadline.IsZero() && time.Now().After(deadline)
}

func clockFree(elapsed time.Duration) time.Duration {
	return elapsed * 2 // using time types without reading the clock: allowed
}
