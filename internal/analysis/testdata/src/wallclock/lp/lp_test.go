package lp

import "time"

// testClock exercises the _test.go exemption: benchmarks and tests may
// read the wall clock freely even inside solver packages.
func testClock() time.Time {
	return time.Now()
}
