// Fixture for the detrand analyzer: global math/rand state and
// non-deterministic seeding are flagged; constant-seeded sources, type
// references and methods on seeded generators are not.
package detrandfix

import (
	"math/rand"
	"time"
)

func positives() float64 {
	v := rand.Float64()                                  // want "global rand.Float64"
	p := rand.Perm(5)                                    // want "global rand.Perm"
	r := rand.New(rand.NewSource(time.Now().UnixNano())) // want "non-constant seed"
	r2 := rand.New(externalSource())                     // want "must wrap an inline constant-seeded source"
	return v + float64(p[0]) + r.Float64() + r2.Float64()
}

func negatives() float64 {
	r := rand.New(rand.NewSource(7)) // constant seed: allowed
	var keep *rand.Rand              // type reference: allowed
	keep = r
	src := rand.NewSource(12345) // constant seed: allowed
	_ = src
	return keep.Float64() + keep.NormFloat64() // methods on a seeded generator: allowed
}

func externalSource() rand.Source {
	return rand.NewSource(9)
}
