// Fixture for the detrand analyzer's exemption: a package named rng is the
// sanctioned wrapper and may use math/rand freely.
package rng

import "math/rand"

// FromGlobal would be flagged anywhere else.
func FromGlobal() float64 {
	return rand.Float64()
}
