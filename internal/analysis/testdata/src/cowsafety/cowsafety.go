package cowsafety

import "sort"

// overlay mimics lp.Problem's copy-on-write overlay: base rows and the
// objective are shared with every child until the first write.
type overlay struct {
	//lint:frozen base rows are shared with every child overlay
	base []row
	//lint:frozen objective is COW-shared until materialised
	obj []float64
	own []row // mutable: owned by this overlay
}

type row struct {
	terms []term
	rhs   float64
}

type term struct {
	v int
	c float64
}

// chain mimics mip.fixChain: immutable after construction, tails shared
// across the search tree.
//
//lint:frozen nodes share tails across the search tree
type chain struct {
	val  int
	prev *chain
}

// newOverlay owns the arrays until it returns them.
//
//lint:freezer constructor initialises frozen state before publication
func newOverlay(n int) *overlay {
	o := &overlay{}
	o.base = make([]row, n) // ok: freezer
	o.obj = make([]float64, n)
	return o
}

func mutateDirect(o *overlay) {
	o.obj = nil // want "write to frozen field"
}

func mutateElem(o *overlay, v float64) {
	o.obj[0] = v // want "frozen field"
}

func mutateAlias(o *overlay, v float64) {
	obj := o.obj
	obj[1] = v // want "frozen field"
}

func mutateRowThroughAlias(o *overlay, t term) {
	r := o.base[0] // a value copy of a shared row...
	r.rhs = 1      // ok: scalar write lands in the local copy
	r.terms[0] = t // want "frozen field"
}

func appendShared(o *overlay, r row) []row {
	return append(o.base[:2], r) // want "append to slice aliasing"
}

func copyInto(o *overlay, src []float64) {
	copy(o.obj, src) // want "copy into"
}

func sortShared(o *overlay) {
	sort.Float64s(o.obj) // want "sort.Float64s mutation"
}

func mutateViaCallee(o *overlay) {
	scale(o.obj, 2) // want "call to scale mutates"
}

// scale writes through its parameter; the summary carries that to callers.
func scale(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}

func mutateFrozenType(c *chain) {
	c.val = 3 // want "frozen type"
}

func rangeWrite(o *overlay, v float64) {
	for _, r := range o.base {
		r.terms[0].c = v // want "frozen field"
	}
}

// okOwnRows mutates state the overlay owns — never reported.
func okOwnRows(o *overlay, r row) {
	o.own = append(o.own, r)
	o.own[0].rhs = 2
}

// okLocalCopy deep-copies before writing: the copy-on-write discipline.
func okLocalCopy(o *overlay) []float64 {
	obj := make([]float64, len(o.obj))
	copy(obj, o.obj)
	obj[0] = 1
	return obj
}

// okRead only reads frozen state.
func okRead(o *overlay) float64 {
	s := 0.0
	for _, r := range o.base {
		s += r.rhs
	}
	return s
}
