package cowsafety

// Annotation-hygiene cases: directives that do not attach to a field,
// type or function declaration are reported, as are mode typos.

//lint:frozen floating directives attach to nothing // want "misplaced annotation"

var sink float64

func use(o *overlay) {
	sink = okRead(o)
}
