package detflow

import (
	"fmt"
	"sort"
)

func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "never sorted"
	}
	return keys
}

// keysSorted is the clean collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func sendFromRange(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "channel send inside a range over a map"
	}
}

func printFromRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt output inside a range over a map"
	}
}

func concatFromRange(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string accumulation"
	}
	return s
}

func nested(m map[string]map[string]int) []string {
	var out []string
	for _, inner := range m {
		for k := range inner {
			out = append(out, k) // want "never sorted"
		}
	}
	return out
}

// maxOverMap is order-independent: folding with max needs no sort.
func maxOverMap(m map[int]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

func fanIn(jobs []int) [][]int {
	var results [][]int
	done := make(chan bool)
	for i := range jobs {
		go func(i int) {
			results = append(results, work(i)) // want "goroutine appends to captured slice"
			done <- true
		}(i)
	}
	for range jobs {
		<-done
	}
	return results
}

// fanInByIndex is the clean pattern: each goroutine owns one slot.
func fanInByIndex(jobs []int) [][]int {
	results := make([][]int, len(jobs))
	done := make(chan bool)
	for i := range jobs {
		go func(i int) {
			results[i] = work(i) // ok: index write is order-independent
			done <- true
		}(i)
	}
	for range jobs {
		<-done
	}
	return results
}

func work(i int) []int { return []int{i} }
