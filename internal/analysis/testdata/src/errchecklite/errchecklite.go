// Fixture for the errchecklite analyzer: silently discarded error returns
// are flagged; explicit discards and can't-fail sinks are not.
package errchecklite

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fallible() error { return errors.New("boom") }

func falliblePair() (int, error) { return 0, nil }

func positives(f *os.File, w *os.File) {
	fallible()          // want "error result of fallible is discarded"
	falliblePair()      // want "error result of falliblePair is discarded"
	defer f.Close()     // want "defer: error result of Close is discarded"
	go fallible()       // want "go: error result of fallible is discarded"
	fmt.Fprintf(w, "x") // want "error result of Fprintf is discarded"
	fn := fallible
	fn() // want "error result of call is discarded"
}

func negatives(buf *bytes.Buffer, sb *strings.Builder) int {
	_ = fallible() // explicit, reviewable discard
	buf.WriteString("a")
	sb.WriteString("b")
	fmt.Println("progress")
	fmt.Fprintf(os.Stderr, "diag")
	fmt.Fprintln(buf, "c")
	if err := fallible(); err != nil {
		return 1
	}
	n, err := falliblePair()
	if err != nil {
		return n
	}
	return buf.Len() + sb.Len()
}
