// Fixture for the syncmisuse analyzer: locks copied by value and goroutine
// closures capturing loop variables are flagged; pointer passing and
// explicit argument passing are not.
package syncmisuse

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func lockByValue(mu sync.Mutex) { // want "parameter passes sync.Mutex by value"
	mu.Lock()
	defer mu.Unlock()
}

func (g guarded) byValueReceiver() int { // want "receiver passes guarded by value"
	return g.n
}

func leakWaitGroup() sync.WaitGroup { // want "result passes sync.WaitGroup by value"
	var wg sync.WaitGroup
	return wg
}

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range variable g copies a value containing guarded"
		total += g.n
	}
	return total
}

func pointersAreFine(mu *sync.Mutex, g *guarded, gs []*guarded) int {
	mu.Lock()
	defer mu.Unlock()
	total := g.n
	for _, p := range gs { // pointer elements: no copy
		total += p.n
	}
	for i := range gs { // index ranging: no copy
		total += gs[i].n
	}
	return total
}

func capturesLoopVar(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(it) // want "goroutine closure captures loop variable it"
		}()
	}
	for i := 0; i < len(items); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(i) // want "goroutine closure captures loop variable i"
		}()
	}
	wg.Wait()
}

func passesLoopVar(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) { // argument passing: no capture
			defer wg.Done()
			process(it)
		}(it)
	}
	for _, it := range items {
		it := it // pre-1.22 idiom: rebinding shadows the loop variable
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(it)
		}()
	}
	wg.Wait()
}

func process(int) {}
