// Package analysis is a from-scratch, stdlib-only static-analysis engine
// enforcing the solver invariants this reproduction depends on but the Go
// compiler cannot see: tolerance-based float comparison in the LP/PWL
// numerics, deterministic RNG for reproducible tables and figures,
// determinism-safe map iteration and goroutine fan-in, clock-free solver
// hot paths, handled errors, race-free fan-out, copy-on-write discipline
// over //lint:frozen shared state, and allocation-free //lint:hotpath
// kernels.
//
// The engine is deliberately small: a Loader parses and type-checks
// packages with go/parser + go/types (stdlib importer only), an Analyzer is
// a named Run function over a type-checked Pass, and diagnostics carry
// precise token.Position information. The dataflow analyzers (cowsafety,
// hotalloc) share a per-unit substrate: an intraprocedural taint
// propagation over local aliases (dataflow.go) and a bottom-up callgraph
// fixpoint of mutates-parameter / may-allocate summaries (callgraph.go),
// driven by the annotation registry in annot.go. The escape gate
// (escape.go) replays `go build -gcflags=-m` and attributes heap escapes
// to //lint:hotpath functions against a committed baseline.
//
// Findings can be suppressed at a site with a justification comment:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory; a bare directive is itself reported. The cmd/dsctalint
// command wires the engine into the build as the repo's standing
// verification gate (see scripts/verify.sh).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position // file:line:col of the finding
	Analyzer string         // name of the analyzer that produced it
	Message  string         // human-readable description and suggested fix
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check. Run inspects the files of a type-checked
// package unit and reports findings through the Pass.
type Analyzer struct {
	Name string // short lowercase identifier, used in directives and output
	Doc  string // one-paragraph description of what the analyzer enforces
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{FloatCmp, DetRand, DetFlow, WallClock, ErrCheckLite, SyncMisuse, CowSafety, HotAlloc}
}

// ByName returns the analyzers whose names appear in the comma-separated
// list, or All() for an empty list.
func ByName(list string) ([]*Analyzer, error) {
	if strings.TrimSpace(list) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Pass carries one type-checked package unit through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package // the checked package (nil only on load failure)
	Info     *types.Info
	PkgPath  string // module-relative import path of the unit

	annot *annotIndex // loader-global //lint:frozen|freezer|hotpath registry
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Inspect walks every file of the unit with fn (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// Analyze loads every package directory in dirs and runs the analyzers over
// each unit, returning suppression-filtered findings in deterministic
// order. Load or type-check failures abort with an error: analyzers only
// ever see well-typed code.
func Analyze(dirs []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader()
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		units, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			diags = append(diags, runUnit(u, analyzers)...)
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// runUnit applies the analyzers to one unit and filters suppressed findings.
func runUnit(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			PkgPath:  u.Path,
			annot:    u.annot,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sup := collectSuppressions(u.Fset, u.Files)
	diags = sup.filter(diags)
	diags = append(diags, sup.malformed...)
	if u.annot != nil {
		diags = append(diags, u.annot.malformedFor(u.Files, u.Fset)...)
	}
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
