package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Annotation directives are declarations about code, distinct from
// //lint:ignore suppressions. They drive the dataflow analyzers:
//
//	//lint:frozen <reason>            struct field or type declaration:
//	                                  immutable once published (COW state)
//	//lint:freezer <reason>           function: whitelisted to mutate
//	                                  frozen state (constructors, freeze/
//	                                  copy-on-write transitions)
//	//lint:hotpath <reason>           function: zero steady-state
//	                                  allocations (append into pre-sized
//	                                  arenas excepted — the AllocsPerRun
//	                                  pins own amortised growth)
//	//lint:hotpath=bounded <reason>   function: small bounded allocation
//	                                  budget; only closures and goroutine
//	                                  launches are flagged statically, the
//	                                  dsctalint -escape gate and the
//	                                  AllocsPerRun pins own the rest
//
// frozen/freezer feed the cowsafety analyzer; hotpath feeds hotalloc and
// the `dsctalint -escape` escape-analysis gate. The reason is mandatory;
// a bare or misplaced directive is reported by the unit that owns the file.
const (
	frozenDirective  = "//lint:frozen"
	freezerDirective = "//lint:freezer"
	hotpathDirective = "//lint:hotpath"
)

// hotKind distinguishes the two hotpath contracts.
type hotKind int

const (
	hotStrict  hotKind = iota // no allocation sites at all
	hotBounded                // bounded setup allocation; closures/go still banned
)

func (k hotKind) String() string {
	if k == hotBounded {
		return "hotpath=bounded"
	}
	return "hotpath"
}

// hotpathSite is one //lint:hotpath-annotated function declaration,
// carrying the source range the escape gate attributes diagnostics to.
type hotpathSite struct {
	fn         *types.Func
	kind       hotKind
	reason     string
	display    string // module-shortened qualified name, e.g. (*internal/lp.luFactor).ftran
	file       string // absolute path of the declaring file
	test       bool   // declared in a _test.go file (invisible to `go build`)
	start, end int    // line range of the declaration
}

// frozenMark is one //lint:frozen annotation target.
type frozenMark struct {
	desc   string // e.g. "frozen field (lp.Basis).binv" or "frozen type mip.fixChain"
	reason string
}

// annotIndex is the loader-global annotation registry. Files can be
// type-checked more than once (once as an import dependency, once as a
// lint unit): object-keyed entries are inserted per check universe,
// position-keyed entries are deduplicated by file:line.
type annotIndex struct {
	frozen    map[types.Object]*frozenMark
	freezer   map[types.Object]string
	hot       map[types.Object]*hotpathSite
	sites     []*hotpathSite
	siteAt    map[string]bool       // "file:line" of recorded sites
	malformed map[string]Diagnostic // "file:line" -> diagnostic
}

func newAnnotIndex() *annotIndex {
	return &annotIndex{
		frozen:    map[types.Object]*frozenMark{},
		freezer:   map[types.Object]string{},
		hot:       map[types.Object]*hotpathSite{},
		siteAt:    map[string]bool{},
		malformed: map[string]Diagnostic{},
	}
}

// annotComment is one parsed annotation directive.
type annotComment struct {
	c      *ast.Comment
	kind   string // "frozen", "freezer" or "hotpath"
	hot    hotKind
	reason string
	bad    string // non-empty: malformed, with the message to report
}

// parseAnnot recognises annotation comments; ok is false for every other
// comment (including //lint:ignore suppressions).
func parseAnnot(c *ast.Comment) (annotComment, bool) {
	a := annotComment{c: c}
	var rest string
	switch text := c.Text; {
	case strings.HasPrefix(text, freezerDirective):
		a.kind, rest = "freezer", text[len(freezerDirective):]
	case strings.HasPrefix(text, frozenDirective):
		a.kind, rest = "frozen", text[len(frozenDirective):]
	case strings.HasPrefix(text, hotpathDirective):
		a.kind, rest = "hotpath", text[len(hotpathDirective):]
	default:
		return a, false
	}
	if a.kind == "hotpath" && strings.HasPrefix(rest, "=") {
		mode := rest
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			mode, rest = rest[:i], rest[i:]
		} else {
			rest = ""
		}
		if mode != "=bounded" {
			a.bad = fmt.Sprintf("unknown hotpath mode %q: want //lint:hotpath or //lint:hotpath=bounded", mode)
			return a, true
		}
		a.hot = hotBounded
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return a, false // longer word sharing the prefix, not a directive
	}
	a.reason = strings.TrimSpace(rest)
	if a.reason == "" {
		a.bad = fmt.Sprintf("annotation //lint:%s needs a reason: //lint:%s <reason>", a.kind, a.kind)
	}
	return a, true
}

// annotsIn extracts the annotation directives of a comment group.
func annotsIn(cg *ast.CommentGroup) []annotComment {
	if cg == nil {
		return nil
	}
	var out []annotComment
	for _, c := range cg.List {
		if a, ok := parseAnnot(c); ok {
			out = append(out, a)
		}
	}
	return out
}

func (ai *annotIndex) noteMalformed(fset *token.FileSet, pos token.Pos, msg string) {
	p := fset.Position(pos)
	key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	if _, ok := ai.malformed[key]; ok {
		return
	}
	ai.malformed[key] = Diagnostic{Pos: p, Analyzer: "dsctalint", Message: msg}
}

// collectAnnots registers every annotation in f. It runs after a
// successful type-check, so info is complete. modPath shortens qualified
// names in reports.
func (ai *annotIndex) collectAnnots(fset *token.FileSet, f *ast.File, info *types.Info, modPath string) {
	consumed := map[*ast.Comment]bool{}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			ai.collectFuncAnnots(fset, d, info, modPath, consumed)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					ai.collectTypeAnnots(fset, d, ts, info, consumed)
				}
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if _, ok := parseAnnot(c); ok && !consumed[c] {
				ai.noteMalformed(fset, c.Pos(),
					"misplaced annotation: //lint:frozen applies to struct fields and type declarations; //lint:freezer and //lint:hotpath apply to function declarations")
			}
		}
	}
}

// collectFuncAnnots handles //lint:freezer and //lint:hotpath on a
// function declaration's doc comment.
func (ai *annotIndex) collectFuncAnnots(fset *token.FileSet, d *ast.FuncDecl, info *types.Info, modPath string, consumed map[*ast.Comment]bool) {
	fn, _ := info.Defs[d.Name].(*types.Func)
	for _, a := range annotsIn(d.Doc) {
		consumed[a.c] = true
		switch {
		case a.bad != "":
			ai.noteMalformed(fset, a.c.Pos(), a.bad)
		case a.kind == "frozen":
			ai.noteMalformed(fset, a.c.Pos(), "//lint:frozen applies to struct fields and type declarations, not functions")
		case fn == nil:
			// type error elsewhere; nothing to attach to
		case a.kind == "freezer":
			ai.freezer[fn] = a.reason
		default: // hotpath
			pos := fset.Position(d.Pos())
			site := &hotpathSite{
				fn:      fn,
				kind:    a.hot,
				reason:  a.reason,
				display: shortFuncName(fn, modPath),
				file:    pos.Filename,
				test:    strings.HasSuffix(pos.Filename, "_test.go"),
				start:   pos.Line,
				end:     fset.Position(d.End()).Line,
			}
			ai.hot[fn] = site
			key := fmt.Sprintf("%s:%d", site.file, site.start)
			if !ai.siteAt[key] {
				ai.siteAt[key] = true
				ai.sites = append(ai.sites, site)
			}
		}
	}
}

// collectTypeAnnots handles //lint:frozen on type declarations and on the
// fields of top-level struct types.
func (ai *annotIndex) collectTypeAnnots(fset *token.FileSet, d *ast.GenDecl, ts *ast.TypeSpec, info *types.Info, consumed map[*ast.Comment]bool) {
	groups := []*ast.CommentGroup{ts.Doc, ts.Comment}
	if len(d.Specs) == 1 {
		groups = append(groups, d.Doc)
	}
	tn, _ := info.Defs[ts.Name].(*types.TypeName)
	for _, g := range groups {
		for _, a := range annotsIn(g) {
			consumed[a.c] = true
			switch {
			case a.bad != "":
				ai.noteMalformed(fset, a.c.Pos(), a.bad)
			case a.kind != "frozen":
				ai.noteMalformed(fset, a.c.Pos(), fmt.Sprintf("//lint:%s applies to function declarations, not types", a.kind))
			case tn != nil:
				ai.frozen[tn] = &frozenMark{
					desc:   fmt.Sprintf("frozen type %s.%s", pkgShort(tn.Pkg()), tn.Name()),
					reason: a.reason,
				}
			}
		}
	}
	st, ok := ts.Type.(*ast.StructType)
	if !ok || st.Fields == nil {
		return
	}
	for _, field := range st.Fields.List {
		for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
			for _, a := range annotsIn(g) {
				consumed[a.c] = true
				switch {
				case a.bad != "":
					ai.noteMalformed(fset, a.c.Pos(), a.bad)
				case a.kind != "frozen":
					ai.noteMalformed(fset, a.c.Pos(), fmt.Sprintf("//lint:%s applies to function declarations, not struct fields", a.kind))
				case len(field.Names) == 0:
					ai.noteMalformed(fset, a.c.Pos(), "//lint:frozen on an embedded field is not supported: name the field or freeze the embedded type")
				default:
					for _, name := range field.Names {
						if obj := info.Defs[name]; obj != nil {
							ai.frozen[obj] = &frozenMark{
								desc:   fmt.Sprintf("frozen field (%s.%s).%s", pkgShort(obj.Pkg()), ts.Name.Name, name.Name),
								reason: a.reason,
							}
						}
					}
				}
			}
		}
	}
}

// malformedFor returns the malformed-annotation diagnostics recorded in
// the unit's own files, in deterministic order.
func (ai *annotIndex) malformedFor(files []*ast.File, fset *token.FileSet) []Diagnostic {
	names := map[string]bool{}
	for _, f := range files {
		names[fset.Position(f.Pos()).Filename] = true
	}
	var keys []string
	for key, d := range ai.malformed {
		if names[d.Pos.Filename] {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]Diagnostic, 0, len(keys))
	for _, key := range keys {
		out = append(out, ai.malformed[key])
	}
	return out
}

// frozenObj returns the frozen mark of a field or type-name object.
func (ai *annotIndex) frozenObj(obj types.Object) (*frozenMark, bool) {
	if ai == nil || obj == nil {
		return nil, false
	}
	m, ok := ai.frozen[obj]
	return m, ok
}

// frozenNamed returns the frozen mark when t is (a pointer to) a
// //lint:frozen named type.
func (ai *annotIndex) frozenNamed(t types.Type) (*frozenMark, bool) {
	if ai == nil || t == nil {
		return nil, false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	m, ok := ai.frozen[n.Obj()]
	return m, ok
}

// isFreezer reports whether fn carries //lint:freezer.
func (ai *annotIndex) isFreezer(fn *types.Func) bool {
	if ai == nil || fn == nil {
		return false
	}
	_, ok := ai.freezer[fn]
	return ok
}

// hotOf returns fn's hotpath site, or nil.
func (ai *annotIndex) hotOf(fn *types.Func) *hotpathSite {
	if ai == nil || fn == nil {
		return nil
	}
	return ai.hot[fn]
}

// shortFuncName renders fn's qualified name with the module path stripped:
// (*internal/lp.luFactor).ftran, internal/lp.SolveFrom.
func shortFuncName(fn *types.Func, modPath string) string {
	name := fn.FullName()
	if modPath != "" {
		name = strings.ReplaceAll(name, modPath+"/", "")
		name = strings.ReplaceAll(name, modPath+".", ".")
	}
	return name
}

// pkgShort returns the package's short name for report messages.
func pkgShort(pkg *types.Package) string {
	if pkg == nil {
		return "_"
	}
	return pkg.Name()
}
