package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// The escape gate is the dynamic half of the hot-path allocation
// contract: it rebuilds the module with `go build -gcflags=-m`, parses
// the compiler's escape-analysis diagnostics, and attributes every
// "escapes to heap"/"moved to heap" line that falls inside a
// //lint:hotpath function to that function. The committed
// LINT_ESCAPE.json baseline records the accepted escapes (the bounded
// hot paths legitimately allocate on setup and error paths); verify.sh
// diffs fresh output against it, so a *new* heap escape in a hot kernel
// fails verification before any benchmark notices. Baseline entries are
// keyed by (function, message), not line numbers, so unrelated edits to
// the same file do not invalidate them.

// EscapeFinding is one compiler-reported heap escape inside a
// //lint:hotpath function.
type EscapeFinding struct {
	Func    string `json:"func"`    // module-shortened qualified name
	File    string `json:"file"`    // module-relative path
	Line    int    `json:"line"`    // line at the time of recording (informational)
	Message string `json:"message"` // compiler diagnostic, e.g. "make([]float64, m) escapes to heap"
}

func (f EscapeFinding) key() string { return f.Func + "\x00" + f.Message }

// String renders the finding like a diagnostic.
func (f EscapeFinding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s (escape)", f.File, f.Line, f.Func, f.Message)
}

// EscapeBaseline is the LINT_ESCAPE.json schema.
type EscapeBaseline struct {
	Note    string          `json:"note,omitempty"`
	Go      string          `json:"go,omitempty"` // toolchain that recorded the baseline
	Escapes []EscapeFinding `json:"escapes"`
}

// EscapeFindings loads the packages in dirs, registers their
// //lint:hotpath sites, rebuilds them with -gcflags=-m and returns the
// heap escapes attributed to hotpath functions plus the number of hotpath
// sites checked. Test files are excluded: `go build` does not compile
// them, so their hot paths are invisible to the compiler pass.
func EscapeFindings(dirs []string) ([]EscapeFinding, int, error) {
	loader, err := NewLoader()
	if err != nil {
		return nil, 0, err
	}
	for _, dir := range dirs {
		if _, err := loader.LoadDir(dir); err != nil {
			return nil, 0, err
		}
	}
	var sites []*hotpathSite
	for _, site := range loader.annots.sites {
		if !site.test {
			sites = append(sites, site)
		}
	}
	if len(sites) == 0 {
		return nil, 0, nil
	}
	args := []string{"build", "-gcflags=-m"}
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, 0, err
		}
		rel, err := filepath.Rel(loader.ModRoot(), abs)
		if err != nil {
			return nil, 0, err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = loader.ModRoot()
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, 0, fmt.Errorf("go build -gcflags=-m: %w\n%s", err, out)
	}
	findings := parseEscapeOutput(string(out), loader.ModRoot(), sites)
	return findings, len(sites), nil
}

// parseEscapeOutput extracts the escape diagnostics that land inside a
// hotpath site. Lines look like
//
//	internal/lp/factor.go:123:14: make([]float64, m) escapes to heap
//
// with paths relative to the module root (the build's working directory)
// and "# pkgpath" group headers interspersed.
func parseEscapeOutput(out, modRoot string, sites []*hotpathSite) []EscapeFinding {
	var findings []EscapeFinding
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, lineNo, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		abs := filepath.Join(modRoot, filepath.FromSlash(file))
		for _, site := range sites {
			if site.file == abs && lineNo >= site.start && lineNo <= site.end {
				f := EscapeFinding{Func: site.display, File: file, Line: lineNo, Message: msg}
				if !seen[f.key()] {
					seen[f.key()] = true
					findings = append(findings, f)
				}
				break
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Func != findings[j].Func {
			return findings[i].Func < findings[j].Func
		}
		return findings[i].Message < findings[j].Message
	})
	return findings
}

// splitDiagLine parses "path:line:col: message".
func splitDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	if _, err := strconv.Atoi(parts[2]); err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}

// LoadEscapeBaseline reads a LINT_ESCAPE.json file.
func LoadEscapeBaseline(path string) (*EscapeBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b EscapeBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

// WriteEscapeBaseline records findings as the new baseline at path.
func WriteEscapeBaseline(path string, findings []EscapeFinding) error {
	b := EscapeBaseline{
		Note:    "accepted heap escapes inside //lint:hotpath functions; regenerate with `dsctalint -escape -baseline " + filepath.Base(path) + " -write ./...`",
		Go:      runtime.Version(),
		Escapes: findings,
	}
	if b.Escapes == nil {
		b.Escapes = []EscapeFinding{}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// DiffEscapes splits fresh findings against a baseline into new escapes
// (fail the gate) and stale baseline entries (warn: the escape no longer
// happens, the baseline can be regenerated).
func DiffEscapes(found []EscapeFinding, baseline *EscapeBaseline) (news, stale []EscapeFinding) {
	inBase := map[string]bool{}
	for _, f := range baseline.Escapes {
		inBase[f.key()] = true
	}
	fresh := map[string]bool{}
	for _, f := range found {
		fresh[f.key()] = true
		if !inBase[f.key()] {
			news = append(news, f)
		}
	}
	for _, f := range baseline.Escapes {
		if !fresh[f.key()] {
			stale = append(stale, f)
		}
	}
	return news, stale
}
