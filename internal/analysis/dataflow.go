package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// flowScope is the shared intraprocedural dataflow core. Inside one
// function body it tracks which local identifiers alias "tainted" memory —
// //lint:frozen fields and types for the cowsafety analyzer, parameters
// for the callgraph mutation summaries — and finds operations that write
// to tainted memory through a reference step (pointer deref, slice or map
// element, field of a pointed-to struct, append/copy/delete, or a call
// into a function whose summary says it mutates the argument).
//
// The precision compromise is deliberate: a plain value copy of a tainted
// struct is itself tainted (its slice/pointer fields still alias the
// shared backing), but a scalar write to the copy stays local and is not
// reported — only writes that pass through a reference step reach shared
// state. This keeps the copy-on-write idioms of internal/lp (struct-copy
// adoption of a frozen luFactor, value rows read out of a shared base)
// clean while catching writes that pierce them.
type flowScope struct {
	info      *types.Info
	annot     *annotIndex
	sums      *unitSummary // callee mutation summaries; may be nil
	useFrozen bool         // treat frozen fields/types as taint origins
	taint     map[types.Object]string
}

func newFlowScope(info *types.Info, annot *annotIndex, sums *unitSummary, useFrozen bool) *flowScope {
	return &flowScope{
		info:      info,
		annot:     annot,
		sums:      sums,
		useFrozen: useFrozen,
		taint:     map[types.Object]string{},
	}
}

// paramOriginPrefix marks taint seeded from a function parameter during
// summary construction; the suffix is the parameter index.
const paramOriginPrefix = "param#"

func paramOrigin(i int) string { return paramOriginPrefix + strconv.Itoa(i) }

func paramIndexOf(origin string) (int, bool) {
	rest, ok := strings.CutPrefix(origin, paramOriginPrefix)
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return i, true
}

// propagate runs the taint fixpoint over body: locals assigned from a
// tainted expression (including range variables over tainted containers)
// become tainted with the same origin description.
func (fs *flowScope) propagate(body ast.Node) {
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					if fs.taintIdent(lhs, s.Rhs[i]) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, name := range s.Names {
					if fs.taintIdent(name, s.Values[i]) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				org, ok := fs.origin(s.X)
				if !ok {
					return true
				}
				// Key and value vars may alias elements of the tainted
				// container; taint both — the write rules only fire on
				// reference steps, so scalar keys are harmless.
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if e == nil {
						continue
					}
					if id, isIdent := e.(*ast.Ident); isIdent && id.Name != "_" {
						obj := objOf(fs.info, id)
						if obj != nil {
							if _, done := fs.taint[obj]; !done {
								fs.taint[obj] = org
								changed = true
							}
						}
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// taintIdent taints the identifier lhs when rhs has a tainted origin.
func (fs *flowScope) taintIdent(lhs, rhs ast.Expr) bool {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := objOf(fs.info, id)
	if obj == nil {
		return false
	}
	if _, done := fs.taint[obj]; done {
		return false
	}
	org, ok := fs.origin(rhs)
	if !ok {
		return false
	}
	fs.taint[obj] = org
	return true
}

// origin traces e to a taint source and returns its description. It
// follows the aliasing steps — indexing, slicing, deref, address-of,
// append, conversions — and, with useFrozen, treats selections of
// //lint:frozen fields and values of //lint:frozen named types as sources.
func (fs *flowScope) origin(e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	e = unparen(e)
	if fs.useFrozen {
		if tv, ok := fs.info.Types[e]; ok {
			if m, ok := fs.annot.frozenNamed(tv.Type); ok {
				return m.desc, true
			}
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := objOf(fs.info, x); obj != nil {
			if org, ok := fs.taint[obj]; ok {
				return org, true
			}
		}
	case *ast.SelectorExpr:
		if fs.useFrozen {
			if v := fieldOf(fs.info, x); v != nil {
				if m, ok := fs.annot.frozenObj(v); ok {
					return m.desc, true
				}
			}
		}
		if pkgNameOf(fs.info, x.X) == nil {
			return fs.origin(x.X)
		}
	case *ast.IndexExpr:
		return fs.origin(x.X)
	case *ast.SliceExpr:
		return fs.origin(x.X)
	case *ast.StarExpr:
		return fs.origin(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return fs.origin(x.X)
		}
	case *ast.CallExpr:
		if builtinName(fs.info, x) == "append" && len(x.Args) > 0 {
			return fs.origin(x.Args[0])
		}
		if tv, ok := fs.info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return fs.origin(x.Args[0]) // conversion keeps the backing store
		}
	}
	return "", false
}

// refLoc reports whether writing to the location e mutates memory reached
// through a reference step from tainted state, and names the origin.
func (fs *flowScope) refLoc(e ast.Expr) (string, bool) {
	switch x := unparen(e).(type) {
	case *ast.IndexExpr:
		switch fs.exprType(x.X).(type) {
		case *types.Slice, *types.Map, *types.Pointer:
			return fs.origin(x.X)
		case *types.Array:
			return fs.refLoc(x.X) // value array element is part of the value
		default:
			return fs.origin(x.X)
		}
	case *ast.StarExpr:
		return fs.origin(x.X)
	case *ast.SelectorExpr:
		if sel, ok := fs.info.Selections[x]; ok && sel.Indirect() {
			return fs.origin(x.X)
		}
		return fs.refLoc(x.X)
	}
	return "", false
}

// exprType returns the underlying type of e, or nil.
func (fs *flowScope) exprType(e ast.Expr) types.Type {
	tv, ok := fs.info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

// writeFn receives one mutation event: the position, what kind of write
// it is ("write to", "append to slice aliasing", ...) and the origin
// description of the tainted memory it reaches.
type writeFn func(pos token.Pos, action, origin string)

// scanWrites walks body (after propagate) and reports every operation
// that mutates tainted memory.
func (fs *flowScope) scanWrites(body ast.Node, report writeFn) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				fs.checkWrite(lhs, report)
			}
		case *ast.IncDecStmt:
			fs.checkWrite(s.X, report)
		case *ast.CallExpr:
			fs.checkCall(s, report)
		}
		return true
	})
}

// checkWrite reports when assigning to lhs mutates tainted memory.
func (fs *flowScope) checkWrite(lhs ast.Expr, report writeFn) {
	lhs = unparen(lhs)
	if _, ok := lhs.(*ast.Ident); ok {
		return // rebinding a local never mutates shared state
	}
	if sel, ok := lhs.(*ast.SelectorExpr); ok && fs.useFrozen {
		if v := fieldOf(fs.info, sel); v != nil {
			if m, ok := fs.annot.frozenObj(v); ok {
				report(lhs.Pos(), "write to", m.desc)
				return
			}
		}
	}
	if org, ok := fs.refLoc(lhs); ok {
		report(lhs.Pos(), "write through", org)
	}
}

// checkCall reports mutations performed by builtins (append, copy,
// delete, clear), by known in-place stdlib mutators (sort.Slice et al,
// container/heap) and by in-unit callees whose summary marks a parameter
// or receiver as mutated.
func (fs *flowScope) checkCall(call *ast.CallExpr, report writeFn) {
	switch builtinName(fs.info, call) {
	case "append":
		if len(call.Args) > 0 {
			if org, ok := fs.origin(call.Args[0]); ok {
				report(call.Pos(), "append to slice aliasing", org)
			}
		}
		return
	case "copy":
		if len(call.Args) == 2 {
			if org, ok := fs.origin(call.Args[0]); ok {
				report(call.Pos(), "copy into", org)
			}
		}
		return
	case "delete", "clear":
		if len(call.Args) >= 1 {
			if org, ok := fs.origin(call.Args[0]); ok {
				report(call.Pos(), "clear/delete of", org)
			}
		}
		return
	}
	fn := calleeFunc(fs.info, call)
	if fn == nil {
		return
	}
	if idx, ok := externalMutatorArg(fn); ok {
		if idx < len(call.Args) {
			if org, ok := fs.origin(call.Args[idx]); ok {
				report(call.Pos(), "in-place "+fn.Pkg().Name()+"."+fn.Name()+" mutation of", org)
			}
		}
		return
	}
	if fs.sums == nil {
		return
	}
	fi := fs.sums.byFn[fn]
	if fi == nil {
		return
	}
	recv, args := receiverAndArgs(fs.info, call, fi.hasRecv)
	for i, mutated := range fi.mutates {
		if !mutated {
			continue
		}
		arg := argForParam(recv, args, fi.hasRecv, i)
		if arg == nil {
			continue
		}
		if org, ok := fs.origin(arg); ok {
			report(call.Pos(), "call to "+fn.Name()+" mutates", org)
		}
	}
}

// externalMutatorArg returns the argument index a well-known stdlib
// function mutates in place.
func externalMutatorArg(fn *types.Func) (int, bool) {
	if fn == nil || fn.Pkg() == nil {
		return 0, false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Float64s", "Strings":
			return 0, true
		}
	case "container/heap":
		switch fn.Name() {
		case "Init", "Push", "Pop", "Fix", "Remove":
			return 0, true
		}
	}
	return 0, false
}

// receiverAndArgs splits a call into receiver and positional arguments,
// handling both method values (x.m(a)) and method expressions (T.m(x, a)).
func receiverAndArgs(info *types.Info, call *ast.CallExpr, hasRecv bool) (recv ast.Expr, args []ast.Expr) {
	if !hasRecv {
		return nil, call.Args
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			switch s.Kind() {
			case types.MethodVal:
				return sel.X, call.Args
			case types.MethodExpr:
				if len(call.Args) > 0 {
					return call.Args[0], call.Args[1:]
				}
			}
		}
	}
	return nil, call.Args
}

// argForParam maps a parameter index (receiver first when present) to the
// call expression bound to it, or nil when it cannot be determined.
func argForParam(recv ast.Expr, args []ast.Expr, hasRecv bool, i int) ast.Expr {
	if hasRecv {
		if i == 0 {
			return recv
		}
		i--
	}
	if i < len(args) {
		return args[i]
	}
	return nil
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// fieldOf returns the struct field a selector selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
