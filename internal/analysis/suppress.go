package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool
}

// suppressions indexes lint:ignore directives by file and line. A
// directive suppresses matching findings on its own line and on the line
// directly below it (the usual placement: a full-line comment above the
// offending statement, or a trailing comment on the statement itself).
type suppressions struct {
	byLine    map[string]map[int][]*ignoreDirective
	malformed []Diagnostic
}

const directivePrefix = "//lint:ignore"

// collectSuppressions scans the comments of the unit's files.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "dsctalint",
						Message:  "malformed lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>...] <reason>",
					})
					continue
				}
				d := &ignoreDirective{pos: pos, analyzers: map[string]bool{}}
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[strings.TrimSpace(name)] = true
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*ignoreDirective{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return s
}

// filter drops findings covered by a directive.
func (s *suppressions) filter(diags []Diagnostic) []Diagnostic {
	if len(s.byLine) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		if !s.covers(d) {
			out = append(out, d)
		}
	}
	return out
}

func (s *suppressions) covers(d Diagnostic) bool {
	lines := s.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.analyzers[d.Analyzer] {
				return true
			}
		}
	}
	return false
}
