package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (typed or untyped, but not complex).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether e is a compile-time numeric constant equal
// to zero (e.g. 0, 0.0, or a named zero constant).
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// isConst reports whether e is any compile-time constant.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil for indirect
// calls through function values, conversions and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name &&
		(f.Type() == nil || f.Type().(*types.Signature).Recv() == nil)
}

// pkgNameOf returns the imported package an identifier refers to, or nil.
func pkgNameOf(info *types.Info, e ast.Expr) *types.PkgName {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedIn reports whether t is (an alias of) the named type pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
