package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow extends detrand from nondeterministic *sources* to
// nondeterministic *flows*: Go map iteration order is randomised per run,
// so any order-sensitive sink fed from a map range poisons reproducibility
// — the paper's tables and figures, the differential corpus, and the
// deterministic-incumbent guarantee of the parallel B&B search all depend
// on byte-identical reruns. Reported flows:
//
//   - append to a variable declared outside a map range, unless the slice
//     is passed to sort.* / sort.Slice afterwards in the same function
//     (the collect-keys-then-sort idiom stays clean);
//   - channel sends and fmt output inside a map range;
//   - string accumulation (s += ...) across map-range iterations;
//   - goroutine fan-in that appends to a captured slice (completion order
//     is scheduling-dependent; index writes and channels are clean).
var DetFlow = &Analyzer{
	Name: "detflow",
	Doc:  "reports order-sensitive data flows out of map iteration and goroutine fan-in without a deterministic merge",
	Run:  runDetFlow,
}

func runDetFlow(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetFlows(p, fd.Body)
		}
	}
}

// checkDetFlows scans one function body. Nested function literals are
// visited as part of the enclosing body: their map ranges are just as
// order-sensitive, and the sort-exemption search spans the whole body.
func checkDetFlows(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if isMapRange(p.Info, s) {
				checkMapRangeBody(p, body, s)
			}
		case *ast.GoStmt:
			if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
				checkGoFanIn(p, lit)
			}
		}
		return true
	})
}

func isMapRange(info *types.Info, s *ast.RangeStmt) bool {
	tv, ok := info.Types[s.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody flags order-sensitive sinks inside one map range.
func checkMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s != rng && isMapRange(p.Info, s) {
				return false // the nested map range reports its own body
			}
		case *ast.SendStmt:
			p.Reportf(s.Pos(), "channel send inside a range over a map: delivery order follows the randomised map iteration; collect and sort keys first")
		case *ast.AssignStmt:
			checkMapRangeAssign(p, fnBody, rng, s)
		case *ast.CallExpr:
			if fn := calleeFunc(p.Info, s); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				p.Reportf(s.Pos(), "fmt output inside a range over a map: line order follows the randomised map iteration; collect and sort keys first")
			}
		}
		return true
	})
}

// checkMapRangeAssign flags appends and string accumulation into
// variables that outlive the map range.
func checkMapRangeAssign(p *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, s *ast.AssignStmt) {
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
		if obj := rootObj(p.Info, s.Lhs[0]); obj != nil && declaredOutside(obj, rng) && isStringType(p.Info, s.Lhs[0]) {
			p.Reportf(s.Pos(), "string accumulation across a range over a map: element order follows the randomised map iteration; collect and sort keys first")
		}
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || builtinName(p.Info, call) != "append" || len(call.Args) == 0 {
			continue
		}
		obj := rootObj(p.Info, s.Lhs[i])
		if obj == nil || !declaredOutside(obj, rng) {
			continue
		}
		if sortedAfter(p.Info, fnBody, rng.End(), obj) {
			continue // collect-then-sort idiom
		}
		p.Reportf(call.Pos(), "append inside a range over a map collects elements in randomised iteration order and %s is never sorted afterwards: sort it (or range over sorted keys)", obj.Name())
	}
}

// checkGoFanIn flags appends to captured slices from inside a go-launched
// function literal: goroutine completion order is scheduling-dependent, so
// the merged order is not reproducible. Writing out[i] by index or
// funnelling results through a channel with a deterministic merge is clean.
func checkGoFanIn(p *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != len(s.Rhs) {
			return true
		}
		for i, rhs := range s.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok || builtinName(p.Info, call) != "append" || len(call.Args) == 0 {
				continue
			}
			obj := rootObj(p.Info, s.Lhs[i])
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				p.Reportf(call.Pos(), "goroutine appends to captured slice %s: the merged order depends on scheduling; write results by index or merge with a deterministic tie-break", obj.Name())
			}
		}
		return true
	})
}

// rootObj returns the object of the base identifier of an lvalue chain
// (x, x.f, x[i] all root at x), or nil.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return objOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement (so writes to it survive the loop).
func declaredOutside(obj types.Object, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}

// sortedAfter reports whether obj is passed to a sort entry point after
// pos inside body — sort.Slice/SliceStable/Sort/Stable/Ints/Float64s/
// Strings(obj, ...) or slices.Sort*(obj).
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		isSort := false
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Slice", "SliceStable", "Sort", "Stable", "Ints", "Float64s", "Strings":
				isSort = true
			}
		case "slices":
			isSort = strings.HasPrefix(fn.Name(), "Sort")
		}
		if isSort && rootObj(info, call.Args[0]) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
