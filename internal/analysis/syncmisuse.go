package analysis

import (
	"go/ast"
	"go/types"
)

// SyncMisuse guards the experiment harness's concurrent fan-out against
// the two mistakes that have historically produced silent corruption
// there: copying a lock by value (a copied sync.Mutex/WaitGroup guards
// nothing) and goroutine closures capturing loop variables by reference.
// Specifically it flags:
//
//   - function parameters, receivers and results whose non-pointer type
//     contains a sync lock type (Mutex, RWMutex, WaitGroup, Cond, Once,
//     Pool, Map), directly or embedded in structs/arrays;
//   - range statements whose key/value variables copy a lock-containing
//     element;
//   - `go func() {...}()` literals inside a loop that reference the
//     loop's iteration variables instead of receiving them as arguments.
//     (Go 1.22 made per-iteration variables the default, but the explicit
//     argument form stays correct under every toolchain and is required
//     here.)
var SyncMisuse = &Analyzer{
	Name: "syncmisuse",
	Doc:  "flags locks copied by value and goroutine closures capturing loop variables",
	Run:  runSyncMisuse,
}

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Cond": true, "Once": true, "Pool": true, "Map": true,
}

func runSyncMisuse(p *Pass) {
	p.Inspect(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncDecl:
			if s.Recv != nil {
				checkLockFields(p, s.Recv, "receiver")
			}
			checkFuncType(p, s.Type)
		case *ast.FuncLit:
			checkFuncType(p, s.Type)
		case *ast.RangeStmt:
			checkRangeCopies(p, s)
			checkGoCaptures(p, s.Body, rangeVars(p, s))
		case *ast.ForStmt:
			checkGoCaptures(p, s.Body, forVars(p, s))
		}
		return true
	})
}

func checkFuncType(p *Pass, ft *ast.FuncType) {
	checkLockFields(p, ft.Params, "parameter")
	if ft.Results != nil {
		checkLockFields(p, ft.Results, "result")
	}
}

func checkLockFields(p *Pass, fl *ast.FieldList, kind string) {
	for _, field := range fl.List {
		t := p.Info.Types[field.Type].Type
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t, nil) {
			p.Reportf(field.Type.Pos(), "%s passes %s by value, copying its lock; use a pointer", kind, types.TypeString(t, types.RelativeTo(p.Pkg)))
		}
	}
}

// checkRangeCopies flags `for k, v := range xs` where k or v copies a
// lock-containing value out of the container.
func checkRangeCopies(p *Pass, s *ast.RangeStmt) {
	for _, e := range []ast.Expr{s.Key, s.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		t := obj.Type()
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if containsLock(t, nil) {
			p.Reportf(id.Pos(), "range variable %s copies a value containing %s; range over indices or pointers", id.Name, types.TypeString(t, types.RelativeTo(p.Pkg)))
		}
	}
}

// containsLock reports whether t (traversing structs and arrays, but not
// pointers or other references) embeds one of the sync lock types.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// rangeVars collects the := -declared iteration variables of a range loop.
func rangeVars(p *Pass, s *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// forVars collects the variables declared in a for statement's init clause.
func forVars(p *Pass, s *ast.ForStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	if assign, ok := s.Init.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
	}
	return vars
}

// checkGoCaptures reports goroutine function literals in body that
// reference any of the loop's iteration variables.
func checkGoCaptures(p *Pass, body *ast.BlockStmt, vars map[types.Object]bool) {
	if len(vars) == 0 || body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || !vars[obj] || reported[obj] {
				return true
			}
			reported[obj] = true
			p.Reportf(id.Pos(), "goroutine closure captures loop variable %s; pass it as an argument (go func(%s ...) {...}(%s))", id.Name, id.Name, id.Name)
			return true
		})
		return true
	})
}
