package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// funcInfo is the per-function summary the callgraph layer computes for
// one lint unit: which parameters (receiver first) the function mutates
// through a reference step, and whether its body can allocate.
type funcInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	params  []types.Object // receiver first when present; nil for unnamed/_
	hasRecv bool
	mutates []bool // aligned with params

	allocPos  token.Pos // first allocation site (direct or via a callee)
	allocWhat string    // description of that site; "" when none
	mayAlloc  bool
}

// unitSummary indexes the summaries of every function declared in the
// unit. list preserves declaration order so analyzer output stays
// deterministic; byFn serves callsite lookups.
type unitSummary struct {
	list []*funcInfo
	byFn map[*types.Func]*funcInfo
}

// summarize computes the function summaries of the unit with two
// fixpoints: parameter-mutation (a function mutates a parameter if it
// writes through it or passes it to a callee that does) and transitive
// may-allocate (a function allocates if its body holds an allocation site
// or it calls an in-unit non-hotpath function that does). Cross-package
// callees are out of scope: the `dsctalint -escape` gate owns those.
func summarize(p *Pass) *unitSummary {
	s := &unitSummary{byFn: map[*types.Func]*funcInfo{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd, hasRecv: fd.Recv != nil}
			for _, list := range []*ast.FieldList{fd.Recv, fd.Type.Params} {
				if list == nil {
					continue
				}
				for _, field := range list.List {
					if len(field.Names) == 0 {
						fi.params = append(fi.params, nil) // unnamed: keep alignment
						continue
					}
					for _, name := range field.Names {
						fi.params = append(fi.params, p.Info.Defs[name])
					}
				}
			}
			fi.mutates = make([]bool, len(fi.params))
			fi.allocPos, fi.allocWhat = firstAllocSite(p.Info, fd.Body)
			fi.mayAlloc = fi.allocWhat != ""
			s.list = append(s.list, fi)
			s.byFn[fn] = fi
		}
	}
	s.mutationFixpoint(p)
	s.allocFixpoint(p)
	return s
}

// mutationFixpoint marks mutated parameters until stable, so mutation
// through a chain of in-unit calls (f passes its receiver to g, g writes
// through it) is attributed back to f's receiver.
func (s *unitSummary) mutationFixpoint(p *Pass) {
	for {
		changed := false
		for _, fi := range s.list {
			fs := newFlowScope(p.Info, p.annot, s, false)
			for i, obj := range fi.params {
				if obj != nil {
					fs.taint[obj] = paramOrigin(i)
				}
			}
			fs.propagate(fi.decl.Body)
			fs.scanWrites(fi.decl.Body, func(_ token.Pos, _, origin string) {
				if i, ok := paramIndexOf(origin); ok && i < len(fi.mutates) && !fi.mutates[i] {
					fi.mutates[i] = true
					changed = true
				}
			})
		}
		if !changed {
			return
		}
	}
}

// allocFixpoint propagates may-allocate through in-unit calls. Callees
// annotated //lint:hotpath are treated as allocation-free here: their own
// bodies are checked directly by the hotalloc analyzer, and charging the
// caller too would double-report. Calls inside nested function literals
// are not charged to the enclosing function — creating the literal is
// already an allocation site of its own.
func (s *unitSummary) allocFixpoint(p *Pass) {
	for {
		changed := false
		for _, fi := range s.list {
			if fi.mayAlloc {
				continue
			}
			inspectSkippingFuncLits(fi.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(p.Info, call)
				if callee == nil {
					return true
				}
				cal := s.byFn[callee]
				if cal != nil && cal.mayAlloc && p.annot.hotOf(callee) == nil {
					fi.mayAlloc = true
					fi.allocPos = call.Pos()
					fi.allocWhat = fmt.Sprintf("calls %s (%s)", callee.Name(), cal.allocWhat)
					changed = true
					return false
				}
				return true
			})
		}
		if !changed {
			return
		}
	}
}

// inspectSkippingFuncLits walks n like ast.Inspect but does not descend
// into nested function literals (their bodies run on a different path).
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// firstAllocSite finds the first unconditional-kind allocation site in
// body for the transitive may-allocate summary: make/new, function
// literals, goroutine launches, and calls into the allocating fmt/errors/
// strconv/strings/sort stdlib entry points. Plain append is deliberately
// not a site — amortised growth into pre-sized arenas is the repo's pinned
// idiom (AllocsPerRun owns it). Composite literals, string concatenation
// and defer are judged only inside //lint:hotpath bodies (see hotalloc):
// in ordinary helpers they are routinely stack-allocated and would make
// the transitive summary uselessly noisy.
func firstAllocSite(info *types.Info, body *ast.BlockStmt) (token.Pos, string) {
	var pos token.Pos
	var what string
	inspectSkippingFuncLitBodies := func(n ast.Node, fn func(ast.Node) bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if what != "" {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				pos, what = n.Pos(), "function literal (closure allocation)"
				return false
			}
			return fn(n)
		})
	}
	inspectSkippingFuncLitBodies(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pos, what = x.Pos(), "go statement (new goroutine)"
			return false
		case *ast.CallExpr:
			switch builtinName(info, x) {
			case "make", "new":
				pos, what = x.Pos(), builtinName(info, x)+" allocation"
				return false
			}
			if fn := calleeFunc(info, x); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt", "errors", "strconv", "strings", "sort":
					pos, what = x.Pos(), fmt.Sprintf("call to %s.%s", fn.Pkg().Name(), fn.Name())
					return false
				}
			}
		}
		return true
	})
	return pos, what
}
