package analysis

import (
	"go/ast"
)

// WallClock keeps solver hot paths clock-free and benchmarkable: reading
// the wall clock inside the LP/MIP/approximation cores makes pivot-level
// behaviour timing-dependent and adds a syscall to inner loops. The
// analyzer flags time.Now() calls in the solver packages (any package
// named lp, mip, core or approx); _test.go files are exempt. The sanctioned
// deadline-check sites — the once-per-solve stamp and the every-128-pivots
// deadline probe — carry //lint:ignore wallclock directives explaining why
// they are allowed.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "flags time.Now() in solver packages (lp, mip, core, approx) outside sanctioned deadline checks",
	Run:  runWallClock,
}

// solverPkgs are the package names whose non-test code must stay clock-free.
var solverPkgs = map[string]bool{"lp": true, "mip": true, "core": true, "approx": true}

func runWallClock(p *Pass) {
	if p.Pkg == nil || !solverPkgs[p.Pkg.Name()] {
		return
	}
	p.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isPkgFunc(calleeFunc(p.Info, call), "time", "Now") {
			return true
		}
		if p.InTestFile(call.Pos()) {
			return true
		}
		p.Reportf(call.Pos(), "time.Now() in solver package %s; keep hot paths clock-free (inject deadlines via Options) or sanction with //lint:ignore wallclock <reason>", p.Pkg.Name())
		return true
	})
}
