package segtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

// naive is a reference implementation with the same interface semantics.
type naive struct{ vals []float64 }

func (n *naive) addRange(l, r int, d float64) {
	if l < 0 {
		l = 0
	}
	if r >= len(n.vals) {
		r = len(n.vals) - 1
	}
	for i := l; i <= r; i++ {
		n.vals[i] += d
	}
}

func (n *naive) minRange(l, r int) float64 {
	if l < 0 {
		l = 0
	}
	if r >= len(n.vals) {
		r = len(n.vals) - 1
	}
	m := math.Inf(1)
	for i := l; i <= r && i >= 0; i++ {
		if n.vals[i] < m {
			m = n.vals[i]
		}
	}
	return m
}

func TestBasicOperations(t *testing.T) {
	tr := New([]float64{5, 3, 8, 1, 9})
	if got := tr.MinRange(0, 4); !numeric.AlmostEqual(got, 1) {
		t.Errorf("min all = %g, want 1", got)
	}
	if got := tr.MinRange(0, 2); !numeric.AlmostEqual(got, 3) {
		t.Errorf("min [0,2] = %g, want 3", got)
	}
	tr.AddRange(2, 4, -2)
	if got := tr.MinRange(0, 4); !numeric.AlmostEqual(got, -1) {
		t.Errorf("after add, min = %g, want -1", got)
	}
	if got := tr.Get(3); !numeric.AlmostEqual(got, -1) {
		t.Errorf("Get(3) = %g, want -1", got)
	}
	if got := tr.Get(0); !numeric.AlmostEqual(got, 5) {
		t.Errorf("Get(0) = %g, want 5", got)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := New(nil)
	if got := empty.MinRange(0, 10); !math.IsInf(got, 1) {
		t.Errorf("empty tree min = %g, want +Inf", got)
	}
	empty.AddRange(0, 5, 3) // must not panic
	one := New([]float64{7})
	if !numeric.AlmostEqual(one.MinRange(0, 0), 7) {
		t.Error("single-leaf tree broken")
	}
	one.AddRange(0, 0, -7)
	if one.Get(0) != 0 {
		t.Error("single-leaf add broken")
	}
}

func TestClippingAndEmptyIntervals(t *testing.T) {
	tr := New([]float64{1, 2, 3})
	if got := tr.MinRange(-5, 100); !numeric.AlmostEqual(got, 1) {
		t.Errorf("clipped full range min = %g", got)
	}
	if got := tr.MinRange(2, 1); !math.IsInf(got, 1) {
		t.Errorf("empty interval min = %g, want +Inf", got)
	}
	tr.AddRange(5, 10, 99) // fully out of range: no-op
	if got := tr.MinRange(0, 2); !numeric.AlmostEqual(got, 1) {
		t.Errorf("out-of-range add changed values: min = %g", got)
	}
}

func TestGetPanics(t *testing.T) {
	tr := New([]float64{1})
	defer func() {
		if recover() == nil {
			t.Error("Get out of range should panic")
		}
	}()
	tr.Get(1)
}

func TestValuesSnapshot(t *testing.T) {
	tr := New([]float64{4, 5, 6})
	tr.AddRange(1, 2, 10)
	got := tr.Values()
	want := []float64{4, 15, 16}
	for i := range want {
		if !numeric.AlmostEqual(got[i], want[i]) {
			t.Errorf("Values = %v, want %v", got, want)
			break
		}
	}
}

func TestRandomizedAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()*100 - 50
		}
		tr := New(vals)
		ref := &naive{vals: append([]float64(nil), vals...)}
		for op := 0; op < 300; op++ {
			l := r.Intn(n)
			rr := l + r.Intn(n-l)
			if r.Intn(2) == 0 {
				d := r.Float64()*20 - 10
				tr.AddRange(l, rr, d)
				ref.addRange(l, rr, d)
			} else {
				got, want := tr.MinRange(l, rr), ref.minRange(l, rr)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d op %d: MinRange(%d,%d) = %g, want %g", trial, op, l, rr, got, want)
				}
			}
		}
		// Final full sweep.
		for i := 0; i < n; i++ {
			if math.Abs(tr.Get(i)-ref.vals[i]) > 1e-9 {
				t.Fatalf("trial %d: Get(%d) = %g, want %g", trial, i, tr.Get(i), ref.vals[i])
			}
		}
	}
}

func BenchmarkSuffixMinSegtree(b *testing.B) {
	const n = 2000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	tr := New(vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		_ = tr.MinRange(j, n-1)
		tr.AddRange(j, n-1, -0.001)
	}
}

func BenchmarkSuffixMinNaive(b *testing.B) {
	const n = 2000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	ref := &naive{vals: vals}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % n
		_ = ref.minRange(j, n-1)
		ref.addRange(j, n-1, -0.001)
	}
}
