// Package segtree implements a lazy segment tree over float64 values
// supporting range add and range minimum queries in O(log n).
//
// The scheduler uses it to maintain deadline slacks in Algorithm 1: when a
// piecewise-linear segment of task j receives Δ units of work, the slack of
// every prefix constraint i >= j decreases by Δ (a suffix range-add), and
// the amount of work that can still be granted to a later segment is the
// minimum slack over a suffix (a range-min query). This turns the paper's
// O(n²) inner loop into O(n log n); both variants are kept and compared in
// BenchmarkAblationSegtreeVsScan.
package segtree

import "math"

// Tree is a lazy range-add range-min segment tree. Use New to construct it.
type Tree struct {
	n    int
	min  []float64
	lazy []float64
}

// New builds a tree over the given initial values. The tree keeps its own
// copy; subsequent changes to vals do not affect it.
func New(vals []float64) *Tree {
	n := len(vals)
	t := &Tree{
		n:    n,
		min:  make([]float64, 4*maxInt(n, 1)),
		lazy: make([]float64, 4*maxInt(n, 1)),
	}
	if n > 0 {
		t.build(1, 0, n-1, vals)
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.n }

func (t *Tree) build(node, lo, hi int, vals []float64) {
	if lo == hi {
		t.min[node] = vals[lo]
		return
	}
	mid := (lo + hi) / 2
	t.build(2*node, lo, mid, vals)
	t.build(2*node+1, mid+1, hi, vals)
	t.min[node] = math.Min(t.min[2*node], t.min[2*node+1])
}

func (t *Tree) push(node int) {
	if t.lazy[node] != 0 {
		for _, c := range [2]int{2 * node, 2*node + 1} {
			t.lazy[c] += t.lazy[node]
			t.min[c] += t.lazy[node]
		}
		t.lazy[node] = 0
	}
}

// AddRange adds delta to every value with index in [l, r] (inclusive).
// Out-of-range or empty intervals are ignored.
func (t *Tree) AddRange(l, r int, delta float64) {
	if t.n == 0 {
		return
	}
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return
	}
	t.addRange(1, 0, t.n-1, l, r, delta)
}

func (t *Tree) addRange(node, lo, hi, l, r int, delta float64) {
	if r < lo || hi < l {
		return
	}
	if l <= lo && hi <= r {
		t.min[node] += delta
		t.lazy[node] += delta
		return
	}
	t.push(node)
	mid := (lo + hi) / 2
	t.addRange(2*node, lo, mid, l, r, delta)
	t.addRange(2*node+1, mid+1, hi, l, r, delta)
	t.min[node] = math.Min(t.min[2*node], t.min[2*node+1])
}

// MinRange returns the minimum value with index in [l, r] (inclusive),
// or +Inf when the clipped interval is empty.
func (t *Tree) MinRange(l, r int) float64 {
	if t.n == 0 {
		return math.Inf(1)
	}
	if l < 0 {
		l = 0
	}
	if r >= t.n {
		r = t.n - 1
	}
	if l > r {
		return math.Inf(1)
	}
	return t.minRange(1, 0, t.n-1, l, r)
}

func (t *Tree) minRange(node, lo, hi, l, r int) float64 {
	if r < lo || hi < l {
		return math.Inf(1)
	}
	if l <= lo && hi <= r {
		return t.min[node]
	}
	t.push(node)
	mid := (lo + hi) / 2
	return math.Min(t.minRange(2*node, lo, mid, l, r), t.minRange(2*node+1, mid+1, hi, l, r))
}

// Get returns the value at index i. It panics for out-of-range i.
func (t *Tree) Get(i int) float64 {
	if i < 0 || i >= t.n {
		panic("segtree: Get index out of range")
	}
	return t.minRange(1, 0, t.n-1, i, i)
}

// Values returns a snapshot of all leaf values.
func (t *Tree) Values() []float64 {
	out := make([]float64, t.n)
	for i := range out {
		out[i] = t.Get(i)
	}
	return out
}
