package incremental

import (
	"fmt"
	"sync"

	"repro/internal/mip"
)

// Sharded partitions the event stream across independent Engines by
// machine pool: each shard owns a disjoint set of machines (and the tasks
// routed to it) and an equal slice of the energy budget, so shards flush
// concurrently with no shared problem state. The partition is a
// restriction of the joint problem — the merged schedule is feasible for
// the global instance but its accuracy is a lower bound on the joint
// optimum, the usual price of pool sharding.
//
// Routing is deterministic: arrivals go to the shard with the fewest live
// tasks (ties to the lowest shard index), joins to the fewest live
// machines, departures and leaves follow the entity, budget changes split
// evenly. At a fixed shard count a fixed event stream always produces the
// same shard-local streams, so results are reproducible.
type Sharded struct {
	shards    []*Engine
	taskShard map[string]int
	machShard map[string]int
	stats     Stats
}

// NewSharded creates n independent shards, each configured with opts and
// a 1/n share of opts.Budget.
func NewSharded(n int, opts Options) *Sharded {
	if n <= 0 {
		panic(fmt.Sprintf("incremental: NewSharded(%d): need at least one shard", n))
	}
	s := &Sharded{
		shards:    make([]*Engine, n),
		taskShard: make(map[string]int),
		machShard: make(map[string]int),
	}
	sub := opts
	sub.Budget = opts.Budget / float64(n)
	// Batching is coordinated here: shard engines never auto-flush on Post,
	// Flush drains all shards together in parallel.
	sub.BatchWindow = 1 << 30
	for i := range s.shards {
		s.shards[i] = New(sub)
	}
	return s
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Engine returns shard i's engine for inspection (stats, live counts).
// Callers must not Post to it directly — routing lives in the wrapper.
func (s *Sharded) Engine(i int) *Engine { return s.shards[i] }

// route picks the shard for ev, recording new entities and forgetting
// departed ones. BudgetChange returns -1: it fans out to every shard.
func (s *Sharded) route(ev Event) (int, error) {
	switch ev.Kind {
	case TaskArrive:
		if _, dup := s.taskShard[ev.Task]; dup {
			return 0, fmt.Errorf("incremental: task %q already live", ev.Task)
		}
		best := 0
		for i := 1; i < len(s.shards); i++ {
			if s.shards[i].projCount(true) < s.shards[best].projCount(true) {
				best = i
			}
		}
		s.taskShard[ev.Task] = best
		return best, nil
	case TaskDepart:
		sh, ok := s.taskShard[ev.Task]
		if !ok {
			return 0, fmt.Errorf("incremental: task %q not live", ev.Task)
		}
		delete(s.taskShard, ev.Task)
		return sh, nil
	case MachineJoin:
		if _, dup := s.machShard[ev.Machine]; dup {
			return 0, fmt.Errorf("incremental: machine %q already live", ev.Machine)
		}
		best := 0
		for i := 1; i < len(s.shards); i++ {
			if s.shards[i].projCount(false) < s.shards[best].projCount(false) {
				best = i
			}
		}
		s.machShard[ev.Machine] = best
		return best, nil
	case MachineLeave:
		sh, ok := s.machShard[ev.Machine]
		if !ok {
			return 0, fmt.Errorf("incremental: machine %q not live", ev.Machine)
		}
		delete(s.machShard, ev.Machine)
		return sh, nil
	case BudgetChange:
		return -1, nil
	default:
		return 0, fmt.Errorf("incremental: unknown event kind %q", ev.Kind)
	}
}

// projCount is the projected live-entity count of one engine (tasks or
// machines), pending events included.
func (e *Engine) projCount(tasks bool) int {
	if tasks {
		return len(e.projTasks)
	}
	return len(e.projMachs)
}

// Post routes ev to its shard (or all shards for a budget change) and
// buffers it there. Call Flush to re-solve; Post never solves.
func (s *Sharded) Post(ev Event) error {
	sh, err := s.route(ev)
	if err != nil {
		return err
	}
	if sh >= 0 {
		if _, err = s.shards[sh].Post(ev); err != nil {
			return err
		}
		s.stats.Events++
		return nil
	}
	split := ev
	split.Budget = ev.Budget / float64(len(s.shards))
	for _, e := range s.shards {
		if _, err := e.Post(split); err != nil {
			return err
		}
	}
	s.stats.Events++
	return nil
}

// Flush re-solves every shard with pending events concurrently and merges
// the shard solutions: Times and Assigned union (shards are disjoint),
// accuracies and energies sum, the worst shard status wins. Shards with
// nothing pending contribute their last solution unchanged.
func (s *Sharded) Flush() (*Solution, error) {
	type out struct {
		sol *Solution
		err error
	}
	outs := make([]out, len(s.shards))
	var wg sync.WaitGroup
	for i, e := range s.shards {
		if e.Pending() == 0 {
			outs[i].sol = e.Solution()
			continue
		}
		wg.Add(1)
		go func(i int, e *Engine) {
			defer wg.Done()
			outs[i].sol, outs[i].err = e.Flush()
		}(i, e)
	}
	wg.Wait()
	merged := &Solution{
		Times:    make(map[string]map[string]float64),
		Assigned: make(map[string]string),
	}
	seen := false
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, o.err)
		}
		if o.sol == nil {
			continue // shard never solved (no events yet)
		}
		if !seen || statusRank(o.sol.Status) > statusRank(merged.Status) {
			merged.Status = o.sol.Status
			seen = true
		}
		merged.TotalAccuracy += o.sol.TotalAccuracy
		merged.Objective += o.sol.Objective
		merged.Energy += o.sol.Energy
		merged.Nodes += o.sol.Nodes
		for task, times := range o.sol.Times {
			merged.Times[task] = times
		}
		for task, mach := range o.sol.Assigned {
			merged.Assigned[task] = mach
		}
	}
	return merged, nil
}

// statusRank orders statuses worst-last so the merge keeps the weakest
// guarantee across shards.
func statusRank(st mip.Status) int {
	switch st {
	case mip.Optimal:
		return 0
	case mip.Feasible:
		return 1
	case mip.NoIncumbent:
		return 2
	default: // Infeasible
		return 3
	}
}

// Stats sums the shard stats (durations add; Last/Max take the max over
// shards' own maxima). Events counts stream events posted to the wrapper —
// a fanned-out budget change is one event, not one per shard.
func (s *Sharded) Stats() Stats {
	var total Stats
	for _, e := range s.shards {
		st := e.Stats()
		total.Batches += st.Batches
		total.Solves += st.Solves
		total.WarmResolves += st.WarmResolves
		total.ColdResolves += st.ColdResolves
		total.NodeWarm += st.NodeWarm
		total.NodeCold += st.NodeCold
		total.InheritFallbacks += st.InheritFallbacks
		total.Nodes += st.Nodes
		total.CutsCarried += st.CutsCarried
		total.SolveTime += st.SolveTime
		if st.LastSolve > total.LastSolve {
			total.LastSolve = st.LastSolve
		}
		if st.MaxSolve > total.MaxSolve {
			total.MaxSolve = st.MaxSolve
		}
	}
	total.Events = s.stats.Events
	return total
}
