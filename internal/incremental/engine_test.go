package incremental

// Stream-vs-cold differential suite: replayed event traces must keep the
// warm-started engine, the cold-solving engine and a from-scratch solve of
// the live instance in agreement after every event, and the warm path must
// stay bitwise deterministic across worker counts and shard replays.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/model"
	"repro/internal/task"
)

// oracle mirrors an event stream into a compact live instance for the
// from-scratch reference solve.
type oracle struct {
	tasks  map[string]*oTask
	machs  map[string]machine.Machine
	tSeq   []string // arrival order (live ids only, compacted lazily)
	mSeq   []string
	budget float64
}

type oTask struct {
	deadline float64
	acc      *accuracy.PWL
	seq      int
}

func newOracle() *oracle {
	return &oracle{tasks: map[string]*oTask{}, machs: map[string]machine.Machine{}}
}

func (o *oracle) apply(ev Event) {
	switch ev.Kind {
	case TaskArrive:
		o.tasks[ev.Task] = &oTask{deadline: ev.Deadline, acc: ev.Acc, seq: len(o.tSeq)}
		o.tSeq = append(o.tSeq, ev.Task)
	case TaskDepart:
		delete(o.tasks, ev.Task)
	case MachineJoin:
		o.machs[ev.Machine] = machine.Machine{Name: ev.Machine, Speed: ev.Speed, Power: ev.Power}
		o.mSeq = append(o.mSeq, ev.Machine)
	case MachineLeave:
		delete(o.machs, ev.Machine)
	case BudgetChange:
		o.budget = ev.Budget
	}
}

// instance builds the live task.Instance with the engine's (deadline,
// arrival) task order and join-order machines. Nil when empty.
func (o *oracle) instance() *task.Instance {
	if len(o.tasks) == 0 || len(o.machs) == 0 {
		return nil
	}
	in := &task.Instance{Budget: o.budget}
	for _, id := range o.tSeq {
		if tk, ok := o.tasks[id]; ok {
			in.Tasks = append(in.Tasks, task.Task{Name: id, Deadline: tk.deadline, Acc: tk.acc})
		}
	}
	sort.SliceStable(in.Tasks, func(a, b int) bool { return in.Tasks[a].Deadline < in.Tasks[b].Deadline })
	for _, id := range o.mSeq {
		if mc, ok := o.machs[id]; ok {
			in.Machines = append(in.Machines, mc)
		}
	}
	return in
}

// solveScratch solves the live instance from scratch and returns the total
// accuracy (the MIP's maximisation objective).
func solveScratch(t *testing.T, in *task.Instance) float64 {
	t.Helper()
	mm := model.BuildMIP(in)
	res, err := mip.Solve(mm.Prob, mip.Options{Rounding: mm.RoundingHook()})
	if err != nil {
		t.Fatalf("scratch solve: %v", err)
	}
	if res.Status != mip.Optimal {
		t.Fatalf("scratch solve status %v", res.Status)
	}
	return res.Objective
}

// checkFeasible asserts the engine solution is a feasible DSCT-EA schedule
// of the oracle's live instance and that TotalAccuracy is consistent with
// the reported times.
func checkFeasible(t *testing.T, o *oracle, sol *Solution) {
	t.Helper()
	const tol = 1e-6
	if len(sol.Times) != len(o.tasks) {
		t.Fatalf("solution covers %d tasks, %d live", len(sol.Times), len(o.tasks))
	}
	ids := make([]string, 0, len(o.tasks))
	for id := range o.tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	perMachine := map[string][]string{} // machine -> tasks with time on it
	var totalAcc, totalEnergy float64
	for _, id := range ids {
		tk := o.tasks[id]
		times, ok := sol.Times[id]
		if !ok {
			t.Fatalf("task %q missing from solution", id)
		}
		asg := sol.Assigned[id]
		if _, live := o.machs[asg]; !live {
			t.Fatalf("task %q assigned to non-live machine %q", id, asg)
		}
		mids := make([]string, 0, len(times))
		for mid := range times {
			mids = append(mids, mid)
		}
		sort.Strings(mids)
		var flops float64
		for _, mid := range mids {
			tt := times[mid]
			mc, live := o.machs[mid]
			if !live {
				if tt > tol {
					t.Fatalf("task %q runs %g s on departed machine %q", id, tt, mid)
				}
				continue
			}
			if tt > tol && mid != asg {
				t.Fatalf("task %q runs %g s on %q but is assigned to %q", id, tt, mid, asg)
			}
			if tt > tol {
				if tt > tk.deadline+tol {
					t.Fatalf("task %q time %g exceeds deadline %g", id, tt, tk.deadline)
				}
				perMachine[mid] = append(perMachine[mid], id)
			}
			flops += mc.Speed * tt
			totalEnergy += mc.Power * tt
		}
		totalAcc += tk.acc.Eval(flops)
	}
	// Deadline staircases: per machine, the prefix completion times in
	// deadline order must respect every deadline.
	for mid, ids := range perMachine {
		sort.Slice(ids, func(a, b int) bool { return o.tasks[ids[a]].deadline < o.tasks[ids[b]].deadline })
		var sum float64
		for _, id := range ids {
			sum += sol.Times[id][mid]
			if sum > o.tasks[id].deadline+tol {
				t.Fatalf("machine %q: completion %g exceeds deadline %g of %q", mid, sum, o.tasks[id].deadline, id)
			}
		}
	}
	if totalEnergy > o.budget+tol*(1+o.budget) {
		t.Fatalf("energy %g exceeds budget %g", totalEnergy, o.budget)
	}
	if math.Abs(totalAcc-sol.TotalAccuracy) > tol*(1+math.Abs(totalAcc)) {
		t.Fatalf("reported accuracy %g, recomputed %g", sol.TotalAccuracy, totalAcc)
	}
}

func genTestTrace(t *testing.T, seed int64, events int) []Event {
	t.Helper()
	cfg := DefaultTraceConfig(seed, events, 5, 2)
	cfg.MaxTasks = 6
	cfg.MaxMachines = 3
	cfg.Segments = 3
	trace, err := GenTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestStreamVsCold is the differential gate: after every event of a
// 220-event trace the warm engine, the cold engine and a from-scratch
// solve of the live instance must agree on the optimum, and the warm
// engine's schedule must be feasible.
func TestStreamVsCold(t *testing.T) {
	trace := genTestTrace(t, 41, 220)
	warm := New(Options{})
	cold := New(Options{DisableWarm: true})
	o := newOracle()
	for i, ev := range trace {
		o.apply(ev)
		ws, err := warm.Apply(ev)
		if err != nil {
			t.Fatalf("event %d (%s): warm: %v", i, ev.Kind, err)
		}
		cs, err := cold.Apply(ev)
		if err != nil {
			t.Fatalf("event %d (%s): cold: %v", i, ev.Kind, err)
		}
		in := o.instance()
		if in == nil {
			continue
		}
		ref := solveScratch(t, in)
		if ws.Status != mip.Optimal || cs.Status != mip.Optimal {
			t.Fatalf("event %d: warm status %v, cold status %v", i, ws.Status, cs.Status)
		}
		tol := 1e-6 * (1 + math.Abs(ref))
		if math.Abs(ws.TotalAccuracy-ref) > tol {
			t.Fatalf("event %d (%s): warm accuracy %.12g, scratch %.12g", i, ev.Kind, ws.TotalAccuracy, ref)
		}
		if math.Abs(cs.TotalAccuracy-ref) > tol {
			t.Fatalf("event %d (%s): cold accuracy %.12g, scratch %.12g", i, ev.Kind, cs.TotalAccuracy, ref)
		}
		checkFeasible(t, o, ws)
	}
	st := warm.Stats()
	if st.WarmResolves == 0 {
		t.Error("warm engine never imported warm state")
	}
	if st.Solves != st.WarmResolves+st.ColdResolves {
		t.Errorf("solve accounting: %d != %d warm + %d cold", st.Solves, st.WarmResolves, st.ColdResolves)
	}
	if cold.Stats().WarmResolves != 0 {
		t.Errorf("cold engine reported %d warm re-solves", cold.Stats().WarmResolves)
	}
}

// sameEngineSolution compares two solutions bitwise (objective and every
// reported time).
func sameEngineSolution(a, b *Solution) bool {
	if a.Status != b.Status ||
		math.Float64bits(a.TotalAccuracy) != math.Float64bits(b.TotalAccuracy) ||
		len(a.Times) != len(b.Times) {
		return false
	}
	for id, at := range a.Times {
		bt, ok := b.Times[id]
		if !ok || len(at) != len(bt) {
			return false
		}
		for mid, av := range at {
			if math.Float64bits(av) != math.Float64bits(bt[mid]) {
				return false
			}
		}
	}
	return true
}

// TestEngineDeterministicAcrossWorkers replays one trace at Workers 1, 4
// and 8: every post-event solution must be bitwise identical.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	trace := genTestTrace(t, 43, 80)
	var base []*Solution
	for _, workers := range []int{1, 4, 8} {
		e := New(Options{Workers: workers})
		var sols []*Solution
		for i, ev := range trace {
			sol, err := e.Apply(ev)
			if err != nil {
				t.Fatalf("workers=%d event %d: %v", workers, i, err)
			}
			sols = append(sols, sol)
		}
		if base == nil {
			base = sols
			continue
		}
		for i := range sols {
			if !sameEngineSolution(base[i], sols[i]) {
				t.Fatalf("workers=%d diverged from workers=1 at event %d", workers, i)
			}
		}
	}
}

// TestBatchWindow checks coalescing: posts buffer until the window fills,
// and a manual Flush drains early.
func TestBatchWindow(t *testing.T) {
	trace := genTestTrace(t, 47, 20)
	e := New(Options{BatchWindow: 4})
	flushes := 0
	for i, ev := range trace {
		sol, err := e.Post(ev)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if sol != nil {
			flushes++
			if e.Pending() != 0 {
				t.Fatalf("event %d: %d pending after flush", i, e.Pending())
			}
		}
	}
	if _, err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Events != len(trace) {
		t.Errorf("events = %d, want %d", st.Events, len(trace))
	}
	if st.Batches >= len(trace) || st.Batches == 0 {
		t.Errorf("batches = %d, want coalescing (0 < batches < %d)", st.Batches, len(trace))
	}
	if flushes != len(trace)/4 {
		t.Errorf("auto-flushes = %d, want %d", flushes, len(trace)/4)
	}
	// Batched and per-event replay agree on the final state.
	single := New(Options{})
	var last *Solution
	for _, ev := range trace {
		var err error
		if last, err = single.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(e.Solution().TotalAccuracy-last.TotalAccuracy) > 1e-6 {
		t.Errorf("batched accuracy %g, per-event %g", e.Solution().TotalAccuracy, last.TotalAccuracy)
	}
}

// TestPostValidation exercises the projection-level event validation.
func TestPostValidation(t *testing.T) {
	e := New(Options{Budget: 10})
	pwl, err := accuracy.FitChord(accuracy.NewExponential(1.0), 3)
	if err != nil {
		t.Fatal(err)
	}
	must := func(ev Event) {
		t.Helper()
		if _, err := e.Post(ev); err != nil {
			t.Fatal(err)
		}
	}
	reject := func(name string, ev Event) {
		t.Helper()
		if _, err := e.Post(ev); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	must(Event{Kind: MachineJoin, Machine: "m0", Speed: 5_000, Power: 150})
	must(Event{Kind: TaskArrive, Task: "t0", Deadline: 1, Acc: pwl})
	reject("duplicate task", Event{Kind: TaskArrive, Task: "t0", Deadline: 1, Acc: pwl})
	reject("duplicate machine", Event{Kind: MachineJoin, Machine: "m0", Speed: 1, Power: 1})
	reject("unknown depart", Event{Kind: TaskDepart, Task: "zz"})
	reject("unknown leave", Event{Kind: MachineLeave, Machine: "zz"})
	reject("empty task id", Event{Kind: TaskArrive, Deadline: 1, Acc: pwl})
	reject("bad deadline", Event{Kind: TaskArrive, Task: "t1", Deadline: -1, Acc: pwl})
	reject("bad curve", Event{Kind: TaskArrive, Task: "t1", Deadline: 1, Breaks: []float64{1, 0}, Values: []float64{0, 1}})
	reject("bad speed", Event{Kind: MachineJoin, Machine: "m1", Speed: -1, Power: 1})
	reject("negative budget", Event{Kind: BudgetChange, Budget: -5})
	reject("nan budget", Event{Kind: BudgetChange, Budget: math.NaN()})
	reject("unknown kind", Event{Kind: "frobnicate"})
	// Re-arrival after departure is legal and creates a fresh task.
	must(Event{Kind: TaskDepart, Task: "t0"})
	must(Event{Kind: TaskArrive, Task: "t0", Deadline: 2, Acc: pwl})
	if e.LiveTasks() != 1 || e.LiveMachines() != 1 {
		t.Errorf("live = %d tasks %d machines, want 1/1", e.LiveTasks(), e.LiveMachines())
	}
}

// TestShardedDeterministicReplay replays one trace through a 2-shard
// engine twice; the merged solutions must be bitwise identical, feasible
// against the global budget, and the stats must account every event.
func TestShardedDeterministicReplay(t *testing.T) {
	trace := genTestTrace(t, 53, 90)
	run := func() (*Solution, Stats, float64) {
		s := NewSharded(2, Options{Workers: 2})
		var budget float64
		for i, ev := range trace {
			if ev.Kind == BudgetChange {
				budget = ev.Budget
			}
			if err := s.Post(ev); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if (i+1)%5 == 0 {
				if _, err := s.Flush(); err != nil {
					t.Fatalf("flush at %d: %v", i, err)
				}
			}
		}
		sol, err := s.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return sol, s.Stats(), budget
	}
	a, stA, budget := run()
	b, stB, _ := run()
	if !sameEngineSolution(a, b) {
		t.Fatal("sharded replay diverged")
	}
	if stA.Events != len(trace) || stB.Events != len(trace) {
		t.Errorf("sharded stats counted %d/%d events, want %d", stA.Events, stB.Events, len(trace))
	}
	if a.Energy > budget+1e-6*(1+budget) {
		t.Errorf("merged energy %g exceeds global budget %g", a.Energy, budget)
	}
	if a.Status != mip.Optimal {
		t.Errorf("merged status %v", a.Status)
	}
}

// TestEngineStats sanity-checks the derived stats accessors.
func TestEngineStats(t *testing.T) {
	var zero Stats
	if zero.WarmHitRate() != 0 || zero.EventsPerSec() != 0 || zero.AvgSolve() != 0 {
		t.Error("zero stats must derive zeros")
	}
	trace := genTestTrace(t, 59, 30)
	e := New(Options{})
	for _, ev := range trace {
		if _, err := e.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Solves != len(trace) {
		t.Errorf("solves = %d, want %d (per-event flushing)", st.Solves, len(trace))
	}
	if st.ColdResolves != 1 {
		t.Errorf("cold re-solves = %d, want exactly the first", st.ColdResolves)
	}
	if got := st.WarmHitRate(); math.Abs(got-float64(st.Solves-1)/float64(st.Solves)) > 1e-12 {
		t.Errorf("warm hit rate = %g", got)
	}
	if st.SolveTime <= 0 || st.MaxSolve < st.LastSolve && st.MaxSolve <= 0 {
		t.Errorf("degenerate timings: %+v", st)
	}
	if st.EventsPerSec() <= 0 {
		t.Error("events/sec not positive after solves")
	}
	if st.AvgSolve() <= 0 || st.AvgSolve() > st.MaxSolve {
		t.Errorf("avg solve %v out of range (max %v)", st.AvgSolve(), st.MaxSolve)
	}
}
