package incremental

// Steady-state re-solve benchmarks. BenchmarkIncrementalResolve pairs a
// cold arm (every event solved from scratch, DisableWarm) against the warm
// arm (basis + cut pool + pseudo-cost carry-over) on the same fig-scale
// trace tail: the /cold vs /warm sub-names line up with cmd/benchjson's
// cold_vs_warm pairing, which gates the warm speedup. Per iteration the
// engine is rebuilt and the trace prefix replayed off the clock, so only
// the measured tail's per-event re-solve cost is timed and the problem
// size does not grow with b.N.

import (
	"testing"
)

const benchTail = 12 // measured events per iteration

// benchTrace is a fig-scale steady-state stream: 24 tasks on 3 machines
// with slack deadlines and an ample budget, the regime where per-event
// re-solve cost is root-LP-dominated (trees collapse to a node or two) and
// cross-solve warm starts pay. Contended traces are tree-dominated — both
// arms spend their time in identical branch-and-bound — and are covered by
// the correctness suite instead.
func benchTrace(b *testing.B, seed int64) ([]Event, int) {
	b.Helper()
	cfg := DefaultTraceConfig(seed, 24+3+1+benchTail, 24, 3)
	cfg.DeadlineScale = 3
	cfg.BudgetScale = 5
	trace, err := GenTrace(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return trace, len(trace) - benchTail
}

// replay posts events through the engine, failing the benchmark on any
// validation or solve error.
func replay(b *testing.B, e *Engine, events []Event) {
	b.Helper()
	for i := range events {
		if _, err := e.Apply(events[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func benchResolve(b *testing.B, opts Options) {
	trace, prefix := benchTrace(b, 71)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(opts)
		replay(b, e, trace[:prefix])
		b.StartTimer()
		replay(b, e, trace[prefix:])
	}
	b.ReportMetric(float64(benchTail), "events/op")
}

// BenchmarkIncrementalResolve measures the steady-state per-event re-solve
// cost of the two arms; benchjson diffs warm against cold and the ISSUE
// gate requires warm >= 3x faster.
func BenchmarkIncrementalResolve(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchResolve(b, Options{DisableWarm: true}) })
	b.Run("warm", func(b *testing.B) { benchResolve(b, Options{}) })
}

// BenchmarkEventThroughput measures sustained warm-path event throughput
// (posted events per wall-clock second, full replay including deltas and
// re-solves) — the headline events/sec metric gated by cmd/benchjson.
func BenchmarkEventThroughput(b *testing.B) {
	trace, _ := benchTrace(b, 73)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(Options{})
		b.StartTimer()
		replay(b, e, trace)
	}
	b.ReportMetric(float64(b.N*len(trace))/b.Elapsed().Seconds(), "events/sec")
}
