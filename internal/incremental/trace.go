package incremental

import (
	"fmt"
	"math"

	"repro/internal/accuracy"
	"repro/internal/machine"
	"repro/internal/rng"
)

// TraceConfig parameterises GenTrace's synthetic event streams. The zero
// value is not usable; start from DefaultTraceConfig.
type TraceConfig struct {
	Seed   int64
	Events int // total events in the stream (including the warm-up prefix)

	Tasks    int // initial live tasks (warm-up arrivals)
	Machines int // initial live machines (warm-up joins)

	MaxTasks    int // live-task ceiling during the mixed stream
	MinMachines int // live-machine floor (never drops below)
	MaxMachines int // live-machine ceiling

	// Theta bounds the uniform task-efficiency draw (paper's θ, the
	// accuracy curve's initial slope in accuracy per GFLOP).
	Theta [2]float64
	// Segments per fitted accuracy curve (accuracy.DefaultSegments-style).
	Segments int

	// DeadlineScale multiplies the drawn deadlines (0 means 1). Values
	// above ~2 leave machine time slack, so the LP relaxation is close to
	// integral and re-solve cost is root-LP-dominated — the steady-state
	// regime incremental warm starts target. Values near 1 make machine
	// time contended and branch-and-bound-dominated.
	DeadlineScale float64
	// BudgetScale multiplies the base budget estimate (0 means 1).
	BudgetScale float64
}

// DefaultTraceConfig is a fig-3-scale stream: n initial tasks on m
// machines, then a mixed churn of arrivals, departures, machine churn and
// budget renegotiations.
func DefaultTraceConfig(seed int64, events, tasks, machines int) TraceConfig {
	return TraceConfig{
		Seed:        seed,
		Events:      events,
		Tasks:       tasks,
		Machines:    machines,
		MaxTasks:    tasks + tasks/2 + 1,
		MinMachines: 1,
		MaxMachines: machines + 2,
		Theta:       [2]float64{0.1, 2.0},
		Segments:    accuracy.DefaultSegments,
	}
}

// GenTrace generates a deterministic event stream: first the warm-up
// prefix (machine joins, one budget-change sized to the initial load,
// task arrivals), then a mixed stream drawn event-by-event while
// respecting the live-set bounds. Arrival curves are chord fits of the
// paper's exponential accuracy model with uniform θ; machines are drawn
// from the paper's uniform fleet distribution; budget renegotiations draw
// uniform factors in [0.8, 1.2) of the base budget so both tightenings
// and cut-dropping increases occur.
func GenTrace(cfg TraceConfig) ([]Event, error) {
	if cfg.Events < cfg.Tasks+cfg.Machines+1 {
		return nil, fmt.Errorf("incremental: trace needs at least %d events for the warm-up prefix, got %d",
			cfg.Tasks+cfg.Machines+1, cfg.Events)
	}
	if cfg.Machines < cfg.MinMachines || cfg.MinMachines < 1 {
		return nil, fmt.Errorf("incremental: machine bounds (start %d, floor %d) invalid", cfg.Machines, cfg.MinMachines)
	}
	dScale, bScale := cfg.DeadlineScale, cfg.BudgetScale
	if dScale == 0 {
		dScale = 1
	}
	if bScale == 0 {
		bScale = 1
	}
	src := rng.New(cfg.Seed, "incremental-trace")
	events := make([]Event, 0, cfg.Events)

	var nextTask, nextMach int
	liveTasks := []string{}
	liveMachs := []string{}
	var speedSum, fmaxSum float64

	newMachine := func() Event {
		speed := src.Uniform(machine.MinSpeed, machine.MaxSpeed)
		eff := src.Uniform(machine.MinEfficiency, machine.MaxEfficiency)
		id := fmt.Sprintf("m%d", nextMach)
		nextMach++
		liveMachs = append(liveMachs, id)
		speedSum += speed
		return Event{Kind: MachineJoin, Machine: id, Speed: speed, Power: speed / eff}
	}
	// horizon estimates a deadline scale that keeps the machines contended
	// but feasible: about half the serial completion time of a full task
	// load on the average machine.
	horizon := func() float64 {
		if len(liveMachs) == 0 || nextTask == 0 {
			return 1
		}
		avgSpeed := speedSum / float64(nextMach)
		avgFMax := fmaxSum / float64(nextTask)
		maxTasks := float64(cfg.MaxTasks)
		return 0.5 * maxTasks * avgFMax / (avgSpeed * float64(len(liveMachs)))
	}
	newTask := func() (Event, error) {
		theta := src.Uniform(cfg.Theta[0], cfg.Theta[1])
		pwl, err := accuracy.FitChord(accuracy.NewExponential(theta), cfg.Segments)
		if err != nil {
			return Event{}, fmt.Errorf("incremental: trace curve (theta=%g): %w", theta, err)
		}
		fmaxSum += pwl.FMax()
		id := fmt.Sprintf("t%d", nextTask)
		nextTask++
		liveTasks = append(liveTasks, id)
		deadline := src.Uniform(0.4, 1.6) * dScale * horizon()
		return Event{
			Kind: TaskArrive, Task: id, Deadline: deadline,
			Breaks: pwl.Breakpoints(), Values: pwl.Values(), Acc: pwl,
		}, nil
	}

	// Warm-up prefix: machines, budget, initial tasks.
	for i := 0; i < cfg.Machines; i++ {
		events = append(events, newMachine())
	}
	// Base budget: enough to run every initial task at roughly half its
	// curve on an average-efficiency machine. avgPower ≈ avgSpeed/avgEff.
	avgSpeed := speedSum / float64(cfg.Machines)
	avgPower := avgSpeed / ((machine.MinEfficiency + machine.MaxEfficiency) / 2)
	// fmaxSum is still 0; estimate from the θ midpoint's curve.
	mid, err := accuracy.FitChord(accuracy.NewExponential((cfg.Theta[0]+cfg.Theta[1])/2), cfg.Segments)
	if err != nil {
		return nil, err
	}
	baseBudget := bScale * 0.5 * float64(cfg.Tasks) * mid.FMax() / avgSpeed * avgPower
	if baseBudget <= 0 || math.IsNaN(baseBudget) {
		baseBudget = 1
	}
	events = append(events, Event{Kind: BudgetChange, Budget: baseBudget})
	for i := 0; i < cfg.Tasks; i++ {
		ev, err := newTask()
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}

	// Mixed stream: weighted draws constrained by the live-set bounds.
	for len(events) < cfg.Events {
		roll := src.Float64()
		switch {
		case roll < 0.35 && len(liveTasks) < cfg.MaxTasks:
			ev, err := newTask()
			if err != nil {
				return nil, err
			}
			events = append(events, ev)
		case roll < 0.60 && len(liveTasks) > 0:
			i := src.Intn(len(liveTasks))
			id := liveTasks[i]
			liveTasks = append(liveTasks[:i], liveTasks[i+1:]...)
			events = append(events, Event{Kind: TaskDepart, Task: id})
		case roll < 0.72 && len(liveMachs) < cfg.MaxMachines:
			events = append(events, newMachine())
		case roll < 0.84 && len(liveMachs) > cfg.MinMachines:
			i := src.Intn(len(liveMachs))
			id := liveMachs[i]
			liveMachs = append(liveMachs[:i], liveMachs[i+1:]...)
			events = append(events, Event{Kind: MachineLeave, Machine: id})
		default:
			events = append(events, Event{Kind: BudgetChange, Budget: src.Uniform(0.8, 1.2) * baseBudget})
		}
	}
	return events, nil
}
