// Package incremental maintains a DSCT-EA instance as a long-lived,
// mutable optimisation problem and re-optimises it after scheduler events
// — task arrivals and departures, machine joins and leaves, energy-budget
// renegotiations — instead of rebuilding and solving from scratch per
// event, the re-optimisation pattern of production scheduling services.
//
// Each event becomes an in-place delta against one lp.Problem (appended
// columns and rows, [0,0] bound fixes for departures, right-hand-side
// edits; see internal/lp's mutation API), and the re-solve imports the
// previous solve's mip.WarmState: the root relaxation starts from the
// previous optimal basis (dual simplex repairs the handful of violated
// rows), the root cut pool is re-imposed instead of re-separated, and the
// pseudo-cost observations keep branching informed. Any non-adoptable
// piece degrades to its cold equivalent, so warm starting is a latency
// optimisation, never a correctness risk.
//
// Departed entities are deactivated, never deleted: their columns are
// boxed to [0,0] and their rows become inert (a departed task's assignment
// row gets right-hand side 0; its epigraph rows hold 0 <= intercept, valid
// because concave accuracy curves with a(0) >= 0 have non-negative chord
// intercepts; a stale deadline-staircase row is implied by the latest live
// task's row below it). Column indices therefore stay stable for the
// lifetime of the engine, which is what lets bases, cuts and pseudo-cost
// observations survive arbitrarily long event streams. The cost is that
// the problem monotonically grows with total events seen — an engine is a
// steady-state object, recycled at operator cadence, not a forever object.
package incremental

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/accuracy"
	"repro/internal/lp"
	"repro/internal/mip"
)

// EventKind names a scheduler event. The string values are the wire form
// cmd/dsctd accepts on stdin.
type EventKind string

// Event kinds.
const (
	// TaskArrive admits a new inference task: Task (unique id), Deadline,
	// and its accuracy curve as Acc or as Breaks/Values (GFLOPs grid and
	// accuracies, accuracy.NewPWL's contract).
	TaskArrive EventKind = "task-arrive"
	// TaskDepart cancels a live task (Task).
	TaskDepart EventKind = "task-depart"
	// MachineJoin adds a machine: Machine (unique id), Speed (GFLOP/s),
	// Power (W).
	MachineJoin EventKind = "machine-join"
	// MachineLeave withdraws a live machine (Machine).
	MachineLeave EventKind = "machine-leave"
	// BudgetChange renegotiates the energy budget to Budget (J).
	BudgetChange EventKind = "budget-change"
)

// Event is one scheduler event. Unused fields are ignored per kind; see
// the EventKind constants for which fields each kind reads.
type Event struct {
	Kind EventKind `json:"kind"`

	Task     string    `json:"task,omitempty"`
	Deadline float64   `json:"deadline,omitempty"`
	Breaks   []float64 `json:"breaks,omitempty"`
	Values   []float64 `json:"values,omitempty"`
	// Acc, when non-nil, takes precedence over Breaks/Values for in-process
	// callers that already hold a fitted curve.
	Acc *accuracy.PWL `json:"-"`

	Machine string  `json:"machine,omitempty"`
	Speed   float64 `json:"speed,omitempty"`
	Power   float64 `json:"power,omitempty"`

	Budget float64 `json:"budget,omitempty"`
}

// Options tunes an Engine. The zero value means: serial solves, solve on
// every posted event, warm starts on, no node limit override, budget 0
// (tasks idle until a budget-change event funds them).
type Options struct {
	// Workers is the mip.Options.Workers of every re-solve.
	Workers int
	// BatchWindow coalesces events: Post buffers until this many events are
	// pending, then applies them as one delta batch and re-solves once.
	// <= 1 re-solves per event; Flush always drains regardless.
	BatchWindow int
	// DisableWarm solves every batch cold — no basis, cut-pool or
	// pseudo-cost carry-over, no workspace reuse. The differential baseline
	// and the benchmark's cold arm.
	DisableWarm bool
	// MaxNodes caps each re-solve's branch-and-bound tree (0: mip default).
	MaxNodes int
	// Budget is the initial energy budget in joules.
	Budget float64
}

// Solution is the engine's view of one re-solve: times and assignments
// keyed by the caller's task and machine ids.
type Solution struct {
	Status mip.Status
	// TotalAccuracy is Σ_j a_j over live tasks; Objective is the paper's
	// minimisation form, live-task count minus TotalAccuracy.
	TotalAccuracy float64
	Objective     float64
	// Times[task][machine] is the processing time in seconds (live pairs
	// only); Assigned[task] is the machine carrying the task's unit
	// assignment. Energy is the schedule's total energy draw in joules.
	Times    map[string]map[string]float64
	Assigned map[string]string
	Energy   float64
	Nodes    int
}

// Stats is the engine's cumulative event/solve accounting.
type Stats struct {
	Events  int // events posted
	Batches int // delta batches applied (solves triggered)
	Solves  int // MIP re-solves run

	WarmResolves int // re-solves that imported a previous WarmState
	ColdResolves int // re-solves without one (first solve, DisableWarm)

	// Node-level accounting summed over all re-solves: warm/cold node
	// relaxations, warm starts that had to refactorise, branch-and-bound
	// nodes, and the cut rows carried by the latest re-solve.
	NodeWarm         int
	NodeCold         int
	InheritFallbacks int
	Nodes            int
	CutsCarried      int

	SolveTime time.Duration // total wall time inside mip.Solve
	LastSolve time.Duration
	MaxSolve  time.Duration
}

// WarmHitRate is the fraction of re-solves that started from imported
// warm state (0 when no solve ran).
func (s Stats) WarmHitRate() float64 {
	if s.Solves == 0 {
		return 0
	}
	return float64(s.WarmResolves) / float64(s.Solves)
}

// EventsPerSec is the posted-event throughput per second of solve time
// (0 before the first solve).
func (s Stats) EventsPerSec() float64 {
	if s.SolveTime <= 0 {
		return 0
	}
	return float64(s.Events) / s.SolveTime.Seconds()
}

// AvgSolve is the mean re-solve latency (0 before the first solve).
func (s Stats) AvgSolve() time.Duration {
	if s.Solves == 0 {
		return 0
	}
	return s.SolveTime / time.Duration(s.Solves)
}

// liveTask is the engine's bookkeeping for one (possibly departed) task.
// Column/row indices never move; per-machine slices are indexed by the
// machine's seq and hold -1 where no column exists (machine joined after
// the task departed, or left before the task arrived).
type liveTask struct {
	id       string
	seq      int
	deadline float64
	acc      *accuracy.PWL
	alive    bool

	z       int
	t, x    []int
	segRows []int
	aggRow  int
	gubRow  int
	stair   []int // staircase row of this task per machine seq (-1: none)
}

// liveMachine is the bookkeeping for one (possibly withdrawn) machine.
type liveMachine struct {
	id           string
	seq          int
	speed, power float64
	alive        bool
}

// Engine is a mutable DSCT-EA instance with warm-started re-solves. Not
// goroutine-safe: one goroutine owns an Engine (shards own one each).
type Engine struct {
	opts      Options
	p         *lp.Problem
	budgetRow int
	budget    float64

	tasks    []*liveTask // append-only; seq = index
	machines []*liveMachine
	taskByID map[string]*liveTask    // live tasks only
	machByID map[string]*liveMachine // live machines only

	pending   []Event
	projTasks map[string]bool // live ∪ pending view for Post-time validation
	projMachs map[string]bool

	warm  *mip.WarmState
	ws    *lp.Workspace
	stats Stats
	last  *Solution
}

// New creates an empty engine. Variable 0 is a permanent [0,0] dummy that
// anchors the energy-budget row before any task or machine exists.
func New(opts Options) *Engine {
	p := lp.NewProblem(1)
	p.SetBounds(0, 0, 0)
	e := &Engine{
		opts:      opts,
		p:         p,
		budget:    opts.Budget,
		taskByID:  make(map[string]*liveTask),
		machByID:  make(map[string]*liveMachine),
		projTasks: make(map[string]bool),
		projMachs: make(map[string]bool),
		ws:        lp.NewWorkspace(),
	}
	e.budgetRow = p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.LE, opts.Budget)
	return e
}

// LiveTasks returns the number of live tasks (pending events excluded).
func (e *Engine) LiveTasks() int { return len(e.taskByID) }

// LiveMachines returns the number of live machines (pending excluded).
func (e *Engine) LiveMachines() int { return len(e.machByID) }

// Stats returns a copy of the cumulative accounting.
func (e *Engine) Stats() Stats { return e.stats }

// Solution returns the latest solve result (nil before the first solve).
func (e *Engine) Solution() *Solution { return e.last }

// Pending returns the number of buffered events awaiting a Flush.
func (e *Engine) Pending() int { return len(e.pending) }

// Post validates ev against the projected state (live entities plus
// buffered events) and buffers it. When the batch window fills it flushes:
// the returned Solution is non-nil exactly when a re-solve ran.
func (e *Engine) Post(ev Event) (*Solution, error) {
	if err := e.validate(&ev); err != nil {
		return nil, err
	}
	switch ev.Kind {
	case TaskArrive:
		e.projTasks[ev.Task] = true
	case TaskDepart:
		delete(e.projTasks, ev.Task)
	case MachineJoin:
		e.projMachs[ev.Machine] = true
	case MachineLeave:
		delete(e.projMachs, ev.Machine)
	}
	e.pending = append(e.pending, ev)
	e.stats.Events++
	if len(e.pending) >= e.opts.BatchWindow || e.opts.BatchWindow <= 1 {
		return e.Flush()
	}
	return nil, nil
}

// Apply posts ev and forces an immediate flush of everything pending.
func (e *Engine) Apply(ev Event) (*Solution, error) {
	if _, err := e.Post(ev); err != nil {
		return nil, err
	}
	return e.Flush()
}

// Flush applies every buffered event as one delta batch and re-solves.
// With nothing pending it returns the last solution unchanged.
func (e *Engine) Flush() (*Solution, error) {
	if len(e.pending) == 0 {
		return e.last, nil
	}
	for i := range e.pending {
		e.applyEvent(&e.pending[i])
	}
	e.pending = e.pending[:0]
	e.stats.Batches++
	return e.solve()
}

// validate checks ev against the projected live sets and, for arrivals,
// builds the accuracy curve (stashed in ev.Acc so apply never re-parses).
func (e *Engine) validate(ev *Event) error {
	switch ev.Kind {
	case TaskArrive:
		if ev.Task == "" {
			return fmt.Errorf("incremental: %s: empty task id", ev.Kind)
		}
		if e.projTasks[ev.Task] {
			return fmt.Errorf("incremental: task %q already live", ev.Task)
		}
		if !(ev.Deadline > 0) || math.IsInf(ev.Deadline, 0) {
			return fmt.Errorf("incremental: task %q: deadline must be positive and finite, got %g", ev.Task, ev.Deadline)
		}
		if ev.Acc == nil {
			pwl, err := accuracy.NewPWL(ev.Breaks, ev.Values)
			if err != nil {
				return fmt.Errorf("incremental: task %q: %w", ev.Task, err)
			}
			ev.Acc = pwl
		}
		if ev.Acc.AMin() < 0 {
			// A negative accuracy floor would make departed tasks' epigraph
			// rows (0 <= intercept) infeasible; the model never produces one.
			return fmt.Errorf("incremental: task %q: negative accuracy floor %g", ev.Task, ev.Acc.AMin())
		}
	case TaskDepart:
		if !e.projTasks[ev.Task] {
			return fmt.Errorf("incremental: task %q not live", ev.Task)
		}
	case MachineJoin:
		if ev.Machine == "" {
			return fmt.Errorf("incremental: %s: empty machine id", ev.Kind)
		}
		if e.projMachs[ev.Machine] {
			return fmt.Errorf("incremental: machine %q already live", ev.Machine)
		}
		if !(ev.Speed > 0) || !(ev.Power > 0) || math.IsInf(ev.Speed, 0) || math.IsInf(ev.Power, 0) {
			return fmt.Errorf("incremental: machine %q: speed and power must be positive and finite, got %g GFLOP/s %g W", ev.Machine, ev.Speed, ev.Power)
		}
	case MachineLeave:
		if !e.projMachs[ev.Machine] {
			return fmt.Errorf("incremental: machine %q not live", ev.Machine)
		}
	case BudgetChange:
		if ev.Budget < 0 || math.IsInf(ev.Budget, 0) || math.IsNaN(ev.Budget) {
			return fmt.Errorf("incremental: budget must be non-negative and finite, got %g", ev.Budget)
		}
	default:
		return fmt.Errorf("incremental: unknown event kind %q", ev.Kind)
	}
	return nil
}

// before orders tasks by (deadline, arrival seq) — the deadline-staircase
// prefix order, with arrival order as the deterministic tie-break.
func before(a, b *liveTask) bool {
	//lint:ignore floatcmp comparator tie-break: tolerant comparison would break the strict weak ordering sort requires
	if a.deadline != b.deadline {
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

// liveSorted returns the live tasks in staircase order.
func (e *Engine) liveSorted() []*liveTask {
	ts := make([]*liveTask, 0, len(e.taskByID))
	for _, tk := range e.tasks {
		if tk.alive {
			ts = append(ts, tk)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return before(ts[i], ts[j]) })
	return ts
}

// applyEvent turns one (validated) event into problem deltas.
//
//lint:hotpath=bounded a delta touches O(live pairs) columns and rows, never the whole history
func (e *Engine) applyEvent(ev *Event) {
	switch ev.Kind {
	case TaskArrive:
		e.applyArrive(ev)
	case TaskDepart:
		tk := e.taskByID[ev.Task]
		tk.alive = false
		delete(e.taskByID, ev.Task)
		e.p.Deactivate(tk.z)
		for _, v := range tk.t {
			if v >= 0 {
				e.p.Deactivate(v)
			}
		}
		for _, v := range tk.x {
			if v >= 0 {
				e.p.Deactivate(v)
			}
		}
		// Σ_r x_jr = 1 over now-inert columns must become Σ = 0.
		e.p.SetRHS(tk.gubRow, 0)
	case MachineJoin:
		e.applyJoin(ev)
	case MachineLeave:
		mc := e.machByID[ev.Machine]
		mc.alive = false
		delete(e.machByID, ev.Machine)
		for _, tk := range e.tasks {
			if !tk.alive || mc.seq >= len(tk.t) || tk.t[mc.seq] < 0 {
				continue
			}
			e.p.Deactivate(tk.t[mc.seq])
			e.p.Deactivate(tk.x[mc.seq])
		}
	case BudgetChange:
		if ev.Budget > e.budget && e.warm != nil {
			// A budget increase relaxes the energy knapsack the cover-style
			// cuts were derived from, so the pool is no longer proven valid:
			// drop it, keep the basis and pseudo-costs (always safe).
			e.warm = &mip.WarmState{RootBasis: e.warm.RootBasis, BaseRows: e.warm.BaseRows, Obs: e.warm.Obs}
		}
		e.budget = ev.Budget
		e.p.SetRHS(e.budgetRow, ev.Budget)
	}
}

// applyArrive appends the task's column block (z, then t/x per live
// machine), its own rows (epigraph segments, aggregate work cap, deadline
// VUB links, assignment GUB, one staircase row per live machine) and its
// terms on shared rows (the energy budget row and the staircase rows of
// live tasks due after it).
func (e *Engine) applyArrive(ev *Event) {
	acc := ev.Acc
	tk := &liveTask{
		id: ev.Task, seq: len(e.tasks), deadline: ev.Deadline, acc: acc, alive: true,
		t: make([]int, len(e.machines)), x: make([]int, len(e.machines)),
		stair: make([]int, len(e.machines)),
	}
	for i := range tk.t {
		tk.t[i], tk.x[i], tk.stair[i] = -1, -1, -1
	}
	e.tasks = append(e.tasks, tk)
	e.taskByID[tk.id] = tk

	tk.z = e.p.AddVariables(1)
	e.p.SetObjCoef(tk.z, 1)
	e.p.SetBounds(tk.z, 0, acc.AMax())
	for _, mc := range e.machines {
		if !mc.alive {
			continue
		}
		tv := e.p.AddVariables(2)
		xv := tv + 1
		e.p.SetBounds(tv, 0, acc.FMax()/mc.speed)
		e.p.SetBounds(xv, 0, 1)
		tk.t[mc.seq], tk.x[mc.seq] = tv, xv
	}

	// Epigraph rows (3b): z <= α_k Σ_r s_r t_r + b_k.
	for _, seg := range acc.Segments() {
		terms := []lp.Term{{Var: tk.z, Coef: 1}}
		for _, mc := range e.machines {
			if mc.alive {
				terms = append(terms, lp.Term{Var: tk.t[mc.seq], Coef: -seg.Slope * mc.speed})
			}
		}
		tk.segRows = append(tk.segRows, e.p.AddConstraint(terms, lp.LE, seg.Intercept))
	}
	// Aggregate work cap Σ_r s_r t_r <= f^max.
	agg := make([]lp.Term, 0, len(e.machByID))
	for _, mc := range e.machines {
		if mc.alive {
			agg = append(agg, lp.Term{Var: tk.t[mc.seq], Coef: mc.speed})
		}
	}
	tk.aggRow = e.p.AddConstraint(agg, lp.LE, acc.FMax())
	// Deadline VUB links (1d): t_r - d·x_r <= 0.
	for _, mc := range e.machines {
		if mc.alive {
			e.p.AddConstraint([]lp.Term{
				{Var: tk.t[mc.seq], Coef: 1},
				{Var: tk.x[mc.seq], Coef: -tk.deadline},
			}, lp.LE, 0)
		}
	}
	// Assignment GUB (1e): Σ_r x_r = 1.
	xs := make([]lp.Term, 0, len(e.machByID))
	for _, mc := range e.machines {
		if mc.alive {
			xs = append(xs, lp.Term{Var: tk.x[mc.seq], Coef: 1})
		}
	}
	tk.gubRow = e.p.AddConstraint(xs, lp.EQ, 1)

	// Staircase (1b): this task's own prefix row per live machine, and its
	// term appended to the rows of live tasks due after it. Departed tasks'
	// rows are left alone — without the new term they are implied by the
	// latest live predecessor's row, hence still valid.
	live := e.liveSorted()
	for _, mc := range e.machines {
		if !mc.alive {
			continue
		}
		terms := make([]lp.Term, 0, len(live))
		for _, o := range live {
			if !before(tk, o) && mc.seq < len(o.t) && o.t[mc.seq] >= 0 {
				terms = append(terms, lp.Term{Var: o.t[mc.seq], Coef: 1})
			}
		}
		tk.stair[mc.seq] = e.p.AddConstraint(terms, lp.LE, tk.deadline)
	}
	newTerm := make([]lp.Term, 1)
	for _, o := range live {
		if o == tk || !before(tk, o) {
			continue
		}
		for _, mc := range e.machines {
			if mc.alive && mc.seq < len(o.stair) && o.stair[mc.seq] >= 0 && tk.t[mc.seq] >= 0 {
				newTerm[0] = lp.Term{Var: tk.t[mc.seq], Coef: 1}
				e.p.AppendTerms(o.stair[mc.seq], newTerm)
			}
		}
	}

	// Energy budget (1f): Σ_r P_r t_r joins the shared row.
	energy := make([]lp.Term, 0, len(e.machByID))
	for _, mc := range e.machines {
		if mc.alive {
			energy = append(energy, lp.Term{Var: tk.t[mc.seq], Coef: mc.power})
		}
	}
	if len(energy) > 0 {
		e.p.AppendTerms(e.budgetRow, energy)
	}
}

// applyJoin appends the machine's column block (t/x per live task), the
// new columns' terms on every live task's shared rows, the new VUB links,
// and the machine's own staircase rows.
func (e *Engine) applyJoin(ev *Event) {
	mc := &liveMachine{id: ev.Machine, seq: len(e.machines), speed: ev.Speed, power: ev.Power, alive: true}
	e.machines = append(e.machines, mc)
	e.machByID[mc.id] = mc

	live := e.liveSorted()
	var energy []lp.Term
	for _, tk := range live {
		for len(tk.t) <= mc.seq {
			tk.t = append(tk.t, -1)
			tk.x = append(tk.x, -1)
			tk.stair = append(tk.stair, -1)
		}
		tv := e.p.AddVariables(2)
		xv := tv + 1
		e.p.SetBounds(tv, 0, tk.acc.FMax()/mc.speed)
		e.p.SetBounds(xv, 0, 1)
		tk.t[mc.seq], tk.x[mc.seq] = tv, xv

		segs := tk.acc.Segments()
		for k, row := range tk.segRows {
			e.p.AppendTerms(row, []lp.Term{{Var: tv, Coef: -segs[k].Slope * mc.speed}})
		}
		e.p.AppendTerms(tk.aggRow, []lp.Term{{Var: tv, Coef: mc.speed}})
		e.p.AddConstraint([]lp.Term{
			{Var: tv, Coef: 1}, {Var: xv, Coef: -tk.deadline},
		}, lp.LE, 0)
		e.p.AppendTerms(tk.gubRow, []lp.Term{{Var: xv, Coef: 1}})
		energy = append(energy, lp.Term{Var: tv, Coef: mc.power})
	}
	// Staircase rows on the new machine, prefix-nested in deadline order.
	for j, tk := range live {
		terms := make([]lp.Term, 0, j+1)
		for i := 0; i <= j; i++ {
			terms = append(terms, lp.Term{Var: live[i].t[mc.seq], Coef: 1})
		}
		tk.stair[mc.seq] = e.p.AddConstraint(terms, lp.LE, tk.deadline)
	}
	if len(energy) > 0 {
		e.p.AppendTerms(e.budgetRow, energy)
	}
}

// mipProblem assembles the mip view of the live problem: the integer set
// (live assignment binaries, stable task-then-machine order) and the
// separator's structure hints over live rows and pairs.
func (e *Engine) mipProblem() *mip.Problem {
	st := &mip.Structure{BudgetRows: []int{e.budgetRow}}
	var ints []int
	for _, tk := range e.tasks {
		if !tk.alive {
			continue
		}
		st.GUBRows = append(st.GUBRows, tk.gubRow)
		for _, mc := range e.machines {
			if !mc.alive || mc.seq >= len(tk.x) || tk.x[mc.seq] < 0 {
				continue
			}
			ints = append(ints, tk.x[mc.seq])
			st.VUBs = append(st.VUBs, mip.VUB{Cont: tk.t[mc.seq], Bin: tk.x[mc.seq], U: tk.deadline})
		}
	}
	return &mip.Problem{LP: e.p, Integers: ints, Structure: st}
}

// roundingHook builds the largest-x̂ assignment heuristic over the live
// pairs, aligned with mipProblem's integer order.
func (e *Engine) roundingHook() mip.RoundingHook {
	type span struct{ cols []int }
	var spans []span
	total := 0
	for _, tk := range e.tasks {
		if !tk.alive {
			continue
		}
		var cols []int
		for _, mc := range e.machines {
			if mc.alive && mc.seq < len(tk.x) && tk.x[mc.seq] >= 0 {
				cols = append(cols, tk.x[mc.seq])
			}
		}
		spans = append(spans, span{cols})
		total += len(cols)
	}
	return func(x []float64) ([]float64, bool) {
		fixed := make([]float64, total)
		base := 0
		for _, sp := range spans {
			if len(sp.cols) == 0 {
				return nil, false
			}
			best, bestVal := 0, math.Inf(-1)
			for i, c := range sp.cols {
				if v := x[c]; v > bestVal {
					bestVal, best = v, i
				}
			}
			fixed[base+best] = 1
			base += len(sp.cols)
		}
		return fixed, true
	}
}

// solve runs one warm-started (or cold, per Options.DisableWarm) MIP
// re-solve of the live problem and refreshes stats and the last solution.
func (e *Engine) solve() (*Solution, error) {
	prob := e.mipProblem()
	opts := mip.Options{
		Workers:  e.opts.Workers,
		MaxNodes: e.opts.MaxNodes,
		Rounding: e.roundingHook(),
		// Presolve must stay off: its row/column remapping would strand the
		// exported warm state, and the engine's deltas index as-built rows.
		LP: lp.Options{Presolve: lp.PresolveOff},
	}
	warm := false
	if !e.opts.DisableWarm {
		opts.ExportWarm = true
		opts.Warm = e.warm
		warm = e.warm != nil
		if e.opts.Workers <= 1 {
			opts.Workspace = e.ws
		}
	}
	start := time.Now() //lint:ignore wallclock sanctioned solve-latency stats stamp
	res, err := mip.Solve(prob, opts)
	if err != nil {
		return nil, fmt.Errorf("incremental: re-solve: %w", err)
	}
	elapsed := time.Since(start) //lint:ignore wallclock sanctioned solve-latency stats stamp
	if !e.opts.DisableWarm {
		e.warm = res.Warm
	}

	e.stats.Solves++
	if warm {
		e.stats.WarmResolves++
	} else {
		e.stats.ColdResolves++
	}
	e.stats.NodeWarm += res.WarmSolves
	e.stats.NodeCold += res.ColdSolves
	e.stats.InheritFallbacks += res.InheritFallbacks
	e.stats.Nodes += res.Nodes
	e.stats.CutsCarried = res.Cuts
	e.stats.SolveTime += elapsed
	e.stats.LastSolve = elapsed
	if elapsed > e.stats.MaxSolve {
		e.stats.MaxSolve = elapsed
	}

	sol := &Solution{
		Status:   res.Status,
		Times:    make(map[string]map[string]float64),
		Assigned: make(map[string]string),
		Nodes:    res.Nodes,
	}
	if res.Status == mip.Optimal || res.Status == mip.Feasible {
		sol.TotalAccuracy = res.Objective
		sol.Objective = float64(len(e.taskByID)) - res.Objective
		for _, tk := range e.tasks {
			if !tk.alive {
				continue
			}
			times := make(map[string]float64)
			bestID, bestX := "", 0.0
			for _, mc := range e.machines {
				if !mc.alive || mc.seq >= len(tk.t) || tk.t[mc.seq] < 0 {
					continue
				}
				v := res.X[tk.t[mc.seq]]
				if v < 0 {
					v = 0
				}
				times[mc.id] = v
				sol.Energy += mc.power * v
				if xv := res.X[tk.x[mc.seq]]; xv > bestX {
					bestX, bestID = xv, mc.id
				}
			}
			sol.Times[tk.id] = times
			if bestX > 0.5 {
				sol.Assigned[tk.id] = bestID
			}
		}
	}
	e.last = sol
	return sol, nil
}
