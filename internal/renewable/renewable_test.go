package renewable

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/schedule"
	"repro/internal/task"
)

func genInstance(t *testing.T, seed int64, n, m int, rho, beta float64) *task.Instance {
	t.Helper()
	cfg := task.DefaultConfig(n, rho, beta)
	cfg.ThetaMax = 1.0
	in, err := task.GenerateUniformFleet(rng.New(seed, "renewable"), cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEnvelopeValidation(t *testing.T) {
	if _, err := NewEnvelope(nil); err == nil {
		t.Error("empty envelope accepted")
	}
	if _, err := NewEnvelope([]Point{{T: -1, Energy: 5}}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := NewEnvelope([]Point{{T: 0, Energy: 5}, {T: 0, Energy: 6}}); err == nil {
		t.Error("duplicate times accepted")
	}
	if _, err := NewEnvelope([]Point{{T: 0, Energy: 5}, {T: 1, Energy: 4}}); err == nil {
		t.Error("decreasing envelope accepted")
	}
	// Unsorted input is sorted.
	e, err := NewEnvelope([]Point{{T: 2, Energy: 10}, {T: 1, Energy: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(e.Points()[0].T, 1) {
		t.Error("points not sorted")
	}
}

func TestEnvelopeAt(t *testing.T) {
	e, err := NewEnvelope([]Point{{T: 1, Energy: 10}, {T: 3, Energy: 30}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 0}, {0.5, 0}, {1, 10}, {2, 20}, {3, 30}, {99, 30},
	}
	for _, c := range cases {
		if got := e.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if !numeric.AlmostEqual(e.Total(), 30) {
		t.Errorf("Total = %g", e.Total())
	}
}

func TestSolarEnvelope(t *testing.T) {
	e, err := Solar(6, 18, 1000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if e.At(5.9) != 0 {
		t.Error("energy before sunrise")
	}
	if math.Abs(e.Total()-1000) > 1e-9 {
		t.Errorf("Total = %g", e.Total())
	}
	// Half the energy by solar noon.
	if got := e.At(12); math.Abs(got-500) > 1e-9 {
		t.Errorf("At(noon) = %g, want 500", got)
	}
	// Monotone.
	prev := 0.0
	for tm := 6.0; tm <= 18; tm += 0.5 {
		v := e.At(tm)
		if v < prev-1e-12 {
			t.Fatalf("envelope decreases at %g", tm)
		}
		prev = v
	}
	if _, err := Solar(18, 6, 100, 10); err == nil {
		t.Error("inverted day accepted")
	}
}

func TestConsumptionCurve(t *testing.T) {
	in := genInstance(t, 1, 2, 2, 0.5, 1.0)
	s := schedule.New(2, 2)
	s.Times[0][0] = 0.01 // machine 0 busy 10ms
	s.Times[1][1] = 0.02 // machine 1 busy 20ms
	c := Consumption(in, s, 0)
	p0, p1 := in.Machines[0].Power, in.Machines[1].Power
	if got := c(0); got != 0 {
		t.Errorf("c(0) = %g", got)
	}
	want := 0.005*p0 + 0.005*p1
	if got := c(0.005); math.Abs(got-want) > 1e-9 {
		t.Errorf("c(5ms) = %g, want %g", got, want)
	}
	full := 0.01*p0 + 0.02*p1
	if got := c(1); math.Abs(got-full) > 1e-9 {
		t.Errorf("c(1) = %g, want %g", got, full)
	}
	// A start delay shifts the whole curve.
	cd := Consumption(in, s, 0.5)
	if got := cd(0.5); got != 0 {
		t.Errorf("delayed c(0.5) = %g", got)
	}
	if got := cd(0.505); math.Abs(got-want) > 1e-9 {
		t.Errorf("delayed c(0.505) = %g, want %g", got, want)
	}
}

func TestCompliesDetectsViolation(t *testing.T) {
	in := genInstance(t, 2, 2, 1, 0.5, 1.0)
	s := schedule.New(2, 1)
	s.Times[0][0] = 0.01
	power := in.Machines[0].Power
	// Envelope that allows everything.
	okEnv, _ := NewEnvelope([]Point{{T: 0, Energy: power}})
	if ok, _ := Complies(in, s, okEnv, 0, 1e-9); !ok {
		t.Error("generous envelope rejected")
	}
	// Envelope that arrives too late: nothing before 5ms.
	lateEnv, _ := NewEnvelope([]Point{{T: 0.005, Energy: 0}, {T: 1, Energy: power}})
	ok, at := Complies(in, s, lateEnv, 0, 1e-9)
	if ok {
		t.Error("late envelope accepted")
	}
	if at <= 0 || at > 0.006 {
		t.Errorf("violation reported at %g", at)
	}
	// Starting after the energy has arrived fixes it.
	if ok, at := Complies(in, s, lateEnv, 0.01, 1e-9); !ok {
		t.Errorf("delayed start still violates at %g", at)
	}
}

func TestSolveCompliesAndUsesEnvelope(t *testing.T) {
	in := genInstance(t, 3, 30, 2, 0.5, 1.0)
	dMax := in.MaxDeadline()
	// Energy ramps linearly over the horizon up to half of the scalar budget.
	env, err := NewEnvelope([]Point{{T: 0, Energy: 0}, {T: dMax, Energy: in.Budget / 2}})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(in, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, at := Complies(in, sol.Schedule, env, sol.StartDelay, schedule.DefaultTol); !ok {
		t.Fatalf("returned schedule violates envelope at t=%g", at)
	}
	if sol.EffectiveBudget <= 0 {
		t.Error("bisection found no usable budget on a feasible envelope")
	}
	// Better than doing nothing.
	var amin float64
	for _, tk := range in.Tasks {
		amin += tk.Acc.AMin()
	}
	if sol.TotalAccuracy <= amin {
		t.Errorf("no accuracy above the a_min floor: %g", sol.TotalAccuracy)
	}
}

func TestSolveFastPathFrontLoadedEnvelope(t *testing.T) {
	in := genInstance(t, 4, 20, 2, 0.5, 0.5)
	// All energy available immediately: equivalent to the scalar problem.
	env, err := NewEnvelope([]Point{{T: 0, Energy: in.Budget}})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(in, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := approx.Solve(in, approx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.TotalAccuracy-plain.TotalAccuracy) > 1e-9 {
		t.Errorf("front-loaded envelope %g != scalar solve %g", sol.TotalAccuracy, plain.TotalAccuracy)
	}
}

func TestSolveStarvedEnvelope(t *testing.T) {
	in := genInstance(t, 5, 10, 2, 0.5, 0.5)
	// Energy only arrives long after every deadline.
	env, err := NewEnvelope([]Point{{T: in.MaxDeadline() * 100, Energy: in.Budget}})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(in, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := Complies(in, sol.Schedule, env, sol.StartDelay, schedule.DefaultTol); !ok {
		t.Error("starved solution violates envelope")
	}
	// Work-conserving machines cannot wait for the late energy, so nothing
	// (or almost nothing) can be scheduled.
	if e := sol.Schedule.Energy(in); e > in.Budget*0.01 {
		t.Errorf("starved envelope still consumed %g J", e)
	}
}

func TestSolarEnvelopeUsesStartDelay(t *testing.T) {
	// Under a solar ramp nothing can run at t=0, but waiting for generation
	// lets later-deadline tasks execute: the delay search must beat the
	// do-nothing floor.
	in := genInstance(t, 7, 20, 2, 1.0, 1.0)
	env, err := Solar(0, in.MaxDeadline(), in.Budget, 16)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(in, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var amin float64
	for _, tk := range in.Tasks {
		amin += tk.Acc.AMin()
	}
	if sol.TotalAccuracy <= amin+1e-9 {
		t.Fatalf("solar plan stuck at the a_min floor (%g)", sol.TotalAccuracy)
	}
	if sol.StartDelay <= 0 {
		t.Errorf("expected a positive start delay, got %g", sol.StartDelay)
	}
	if ok, at := Complies(in, sol.Schedule, env, sol.StartDelay, schedule.DefaultTol); !ok {
		t.Errorf("solar plan violates envelope at %g", at)
	}
}

func TestTighterEnvelopeNeverGainsAccuracy(t *testing.T) {
	in := genInstance(t, 6, 25, 2, 0.5, 1.0)
	dMax := in.MaxDeadline()
	var prev float64 = math.Inf(1)
	for _, frac := range []float64{1.0, 0.5, 0.2, 0.05} {
		env, err := NewEnvelope([]Point{{T: 0, Energy: 0}, {T: dMax, Energy: in.Budget * frac}})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(in, env, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The bisection is a heuristic, so allow a small granularity slack
		// in the monotonicity check.
		if sol.TotalAccuracy > prev+0.01 {
			t.Errorf("frac %g: accuracy %g clearly exceeds looser envelope's %g", frac, sol.TotalAccuracy, prev)
		}
		prev = math.Max(prev, sol.TotalAccuracy)
	}
}
